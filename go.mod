module github.com/noreba-sim/noreba

go 1.22
