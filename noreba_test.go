package noreba

import (
	"strings"
	"testing"
)

// TestQuickstartRoundTrip exercises the documented public-API flow:
// assemble → compile → trace → simulate, comparing two commit policies.
func TestQuickstartRoundTrip(t *testing.T) {
	prog, err := Assemble("quickstart", `
entry:
	li   s0, 0x100000
	li   s1, 0x200000
	li   a0, 200
	li   a1, 0
loop:
	add  t0, s0, a1
	lw   t1, 0(t0)
	andi t2, t1, 1
	beqz t2, skip
then:
	addi a2, a2, 1
skip:
	addi a3, a3, 1
	addi a4, a4, 2
	xor  a5, a3, a4
	addi a1, a1, 8192
	addi a0, a0, -1
	bnez a0, loop
done:
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		prog.Data[0x100000+int64(i)*8192] = int64(i * 2654435761)
	}

	res, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MarkedBranches == 0 {
		t.Fatal("nothing marked")
	}
	if !strings.Contains(res.Image.Disassemble(), "setBranchId") {
		t.Fatal("annotation missing from disassembly")
	}

	tr, err := Trace(res, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	ino, err := Simulate(Skylake(PolicyInOrder), tr, res.Meta)
	if err != nil {
		t.Fatal(err)
	}
	nor, err := Simulate(Skylake(PolicyNoreba), tr, res.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if nor.Cycles >= ino.Cycles {
		t.Errorf("NOREBA (%d cycles) should beat in-order commit (%d cycles) on a missing-load kernel",
			nor.Cycles, ino.Cycles)
	}

	breakdown := EstimatePower(Skylake(PolicyNoreba), nor)
	if breakdown.TotalPower() <= 0 {
		t.Error("power model returned nothing")
	}
}

func TestPublicConfigs(t *testing.T) {
	if Skylake(PolicyNoreba).ROBSize != 224 {
		t.Error("Skylake ROB should be 224 (Table 3)")
	}
	if Haswell(PolicyInOrder).ROBSize != 192 {
		t.Error("Haswell ROB should be 192")
	}
	if Nehalem(PolicyInOrder).ROBSize != 128 {
		t.Error("Nehalem ROB should be 128")
	}
	if len(Workloads()) < 20 {
		t.Errorf("workload suite too small: %d", len(Workloads()))
	}
	if !strings.Contains(ConfigTables(), "Table 2") {
		t.Error("config tables missing")
	}
}
