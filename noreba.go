// Package noreba is the public API of the NOREBA reproduction: a compiler
// pass and cycle-level processor simulator for compiler-informed,
// non-speculative out-of-order commit (Hajiabadi, Diavastos, Carlson —
// ASPLOS 2021).
//
// The typical flow mirrors the paper's toolchain:
//
//	prog, _ := noreba.Assemble("kernel", src) // or build with a Builder
//	res, _ := noreba.Compile(prog)            // branch-dependent code detection pass
//	trace, _ := noreba.Trace(res, 1<<20)      // functional execution
//	cfg := noreba.Skylake(noreba.PolicyNoreba)
//	stats, _ := noreba.Simulate(cfg, trace, res.Meta)
//	fmt.Println(stats.IPC())
//
// The experiment harness behind the Figures (see cmd/noreba-bench and the
// root benchmarks) is exposed through NewRunner.
package noreba

import (
	"context"
	"io"
	"sync"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/multicore"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/power"
	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/sampling"
	"github.com/noreba-sim/noreba/internal/sanity"
	"github.com/noreba-sim/noreba/internal/trace"
	"github.com/noreba-sim/noreba/internal/tracefile"
	"github.com/noreba-sim/noreba/internal/workgen"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// Program construction.
type (
	// Program is a mutable program: labelled basic blocks plus data.
	Program = program.Program
	// Builder constructs programs block by block.
	Builder = program.Builder
	// Image is a laid-out program with resolved branch targets.
	Image = program.Image
)

// NewBuilder returns a program builder.
func NewBuilder(name string) *Builder { return program.NewBuilder(name) }

// Assemble parses textual assembly into a Program.
func Assemble(name, src string) (*Program, error) { return program.Assemble(name, src) }

// Compiler pass.
type (
	// CompileOptions configures the branch-dependent code detection pass.
	CompileOptions = compiler.Options
	// CompileResult holds the annotated program, image, branch metadata
	// and pass statistics.
	CompileResult = compiler.Result
	// BranchMeta describes one conditional branch in the final image.
	BranchMeta = compiler.BranchMeta
)

// DefaultCompileOptions mirrors the paper's hardware configuration (8 BIT
// entries, 31-instruction regions).
func DefaultCompileOptions() CompileOptions { return compiler.DefaultOptions() }

// Compile runs the NOREBA compiler pass with default options.
func Compile(p *Program) (*CompileResult, error) {
	return compiler.Compile(p, compiler.DefaultOptions())
}

// CompileWith runs the pass with explicit options.
func CompileWith(p *Program, opt CompileOptions) (*CompileResult, error) {
	return compiler.Compile(p, opt)
}

// Functional execution.
type (
	// Machine is the functional (architectural) emulator.
	Machine = emulator.Machine
	// DynTrace is a materialized correct-path dynamic instruction trace.
	DynTrace = emulator.Trace
	// TraceSource is a pull-based dynamic instruction stream: the simulator
	// consumes it through a bounded sliding window, so a live emulator
	// source runs in O(window) memory instead of O(trace).
	TraceSource = emulator.TraceSource
)

// NewMachine returns an emulator for the image.
func NewMachine(img *Image) *Machine { return emulator.New(img) }

// Trace functionally executes a compiled program for at most maxInsts
// dynamic instructions and returns the materialized trace. Prefer
// StreamTrace when the stream is consumed once by a single simulation.
func Trace(res *CompileResult, maxInsts int64) (*DynTrace, error) {
	return emulator.New(res.Image).Run(maxInsts)
}

// StreamTrace returns a live-emulator source executing a compiled program
// for at most maxInsts dynamic instructions. Sources are single-consumer:
// build one per simulation.
func StreamTrace(res *CompileResult, maxInsts int64) TraceSource {
	return emulator.NewSource(emulator.New(res.Image), maxInsts)
}

// Materialize drains a source into a trace (plus any terminal execution
// error), for callers that need random access or multiple replays.
func Materialize(src TraceSource) (*DynTrace, error) { return emulator.Materialize(src) }

// Cycle-level simulation.
type (
	// Config describes a simulated core.
	Config = pipeline.Config
	// Stats is the result of one simulation.
	Stats = pipeline.Stats
	// Policy selects the commit policy.
	Policy = pipeline.PolicyKind
)

// Commit policies (the rows of the paper's figures).
const (
	PolicyInOrder     = pipeline.InOrder
	PolicyNonSpecOoO  = pipeline.NonSpecOoO
	PolicyNoreba      = pipeline.Noreba
	PolicyIdealReconv = pipeline.IdealReconv
	PolicySpecBR      = pipeline.SpecBR
	PolicySpec        = pipeline.Spec
)

// Skylake returns the paper's Skylake-like core (Table 3) with the given
// commit policy.
func Skylake(p Policy) Config {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = p
	return cfg
}

// Haswell returns the Haswell-like core with the given policy.
func Haswell(p Policy) Config {
	cfg := pipeline.HaswellConfig()
	cfg.Policy = p
	return cfg
}

// Nehalem returns the Nehalem-like core with the given policy.
func Nehalem(p Policy) Config {
	cfg := pipeline.NehalemConfig()
	cfg.Policy = p
	return cfg
}

// Simulate replays a materialized trace through the cycle-level model. meta
// may be nil for unannotated programs (NOREBA then degenerates safely to
// in-order commit).
func Simulate(cfg Config, tr *DynTrace, meta *compiler.Meta) (*Stats, error) {
	return pipeline.NewCore(cfg, tr, meta).Run()
}

// SimulateSource runs the cycle-level model over a pull-based stream —
// typically StreamTrace's live emulator — holding only the sliding window in
// memory. meta may be nil for unannotated programs.
func SimulateSource(cfg Config, src TraceSource, meta *compiler.Meta) (*Stats, error) {
	return pipeline.NewCoreFromSource(cfg, src, meta).Run()
}

// SimulateSourceContext is SimulateSource with cooperative cancellation:
// when ctx ends mid-run the partial statistics accumulated so far are
// returned alongside an error wrapping the context's cause, so an
// interrupted caller (noreba-sim under SIGINT, a service job past its
// deadline) can still report what it saw.
func SimulateSourceContext(ctx context.Context, cfg Config, src TraceSource, meta *compiler.Meta) (*Stats, error) {
	return pipeline.NewCoreFromSource(cfg, src, meta).RunContext(ctx)
}

// TraceBus fans one TraceSource out to N lockstep consumers over a shared
// bounded ring buffer, so one functional emulation can feed many pipeline
// cores (see SimulateFanoutContext). skew bounds how far the fastest
// consumer may run ahead of the slowest (0 means the default bound); all
// views must be taken before consumption starts.
type TraceBus = emulator.Broadcast

// NewTraceBus wraps src in a broadcast trace bus. The source must not be
// consumed by anyone else once the bus owns it.
func NewTraceBus(src TraceSource, skew int) *TraceBus { return emulator.NewBroadcast(src, skew) }

// SimulateFanoutContext runs every configuration over ONE shared functional
// stream: src is wrapped in a broadcast trace bus and each config's core
// consumes its own lockstep view on its own goroutine, paying the emulation
// cost once instead of len(cfgs) times. Results are bit-identical to
// independent SimulateSourceContext runs and are returned aligned with cfgs
// alongside the first error (a failed core's slot holds its partial stats,
// and the survivors still finish — an early-exiting core detaches from the
// bus rather than wedging its siblings).
func SimulateFanoutContext(ctx context.Context, cfgs []Config, src TraceSource, meta *compiler.Meta) ([]*Stats, error) {
	bus := emulator.NewBroadcast(src, 0)
	views := make([]*emulator.BusView, len(cfgs))
	for i := range cfgs {
		views[i] = bus.View()
	}
	stats := make([]*Stats, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer views[i].Close()
			stats[i], errs[i] = pipeline.NewCoreFromSource(cfgs[i], views[i], meta).RunContext(ctx)
		}(i)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	return stats, firstErr
}

// Sampled simulation (SimPoint-style).
type (
	// SamplingParams configures sampled simulation: interval length, cluster
	// bound, warmup, cooldown and clustering determinism. The zero value
	// means disabled; DefaultSampling returns the tuned defaults.
	SamplingParams = sampling.Params
	// SamplingPlan is a compiled sampling schedule for one program:
	// representative intervals with checkpoints, reusable across every core
	// configuration estimated from it.
	SamplingPlan = sampling.Plan
	// SamplingFormatError is the typed diagnostic for corrupt, truncated or
	// mismatched plan files, naming the byte offset.
	SamplingFormatError = sampling.FormatError
)

// DefaultSampling returns the enabled sampling configuration with the tuned
// defaults (see internal/sampling).
func DefaultSampling() SamplingParams { return sampling.Default() }

// BuildSamplingPlan profiles a compiled program's dynamic stream (bounded by
// maxInsts), clusters its intervals SimPoint-style and captures
// representative checkpoints. The plan's Estimate then approximates any
// configuration's full-run Stats from detailed simulation of the
// representatives alone — the differential accuracy suite in
// internal/experiments bounds the IPC error empirically.
func BuildSamplingPlan(res *CompileResult, maxInsts int64, p SamplingParams) (*SamplingPlan, error) {
	return sampling.BuildPlan(res.Image, res.Meta, maxInsts, p)
}

// SamplingPlanKey returns the content-store key under which a plan for
// (res, maxInsts, p) is persisted: sha256 over the plan-file format version,
// the compiled image's content hash, the stream bound and the normalized
// parameters. Recompiling the program or changing any input yields a new key.
func SamplingPlanKey(res *CompileResult, maxInsts int64, p SamplingParams) string {
	return sampling.PlanKey(res.Image, maxInsts, p)
}

// EncodeSamplingPlan serialises a plan into the versioned binary plan-file
// format, suitable for a persistent store or a file. Equal plans encode to
// identical bytes.
func EncodeSamplingPlan(pl *SamplingPlan) []byte { return sampling.EncodePlan(pl) }

// LoadSamplingPlan decodes plan-file bytes and binds the plan to the program
// it will estimate, verifying that the file was built for exactly this
// image, stream bound and sampling configuration. Corrupt, stale or
// mismatched bytes fail with a *SamplingFormatError — callers treat that as
// a cache miss and rebuild with BuildSamplingPlan.
func LoadSamplingPlan(data []byte, res *CompileResult, maxInsts int64, p SamplingParams) (*SamplingPlan, error) {
	return sampling.LoadPlan(data, res.Image, maxInsts, p)
}

// Observability and invariant checking.
type (
	// TraceEvent is one cycle-stamped pipeline event (fetch, dispatch,
	// issue, writeback, commit, squash, mispredict, cache miss, early
	// reclaim). Attach a sink via Config.TraceSink to receive them.
	TraceEvent = trace.Event
	// TraceSink consumes pipeline events; a nil sink costs one branch per
	// event site.
	TraceSink = trace.Sink
	// TraceKind identifies a pipeline event type.
	TraceKind = trace.Kind
	// TraceCollector buffers events in memory (optionally bounded by a
	// commit-event limit).
	TraceCollector = trace.Collector
	// MetricsRegistry names and owns counters and histograms folded from
	// the event stream.
	MetricsRegistry = trace.Registry
	// SanityError is the typed diagnostic a sanitized run fails with: the
	// violated invariant name plus the cycle, PC and sequence number.
	SanityError = sanity.Error
)

// NewJSONLSink returns a sink streaming events as JSON lines to w. Call its
// Close (or Flush) before reading the output.
func NewJSONLSink(w io.Writer) *trace.JSONL { return trace.NewJSONL(w) }

// NewMetricsSink returns a sink folding events into reg (a fresh registry
// when nil); combine with other sinks via TeeSinks.
func NewMetricsSink(reg *MetricsRegistry) *trace.Metrics { return trace.NewMetrics(reg) }

// TeeSinks fans every event out to each sink.
func TeeSinks(sinks ...TraceSink) TraceSink { return trace.Tee(sinks...) }

// AsSanityError extracts the typed invariant violation from a failed run's
// error, if it is one.
func AsSanityError(err error) (*SanityError, bool) { return sanity.As(err) }

// Power modelling.
type (
	// PowerBreakdown is a per-structure power/area estimate.
	PowerBreakdown = power.Breakdown
)

// EstimatePower runs the McPAT-style activity model over a finished run.
func EstimatePower(cfg Config, st *Stats) PowerBreakdown { return power.Estimate(cfg, st) }

// Workloads and experiments.
type (
	// Workload is one registered benchmark kernel.
	Workload = workloads.Workload
	// Runner regenerates the paper's figures.
	Runner = experiments.Runner
)

// Workloads returns every registered kernel: the curated SPEC-like and
// MiBench-like suite plus the pinned generated workloads.
func Workloads() []Workload { return workloads.All() }

// CuratedWorkloads returns the hand-written figure suite only (generated
// workloads excluded) — what the experiment runner evaluates by default.
func CuratedWorkloads() []Workload { return workloads.Curated() }

// WorkloadByName returns the named kernel.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Workload generation (internal/workgen): deterministic, seed-parameterized
// programs over the character axes of DESIGN.md §12.
type (
	// GenParams selects one point in the generator's character space.
	GenParams = workgen.Params
	// GenCharacter is the characterization record emitted with each sample.
	GenCharacter = workgen.Character
)

// GenParamsFromSeed derives a full character point from a single seed.
func GenParamsFromSeed(seed uint64) GenParams { return workgen.FromSeed(seed) }

// ParseGenSpec parses a "seed=42,crit=0.8,…" generator spec (noreba-sim's
// -gen flag syntax).
func ParseGenSpec(spec string) (GenParams, error) { return workgen.ParseSpec(spec) }

// GenerateWorkload emits the program at one character point, with its
// characterization record. Identical params yield byte-identical programs.
func GenerateWorkload(p GenParams) (*Program, GenCharacter, error) { return workgen.Generate(p) }

// Trace interchange (internal/tracefile): the versioned on-disk format for
// dynamic instruction traces.
type (
	// TraceReader replays a recorded trace file as a TraceSource.
	TraceReader = tracefile.Reader
	// TraceRecorder tees a TraceSource to a trace file as it is consumed.
	TraceRecorder = tracefile.Recorder
	// TraceFormatError is the typed diagnostic for corrupt or truncated
	// trace files, naming the byte offset.
	TraceFormatError = tracefile.FormatError
)

// WriteTraceFile drains src into w in the versioned trace format; meta (may
// be nil) embeds the compiler's branch metadata for full-fidelity replay.
func WriteTraceFile(w io.Writer, src TraceSource, meta *compiler.Meta) error {
	return tracefile.Write(w, src, meta)
}

// OpenTraceFile parses a recorded trace for replay; the reader is a
// TraceSource and carries the embedded metadata (Reader.Meta).
func OpenTraceFile(r io.Reader) (*TraceReader, error) { return tracefile.Open(r) }

// NewTraceRecorder wraps src so every consumed instruction is also written
// to w; call Close after the run to surface any deferred write error.
func NewTraceRecorder(src TraceSource, w io.Writer, meta *compiler.Meta) (*TraceRecorder, error) {
	return tracefile.NewRecorder(src, w, meta)
}

// NewRunner returns a full-scale experiment runner.
func NewRunner() *Runner { return experiments.NewRunner() }

// QuickRunner returns a reduced-scale runner (used by tests and the root
// benchmarks).
func QuickRunner() *Runner { return experiments.QuickRunner() }

// ConfigTables renders the paper's Table 2 and Table 3.
func ConfigTables() string { return experiments.Tables2And3() }

// Multicore (§4.5).
type (
	// MulticoreConfig describes a multicore system: per-core configuration,
	// shared LLC, barriers and address-space layout.
	MulticoreConfig = multicore.Config
	// CoreInput is one core's instruction stream and branch metadata.
	CoreInput = multicore.CoreInput
	// MulticoreSystem is a set of cores stepping in lockstep.
	MulticoreSystem = multicore.System
)

// NewMulticore builds a lockstep multicore system.
func NewMulticore(cfg MulticoreConfig, inputs []CoreInput) (*MulticoreSystem, error) {
	return multicore.New(cfg, inputs)
}

// Binary distribution of programs.

// EncodeImage packs a laid-out program's instructions into the flat binary
// format (8 bytes per instruction, position-independent branch deltas).
func EncodeImage(img *Image) ([]byte, error) { return isa.EncodeProgram(img.Insts) }

// DecodeImage unpacks instructions from the flat binary format.
func DecodeImage(data []byte) ([]isa.Inst, error) { return isa.DecodeProgram(data) }
