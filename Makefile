.PHONY: check test vet bench cover fuzz serve-smoke cluster-smoke profile profile-top

# Full CI gate: gofmt, vet, build, race-enabled tests, coverage floors,
# fuzz smokes, engine benchmarks.
check:
	sh scripts/check.sh

test:
	go test ./...

# Static analysis alone — check runs this too (via scripts/check.sh), but a
# standalone target keeps the concurrency-heavy bus/scheduler code lintable
# without paying for the full gate.
vet:
	go vet ./...

bench:
	go test -run '^$$' -bench . -benchtime=1x -benchmem .

# Profile the quick-scale figure suite: writes cpu.pprof and mem.pprof for
# `go tool pprof`, so hot-loop work starts from a profile instead of a guess.
profile:
	go run ./cmd/noreba-bench -quick -cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"

# One-shot hot-loop report: profile the quick-scale suite at GOMAXPROCS=1
# (single-threaded flat time is what the EXPERIMENTS.md tables use) and print
# the pprof top-25 so a perf PR's before/after numbers are one command away.
profile-top:
	go build -o noreba-bench.profiling ./cmd/noreba-bench
	GOMAXPROCS=1 ./noreba-bench.profiling -quick -cpuprofile cpu.pprof >/dev/null
	go tool pprof -top -nodecount=25 cpu.pprof
	@rm -f noreba-bench.profiling

# Coverage for the gated packages (the floor itself is enforced by check).
cover:
	go test -cover ./internal/pipeline ./internal/compiler ./internal/service ./internal/workgen ./internal/tracefile

# Simulation-service end-to-end smoke: build the server binary, then run the
# load test (concurrent clients, dedup, warm-store restart) under -race.
serve-smoke:
	go build -o /dev/null ./cmd/noreba-serve
	go test -race -v -run 'TestServiceLoadSmoke' ./internal/service

# Multi-process cluster smoke: 3 noreba-serve replicas with sharded stores,
# batch sweep, SIGTERM drain, warm restart, and a mid-sweep replica kill.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Short fuzz campaigns for the native targets.
fuzz:
	go test ./internal/isa -run '^$$' -fuzz 'FuzzEncodeDecodeRoundTrip$$' -fuzztime 10s
	go test ./internal/compiler -run '^$$' -fuzz 'FuzzCompilerPass$$' -fuzztime 10s
	go test ./internal/emulator -run '^$$' -fuzz 'FuzzBroadcastSkew$$' -fuzztime 10s
	go test ./internal/workgen -run '^$$' -fuzz 'FuzzGeneratedDifferential$$' -fuzztime 10s
	go test ./internal/tracefile -run '^$$' -fuzz 'FuzzTraceRoundTrip$$' -fuzztime 10s
	go test ./internal/sampling -run '^$$' -fuzz 'FuzzPlanFile$$' -fuzztime 10s
