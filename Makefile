.PHONY: check test bench cover fuzz

# Full CI gate: gofmt, vet, build, race-enabled tests, coverage floors,
# fuzz smokes, engine benchmarks.
check:
	sh scripts/check.sh

test:
	go test ./...

bench:
	go test -run '^$$' -bench . -benchtime=1x -benchmem .

# Coverage for the gated packages (the floor itself is enforced by check).
cover:
	go test -cover ./internal/pipeline ./internal/compiler

# Short fuzz campaigns for both native targets.
fuzz:
	go test ./internal/isa -run '^$$' -fuzz 'FuzzEncodeDecodeRoundTrip$$' -fuzztime 10s
	go test ./internal/compiler -run '^$$' -fuzz 'FuzzCompilerPass$$' -fuzztime 10s
