.PHONY: check test bench

# Full CI gate: gofmt, vet, build, race-enabled tests, engine benchmarks.
check:
	sh scripts/check.sh

test:
	go test ./...

bench:
	go test -run '^$$' -bench . -benchtime=1x -benchmem .
