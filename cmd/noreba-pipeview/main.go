// Command noreba-pipeview renders an ASCII pipeline timeline (in the style
// of gem5's O3 pipe viewer) for a window of instructions from a workload:
// when each instruction was fetched, issued, completed and committed, which
// Selective ROB queue it drained through, and whether it retired out of
// order. It makes the paper's mechanism visible: under NOREBA, commit marks
// ('C') appear far to the left of where in-order commit would place them.
//
// Usage:
//
//	noreba-pipeview -workload mcf -policy noreba -n 40 -skip 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	noreba "github.com/noreba-sim/noreba"
)

var policies = map[string]noreba.Policy{
	"inorder": noreba.PolicyInOrder,
	"nonspec": noreba.PolicyNonSpecOoO,
	"noreba":  noreba.PolicyNoreba,
	"ideal":   noreba.PolicyIdealReconv,
	"specbr":  noreba.PolicySpecBR,
}

func main() {
	var (
		workload   = flag.String("workload", "mcf", "built-in workload name")
		policyName = flag.String("policy", "noreba", "commit policy: inorder|nonspec|noreba|ideal|specbr")
		n          = flag.Int("n", 40, "instructions to display")
		skip       = flag.Int("skip", 2000, "committed instructions to skip (warm-up)")
		width      = flag.Int("width", 100, "timeline width in columns")
		scale      = flag.Int("scale", 0, "workload scale (0 = default)")
	)
	flag.Parse()

	policy, ok := policies[strings.ToLower(*policyName)]
	if !ok {
		fatalf("unknown policy %q", *policyName)
	}
	w, err := noreba.WorkloadByName(*workload)
	if err != nil {
		fatalf("%v", err)
	}
	s := w.DefaultScale
	if *scale > 0 {
		s = *scale
	}
	res, err := noreba.Compile(w.Build(s))
	if err != nil {
		fatalf("%v", err)
	}
	cfg := noreba.Skylake(policy)
	cfg.PipeTraceLimit = *skip + *n
	st, err := noreba.SimulateSource(cfg, noreba.StreamTrace(res, 1<<20), res.Meta)
	if err != nil {
		fatalf("%v", err)
	}

	recs := st.PipeTrace
	if len(recs) > *skip {
		recs = recs[*skip:]
	} else {
		fatalf("only %d instructions committed; lower -skip", len(recs))
	}
	if len(recs) > *n {
		recs = recs[:*n]
	}
	// Display in program order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Idx < recs[j].Idx })

	lo, hi := recs[0].Fetched, recs[0].Committed
	for _, r := range recs {
		if r.Fetched < lo {
			lo = r.Fetched
		}
		if r.Committed > hi {
			hi = r.Committed
		}
	}
	span := hi - lo + 1
	scaleDiv := int64(1)
	for span/scaleDiv > int64(*width) {
		scaleDiv++
	}
	col := func(cyc int64) int { return int((cyc - lo) / scaleDiv) }

	fmt.Printf("workload %s, policy %s — cycles %d..%d (each column = %d cycle(s))\n",
		*workload, st.Policy, lo, hi, scaleDiv)
	fmt.Printf("F fetch   I issue   X complete   C commit   c out-of-order commit   | queue id\n\n")
	for _, r := range recs {
		line := make([]byte, col(hi)+1)
		for i := range line {
			line[i] = ' '
		}
		put := func(cyc int64, ch byte) {
			if p := col(cyc); p >= 0 && p < len(line) && line[p] == ' ' {
				line[p] = ch
			} else if p >= 0 && p < len(line) {
				line[p] = ch // later stages overwrite
			}
		}
		for p := col(r.Fetched) + 1; p < col(r.Committed) && p < len(line); p++ {
			line[p] = '.'
		}
		put(r.Fetched, 'F')
		if r.Issued > 0 {
			put(r.Issued, 'I')
		}
		if r.Done > 0 {
			put(r.Done, 'X')
		}
		commitCh := byte('C')
		if r.OoO {
			commitCh = 'c'
		}
		put(r.Committed, commitCh)

		queue := " "
		if r.Queue >= 0 {
			queue = fmt.Sprintf("%d", r.Queue)
		}
		fmt.Printf("%6d %-26s %s |%s\n", r.Idx, clip(r.Asm, 26), string(line), queue)
	}
	fmt.Printf("\nIPC %.2f, %d/%d committed out of order\n", st.IPC(), st.OoOCommitted, st.Committed)
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "noreba-pipeview: "+format+"\n", args...)
	os.Exit(1)
}
