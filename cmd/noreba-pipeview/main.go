// Command noreba-pipeview renders an ASCII pipeline timeline (in the style
// of gem5's O3 pipe viewer) for a window of instructions from a workload:
// when each instruction was fetched, issued, completed and committed, which
// Selective ROB queue it drained through, and whether it retired out of
// order. It makes the paper's mechanism visible: under NOREBA, commit marks
// ('C') appear far to the left of where in-order commit would place them.
//
// The viewer is a pure consumer of the pipeline's structured event stream
// (internal/trace): it attaches a bounded Collector as the core's sink and
// reconstructs each instruction's lifecycle from fetch/issue/writeback/
// commit/squash events, without reaching into core internals.
//
// Usage:
//
//	noreba-pipeview -workload mcf -policy noreba -n 40 -skip 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/trace"
)

var policies = map[string]noreba.Policy{
	"inorder": noreba.PolicyInOrder,
	"nonspec": noreba.PolicyNonSpecOoO,
	"noreba":  noreba.PolicyNoreba,
	"ideal":   noreba.PolicyIdealReconv,
	"specbr":  noreba.PolicySpecBR,
}

// rec is one displayed instruction's lifecycle, folded from the event
// stream. Cycle stamps are for the successful (committed) attempt: a squash
// discards the partial record and the refetch starts a fresh one.
type rec struct {
	seq             int64
	idx, pc         int
	fetched, issued int64
	done, committed int64
	queue           int64
	ooo             bool
}

func main() {
	var (
		workload   = flag.String("workload", "mcf", "built-in workload name")
		policyName = flag.String("policy", "noreba", "commit policy: inorder|nonspec|noreba|ideal|specbr")
		n          = flag.Int("n", 40, "instructions to display")
		skip       = flag.Int("skip", 2000, "committed instructions to skip (warm-up)")
		width      = flag.Int("width", 100, "timeline width in columns")
		scale      = flag.Int("scale", 0, "workload scale (0 = default)")
	)
	flag.Parse()

	policy, ok := policies[strings.ToLower(*policyName)]
	if !ok {
		fatalf("unknown policy %q", *policyName)
	}
	w, err := noreba.WorkloadByName(*workload)
	if err != nil {
		fatalf("%v", err)
	}
	s := w.DefaultScale
	if *scale > 0 {
		s = *scale
	}
	res, err := noreba.Compile(w.Build(s))
	if err != nil {
		fatalf("%v", err)
	}
	cfg := noreba.Skylake(policy)
	// Commit is the last lifecycle event, so capping the collector at
	// skip+n commits retains every event of the displayed instructions
	// while bounding memory on long runs.
	col := &trace.Collector{Limit: *skip + *n}
	cfg.TraceSink = col
	st, err := noreba.SimulateSource(cfg, noreba.StreamTrace(res, 1<<20), res.Meta)
	if err != nil {
		fatalf("%v", err)
	}

	// Fold the event stream into per-instruction records; commitOrder keeps
	// retirement order for the -skip window.
	live := map[int64]*rec{}
	var commitOrder []*rec
	for _, e := range col.Events() {
		switch e.Kind {
		case trace.KindFetch:
			live[e.Seq] = &rec{seq: e.Seq, idx: e.Idx, pc: e.PC, fetched: e.Cycle}
		case trace.KindIssue:
			if r := live[e.Seq]; r != nil {
				r.issued = e.Cycle
			}
		case trace.KindWriteback:
			if r := live[e.Seq]; r != nil {
				r.done = e.Cycle
			}
		case trace.KindSquash:
			delete(live, e.Seq)
		case trace.KindCommit:
			if r := live[e.Seq]; r != nil {
				r.committed, r.queue, r.ooo = e.Cycle, e.Arg, e.OoO
				commitOrder = append(commitOrder, r)
				delete(live, e.Seq)
			}
		}
	}

	if len(commitOrder) <= *skip {
		fatalf("only %d instructions committed; lower -skip", len(commitOrder))
	}
	recs := commitOrder[*skip:]
	if len(recs) > *n {
		recs = recs[:*n]
	}
	// Display in program order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].idx < recs[j].idx })

	lo, hi := recs[0].fetched, recs[0].committed
	for _, r := range recs {
		if r.fetched < lo {
			lo = r.fetched
		}
		if r.committed > hi {
			hi = r.committed
		}
	}
	span := hi - lo + 1
	scaleDiv := int64(1)
	for span/scaleDiv > int64(*width) {
		scaleDiv++
	}
	col2 := func(cyc int64) int { return int((cyc - lo) / scaleDiv) }

	fmt.Printf("workload %s, policy %s — cycles %d..%d (each column = %d cycle(s))\n",
		*workload, st.Policy, lo, hi, scaleDiv)
	fmt.Printf("F fetch   I issue   X complete   C commit   c out-of-order commit   | queue id\n\n")
	for _, r := range recs {
		line := make([]byte, col2(hi)+1)
		for i := range line {
			line[i] = ' '
		}
		put := func(cyc int64, ch byte) {
			if p := col2(cyc); p >= 0 && p < len(line) {
				line[p] = ch // later stages overwrite
			}
		}
		for p := col2(r.fetched) + 1; p < col2(r.committed) && p < len(line); p++ {
			line[p] = '.'
		}
		put(r.fetched, 'F')
		if r.issued > 0 {
			put(r.issued, 'I')
		}
		if r.done > 0 {
			put(r.done, 'X')
		}
		commitCh := byte('C')
		if r.ooo {
			commitCh = 'c'
		}
		put(r.committed, commitCh)

		queue := " "
		if r.queue >= 0 {
			queue = fmt.Sprintf("%d", r.queue)
		}
		asm := ""
		if r.pc >= 0 && r.pc < len(res.Image.Insts) {
			asm = res.Image.Insts[r.pc].String()
		}
		fmt.Printf("%6d %-26s %s |%s\n", r.idx, clip(asm, 26), string(line), queue)
	}
	fmt.Printf("\nIPC %.2f, %d/%d committed out of order\n", st.IPC(), st.OoOCommitted, st.Committed)
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "noreba-pipeview: "+format+"\n", args...)
	os.Exit(1)
}
