// Command noreba-compile runs the branch-dependent code detection pass over
// an assembly file or built-in workload and prints the annotated assembly
// with setBranchId/setDependency setup instructions inserted, plus the
// pass's statistics and per-branch metadata.
//
// Usage:
//
//	noreba-compile -workload astar
//	noreba-compile -file kernel.s -mark-loop-branches
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/compiler"
)

// compilerSave serialises the compile result as a bundle.
func compilerSave(res *noreba.CompileResult) ([]byte, error) { return compiler.SaveBundle(res) }

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload name")
		file     = flag.String("file", "", "assembly file to compile")
		scale    = flag.Int("scale", 2, "workload scale")
		markLoop = flag.Bool("mark-loop-branches", false, "also mark loop-closing branches (ablation)")
		quiet    = flag.Bool("quiet", false, "print statistics only, not the assembly")
		out      = flag.String("o", "", "write a compiled bundle (.nrb) for noreba-sim -image")
	)
	flag.Parse()

	var prog *noreba.Program
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatalf("%v", err)
		}
		p, err := noreba.Assemble(*file, string(src))
		if err != nil {
			fatalf("%v", err)
		}
		prog = p
	case *workload != "":
		w, err := noreba.WorkloadByName(*workload)
		if err != nil {
			fatalf("%v", err)
		}
		prog = w.Build(*scale)
	default:
		fatalf("provide -workload or -file")
	}

	opt := noreba.DefaultCompileOptions()
	opt.MarkLoopBranches = *markLoop
	res, err := noreba.CompileWith(prog, opt)
	if err != nil {
		fatalf("%v", err)
	}

	if *out != "" {
		data, err := compilerSave(res)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("# wrote %s (%d bytes)\n", *out, len(data))
	}
	if !*quiet {
		fmt.Print(res.Image.Disassemble())
		fmt.Println()
	}
	st := res.Stats
	fmt.Printf("# conditional branches   %d (marked %d)\n", st.CondBranches, st.MarkedBranches)
	fmt.Printf("# dependent regions      %d covering %d instructions\n", st.Regions, st.DependentInsts)
	fmt.Printf("# setup instructions     %d (%d -> %d instructions, +%.1f%%)\n",
		st.SetupInsts, st.OriginalInsts, st.AnnotatedInsts,
		100*float64(st.AnnotatedInsts-st.OriginalInsts)/float64(st.OriginalInsts))
	if st.ChainExtensions > 0 {
		fmt.Printf("# chain extensions       %d (multi-dependence safety links)\n", st.ChainExtensions)
	}

	var pcs []int
	for pc := range res.Meta.Branches {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	fmt.Println("# branch metadata (pc, marked, id, reconvergence pc, taken/fall path lengths, static deps):")
	for _, pc := range pcs {
		bm := res.Meta.Branches[pc]
		fmt.Printf("#   pc %-5d marked=%-5v id=%d reconv=%-5d paths=%d/%d deps=%d\n",
			bm.PC, bm.Marked, bm.ID, bm.ReconvPC, bm.TakenLen, bm.FallLen, bm.StaticDeps)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "noreba-compile: "+format+"\n", args...)
	os.Exit(1)
}
