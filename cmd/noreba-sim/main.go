// Command noreba-sim runs one workload (built-in kernel, assembly file,
// generated program or recorded trace) through the cycle-level simulator
// under a chosen commit policy and prints the run's statistics.
//
// Usage:
//
//	noreba-sim -workload mcf -policy noreba
//	noreba-sim -file kernel.s -policy inorder -no-prefetch
//	noreba-sim -gen seed=42,crit=0.8 -policies inorder,noreba
//	noreba-sim -workload mcf -trace-out mcf.nrtf
//	noreba-sim -trace-in mcf.nrtf -policy noreba
//	noreba-sim -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/tracefile"
	"github.com/noreba-sim/noreba/internal/workgen"
)

var policies = map[string]noreba.Policy{
	"inorder": noreba.PolicyInOrder,
	"nonspec": noreba.PolicyNonSpecOoO,
	"noreba":  noreba.PolicyNoreba,
	"ideal":   noreba.PolicyIdealReconv,
	"specbr":  noreba.PolicySpecBR,
	"spec":    noreba.PolicySpec,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cli carries the output streams so the whole command is testable in
// process: run exercises exactly the code main ships.
type cli struct {
	stdout, stderr io.Writer
}

// errInterrupted marks a run that ended on SIGINT/SIGTERM after reporting
// partial statistics; main translates it to exit code 130.
var errInterrupted = errors.New("interrupted")

// run executes the command with explicit arguments and streams, returning
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	c := &cli{stdout: stdout, stderr: stderr}
	err := c.main(args)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errInterrupted):
		return 130
	case errors.Is(err, flag.ErrHelp):
		return 2
	default:
		fmt.Fprintf(stderr, "noreba-sim: %v\n", err)
		return 1
	}
}

func (c *cli) main(args []string) error {
	fs := flag.NewFlagSet("noreba-sim", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	var (
		workload   = fs.String("workload", "mcf", "built-in workload name (see -list)")
		file       = fs.String("file", "", "assembly file to run instead of a built-in workload")
		image      = fs.String("image", "", "compiled bundle (.nrb from noreba-compile -o) to run")
		gen        = fs.String("gen", "", "generate the program from a workgen spec (e.g. seed=42,crit=0.8,dep=12,mlp=4,store=0.5,nest=2,iters=300; only seed is required)")
		traceIn    = fs.String("trace-in", "", "replay a recorded trace file instead of emulating a program")
		traceOut   = fs.String("trace-out", "", "record the consumed dynamic instruction stream to this trace file")
		policyName = fs.String("policy", "noreba", "commit policy: inorder|nonspec|noreba|ideal|specbr|spec")
		policySet  = fs.String("policies", "", "comma-separated policy sweep (e.g. inorder,noreba,specbr): run every policy over ONE shared emulation and print a per-policy comparison")
		core       = fs.String("core", "skl", "core model: nhm|hsw|skl")
		scale      = fs.Int("scale", 0, "workload scale (0 = default)")
		maxInsts   = fs.Int64("max-insts", 1<<20, "dynamic instruction budget")
		noPrefetch = fs.Bool("no-prefetch", false, "disable the DCPT prefetcher")
		ecl        = fs.Bool("ecl", false, "enable Early Commit of Loads (§6.1.5)")
		list       = fs.Bool("list", false, "list built-in workloads and exit")
		jsonOut    = fs.Bool("json", false, "emit statistics as JSON")
		sample     = fs.Bool("sample", false, "estimate via SimPoint-style sampled simulation instead of a full run")
		planStore  = fs.String("plan-store", "", "directory caching built sampling plans (with -sample): a warm store skips profiling, clustering and checkpointing entirely")
		sanitize   = fs.Bool("sanitize", false, "run with the pipeline invariant checker (fails fast on violations)")
		traceFile  = fs.String("trace", "", "stream per-stage pipeline events as JSON lines to this file ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, w := range noreba.Workloads() {
			fmt.Fprintf(c.stdout, "%-14s %s (default scale %d)\n", w.Name, w.Suite, w.DefaultScale)
		}
		return nil
	}

	policy, ok := policies[strings.ToLower(*policyName)]
	if !ok {
		return fmt.Errorf("unknown policy %q", *policyName)
	}
	var sweep []string
	if *policySet != "" {
		for _, n := range strings.Split(*policySet, ",") {
			n = strings.ToLower(strings.TrimSpace(n))
			if n == "" {
				continue
			}
			if _, ok := policies[n]; !ok {
				return fmt.Errorf("unknown policy %q in -policies", n)
			}
			sweep = append(sweep, n)
		}
		if len(sweep) == 0 {
			return fmt.Errorf("-policies lists no policies")
		}
		if *sample {
			return fmt.Errorf("-policies runs all policies over one shared emulation; it cannot be combined with -sample")
		}
		if *traceFile != "" {
			return fmt.Errorf("-policies cannot be combined with -trace (one event stream per core would interleave)")
		}
	}
	inputs := 0
	for _, set := range []bool{*file != "", *image != "", *gen != "", *traceIn != ""} {
		if set {
			inputs++
		}
	}
	if inputs > 1 {
		return fmt.Errorf("-file, -image, -gen and -trace-in are mutually exclusive")
	}
	if *sample && (*traceIn != "" || *traceOut != "") {
		return fmt.Errorf("sampled simulation replays checkpoints, not a single stream; it cannot be combined with -trace-in/-trace-out")
	}
	if *planStore != "" && !*sample {
		return fmt.Errorf("-plan-store caches sampling plans; it requires -sample")
	}

	var cfg noreba.Config
	switch strings.ToLower(*core) {
	case "nhm":
		cfg = noreba.Nehalem(policy)
	case "hsw":
		cfg = noreba.Haswell(policy)
	case "skl":
		cfg = noreba.Skylake(policy)
	default:
		return fmt.Errorf("unknown core %q", *core)
	}
	cfg.PrefetchEnabled = !*noPrefetch
	cfg.ECL = *ecl
	cfg.Sanitize = *sanitize

	// -trace streams the event log as JSONL and folds a metrics summary
	// printed after the run.
	var metrics *noreba.MetricsRegistry
	var finishTrace func() error
	if *traceFile != "" {
		out := c.stdout
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			out = f
		}
		jsonl := noreba.NewJSONLSink(out)
		m := noreba.NewMetricsSink(nil)
		metrics = m.Registry()
		cfg.TraceSink = noreba.TeeSinks(jsonl, m)
		finishTrace = func() error {
			if err := jsonl.Close(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			return nil
		}
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the pipeline stops at
	// its next cancellation check and the partial statistics accumulated so
	// far are still reported instead of being lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Resolve the input to a trace source (or, for -sample, a compiled
	// result). Exactly one of src/res is used per mode.
	var (
		name string
		src  noreba.TraceSource
		meta *compiler.Meta
		res  *noreba.CompileResult
	)
	switch {
	case *traceIn != "":
		f, err := os.Open(*traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		rd, err := tracefile.Open(f)
		if err != nil {
			return err
		}
		name, src, meta = rd.Name(), rd, rd.Meta()

	case *image != "":
		data, err := os.ReadFile(*image)
		if err != nil {
			return err
		}
		img, m, err := compiler.LoadBundle(data)
		if err != nil {
			return err
		}
		name, meta = *image, m
		if !*sample {
			src = emulator.NewSource(emulator.New(img), *maxInsts)
		} else {
			res = &noreba.CompileResult{Image: img, Meta: m}
		}

	default:
		var prog *noreba.Program
		switch {
		case *file != "":
			srcText, err := os.ReadFile(*file)
			if err != nil {
				return err
			}
			p, err := noreba.Assemble(*file, string(srcText))
			if err != nil {
				return err
			}
			prog, name = p, *file
		case *gen != "":
			params, err := workgen.ParseSpec(*gen)
			if err != nil {
				return err
			}
			p, ch, err := workgen.Generate(params)
			if err != nil {
				return err
			}
			fmt.Fprintf(c.stderr, "generated %s\n", ch)
			prog, name = p, params.Name()
		default:
			w, err := noreba.WorkloadByName(*workload)
			if err != nil {
				return err
			}
			s := w.DefaultScale
			if *scale > 0 {
				s = *scale
			}
			prog, name = w.Build(s), *workload
		}
		r, err := noreba.Compile(prog)
		if err != nil {
			return fmt.Errorf("compile: %w", err)
		}
		res, meta = r, r.Meta
		if !*sample {
			src = noreba.StreamTrace(r, *maxInsts)
		}
	}

	// -trace-out tees the consumed stream into a trace file: the recorder
	// wraps the source, so recording adds no second emulation.
	var finishRecord func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		rec, err := tracefile.NewRecorder(src, f, meta)
		if err != nil {
			f.Close()
			return err
		}
		src = rec
		finishRecord = func() error {
			if err := rec.Close(); err != nil {
				f.Close()
				return fmt.Errorf("trace-out: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("trace-out: %w", err)
			}
			return nil
		}
	}

	var runErr error
	if len(sweep) > 0 {
		runErr = c.runPolicySweep(ctx, cfg, sweep, name, src, meta, *jsonOut)
	} else {
		var st *noreba.Stats
		var err error
		if *sample {
			st, err = c.simulateSampled(ctx, cfg, res, *maxInsts, *planStore)
		} else {
			st, err = noreba.SimulateSourceContext(ctx, cfg, src, meta)
		}
		runErr = c.reportMaybePartial(name, cfg, st, *jsonOut, err)
	}
	if runErr != nil && !errors.Is(runErr, errInterrupted) {
		return runErr
	}
	if finishRecord != nil {
		if err := finishRecord(); err != nil {
			return err
		}
	}
	if err := c.finishRun(metrics, finishTrace); err != nil {
		return err
	}
	return runErr
}

// runPolicySweep runs every named policy over ONE shared functional
// emulation — src is fanned out through the broadcast trace bus, each
// policy's core consuming its own lockstep view — and prints a per-policy
// comparison (IPC plus speedup over the first policy listed). It returns
// errInterrupted when the sweep was cut short by a signal.
func (c *cli) runPolicySweep(ctx context.Context, base noreba.Config, sweep []string, name string, src noreba.TraceSource, meta *compiler.Meta, asJSON bool) error {
	cfgs := make([]noreba.Config, len(sweep))
	for i, pn := range sweep {
		cfgs[i] = base
		cfgs[i].Policy = policies[pn]
	}
	stats, err := noreba.SimulateFanoutContext(ctx, cfgs, src, meta)
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !interrupted {
		return fmt.Errorf("simulate: %w", err)
	}
	if interrupted {
		fmt.Fprintln(c.stderr, "noreba-sim: interrupted — partial statistics follow")
	}

	if asJSON {
		var out []map[string]any
		for i, st := range stats {
			if st == nil {
				continue
			}
			out = append(out, map[string]any{
				"workload":     name,
				"core":         cfgs[i].Name,
				"policy":       st.Policy,
				"dynamicInsts": st.TraceInsts,
				"cycles":       st.Cycles,
				"ipc":          st.IPC(),
				"oooFraction":  st.OoOCommitFraction(),
				"speedup":      speedupOverFirst(stats, i),
			})
		}
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
		if interrupted {
			return errInterrupted
		}
		return nil
	}

	fmt.Fprintf(c.stdout, "workload %s  core %s  (one shared emulation, %d policies)\n", name, base.Name, len(cfgs))
	fmt.Fprintf(c.stdout, "%-22s %12s %8s %8s %8s\n", "policy", "cycles", "IPC", "OoO%", "speedup")
	for i, st := range stats {
		if st == nil {
			fmt.Fprintf(c.stdout, "%-22s %12s\n", sweep[i], "-")
			continue
		}
		fmt.Fprintf(c.stdout, "%-22s %12d %8.3f %7.1f%% %7.3fx\n",
			st.Policy, st.Cycles, st.IPC(), 100*st.OoOCommitFraction(), speedupOverFirst(stats, i))
	}
	if interrupted {
		return errInterrupted
	}
	return nil
}

// speedupOverFirst returns stats[i]'s cycle-count speedup over the sweep's
// first finished policy (the comparison baseline).
func speedupOverFirst(stats []*noreba.Stats, i int) float64 {
	for _, st := range stats {
		if st != nil && st.Cycles > 0 && stats[i] != nil && stats[i].Cycles > 0 {
			return float64(st.Cycles) / float64(stats[i].Cycles)
		}
	}
	return 0
}

// simulateSampled estimates the run via a SimPoint-style sampling plan:
// profile, cluster, checkpoint (or a plan-store load of all three), then
// detailed simulation of the representative windows only, fanned over the
// available CPUs.
func (c *cli) simulateSampled(ctx context.Context, cfg noreba.Config, res *noreba.CompileResult, maxInsts int64, storeDir string) (*noreba.Stats, error) {
	pl, err := c.samplingPlan(res, maxInsts, noreba.DefaultSampling(), storeDir)
	if err != nil {
		return nil, err
	}
	return pl.EstimateContextN(ctx, cfg, res.Meta, runtime.GOMAXPROCS(0))
}

// planFileExt suffixes content-addressed plan files in a -plan-store
// directory.
const planFileExt = ".nrpf"

// samplingPlan returns the plan for (res, maxInsts, p): from the plan-store
// directory when it holds a usable file for this exact program, stream bound
// and parameters, otherwise built fresh and written back. Which path was
// taken is reported on stderr (stdout stays clean for -json). A store
// that is missing, stale or unwritable never fails the run — plans are a
// cache, the build is always available.
func (c *cli) samplingPlan(res *noreba.CompileResult, maxInsts int64, p noreba.SamplingParams, storeDir string) (*noreba.SamplingPlan, error) {
	if storeDir == "" {
		return noreba.BuildSamplingPlan(res, maxInsts, p)
	}
	key := noreba.SamplingPlanKey(res, maxInsts, p)
	path := filepath.Join(storeDir, key+planFileExt)
	if data, err := os.ReadFile(path); err == nil {
		pl, err := noreba.LoadSamplingPlan(data, res, maxInsts, p)
		if err == nil {
			fmt.Fprintf(c.stderr, "noreba-sim: sampling plan loaded from store (%s)\n", key[:12])
			return pl, nil
		}
		fmt.Fprintf(c.stderr, "noreba-sim: stored sampling plan unusable, rebuilding: %v\n", err)
	}
	pl, err := noreba.BuildSamplingPlan(res, maxInsts, p)
	if err != nil {
		return nil, err
	}
	if err := writePlanFile(storeDir, path, noreba.EncodeSamplingPlan(pl)); err != nil {
		fmt.Fprintf(c.stderr, "noreba-sim: sampling plan built; store write failed: %v\n", err)
	} else {
		fmt.Fprintf(c.stderr, "noreba-sim: sampling plan built and stored (%s)\n", key[:12])
	}
	return pl, nil
}

// writePlanFile commits a plan file atomically (temp file + rename) so an
// interrupted run never leaves a torn file a later run would have to
// re-detect as corrupt.
func writePlanFile(dir, path string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "plan-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
	}
	return err
}

// reportMaybePartial prints a finished run's statistics, or — when the run
// was interrupted by SIGINT/SIGTERM — the partial statistics up to the
// cancellation point with a note on stderr (returning errInterrupted). Any
// other simulation error is returned as is.
func (c *cli) reportMaybePartial(name string, cfg noreba.Config, st *noreba.Stats, asJSON bool, err error) error {
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !interrupted {
		return fmt.Errorf("simulate: %w", err)
	}
	if interrupted {
		if st == nil {
			// A cancelled sampled estimate has no partial statistics to show.
			fmt.Fprintln(c.stderr, "noreba-sim: interrupted")
			return errInterrupted
		}
		fmt.Fprintf(c.stderr, "noreba-sim: interrupted — partial statistics up to cycle %d:\n", st.Cycles)
	}
	if err := c.report(name, cfg, st, asJSON); err != nil {
		return err
	}
	if interrupted {
		return errInterrupted
	}
	return nil
}

// finishRun flushes the JSONL event stream and prints the folded metrics
// summary to stderr (keeping stdout clean for -json and -trace -).
func (c *cli) finishRun(metrics *noreba.MetricsRegistry, finishTrace func() error) error {
	if finishTrace != nil {
		if err := finishTrace(); err != nil {
			return err
		}
	}
	if metrics != nil {
		fmt.Fprintln(c.stderr, "event metrics:")
		metrics.WriteSummary(c.stderr)
	}
	return nil
}

// report prints a run's statistics, as text or JSON.
func (c *cli) report(name string, cfg noreba.Config, st *noreba.Stats, asJSON bool) error {
	breakdown := noreba.EstimatePower(cfg, st)
	if asJSON {
		out := map[string]any{
			"workload":        name,
			"core":            cfg.Name,
			"policy":          st.Policy,
			"prefetch":        cfg.PrefetchEnabled,
			"ecl":             cfg.ECL,
			"dynamicInsts":    st.TraceInsts,
			"cycles":          st.Cycles,
			"ipc":             st.IPC(),
			"oooCommitted":    st.OoOCommitted,
			"oooFraction":     st.OoOCommitFraction(),
			"branches":        st.Branches,
			"mispredicts":     st.Mispredicts,
			"mispredictRate":  st.MispredictRate(),
			"l1dAccesses":     st.L1DAccesses,
			"l1dMisses":       st.L1DMisses,
			"prefetchIssued":  st.PrefetchIssued,
			"prefetchUseful":  st.PrefetchUseful,
			"fetchedSetup":    st.FetchedSetup,
			"citDrops":        st.CITDrops,
			"citAllocations":  st.CITAllocs,
			"stallROB":        st.StallROB,
			"stallIQ":         st.StallIQ,
			"stallLQ":         st.StallLQ,
			"stallSQ":         st.StallSQ,
			"stallRegs":       st.StallRegs,
			"modelPower":      breakdown.TotalPower(),
			"modelArea":       breakdown.TotalArea(),
			"fencesCommitted": st.FencesCommitted,
		}
		if st.Sampled {
			out["sampled"] = true
			out["sampledIntervals"] = st.SampledIntervals
			out["sampledDetailInsts"] = st.SampledDetailInsts
		}
		enc := json.NewEncoder(c.stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Fprintf(c.stdout, "workload        %s (%d dynamic instructions)\n", name, st.TraceInsts)
	fmt.Fprintf(c.stdout, "core            %s  policy %s  prefetch %v  ECL %v\n", cfg.Name, st.Policy, cfg.PrefetchEnabled, cfg.ECL)
	if st.Sampled {
		fmt.Fprintf(c.stdout, "sampled         %d representative intervals, %d detailed insts (estimates)\n",
			st.SampledIntervals, st.SampledDetailInsts)
	}
	fmt.Fprintf(c.stdout, "cycles          %d\n", st.Cycles)
	fmt.Fprintf(c.stdout, "IPC             %.3f\n", st.IPC())
	fmt.Fprintf(c.stdout, "OoO committed   %d (%.1f%% of commits)\n", st.OoOCommitted, 100*st.OoOCommitFraction())
	fmt.Fprintf(c.stdout, "branches        %d (%.2f%% mispredicted)\n", st.Branches, 100*st.MispredictRate())
	fmt.Fprintf(c.stdout, "L1D             %d accesses, %d misses\n", st.L1DAccesses, st.L1DMisses)
	fmt.Fprintf(c.stdout, "prefetches      %d issued, %d useful\n", st.PrefetchIssued, st.PrefetchUseful)
	fmt.Fprintf(c.stdout, "setup insts     %d fetched, CIT drops %d\n", st.FetchedSetup, st.CITDrops)
	fmt.Fprintf(c.stdout, "dispatch stalls ROB %d  IQ %d  LQ %d  SQ %d  regs %d\n",
		st.StallROB, st.StallIQ, st.StallLQ, st.StallSQ, st.StallRegs)
	fmt.Fprintf(c.stdout, "power (model)   %.3f  area %.3f\n", breakdown.TotalPower(), breakdown.TotalArea())

	// Figure-7-style criticality: the five worst branches.
	type crit struct {
		pc                 int
		stall, deps, occur int64
	}
	var crits []crit
	for pc, bs := range st.BranchStalls {
		if bs.StallCycles > 0 {
			crits = append(crits, crit{pc, bs.StallCycles, bs.Dependents, bs.Occurrences})
		}
	}
	sort.Slice(crits, func(i, j int) bool { return crits[i].stall > crits[j].stall })
	if len(crits) > 5 {
		crits = crits[:5]
	}
	if len(crits) > 0 {
		fmt.Fprintln(c.stdout, "critical branches (pc, stall cycles, dynamic dependents, occurrences):")
		for _, c2 := range crits {
			fmt.Fprintf(c.stdout, "  pc %-6d stall %-8d deps %-8d occ %d\n", c2.pc, c2.stall, c2.deps, c2.occur)
		}
	}
	return nil
}
