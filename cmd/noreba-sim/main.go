// Command noreba-sim runs one workload (built-in kernel or assembly file)
// through the cycle-level simulator under a chosen commit policy and prints
// the run's statistics.
//
// Usage:
//
//	noreba-sim -workload mcf -policy noreba
//	noreba-sim -file kernel.s -policy inorder -no-prefetch
//	noreba-sim -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
)

var policies = map[string]noreba.Policy{
	"inorder": noreba.PolicyInOrder,
	"nonspec": noreba.PolicyNonSpecOoO,
	"noreba":  noreba.PolicyNoreba,
	"ideal":   noreba.PolicyIdealReconv,
	"specbr":  noreba.PolicySpecBR,
	"spec":    noreba.PolicySpec,
}

func main() {
	var (
		workload   = flag.String("workload", "mcf", "built-in workload name (see -list)")
		file       = flag.String("file", "", "assembly file to run instead of a built-in workload")
		image      = flag.String("image", "", "compiled bundle (.nrb from noreba-compile -o) to run")
		policyName = flag.String("policy", "noreba", "commit policy: inorder|nonspec|noreba|ideal|specbr|spec")
		policySet  = flag.String("policies", "", "comma-separated policy sweep (e.g. inorder,noreba,specbr): run every policy over ONE shared emulation and print a per-policy comparison")
		core       = flag.String("core", "skl", "core model: nhm|hsw|skl")
		scale      = flag.Int("scale", 0, "workload scale (0 = default)")
		maxInsts   = flag.Int64("max-insts", 1<<20, "dynamic instruction budget")
		noPrefetch = flag.Bool("no-prefetch", false, "disable the DCPT prefetcher")
		ecl        = flag.Bool("ecl", false, "enable Early Commit of Loads (§6.1.5)")
		list       = flag.Bool("list", false, "list built-in workloads and exit")
		jsonOut    = flag.Bool("json", false, "emit statistics as JSON")
		sample     = flag.Bool("sample", false, "estimate via SimPoint-style sampled simulation instead of a full run")
		sanitize   = flag.Bool("sanitize", false, "run with the pipeline invariant checker (fails fast on violations)")
		traceFile  = flag.String("trace", "", "stream per-stage pipeline events as JSON lines to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		for _, w := range noreba.Workloads() {
			fmt.Printf("%-14s %s (default scale %d)\n", w.Name, w.Suite, w.DefaultScale)
		}
		return
	}

	policy, ok := policies[strings.ToLower(*policyName)]
	if !ok {
		fatalf("unknown policy %q", *policyName)
	}
	var sweep []string
	if *policySet != "" {
		for _, n := range strings.Split(*policySet, ",") {
			n = strings.ToLower(strings.TrimSpace(n))
			if n == "" {
				continue
			}
			if _, ok := policies[n]; !ok {
				fatalf("unknown policy %q in -policies", n)
			}
			sweep = append(sweep, n)
		}
		if len(sweep) == 0 {
			fatalf("-policies lists no policies")
		}
		if *sample {
			fatalf("-policies runs all policies over one shared emulation; it cannot be combined with -sample")
		}
		if *traceFile != "" {
			fatalf("-policies cannot be combined with -trace (one event stream per core would interleave)")
		}
	}
	var cfg noreba.Config
	switch strings.ToLower(*core) {
	case "nhm":
		cfg = noreba.Nehalem(policy)
	case "hsw":
		cfg = noreba.Haswell(policy)
	case "skl":
		cfg = noreba.Skylake(policy)
	default:
		fatalf("unknown core %q", *core)
	}
	cfg.PrefetchEnabled = !*noPrefetch
	cfg.ECL = *ecl
	cfg.Sanitize = *sanitize

	// -trace streams the event log as JSONL and folds a metrics summary
	// printed after the run.
	var metrics *noreba.MetricsRegistry
	var finishTrace func()
	if *traceFile != "" {
		out := os.Stdout
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatalf("%v", err)
			}
			out = f
		}
		jsonl := noreba.NewJSONLSink(out)
		m := noreba.NewMetricsSink(nil)
		metrics = m.Registry()
		cfg.TraceSink = noreba.TeeSinks(jsonl, m)
		finishTrace = func() {
			if err := jsonl.Close(); err != nil {
				fatalf("trace: %v", err)
			}
		}
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the pipeline stops at
	// its next cancellation check and the partial statistics accumulated so
	// far are still reported instead of being lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *image != "" {
		data, err := os.ReadFile(*image)
		if err != nil {
			fatalf("%v", err)
		}
		img, meta, err := compiler.LoadBundle(data)
		if err != nil {
			fatalf("%v", err)
		}
		if len(sweep) > 0 {
			src := emulator.NewSource(emulator.New(img), *maxInsts)
			if runPolicySweep(ctx, cfg, sweep, *image, src, meta, *jsonOut) {
				os.Exit(130)
			}
			return
		}
		var st *noreba.Stats
		if *sample {
			st, err = simulateSampled(ctx, cfg, &compiler.Result{Image: img, Meta: meta}, *maxInsts)
		} else {
			src := emulator.NewSource(emulator.New(img), *maxInsts)
			st, err = noreba.SimulateSourceContext(ctx, cfg, src, meta)
		}
		interrupted := reportMaybePartial(*image, cfg, st, *jsonOut, err)
		finishRun(metrics, finishTrace)
		if interrupted {
			os.Exit(130)
		}
		return
	}

	var prog *noreba.Program
	name := *workload
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fatalf("%v", err)
		}
		p, err := noreba.Assemble(*file, string(src))
		if err != nil {
			fatalf("%v", err)
		}
		prog, name = p, *file
	} else {
		w, err := noreba.WorkloadByName(*workload)
		if err != nil {
			fatalf("%v", err)
		}
		s := w.DefaultScale
		if *scale > 0 {
			s = *scale
		}
		prog = w.Build(s)
	}

	res, err := noreba.Compile(prog)
	if err != nil {
		fatalf("compile: %v", err)
	}
	if len(sweep) > 0 {
		if runPolicySweep(ctx, cfg, sweep, name, noreba.StreamTrace(res, *maxInsts), res.Meta, *jsonOut) {
			os.Exit(130)
		}
		return
	}
	var st *noreba.Stats
	if *sample {
		st, err = simulateSampled(ctx, cfg, res, *maxInsts)
	} else {
		st, err = noreba.SimulateSourceContext(ctx, cfg, noreba.StreamTrace(res, *maxInsts), res.Meta)
	}
	interrupted := reportMaybePartial(name, cfg, st, *jsonOut, err)
	finishRun(metrics, finishTrace)
	if interrupted {
		os.Exit(130)
	}
}

// runPolicySweep runs every named policy over ONE shared functional
// emulation — src is fanned out through the broadcast trace bus, each
// policy's core consuming its own lockstep view — and prints a per-policy
// comparison (IPC plus speedup over the first policy listed). It reports
// whether the sweep was interrupted.
func runPolicySweep(ctx context.Context, base noreba.Config, sweep []string, name string, src noreba.TraceSource, meta *compiler.Meta, asJSON bool) bool {
	cfgs := make([]noreba.Config, len(sweep))
	for i, pn := range sweep {
		cfgs[i] = base
		cfgs[i].Policy = policies[pn]
	}
	stats, err := noreba.SimulateFanoutContext(ctx, cfgs, src, meta)
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !interrupted {
		fatalf("simulate: %v", err)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "noreba-sim: interrupted — partial statistics follow")
	}

	if asJSON {
		var out []map[string]any
		for i, st := range stats {
			if st == nil {
				continue
			}
			out = append(out, map[string]any{
				"workload":     name,
				"core":         cfgs[i].Name,
				"policy":       st.Policy,
				"dynamicInsts": st.TraceInsts,
				"cycles":       st.Cycles,
				"ipc":          st.IPC(),
				"oooFraction":  st.OoOCommitFraction(),
				"speedup":      speedupOverFirst(stats, i),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
		return interrupted
	}

	fmt.Printf("workload %s  core %s  (one shared emulation, %d policies)\n", name, base.Name, len(cfgs))
	fmt.Printf("%-22s %12s %8s %8s %8s\n", "policy", "cycles", "IPC", "OoO%", "speedup")
	for i, st := range stats {
		if st == nil {
			fmt.Printf("%-22s %12s\n", sweep[i], "-")
			continue
		}
		fmt.Printf("%-22s %12d %8.3f %7.1f%% %7.3fx\n",
			st.Policy, st.Cycles, st.IPC(), 100*st.OoOCommitFraction(), speedupOverFirst(stats, i))
	}
	return interrupted
}

// speedupOverFirst returns stats[i]'s cycle-count speedup over the sweep's
// first finished policy (the comparison baseline).
func speedupOverFirst(stats []*noreba.Stats, i int) float64 {
	for _, st := range stats {
		if st != nil && st.Cycles > 0 && stats[i] != nil && stats[i].Cycles > 0 {
			return float64(st.Cycles) / float64(stats[i].Cycles)
		}
	}
	return 0
}

// simulateSampled estimates the run via a SimPoint-style sampling plan:
// profile, cluster, checkpoint, then detailed simulation of the
// representative windows only.
func simulateSampled(ctx context.Context, cfg noreba.Config, res *noreba.CompileResult, maxInsts int64) (*noreba.Stats, error) {
	pl, err := noreba.BuildSamplingPlan(res, maxInsts, noreba.DefaultSampling())
	if err != nil {
		return nil, err
	}
	return pl.EstimateContext(ctx, cfg, res.Meta)
}

// reportMaybePartial prints a finished run's statistics, or — when the run
// was interrupted by SIGINT/SIGTERM — the partial statistics up to the
// cancellation point with a note on stderr. Any other simulation error is
// fatal. It reports whether the run was interrupted.
func reportMaybePartial(name string, cfg noreba.Config, st *noreba.Stats, asJSON bool, err error) bool {
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !interrupted {
		fatalf("simulate: %v", err)
	}
	if interrupted {
		if st == nil {
			// A cancelled sampled estimate has no partial statistics to show.
			fmt.Fprintln(os.Stderr, "noreba-sim: interrupted")
			return true
		}
		fmt.Fprintf(os.Stderr, "noreba-sim: interrupted — partial statistics up to cycle %d:\n", st.Cycles)
	}
	report(name, cfg, st, asJSON)
	return interrupted
}

// finishRun flushes the JSONL event stream and prints the folded metrics
// summary to stderr (keeping stdout clean for -json and -trace -).
func finishRun(metrics *noreba.MetricsRegistry, finishTrace func()) {
	if finishTrace != nil {
		finishTrace()
	}
	if metrics != nil {
		fmt.Fprintln(os.Stderr, "event metrics:")
		metrics.WriteSummary(os.Stderr)
	}
}

// report prints a run's statistics, as text or JSON.
func report(name string, cfg noreba.Config, st *noreba.Stats, asJSON bool) {
	breakdown := noreba.EstimatePower(cfg, st)
	if asJSON {
		out := map[string]any{
			"workload":        name,
			"core":            cfg.Name,
			"policy":          st.Policy,
			"prefetch":        cfg.PrefetchEnabled,
			"ecl":             cfg.ECL,
			"dynamicInsts":    st.TraceInsts,
			"cycles":          st.Cycles,
			"ipc":             st.IPC(),
			"oooCommitted":    st.OoOCommitted,
			"oooFraction":     st.OoOCommitFraction(),
			"branches":        st.Branches,
			"mispredicts":     st.Mispredicts,
			"mispredictRate":  st.MispredictRate(),
			"l1dAccesses":     st.L1DAccesses,
			"l1dMisses":       st.L1DMisses,
			"prefetchIssued":  st.PrefetchIssued,
			"prefetchUseful":  st.PrefetchUseful,
			"fetchedSetup":    st.FetchedSetup,
			"citDrops":        st.CITDrops,
			"citAllocations":  st.CITAllocs,
			"stallROB":        st.StallROB,
			"stallIQ":         st.StallIQ,
			"stallLQ":         st.StallLQ,
			"stallSQ":         st.StallSQ,
			"stallRegs":       st.StallRegs,
			"modelPower":      breakdown.TotalPower(),
			"modelArea":       breakdown.TotalArea(),
			"fencesCommitted": st.FencesCommitted,
		}
		if st.Sampled {
			out["sampled"] = true
			out["sampledIntervals"] = st.SampledIntervals
			out["sampledDetailInsts"] = st.SampledDetailInsts
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Printf("workload        %s (%d dynamic instructions)\n", name, st.TraceInsts)
	fmt.Printf("core            %s  policy %s  prefetch %v  ECL %v\n", cfg.Name, st.Policy, cfg.PrefetchEnabled, cfg.ECL)
	if st.Sampled {
		fmt.Printf("sampled         %d representative intervals, %d detailed insts (estimates)\n",
			st.SampledIntervals, st.SampledDetailInsts)
	}
	fmt.Printf("cycles          %d\n", st.Cycles)
	fmt.Printf("IPC             %.3f\n", st.IPC())
	fmt.Printf("OoO committed   %d (%.1f%% of commits)\n", st.OoOCommitted, 100*st.OoOCommitFraction())
	fmt.Printf("branches        %d (%.2f%% mispredicted)\n", st.Branches, 100*st.MispredictRate())
	fmt.Printf("L1D             %d accesses, %d misses\n", st.L1DAccesses, st.L1DMisses)
	fmt.Printf("prefetches      %d issued, %d useful\n", st.PrefetchIssued, st.PrefetchUseful)
	fmt.Printf("setup insts     %d fetched, CIT drops %d\n", st.FetchedSetup, st.CITDrops)
	fmt.Printf("dispatch stalls ROB %d  IQ %d  LQ %d  SQ %d  regs %d\n",
		st.StallROB, st.StallIQ, st.StallLQ, st.StallSQ, st.StallRegs)
	fmt.Printf("power (model)   %.3f  area %.3f\n", breakdown.TotalPower(), breakdown.TotalArea())

	// Figure-7-style criticality: the five worst branches.
	type crit struct {
		pc                 int
		stall, deps, occur int64
	}
	var crits []crit
	for pc, bs := range st.BranchStalls {
		if bs.StallCycles > 0 {
			crits = append(crits, crit{pc, bs.StallCycles, bs.Dependents, bs.Occurrences})
		}
	}
	sort.Slice(crits, func(i, j int) bool { return crits[i].stall > crits[j].stall })
	if len(crits) > 5 {
		crits = crits[:5]
	}
	if len(crits) > 0 {
		fmt.Println("critical branches (pc, stall cycles, dynamic dependents, occurrences):")
		for _, c := range crits {
			fmt.Printf("  pc %-6d stall %-8d deps %-8d occ %d\n", c.pc, c.stall, c.deps, c.occur)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "noreba-sim: "+format+"\n", args...)
	os.Exit(1)
}
