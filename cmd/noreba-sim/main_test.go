package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI executes the command in process and returns (exit code, stdout,
// stderr) — the exact path main ships, minus os.Exit.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// genSpec is a small generated program: fast enough for CLI tests, rich
// enough (branches, loads, stores) that policies disagree on cycles.
const genSpec = "seed=42,crit=0.8,dep=6,mlp=2,store=0.3,nest=1,iters=40"

func TestListIncludesGeneratedSuite(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "gen/") || !strings.Contains(out, "generated") {
		t.Errorf("-list does not show the generated suite:\n%s", out)
	}
	if !strings.Contains(out, "mcf") {
		t.Errorf("-list lost the curated suite:\n%s", out)
	}
}

func TestPolicySweepTable(t *testing.T) {
	code, out, _ := runCLI(t, "-gen", genSpec, "-policies", "inorder,noreba,specbr")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "one shared emulation, 3 policies") {
		t.Errorf("sweep header missing:\n%s", out)
	}
	for _, want := range []string{"InO-C", "NOREBA", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}

func TestPolicySweepJSON(t *testing.T) {
	code, out, _ := runCLI(t, "-gen", genSpec, "-policies", "inorder,noreba", "-json")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatalf("sweep -json output not JSON: %v\n%s", err, out)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 policy rows, got %d", len(rows))
	}
	if got := rows[0]["speedup"].(float64); got != 1.0 {
		t.Errorf("first policy's speedup over itself = %v, want 1", got)
	}
	if rows[1]["speedup"].(float64) <= 1.0 {
		t.Errorf("NOREBA speedup over in-order %v, want > 1", rows[1]["speedup"])
	}
	for _, row := range rows {
		if row["workload"] != "gen/s42c80d6m2p30n1" {
			t.Errorf("row names workload %v, want the generator spec name", row["workload"])
		}
	}
}

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown policy", []string{"-policy", "warp"}, `unknown policy "warp"`},
		{"unknown sweep policy", []string{"-policies", "inorder,warp"}, `unknown policy "warp" in -policies`},
		{"empty sweep", []string{"-policies", " , "}, "-policies lists no policies"},
		{"sweep+sample", []string{"-policies", "inorder", "-sample"}, "cannot be combined with -sample"},
		{"sweep+trace", []string{"-policies", "inorder", "-trace", "-"}, "cannot be combined with -trace"},
		{"two inputs", []string{"-gen", "seed=1", "-file", "x.s"}, "mutually exclusive"},
		{"sample+trace-out", []string{"-sample", "-trace-out", "x.nrtf"}, "cannot be combined with -trace-in/-trace-out"},
		{"bad gen spec", []string{"-gen", "seed=1,bogus=3"}, "bogus"},
		{"unknown workload", []string{"-workload", "nosuch"}, "nosuch"},
		{"unknown core", []string{"-core", "m1"}, `unknown core "m1"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tc.args...)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut)
			}
			if !strings.Contains(errOut, tc.want) {
				t.Errorf("stderr %q does not mention %q", errOut, tc.want)
			}
		})
	}
}

// TestGenerateRecordReplay is the CLI interchange contract end to end:
// generate → simulate + record, then replay the trace file — both through
// the real flag surface — and require bit-identical cycle counts.
func TestGenerateRecordReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "gen.nrtf")

	cycles := func(args ...string) (string, float64) {
		t.Helper()
		code, out, errOut := runCLI(t, append(args, "-json")...)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errOut)
		}
		var st map[string]any
		if err := json.Unmarshal([]byte(out), &st); err != nil {
			t.Fatalf("bad -json output: %v", err)
		}
		return st["workload"].(string), st["cycles"].(float64)
	}

	liveName, liveCycles := cycles("-gen", genSpec, "-trace-out", trace)
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("recorded trace missing or empty: %v", err)
	}
	replayName, replayCycles := cycles("-trace-in", trace)

	if replayName != liveName {
		t.Errorf("replay names workload %q, live run %q", replayName, liveName)
	}
	if replayCycles != liveCycles {
		t.Errorf("replayed run took %v cycles, live run %v — trace interchange broke", replayCycles, liveCycles)
	}
}

// TestReplaySweepSharesTrace replays one recorded trace through a policy
// sweep: the reader feeds the broadcast bus exactly like a live emulation.
func TestReplaySweepSharesTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "sweep.nrtf")
	if code, _, errOut := runCLI(t, "-gen", genSpec, "-trace-out", trace); code != 0 {
		t.Fatalf("record failed: %s", errOut)
	}
	code, out, errOut := runCLI(t, "-trace-in", trace, "-policies", "inorder,noreba")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "gen/s42c80d6m2p30n1") {
		t.Errorf("sweep over a replayed trace lost the workload name:\n%s", out)
	}
}

func TestCorruptTraceNamesOffset(t *testing.T) {
	dir := t.TempDir()

	// Flip one mid-stream byte of a valid trace: Open succeeds, the failure
	// surfaces during the replay as a typed error naming the offset.
	trace := filepath.Join(dir, "ok.nrtf")
	if code, _, errOut := runCLI(t, "-gen", "seed=7,iters=5", "-trace-out", trace); code != 0 {
		t.Fatalf("record failed: %s", errOut)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	corrupt := filepath.Join(dir, "corrupt.nrtf")
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-trace-in", corrupt)
	if code != 1 {
		t.Fatalf("corrupt trace exited %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "tracefile:") || !strings.Contains(errOut, "offset") {
		t.Errorf("error does not name the corruption offset: %s", errOut)
	}

	// A truncated file (no end marker) must also fail loudly, not pass as a
	// shorter run.
	short := filepath.Join(dir, "short.nrtf")
	if err := os.WriteFile(short, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCLI(t, "-trace-in", short)
	if code != 1 {
		t.Fatalf("truncated trace exited %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "offset") {
		t.Errorf("truncation error does not name an offset: %s", errOut)
	}

	// Not a trace file at all: rejected at Open.
	bogus := filepath.Join(dir, "bogus.nrtf")
	if err := os.WriteFile(bogus, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut = runCLI(t, "-trace-in", bogus); code != 1 {
		t.Fatalf("bogus trace exited %d, want 1 (stderr: %s)", code, errOut)
	}
}

// TestGenReportsCharacter: -gen announces the realized character record on
// stderr (stdout stays clean for -json pipelines).
func TestGenReportsCharacter(t *testing.T) {
	code, out, errOut := runCLI(t, "-gen", "seed=3,iters=5", "-json")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "generated ") {
		t.Errorf("character record missing from stderr: %q", errOut)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Errorf("stdout polluted, not pure JSON: %v\n%s", err, out)
	}
}

func TestWorkloadRunStillWorks(t *testing.T) {
	code, out, errOut := runCLI(t, "-workload", "CRC32", "-scale", "64", "-max-insts", "20000")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"workload        CRC32", "cycles", "IPC"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
