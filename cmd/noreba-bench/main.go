// Command noreba-bench regenerates the paper's evaluation figures and
// tables over the synthetic workload suite.
//
// Usage:
//
//	noreba-bench                # all figures, full suite
//	noreba-bench -fig 6         # one figure
//	noreba-bench -quick         # reduced scales and suite (fast)
//	noreba-bench -tables        # Tables 2 and 3 (configurations)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/metrics"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure number to regenerate (0 = all)")
		quick      = flag.Bool("quick", false, "reduced workload scales and suite")
		tables     = flag.Bool("tables", false, "print configuration tables (Tables 2 and 3)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noreba-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "noreba-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "noreba-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "noreba-bench: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *tables {
		fmt.Print(noreba.ConfigTables())
		return
	}

	r := noreba.NewRunner()
	if *quick {
		r = noreba.QuickRunner()
	}

	type figure struct {
		n   int
		run func(*experiments.Runner) (fmt.Stringer, error)
	}
	figs := []figure{
		{1, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure1() }},
		{6, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure6() }},
		{7, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure7() }},
		{8, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure8() }},
		{9, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure9() }},
		{10, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure10() }},
		{11, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure11() }},
		{12, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure12() }},
		{13, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure13() }},
		{14, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure14() }},
		{15, func(r *experiments.Runner) (fmt.Stringer, error) { return r.Figure15() }},
		{16, func(r *experiments.Runner) (fmt.Stringer, error) {
			pow, area, err := r.Figure16()
			if err != nil {
				return nil, err
			}
			return both{pow, area}, nil
		}},
	}

	// Warm the runner through one batched pass over every selected figure's
	// requests: same-workload configurations share a single functional
	// emulation on the broadcast trace bus (across figures, not just within
	// one), and the figures below assemble from guaranteed cache hits.
	var names []string
	for _, f := range figs {
		if *fig == 0 || *fig == f.n {
			names = append(names, fmt.Sprintf("figure%d", f.n))
		}
	}
	if len(names) > 0 {
		start := time.Now()
		reqs, err := r.FigureRequests(names...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noreba-bench: %v\n", err)
			os.Exit(1)
		}
		if err := r.RunRequests(context.Background(), reqs); err != nil {
			fmt.Fprintf(os.Stderr, "noreba-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%d simulation requests warmed with %d functional emulations in %v)\n\n",
			len(reqs), r.EmulationsRun(), time.Since(start).Round(time.Millisecond))
	}

	ran := false
	for _, f := range figs {
		if *fig != 0 && *fig != f.n {
			continue
		}
		ran = true
		start := time.Now()
		out, err := f.run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noreba-bench: figure %d: %v\n", f.n, err)
			os.Exit(1)
		}
		fmt.Print(out.String())
		fmt.Printf("(figure %d regenerated in %v)\n\n", f.n, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "noreba-bench: no such figure %d (have 1, 6-16)\n", *fig)
		os.Exit(1)
	}
}

// both joins Figure 16's two tables.
type both struct{ a, b *metrics.Table }

func (b both) String() string { return b.a.String() + "\n" + b.b.String() }
