// Command noreba-serve runs the simulation service: an HTTP API over a
// priority-scheduled worker pool and a persistent, content-addressed result
// store, so figure and suite regenerations become schedulable, cancellable,
// observable jobs whose repeats are served from disk instead of
// re-simulated.
//
// Usage:
//
//	noreba-serve -addr :8080 -store ./noreba-store
//
// Example session:
//
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"workload":"mcf","policy":"noreba"}'          # → {"id":"job-000001",...}
//	curl -s localhost:8080/jobs/job-000001                 # status
//	curl -s localhost:8080/jobs/job-000001/result          # Stats JSON once done
//	curl -s localhost:8080/metrics                         # scheduler + store metrics
//
// SIGINT/SIGTERM drain gracefully: the listener closes, queued jobs are
// cancelled, and running simulations get -drain-timeout to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		storeDir     = flag.String("store", "noreba-store", "persistent result-store directory ('' disables persistence)")
		storeMaxMB   = flag.Int64("store-max-mb", 512, "result-store size bound in MiB (LRU eviction beyond it)")
		workers      = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queueLimit   = flag.Int("queue", 256, "bounded job-queue capacity (429 beyond it)")
		maxInsts     = flag.Int64("max-insts", 1<<20, "dynamic instruction budget per simulation")
		scaleDiv     = flag.Int("scale-div", 1, "divide every workload's default scale (quick runs)")
		sanitize     = flag.Bool("sanitize", false, "run every job under the pipeline invariant checker")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job deadline, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGINT/SIGTERM")
	)
	flag.Parse()

	runner := experiments.NewRunner()
	runner.MaxInsts = *maxInsts
	runner.ScaleDiv = *scaleDiv
	runner.Sanitize = *sanitize
	if *workers > 0 {
		runner.Parallelism = *workers
	}

	var store *service.DiskStore
	if *storeDir != "" {
		var err error
		store, err = service.OpenDiskStore(*storeDir, *storeMaxMB<<20)
		if err != nil {
			log.Fatalf("noreba-serve: %v", err)
		}
		runner.Store = store
		log.Printf("result store %s: %d entries, %d bytes", *storeDir, store.Len(), store.Bytes())
	}

	sched := service.NewScheduler(service.SchedulerConfig{
		Runner:         runner,
		Workers:        *workers,
		QueueLimit:     *queueLimit,
		DefaultTimeout: *jobTimeout,
	})
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(sched, store)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("noreba-serve listening on %s (workers %d, queue %d)", *addr, sched.Workers(), sched.QueueLimit())

	select {
	case <-ctx.Done():
		log.Printf("signal received; draining (timeout %s)", *drainTimeout)
	case err := <-errCh:
		log.Fatalf("noreba-serve: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("scheduler drain: %v", err)
	}
	fmt.Println("noreba-serve: drained cleanly")
}
