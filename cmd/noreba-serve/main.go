// Command noreba-serve runs the simulation service: an HTTP API over a
// priority-scheduled worker pool and a persistent, content-addressed result
// store, so figure and suite regenerations become schedulable, cancellable,
// observable jobs whose repeats are served from disk instead of
// re-simulated.
//
// Usage:
//
//	noreba-serve -addr :8080 -store ./noreba-store
//
// Example session:
//
//	curl -s -X POST localhost:8080/jobs \
//	    -d '{"workload":"mcf","policy":"noreba"}'          # → {"id":"job-000001",...}
//	curl -s localhost:8080/jobs/job-000001                 # status
//	curl -s localhost:8080/jobs/job-000001/result          # Stats JSON once done
//	curl -s localhost:8080/metrics                         # scheduler + store metrics
//
// With -peers, N replicas form a static cluster (see internal/cluster and
// DESIGN.md §13): the result store shards across replicas by config hash, a
// batch design-space endpoint (POST /sweep) distributes workload groups to
// their owning replicas, and every replica answers /sweep:
//
//	noreba-serve -addr :8080 -node http://10.0.0.1:8080 \
//	    -peers http://10.0.0.2:8080,http://10.0.0.3:8080 -store ./shard-1
//	curl -sN localhost:8080/sweep -d '{"workloads":["mcf","sha"],
//	    "policies":["inorder","noreba"],"windows":[128,224]}'   # JSONL rows
//
// SIGINT/SIGTERM drain gracefully: the listener closes, queued jobs are
// cancelled, and running simulations get -drain-timeout to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/noreba-sim/noreba/internal/cluster"
	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		storeDir     = flag.String("store", "noreba-store", "persistent result-store directory ('' disables persistence)")
		storeMaxMB   = flag.Int64("store-max-mb", 512, "result-store size bound in MiB (LRU eviction beyond it)")
		workers      = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queueLimit   = flag.Int("queue", 256, "bounded job-queue capacity (429 beyond it)")
		maxInsts     = flag.Int64("max-insts", 1<<20, "dynamic instruction budget per simulation")
		scaleDiv     = flag.Int("scale-div", 1, "divide every workload's default scale (quick runs)")
		sanitize     = flag.Bool("sanitize", false, "run every job under the pipeline invariant checker")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job deadline, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGINT/SIGTERM")
		nodeURL      = flag.String("node", "", "this replica's advertised base URL (default http://127.0.0.1:<port> of -addr)")
		peers        = flag.String("peers", "", "comma-separated base URLs of the other replicas ('' = single-node)")
		peerTimeout  = flag.Duration("peer-timeout", cluster.DefaultPeerTimeout, "per-attempt deadline for peer RPCs")
		sweepMax     = flag.Int("sweep-max", cluster.DefaultSweepMax, "concurrently streaming /sweep requests (429 beyond)")
		aging        = flag.Duration("aging", 30*time.Second, "queue-priority aging step: +1 effective priority per step waited (0 disables)")
	)
	flag.Parse()

	runner := experiments.NewRunner()
	runner.MaxInsts = *maxInsts
	runner.ScaleDiv = *scaleDiv
	runner.Sanitize = *sanitize
	if *workers > 0 {
		runner.Parallelism = *workers
	}

	var store *service.DiskStore
	if *storeDir != "" {
		var err error
		store, err = service.OpenDiskStore(*storeDir, *storeMaxMB<<20)
		if err != nil {
			log.Fatalf("noreba-serve: %v", err)
		}
		runner.Store = store
		log.Printf("result store %s: %d entries, %d bytes", *storeDir, store.Len(), store.Bytes())
	}

	self := *nodeURL
	if self == "" {
		_, port, err := net.SplitHostPort(*addr)
		if err != nil {
			log.Fatalf("noreba-serve: cannot derive -node from -addr %q: %v", *addr, err)
		}
		self = "http://127.0.0.1:" + port
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	node, err := cluster.NewNode(cluster.Config{
		Self:        strings.TrimRight(self, "/"),
		Peers:       peerList,
		Runner:      runner,
		Local:       store,
		PeerTimeout: *peerTimeout,
		SweepMax:    *sweepMax,
	})
	if err != nil {
		log.Fatalf("noreba-serve: %v", err)
	}
	// The node fronts the disk store: local shard first, then the key's
	// owning replica, then (on miss) the runner simulates.
	runner.Store = node

	sched := service.NewScheduler(service.SchedulerConfig{
		Runner:         runner,
		Workers:        *workers,
		QueueLimit:     *queueLimit,
		DefaultTimeout: *jobTimeout,
		AgingStep:      *aging,
	})
	api := service.NewServer(sched, store)
	node.Mount(api)
	srv := &http.Server{Addr: *addr, Handler: api}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if len(peerList) > 0 {
		log.Printf("cluster node %s with %d peers: %s", node.Self(), len(peerList), strings.Join(peerList, ", "))
		go func() {
			tick := time.NewTicker(15 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					node.CheckPeers()
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("noreba-serve listening on %s (workers %d, queue %d)", *addr, sched.Workers(), sched.QueueLimit())

	select {
	case <-ctx.Done():
		log.Printf("signal received; draining (timeout %s)", *drainTimeout)
	case err := <-errCh:
		log.Fatalf("noreba-serve: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("scheduler drain: %v", err)
	}
	fmt.Println("noreba-serve: drained cleanly")
}
