// Precise exceptions with out-of-order commit (§4.4 and §4.3 of the paper):
// a memory exception fires while NOREBA has already committed instructions
// beyond a branch's reconvergence point. The Committed Instructions Table
// (CIT) records them so the OS can observe their register mappings, and on
// resume the re-fetched copies are dropped at decode instead of executing
// twice.
//
// This example drives the functional machine into a fault, shows the
// architectural guarantee (the faulting PC is precise and execution can
// resume), and reports the simulator's CIT activity on a mispredict-heavy
// kernel.
//
//	go run ./examples/exceptions
package main

import (
	"errors"
	"fmt"
	"log"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/emulator"
)

const faulty = `
# Only [0x1000, 0x2000) is mapped; the loop eventually walks off the end.
.range 0x1000 0x2000
entry:
	li   s0, 0x1000
	li   a0, 600
loop:
	lw   t0, 0(s0)
	add  a2, a2, t0
	addi s0, s0, 8
	addi a0, a0, -1
	bnez a0, loop
done:
	halt
`

func main() {
	prog, err := noreba.Assemble("faulty", faulty)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		prog.Data[0x1000+int64(i)*8] = int64(i)
	}
	img, err := prog.Layout()
	if err != nil {
		log.Fatal(err)
	}

	m := noreba.NewMachine(img)
	_, err = m.Run(1 << 20)
	var mem *emulator.MemError
	if !errors.As(err, &mem) {
		log.Fatalf("expected a memory exception, got %v", err)
	}
	fmt.Printf("memory exception: pc=%d seq=%d addr=%#x\n", mem.PC, mem.Seq, mem.Addr)
	fmt.Printf("precise state: PC parked at faulting instruction (%d), a2=%d accumulated\n\n",
		m.PC, m.IntRegs[12])

	// The OS handler would now iterate the CIT with getCITEntry, stash the
	// out-of-order-committed mappings, service the fault (here: map the
	// next page), restore with setCITEntry and resume. Architecturally the
	// machine resumes exactly at the faulting load.
	img.ValidRanges[0][1] = 0x3000 // "map the next page"
	tr, err := m.Run(1 << 20)
	if err != nil {
		log.Fatalf("resume failed: %v", err)
	}
	fmt.Printf("resumed and completed: %d further instructions, final a2=%d\n\n", tr.Len(), m.IntRegs[12])

	// Microarchitectural side: run a mispredict-heavy kernel under NOREBA
	// and show the CIT at work — out-of-order commits are recorded, and
	// after each misprediction the re-fetched committed instructions are
	// dropped at decode.
	w, err := noreba.WorkloadByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	res, err := noreba.Compile(w.Build(400))
	if err != nil {
		log.Fatal(err)
	}
	trace, err := noreba.Trace(res, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	st, err := noreba.Simulate(noreba.Skylake(noreba.PolicyNoreba), trace, res.Meta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CIT activity on mcf under NOREBA:")
	fmt.Printf("  mispredictions        %d\n", st.Mispredicts)
	fmt.Printf("  CIT allocations       %d (peak occupancy %d of 128)\n", st.CITAllocs, st.CITPeak)
	fmt.Printf("  re-fetches dropped    %d (committed work preserved across flushes)\n", st.CITDrops)
	fmt.Printf("  CIT-full commit stalls %d\n", st.CITFullStalls)
}
