// The astar scenario from §3 of the paper (Listing 1): two consecutive,
// mutually independent loops whose best ordering a static compiler cannot
// decide. NOREBA does not need to reorder them — whichever loop's
// instructions resolve first commit first, and the Selective ROB keeps
// instructions dependent on the two loops' branches in separate commit
// queues.
//
//	go run ./examples/astar
package main

import (
	"fmt"
	"log"

	noreba "github.com/noreba-sim/noreba"
)

func main() {
	w, err := noreba.WorkloadByName("astar")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(w.DefaultScale)

	res, err := noreba.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Show how the pass annotated the two loops.
	fmt.Println("annotated program (excerpt):")
	text := res.Image.Disassemble()
	lines := 0
	for _, line := range splitLines(text) {
		fmt.Println("  " + line)
		lines++
		if lines > 40 {
			fmt.Println("  …")
			break
		}
	}
	fmt.Println()

	tr, err := noreba.Trace(res, 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	ino, err := noreba.Simulate(noreba.Skylake(noreba.PolicyInOrder), tr, res.Meta)
	if err != nil {
		log.Fatal(err)
	}
	nor, err := noreba.Simulate(noreba.Skylake(noreba.PolicyNoreba), tr, res.Meta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("in-order commit: %8d cycles (IPC %.2f)\n", ino.Cycles, ino.IPC())
	fmt.Printf("NOREBA:          %8d cycles (IPC %.2f)  -> %.2fx speedup\n",
		nor.Cycles, nor.IPC(), float64(ino.Cycles)/float64(nor.Cycles))
	fmt.Printf("NOREBA committed %d instructions past unresolved branches (%.1f%%)\n",
		nor.OoOCommitted, 100*nor.OoOCommitFraction())
	fmt.Printf("Selective ROB steered %d instructions; steer stalls %d cycles\n",
		nor.Steered, nor.SteerStalls)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
