// Quickstart: the smallest end-to-end NOREBA flow.
//
// We write a kernel whose loads miss the caches and feed a hard-to-predict
// branch, run the branch-dependent code detection pass over it, and compare
// in-order commit against NOREBA's non-speculative out-of-order commit on
// the paper's Skylake-like core.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	noreba "github.com/noreba-sim/noreba"
)

const kernel = `
# Strided loads that miss every cache level; each loaded value decides a
# branch; the tail of the loop is independent of that branch.
entry:
	li   s0, 0x100000
	li   a0, 1000       # iterations
	li   a1, 0          # offset
loop:
	add  t0, s0, a1
	lw   t1, 0(t0)      # long-latency load
	andi t2, t1, 1
	beqz t2, skip       # data-dependent branch
then:
	addi a2, a2, 1      # the branch's only true dependents
	xor  a3, a3, t1
skip:
	addi a4, a4, 1      # independent work NOREBA retires early
	addi a5, a5, 2
	xor  s3, a4, a5
	addi s4, s4, 3
	addi s5, s5, 5
	xor  s6, s4, s5
	addi a1, a1, 8192   # 8KB stride
	addi a0, a0, -1
	bnez a0, loop
done:
	halt
`

func main() {
	prog, err := noreba.Assemble("quickstart", kernel)
	if err != nil {
		log.Fatal(err)
	}
	// Seed pseudo-random parities so the branch is hard to predict.
	for i := 0; i < 1000; i++ {
		prog.Data[0x100000+int64(i)*8192] = int64(i*2654435761 + 12345)
	}

	// 1. Compiler pass: detect reconvergence points and mark true branch
	// dependencies with setBranchId / setDependency.
	res, err := noreba.Compile(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiler: %d/%d branches marked, %d setup instructions, %d dependent instructions\n\n",
		res.Stats.MarkedBranches, res.Stats.CondBranches, res.Stats.SetupInsts, res.Stats.DependentInsts)

	// 2. Functional execution produces the dynamic trace.
	tr, err := noreba.Trace(res, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d dynamic instructions (%d branches, %d loads)\n\n", tr.Len(), tr.Branches, tr.Loads)

	// 3. Replay the trace under each commit policy.
	fmt.Printf("%-24s %10s %8s %12s\n", "policy", "cycles", "IPC", "OoO commits")
	var baseline int64
	for _, p := range []noreba.Policy{
		noreba.PolicyInOrder, noreba.PolicyNonSpecOoO, noreba.PolicyNoreba,
		noreba.PolicyIdealReconv, noreba.PolicySpecBR,
	} {
		st, err := noreba.Simulate(noreba.Skylake(p), tr, res.Meta)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = st.Cycles
		}
		fmt.Printf("%-24s %10d %8.3f %12d   (%.2fx)\n",
			st.Policy, st.Cycles, st.IPC(), st.OoOCommitted, float64(baseline)/float64(st.Cycles))
	}
}
