// Branch-criticality analysis (the paper's Figure 7): for every static
// branch of mcf and bzip2, we measure how many cycles it stalled in-order
// commit and how many dynamic instructions depend on it. mcf's critical
// branches stall for a long time but have few dependents (lots of work for
// NOREBA to retire early); bzip2's have many dependents (almost nothing to
// retire early) — which is exactly why their Figure 6 speedups differ.
//
//	go run ./examples/criticality
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	noreba "github.com/noreba-sim/noreba"
)

func main() {
	for _, name := range []string{"mcf", "bzip2"} {
		w, err := noreba.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := noreba.Compile(w.Build(w.DefaultScale / 2))
		if err != nil {
			log.Fatal(err)
		}
		tr, err := noreba.Trace(res, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		st, err := noreba.Simulate(noreba.Skylake(noreba.PolicyInOrder), tr, res.Meta)
		if err != nil {
			log.Fatal(err)
		}

		type point struct {
			pc          int
			stall, deps int64
		}
		var pts []point
		for pc, bs := range st.BranchStalls {
			if bs.StallCycles > 0 {
				pts = append(pts, point{pc, bs.StallCycles, bs.Dependents})
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].stall > pts[j].stall })

		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("%-8s %14s %14s %12s %12s\n", "pc", "stall cycles", "dependents", "log10 stall", "log10 deps")
		for _, p := range pts {
			deps := float64(p.deps)
			if deps < 1 {
				deps = 1
			}
			fmt.Printf("%-8d %14d %14d %12.2f %12.2f\n",
				p.pc, p.stall, p.deps, math.Log10(float64(p.stall)), math.Log10(deps))
		}

		nor, err := noreba.Simulate(noreba.Skylake(noreba.PolicyNoreba), tr, res.Meta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("NOREBA speedup over in-order commit: %.2fx\n\n",
			float64(st.Cycles)/float64(nor.Cycles))
	}
	fmt.Println("mcf: long stalls, few dependents  -> big NOREBA win (the paper's blue cloud)")
	fmt.Println("bzip2: many dependents per branch -> little to reclaim (the red cloud)")
}
