// Multicore deployment (§4.5 of the paper): two NOREBA cores share a
// last-level cache and synchronise at fence barriers. The example shows
// (1) shared-LLC contention between memory-hungry kernels and (2) barrier
// timing keeping an unbalanced pair of cores in step, under both in-order
// commit and NOREBA.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	noreba "github.com/noreba-sim/noreba"
	"github.com/noreba-sim/noreba/internal/multicore"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

func input(name string, scale int) multicore.CoreInput {
	w, err := noreba.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	res, err := noreba.Compile(w.Build(scale))
	if err != nil {
		log.Fatal(err)
	}
	return multicore.CoreInput{Source: noreba.StreamTrace(res, 1<<20), Meta: res.Meta}
}

func run(policy pipeline.PolicyKind, share bool) []*pipeline.Stats {
	cfg := noreba.Skylake(policy)
	sys, err := multicore.New(multicore.Config{
		Core:               cfg,
		ShareLLC:           share,
		AddressSpaceStride: 1 << 32, // separate processes
	}, []multicore.CoreInput{input("mcf", 300), input("omnetpp", 300)})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return stats
}

func main() {
	fmt.Println("two cores (core0 = mcf, core1 = omnetpp), private vs shared last-level cache:")
	names := []string{"mcf", "omnetpp"}
	for _, policy := range []pipeline.PolicyKind{pipeline.InOrder, pipeline.Noreba} {
		priv := run(policy, false)
		shared := run(policy, true)
		for i := range priv {
			fmt.Printf("  %-22s %-8s private L3: %7d cycles (IPC %.2f) | shared L3: %7d cycles, %4d DRAM accesses\n",
				policy.String(), names[i], priv[i].Cycles, priv[i].IPC(), shared[i].Cycles, shared[i].MemAccesses)
		}
	}
	fmt.Println()
	fmt.Println("NOREBA keeps its advantage under LLC contention, and the §4.5 rules")
	fmt.Println("(pass between barriers, in-order commit at fences, TLB-checked steering)")
	fmt.Println("are exercised by the barrier tests in internal/multicore.")
}
