// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark builds a fresh reduced-scale runner per iteration so the
// reported time is the cost of regenerating that figure from scratch
// (compile + trace + simulate across the benchmark suite).
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The full-suite, full-scale versions are produced by cmd/noreba-bench.
package noreba

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

func benchFigure(b *testing.B, run func(*experiments.Runner) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := QuickRunner()
		if err := run(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates the motivation figure: NonSpec / SpecBR /
// Spec OoO-commit speedups over in-order commit.
func BenchmarkFigure1(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure1(); return err })
}

// BenchmarkFigure6 regenerates the main result (Figure 6).
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure6(); return err })
}

// BenchmarkFigure7 regenerates the bzip2/mcf branch-criticality scatter.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure7(); return err })
}

// BenchmarkFigure8 regenerates the OoO-commit-fraction chart.
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure8(); return err })
}

// BenchmarkFigure9 regenerates the Selective ROB sizing sweep.
func BenchmarkFigure9(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure9(); return err })
}

// BenchmarkFigure10 regenerates the Selective ROB power sweep.
func BenchmarkFigure10(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure10(); return err })
}

// BenchmarkFigure11 regenerates the setup-instruction overhead chart.
func BenchmarkFigure11(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure11(); return err })
}

// BenchmarkFigure12 regenerates the NHM/HSW/SKL core comparison.
func BenchmarkFigure12(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure12(); return err })
}

// BenchmarkFigure13 regenerates the prefetching-effectiveness chart.
func BenchmarkFigure13(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure13(); return err })
}

// BenchmarkFigure14 regenerates the Early Commit of Loads chart.
func BenchmarkFigure14(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure14(); return err })
}

// BenchmarkFigure15 regenerates the commit-bandwidth chart.
func BenchmarkFigure15(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure15(); return err })
}

// BenchmarkFigure16 regenerates the power/area breakdown.
func BenchmarkFigure16(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, _, err := r.Figure16(); return err })
}

// BenchmarkEngineSuite runs the whole reduced-scale figure suite on one
// shared Runner — the realistic engine workload, where the scheduler's
// cross-figure batching and broadcast trace bus pay off: the union of every
// figure's requests is warmed through one RunRequests pass, so each
// workload's ~17 configurations share a single functional emulation, then
// the figures assemble from guaranteed cache hits. Writes BENCH_engine.json
// with wall-clock and engine counters.
func BenchmarkEngineSuite(b *testing.B) {
	// The engine suite is a deliberately serial measurement: pin GOMAXPROCS
	// to 1 so the committed baseline is comparable across machines and CI
	// shapes, and the recorded gomaxprocs states what the numbers mean.
	// (BenchmarkSampledSuite pins 2 — its concurrency is the thing measured.)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	suiteFigures := []string{"figure1", "figure6", "figure8", "figure11", "figure13", "figure14", "figure15"}
	figures := []func(*experiments.Runner) error{
		func(r *experiments.Runner) error { _, err := r.Figure1(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure6(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure8(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure11(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure13(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure14(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure15(); return err },
	}
	var last *experiments.Runner
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		r := QuickRunner()
		start := time.Now()
		reqs, err := r.FigureRequests(suiteFigures...)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.RunRequests(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
		for _, fig := range figures {
			if err := fig(r); err != nil {
				b.Fatal(err)
			}
		}
		elapsed = time.Since(start)
		last = r
	}
	b.ReportMetric(float64(last.SimulationsRun()), "sims/op")
	b.ReportMetric(float64(last.EmulationsRun()), "emulations/op")
	b.ReportMetric(float64(last.PeakWindow()), "peak-window-recs")

	out := map[string]any{
		"suiteWallClockSec": elapsed.Seconds(),
		"simulateCalls":     last.SimulateCalls(),
		"simulationsRun":    last.SimulationsRun(),
		"uniqueSimulations": last.UniqueSimulations(),
		"emulationsRun":     last.EmulationsRun(),
		"peakBusRecords":    last.PeakBusRecords(),
		"peakWindowRecords": last.PeakWindow(),
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"maxInsts":          last.MaxInsts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTables2And3 renders the configuration tables.
func BenchmarkTables2And3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := ConfigTables(); len(s) == 0 {
			b.Fatal("empty tables")
		}
	}
}

// BenchmarkCompilerPass measures the branch-dependent code detection pass
// itself over the whole workload suite.
func BenchmarkCompilerPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range Workloads() {
			p := w.Build(2)
			if _, err := Compile(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorMcf measures raw simulation throughput: cycles of the
// NOREBA core simulated per wall-clock second on the mcf kernel.
func BenchmarkSimulatorMcf(b *testing.B) {
	w, err := WorkloadByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	res, err := Compile(w.Build(300))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Trace(res, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(Skylake(PolicyNoreba), tr, res.Meta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCIT sweeps the Committed Instructions Table size.
func BenchmarkAblationCIT(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationCIT(); return err })
}

// BenchmarkAblationLoopMarking compares selective versus exhaustive branch
// marking in the compiler pass.
func BenchmarkAblationLoopMarking(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationLoopMarking(); return err })
}

// BenchmarkAblationBITSize sweeps the Branch ID Table / compiler ID space.
func BenchmarkAblationBITSize(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationBITSize(); return err })
}

// BenchmarkAblationPredictors sweeps branch predictor quality.
func BenchmarkAblationPredictors(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationPredictors(); return err })
}

// planOnlyStore shares sampling-plan blobs between the cold and warm halves
// of BenchmarkSampledSuite without ever sharing results: the warm runner must
// re-estimate every point, so its wall clock measures plan reuse, not result
// caching.
type planOnlyStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func (s *planOnlyStore) Get(string) (*pipeline.Stats, bool) { return nil, false }
func (s *planOnlyStore) Put(string, *pipeline.Stats) error  { return nil }

func (s *planOnlyStore) GetBlob(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	return b, ok
}

func (s *planOnlyStore) PutBlob(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = append([]byte(nil), data...)
	return nil
}

// BenchmarkSampledSuite runs the quick-scale workload suite under the three
// measured commit policies three times — full detailed simulation, the
// sampled path cold (plan building included, plans persisted to a shared
// store), and the sampled path warm (a fresh runner that loads every plan
// from the store and rebuilds none) — and writes BENCH_sampling.json. The
// headline wallClockSpeedup is full over warm: the steady state of a service
// or repeated sweep, where plans were built once and every later estimate
// amortises them. This is the speedup half of the sampling story; the
// accuracy half is TestSampledAccuracySuite in internal/experiments.
//
// Workloads whose plans are degenerate (Plan.Full — programs too short to
// sample, where an "estimate" is by definition a plain full simulation) are
// excluded from the timed loops and reported under fullPlanWorkloads: they
// measure the simulator, not the sampler, and including them would dilute
// the speedup being benchmarked with identical work on both sides.
func BenchmarkSampledSuite(b *testing.B) {
	// The sampled path fans representative windows across a worker group:
	// pin GOMAXPROCS to exactly 2 — enough that the concurrency half of the
	// win is measured, deterministic regardless of the host's core count,
	// and recorded as-run in BENCH_sampling.json (BenchmarkEngineSuite pins
	// 1; the two baselines deliberately state different parallelism).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	policies := []Policy{PolicyInOrder, PolicyNonSpecOoO, PolicyNoreba}
	ctx := context.Background()

	var sampled, fullOnly []string
	probe := QuickRunner()
	probe.Sampling = DefaultSampling()
	for _, name := range probe.Workloads {
		pl, err := probe.Plan(ctx, name)
		if err != nil {
			b.Fatal(err)
		}
		if pl.Full {
			fullOnly = append(fullOnly, name)
		} else {
			sampled = append(sampled, name)
		}
	}
	if len(sampled) == 0 {
		b.Fatal("no sampleable workloads in the quick suite")
	}

	sampledLoop := func(r *experiments.Runner) (int64, time.Duration) {
		var insts int64
		start := time.Now()
		for _, name := range sampled {
			for _, pk := range policies {
				st, err := r.SimulateSampledContext(ctx, name, Skylake(pk), DefaultSampling())
				if err != nil {
					b.Fatal(err)
				}
				insts += st.SampledDetailInsts
			}
		}
		return insts, time.Since(start)
	}

	// Each loop's wall clock is the minimum over b.N iterations: the loops are
	// deterministic, so the minimum is the cleanest estimate of their true
	// cost and filters scheduler and GC noise on a shared runner. A GC flush
	// before each timed section keeps one loop's garbage off another's clock.
	minDur := func(cur, next time.Duration) time.Duration {
		if cur == 0 || next < cur {
			return next
		}
		return cur
	}
	var fullElapsed, coldElapsed, warmElapsed time.Duration
	var fullInsts, sampInsts int64
	var coldRunner, warmRunner *experiments.Runner
	for i := 0; i < b.N; i++ {
		fullInsts = 0

		rFull := QuickRunner()
		runtime.GC()
		start := time.Now()
		for _, name := range sampled {
			for _, pk := range policies {
				st, err := rFull.Simulate(name, Skylake(pk))
				if err != nil {
					b.Fatal(err)
				}
				fullInsts += st.Committed
			}
		}
		fullElapsed = minDur(fullElapsed, time.Since(start))

		store := &planOnlyStore{blobs: map[string][]byte{}}
		coldRunner = QuickRunner()
		coldRunner.Store = store
		runtime.GC()
		var coldThis time.Duration
		sampInsts, coldThis = sampledLoop(coldRunner)
		coldElapsed = minDur(coldElapsed, coldThis)

		warmRunner = QuickRunner()
		warmRunner.Store = store
		runtime.GC()
		_, warmThis := sampledLoop(warmRunner)
		warmElapsed = minDur(warmElapsed, warmThis)
	}
	if n := int64(len(sampled)); coldRunner.PlansBuilt() != n {
		b.Fatalf("cold runner built %d plans, want %d", coldRunner.PlansBuilt(), n)
	}
	if warmRunner.PlansBuilt() != 0 {
		b.Fatalf("warm runner rebuilt %d plans, want 0", warmRunner.PlansBuilt())
	}

	b.ReportMetric(fullElapsed.Seconds()/warmElapsed.Seconds(), "wall-speedup")
	b.ReportMetric(fullElapsed.Seconds()/coldElapsed.Seconds(), "cold-speedup")
	b.ReportMetric(float64(fullInsts)/float64(sampInsts), "detail-speedup")

	out := map[string]any{
		"workloads":               sampled,
		"fullPlanWorkloads":       fullOnly,
		"fullWallClockSec":        fullElapsed.Seconds(),
		"coldSampledWallClockSec": coldElapsed.Seconds(),
		"warmSampledWallClockSec": warmElapsed.Seconds(),
		"wallClockSpeedup":        fullElapsed.Seconds() / warmElapsed.Seconds(),
		"coldWallClockSpeedup":    fullElapsed.Seconds() / coldElapsed.Seconds(),
		"fullDetailInsts":         fullInsts,
		"sampledDetailInsts":      sampInsts,
		"detailSpeedup":           float64(fullInsts) / float64(sampInsts),
		"sampledRuns":             warmRunner.SampledRuns(),
		"plansBuilt":              coldRunner.PlansBuilt(),
		"warmPlansBuilt":          warmRunner.PlansBuilt(),
		"planStoreHits":           warmRunner.PlanStoreHits(),
		"gomaxprocs":              runtime.GOMAXPROCS(0),
		"maxInsts":                warmRunner.MaxInsts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sampling.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
