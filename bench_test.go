// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark builds a fresh reduced-scale runner per iteration so the
// reported time is the cost of regenerating that figure from scratch
// (compile + trace + simulate across the benchmark suite).
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The full-suite, full-scale versions are produced by cmd/noreba-bench.
package noreba

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
)

func benchFigure(b *testing.B, run func(*experiments.Runner) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := QuickRunner()
		if err := run(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates the motivation figure: NonSpec / SpecBR /
// Spec OoO-commit speedups over in-order commit.
func BenchmarkFigure1(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure1(); return err })
}

// BenchmarkFigure6 regenerates the main result (Figure 6).
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure6(); return err })
}

// BenchmarkFigure7 regenerates the bzip2/mcf branch-criticality scatter.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure7(); return err })
}

// BenchmarkFigure8 regenerates the OoO-commit-fraction chart.
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure8(); return err })
}

// BenchmarkFigure9 regenerates the Selective ROB sizing sweep.
func BenchmarkFigure9(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure9(); return err })
}

// BenchmarkFigure10 regenerates the Selective ROB power sweep.
func BenchmarkFigure10(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure10(); return err })
}

// BenchmarkFigure11 regenerates the setup-instruction overhead chart.
func BenchmarkFigure11(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure11(); return err })
}

// BenchmarkFigure12 regenerates the NHM/HSW/SKL core comparison.
func BenchmarkFigure12(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure12(); return err })
}

// BenchmarkFigure13 regenerates the prefetching-effectiveness chart.
func BenchmarkFigure13(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure13(); return err })
}

// BenchmarkFigure14 regenerates the Early Commit of Loads chart.
func BenchmarkFigure14(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure14(); return err })
}

// BenchmarkFigure15 regenerates the commit-bandwidth chart.
func BenchmarkFigure15(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.Figure15(); return err })
}

// BenchmarkFigure16 regenerates the power/area breakdown.
func BenchmarkFigure16(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, _, err := r.Figure16(); return err })
}

// BenchmarkEngineSuite runs the whole reduced-scale figure suite on one
// shared Runner — the realistic engine workload, where the scheduler's
// cross-figure batching and broadcast trace bus pay off: the union of every
// figure's requests is warmed through one RunRequests pass, so each
// workload's ~17 configurations share a single functional emulation, then
// the figures assemble from guaranteed cache hits. Writes BENCH_engine.json
// with wall-clock and engine counters.
func BenchmarkEngineSuite(b *testing.B) {
	suiteFigures := []string{"figure1", "figure6", "figure8", "figure11", "figure13", "figure14", "figure15"}
	figures := []func(*experiments.Runner) error{
		func(r *experiments.Runner) error { _, err := r.Figure1(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure6(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure8(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure11(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure13(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure14(); return err },
		func(r *experiments.Runner) error { _, err := r.Figure15(); return err },
	}
	var last *experiments.Runner
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		r := QuickRunner()
		start := time.Now()
		reqs, err := r.FigureRequests(suiteFigures...)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.RunRequests(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
		for _, fig := range figures {
			if err := fig(r); err != nil {
				b.Fatal(err)
			}
		}
		elapsed = time.Since(start)
		last = r
	}
	b.ReportMetric(float64(last.SimulationsRun()), "sims/op")
	b.ReportMetric(float64(last.EmulationsRun()), "emulations/op")
	b.ReportMetric(float64(last.PeakWindow()), "peak-window-recs")

	out := map[string]any{
		"suiteWallClockSec": elapsed.Seconds(),
		"simulateCalls":     last.SimulateCalls(),
		"simulationsRun":    last.SimulationsRun(),
		"uniqueSimulations": last.UniqueSimulations(),
		"emulationsRun":     last.EmulationsRun(),
		"peakBusRecords":    last.PeakBusRecords(),
		"peakWindowRecords": last.PeakWindow(),
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"maxInsts":          last.MaxInsts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTables2And3 renders the configuration tables.
func BenchmarkTables2And3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := ConfigTables(); len(s) == 0 {
			b.Fatal("empty tables")
		}
	}
}

// BenchmarkCompilerPass measures the branch-dependent code detection pass
// itself over the whole workload suite.
func BenchmarkCompilerPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range Workloads() {
			p := w.Build(2)
			if _, err := Compile(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorMcf measures raw simulation throughput: cycles of the
// NOREBA core simulated per wall-clock second on the mcf kernel.
func BenchmarkSimulatorMcf(b *testing.B) {
	w, err := WorkloadByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	res, err := Compile(w.Build(300))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Trace(res, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(Skylake(PolicyNoreba), tr, res.Meta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCIT sweeps the Committed Instructions Table size.
func BenchmarkAblationCIT(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationCIT(); return err })
}

// BenchmarkAblationLoopMarking compares selective versus exhaustive branch
// marking in the compiler pass.
func BenchmarkAblationLoopMarking(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationLoopMarking(); return err })
}

// BenchmarkAblationBITSize sweeps the Branch ID Table / compiler ID space.
func BenchmarkAblationBITSize(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationBITSize(); return err })
}

// BenchmarkAblationPredictors sweeps branch predictor quality.
func BenchmarkAblationPredictors(b *testing.B) {
	benchFigure(b, func(r *experiments.Runner) error { _, err := r.AblationPredictors(); return err })
}

// BenchmarkSampledSuite runs the quick-scale workload suite under the three
// measured commit policies twice — once with full detailed simulation, once
// through the SimPoint-style sampled path (plan building included) — and
// writes BENCH_sampling.json with both wall clocks and the detailed-
// instruction reduction. This is the speedup half of the sampling story; the
// accuracy half is TestSampledAccuracySuite in internal/experiments.
func BenchmarkSampledSuite(b *testing.B) {
	policies := []Policy{PolicyInOrder, PolicyNonSpecOoO, PolicyNoreba}
	ctx := context.Background()

	var fullElapsed, sampElapsed time.Duration
	var fullInsts, sampInsts int64
	var sampRunner *experiments.Runner
	for i := 0; i < b.N; i++ {
		fullInsts, sampInsts = 0, 0

		rFull := QuickRunner()
		start := time.Now()
		for _, name := range rFull.Workloads {
			for _, pk := range policies {
				st, err := rFull.Simulate(name, Skylake(pk))
				if err != nil {
					b.Fatal(err)
				}
				fullInsts += st.Committed
			}
		}
		fullElapsed = time.Since(start)

		rSamp := QuickRunner()
		start = time.Now()
		for _, name := range rSamp.Workloads {
			for _, pk := range policies {
				st, err := rSamp.SimulateSampledContext(ctx, name, Skylake(pk), DefaultSampling())
				if err != nil {
					b.Fatal(err)
				}
				sampInsts += st.SampledDetailInsts
			}
		}
		sampElapsed = time.Since(start)
		sampRunner = rSamp
	}

	b.ReportMetric(fullElapsed.Seconds()/sampElapsed.Seconds(), "wall-speedup")
	b.ReportMetric(float64(fullInsts)/float64(sampInsts), "detail-speedup")

	out := map[string]any{
		"fullWallClockSec":    fullElapsed.Seconds(),
		"sampledWallClockSec": sampElapsed.Seconds(),
		"wallClockSpeedup":    fullElapsed.Seconds() / sampElapsed.Seconds(),
		"fullDetailInsts":     fullInsts,
		"sampledDetailInsts":  sampInsts,
		"detailSpeedup":       float64(fullInsts) / float64(sampInsts),
		"sampledRuns":         sampRunner.SampledRuns(),
		"plansBuilt":          sampRunner.PlansBuilt(),
		"gomaxprocs":          runtime.GOMAXPROCS(0),
		"maxInsts":            sampRunner.MaxInsts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sampling.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
