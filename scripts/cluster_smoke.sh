#!/bin/sh
# cluster_smoke.sh — multi-process cluster end-to-end smoke, also runnable
# as `make cluster-smoke`.
#
# Brings up a real 3-replica noreba-serve fleet (separate processes, shards
# on disk, static -peers lists) and checks the PR's acceptance properties
# from the outside:
#
#   1. a 24-point, 2-workload sweep streams 24 rows with no errors and the
#      fleet runs exactly one functional emulation per workload;
#   2. the rows are byte-identical to a single-process server's sweep;
#   3. SIGTERM drains every replica cleanly (exit 0, "drained cleanly");
#   4. restarted on the same shards, a repeat sweep is served entirely from
#      the sharded store — zero emulations, shard hit-ratio > 0 — and is
#      byte-identical to the cold run;
#   5. with one replica killed mid-sweep, the sweep still settles all rows
#      (degraded local execution).
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	for log in "$WORK"/replica-*.log; do
		[ -f "$log" ] || continue
		echo "---- $log ----" >&2
		tail -20 "$log" >&2
	done
	exit 1
}

echo "cluster-smoke: building noreba-serve"
go build -o "$WORK/noreba-serve" ./cmd/noreba-serve

set -- $(go run scripts/freeport.go 4)
P1=$1 P2=$2 P3=$3 P4=$4
U1="http://127.0.0.1:$P1" U2="http://127.0.0.1:$P2" U3="http://127.0.0.1:$P3"

# start_replica <index> <port> <peer-urls-csv>
start_replica() {
	"$WORK/noreba-serve" -addr "127.0.0.1:$2" -node "http://127.0.0.1:$2" \
		-peers "$3" -store "$WORK/shard-$1" -max-insts 4096 -scale-div 8 \
		-workers 2 -peer-timeout 2s -drain-timeout 20s \
		>"$WORK/replica-$1.log" 2>&1 &
	eval "PID$1=$!"
	PIDS="$PIDS $!"
}

wait_healthy() {
	for i in $(seq 1 100); do
		if curl -fsS "$1/healthz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	fail "replica at $1 never became healthy"
}

GRID='{"workloads":["mcf","sha"],"cores":["skl","hsw"],"policies":["inorder","nonspec","noreba"],"windows":[128,224],"timeoutSec":300}'

# sweep <base-url> <out-file>
sweep() {
	curl -fsSN -X POST "$1/sweep" -H 'Content-Type: application/json' \
		-d "$GRID" >"$2" || fail "sweep against $1 failed"
	rows=$(grep -c '"type":"row"' "$2") || true
	[ "$rows" = 24 ] || fail "sweep at $1 settled $rows rows, want 24"
	grep -q '"type":"done"' "$2" || fail "sweep at $1 ended without done line"
	grep '"type":"done"' "$2" | grep -q '"errors":0' || fail "sweep at $1 reported row errors"
}

# rows <stream-file>: the row lines in index order, for byte comparison.
rows() {
	grep '"type":"row"' "$1" | sort
}

# metric <base-url> <name>: one integer counter from the (indented)
# /metrics JSON.
metric() {
	curl -fsS "$1/metrics" | grep -o "\"$2\": *[0-9]*" | head -1 | grep -o '[0-9]*$'
}

echo "cluster-smoke: starting 3-replica cluster on ports $P1 $P2 $P3"
start_replica 1 "$P1" "$U2,$U3"
start_replica 2 "$P2" "$U1,$U3"
start_replica 3 "$P3" "$U1,$U2"
wait_healthy "$U1"; wait_healthy "$U2"; wait_healthy "$U3"

echo "cluster-smoke: cold 24-point sweep through replica 1"
sweep "$U1" "$WORK/cold.jsonl"

emus=0
for u in "$U1" "$U2" "$U3"; do
	emus=$((emus + $(metric "$u" emulationsRun)))
done
[ "$emus" = 2 ] || fail "fleet ran $emus emulations for 2 workloads, want 2"
echo "cluster-smoke: fleet emulations = 2 (one per workload)"

echo "cluster-smoke: single-process sweep for byte comparison"
start_replica 4 "$P4" ""
wait_healthy "http://127.0.0.1:$P4"
sweep "http://127.0.0.1:$P4" "$WORK/solo.jsonl"
rows "$WORK/cold.jsonl" >"$WORK/cold.rows"
rows "$WORK/solo.jsonl" >"$WORK/solo.rows"
cmp -s "$WORK/cold.rows" "$WORK/solo.rows" || {
	diff "$WORK/cold.rows" "$WORK/solo.rows" | head -5 >&2
	fail "cluster rows differ from single-process rows"
}
echo "cluster-smoke: cluster sweep is byte-identical to single-process"

echo "cluster-smoke: SIGTERM drain of all replicas"
for i in 1 2 3 4; do
	eval "kill -TERM \$PID$i"
done
for i in 1 2 3 4; do
	eval "pid=\$PID$i"
	wait "$pid" || fail "replica $i exited non-zero after SIGTERM"
	grep -q "drained cleanly" "$WORK/replica-$i.log" || fail "replica $i did not drain cleanly"
done
PIDS=""
echo "cluster-smoke: all replicas drained cleanly on SIGTERM"

echo "cluster-smoke: restarting the cluster on the same shards"
start_replica 1 "$P1" "$U2,$U3"
start_replica 2 "$P2" "$U1,$U3"
start_replica 3 "$P3" "$U1,$U2"
wait_healthy "$U1"; wait_healthy "$U2"; wait_healthy "$U3"

echo "cluster-smoke: warm sweep through replica 2"
sweep "$U2" "$WORK/warm.jsonl"
rows "$WORK/warm.jsonl" >"$WORK/warm.rows"
cmp -s "$WORK/warm.rows" "$WORK/cold.rows" || fail "warm rows differ from cold rows"

emus=0; hits=0
for u in "$U1" "$U2" "$U3"; do
	emus=$((emus + $(metric "$u" emulationsRun)))
	hits=$((hits + $(metric "$u" shardHits) + $(metric "$u" peerHits)))
done
[ "$emus" = 0 ] || fail "warm sweep ran $emus emulations, want 0"
[ "$hits" -gt 0 ] || fail "warm sweep hit no shard (shardHits+peerHits = 0)"
echo "cluster-smoke: warm sweep served from shards (hits=$hits, emulations=0)"

echo "cluster-smoke: killing replica 3 mid-sweep"
rm -rf "$WORK/shard-1" "$WORK/shard-2"  # force real re-simulation on survivors
for i in 1 2; do
	eval "kill -TERM \$PID$i"
	eval "wait \$PID$i" || true
done
start_replica 1 "$P1" "$U2,$U3"
start_replica 2 "$P2" "$U1,$U3"
wait_healthy "$U1"; wait_healthy "$U2"
curl -fsSN -X POST "$U1/sweep" -H 'Content-Type: application/json' \
	-d "$GRID" >"$WORK/degraded.jsonl" &
CURL=$!
sleep 0.15
eval "kill -9 \$PID3"
wait "$CURL" || fail "degraded sweep connection failed"
rows_degraded=$(grep -c '"type":"row"' "$WORK/degraded.jsonl") || true
[ "$rows_degraded" = 24 ] || fail "degraded sweep settled $rows_degraded rows, want 24"
grep '"type":"done"' "$WORK/degraded.jsonl" | grep -q '"errors":0' || fail "degraded sweep reported row errors"
rows "$WORK/degraded.jsonl" >"$WORK/degraded.rows"
cmp -s "$WORK/degraded.rows" "$WORK/cold.rows" || fail "degraded rows differ from cold rows"
echo "cluster-smoke: sweep survived a killed replica with identical rows"

echo "cluster-smoke: OK"
