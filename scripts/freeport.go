//go:build ignore

// Helper for scripts/cluster_smoke.sh: print N free TCP ports on loopback,
// one per line. The listeners are all held until every port is allocated so
// the same port is never printed twice.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		var err error
		if n, err = strconv.Atoi(os.Args[1]); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "usage: freeport [n]\n")
			os.Exit(2)
		}
	}
	var ls []net.Listener
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ls = append(ls, l)
	}
	for _, l := range ls {
		fmt.Println(l.Addr().(*net.TCPAddr).Port)
		l.Close()
	}
}
