#!/bin/sh
# check.sh — the repo's CI gate, also runnable as `make check`.
#
# Order matters: cheap static checks first, then the full race-enabled test
# suite, then a single iteration of the engine benchmarks so a regression in
# figure wall-clock or the parallel scheduler shows up in CI output (and
# refreshes BENCH_engine.json).
set -eu

cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench 'BenchmarkFigure6$|BenchmarkEngineSuite$' -benchtime=1x -benchmem .

echo "check: OK"
