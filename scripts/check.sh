#!/bin/sh
# check.sh — the repo's CI gate, also runnable as `make check`.
#
# Order matters: cheap static checks first, then the full race-enabled test
# suite with a coverage gate on the core packages, then short fuzz smokes,
# then a single iteration of the engine benchmarks so a regression in figure
# wall-clock or the parallel scheduler shows up in CI output (and refreshes
# BENCH_engine.json).
set -eu

cd "$(dirname "$0")/.."

# Fail if a gated package's statement coverage drops below this floor.
COVER_FLOOR=75

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt needed:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
# internal/experiments alone runs ~8.5 min of race-instrumented simulation
# (the sanitized whole-suite pass is ~2 min of it); the default 10-minute
# per-package timeout leaves too little headroom on a shared box.
go test -race -timeout 20m ./...

# The service binary must keep building even though nothing above imports it
# (-o /dev/null: compile check only, no artifact in the repo root).
go build -o /dev/null ./cmd/noreba-serve

# End-to-end service smoke: concurrent clients against an httptest server,
# dedup + byte-identical results + warm-store restart, race detector on.
go test -race -run 'TestServiceLoadSmoke' ./internal/service

# Multi-process cluster smoke: a real 3-replica fleet with sharded stores —
# sharded sweep byte-identical to single-process, one emulation per
# workload fleet-wide, SIGTERM drain, warm restart served from shards, and
# degraded completion with a replica killed mid-sweep.
sh scripts/cluster_smoke.sh

# Sampled-simulation determinism: the concurrent representative fan-out in
# EstimateContextN must produce byte-identical results to the serial path for
# every commit policy, under the race detector. Asserted by name so a
# scheduling-order regression can't hide inside the broader suite.
go test -race -run 'TestEstimateConcurrentDeterminism' ./internal/sampling

# Correctness substrate over the program generator: fifty generated programs
# under every commit policy (sanitized, differential against the emulator)
# already ran under the race detector inside `go test -race ./...` above
# (TestGeneratedDifferentialSuite — rerun it by name when the generator
# changes). The broadcast-bus guarantee for generated batches — one
# functional emulation feeding all policies — is cheap enough to assert by
# name, extending the emulationsRun guard below to the generated suite.
go test -race -run 'TestGeneratedBatchSharesEmulation' ./internal/experiments

# Coverage gate: the cycle model, the compiler pass, the service layer, the
# sampling planner, the program generator and the trace codec are where a
# silent regression costs the most, so they carry a hard floor.
for pkg in ./internal/pipeline ./internal/compiler ./internal/service ./internal/sampling ./internal/workgen ./internal/tracefile; do
	pct=$(go test -cover "$pkg" | awk '/coverage:/ { sub("%", "", $(NF-2)); print $(NF-2) }')
	if [ -z "$pct" ]; then
		echo "check: no coverage reported for $pkg" >&2
		exit 1
	fi
	if awk "BEGIN { exit !($pct < $COVER_FLOOR) }"; then
		echo "check: $pkg coverage $pct% below floor $COVER_FLOOR%" >&2
		exit 1
	fi
	echo "coverage $pkg: $pct% (floor $COVER_FLOOR%)"
done

# Fuzz smoke: a short budget per native fuzz target. Regressions in the
# encode/decode round trip or the compiler pass tend to surface within
# seconds; longer campaigns run out-of-band.
go test ./internal/isa -run '^$' -fuzz 'FuzzEncodeDecodeRoundTrip$' -fuzztime 10s
go test ./internal/compiler -run '^$' -fuzz 'FuzzCompilerPass$' -fuzztime 10s
go test ./internal/emulator -run '^$' -fuzz 'FuzzBroadcastSkew$' -fuzztime 10s
go test ./internal/workgen -run '^$' -fuzz 'FuzzGeneratedDifferential$' -fuzztime 10s
go test ./internal/tracefile -run '^$' -fuzz 'FuzzTraceRoundTrip$' -fuzztime 10s
go test ./internal/sampling -run '^$' -fuzz 'FuzzPlanFile$' -fuzztime 10s

# Throughput regression guard: capture the committed engine baseline BEFORE
# the bench run rewrites BENCH_engine.json, then fail if the fresh suite
# wall-clock regressed by more than 20% against it — or if the fresh run
# executed more functional emulations than the committed baseline (the
# broadcast trace bus keeps that at one shared emulation per workload; a
# regression here means fan-out batching silently stopped working).
baseline=$(awk -F'[:,]' '/"suiteWallClockSec"/ { gsub(/[ \t]/, "", $2); print $2 }' BENCH_engine.json)
if [ -z "$baseline" ]; then
	echo "check: no suiteWallClockSec in committed BENCH_engine.json" >&2
	exit 1
fi
emu_baseline=$(awk -F'[:,]' '/"emulationsRun"/ { gsub(/[ \t]/, "", $2); print $2 }' BENCH_engine.json)
if [ -z "$emu_baseline" ]; then
	echo "check: no emulationsRun in committed BENCH_engine.json" >&2
	exit 1
fi

go test -run '^$' -bench 'BenchmarkFigure6$|BenchmarkEngineSuite$' -benchtime=1x -benchmem .

# The sampled suite gets three iterations: its timed loops take min-over-
# iterations, and on a shared box a single iteration is noisy enough to trip
# the speedup floor below without any real regression.
go test -run '^$' -bench 'BenchmarkSampledSuite$' -benchtime=3x -benchmem .

fresh=$(awk -F'[:,]' '/"suiteWallClockSec"/ { gsub(/[ \t]/, "", $2); print $2 }' BENCH_engine.json)
if [ -z "$fresh" ]; then
	echo "check: benchmark did not refresh BENCH_engine.json" >&2
	exit 1
fi

# Benchstat-style old/new comparison against the committed baseline, then two
# gates: a relative one (no >20% regression vs whatever is committed) and an
# absolute ratchet. The ratchet is the point of a perf PR: once a speedup
# lands, the floor is lowered so a later change can't quietly give the win
# back while still passing the relative guard against its own refreshed
# baseline. Lower engine_wall_floor when a perf PR commits a faster baseline;
# never raise it. (Set from the 1-vCPU reference container: the zero-copy
# plumbing PR runs the suite in ~2.1s there; the floor leaves ~40% headroom
# for shared-machine noise but stays well under the ~3.3s it replaced.)
engine_wall_floor=3.0
awk -v old="$baseline" -v new="$fresh" 'BEGIN {
	printf "%-28s %10s %10s %9s\n", "metric", "old", "new", "delta"
	printf "%-28s %9.3fs %9.3fs %+8.1f%%\n", "engine suite wall-clock", old, new, (new - old) / old * 100
}'
if awk "BEGIN { exit !($fresh > $baseline * 1.2) }"; then
	echo "check: engine suite wall-clock regressed >20%: ${fresh}s vs committed ${baseline}s" >&2
	exit 1
fi
if awk "BEGIN { exit !($fresh > $engine_wall_floor) }"; then
	echo "check: engine suite wall-clock ${fresh}s above ratchet floor ${engine_wall_floor}s" >&2
	exit 1
fi
echo "engine suite wall-clock: ${fresh}s (committed ${baseline}s, guard +20%, ratchet ${engine_wall_floor}s)"

emu_fresh=$(awk -F'[:,]' '/"emulationsRun"/ { gsub(/[ \t]/, "", $2); print $2 }' BENCH_engine.json)
if [ -z "$emu_fresh" ]; then
	echo "check: benchmark did not report emulationsRun" >&2
	exit 1
fi
if [ "$emu_fresh" -gt "$emu_baseline" ]; then
	echo "check: emulationsRun regressed: $emu_fresh vs committed $emu_baseline" >&2
	exit 1
fi
echo "engine suite emulations: $emu_fresh (committed baseline $emu_baseline)"

# Sampled-simulation wall-clock floor: the warm-plan path (plan loaded from
# the store, representatives fanned out concurrently) must beat full detailed
# simulation of the sampleable quick-suite workloads by at least 2.5x. The
# committed BENCH_sampling.json records >= 3x; the gate sits below that to
# absorb shared-machine scheduler noise without letting a real regression
# through.
speedup=$(awk -F'[:,]' '/"wallClockSpeedup"/ { gsub(/[ \t]/, "", $2); print $2 }' BENCH_sampling.json)
if [ -z "$speedup" ]; then
	echo "check: benchmark did not refresh wallClockSpeedup in BENCH_sampling.json" >&2
	exit 1
fi
if awk "BEGIN { exit !($speedup < 2.5) }"; then
	echo "check: sampled-suite wall-clock speedup $speedup below floor 2.5" >&2
	exit 1
fi
echo "sampled suite wall-clock speedup: ${speedup}x (floor 2.5x)"

echo "check: OK"
