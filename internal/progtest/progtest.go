// Package progtest generates random structured programs for fuzz tests:
// bounded nestings of counted loops, if/else hammocks and straight-line
// runs over a fixed register pool, with loads and stores to a scratch
// region and occasional fences. Structured generation guarantees
// termination, so tests can assert semantic preservation, commit
// conservation and trace determinism on arbitrary seeds.
package progtest

import (
	"fmt"
	"math/rand"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

type gen struct {
	r      *rand.Rand
	b      *program.Builder
	labels int
	depth  int
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

var dataRegs = []isa.Reg{isa.A2, isa.A3, isa.A4, isa.A5, isa.S3, isa.S4, isa.S5, isa.S6, isa.T0, isa.T1, isa.T2}

func (g *gen) reg() isa.Reg { return dataRegs[g.r.Intn(len(dataRegs))] }

func (g *gen) straightRun() {
	n := 1 + g.r.Intn(6)
	for i := 0; i < n; i++ {
		switch g.r.Intn(8) {
		case 0:
			g.b.Addi(g.reg(), g.reg(), int64(g.r.Intn(64)))
		case 1:
			g.b.Xor(g.reg(), g.reg(), g.reg())
		case 2:
			g.b.Add(g.reg(), g.reg(), g.reg())
		case 3:
			g.b.Slli(g.reg(), g.reg(), int64(1+g.r.Intn(4)))
		case 4:
			g.b.Sw(g.reg(), isa.S0, int64(g.r.Intn(8))*8)
		case 5:
			g.b.Lw(g.reg(), isa.S0, int64(g.r.Intn(8))*8)
		case 6:
			g.b.Andi(g.reg(), g.reg(), int64(g.r.Intn(255)+1))
		case 7:
			if g.r.Intn(4) == 0 {
				g.b.Fence()
			} else {
				g.b.Srli(g.reg(), g.reg(), int64(1+g.r.Intn(3)))
			}
		}
	}
}

func (g *gen) structure() {
	g.straightRun()
	if g.depth >= 3 {
		return
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.r.Intn(3) {
	case 0: // if/else hammock on a data register's parity
		elseL, joinL := g.label("else"), g.label("join")
		cond := g.reg()
		g.b.Andi(isa.T3, cond, 1)
		g.b.Bnez(isa.T3, elseL)
		g.b.Label(g.label("then"))
		g.structure()
		g.b.J(joinL)
		g.b.Label(elseL)
		g.structure()
		g.b.Label(joinL)
	case 1: // counted loop with a dedicated counter register
		counter := []isa.Reg{isa.S8, isa.S9, isa.S10}[g.depth-1]
		top := g.label("loop")
		g.b.Li(counter, int64(2+g.r.Intn(5)))
		g.b.Label(top)
		g.structure()
		g.b.Label(g.label("latch"))
		g.b.Addi(counter, counter, -1)
		g.b.Bnez(counter, top)
		g.b.Label(g.label("exit"))
	default:
		g.structure()
	}
}

// Generate builds a random terminating program from the seed. Identical
// seeds yield identical programs.
func Generate(seed int64) *program.Program {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	g.b = program.NewBuilder(fmt.Sprintf("fuzz%d", seed))
	g.b.Label("entry").Li(isa.S0, 0x10000)
	for i := 0; i < 3; i++ {
		g.structure()
	}
	g.b.Halt()
	return g.b.MustBuild()
}
