package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Counter is a monotonically increasing named count.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Histogram buckets observations by upper bounds (the last bucket is
// unbounded). Bounds are inclusive: an observation lands in the first bucket
// whose bound is >= the value.
type Histogram struct {
	name   string
	bounds []int64
	counts []int64
	sum    int64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns (bound, count) pairs; the final pair has bound -1 for the
// overflow bucket.
func (h *Histogram) Buckets() ([]int64, []int64) {
	bounds := append(append([]int64{}, h.bounds...), -1)
	counts := append([]int64{}, h.counts...)
	return bounds, counts
}

// Registry names and owns a run's counters and histograms. Lookups are
// mutex-guarded so sinks on different cores may share one registry; the hot
// path is the returned Counter/Histogram itself, which each single-threaded
// emitter uses without locking.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, bounds: append([]int64{}, bounds...), counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// WriteSummary renders every counter and histogram as aligned plain text,
// sorted by name.
func (r *Registry) WriteSummary(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %d\n", n, r.counters[n].v)
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.hists[n]
		fmt.Fprintf(w, "%-32s n=%d mean=%.2f", n, h.n, h.Mean())
		for i, b := range h.bounds {
			fmt.Fprintf(w, " <=%d:%d", b, h.counts[i])
		}
		fmt.Fprintf(w, " inf:%d\n", h.counts[len(h.bounds)])
	}
}

// Metrics folds pipeline events into a registry: per-kind event counters,
// an out-of-order-commit counter, and a fetch-to-commit latency histogram.
// It is the standard aggregation noreba-sim prints after a traced run.
type Metrics struct {
	reg       *Registry
	fetchedAt map[int64]int64 // seq → fetch cycle, for commit latency
}

// NewMetrics returns a metrics sink folding into reg (a fresh registry when
// nil).
func NewMetrics(reg *Registry) *Metrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Metrics{reg: reg, fetchedAt: map[int64]int64{}}
}

// Registry returns the registry the sink folds into.
func (m *Metrics) Registry() *Registry { return m.reg }

// Emit folds one event.
func (m *Metrics) Emit(e Event) {
	m.reg.Counter("events/" + e.Kind.String()).Inc()
	switch e.Kind {
	case KindFetch:
		m.fetchedAt[e.Seq] = e.Cycle
	case KindSquash:
		delete(m.fetchedAt, e.Seq)
	case KindCommit:
		if e.OoO {
			m.reg.Counter("commit/out-of-order").Inc()
		}
		if f, ok := m.fetchedAt[e.Seq]; ok {
			m.reg.Histogram("commit/latency-cycles", 8, 16, 32, 64, 128, 256).Observe(e.Cycle - f)
			delete(m.fetchedAt, e.Seq)
		}
	case KindCacheMiss:
		m.reg.Histogram("mem/miss-latency-cycles", 16, 40, 80, 160, 320).Observe(e.Arg)
	}
}
