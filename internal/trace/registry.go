package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing named count. Updates are atomic so
// many goroutines (the service's scheduler workers, several traced cores
// sharing one registry) may increment concurrently, and Snapshot may read
// while emitters are still running.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named point-in-time level: unlike a Counter it may move in
// both directions (replica health counts, active sweeps, queue depths).
// Updates are atomic, so emitters and Snapshot readers never block each
// other.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge's level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (negative n lowers it).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram buckets observations by upper bounds (the last bucket is
// unbounded). Bounds are inclusive: an observation lands in the first bucket
// whose bound is >= the value. Observations are mutex-guarded so concurrent
// emitters and Snapshot readers stay consistent; the lock is uncontended on
// the common single-emitter path.
type Histogram struct {
	name   string
	bounds []int64

	mu     sync.Mutex
	counts []int64
	sum    int64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meanLocked()
}

func (h *Histogram) meanLocked() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns (bound, count) pairs; the final pair has bound -1 for the
// overflow bucket.
func (h *Histogram) Buckets() ([]int64, []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds := append(append([]int64{}, h.bounds...), -1)
	counts := append([]int64{}, h.counts...)
	return bounds, counts
}

// Registry names and owns a run's counters and histograms. Lookups are
// mutex-guarded so sinks on different cores may share one registry; the hot
// path is the returned Counter/Histogram itself.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, bounds: append([]int64{}, bounds...), counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is one histogram's exported state. Bounds carries the
// configured bucket upper bounds; Counts has one extra trailing element for
// the unbounded overflow bucket.
type HistogramSnapshot struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Mean   float64 `json:"mean"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Snapshot is a consistent point-in-time export of a registry, sorted by
// name. It is plain data — JSON-marshalable as-is — so the service's
// /metrics endpoint and offline tooling share one format.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every counter and histogram. It is safe to call while
// emitters are still updating the registry; each instrument is read
// atomically (counters) or under its lock (histograms).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name:   h.name,
			Count:  h.n,
			Sum:    h.sum,
			Mean:   h.meanLocked(),
			Bounds: append([]int64{}, h.bounds...),
			Counts: append([]int64{}, h.counts...),
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteSummary renders every counter and histogram as aligned plain text,
// sorted by name.
func (r *Registry) WriteSummary(w io.Writer) {
	s := r.Snapshot()
	for _, c := range s.Counters {
		fmt.Fprintf(w, "%-32s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "%-32s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "%-32s n=%d mean=%.2f", h.Name, h.Count, h.Mean)
		for i, b := range h.Bounds {
			fmt.Fprintf(w, " <=%d:%d", b, h.Counts[i])
		}
		fmt.Fprintf(w, " inf:%d\n", h.Counts[len(h.Bounds)])
	}
}

// Metrics folds pipeline events into a registry: per-kind event counters,
// an out-of-order-commit counter, and a fetch-to-commit latency histogram.
// It is the standard aggregation noreba-sim prints after a traced run.
type Metrics struct {
	reg       *Registry
	fetchedAt map[int64]int64 // seq → fetch cycle, for commit latency
}

// NewMetrics returns a metrics sink folding into reg (a fresh registry when
// nil).
func NewMetrics(reg *Registry) *Metrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Metrics{reg: reg, fetchedAt: map[int64]int64{}}
}

// Registry returns the registry the sink folds into.
func (m *Metrics) Registry() *Registry { return m.reg }

// Emit folds one event.
func (m *Metrics) Emit(e Event) {
	m.reg.Counter("events/" + e.Kind.String()).Inc()
	switch e.Kind {
	case KindFetch:
		m.fetchedAt[e.Seq] = e.Cycle
	case KindSquash:
		delete(m.fetchedAt, e.Seq)
	case KindCommit:
		if e.OoO {
			m.reg.Counter("commit/out-of-order").Inc()
		}
		if f, ok := m.fetchedAt[e.Seq]; ok {
			m.reg.Histogram("commit/latency-cycles", 8, 16, 32, 64, 128, 256).Observe(e.Cycle - f)
			delete(m.fetchedAt, e.Seq)
		}
	case KindCacheMiss:
		m.reg.Histogram("mem/miss-latency-cycles", 16, 40, 80, 160, 320).Observe(e.Arg)
	}
}
