package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestSnapshotSortedAndComplete: Snapshot exports every instrument, sorted
// by name, with histogram bounds/counts intact, and the result marshals to
// JSON directly.
func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Add(3)
	r.Counter("alpha").Inc()
	h := r.Histogram("lat", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zebra" {
		t.Fatalf("counters not sorted/complete: %+v", s.Counters)
	}
	if s.Counters[0].Value != 1 || s.Counters[1].Value != 3 {
		t.Errorf("counter values: %+v", s.Counters)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
	hs := s.Histograms[0]
	if hs.Count != 3 || hs.Sum != 5055 {
		t.Errorf("histogram totals: %+v", hs)
	}
	if len(hs.Bounds) != 2 || len(hs.Counts) != 3 {
		t.Fatalf("histogram shape: %+v", hs)
	}
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("bucket spread: %+v", hs.Counts)
	}

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[1].Value != 3 || back.Histograms[0].Sum != 5055 {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

// TestGauge: gauges move in both directions, snapshot sorted alongside the
// other instruments, and the same name always returns the same gauge.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cluster/peers-healthy")
	g.Set(3)
	g.Add(-1)
	g.Add(2)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge value = %d, want 4", got)
	}
	if r.Gauge("cluster/peers-healthy") != g {
		t.Error("same name returned a different gauge")
	}
	r.Gauge("aaa").Set(7)

	s := r.Snapshot()
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "aaa" || s.Gauges[1].Name != "cluster/peers-healthy" {
		t.Fatalf("gauges not sorted/complete: %+v", s.Gauges)
	}
	if s.Gauges[0].Value != 7 || s.Gauges[1].Value != 4 {
		t.Errorf("gauge values: %+v", s.Gauges)
	}

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Gauges) != 2 || back.Gauges[1].Value != 4 {
		t.Errorf("JSON round trip lost gauges: %+v", back.Gauges)
	}

	// A registry without gauges omits the field entirely, keeping older
	// consumers' snapshots byte-stable.
	empty, err := json.Marshal(NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != `{"counters":null,"histograms":null}` {
		t.Errorf("empty snapshot = %s", empty)
	}
}

// TestSnapshotConcurrent: snapshots taken while many goroutines hammer the
// same counter and histogram never tear (run under -race) and the final
// totals are exact.
func TestSnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Histogram("hist", 10).Observe(int64(i % 20))
			}
		}()
	}
	// Concurrent readers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := r.Snapshot()
				for _, h := range s.Histograms {
					var n int64
					for _, c := range h.Counts {
						n += c
					}
					if n != h.Count {
						t.Errorf("torn histogram snapshot: buckets sum %d, count %d", n, h.Count)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	if s.Counters[0].Value != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters[0].Value, workers*perWorker)
	}
	if s.Histograms[0].Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Histograms[0].Count, workers*perWorker)
	}
}
