// Package trace is the simulator's structured observability layer: typed
// per-stage pipeline events plus counter/histogram registries, behind a Sink
// interface whose nil fast path costs one branch per event site. The
// cycle-level core emits an Event whenever an instruction crosses a stage
// boundary (fetch, dispatch/rename, issue, writeback, commit), is squashed,
// resolves a misprediction, misses the L1, or reclaims a load-queue entry
// early; consumers range from a JSONL file writer (noreba-sim -trace) to the
// in-memory collector the pipeline viewer renders from.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Kind identifies a pipeline event type.
type Kind uint8

const (
	// KindFetch: the instruction entered the front end.
	KindFetch Kind = iota + 1
	// KindDispatch: the instruction was renamed and entered the ROB.
	KindDispatch
	// KindIssue: the instruction left the issue queue for a functional unit.
	KindIssue
	// KindWriteback: the instruction's result was produced.
	KindWriteback
	// KindCommit: the instruction retired (Arg carries the Selective ROB
	// queue it drained through, -1 outside NOREBA; OoO marks out-of-order
	// retirement).
	KindCommit
	// KindSquash: the instruction was squashed by a misprediction recovery.
	KindSquash
	// KindMispredict: a control transfer resolved mispredicted.
	KindMispredict
	// KindCacheMiss: a demand load missed the L1 (Addr is the address, Arg
	// the total latency in cycles).
	KindCacheMiss
	// KindEarlyReclaim: a load's queue entry was reclaimed before its data
	// returned (§6.1.5 ECL) or held past commit awaiting the fill.
	KindEarlyReclaim
)

var kindNames = [...]string{
	KindFetch:        "fetch",
	KindDispatch:     "dispatch",
	KindIssue:        "issue",
	KindWriteback:    "writeback",
	KindCommit:       "commit",
	KindSquash:       "squash",
	KindMispredict:   "mispredict",
	KindCacheMiss:    "cache-miss",
	KindEarlyReclaim: "early-reclaim",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one cycle-stamped pipeline occurrence. The struct is flat and
// allocation-free so emitting with a live sink stays cheap.
type Event struct {
	Kind  Kind
	Cycle int64
	Seq   int64 // dynamic sequence number
	Idx   int   // trace index
	PC    int   // static instruction address
	Addr  int64 // memory address (cache-miss events)
	Arg   int64 // kind-specific: commit queue, miss latency
	OoO   bool  // commit events: retired while older instructions remained
}

// Sink consumes pipeline events. Implementations need not be goroutine-safe:
// a core emits from a single goroutine, and each core gets its own sink.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// Tee fans every event out to each of sinks.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(e Event) {
		for _, s := range sinks {
			s.Emit(e)
		}
	})
}

// Collector buffers events in memory, optionally stopping after Limit commit
// events have been seen. Commit is the last stage of an instruction's
// lifecycle, so once the N-th commit has been observed every event of the
// first N committed instructions has already been captured — the pipeline
// viewer uses this to bound memory on long runs.
type Collector struct {
	// Limit, when positive, stops capturing after this many commit events.
	Limit int

	events  []Event
	commits int
}

// Emit records e unless the commit limit has been reached.
func (c *Collector) Emit(e Event) {
	if c.Limit > 0 && c.commits >= c.Limit {
		return
	}
	c.events = append(c.events, e)
	if e.Kind == KindCommit {
		c.commits++
	}
}

// Events returns the captured events in emission order.
func (c *Collector) Events() []Event { return c.events }

// JSONL streams events as JSON lines. Writes are buffered; call Close (or
// Flush) before reading the output. The encoder is hand-rolled over the flat
// Event struct — no reflection on the per-event path.
type JSONL struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer
}

// NewJSONL returns a JSONL sink writing to w. If w is also an io.Closer,
// Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit writes one event as a JSON line.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fmt.Fprintf(j.w, `{"kind":%q,"cycle":%d,"seq":%d,"idx":%d,"pc":%d`,
		e.Kind.String(), e.Cycle, e.Seq, e.Idx, e.PC)
	if e.Kind == KindCacheMiss {
		fmt.Fprintf(j.w, `,"addr":%d,"latency":%d`, e.Addr, e.Arg)
	}
	if e.Kind == KindCommit {
		fmt.Fprintf(j.w, `,"queue":%d,"ooo":%t`, e.Arg, e.OoO)
	}
	j.w.WriteString("}\n")
}

// Flush drains the write buffer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONL) Close() error {
	if err := j.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}
