package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindFetch, KindDispatch, KindIssue, KindWriteback, KindCommit,
		KindSquash, KindMispredict, KindCacheMiss, KindEarlyReclaim}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind renders %q", got)
	}
}

func TestCollectorLimit(t *testing.T) {
	c := &Collector{Limit: 2}
	for seq := int64(0); seq < 5; seq++ {
		c.Emit(Event{Kind: KindDispatch, Seq: seq})
		c.Emit(Event{Kind: KindCommit, Seq: seq})
	}
	evs := c.Events()
	// Two full instruction lifecycles captured, nothing after the 2nd commit.
	if len(evs) != 4 {
		t.Fatalf("captured %d events, want 4", len(evs))
	}
	if evs[len(evs)-1].Kind != KindCommit || evs[len(evs)-1].Seq != 1 {
		t.Fatalf("capture did not stop at the limit: last event %+v", evs[len(evs)-1])
	}

	unlimited := &Collector{}
	for i := 0; i < 10; i++ {
		unlimited.Emit(Event{Kind: KindCommit})
	}
	if len(unlimited.Events()) != 10 {
		t.Fatalf("zero limit must mean unlimited, got %d", len(unlimited.Events()))
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	s := Tee(a, b)
	s.Emit(Event{Kind: KindFetch, Seq: 7})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("tee delivered %d/%d events, want 1/1", len(a.Events()), len(b.Events()))
	}
}

// TestJSONLValidAndComplete: every emitted line must be standalone valid JSON
// with the kind-specific fields present.
func TestJSONLValidAndComplete(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{Kind: KindCommit, Cycle: 10, Seq: 3, Idx: 3, PC: 12, Arg: 1, OoO: true})
	j.Emit(Event{Kind: KindCacheMiss, Cycle: 11, Seq: 4, Idx: 4, PC: 13, Addr: 1 << 20, Arg: 200})
	j.Emit(Event{Kind: KindFetch, Cycle: 12, Seq: 5, Idx: 5, PC: 14})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	var rows []map[string]any
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		rows = append(rows, m)
	}
	if rows[0]["kind"] != "commit" || rows[0]["ooo"] != true || rows[0]["queue"] != float64(1) {
		t.Errorf("commit line missing fields: %v", rows[0])
	}
	if rows[1]["kind"] != "cache-miss" || rows[1]["addr"] != float64(1<<20) || rows[1]["latency"] != float64(200) {
		t.Errorf("cache-miss line missing fields: %v", rows[1])
	}
	if _, ok := rows[2]["queue"]; ok {
		t.Errorf("fetch line carries commit-only fields: %v", rows[2])
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if r.Counter("x").Value() != 5 {
		t.Fatalf("counter = %d, want 5", r.Counter("x").Value())
	}

	h := r.Histogram("lat", 10, 100)
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || bounds[2] != -1 {
		t.Fatalf("buckets = %v", bounds)
	}
	// 5 and 10 land in <=10 (inclusive bounds), 11 in <=100, 1000 overflows.
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [2 1 1]", counts)
	}
	if got := h.Mean(); got != 1026.0/4 {
		t.Fatalf("mean = %v", got)
	}

	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "lat") || !strings.Contains(out, "n=4") {
		t.Fatalf("summary missing entries:\n%s", out)
	}
}

// TestMetricsFolding: the standard aggregation sink derives commit latency
// from fetch→commit spans and drops state for squashed instructions.
func TestMetricsFolding(t *testing.T) {
	m := NewMetrics(nil)
	m.Emit(Event{Kind: KindFetch, Seq: 1, Cycle: 10})
	m.Emit(Event{Kind: KindCommit, Seq: 1, Cycle: 30, OoO: true})
	m.Emit(Event{Kind: KindFetch, Seq: 2, Cycle: 11})
	m.Emit(Event{Kind: KindSquash, Seq: 2, Cycle: 12})
	m.Emit(Event{Kind: KindCacheMiss, Seq: 3, Arg: 150})

	reg := m.Registry()
	if got := reg.Counter("events/commit").Value(); got != 1 {
		t.Errorf("events/commit = %d", got)
	}
	if got := reg.Counter("commit/out-of-order").Value(); got != 1 {
		t.Errorf("commit/out-of-order = %d", got)
	}
	h := reg.Histogram("commit/latency-cycles")
	if h.Count() != 1 || h.Mean() != 20 {
		t.Errorf("latency histogram n=%d mean=%v, want n=1 mean=20", h.Count(), h.Mean())
	}
	if reg.Histogram("mem/miss-latency-cycles").Count() != 1 {
		t.Errorf("miss histogram not folded")
	}
	// Squashed seq 2 must not leak into the latency map.
	if len(m.fetchedAt) != 0 {
		t.Errorf("fetchedAt retains %d entries after squash/commit", len(m.fetchedAt))
	}
}
