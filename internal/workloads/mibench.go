package workloads

import (
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

func init() {
	register(Workload{Name: "CRC32", Suite: MiBench, DefaultScale: 1500, Build: crc32})
	register(Workload{Name: "dijkstra", Suite: MiBench, DefaultScale: 60, Build: dijkstra})
	register(Workload{Name: "qsort", Suite: MiBench, DefaultScale: 900, Build: qsortK})
	register(Workload{Name: "sha", Suite: MiBench, DefaultScale: 700, Build: sha})
	register(Workload{Name: "stringsearch", Suite: MiBench, DefaultScale: 900, Build: stringsearch})
	register(Workload{Name: "bitcount", Suite: MiBench, DefaultScale: 1200, Build: bitcount})
	register(Workload{Name: "susan", Suite: MiBench, DefaultScale: 800, Build: susan})
}

// crc32 mimics MiBench telecomm/CRC32: table-driven CRC over a buffer. The
// per-byte update chain is serial but control is perfectly predictable, so
// vast independent regions sit beyond every reconvergence point — the paper
// reports CRC among the >20% OoO-commit applications (Figure 8).
func crc32(scale int) *program.Program {
	b := program.NewBuilder("CRC32")
	r := lcg(67)
	const tbl, buf, n = 1 << 22, 1<<22 + 1<<12, 2048
	b.Label("entry").
		Li(isa.S0, tbl).
		Li(isa.S1, buf).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0).
		Li(isa.A2, -1) // crc register
	b.Label("byte").
		Add(isa.T0, isa.S1, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Xor(isa.T2, isa.A2, isa.T1).
		Andi(isa.T2, isa.T2, 255).
		Slli(isa.T2, isa.T2, 3).
		Add(isa.T3, isa.S0, isa.T2).
		Lw(isa.T4, isa.T3, 0).
		Srli(isa.T5, isa.A2, 8).
		Xor(isa.A2, isa.T5, isa.T4)
	independentTail(b, 10) // checksum bookkeeping, length counters…
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, n*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "byte")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, tbl, 256, 8, &r)
	arrayData(p, buf, n, 8, &r)
	return p
}

// dijkstra mimics MiBench network/dijkstra's relaxation scan: a tight loop
// whose min-compare branch guards most of the body, so few instructions are
// independent of the pending branch — the paper shows dijkstra committing
// almost nothing out of order (Figure 8).
func dijkstra(scale int) *program.Program {
	b := program.NewBuilder("dijkstra")
	r := lcg(71)
	const dist, n = 1 << 22, 256
	b.Label("entry").
		Li(isa.S0, dist).
		Li(isa.A0, int64(scale))
	b.Label("pass").
		Li(isa.A1, 0).
		Li(isa.A2, 1<<30) // current min
	b.Label("relax").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		// Path-cost computation on the loaded distance (always executed,
		// data-dependent on the load — dijkstra keeps everything close to
		// its memory values, which is why it commits so little OoO).
		Slli(isa.T5, isa.T1, 1).
		Add(isa.T5, isa.T5, isa.T1).
		Srli(isa.T6, isa.T5, 2).
		Add(isa.S3, isa.S3, isa.T6).
		Xor(isa.S4, isa.S4, isa.T5).
		Add(isa.S5, isa.S5, isa.T1).
		Slt(isa.T2, isa.T1, isa.A2).
		Beqz(isa.T2, "nomin")
	b.Label("newmin").
		Mv(isa.A2, isa.T1).
		Mv(isa.A3, isa.A1).
		Addi(isa.T3, isa.T1, 3).
		Sw(isa.T3, isa.T0, 0)
	b.Label("nomin").
		Add(isa.S6, isa.S6, isa.A2).
		Xor(isa.S7, isa.S7, isa.A2).
		Addi(isa.A1, isa.A1, 8).
		Slti(isa.T4, isa.A1, n*8).
		Bnez(isa.T4, "relax")
	b.Label("passend").
		Add(isa.A4, isa.A4, isa.A3).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "pass")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, dist, n, 8, &r)
	return p
}

// qsortK mimics MiBench auto/qsort's partitioning: compare-and-swap passes
// over a pseudo-random array with unpredictable comparison branches and
// store-heavy dependent regions.
func qsortK(scale int) *program.Program {
	b := program.NewBuilder("qsort")
	r := lcg(73)
	const arr, n = 1 << 22, 512
	b.Label("entry").
		Li(isa.S0, arr).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("pair").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Lw(isa.T2, isa.T0, 8).
		Bge(isa.T2, isa.T1, "inorder")
	b.Label("swap").
		Sw(isa.T2, isa.T0, 0).
		Sw(isa.T1, isa.T0, 8).
		Addi(isa.A2, isa.A2, 1)
	b.Label("inorder")
	independentTail(b, 12)
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, (n-2)*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "pair")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, arr, n, 8, &r)
	return p
}

// sha mimics MiBench security/sha's compression rounds: long xor/rotate/add
// chains with perfectly predictable control — high ILP, nothing for OoO
// commit to reclaim early.
func sha(scale int) *program.Program {
	b := program.NewBuilder("sha")
	r := lcg(79)
	const blk = 1 << 22
	b.Label("entry").
		Li(isa.S0, blk).
		Li(isa.A0, int64(scale)).
		Li(isa.A2, 0x67452301).
		Li(isa.A3, 0xefcdab89).
		Li(isa.A4, 0x98badcfe)
	b.Label("round").
		Andi(isa.T6, isa.A0, 15*8).
		Add(isa.T0, isa.S0, isa.T6).
		Lw(isa.T1, isa.T0, 0).
		Slli(isa.T2, isa.A2, 5).
		Srli(isa.T3, isa.A2, 27).
		Or(isa.T2, isa.T2, isa.T3).
		Xor(isa.T4, isa.A3, isa.A4).
		Add(isa.T5, isa.T2, isa.T4).
		Add(isa.T5, isa.T5, isa.T1).
		Mv(isa.A4, isa.A3).
		Mv(isa.A3, isa.A2).
		Mv(isa.A2, isa.T5).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "round")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, blk, 16, 8, &r)
	return p
}

// stringsearch mimics MiBench office/stringsearch: a character-compare
// inner loop with a data-dependent early-exit branch and a small body.
func stringsearch(scale int) *program.Program {
	b := program.NewBuilder("stringsearch")
	r := lcg(83)
	const text, pat, n = 1 << 22, 1<<22 + 1<<12, 1024
	b.Label("entry").
		Li(isa.S0, text).
		Li(isa.S1, pat).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("cmp").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Lw(isa.T2, isa.S1, 0).
		Bne(isa.T1, isa.T2, "mismatch")
	b.Label("match").
		Addi(isa.A2, isa.A2, 1).
		Add(isa.A3, isa.A3, isa.T1)
	b.Label("mismatch")
	independentTail(b, 9)
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, n*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "cmp")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < n; i++ {
		p.Data[text+int64(i)*8] = int64(r.intn(4))
	}
	p.Data[pat] = 1
	return p
}

// bitcount mimics MiBench auto/bitcount: per-bit test-and-accumulate with a
// branch whose outcome follows the data's bit pattern.
func bitcount(scale int) *program.Program {
	b := program.NewBuilder("bitcount")
	r := lcg(89)
	b.Label("entry").
		Li(isa.A0, int64(scale)).
		Li(isa.A1, int64(r.next()))
	b.Label("bit").
		Andi(isa.T0, isa.A1, 1).
		Beqz(isa.T0, "zero")
	b.Label("one").
		Addi(isa.A2, isa.A2, 1)
	b.Label("zero").
		// The other bit-counting strategies MiBench runs alongside
		// (nibble table, shift-and-mask) — independent of the bit test.
		Srli(isa.T2, isa.A1, 4).
		Andi(isa.T3, isa.T2, 15).
		Add(isa.A3, isa.A3, isa.T3).
		Slli(isa.T5, isa.A1, 1).
		Xor(isa.A4, isa.A4, isa.T5).
		Addi(isa.A5, isa.A5, 2).
		Srli(isa.T6, isa.A1, 8).
		Andi(isa.T6, isa.T6, 255).
		Add(isa.S3, isa.S3, isa.T6).
		Xor(isa.S4, isa.S4, isa.T5).
		Add(isa.S5, isa.S5, isa.A5).
		Srli(isa.A1, isa.A1, 1).
		Bnez(isa.A1, "more")
	b.Label("refill").
		Slli(isa.T1, isa.A2, 13).
		Xor(isa.T1, isa.T1, isa.A2).
		Ori(isa.A1, isa.T1, 1)
	b.Label("more").
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "bit")
	b.Label("done").Halt()
	return b.MustBuild()
}

// susan mimics MiBench auto/susan's corner detection: windowed image loads
// with brightness-threshold branches and accumulation of the USAN area.
func susan(scale int) *program.Program {
	b := program.NewBuilder("susan")
	r := lcg(97)
	const img, n, stride = 1 << 22, 2048, 8
	b.Label("entry").
		Li(isa.S0, img).
		Li(isa.T6, 20). // brightness threshold
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("px").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Lw(isa.T2, isa.T0, 8).
		Sub(isa.T3, isa.T1, isa.T2).
		Blt(isa.T3, isa.T6, "similar")
	b.Label("edge").
		Addi(isa.A2, isa.A2, 1).
		Add(isa.A3, isa.A3, isa.T3)
	b.Label("similar")
	independentTail(b, 7)
	b.Addi(isa.A1, isa.A1, stride).
		Andi(isa.A1, isa.A1, (n-2)*stride-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "px")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < n; i++ {
		p.Data[img+int64(i)*stride] = int64(r.intn(256))
	}
	return p
}
