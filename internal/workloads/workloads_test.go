package workloads

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

const maxDyn = 1 << 21

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 20 {
		t.Fatalf("only %d workloads registered, want >= 20", len(all))
	}
	spec, mib, gen := 0, 0, 0
	for _, w := range all {
		switch w.Suite {
		case SPEC:
			spec++
		case MiBench:
			mib++
		case Generated:
			gen++
		default:
			t.Errorf("%s: unknown suite %q", w.Name, w.Suite)
		}
	}
	if spec < 14 || mib < 6 || gen < 4 {
		t.Errorf("suite counts: SPEC-like %d, MiBench-like %d, generated %d", spec, mib, gen)
	}
}

// TestCuratedExcludesGenerated: the figure suite must not grow when new
// generator seeds are pinned — Curated is what the experiment runner
// defaults to.
func TestCuratedExcludesGenerated(t *testing.T) {
	cur := Curated()
	if len(cur) == len(All()) {
		t.Fatal("Curated returned the full registry; generated workloads leaked into the figure suite")
	}
	for _, w := range cur {
		if w.Suite == Generated {
			t.Errorf("%s: generated workload in the curated suite", w.Name)
		}
	}
}

// TestRegisterRejectsDuplicates: a name collision at init is a programming
// error and must fail loudly.
func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(All()[0])
}

func TestByName(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

// TestEveryWorkloadTerminates runs each kernel functionally at its default
// scale and checks it halts within budget with a sensible mix.
func TestEveryWorkloadTerminates(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(w.DefaultScale)
			img, err := p.Layout()
			if err != nil {
				t.Fatalf("layout: %v", err)
			}
			m := emulator.New(img)
			tr, err := m.Run(maxDyn)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !m.Halted() {
				t.Fatalf("did not halt within %d instructions (%d executed)", maxDyn, tr.Len())
			}
			if tr.Len() < 5000 {
				t.Errorf("only %d dynamic instructions; scale up", tr.Len())
			}
			if tr.Len() > 1<<20 {
				t.Errorf("%d dynamic instructions; scale down", tr.Len())
			}
			if tr.Branches == 0 {
				t.Error("no conditional branches executed")
			}
		})
	}
}

// TestEveryWorkloadCompiles runs the NOREBA pass over each kernel and
// verifies (a) semantics are preserved and (b) at least one branch was
// marked.
func TestEveryWorkloadCompiles(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			scale := w.DefaultScale / 4
			if scale < 2 {
				scale = 2
			}
			p := w.Build(scale)
			img, err := p.Layout()
			if err != nil {
				t.Fatal(err)
			}
			m1 := emulator.New(img)
			if _, err := m1.Run(maxDyn); err != nil {
				t.Fatal(err)
			}

			res, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Pure-loop kernels (sha, lbm, …) legitimately have nothing to
			// mark once loop-closing branches are excluded; kernels with
			// data-dependent hammocks must get marked.
			switch w.Name {
			case "mcf", "bzip2", "astar", "gobmk", "dijkstra", "qsort":
				if res.Stats.MarkedBranches == 0 {
					t.Error("compiler marked no branches")
				}
			}
			m2 := emulator.New(res.Image)
			if _, err := m2.Run(maxDyn); err != nil {
				t.Fatal(err)
			}
			if m1.IntRegs != m2.IntRegs || m1.FPRegs != m2.FPRegs {
				t.Error("architectural state diverged after annotation")
			}
			for a, v := range m1.Mem {
				if m2.Mem[a] != v {
					t.Errorf("mem[%#x]: %d vs %d", a, v, m2.Mem[a])
				}
			}
		})
	}
}

// TestWorkloadsDeterministic: building twice yields identical programs and
// traces.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		p1 := w.Build(10)
		p2 := w.Build(10)
		i1, err1 := p1.Layout()
		i2, err2 := p2.Layout()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: layout errors %v %v", w.Name, err1, err2)
		}
		if len(i1.Insts) != len(i2.Insts) {
			t.Errorf("%s: nondeterministic build", w.Name)
			continue
		}
		t1, _ := emulator.New(i1).Run(1 << 16)
		t2, _ := emulator.New(i2).Run(1 << 16)
		if t1.Len() != t2.Len() {
			t.Errorf("%s: nondeterministic trace (%d vs %d)", w.Name, t1.Len(), t2.Len())
		}
	}
}

// TestScaleControlsLength: doubling scale roughly doubles dynamic length.
func TestScaleControlsLength(t *testing.T) {
	for _, name := range []string{"mcf", "CRC32", "sha"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(scale int) int {
			img, _ := w.Build(scale).Layout()
			tr, _ := emulator.New(img).Run(maxDyn)
			return tr.Len()
		}
		l1, l2 := run(50), run(100)
		ratio := float64(l2) / float64(l1)
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("%s: scale 50→100 changed length %d→%d (ratio %.2f)", name, l1, l2, ratio)
		}
	}
}

// TestCharacterContrast checks Figure 7's characterisation directly: under
// in-order commit, the branch that stalls the ROB the most must have far
// fewer dynamic dependents per occurrence in mcf than in bzip2.
func TestCharacterContrast(t *testing.T) {
	depsPerOcc := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := compiler.Compile(w.Build(w.DefaultScale/8+2), compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := emulator.New(res.Image).Run(maxDyn)
		if err != nil {
			t.Fatal(err)
		}
		cfg := pipeline.SkylakeConfig()
		cfg.PrefetchEnabled = false
		st, err := pipeline.NewCore(cfg, tr, res.Meta).Run()
		if err != nil {
			t.Fatal(err)
		}
		var critical *pipeline.BranchStall
		for _, bs := range st.BranchStalls {
			if critical == nil || bs.StallCycles > critical.StallCycles {
				critical = bs
			}
		}
		if critical == nil || critical.Occurrences == 0 {
			t.Fatalf("%s: no critical branch found", name)
		}
		return float64(critical.Dependents) / float64(critical.Occurrences)
	}
	fm, fb := depsPerOcc("mcf"), depsPerOcc("bzip2")
	if fm >= fb {
		t.Errorf("critical-branch dependents per occurrence: mcf %.1f should be below bzip2 %.1f", fm, fb)
	}
}
