package workloads

import (
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// chainData seeds a pseudo-random cyclic pointer chain of n nodes spaced
// stride bytes apart starting at base: mem[addr] = next addr, and
// mem[addr+8] = a pseudo-random tag. Returns nothing; the chain starts at
// base.
func chainData(p *program.Program, base int64, n int, stride int64, r *lcg) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n; i++ {
		from := base + int64(perm[i])*stride
		to := base + int64(perm[(i+1)%n])*stride
		p.Data[from] = to
		p.Data[from+8] = int64(r.next() & 0xffff)
	}
}

// arrayData seeds n pseudo-random words spaced stride bytes from base.
func arrayData(p *program.Program, base int64, n int, stride int64, r *lcg) {
	for i := 0; i < n; i++ {
		p.Data[base+int64(i)*stride] = int64(r.next() & 0xffffff)
	}
}

// independentTail emits k independent single-cycle instructions spread over
// callee-saved accumulators: the "much independent work" that out-of-order
// commit reclaims early.
func independentTail(b *program.Builder, k int) {
	regs := []isa.Reg{isa.S3, isa.S4, isa.S5, isa.S6, isa.S7, isa.S8, isa.S9, isa.S10, isa.S11, isa.A6, isa.A7, isa.T4}
	for i := 0; i < k; i++ {
		r := regs[i%len(regs)]
		b.Addi(r, r, int64(i+1))
	}
}

func init() {
	register(Workload{Name: "mcf", Suite: SPEC, DefaultScale: 700, Build: mcf})
	register(Workload{Name: "bzip2", Suite: SPEC, DefaultScale: 900, Build: bzip2})
	register(Workload{Name: "astar", Suite: SPEC, DefaultScale: 5, Build: astar})
	register(Workload{Name: "gcc", Suite: SPEC, DefaultScale: 900, Build: gcc})
	register(Workload{Name: "gobmk", Suite: SPEC, DefaultScale: 700, Build: gobmk})
	register(Workload{Name: "hmmer", Suite: SPEC, DefaultScale: 35, Build: hmmer})
	register(Workload{Name: "h264ref", Suite: SPEC, DefaultScale: 700, Build: h264ref})
	register(Workload{Name: "libquantum", Suite: SPEC, DefaultScale: 1200, Build: libquantum})
	register(Workload{Name: "lbm", Suite: SPEC, DefaultScale: 900, Build: lbm})
	register(Workload{Name: "milc", Suite: SPEC, DefaultScale: 500, Build: milc})
	register(Workload{Name: "omnetpp", Suite: SPEC, DefaultScale: 800, Build: omnetpp})
	register(Workload{Name: "sjeng", Suite: SPEC, DefaultScale: 800, Build: sjeng})
	register(Workload{Name: "perlbench", Suite: SPEC, DefaultScale: 800, Build: perlbench})
	register(Workload{Name: "soplex", Suite: SPEC, DefaultScale: 700, Build: soplex})
	register(Workload{Name: "sphinx3", Suite: SPEC, DefaultScale: 600, Build: sphinx3})
	register(Workload{Name: "xalancbmk", Suite: SPEC, DefaultScale: 700, Build: xalancbmk})
}

// mcf mimics 429.mcf's network-simplex arc scan: a pointer chase whose
// loads miss the caches, a cost-comparison branch on each loaded tag with a
// tiny dependent region, and a large amount of branch-independent
// bookkeeping. This is the paper's Figure 7 "blue cloud": branches stall
// the ROB for a long time but have few dependents, so NOREBA's win is
// maximal (2.17× in the paper).
func mcf(scale int) *program.Program {
	b := program.NewBuilder("mcf")
	r := lcg(42)
	// An index array (sequential, cache-friendly) names the arcs; each
	// arc's cost tag lives 8KB-strided across a 4MB region, so tag loads
	// miss every cache level, their addresses are ready early
	// (memory-level parallelism across iterations), and the pseudo-random
	// pattern defeats the delta prefetcher.
	const idxBase, idxN = 1 << 22, 1024
	const tagBase, tagN = 1 << 23, 512
	b.Label("entry").
		Li(isa.S0, idxBase).
		Li(isa.S1, tagBase).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("arc").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T5, isa.T0, 0). // arc index (near-sequential, fast)
		Slli(isa.T5, isa.T5, 13).
		Add(isa.T6, isa.S1, isa.T5).
		Lw(isa.T2, isa.T6, 0). // cost tag: long-latency miss
		Andi(isa.T1, isa.T2, 1).
		Bnez(isa.T1, "basis")
	b.Label("pivot"). // dependent region: small (few dependents, Figure 7)
				Addi(isa.A2, isa.A2, 1).
				Xor(isa.A3, isa.A3, isa.T2)
	b.Label("basis")
	independentTail(b, 26) // independent network bookkeeping
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, idxN*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "arc")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < idxN; i++ {
		p.Data[idxBase+int64(i)*8] = int64(r.intn(tagN))
	}
	for i := 0; i < tagN; i++ {
		p.Data[tagBase+int64(i)*8192] = int64(r.next() & 0xffff)
	}
	return p
}

// bzip2 mimics 401.bzip2's move-to-front/Huffman coding loops: each loaded
// symbol feeds a branch and essentially the whole remainder of the
// iteration depends on the branch outcome (Figure 7's red cloud — many
// dependents per branch), so out-of-order commit finds almost nothing to
// retire early.
func bzip2(scale int) *program.Program {
	b := program.NewBuilder("bzip2")
	r := lcg(7)
	const buf, n, stride = 1 << 22, 1024, 64
	b.Label("entry").
		Li(isa.S0, buf).
		Li(isa.S1, buf+(n+16)*stride). // output region
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("sym").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Andi(isa.T2, isa.T1, 3).
		Beqz(isa.T2, "rare")
	b.Label("common"). // everything below consumes t1: all dependent
				Slli(isa.T3, isa.T1, 1).
				Xor(isa.A2, isa.A2, isa.T3).
				Add(isa.A3, isa.A3, isa.T1).
				Srli(isa.T4, isa.T1, 2).
				Add(isa.A4, isa.A4, isa.T4).
				Xor(isa.A5, isa.A5, isa.T4).
				Add(isa.S3, isa.S3, isa.T3).
				Xor(isa.S4, isa.S4, isa.T1).
				Add(isa.S5, isa.S5, isa.T4).
				Xor(isa.S6, isa.S6, isa.T3).
				Add(isa.S7, isa.S7, isa.T1).
				Xor(isa.S8, isa.S8, isa.T4).
				Add(isa.S9, isa.S9, isa.T3).
				Xor(isa.S10, isa.S10, isa.T1).
				Add(isa.S11, isa.S11, isa.T4).
				Xor(isa.A6, isa.A6, isa.T3).
				Add(isa.A7, isa.A7, isa.T1).
				Xor(isa.T6, isa.T6, isa.T4).
				Sw(isa.A2, isa.S1, 0).
				J("next")
	b.Label("rare").
		Addi(isa.A2, isa.A2, 1).
		Xor(isa.A3, isa.A3, isa.A2).
		Add(isa.A4, isa.A4, isa.A2).
		Xor(isa.A5, isa.A5, isa.A4).
		Add(isa.S3, isa.S3, isa.A5).
		Xor(isa.S4, isa.S4, isa.S3).
		Add(isa.S5, isa.S5, isa.S4).
		Xor(isa.S6, isa.S6, isa.S5).
		Add(isa.S7, isa.S7, isa.S6).
		Xor(isa.S8, isa.S8, isa.S7).
		Add(isa.S9, isa.S9, isa.S8).
		Xor(isa.S10, isa.S10, isa.S9).
		Add(isa.S11, isa.S11, isa.S10).
		Xor(isa.A6, isa.A6, isa.S11).
		Add(isa.A7, isa.A7, isa.A6).
		Xor(isa.T6, isa.T6, isa.A7).
		Sw(isa.A3, isa.S1, 8)
	b.Label("next").
		Addi(isa.A1, isa.A1, stride).
		Slti(isa.T5, isa.A1, n*stride).
		Bnez(isa.T5, "noreset")
	b.Label("reset").
		Li(isa.A1, 0)
	b.Label("noreset").
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "sym")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, buf, n, stride, &r)
	return p
}

// astar reproduces Listing 1: two consecutive independent loops — the
// centre-reset loop over the region array and the grid scan whose body is
// guarded by `if (regionp)`. A compiler cannot statically pick the best
// order (§3), but NOREBA commits whichever loop's instructions resolve
// first. The outer phase loop repeats the pair.
func astar(scale int) *program.Program {
	b := program.NewBuilder("astar")
	r := lcg(11)
	// Listing 1's two independent loops. Cells with a region pointer
	// update that region's centre (stores through regionp — the dependent
	// region); every cell also accumulates a path heuristic from a large
	// cost table at a hash-scattered address — branch-independent loads
	// that miss the upper caches, which NOREBA retires early.
	const regions, grid = 4096, 2048
	const regBase, gridBase = 1 << 22, 1<<22 + 1<<20
	const costBase, costN = 1 << 23, 1024
	b.Label("entry").
		Li(isa.S0, regBase).
		Li(isa.S1, gridBase).
		Li(isa.S2, costBase).
		Li(isa.A0, int64(scale))
	// Loop 1: reset a window of region centres.
	b.Label("phase").
		Li(isa.A1, 0)
	b.Label("reset").
		Add(isa.T0, isa.S0, isa.A1).
		Sw(isa.Zero, isa.T0, 0).
		Sw(isa.Zero, isa.T0, 8).
		Addi(isa.A5, isa.A5, 1). // element count bookkeeping
		Xor(isa.S3, isa.S3, isa.A1).
		Add(isa.S4, isa.S4, isa.A5).
		Addi(isa.A1, isa.A1, 64).
		Slti(isa.T1, isa.A1, 64*64).
		Bnez(isa.T1, "reset")
	// Loop 2: grid scan (independent of loop 1).
	b.Label("scaninit").
		Li(isa.A2, 0)
	b.Label("scan").
		Add(isa.T2, isa.S1, isa.A2).
		Lw(isa.T3, isa.T2, 0). // regionp
		Beqz(isa.T3, "skipcell")
	b.Label("cell").
		Sw(isa.A2, isa.T3, 0). // centerp.x += x (write-combined)
		Sw(isa.A4, isa.T3, 8). // centerp.y += y
		Addi(isa.A4, isa.A4, 1).
		Xor(isa.A3, isa.A3, isa.A2)
	b.Label("skipcell").
		// Path heuristic: hash-scattered cost-table load, independent of
		// the regionp branch.
		Slli(isa.T5, isa.A2, 7).
		Xor(isa.T5, isa.T5, isa.A2).
		Andi(isa.T5, isa.T5, (costN-1)*8).
		Slli(isa.T5, isa.T5, 10).
		Add(isa.T5, isa.S2, isa.T5).
		Lw(isa.T6, isa.T5, 0).
		Add(isa.S8, isa.S8, isa.T6).
		Addi(isa.S5, isa.S5, 1). // coordinate bookkeeping
		Add(isa.S6, isa.S6, isa.S5).
		Xor(isa.S7, isa.S7, isa.S6).
		Addi(isa.A2, isa.A2, 8).
		Slti(isa.T4, isa.A2, grid*8).
		Bnez(isa.T4, "scan")
	b.Label("phaseend").
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "phase")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < grid; i++ {
		// ~half the cells have a region pointer.
		v := int64(0)
		if r.intn(2) == 0 {
			v = int64(regBase + r.intn(regions)*64)
		}
		p.Data[gridBase+int64(i)*8] = v
	}
	for i := 0; i < costN; i++ {
		p.Data[costBase+int64(i)*8192] = int64(r.intn(100))
	}
	return p
}

// gcc mimics 403.gcc's RTL pattern matching: a token stream driving a chain
// of compare-and-branch tests (moderately predictable), with mid-sized
// dependent regions and steady stores.
func gcc(scale int) *program.Program {
	b := program.NewBuilder("gcc")
	r := lcg(13)
	const buf, n = 1 << 22, 1024
	b.Label("entry").
		Li(isa.S0, buf).
		Li(isa.S1, buf+n*8+64).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("tok").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Andi(isa.T2, isa.T1, 7).
		Slti(isa.T3, isa.T2, 3).
		Bnez(isa.T3, "setexpr")
	b.Label("tryjump").
		Slti(isa.T3, isa.T2, 6).
		Bnez(isa.T3, "jumpinsn")
	b.Label("callinsn").
		Addi(isa.A2, isa.A2, 3).
		Xor(isa.A3, isa.A3, isa.T1).
		J("tokend")
	b.Label("jumpinsn").
		Addi(isa.A2, isa.A2, 2).
		Add(isa.A4, isa.A4, isa.T1).
		J("tokend")
	b.Label("setexpr").
		Addi(isa.A2, isa.A2, 1).
		Add(isa.A5, isa.A5, isa.T1).
		Sw(isa.A5, isa.S1, 0)
	b.Label("tokend")
	independentTail(b, 8)
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, n*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "tok")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, buf, n, 8, &r)
	return p
}

// gobmk mimics 445.gobmk's board evaluation: random-ish board loads with
// branchy liberty counting; branches are data dependent with medium-sized
// dependent regions.
func gobmk(scale int) *program.Program {
	b := program.NewBuilder("gobmk")
	r := lcg(17)
	const board, n = 1 << 22, 512
	b.Label("entry").
		Li(isa.S0, board).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("pt").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Andi(isa.T2, isa.T1, 3).
		Beqz(isa.T2, "empty")
	b.Label("stone").
		Lw(isa.T3, isa.T0, 8). // neighbour
		Add(isa.A2, isa.A2, isa.T3).
		Andi(isa.T4, isa.T3, 1).
		Beqz(isa.T4, "liberty")
	b.Label("captured").
		Addi(isa.A3, isa.A3, 1)
	b.Label("liberty").
		Xor(isa.A4, isa.A4, isa.T3)
	b.Label("empty")
	independentTail(b, 10)
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, n*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "pt")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, board, n, 8, &r)
	return p
}

// hmmer mimics 456.hmmer's Viterbi inner loop: compute-bound max/add
// recurrences over small tables with highly predictable loop branches —
// little commit stalling, so every policy performs alike.
func hmmer(scale int) *program.Program {
	b := program.NewBuilder("hmmer")
	r := lcg(19)
	const tbl, n = 1 << 22, 256
	b.Label("entry").
		Li(isa.S0, tbl).
		Li(isa.A0, int64(scale))
	b.Label("row").
		Li(isa.A1, 0)
	b.Label("cell").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Add(isa.T2, isa.A2, isa.T1).
		Slt(isa.T3, isa.A3, isa.T2).
		Bnez(isa.T3, "newmax")
	b.Label("oldmax").
		Addi(isa.A4, isa.A4, 1).
		J("cellend")
	b.Label("newmax").
		Mv(isa.A3, isa.T2)
	b.Label("cellend").
		Add(isa.A2, isa.A2, isa.T1).
		// Insert/delete-state recurrences and score bookkeeping (the rest
		// of the Viterbi cell; independent of the max branch).
		Slli(isa.T6, isa.T1, 1).
		Add(isa.S3, isa.S3, isa.T6).
		Xor(isa.S4, isa.S4, isa.T1).
		Srli(isa.S5, isa.A2, 3).
		Add(isa.S6, isa.S6, isa.S5).
		Xor(isa.S7, isa.S7, isa.T6).
		Add(isa.S8, isa.S8, isa.T1).
		Xor(isa.S9, isa.S9, isa.S8).
		Add(isa.S10, isa.S10, isa.S5).
		Xor(isa.S11, isa.S11, isa.T1).
		Add(isa.A6, isa.A6, isa.T6).
		Xor(isa.A7, isa.A7, isa.S10).
		Addi(isa.A1, isa.A1, 8).
		Slti(isa.T5, isa.A1, n*8).
		Bnez(isa.T5, "cell")
	b.Label("rowend").
		Srli(isa.A2, isa.A2, 1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "row")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, tbl, n, 8, &r)
	return p
}

// h264ref mimics 464.h264ref's motion-compensation clipping: strided pixel
// loads, two-sided clamp branches with tiny dependent regions, and stores
// of the clipped values.
func h264ref(scale int) *program.Program {
	b := program.NewBuilder("h264ref")
	r := lcg(23)
	const src, dst, n = 1 << 22, 1<<22 + 1<<20, 1024
	b.Label("entry").
		Li(isa.S0, src).
		Li(isa.S1, dst).
		Li(isa.T6, 255).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("px").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Addi(isa.T1, isa.T1, -128). // bias
		Bge(isa.T1, isa.Zero, "notneg")
	b.Label("clamplo").
		Li(isa.T1, 0)
	b.Label("notneg").
		Blt(isa.T1, isa.T6, "nothi")
	b.Label("clamphi").
		Mv(isa.T1, isa.T6)
	b.Label("nothi").
		Add(isa.T2, isa.S1, isa.A1).
		Sw(isa.T1, isa.T2, 0)
	independentTail(b, 14)
	b.Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, n*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "px")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < n; i++ {
		p.Data[src+int64(i)*8] = int64(r.intn(512))
	}
	return p
}

// libquantum mimics 462.libquantum's quantum-register sweeps: a streaming
// pass over a large array with a strongly biased bit-test branch —
// prefetch-friendly and rich in independent instructions beyond each
// reconvergence point (one of Figure 8's >20% OoO-commit applications).
func libquantum(scale int) *program.Program {
	b := program.NewBuilder("libquantum")
	r := lcg(29)
	const reg, n, stride = 1 << 22, 4096, 64
	b.Label("entry").
		Li(isa.S0, reg).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("gate").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0).
		Andi(isa.T2, isa.T1, 15).
		Beqz(isa.T2, "flip") // biased: taken 1/16
	b.Label("noflip")
	independentTail(b, 12)
	b.J("gateend")
	b.Label("flip").
		Xor(isa.T3, isa.T1, isa.A2).
		Sw(isa.T3, isa.T0, 0).
		Addi(isa.A3, isa.A3, 1)
	b.Label("gateend").
		Addi(isa.A1, isa.A1, stride).
		Andi(isa.A1, isa.A1, n*stride-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "gate")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, reg, n, stride, &r)
	return p
}

// lbm mimics 470.lbm's lattice-Boltzmann stencil: streaming FP loads,
// multiply-accumulate, FP stores, and only predictable loop control.
func lbm(scale int) *program.Program {
	b := program.NewBuilder("lbm")
	const cells, stride = 2048, 64
	const grid = 1 << 22
	b.Label("entry").
		Li(isa.S0, grid).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("cell").
		Add(isa.T0, isa.S0, isa.A1).
		Flw(isa.F0, isa.T0, 0).
		Flw(isa.F1, isa.T0, 8).
		Flw(isa.F2, isa.T0, 16).
		Fadd(isa.F3, isa.F0, isa.F1).
		Fmul(isa.F4, isa.F3, isa.F2).
		Fadd(isa.F5, isa.F5, isa.F4).
		Fsw(isa.F4, isa.T0, 24).
		Addi(isa.A1, isa.A1, stride).
		Andi(isa.A1, isa.A1, cells*stride-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "cell")
	b.Label("done").Halt()
	p := b.MustBuild()
	r := lcg(31)
	for i := 0; i < cells; i++ {
		a := int64(grid) + int64(i)*stride
		p.FData[a] = float64(r.intn(1000)) / 37.0
		p.FData[a+8] = float64(r.intn(1000)) / 41.0
		p.FData[a+16] = float64(r.intn(1000)) / 43.0
	}
	return p
}

// milc mimics 433.milc's SU(3) matrix arithmetic: FP multiply-add chains
// over small matrices with predictable control.
func milc(scale int) *program.Program {
	b := program.NewBuilder("milc")
	const mat = 1 << 22
	b.Label("entry").
		Li(isa.S0, mat).
		Li(isa.A0, int64(scale))
	b.Label("mul").
		Li(isa.A1, 0)
	b.Label("elem").
		Add(isa.T0, isa.S0, isa.A1).
		Flw(isa.F0, isa.T0, 0).
		Flw(isa.F1, isa.T0, 72).
		Fmul(isa.F2, isa.F0, isa.F1).
		Fadd(isa.F3, isa.F3, isa.F2).
		Flw(isa.F4, isa.T0, 144).
		Fmul(isa.F5, isa.F4, isa.F0).
		Fadd(isa.F6, isa.F6, isa.F5).
		Addi(isa.A1, isa.A1, 8).
		Slti(isa.T1, isa.A1, 72).
		Bnez(isa.T1, "elem")
	b.Label("mulend").
		Fadd(isa.F7, isa.F7, isa.F3).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "mul")
	b.Label("done").Halt()
	p := b.MustBuild()
	r := lcg(37)
	for i := 0; i < 27; i++ {
		p.FData[int64(mat)+int64(i)*8] = float64(r.intn(100)) / 7.0
	}
	return p
}

// omnetpp mimics 471.omnetpp's discrete-event simulation: future-event-set
// pointer chases with unpredictable priority branches and moderate
// dependent regions.
func omnetpp(scale int) *program.Program {
	b := program.NewBuilder("omnetpp")
	r := lcg(41)
	// The event queue is a pointer chase over a compact heap (L2-resident),
	// but each delivered event touches its module's state at a scattered
	// address (L3/memory) — serial structure walk plus recoverable
	// memory-level parallelism on the payload side.
	const heap, nodes, stride = 1 << 22, 256, 256
	const mods, modN = 1 << 23, 512
	b.Label("entry").
		Li(isa.S0, heap).
		Mv(isa.S2, isa.S0).
		Li(isa.S1, mods).
		Li(isa.A0, int64(scale))
	b.Label("event").
		Lw(isa.T0, isa.S2, 8).  // priority tag (chase node)
		Lw(isa.T5, isa.S2, 16). // module offset
		Add(isa.T6, isa.S1, isa.T5).
		Lw(isa.T3, isa.T6, 0). // module state: long-latency, addr ready early
		Andi(isa.T1, isa.T0, 1).
		Beqz(isa.T1, "deliver")
	b.Label("requeue").
		Addi(isa.A2, isa.A2, 1).
		Xor(isa.A3, isa.A3, isa.T0).
		Add(isa.A4, isa.A4, isa.T0)
	b.Label("deliver")
	independentTail(b, 14)
	b.Add(isa.A5, isa.A5, isa.T3).
		Lw(isa.S2, isa.S2, 0).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "event")
	b.Label("done").Halt()
	p := b.MustBuild()
	chainData(p, heap, nodes, stride, &r)
	for i := 0; i < nodes; i++ {
		p.Data[heap+int64(i)*stride+16] = int64(r.intn(modN)) * 8192
	}
	for i := 0; i < modN; i++ {
		p.Data[mods+int64(i)*8192] = int64(r.next() & 0xffff)
	}
	return p
}

// sjeng mimics 458.sjeng's board scoring: hashed table probes with branchy
// evaluation and exclusive-or incremental hashing.
func sjeng(scale int) *program.Program {
	b := program.NewBuilder("sjeng")
	r := lcg(43)
	const tbl, n = 1 << 22, 1024
	b.Label("entry").
		Li(isa.S0, tbl).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 12345)
	b.Label("probe").
		Slli(isa.T0, isa.A1, 3).
		Andi(isa.T0, isa.T0, n*8-1).
		Add(isa.T1, isa.S0, isa.T0).
		Lw(isa.T2, isa.T1, 0).
		Xor(isa.A1, isa.A1, isa.T2).
		Andi(isa.T3, isa.T2, 1).
		Beqz(isa.T3, "miss")
	b.Label("hit").
		Addi(isa.A2, isa.A2, 1).
		Add(isa.A3, isa.A3, isa.T2)
	b.Label("miss")
	independentTail(b, 8)
	b.Srli(isa.A1, isa.A1, 1).
		Addi(isa.A1, isa.A1, 7).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "probe")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, tbl, n, 8, &r)
	return p
}

// perlbench mimics 400.perlbench's hash and opcode dispatch: bucket-walk
// loads with a three-way branch chain and moderate dependent work.
func perlbench(scale int) *program.Program {
	b := program.NewBuilder("perlbench")
	r := lcg(47)
	const hash, n = 1 << 22, 512
	b.Label("entry").
		Li(isa.S0, hash).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 99)
	b.Label("op").
		Slli(isa.T0, isa.A1, 3).
		Andi(isa.T0, isa.T0, n*8-1).
		Add(isa.T1, isa.S0, isa.T0).
		Lw(isa.T2, isa.T1, 0).
		Andi(isa.T3, isa.T2, 3).
		Beqz(isa.T3, "opnull")
	b.Label("try2").
		Slti(isa.T4, isa.T3, 2).
		Bnez(isa.T4, "opconst")
	b.Label("opadd").
		Add(isa.A2, isa.A2, isa.T2).
		Xor(isa.A1, isa.A1, isa.T2).
		J("opend")
	b.Label("opconst").
		Addi(isa.A3, isa.A3, 1).
		Add(isa.A1, isa.A1, isa.A3).
		J("opend")
	b.Label("opnull").
		Addi(isa.A4, isa.A4, 1)
	b.Label("opend")
	independentTail(b, 6)
	b.Addi(isa.A1, isa.A1, 17).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "op")
	b.Label("done").Halt()
	p := b.MustBuild()
	arrayData(p, hash, n, 8, &r)
	return p
}

// soplex mimics 450.soplex's sparse pricing loop: strided FP loads with a
// sign-test branch and a small dependent update.
func soplex(scale int) *program.Program {
	b := program.NewBuilder("soplex")
	r := lcg(53)
	const vec, n, stride = 1 << 22, 1024, 64
	b.Label("entry").
		Li(isa.S0, vec).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("price").
		Add(isa.T0, isa.S0, isa.A1).
		Flw(isa.F0, isa.T0, 0).
		Flt(isa.T1, isa.F0, isa.F5). // F5 = 0
		Beqz(isa.T1, "nonneg")
	b.Label("candidate").
		Fadd(isa.F1, isa.F1, isa.F0).
		Addi(isa.A2, isa.A2, 1)
	b.Label("nonneg")
	independentTail(b, 9)
	b.Addi(isa.A1, isa.A1, stride).
		Andi(isa.A1, isa.A1, n*stride-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "price")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < n; i++ {
		p.FData[vec+int64(i)*stride] = float64(r.intn(200)-100) / 9.0
	}
	return p
}

// sphinx3 mimics 482.sphinx3's Gaussian scoring: short FP dot products with
// a threshold branch per senone.
func sphinx3(scale int) *program.Program {
	b := program.NewBuilder("sphinx3")
	r := lcg(59)
	const feat = 1 << 22
	b.Label("entry").
		Li(isa.S0, feat).
		Li(isa.A0, int64(scale))
	b.Label("senone").
		Li(isa.A1, 0).
		Fsub(isa.F2, isa.F2, isa.F2) // acc = 0
	b.Label("dot").
		Add(isa.T0, isa.S0, isa.A1).
		Flw(isa.F0, isa.T0, 0).
		Flw(isa.F1, isa.T0, 256).
		Fmul(isa.F3, isa.F0, isa.F1).
		Fadd(isa.F2, isa.F2, isa.F3).
		Addi(isa.A1, isa.A1, 8).
		Slti(isa.T1, isa.A1, 8*8).
		Bnez(isa.T1, "dot")
	b.Label("score").
		Flt(isa.T2, isa.F4, isa.F2).
		Beqz(isa.T2, "prune")
	b.Label("keep").
		Addi(isa.A2, isa.A2, 1).
		Fadd(isa.F4, isa.F4, isa.F2)
	b.Label("prune").
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "senone")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < 64; i++ {
		p.FData[feat+int64(i)*8] = float64(r.intn(100)) / 13.0
		p.FData[feat+256+int64(i)*8] = float64(r.intn(100)) / 17.0
	}
	return p
}

// xalancbmk mimics 483.xalancbmk's DOM traversal: a pointer chase over tree
// nodes with a node-type dispatch branch and medium dependent regions.
func xalancbmk(scale int) *program.Program {
	b := program.NewBuilder("xalancbmk")
	r := lcg(61)
	// DOM nodes chase through a compact tree; element nodes consult a
	// scattered attribute table (the misses NOREBA can commit past).
	const tree, nodes, stride = 1 << 22, 384, 256
	const attrs, attrN = 1 << 23, 384
	b.Label("entry").
		Li(isa.S0, tree).
		Mv(isa.S2, isa.S0).
		Li(isa.S1, attrs).
		Li(isa.A0, int64(scale))
	b.Label("node").
		Lw(isa.T0, isa.S2, 8).  // node type tag
		Lw(isa.T5, isa.S2, 16). // attribute offset
		Add(isa.T6, isa.S1, isa.T5).
		Lw(isa.T3, isa.T6, 0). // attribute record: long latency
		Andi(isa.T1, isa.T0, 3).
		Beqz(isa.T1, "textnode")
	b.Label("element").
		Addi(isa.A2, isa.A2, 1).
		Xor(isa.A3, isa.A3, isa.T0).
		Srli(isa.T2, isa.T0, 2).
		Add(isa.A4, isa.A4, isa.T2)
	b.Label("textnode")
	independentTail(b, 11)
	b.Add(isa.A5, isa.A5, isa.T3).
		Lw(isa.S2, isa.S2, 0).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "node")
	b.Label("done").Halt()
	p := b.MustBuild()
	chainData(p, tree, nodes, stride, &r)
	for i := 0; i < nodes; i++ {
		p.Data[tree+int64(i)*stride+16] = int64(r.intn(attrN)) * 8192
	}
	for i := 0; i < attrN; i++ {
		p.Data[attrs+int64(i)*8192] = int64(r.next() & 0xffff)
	}
	return p
}

func init() {
	register(Workload{Name: "namd", Suite: SPEC, DefaultScale: 400, Build: namd})
	register(Workload{Name: "povray", Suite: SPEC, DefaultScale: 600, Build: povray})
	register(Workload{Name: "dealII", Suite: SPEC, DefaultScale: 400, Build: dealII})
}

// namd mimics 444.namd's non-bonded force inner loop: FP distance
// computation, a cutoff test whose dependent region is the force
// accumulation, and streaming pair loads.
func namd(scale int) *program.Program {
	b := program.NewBuilder("namd")
	r := lcg(101)
	const pairs, stride = 1024, 64
	const base = 1 << 22
	b.Label("entry").
		Li(isa.S0, base).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("pair").
		Add(isa.T0, isa.S0, isa.A1).
		Flw(isa.F0, isa.T0, 0). // dx
		Flw(isa.F1, isa.T0, 8). // dy
		Fmul(isa.F2, isa.F0, isa.F0).
		Fmul(isa.F3, isa.F1, isa.F1).
		Fadd(isa.F4, isa.F2, isa.F3). // r^2
		Flt(isa.T1, isa.F4, isa.F10). // r^2 < cutoff?
		Beqz(isa.T1, "skippair")
	b.Label("force"). // dependent region: force accumulation
				Fdiv(isa.F5, isa.F11, isa.F4).
				Fmul(isa.F6, isa.F5, isa.F0).
				Fadd(isa.F7, isa.F7, isa.F6).
				Fmul(isa.F8, isa.F5, isa.F1).
				Fadd(isa.F9, isa.F9, isa.F8).
				Addi(isa.A2, isa.A2, 1)
	b.Label("skippair")
	independentTail(b, 8) // cell-list bookkeeping
	b.Addi(isa.A1, isa.A1, stride).
		Andi(isa.A1, isa.A1, pairs*stride-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "pair")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < pairs; i++ {
		a := int64(base) + int64(i)*stride
		p.FData[a] = float64(r.intn(200)-100) / 11.0
		p.FData[a+8] = float64(r.intn(200)-100) / 13.0
	}
	// The cutoff and force coefficient live in F10/F11; they are loaded at
	// program start from two words just below the pair array.
	p.FData[base-16] = 40.0
	p.FData[base-8] = 2.5
	// Loads for the constants are prepended to the entry block.
	entry := p.Blocks[0]
	entry.Insts = append([]isa.Inst{
		{Op: isa.OpAddi, Rd: isa.S1, Rs1: isa.Zero, Imm: base - 16},
		{Op: isa.OpFlw, Rd: isa.F10, Rs1: isa.S1, Imm: 0},
		{Op: isa.OpFlw, Rd: isa.F11, Rs1: isa.S1, Imm: 8},
	}, entry.Insts...)
	return p
}

// povray mimics 453.povray's ray-object intersection sweep: FP discriminant
// tests with a branchy hit path and mixed integer bookkeeping.
func povray(scale int) *program.Program {
	b := program.NewBuilder("povray")
	r := lcg(103)
	const objs, stride = 512, 64
	const base = 1 << 22
	b.Label("entry").
		Li(isa.S0, base).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("obj").
		Add(isa.T0, isa.S0, isa.A1).
		Flw(isa.F0, isa.T0, 0). // b coefficient
		Flw(isa.F1, isa.T0, 8). // c coefficient
		Fmul(isa.F2, isa.F0, isa.F0).
		Fsub(isa.F3, isa.F2, isa.F1). // discriminant
		Flt(isa.T1, isa.F3, isa.F10). // < 0 → miss (F10 = 0)
		Bnez(isa.T1, "miss")
	b.Label("hit").
		Fsqrt(isa.F4, isa.F3).
		Fsub(isa.F5, isa.F0, isa.F4).
		Fadd(isa.F6, isa.F6, isa.F5). // nearest-t accumulation
		Addi(isa.A2, isa.A2, 1)
	b.Label("miss")
	independentTail(b, 10) // bounding-hierarchy walk bookkeeping
	b.Addi(isa.A1, isa.A1, stride).
		Andi(isa.A1, isa.A1, objs*stride-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "obj")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < objs; i++ {
		a := int64(base) + int64(i)*stride
		p.FData[a] = float64(r.intn(200)-100) / 7.0
		p.FData[a+8] = float64(r.intn(400)-200) / 5.0
	}
	return p
}

// dealII mimics 447.dealII's sparse-matrix assembly: indirect column-index
// loads (gather), FP multiply-accumulate and a fill-in branch.
func dealII(scale int) *program.Program {
	b := program.NewBuilder("dealII")
	r := lcg(107)
	const nnz, vals = 1024, 512
	const idxBase, valBase = 1 << 22, 1 << 23
	b.Label("entry").
		Li(isa.S0, idxBase).
		Li(isa.S1, valBase).
		Li(isa.A0, int64(scale)).
		Li(isa.A1, 0)
	b.Label("nz").
		Add(isa.T0, isa.S0, isa.A1).
		Lw(isa.T1, isa.T0, 0). // column index
		Slli(isa.T2, isa.T1, 13).
		Add(isa.T3, isa.S1, isa.T2).
		Flw(isa.F0, isa.T3, 0). // gathered value: scattered, long latency
		Fadd(isa.F1, isa.F1, isa.F0).
		Andi(isa.T4, isa.T1, 7).
		Beqz(isa.T4, "fillin")
	b.Label("nofill")
	independentTail(b, 9)
	b.J("next")
	b.Label("fillin").
		Fmul(isa.F2, isa.F0, isa.F0).
		Fadd(isa.F3, isa.F3, isa.F2).
		Addi(isa.A2, isa.A2, 1)
	b.Label("next").
		Addi(isa.A1, isa.A1, 8).
		Andi(isa.A1, isa.A1, nnz*8-1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "nz")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < nnz; i++ {
		p.Data[idxBase+int64(i)*8] = int64(r.intn(vals))
	}
	for i := 0; i < vals; i++ {
		p.FData[valBase+int64(i)*8192] = float64(r.intn(1000)) / 19.0
	}
	return p
}
