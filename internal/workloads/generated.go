package workloads

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/workgen"
)

// pinnedSeeds are the generator seeds registered as first-class workloads:
// enough points to cover contrasting corners of the character space without
// growing the correctness suites unboundedly (the differential fuzz harness
// covers the rest of the space). Each pinned seed's cycle counts live in
// testdata/golden_stats.json, so generator drift — any change to workgen's
// emission for an existing seed — surfaces as a golden-stats diff.
//
// The figure suite is untouched: generated workloads carry the Generated
// suite tag, which Curated (the experiment runner's default) excludes.
var pinnedSeeds = []uint64{3, 7, 12, 21}

// genDynTarget sizes each pinned workload's default scale: roughly the same
// few-tens-of-thousands dynamic instruction budget the curated kernels use.
const genDynTarget = 30000

func init() {
	for _, seed := range pinnedSeeds {
		w, err := generatedWorkload(workgen.FromSeed(seed))
		if err != nil {
			panic(fmt.Sprintf("workloads: pinned generator seed %d: %v", seed, err))
		}
		Register(w)
	}
}

// generatedWorkload builds the Workload entry for one generator parameter
// set: a probe generation sizes DefaultScale to the usual few-tens-of-
// thousands dynamic instruction budget, and Build re-generates at the
// requested scale.
func generatedWorkload(p workgen.Params) (Workload, error) {
	_, ch, err := workgen.Generate(p)
	if err != nil {
		return Workload{}, err
	}
	scale := genDynTarget / ch.DynPerOuter
	if scale < 2 {
		scale = 2
	}
	params := p // capture one copy per registration
	return Workload{
		Name:         params.Name(),
		Suite:        Generated,
		DefaultScale: scale,
		Build: func(scale int) *program.Program {
			q := params
			q.Iterations = scale
			prog, _, err := workgen.Generate(q)
			if err != nil {
				// Generate is deterministic over validated Params; a
				// failure here is a generator bug, not bad input.
				panic(fmt.Sprintf("workloads: %s: %v", params.Name(), err))
			}
			return prog
		},
	}, nil
}

// EnsureGenerated resolves a workload name that may denote a generated
// program: an already-registered name (generated or curated) is returned
// as-is, and a canonical "gen/…" name that is not yet registered is parsed
// (workgen.ParseName), generated once to size its default scale, and
// registered on the fly. The cluster's sweep endpoint uses it so a design-
// space grid can name arbitrary generator points, not just the pinned
// seeds. Concurrent calls for the same new name race safely: exactly one
// registration wins and all callers get the same entry.
func EnsureGenerated(name string) (Workload, error) {
	if w, err := ByName(name); err == nil {
		return w, nil
	}
	p, err := workgen.ParseName(name)
	if err != nil {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q (and not a generated spec: %v)", name, err)
	}
	w, err := generatedWorkload(p)
	if err != nil {
		return Workload{}, fmt.Errorf("workloads: generate %q: %w", name, err)
	}
	return registerIfAbsent(w), nil
}
