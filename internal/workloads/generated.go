package workloads

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/workgen"
)

// pinnedSeeds are the generator seeds registered as first-class workloads:
// enough points to cover contrasting corners of the character space without
// growing the correctness suites unboundedly (the differential fuzz harness
// covers the rest of the space). Each pinned seed's cycle counts live in
// testdata/golden_stats.json, so generator drift — any change to workgen's
// emission for an existing seed — surfaces as a golden-stats diff.
//
// The figure suite is untouched: generated workloads carry the Generated
// suite tag, which Curated (the experiment runner's default) excludes.
var pinnedSeeds = []uint64{3, 7, 12, 21}

// genDynTarget sizes each pinned workload's default scale: roughly the same
// few-tens-of-thousands dynamic instruction budget the curated kernels use.
const genDynTarget = 30000

func init() {
	for _, seed := range pinnedSeeds {
		p := workgen.FromSeed(seed)
		_, ch, err := workgen.Generate(p)
		if err != nil {
			panic(fmt.Sprintf("workloads: pinned generator seed %d: %v", seed, err))
		}
		scale := genDynTarget / ch.DynPerOuter
		if scale < 2 {
			scale = 2
		}
		params := p // capture one copy per registration
		Register(Workload{
			Name:         params.Name(),
			Suite:        Generated,
			DefaultScale: scale,
			Build: func(scale int) *program.Program {
				q := params
				q.Iterations = scale
				prog, _, err := workgen.Generate(q)
				if err != nil {
					// Generate is deterministic over validated Params; a
					// failure here is a generator bug, not bad input.
					panic(fmt.Sprintf("workloads: %s: %v", params.Name(), err))
				}
				return prog
			},
		})
	}
}
