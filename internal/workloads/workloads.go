// Package workloads provides the synthetic benchmark kernels that stand in
// for the paper's SPEC CPU2006 C/C++ subset and MiBench applications (§5).
// The original suites cannot ship with this repository, so each kernel is an
// original program written in the repo's IR and constructed to exhibit its
// namesake's published microarchitectural character — the property the
// paper's figures actually depend on:
//
//   - mcf-like:      long-latency loads feeding branches with FEW dependent
//     instructions and much independent work (Figure 7's blue
//     cloud; the paper's biggest winner at 2.17×).
//   - bzip2-like:    branches with MANY dependent instructions (red cloud;
//     nearly no win).
//   - astar:         the two independent for-loops of Listing 1.
//   - CRC32-like:    table-driven streaming with large independent regions
//     (>20% of instructions commit out of order, Figure 8).
//   - dijkstra-like: tight dependent relaxation loop (few OoO commits).
//
// …and so on for the rest of the suite. Every kernel is deterministic,
// terminates with halt, and documents the behaviour it reproduces.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"github.com/noreba-sim/noreba/internal/program"
)

// Suite labels a kernel's origin.
type Suite string

// Suites.
const (
	SPEC    Suite = "SPEC-like"
	MiBench Suite = "MiBench-like"
	// Generated labels seed-parameterized programs from internal/workgen:
	// correctness fodder, not figure material, so Curated excludes them.
	Generated Suite = "generated"
)

// Workload is one registered kernel.
type Workload struct {
	Name  string
	Suite Suite
	// Build constructs the program with a size parameter scaling dynamic
	// instruction count roughly linearly.
	Build func(scale int) *program.Program
	// DefaultScale targets a few tens of thousands of dynamic instructions.
	DefaultScale int
}

// registry holds every known workload. It is assembled at init time but may
// also grow while the process serves traffic (EnsureGenerated registers
// generated workloads named by sweep requests), so access is mutex-guarded.
var (
	regMu    sync.RWMutex
	registry []Workload
)

func register(w Workload) {
	registry = append(registry, w)
}

// Register adds a workload to the global registry. Exported so packages
// layered above the kernels (internal/workloads/generated.go keeps the
// generator dependency out of this file; tests register fixtures) can
// contribute entries. Registering a duplicate name panics: the registry is
// assembled at init time, so a collision is a programming error, not input
// (runtime registration goes through EnsureGenerated, which tolerates
// concurrent duplicates instead).
func Register(w Workload) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range registry {
		if have.Name == w.Name {
			panic(fmt.Sprintf("workloads: duplicate registration of %q", w.Name))
		}
	}
	register(w)
}

// registerIfAbsent registers w unless its name is already taken, returning
// the registered entry either way. Unlike Register it is safe to race with
// itself on the same name: exactly one registration wins.
func registerIfAbsent(w Workload) Workload {
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range registry {
		if have.Name == w.Name {
			return have
		}
	}
	register(w)
	return w
}

// All returns every registered workload sorted by name.
func All() []Workload {
	regMu.RLock()
	out := make([]Workload, len(registry))
	copy(out, registry)
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Curated returns the hand-written SPEC-like and MiBench-like kernels only —
// the figure suite. Generated workloads are deliberately excluded: they
// exercise correctness far beyond the curated set but have no published
// character to reproduce, so the experiment runner's default suite (and the
// paper's figures) must not grow when new seeds are pinned.
func Curated() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite != Generated {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns all workload names in sorted order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// lcg is the deterministic pseudo-random sequence used to seed workload
// data (no math/rand to keep everything reproducible byte-for-byte).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }
