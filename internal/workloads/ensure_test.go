package workloads

import (
	"strings"
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/workgen"
)

// TestEnsureGenerated: already-registered names pass through, a fresh
// canonical gen/ name is registered on the fly (once, even under concurrent
// callers), it stays out of the curated figure suite, and garbage names are
// rejected.
func TestEnsureGenerated(t *testing.T) {
	// Curated and pinned names resolve without new registrations.
	before := len(All())
	if w, err := EnsureGenerated("mcf"); err != nil || w.Name != "mcf" {
		t.Fatalf("EnsureGenerated(mcf) = %+v, %v", w, err)
	}
	pinned := workgen.FromSeed(3).Name()
	if w, err := EnsureGenerated(pinned); err != nil || w.Name != pinned {
		t.Fatalf("EnsureGenerated(%s) = %+v, %v", pinned, w, err)
	}
	if got := len(All()); got != before {
		t.Fatalf("registry grew from %d to %d on known names", before, got)
	}

	// A fresh generator point registers exactly once under concurrency.
	fresh := workgen.FromSeed(987654).Name()
	if _, err := ByName(fresh); err == nil {
		t.Fatalf("%s unexpectedly pre-registered", fresh)
	}
	const callers = 8
	ws := make([]Workload, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := EnsureGenerated(fresh)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			ws[i] = w
		}(i)
	}
	wg.Wait()
	for i, w := range ws {
		if w.Name != fresh || w.Suite != Generated || w.DefaultScale < 2 {
			t.Errorf("caller %d got %+v", i, w)
		}
	}
	if w, err := ByName(fresh); err != nil || w.Suite != Generated {
		t.Fatalf("%s not registered after EnsureGenerated: %+v, %v", fresh, w, err)
	}
	for _, w := range Curated() {
		if w.Name == fresh {
			t.Errorf("on-demand generated workload %s leaked into Curated", fresh)
		}
	}

	// The registered Build generates a real program.
	w, _ := ByName(fresh)
	if p := w.Build(2); p == nil {
		t.Error("Build returned nil program")
	}

	for _, bad := range []string{"", "nonsense", "gen/zzz", "gen/s1c080d6m2p30n1"} {
		if _, err := EnsureGenerated(bad); err == nil {
			t.Errorf("EnsureGenerated(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "unknown workload") {
			t.Errorf("EnsureGenerated(%q) error %v lacks context", bad, err)
		}
	}
}
