// Package metrics holds the small numeric and formatting helpers the
// experiment harness uses: geometric means (the paper reports all averages
// as geo-means of per-application runtimes, §6), speedups, and plain-text
// table/series rendering for figure regeneration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs; it returns 0 for an empty or
// non-positive input.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns baselineCycles / cycles — >1 means faster than baseline.
func Speedup(baselineCycles, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(baselineCycles) / float64(cycles)
}

// Table renders labelled rows of float64 series as aligned plain text: one
// row per series name, one column per x label. The experiments use it to
// print the same rows a paper figure plots.
type Table struct {
	Title   string
	Columns []string
	rows    []row
}

type row struct {
	name   string
	values []float64
}

// NewTable creates a table with the given title and column labels.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a named series.
func (t *Table) AddRow(name string, values ...float64) {
	t.rows = append(t.rows, row{name: name, values: values})
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	nameW := len("series")
	for _, r := range t.rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 7 {
			colW[i] = 7
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "series")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, " %*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", nameW+2, r.name)
		for i, v := range r.values {
			w := 7
			if i < len(colW) {
				w = colW[i]
			}
			fmt.Fprintf(&b, " %*.3f", w, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Scatter renders (x, y) points with labels, for Figure-7-style plots.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	points []point
}

type point struct {
	series string
	x, y   float64
}

// NewScatter creates a scatter printer.
func NewScatter(title, xlabel, ylabel string) *Scatter {
	return &Scatter{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a point to the named series.
func (s *Scatter) Add(series string, x, y float64) {
	s.points = append(s.points, point{series, x, y})
}

// String renders the points sorted by series then x.
func (s *Scatter) String() string {
	pts := make([]point, len(s.points))
	copy(pts, s.points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].series != pts[j].series {
			return pts[i].series < pts[j].series
		}
		return pts[i].x < pts[j].x
	})
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n# %s vs %s\n", s.Title, s.YLabel, s.XLabel)
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f\n", p.series, p.x, p.y)
	}
	return b.String()
}
