package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{1, 4}, 2},
		{nil, 0},
		{[]float64{1, 0}, 0},
		{[]float64{1, -2}, 0},
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: geomean lies between min and max for positive inputs.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup with zero cycles = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure X", "mcf", "bzip2", "geomean")
	tab.AddRow("NOREBA", 2.17, 1.01, 1.22)
	tab.AddRow("InO-C", 1, 1, 1)
	s := tab.String()
	for _, want := range []string{"Figure X", "mcf", "bzip2", "geomean", "NOREBA", "2.170", "1.220"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestScatterRendering(t *testing.T) {
	sc := NewScatter("Figure 7", "log dependents", "log stall cycles")
	sc.Add("mcf", 0.5, 5.2)
	sc.Add("bzip2", 2.1, 3.3)
	sc.Add("mcf", 0.2, 4.8)
	s := sc.String()
	if !strings.Contains(s, "Figure 7") || !strings.Contains(s, "bzip2") {
		t.Errorf("scatter output malformed:\n%s", s)
	}
	// Points sorted by series then x: bzip2 first, then mcf 0.2 before 0.5.
	bi := strings.Index(s, "bzip2")
	mi := strings.Index(s, "mcf")
	if bi > mi {
		t.Error("series not sorted")
	}
}
