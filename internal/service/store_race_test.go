package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"testing"
)

func raceKey(writer, i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("w%d-%d", writer, i)))
	return hex.EncodeToString(sum[:])
}

// TestDiskStoreConcurrentEviction hammers one store with concurrent
// writers, readers and a hot key while the byte bound forces continuous
// LRU eviction, then reopens the directory. Invariants under -race: the
// bound holds at every Put, the index never disagrees with the disk, and
// the survivors reload intact.
func TestDiskStoreConcurrentEviction(t *testing.T) {
	dir := t.TempDir()
	st := sampleStats(7)
	entryBytes := func() int64 {
		probe, err := OpenDiskStore(t.TempDir(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := probe.Put(raceKey(9, 9), st); err != nil {
			t.Fatal(err)
		}
		return probe.Bytes()
	}()
	// Room for ~8 entries, so 4 writers x 32 puts evict constantly.
	maxBytes := entryBytes * 8
	s, err := OpenDiskStore(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}

	hot := raceKey(0, 0)
	if err := s.Put(hot, st); err != nil {
		t.Fatal(err)
	}
	const writers, puts = 4, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				if err := s.Put(raceKey(w, i), st); err != nil {
					t.Errorf("writer %d put %d: %v", w, i, err)
					return
				}
				s.Get(raceKey(w, i/2)) // concurrent reads, hits and misses
				if got := s.Bytes(); got > maxBytes {
					t.Errorf("writer %d: store at %d bytes exceeds bound %d", w, got, maxBytes)
					return
				}
			}
		}(w)
	}
	// A reader hammers one key throughout: whether it survives the churn
	// depends on timing, but every hit must deserialise intact while
	// eviction deletes files around it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writers*puts; i++ {
			if got, ok := s.Get(hot); ok && got.Cycles != st.Cycles {
				t.Errorf("hot key read back corrupt: %+v", got)
				return
			}
		}
	}()
	wg.Wait()

	if s.Stats().Evictions == 0 {
		t.Fatal("bound never forced an eviction; test is vacuous")
	}
	if s.Len() < 1 || s.Bytes() > maxBytes {
		t.Fatalf("after churn: %d entries, %d bytes (bound %d)", s.Len(), s.Bytes(), maxBytes)
	}

	// Reopen: the survivors (and nothing else) come back readable.
	re, err := OpenDiskStore(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != s.Len() || re.Bytes() != s.Bytes() {
		t.Fatalf("reopen sees %d entries / %d bytes, writer saw %d / %d", re.Len(), re.Bytes(), s.Len(), s.Bytes())
	}
	reads := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < puts; i++ {
			if got, ok := re.Get(raceKey(w, i)); ok {
				reads++
				if got.Cycles != st.Cycles {
					t.Fatalf("reloaded entry corrupt: %+v", got)
				}
			}
		}
	}
	if reads == 0 {
		t.Fatal("no churned entries survived the reopen")
	}
}

// TestDiskStoreReopenDuringWrites opens a second store over the same
// directory while the first is still writing — the restart-overlap window
// of a replica handing its shard to a successor. The reopen must index a
// consistent snapshot (no temp files, no errors) and both instances must
// keep serving reads of whatever they saw.
func TestDiskStoreReopenDuringWrites(t *testing.T) {
	dir := t.TempDir()
	st := sampleStats(11)
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Put(raceKey(1, i%64), st); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if i == 0 {
				close(started)
			}
		}
	}()
	<-started

	for round := 0; round < 8; round++ {
		re, err := OpenDiskStore(dir, 1<<20)
		if err != nil {
			t.Fatalf("reopen during writes: %v", err)
		}
		hits := 0
		for i := 0; i < 64; i++ {
			if got, ok := re.Get(raceKey(1, i)); ok {
				hits++
				if got.Cycles != st.Cycles {
					t.Fatalf("torn read: %+v", got)
				}
			}
		}
		if round > 0 && hits == 0 {
			t.Fatal("reopened store saw none of the writer's entries")
		}
	}
	close(stop)
	wg.Wait()
}
