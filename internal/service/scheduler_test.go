package service

import (
	"container/heap"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// testRunner returns a reduced-scale runner fast enough for unit tests.
func testRunner() *experiments.Runner {
	r := experiments.NewRunner()
	r.MaxInsts = 1 << 12
	r.ScaleDiv = 8
	return r
}

func testSpec(workload string, policy pipeline.PolicyKind) JobSpec {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = policy
	return JobSpec{Workload: workload, Config: cfg}
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestJobHeapOrdering(t *testing.T) {
	var h jobHeap
	push := func(seq int64, prio int) *Job {
		j := &Job{id: "x", seq: seq, spec: JobSpec{Priority: prio}, eff: prio}
		heap.Push(&h, j)
		return j
	}
	lowLate := push(3, 0)
	highLate := push(4, 5)
	lowEarly := push(1, 0)
	highEarly := push(2, 5)

	want := []*Job{highEarly, highLate, lowEarly, lowLate}
	for i, w := range want {
		got := heap.Pop(&h).(*Job)
		if got != w {
			t.Fatalf("pop %d: got seq %d prio %d, want seq %d prio %d",
				i, got.seq, got.spec.Priority, w.seq, w.spec.Priority)
		}
	}
}

func TestSchedulerRunsJob(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 2})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(testSpec("sha", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st, state, err := s.Result(j.ID())
	if err != nil || state != StateDone {
		t.Fatalf("result: state %s err %v", state, err)
	}
	if st == nil || st.Committed == 0 {
		t.Fatalf("empty result: %+v", st)
	}
	status, err := s.Status(j.ID())
	if err != nil || status.State != StateDone || status.Started == nil || status.Finished == nil {
		t.Errorf("status after completion: %+v (err %v)", status, err)
	}
}

func TestSchedulerRejectsUnknownWorkload(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 1})
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(testSpec("no-such-kernel", pipeline.InOrder)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestSchedulerBackpressure: with one worker pinned on a job and a
// one-deep queue, the third submission must fail fast with ErrQueueFull.
func TestSchedulerBackpressure(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 1, QueueLimit: 1})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(testSpec("mcf", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker is out of the queue (running) so the queue
	// capacity below is exact.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Status(blocker.ID())
		if st.State != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	queued, err := s.Submit(testSpec("bzip2", pipeline.InOrder))
	if err != nil {
		// The blocker may already have finished and the worker grabbed
		// this one too; then the queue is empty and this cannot fail.
		t.Fatalf("second submit: %v", err)
	}
	if _, err := s.Submit(testSpec("astar", pipeline.InOrder)); !errors.Is(err, ErrQueueFull) {
		if err == nil {
			// Legal only if the queued job already started.
			st, _ := s.Status(queued.ID())
			if st.State == StateQueued {
				t.Fatal("queue over capacity accepted a job")
			}
		} else {
			t.Fatalf("want ErrQueueFull, got %v", err)
		}
	}
	waitTerminal(t, blocker)
	waitTerminal(t, queued)
}

// TestSchedulerPriority: with a single worker held by a blocker, a
// higher-priority later submission runs before an earlier low-priority one.
func TestSchedulerPriority(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 1, QueueLimit: 16})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(testSpec("mcf", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.Submit(testSpec("bzip2", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	highSpec := testSpec("sha", pipeline.InOrder)
	highSpec.Priority = 10
	high, err := s.Submit(highSpec)
	if err != nil {
		t.Fatal(err)
	}

	waitTerminal(t, blocker)
	waitTerminal(t, low)
	waitTerminal(t, high)

	ls, _ := s.Status(low.ID())
	hs, _ := s.Status(high.ID())
	if ls.Started == nil || hs.Started == nil {
		t.Fatal("missing start times")
	}
	if hs.Started.After(*ls.Started) {
		t.Errorf("high-priority job started at %v, after low-priority %v", hs.Started, ls.Started)
	}
}

// TestAgedPriority: the pure aging rule — no aging without a step, one
// bonus point per step waited, bounded against overflow.
func TestAgedPriority(t *testing.T) {
	cases := []struct {
		base   int
		waited time.Duration
		step   time.Duration
		want   int
	}{
		{5, time.Hour, 0, 5},              // aging disabled
		{5, -time.Second, time.Second, 5}, // clock skew: no bonus
		{0, 10 * time.Second, time.Second, 10},
		{-20, 5 * time.Second, time.Second, -15}, // sweep rows start negative
		{3, 999 * time.Millisecond, time.Second, 3},
		{0, time.Hour, time.Nanosecond, 1 << 20}, // capped
	}
	for i, c := range cases {
		if got := agedPriority(c.base, c.waited, c.step); got != c.want {
			t.Errorf("case %d: agedPriority(%d, %v, %v) = %d, want %d", i, c.base, c.waited, c.step, got, c.want)
		}
	}
}

// TestAgeLockedReordersQueue: deterministic heap-level check that ageLocked
// lifts a long-waiting low-priority job over a fresher high-priority one.
func TestAgeLockedReordersQueue(t *testing.T) {
	s := &Scheduler{aging: time.Millisecond, jobs: map[string]*Job{}}
	now := time.Now()
	old := &Job{id: "old", seq: 1, spec: JobSpec{Priority: 0}, submitted: now.Add(-100 * time.Millisecond)}
	fresh := &Job{id: "fresh", seq: 2, spec: JobSpec{Priority: 5}, eff: 5, submitted: now}
	heap.Push(&s.queue, old)
	heap.Push(&s.queue, fresh)
	if s.queue[0] != fresh {
		t.Fatal("before aging, the high-priority job should lead")
	}
	s.ageLocked(now)
	if got := heap.Pop(&s.queue).(*Job); got != old {
		t.Fatalf("after aging, pop = %s (eff %d), want old (eff %d)", got.id, got.eff, old.eff)
	}
}

// TestSchedulerPriorityAging: end to end, a low-priority job submitted well
// before a high-priority one starts first once its aging bonus exceeds the
// priority gap.
func TestSchedulerPriorityAging(t *testing.T) {
	r := testRunner()
	r.MaxInsts = 1 << 20 // full scale: the blocker holds the worker long enough
	r.ScaleDiv = 1
	s := NewScheduler(SchedulerConfig{Runner: r, Workers: 1, QueueLimit: 16, AgingStep: time.Millisecond})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(testSpec("mcf", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.Submit(testSpec("bzip2", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	// By the time high is submitted, low has >50 aging steps banked — more
	// than high's 5-point head start, whenever the worker frees.
	time.Sleep(50 * time.Millisecond)
	highSpec := testSpec("sha", pipeline.InOrder)
	highSpec.Priority = 5
	high, err := s.Submit(highSpec)
	if err != nil {
		t.Fatal(err)
	}

	waitTerminal(t, blocker)
	waitTerminal(t, low)
	waitTerminal(t, high)

	ls, _ := s.Status(low.ID())
	hs, _ := s.Status(high.ID())
	if ls.Started == nil || hs.Started == nil {
		t.Fatal("missing start times")
	}
	if ls.Started.After(*hs.Started) {
		t.Errorf("aged low-priority job started at %v, after high-priority %v", ls.Started, hs.Started)
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 1, QueueLimit: 16})
	defer s.Shutdown(context.Background())

	if _, err := s.Submit(testSpec("mcf", pipeline.InOrder)); err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(testSpec("gobmk", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, victim)
	st, _ := s.Status(victim.ID())
	if st.State != StateCancelled {
		t.Errorf("cancelled queued job in state %s", st.State)
	}
	if err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel of unknown job: %v", err)
	}
}

// TestSchedulerJobTimeout: a deadline shorter than the simulation cancels
// the run mid-flight via the pipeline's cooperative check.
func TestSchedulerJobTimeout(t *testing.T) {
	r := testRunner()
	r.MaxInsts = 1 << 20 // full-scale run: long enough that 1ms always expires first
	r.ScaleDiv = 1
	s := NewScheduler(SchedulerConfig{Runner: r, Workers: 1})
	defer s.Shutdown(context.Background())

	spec := testSpec("mcf", pipeline.Noreba)
	spec.Timeout = time.Millisecond
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st, _ := s.Status(j.ID())
	if st.State != StateCancelled {
		t.Errorf("timed-out job in state %s (err %q)", st.State, st.Error)
	}
}

// TestSchedulerShutdownDrains: shutdown rejects new work, cancels what is
// queued, lets running jobs finish, and leaves no worker behind (the -race
// run doubles as the leak/raciness check).
func TestSchedulerShutdownDrains(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 1, QueueLimit: 16})

	running, err := s.Submit(testSpec("mcf", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(testSpec("bzip2", pipeline.InOrder))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(testSpec("sha", pipeline.InOrder)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown: %v", err)
	}

	rs, _ := s.Status(running.ID())
	qs, _ := s.Status(queued.ID())
	if rs.State != StateDone && rs.State != StateCancelled {
		t.Errorf("running job left in state %s", rs.State)
	}
	if qs.State != StateCancelled && qs.State != StateDone {
		t.Errorf("queued job left in state %s", qs.State)
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}
