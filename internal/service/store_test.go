package service

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

func sampleStats(cycles int64) *pipeline.Stats {
	return &pipeline.Stats{
		Name: "mcf", Policy: "NOREBA",
		Cycles: cycles, Committed: 1000, Branches: 120, Mispredicts: 7,
		OoOCommitted: 333, L1DAccesses: 400, L1DMisses: 25,
		BranchStalls: map[int]*pipeline.BranchStall{
			12: {PC: 12, StallCycles: 9, Dependents: 3, Occurrences: 4, Mispredicts: 1},
			99: {PC: 99, StallCycles: 1, Occurrences: 2},
		},
	}
}

// hexKey pads a name into a valid lowercase-hex store key.
func hexKey(seed byte) string {
	return strings.Repeat(string([]byte{'a' + seed%6}), 64)
}

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey(0)
	want := sampleStats(4242)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored result not found")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the stats:\ngot  %+v\nwant %+v", got, want)
	}
	if _, ok := s.Get(hexKey(1)); ok {
		t.Error("unknown key reported as hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey(2)
	want := sampleStats(777)
	if err := s1.Put(key, want); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("result lost across reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("reopened store returned different stats")
	}
}

// TestDiskStoreCrashArtifacts: a temp file left by a crashed writer is
// removed at open and never served; a truncated/corrupt result file is a
// miss that also removes the file so the next Put rewrites it.
func TestDiskStoreCrashArtifacts(t *testing.T) {
	dir := t.TempDir()
	leftover := filepath.Join(dir, hexKey(3)+".tmp-123")
	if err := os.WriteFile(leftover, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Age the artifact past the GC grace window: fresh temp files are a
	// live writer's work in progress and must survive a concurrent open.
	stale := time.Now().Add(-2 * tempFileGrace)
	if err := os.Chtimes(leftover, stale, stale); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, hexKey(5)+".tmp-456")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	corruptKey := hexKey(4)
	if err := os.WriteFile(filepath.Join(dir, corruptKey+resultExt), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Error("abandoned temp file survived open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (a live writer's) deleted at open")
	}
	if _, ok := s.Get(corruptKey); ok {
		t.Fatal("corrupt entry served as a result")
	}
	if _, err := os.Stat(filepath.Join(dir, corruptKey+resultExt)); !os.IsNotExist(err) {
		t.Error("corrupt file not removed after failed read")
	}
	// The slot is reusable.
	if err := s.Put(corruptKey, sampleStats(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(corruptKey); !ok {
		t.Error("rewritten entry not readable")
	}
}

func TestDiskStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	probe, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(hexKey(0), sampleStats(1)); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Bytes()
	os.Remove(probe.path(hexKey(0) + resultExt))

	// Room for two entries, not three.
	s, err := OpenDiskStore(t.TempDir(), 2*entrySize+entrySize/2)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, k2 := hexKey(0), hexKey(1), hexKey(2)
	if err := s.Put(k0, sampleStats(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k1, sampleStats(2)); err != nil {
		t.Fatal(err)
	}
	// Touch k0 so k1 is the eviction victim.
	if _, ok := s.Get(k0); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put(k2, sampleStats(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k1); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := s.Get(k0); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := s.Get(k2); !ok {
		t.Error("just-written entry was evicted")
	}
	if st := s.Stats(); st.Evictions == 0 || st.Bytes > st.MaxBytes {
		t.Errorf("eviction accounting wrong: %+v", st)
	}
}

func TestDiskStoreRejectsHostileKeys(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "..", "../../etc/passwd", "ABCDEF00aa", "short", strings.Repeat("g", 64)} {
		if err := s.Put(key, sampleStats(1)); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) reported a hit", key)
		}
		if err := s.PutBlob(key, []byte("x")); err == nil {
			t.Errorf("PutBlob(%q) accepted an invalid key", key)
		}
		if _, ok := s.GetBlob(key); ok {
			t.Errorf("GetBlob(%q) reported a hit", key)
		}
	}
}

// TestDiskStoreBlobNamespace: blobs round-trip raw bytes, coexist with a
// result under the same content hash, and both survive a reopen.
func TestDiskStoreBlobNamespace(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey(0)
	blob := []byte{'N', 'R', 'P', 'F', 1, 0, 0xFF, 0x00, 0x7F}
	if err := s.PutBlob(key, blob); err != nil {
		t.Fatal(err)
	}
	wantStats := sampleStats(99)
	if err := s.Put(key, wantStats); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBlob(key)
	if !ok {
		t.Fatal("stored blob not found")
	}
	if !reflect.DeepEqual(got, blob) {
		t.Errorf("blob round trip changed the bytes: got %x want %x", got, blob)
	}
	gotStats, ok := s.Get(key)
	if !ok {
		t.Fatal("result under the blob's key not found")
	}
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Error("result under the blob's key changed")
	}
	if s.Len() != 2 {
		t.Errorf("store holds %d entries, want 2 (one result + one blob)", s.Len())
	}
	if _, ok := s.GetBlob(hexKey(1)); ok {
		t.Error("unknown blob key reported as hit")
	}

	// Both namespaces are reindexed at open.
	s2, err := OpenDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.GetBlob(key); !ok || !reflect.DeepEqual(got, blob) {
		t.Errorf("blob lost or changed across reopen: %x ok=%v", got, ok)
	}
	if _, ok := s2.Get(key); !ok {
		t.Error("result lost across reopen")
	}
}

// TestDiskStoreBlobEviction: blobs count toward the shared byte bound and are
// evicted in the same recency order as results.
func TestDiskStoreBlobEviction(t *testing.T) {
	const blobSize = 512
	blob := func(fill byte) []byte {
		b := make([]byte, blobSize)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	// Room for two blobs, not three.
	s, err := OpenDiskStore(t.TempDir(), 2*blobSize+blobSize/2)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1, k2 := hexKey(0), hexKey(1), hexKey(2)
	if err := s.PutBlob(k0, blob(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob(k1, blob(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBlob(k0); !ok { // touch k0 so k1 is the victim
		t.Fatal("k0 missing before eviction")
	}
	if err := s.PutBlob(k2, blob(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBlob(k1); ok {
		t.Error("least-recently-used blob survived eviction")
	}
	if _, ok := s.GetBlob(k0); !ok {
		t.Error("recently used blob was evicted")
	}
	if _, ok := s.GetBlob(k2); !ok {
		t.Error("just-written blob was evicted")
	}
	if st := s.Stats(); st.Evictions == 0 || st.Bytes > st.MaxBytes {
		t.Errorf("blob eviction accounting wrong: %+v", st)
	}
}
