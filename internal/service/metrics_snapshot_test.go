package service

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/trace"
)

// TestMetricsResponseSnapshot pins the /metrics document shape: a fully
// populated MetricsResponse (cluster section included) must marshal to
// exactly this JSON, so renaming or dropping a counter — the things
// dashboards and the cluster smoke grep for — fails loudly here instead of
// silently breaking consumers.
func TestMetricsResponseSnapshot(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Counter("service/jobs-submitted").Add(7)
	reg.Gauge("cluster/peers-healthy").Set(2)

	m := MetricsResponse{
		Scheduler: SchedulerMetrics{QueueDepth: 1, InFlight: 2, Workers: 4, QueueLimit: 256},
		Runner: RunnerMetrics{
			SimulateCalls:  24,
			SimulationsRun: 12,
			EmulationsRun:  2,
			PeakBusRecords: 9000,
			SampledRuns:    1,
			PlansBuilt:     1,
			PlanStoreHits:  2,
			PlanStoreMiss:  1,
			StoreHits:      6,
			StoreMisses:    6,
			StorePutErrors: 0,
			HitRatio:       0.5,
		},
		Store: &StoreStats{Entries: 12, Bytes: 4096, MaxBytes: 1 << 20, Hits: 6, Misses: 6, Puts: 12, Evictions: 0},
		Cluster: &ClusterMetrics{
			Node: "http://127.0.0.1:8080",
			Peers: []PeerStatus{
				{URL: "http://127.0.0.1:8081", Healthy: true},
				{URL: "http://127.0.0.1:8082", Healthy: false},
			},
			ShardHits:    5,
			PeerHits:     3,
			PeerMisses:   2,
			Forwarded:    4,
			PeerErrors:   1,
			SweepsActive: 1,
			SweepsTotal:  9,
		},
		Registry: reg.Snapshot(),
	}

	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const want = `{
  "scheduler": {
    "queueDepth": 1,
    "inFlight": 2,
    "workers": 4,
    "queueLimit": 256
  },
  "runner": {
    "simulateCalls": 24,
    "simulationsRun": 12,
    "emulationsRun": 2,
    "peakBusRecords": 9000,
    "sampledRuns": 1,
    "plansBuilt": 1,
    "planStoreHits": 2,
    "planStoreMisses": 1,
    "storeHits": 6,
    "storeMisses": 6,
    "storePutErrors": 0,
    "hitRatio": 0.5
  },
  "store": {
    "entries": 12,
    "bytes": 4096,
    "maxBytes": 1048576,
    "hits": 6,
    "misses": 6,
    "puts": 12,
    "evictions": 0
  },
  "cluster": {
    "node": "http://127.0.0.1:8080",
    "peers": [
      {
        "url": "http://127.0.0.1:8081",
        "healthy": true
      },
      {
        "url": "http://127.0.0.1:8082",
        "healthy": false
      }
    ],
    "shardHits": 5,
    "peerHits": 3,
    "peerMisses": 2,
    "forwarded": 4,
    "peerErrors": 1,
    "sweepsActive": 1,
    "sweepsTotal": 9
  },
  "registry": {
    "counters": [
      {
        "name": "service/jobs-submitted",
        "value": 7
      }
    ],
    "gauges": [
      {
        "name": "cluster/peers-healthy",
        "value": 2
      }
    ],
    "histograms": null
  }
}`
	if string(got) != want {
		t.Errorf("metrics snapshot drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Without a cluster layer the section disappears entirely.
	m.Cluster = nil
	got, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(got), `"cluster":`) {
		t.Errorf("single-process metrics still mention the cluster: %s", got)
	}
}

// TestServerClusterMetricsWiring: a provider installed via SetClusterMetrics
// surfaces on GET /metrics; servers without one omit the section.
func TestServerClusterMetricsWiring(t *testing.T) {
	ts, _ := newTestServer(t, 1, 8)
	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Cluster != nil {
		t.Fatalf("cluster section on a single-process server: %+v", m.Cluster)
	}

	sched := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: 1, QueueLimit: 8})
	t.Cleanup(func() { sched.Shutdown(t.Context()) })
	srv := NewServer(sched, nil)
	srv.SetClusterMetrics(func() *ClusterMetrics {
		return &ClusterMetrics{Node: "http://self", ShardHits: 11, PeerHits: 4, PeerMisses: 1, Forwarded: 2, PeerErrors: 3}
	})
	m = srv.Metrics()
	if m.Cluster == nil || m.Cluster.ShardHits != 11 || m.Cluster.PeerErrors != 3 {
		t.Fatalf("cluster metrics not wired: %+v", m.Cluster)
	}
}
