// Package service turns the experiment runner into a long-running
// simulation service: a priority-scheduled, bounded worker pool over
// experiments.Runner, a persistent content-addressed result store, and an
// HTTP API (cmd/noreba-serve) with live per-job event streaming and a
// metrics endpoint. Everything is stdlib-only.
package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// DiskStore is a persistent, content-addressed simulation-result store: one
// JSON file per result, named by the canonical config hash
// (experiments.Runner.ConfigHash). Writes are crash-safe — marshalled to a
// temp file in the same directory, fsynced, then renamed into place — so a
// torn write can never be read back as a result. Total on-disk size is
// bounded: when an insert pushes the store past MaxBytes, least-recently-
// used entries are deleted (recency is in-memory access order, seeded from
// file modification times at open).
//
// All methods are safe for concurrent use.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	byKey map[string]*storeEntry
	lru   *list.List // *storeEntry, front = most recently used
	bytes int64

	hits, misses, puts, evictions atomic.Int64
}

type storeEntry struct {
	key  string
	size int64
	elem *list.Element
}

// resultExt is the suffix of committed result files; anything else in the
// store directory (in particular abandoned temp files from a crash mid-Put)
// is garbage-collected at open.
const resultExt = ".json"

// tempFileGrace is how old a non-result file must be before open-time
// garbage collection may delete it: long enough that no live writer's
// in-flight temp file qualifies, short enough that crash litter still goes.
const tempFileGrace = time.Minute

// OpenDiskStore opens (creating if needed) a result store rooted at dir,
// bounded to maxBytes of result data (<= 0 means 1 GiB). Leftover temporary
// files from an interrupted writer are removed; existing results are
// indexed oldest-first so eviction order survives restarts.
func OpenDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	s := &DiskStore{dir: dir, maxBytes: maxBytes, byKey: map[string]*storeEntry{}, lru: list.New()}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	type seed struct {
		key  string
		size int64
		mod  time.Time
	}
	var seeds []seed
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if !strings.HasSuffix(name, resultExt) {
			// Abandoned temp file (crash between create and rename) —
			// but only if it is actually stale: another process may be
			// mid-Put in this directory right now (a replica restarting
			// over a live shard), and deleting its temp file would fail
			// that write.
			if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > tempFileGrace {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		key := strings.TrimSuffix(name, resultExt)
		if !validKey(key) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{key: key, size: info.Size(), mod: info.ModTime()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mod.Before(seeds[j].mod) })
	for _, sd := range seeds {
		e := &storeEntry{key: sd.key, size: sd.size}
		e.elem = s.lru.PushFront(e)
		s.byKey[sd.key] = e
		s.bytes += sd.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// validKey accepts only lowercase-hex content hashes: store keys double as
// file names, so anything else (path separators, dots) is rejected outright.
func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *DiskStore) path(key string) string { return filepath.Join(s.dir, key+resultExt) }

// Get returns the stored result for key, if present and readable. A missing
// or corrupt file is a miss (the corrupt file is forgotten and removed so
// it gets re-simulated and rewritten).
func (s *DiskStore) Get(key string) (*pipeline.Stats, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	e := s.byKey[key]
	if e != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if e == nil {
		s.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.drop(key)
		s.misses.Add(1)
		return nil, false
	}
	var st pipeline.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		s.drop(key)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return &st, true
}

// Put durably stores st under key, then evicts least-recently-used entries
// until the store fits its byte bound again (the entry just written is
// always kept).
func (s *DiskStore) Put(key string, st *pipeline.Stats) error {
	if !validKey(key) {
		return fmt.Errorf("service: store put: invalid key %q", key)
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("service: store put: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: store put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, s.path(key))
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("service: store put: %w", err)
	}

	s.mu.Lock()
	if e := s.byKey[key]; e != nil {
		s.bytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		s.lru.MoveToFront(e.elem)
	} else {
		e := &storeEntry{key: key, size: int64(len(data))}
		e.elem = s.lru.PushFront(e)
		s.byKey[key] = e
		s.bytes += e.size
	}
	s.evictLocked()
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// drop forgets and deletes one entry (unreadable or corrupt file).
func (s *DiskStore) drop(key string) {
	s.mu.Lock()
	if e := s.byKey[key]; e != nil {
		s.lru.Remove(e.elem)
		delete(s.byKey, key)
		s.bytes -= e.size
	}
	s.mu.Unlock()
	os.Remove(s.path(key))
}

// evictLocked deletes least-recently-used entries until the byte bound
// holds, always keeping at least the most recent entry. Callers hold s.mu.
func (s *DiskStore) evictLocked() {
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		elem := s.lru.Back()
		e := elem.Value.(*storeEntry)
		s.lru.Remove(elem)
		delete(s.byKey, e.key)
		s.bytes -= e.size
		os.Remove(s.path(e.key))
		s.evictions.Add(1)
	}
}

// Len returns the number of stored results.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Bytes returns the total size of stored result data.
func (s *DiskStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// StoreStats is a point-in-time summary of store activity, exported on
// /metrics.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"maxBytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Stats summarises the store's activity since open.
func (s *DiskStore) Stats() StoreStats {
	s.mu.Lock()
	entries, bytes := len(s.byKey), s.bytes
	s.mu.Unlock()
	return StoreStats{
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
	}
}
