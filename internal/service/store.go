// Package service turns the experiment runner into a long-running
// simulation service: a priority-scheduled, bounded worker pool over
// experiments.Runner, a persistent content-addressed result store, and an
// HTTP API (cmd/noreba-serve) with live per-job event streaming and a
// metrics endpoint. Everything is stdlib-only.
package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// DiskStore is a persistent, content-addressed simulation-result store: one
// JSON file per result, named by the canonical config hash
// (experiments.Runner.ConfigHash), plus one binary file per stored artifact
// blob (encoded sampling plans, named by their plan hash — see
// experiments.BlobStore). Writes are crash-safe — marshalled to a temp file
// in the same directory, fsynced, then renamed into place — so a torn write
// can never be read back. Total on-disk size is bounded: when an insert
// pushes the store past MaxBytes, least-recently-used entries are deleted
// (recency is in-memory access order, seeded from file modification times at
// open). Results and blobs share the directory, the recency order and the
// byte bound, but live in separate key namespaces: entries are indexed by
// file name, so a result and a blob under the same content hash coexist.
//
// All methods are safe for concurrent use.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu     sync.Mutex
	byName map[string]*storeEntry
	lru    *list.List // *storeEntry, front = most recently used
	bytes  int64

	hits, misses, puts, evictions atomic.Int64
}

type storeEntry struct {
	name string // file name: key + extension
	size int64
	elem *list.Element
}

// resultExt is the suffix of committed result files.
const resultExt = ".json"

// blobExt is the suffix of committed binary-artifact files (encoded sampling
// plans). Anything in the store directory carrying neither suffix — in
// particular abandoned temp files from a crash mid-Put — is garbage-collected
// at open.
const blobExt = ".bin"

// tempFileGrace is how old a non-result file must be before open-time
// garbage collection may delete it: long enough that no live writer's
// in-flight temp file qualifies, short enough that crash litter still goes.
const tempFileGrace = time.Minute

// OpenDiskStore opens (creating if needed) a result store rooted at dir,
// bounded to maxBytes of result data (<= 0 means 1 GiB). Leftover temporary
// files from an interrupted writer are removed; existing results and blobs
// are indexed oldest-first so eviction order survives restarts.
func OpenDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	s := &DiskStore{dir: dir, maxBytes: maxBytes, byName: map[string]*storeEntry{}, lru: list.New()}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	type seed struct {
		name string
		size int64
		mod  time.Time
	}
	var seeds []seed
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		var ext string
		switch {
		case strings.HasSuffix(name, resultExt):
			ext = resultExt
		case strings.HasSuffix(name, blobExt):
			ext = blobExt
		default:
			// Abandoned temp file (crash between create and rename) —
			// but only if it is actually stale: another process may be
			// mid-Put in this directory right now (a replica restarting
			// over a live shard), and deleting its temp file would fail
			// that write.
			if info, err := de.Info(); err == nil && time.Since(info.ModTime()) > tempFileGrace {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if !validKey(strings.TrimSuffix(name, ext)) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{name: name, size: info.Size(), mod: info.ModTime()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mod.Before(seeds[j].mod) })
	for _, sd := range seeds {
		e := &storeEntry{name: sd.name, size: sd.size}
		e.elem = s.lru.PushFront(e)
		s.byName[sd.name] = e
		s.bytes += sd.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// validKey accepts only lowercase-hex content hashes: store keys double as
// file names, so anything else (path separators, dots) is rejected outright.
func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *DiskStore) path(name string) string { return filepath.Join(s.dir, name) }

// getFile returns the raw bytes of the named entry, bumping its recency. A
// missing or unreadable file is forgotten and removed. Hit/miss accounting is
// the caller's: a readable file can still be a miss (corrupt payload).
func (s *DiskStore) getFile(name string) ([]byte, bool) {
	s.mu.Lock()
	e := s.byName[name]
	if e != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if e == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.path(name))
	if err != nil {
		s.drop(name)
		return nil, false
	}
	return data, true
}

// Get returns the stored result for key, if present and readable. A missing
// or corrupt file is a miss (the corrupt file is forgotten and removed so
// it gets re-simulated and rewritten).
func (s *DiskStore) Get(key string) (*pipeline.Stats, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	data, ok := s.getFile(key + resultExt)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	var st pipeline.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		s.drop(key + resultExt)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return &st, true
}

// GetBlob returns the binary artifact stored under key (see PutBlob).
// Payload integrity is the caller's concern — sampling plan files carry
// their own magic, version and bounds checks, and a decode failure there
// simply falls back to a rebuild.
func (s *DiskStore) GetBlob(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	data, ok := s.getFile(key + blobExt)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return data, true
}

// putFile durably writes one entry (temp file, fsync, rename), then evicts
// least-recently-used entries until the store fits its byte bound again (the
// entry just written is always kept).
func (s *DiskStore) putFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: store put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, s.path(name))
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("service: store put: %w", err)
	}

	s.mu.Lock()
	if e := s.byName[name]; e != nil {
		s.bytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		s.lru.MoveToFront(e.elem)
	} else {
		e := &storeEntry{name: name, size: int64(len(data))}
		e.elem = s.lru.PushFront(e)
		s.byName[name] = e
		s.bytes += e.size
	}
	s.evictLocked()
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// Put durably stores st under key.
func (s *DiskStore) Put(key string, st *pipeline.Stats) error {
	if !validKey(key) {
		return fmt.Errorf("service: store put: invalid key %q", key)
	}
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("service: store put: %w", err)
	}
	return s.putFile(key+resultExt, data)
}

// PutBlob durably stores an opaque binary artifact under key, sharing the
// result store's recency order and byte bound but not its key namespace.
func (s *DiskStore) PutBlob(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("service: store put: invalid key %q", key)
	}
	return s.putFile(key+blobExt, data)
}

// drop forgets and deletes one entry (unreadable or corrupt file).
func (s *DiskStore) drop(name string) {
	s.mu.Lock()
	if e := s.byName[name]; e != nil {
		s.lru.Remove(e.elem)
		delete(s.byName, name)
		s.bytes -= e.size
	}
	s.mu.Unlock()
	os.Remove(s.path(name))
}

// evictLocked deletes least-recently-used entries until the byte bound
// holds, always keeping at least the most recent entry. Callers hold s.mu.
func (s *DiskStore) evictLocked() {
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		elem := s.lru.Back()
		e := elem.Value.(*storeEntry)
		s.lru.Remove(elem)
		delete(s.byName, e.name)
		s.bytes -= e.size
		os.Remove(s.path(e.name))
		s.evictions.Add(1)
	}
}

// Len returns the number of stored entries (results and blobs).
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byName)
}

// Bytes returns the total size of stored data (results and blobs).
func (s *DiskStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// StoreStats is a point-in-time summary of store activity, exported on
// /metrics.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"maxBytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Stats summarises the store's activity since open.
func (s *DiskStore) Stats() StoreStats {
	s.mu.Lock()
	entries, bytes := len(s.byName), s.bytes
	s.mu.Unlock()
	return StoreStats{
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
	}
}
