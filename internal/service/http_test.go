package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

func newTestServer(t *testing.T, workers, queueLimit int) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := NewScheduler(SchedulerConfig{Runner: testRunner(), Workers: workers, QueueLimit: queueLimit})
	ts := httptest.NewServer(NewServer(sched, nil))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	return ts, sched
}

// newSlowServer is newTestServer with a full-scale sanitized runner: its
// jobs run for tens of milliseconds each, so a chain of "blocker" jobs (see
// postBlockers) holds the single worker across the few HTTP round-trips a
// test needs to line up a race-free cancel or subscribe against a
// still-queued job. HTTP round-trips on a loaded box can take tens of
// milliseconds themselves — the engine's CPU burn starves the handler
// goroutines — so one blocker alone is not a reliable window.
func newSlowServer(t *testing.T, workers, queueLimit int) (*httptest.Server, *Scheduler) {
	t.Helper()
	r := testRunner()
	r.MaxInsts = 1 << 20
	r.ScaleDiv = 1
	r.Sanitize = true
	sched := NewScheduler(SchedulerConfig{Runner: r, Workers: workers, QueueLimit: queueLimit})
	ts := httptest.NewServer(NewServer(sched, nil))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	return ts, sched
}

// postBlockers queues several distinct full-detail jobs on a slow server —
// distinct specs, because identical ones would collapse onto one cached run
// — giving later submissions a worker-busy window of a few hundred
// milliseconds, an order of magnitude above contended round-trip latency.
func postBlockers(t *testing.T, ts *httptest.Server) []SubmitResponse {
	t.Helper()
	var out []SubmitResponse
	for _, body := range []string{
		`{"workload":"dijkstra","policy":"inorder"}`,
		`{"workload":"dijkstra","policy":"noreba"}`,
		`{"workload":"mcf","policy":"noreba"}`,
	} {
		sub, resp := postJob(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("blocker rejected: %d", resp.StatusCode)
		}
		out = append(out, sub)
	}
	return out
}

func postJob(t *testing.T, ts *httptest.Server, body string) (SubmitResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub, resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/jobs/"+id, &st)
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitAndResult(t *testing.T) {
	ts, _ := newTestServer(t, 2, 16)

	sub, resp := postJob(t, ts, `{"workload":"sha","policy":"inorder"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if sub.ID == "" || len(sub.Hash) != 64 {
		t.Fatalf("bad submit response %+v", sub)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}

	var stats pipeline.Stats
	rr := getJSON(t, ts.URL+"/jobs/"+sub.ID+"/result", &stats)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", rr.StatusCode)
	}
	if stats.Committed == 0 || stats.Policy != "InO-C" {
		t.Errorf("suspicious stats: committed %d policy %q", stats.Committed, stats.Policy)
	}

	// Status and list agree.
	var list []JobStatus
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestHTTPValidation(t *testing.T) {
	ts, _ := newTestServer(t, 1, 16)
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"workload":"sha","policy":"warp-speed"}`, http.StatusBadRequest},
		{`{"workload":"sha","policy":"noreba","core":"pentium"}`, http.StatusBadRequest},
		{`{"workload":"no-such","policy":"noreba"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		_, resp := postJob(t, ts, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("submit %q: status %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}

	if resp := getJSON(t, ts.URL+"/jobs/job-424242", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/jobs/job-424242/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	var wls []map[string]any
	getJSON(t, ts.URL+"/workloads", &wls)
	if len(wls) == 0 {
		t.Error("no workloads listed")
	}
}

// TestHTTPBackpressure fills the one-deep queue behind a busy worker and
// asserts the API answers 429 with a Retry-After hint.
func TestHTTPBackpressure(t *testing.T) {
	ts, sched := newTestServer(t, 1, 1)

	blocker, resp := postJob(t, ts, `{"workload":"mcf","policy":"inorder"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal("blocker rejected")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := sched.Status(blocker.ID)
		if st.State != StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, r2 := postJob(t, ts, `{"workload":"bzip2","policy":"inorder"}`); r2.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit status %d", r2.StatusCode)
	}
	_, r3 := postJob(t, ts, `{"workload":"astar","policy":"inorder"}`)
	if r3.StatusCode == http.StatusTooManyRequests {
		if r3.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	} else if r3.StatusCode != http.StatusAccepted {
		// Accepted is legal only in the unlikely case the queue drained
		// between the two posts.
		t.Errorf("over-capacity submit status %d", r3.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	ts, _ := newSlowServer(t, 1, 16)

	// Occupy the worker, then cancel a queued job.
	postBlockers(t, ts)
	victim, _ := postJob(t, ts, `{"workload":"gobmk","policy":"inorder"}`)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs/"+victim.ID+"/cancel", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitDone(t, ts, victim.ID)
	if st.State != StateCancelled {
		t.Errorf("victim state %s", st.State)
	}
	if rr := getJSON(t, ts.URL+"/jobs/"+victim.ID+"/result", nil); rr.StatusCode != http.StatusGone {
		t.Errorf("cancelled result status %d", rr.StatusCode)
	}
}

// TestHTTPEventStream: a job submitted with events streams its pipeline
// trace as JSONL while it runs; a job without events answers 409.
func TestHTTPEventStream(t *testing.T) {
	ts, _ := newSlowServer(t, 1, 16)

	// Hold the single worker so the streaming job is still queued when we
	// attach the subscriber — no events can be lost to a late attach.
	blockers := postBlockers(t, ts)
	streamer, resp := postJob(t, ts, `{"workload":"sha","policy":"noreba","events":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatal("streamer rejected")
	}

	eresp, err := http.Get(ts.URL + "/jobs/" + streamer.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", eresp.StatusCode)
	}

	lines := 0
	kinds := map[string]bool{}
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if k, ok := ev["kind"].(string); ok {
			kinds[k] = true
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no events streamed")
	}
	for _, want := range []string{"fetch", "commit"} {
		if !kinds[want] {
			t.Errorf("stream missing %q events (saw %v)", want, kinds)
		}
	}
	for _, b := range blockers {
		waitDone(t, ts, b.ID)
	}
	if st := waitDone(t, ts, streamer.ID); st.State != StateDone {
		t.Fatalf("streamer ended %s", st.State)
	}

	// Jobs without events do not stream.
	if er := getJSON(t, ts.URL+"/jobs/"+blockers[0].ID+"/events", nil); er.StatusCode != http.StatusConflict {
		t.Errorf("events on non-streaming job: %d", er.StatusCode)
	}
}

func TestHTTPMetrics(t *testing.T) {
	ts, _ := newTestServer(t, 2, 16)
	sub, _ := postJob(t, ts, `{"workload":"sha","policy":"inorder"}`)
	waitDone(t, ts, sub.ID)

	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Scheduler.Workers != 2 || m.Scheduler.QueueLimit != 16 {
		t.Errorf("scheduler gauges %+v", m.Scheduler)
	}
	if m.Runner.SimulateCalls < 1 || m.Runner.SimulationsRun < 1 {
		t.Errorf("runner counters %+v", m.Runner)
	}
	found := false
	for _, c := range m.Registry.Counters {
		if c.Name == "service/jobs-done" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("registry missing service/jobs-done: %+v", m.Registry.Counters)
	}
}

// TestBuildConfigDefaults pins the API surface: default core and policy,
// explicit prefetch off, and the error paths.
func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := BuildConfig(SubmitRequest{Workload: "sha"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "SKL" || cfg.Policy != pipeline.Noreba || !cfg.PrefetchEnabled {
		t.Errorf("defaults: %+v", cfg)
	}
	off := false
	cfg, err = BuildConfig(SubmitRequest{Workload: "sha", Core: "nhm", Policy: "spec", Prefetch: &off, ECL: true, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "NHM" || cfg.Policy != pipeline.Spec || cfg.PrefetchEnabled || !cfg.ECL || !cfg.Sanitize {
		t.Errorf("explicit: %+v", cfg)
	}
	for _, p := range []string{"inorder", "nonspec", "noreba", "ideal", "specbr", "spec"} {
		if _, err := ParsePolicy(p); err != nil {
			t.Errorf("ParsePolicy(%q): %v", p, err)
		}
	}
	if _, err := ParsePolicy(fmt.Sprintf("bogus")); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestHTTPSampledJob covers the sampled-simulation surface of the API: the
// same workload/config submitted with and without "sample":true must hash to
// different result-store keys (a sampled estimate must never be served where
// a full simulation was asked for, or vice versa), both must complete, the
// sampled job must carry provenance end to end (JobStatus.Sampled, then
// Stats.Sampled in the result), and the runner/registry counters must record
// the sampled run and its plan build.
func TestHTTPSampledJob(t *testing.T) {
	ts, _ := newTestServer(t, 2, 16)

	full, resp := postJob(t, ts, `{"workload":"dijkstra","policy":"noreba"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("full submit status %d", resp.StatusCode)
	}
	samp, resp := postJob(t, ts, `{"workload":"dijkstra","policy":"noreba","sample":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sampled submit status %d", resp.StatusCode)
	}
	if full.Hash == samp.Hash {
		t.Fatalf("full and sampled jobs share result hash %s", full.Hash)
	}

	stFull := waitDone(t, ts, full.ID)
	stSamp := waitDone(t, ts, samp.ID)
	if stFull.State != StateDone || stSamp.State != StateDone {
		t.Fatalf("jobs ended %s / %s (%s %s)", stFull.State, stSamp.State, stFull.Error, stSamp.Error)
	}
	if stFull.Sampled {
		t.Error("full job reported sampled provenance")
	}
	if !stSamp.Sampled {
		t.Error("sampled job missing sampled provenance in status")
	}

	var fullStats, sampStats pipeline.Stats
	getJSON(t, ts.URL+"/jobs/"+full.ID+"/result", &fullStats)
	getJSON(t, ts.URL+"/jobs/"+samp.ID+"/result", &sampStats)
	if fullStats.Sampled {
		t.Error("full result carries sampled provenance")
	}
	if !sampStats.Sampled {
		t.Error("sampled result missing sampled provenance")
	}
	// Estimates must still describe the same program: same retired count.
	if fullStats.Committed != sampStats.Committed {
		t.Errorf("committed diverged: full %d sampled %d", fullStats.Committed, sampStats.Committed)
	}

	var m MetricsResponse
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Runner.SampledRuns < 1 {
		t.Errorf("runner sampledRuns = %d, want >= 1", m.Runner.SampledRuns)
	}
	if m.Runner.PlansBuilt < 1 {
		t.Errorf("runner plansBuilt = %d, want >= 1", m.Runner.PlansBuilt)
	}
	found := false
	for _, c := range m.Registry.Counters {
		if c.Name == "service/jobs-sampled" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("registry missing service/jobs-sampled=1: %+v", m.Registry.Counters)
	}
}

// TestHTTPGeneratedWorkload: the listing advertises the pinned generated
// workloads, and a submitted job naming one runs to completion like any
// curated kernel.
func TestHTTPGeneratedWorkload(t *testing.T) {
	ts, _ := newTestServer(t, 2, 16)

	var wls []struct {
		Name  string `json:"name"`
		Suite string `json:"suite"`
	}
	getJSON(t, ts.URL+"/workloads", &wls)
	var gen string
	for _, w := range wls {
		if w.Suite == "generated" {
			if !strings.HasPrefix(w.Name, "gen/") {
				t.Errorf("generated workload %q lacks the gen/ prefix", w.Name)
			}
			if gen == "" {
				gen = w.Name
			}
		}
	}
	if gen == "" {
		t.Fatalf("no generated workloads in the listing: %+v", wls)
	}

	sub, resp := postJob(t, ts, fmt.Sprintf(`{"workload":%q,"policy":"noreba"}`, gen))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("generated-workload job ended %s (%s)", st.State, st.Error)
	}
	var stats pipeline.Stats
	if rr := getJSON(t, ts.URL+"/jobs/"+sub.ID+"/result", &stats); rr.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", rr.StatusCode)
	}
	if stats.Committed == 0 {
		t.Error("generated-workload job committed nothing")
	}
}
