package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/sampling"
	"github.com/noreba-sim/noreba/internal/trace"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// Scheduler errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the HTTP layer maps it to 429 + Retry-After.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown is returned by Submit once a drain has begun.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrUnknownJob is returned for an ID the scheduler has never issued.
	ErrUnknownJob = errors.New("service: unknown job")
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing (or coalescing onto) it.
	StateRunning JobState = "running"
	// StateDone: finished successfully; the result is available.
	StateDone JobState = "done"
	// StateFailed: the simulation returned an error.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by the client, a deadline, or shutdown.
	StateCancelled JobState = "cancelled"
)

// JobSpec describes one simulation request.
type JobSpec struct {
	// Workload is the registered kernel to run.
	Workload string
	// Config is the core configuration (policy included). The scheduler
	// owns Config.TraceSink; any caller-set sink is replaced.
	Config pipeline.Config
	// Priority orders the queue: higher runs first; equal priorities are
	// FIFO.
	Priority int
	// Timeout, when positive, bounds the job's total lifetime (queue wait
	// included).
	Timeout time.Duration
	// Events enables live trace-event streaming for this job. It costs a
	// per-event emit in the pipeline, so it is opt-in per job; results are
	// unaffected (the trace layer is timing-invariant).
	Events bool
	// Sampling, when enabled, runs the job as a SimPoint-style sampled
	// estimate instead of a full detailed simulation (see internal/sampling).
	// The job's config hash — and therefore its cache and store identity —
	// includes the normalized parameters, so a sampled job never serves or
	// is served by a full-run result. The zero value means a full run,
	// regardless of the runner's own Sampling default: the job spec is
	// authoritative.
	Sampling sampling.Params
}

// Job is one scheduled simulation. Fields are guarded by the scheduler's
// mutex; use Snapshot for a consistent copy.
type Job struct {
	id   string
	hash string
	spec JobSpec
	seq  int64

	state     JobState
	result    *pipeline.Stats
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}
	hub    *eventHub
	index  int // heap index; -1 once popped
	eff    int // effective priority: spec.Priority plus the aging bonus
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the job's canonical config hash (the result-store key).
func (j *Job) Hash() string { return j.hash }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is a consistent snapshot of a job's externally visible state.
type JobStatus struct {
	ID        string     `json:"id"`
	Hash      string     `json:"hash"`
	Workload  string     `json:"workload"`
	Policy    string     `json:"policy"`
	Core      string     `json:"core"`
	Priority  int        `json:"priority"`
	Sampled   bool       `json:"sampled,omitempty"`
	State     JobState   `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// SchedulerConfig sizes a Scheduler.
type SchedulerConfig struct {
	// Runner executes the simulations. Required. Its Store field may be
	// set to a DiskStore for persistence; the scheduler reads the runner's
	// store counters for /metrics.
	Runner *experiments.Runner
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueLimit bounds jobs waiting for a worker; 0 means 256. Submit
	// returns ErrQueueFull beyond it.
	QueueLimit int
	// DefaultTimeout applies to jobs submitted without one; 0 means none.
	DefaultTimeout time.Duration
	// AgingStep, when positive, raises a queued job's effective priority by
	// one for every AgingStep it has waited, so a stream of high-priority
	// interactive jobs can delay but never starve low-priority batch work
	// (the cluster's sweep rows submit below interactive priority and rely
	// on this). Zero disables aging: ordering is then exactly the submitted
	// priorities.
	AgingStep time.Duration
	// Registry receives scheduler counters (jobs by outcome, queue-wait
	// and run-duration histograms); a fresh registry when nil.
	Registry *trace.Registry
}

// Scheduler runs submitted jobs on a bounded worker pool layered on the
// runner's deduplicating cache: identical concurrent jobs coalesce into one
// simulation, and a persistent store (when the runner has one) turns
// repeats across restarts into cache hits.
type Scheduler struct {
	runner  *experiments.Runner
	reg     *trace.Registry
	workers int
	qlimit  int
	defTO   time.Duration
	aging   time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobHeap
	jobs     map[string]*Job
	order    []*Job // submission order, for listing
	nextSeq  int64
	inFlight int
	closed   bool

	wg sync.WaitGroup
}

// NewScheduler starts a scheduler and its worker pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Runner == nil {
		panic("service: SchedulerConfig.Runner is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	qlimit := cfg.QueueLimit
	if qlimit <= 0 {
		qlimit = 256
	}
	reg := cfg.Registry
	if reg == nil {
		reg = trace.NewRegistry()
	}
	s := &Scheduler{
		runner:  cfg.Runner,
		reg:     reg,
		workers: workers,
		qlimit:  qlimit,
		defTO:   cfg.DefaultTimeout,
		aging:   cfg.AgingStep,
		jobs:    map[string]*Job{},
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the scheduler's metrics registry.
func (s *Scheduler) Registry() *trace.Registry { return s.reg }

// Runner returns the underlying experiment runner.
func (s *Scheduler) Runner() *experiments.Runner { return s.runner }

// Submit queues one job. It fails fast with ErrQueueFull when the bounded
// queue is at capacity and ErrShuttingDown after Shutdown has begun.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if _, err := workloads.ByName(spec.Workload); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = s.defTO
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if s.queue.Len() >= s.qlimit {
		s.mu.Unlock()
		s.reg.Counter("service/jobs-rejected").Inc()
		return nil, ErrQueueFull
	}
	s.nextSeq++
	j := &Job{
		id:        fmt.Sprintf("job-%06d", s.nextSeq),
		hash:      s.runner.ConfigHashSampled(spec.Workload, spec.Config, spec.Sampling),
		spec:      spec,
		seq:       s.nextSeq,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		eff:       spec.Priority,
	}
	ctx := context.Background()
	var cancelTO context.CancelFunc
	if timeout > 0 {
		ctx, cancelTO = context.WithTimeout(ctx, timeout)
	}
	jctx, cancel := context.WithCancelCause(ctx)
	j.ctx = jctx
	j.cancel = cancel
	if cancelTO != nil {
		// Release the timer once the job reaches a terminal state.
		go func() { <-j.done; cancelTO() }()
	}
	if spec.Events {
		j.hub = newEventHub()
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	heap.Push(&s.queue, j)
	s.cond.Signal()
	s.mu.Unlock()

	s.reg.Counter("service/jobs-submitted").Inc()
	if spec.Sampling.Enabled {
		s.reg.Counter("service/jobs-sampled").Inc()
	}
	return j, nil
}

// Job returns the job with the given ID.
func (s *Scheduler) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Jobs returns every known job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job{}, s.order...)
}

// Cancel cancels a job: a queued job goes terminal immediately, a running
// one is interrupted at the pipeline's next cancellation check.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return ErrUnknownJob
	}
	s.cancelLocked(j, errors.New("cancelled by client"))
	s.mu.Unlock()
	return nil
}

// cancelLocked cancels j's context and, when it is still queued, finishes it
// right away (the worker skips popped-but-cancelled jobs). Callers hold s.mu.
func (s *Scheduler) cancelLocked(j *Job, cause error) {
	j.cancel(cause)
	if j.state == StateQueued {
		s.finishLocked(j, StateCancelled, nil, context.Cause(j.ctx))
	}
}

// finishLocked moves j to a terminal state. Callers hold s.mu.
func (s *Scheduler) finishLocked(j *Job, state JobState, st *pipeline.Stats, err error) {
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		return
	}
	j.state = state
	j.result = st
	j.err = err
	j.finished = time.Now()
	if j.hub != nil {
		j.hub.close()
	}
	close(j.done)
	s.reg.Counter("service/jobs-" + string(state)).Inc()
}

// Status returns a consistent snapshot of one job.
func (s *Scheduler) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(j), nil
}

func (s *Scheduler) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		Hash:      j.hash,
		Workload:  j.spec.Workload,
		Policy:    j.spec.Config.Policy.String(),
		Core:      j.spec.Config.Name,
		Priority:  j.spec.Priority,
		Sampled:   j.spec.Sampling.Enabled,
		State:     j.state,
		Submitted: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Result returns a finished job's statistics (nil with the job's error for
// failed or cancelled jobs, ErrUnknownJob for unknown IDs, and a nil,nil
// pair is never returned for terminal jobs).
func (s *Scheduler) Result(id string) (*pipeline.Stats, JobState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, "", ErrUnknownJob
	}
	return j.result, j.state, j.err
}

// Subscribe attaches a live event stream to a job submitted with Events
// set. The returned channel closes when the job finishes; cancel detaches
// early. ok is false when the job does not stream events.
func (s *Scheduler) Subscribe(id string) (ch <-chan trace.Event, cancel func(), ok bool, err error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, nil, false, ErrUnknownJob
	}
	if j.hub == nil {
		return nil, nil, false, nil
	}
	ch, cancel = j.hub.subscribe()
	return ch, cancel, true, nil
}

// worker pops and runs jobs until shutdown drains the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		if s.aging > 0 {
			s.ageLocked(time.Now())
		}
		j := heap.Pop(&s.queue).(*Job)
		if j.state != StateQueued {
			// Cancelled while queued; already terminal.
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = time.Now()
		s.inFlight++
		s.mu.Unlock()

		s.reg.Histogram("service/queue-wait-ms", 1, 10, 100, 1000, 10000).
			Observe(j.started.Sub(j.submitted).Milliseconds())

		cfg := j.spec.Config
		if j.hub != nil {
			cfg.TraceSink = j.hub
		} else {
			cfg.TraceSink = nil
		}
		st, err := s.runner.SimulateSampledContext(j.ctx, j.spec.Workload, cfg, j.spec.Sampling)

		s.mu.Lock()
		s.inFlight--
		switch {
		case err == nil:
			s.finishLocked(j, StateDone, st, nil)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.finishLocked(j, StateCancelled, nil, err)
		default:
			s.finishLocked(j, StateFailed, nil, err)
		}
		dur := j.finished.Sub(j.started)
		s.mu.Unlock()

		s.reg.Histogram("service/run-ms", 10, 100, 1000, 10000, 60000).
			Observe(dur.Milliseconds())
	}
}

// ageLocked refreshes every queued job's effective priority from its wait
// time and restores heap order. It runs at pop time only: queue order is
// observable exactly when a worker frees, so aging needs no background
// timer. Callers hold s.mu.
func (s *Scheduler) ageLocked(now time.Time) {
	changed := false
	for _, j := range s.queue {
		if eff := agedPriority(j.spec.Priority, now.Sub(j.submitted), s.aging); eff != j.eff {
			j.eff = eff
			changed = true
		}
	}
	if changed {
		heap.Init(&s.queue)
	}
}

// agedPriority is the aging rule: base priority plus one for every step
// waited, bounded so a pathological wait cannot overflow the comparison.
func agedPriority(base int, waited, step time.Duration) int {
	if step <= 0 || waited <= 0 {
		return base
	}
	bonus := waited / step
	if bonus > 1<<20 {
		bonus = 1 << 20
	}
	return base + int(bonus)
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// InFlight returns the number of jobs currently executing.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// QueueLimit returns the bounded queue's capacity.
func (s *Scheduler) QueueLimit() int { return s.qlimit }

// Shutdown drains the scheduler: new submissions are rejected, queued jobs
// are cancelled, and running jobs are given until ctx ends to finish before
// being cancelled themselves. It returns once every worker has exited.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		// Queued jobs will never run; fail them now rather than leaving
		// clients polling forever.
		for s.queue.Len() > 0 {
			j := heap.Pop(&s.queue).(*Job)
			if j.state == StateQueued {
				j.cancel(ErrShuttingDown)
				s.finishLocked(j, StateCancelled, nil, ErrShuttingDown)
			}
		}
	}
	s.cond.Broadcast()
	running := make([]*Job, 0, s.inFlight)
	for _, j := range s.order {
		if j.state == StateRunning {
			running = append(running, j)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Grace period over: interrupt whatever is still running, then
		// wait for the workers to observe the cancellation.
		for _, j := range running {
			j.cancel(ErrShuttingDown)
		}
		<-done
		return ctx.Err()
	}
}

// jobHeap orders queued jobs by descending effective priority (the
// submitted priority plus any aging bonus), then FIFO.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].eff != h[k].eff {
		return h[i].eff > h[k].eff
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].index = i
	h[k].index = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}

// eventHub fans one job's pipeline event stream out to any number of
// subscribers. Emit is called from the simulating goroutine for every
// pipeline event, so the zero-subscriber path is a single atomic load; a
// slow subscriber loses events (bounded buffer, drop-on-full) rather than
// stalling the simulation.
type eventHub struct {
	nsubs atomic.Int32

	mu     sync.Mutex
	subs   map[chan trace.Event]struct{}
	closed bool
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[chan trace.Event]struct{}{}}
}

// Emit implements trace.Sink.
func (h *eventHub) Emit(e trace.Event) {
	if h.nsubs.Load() == 0 {
		return
	}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- e:
		default: // drop for slow consumers
		}
	}
	h.mu.Unlock()
}

// subscribe registers a consumer; the channel closes when the job ends.
func (h *eventHub) subscribe() (<-chan trace.Event, func()) {
	ch := make(chan trace.Event, 4096)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.nsubs.Add(1)
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				h.nsubs.Add(-1)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// close ends the stream for every subscriber.
func (h *eventHub) close() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		h.nsubs.Add(-1)
		close(ch)
	}
	h.mu.Unlock()
}
