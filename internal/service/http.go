package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/sampling"
	"github.com/noreba-sim/noreba/internal/trace"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// SubmitRequest is the POST /jobs body: a simulation request in terms of
// the registered workloads and the paper's cores and commit policies.
type SubmitRequest struct {
	// Workload is a registered kernel name (GET /workloads lists them).
	Workload string `json:"workload"`
	// Policy is the commit policy: inorder|nonspec|noreba|ideal|specbr|spec.
	Policy string `json:"policy"`
	// Core is the machine model: nhm|hsw|skl (default skl).
	Core string `json:"core,omitempty"`
	// Prefetch disables the DCPT prefetcher when explicitly false.
	Prefetch *bool `json:"prefetch,omitempty"`
	// ECL enables Early Commit of Loads (§6.1.5).
	ECL bool `json:"ecl,omitempty"`
	// Sanitize runs the job under the pipeline invariant checker.
	Sanitize bool `json:"sanitize,omitempty"`
	// Priority orders the queue (higher first, default 0).
	Priority int `json:"priority,omitempty"`
	// TimeoutSec bounds the job's lifetime, queue wait included.
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// Events enables the live JSONL stream on GET /jobs/{id}/events.
	Events bool `json:"events,omitempty"`
	// Sample runs the job as a SimPoint-style sampled estimate with the
	// tuned default parameters instead of a full detailed simulation. The
	// response hash differs from the full run's: sampled and full results
	// never share a cache or store entry.
	Sample bool `json:"sample,omitempty"`
}

// SubmitResponse answers POST /jobs.
type SubmitResponse struct {
	ID         string `json:"id"`
	Hash       string `json:"hash"`
	State      string `json:"state"`
	QueueDepth int    `json:"queueDepth"`
}

// MetricsResponse is the GET /metrics document: scheduler gauges, runner
// cache/store counters, optional store occupancy, cluster counters when the
// process is part of a replica fleet, and the full event-metrics registry
// snapshot.
type MetricsResponse struct {
	Scheduler SchedulerMetrics `json:"scheduler"`
	Runner    RunnerMetrics    `json:"runner"`
	Store     *StoreStats      `json:"store,omitempty"`
	Cluster   *ClusterMetrics  `json:"cluster,omitempty"`
	Registry  trace.Snapshot   `json:"registry"`
}

// ClusterMetrics summarise one replica's view of the fleet: shard-local and
// peer-served cache traffic, forwarded work, peer failures and the current
// health of every peer. The cluster layer (internal/cluster) supplies it
// through Server.SetClusterMetrics; a single-process server omits the
// section entirely.
type ClusterMetrics struct {
	// Node is this replica's advertised base URL.
	Node string `json:"node"`
	// Peers reports every other replica and whether it is currently
	// considered healthy (failed peers re-enter after a backoff probe).
	Peers []PeerStatus `json:"peers"`
	// ShardHits counts store lookups served from this replica's own disk.
	ShardHits int64 `json:"shardHits"`
	// PeerHits counts results fetched from the owning replica's store.
	PeerHits int64 `json:"peerHits"`
	// PeerMisses counts owner probes that answered "not stored".
	PeerMisses int64 `json:"peerMisses"`
	// Forwarded counts work handed to the owning shard: sweep groups
	// executed remotely and result replications pushed to owners.
	Forwarded int64 `json:"forwarded"`
	// PeerErrors counts failed peer RPCs (timeouts, refused connections,
	// bad responses) after their bounded retries.
	PeerErrors int64 `json:"peerErrors"`
	// SweepsActive and SweepsTotal track the batch design-space endpoint's
	// admission: currently streaming sweeps and all sweeps ever admitted.
	SweepsActive int64 `json:"sweepsActive"`
	SweepsTotal  int64 `json:"sweepsTotal"`
}

// PeerStatus is one peer's liveness as seen from this replica.
type PeerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// SchedulerMetrics are the scheduler's live gauges.
type SchedulerMetrics struct {
	QueueDepth int `json:"queueDepth"`
	InFlight   int `json:"inFlight"`
	Workers    int `json:"workers"`
	QueueLimit int `json:"queueLimit"`
}

// RunnerMetrics summarise the runner's dedup cache and persistent store
// activity. HitRatio is store hits over store lookups — 1.0 means every
// request of the window was served from the persistent store.
type RunnerMetrics struct {
	SimulateCalls  int64   `json:"simulateCalls"`
	SimulationsRun int64   `json:"simulationsRun"`
	EmulationsRun  int64   `json:"emulationsRun"`
	PeakBusRecords int64   `json:"peakBusRecords"`
	SampledRuns    int64   `json:"sampledRuns"`
	PlansBuilt     int64   `json:"plansBuilt"`
	PlanStoreHits  int64   `json:"planStoreHits"`
	PlanStoreMiss  int64   `json:"planStoreMisses"`
	StoreHits      int64   `json:"storeHits"`
	StoreMisses    int64   `json:"storeMisses"`
	StorePutErrors int64   `json:"storePutErrors"`
	HitRatio       float64 `json:"hitRatio"`
}

// Server is the HTTP face of a Scheduler.
type Server struct {
	sched   *Scheduler
	store   *DiskStore // optional, for /metrics occupancy
	mux     *http.ServeMux
	cluster func() *ClusterMetrics // optional, for /metrics cluster section
}

// NewServer wires the service endpoints onto a fresh mux. store may be nil
// (metrics then omit store occupancy).
//
// Endpoints:
//
//	POST   /jobs             submit a simulation        → 202 SubmitResponse
//	GET    /jobs             list job statuses
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result finished job's Stats JSON
//	GET    /jobs/{id}/events live trace events as JSONL (submit with events)
//	POST   /jobs/{id}/cancel cancel (DELETE /jobs/{id} is equivalent)
//	GET    /workloads        registered workload names
//	GET    /metrics          MetricsResponse
//	GET    /healthz          liveness probe
func NewServer(sched *Scheduler, store *DiskStore) *Server {
	s := &Server{sched: sched, store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handle registers an additional route on the server's mux. The cluster
// layer mounts POST /sweep and the /cluster/* internal endpoints through it,
// keeping this package free of a dependency on internal/cluster.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetClusterMetrics installs the provider for the /metrics cluster section.
// fn is called on every metrics request; nil (the default) omits the
// section.
func (s *Server) SetClusterMetrics(fn func() *ClusterMetrics) { s.cluster = fn }

// Scheduler returns the scheduler this server fronts.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// BuildConfig resolves a SubmitRequest into a job spec's pipeline config.
func BuildConfig(req SubmitRequest) (pipeline.Config, error) {
	var cfg pipeline.Config
	switch strings.ToLower(req.Core) {
	case "", "skl":
		cfg = pipeline.SkylakeConfig()
	case "hsw":
		cfg = pipeline.HaswellConfig()
	case "nhm":
		cfg = pipeline.NehalemConfig()
	default:
		return cfg, fmt.Errorf("unknown core %q (want nhm|hsw|skl)", req.Core)
	}
	policy, err := ParsePolicy(req.Policy)
	if err != nil {
		return cfg, err
	}
	cfg.Policy = policy
	if req.Prefetch != nil {
		cfg.PrefetchEnabled = *req.Prefetch
	}
	cfg.ECL = req.ECL
	cfg.Sanitize = req.Sanitize
	return cfg, nil
}

// ParsePolicy maps the API's policy names onto pipeline.PolicyKind.
func ParsePolicy(name string) (pipeline.PolicyKind, error) {
	switch strings.ToLower(name) {
	case "", "noreba":
		return pipeline.Noreba, nil
	case "inorder":
		return pipeline.InOrder, nil
	case "nonspec":
		return pipeline.NonSpecOoO, nil
	case "ideal":
		return pipeline.IdealReconv, nil
	case "specbr":
		return pipeline.SpecBR, nil
	case "spec":
		return pipeline.Spec, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want inorder|nonspec|noreba|ideal|specbr|spec)", name)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cfg, err := BuildConfig(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec := JobSpec{
		Workload: req.Workload,
		Config:   cfg,
		Priority: req.Priority,
		Timeout:  time.Duration(req.TimeoutSec * float64(time.Second)),
		Events:   req.Events,
	}
	if req.Sample {
		spec.Sampling = sampling.Default()
	}
	job, err := s.sched.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, _ := s.sched.Status(job.ID())
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: job.ID(), Hash: job.Hash(), State: string(st.State), QueueDepth: s.sched.QueueDepth(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st, err := s.sched.Status(j.ID())
		if err == nil {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.sched.Status(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	stats, state, err := s.sched.Result(id)
	if errors.Is(err, ErrUnknownJob) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, stats)
	case StateFailed:
		httpError(w, http.StatusInternalServerError, err)
	case StateCancelled:
		httpError(w, http.StatusGone, err)
	default:
		// Not finished yet: report progress, not an error.
		st, serr := s.sched.Status(id)
		if serr != nil {
			httpError(w, http.StatusNotFound, serr)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.sched.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrUnknownJob) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	st, _ := s.sched.Status(r.PathValue("id"))
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's live pipeline events as JSON lines until the
// job finishes or the client goes away. Jobs must opt in at submission
// ("events": true); for others the endpoint reports 409.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, ok, err := s.sched.Subscribe(id)
	if errors.Is(err, ErrUnknownJob) {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if !ok {
		httpError(w, http.StatusConflict, errors.New("job was not submitted with events enabled"))
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	jsonl := trace.NewJSONL(w)
	flushEvery := 256
	n := 0
	for {
		select {
		case e, open := <-ch:
			if !open {
				jsonl.Flush()
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			jsonl.Emit(e)
			n++
			if n%flushEvery == 0 {
				jsonl.Flush()
				if flusher != nil {
					flusher.Flush()
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	type wl struct {
		Name         string `json:"name"`
		Suite        string `json:"suite"`
		DefaultScale int    `json:"defaultScale"`
	}
	var out []wl
	for _, it := range workloads.All() {
		out = append(out, wl{Name: it.Name, Suite: string(it.Suite), DefaultScale: it.DefaultScale})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// Metrics assembles the /metrics document.
func (s *Server) Metrics() MetricsResponse {
	run := s.sched.Runner()
	rm := RunnerMetrics{
		SimulateCalls:  run.SimulateCalls(),
		SimulationsRun: run.SimulationsRun(),
		EmulationsRun:  run.EmulationsRun(),
		PeakBusRecords: run.PeakBusRecords(),
		SampledRuns:    run.SampledRuns(),
		PlansBuilt:     run.PlansBuilt(),
		PlanStoreHits:  run.PlanStoreHits(),
		PlanStoreMiss:  run.PlanStoreMisses(),
		StoreHits:      run.StoreHits(),
		StoreMisses:    run.StoreMisses(),
		StorePutErrors: run.StorePutErrors(),
	}
	if lookups := rm.StoreHits + rm.StoreMisses; lookups > 0 {
		rm.HitRatio = float64(rm.StoreHits) / float64(lookups)
	}
	m := MetricsResponse{
		Scheduler: SchedulerMetrics{
			QueueDepth: s.sched.QueueDepth(),
			InFlight:   s.sched.InFlight(),
			Workers:    s.sched.Workers(),
			QueueLimit: s.sched.QueueLimit(),
		},
		Runner:   rm,
		Registry: s.sched.Registry().Snapshot(),
	}
	if s.store != nil {
		st := s.store.Stats()
		m.Store = &st
	}
	if s.cluster != nil {
		m.Cluster = s.cluster()
	}
	return m
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	msg := "unknown error"
	if err != nil {
		msg = err.Error()
	}
	writeJSON(w, code, map[string]any{"error": msg, "status": code})
}
