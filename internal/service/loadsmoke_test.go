package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// smokeCase is one unique simulation config of the load-smoke matrix.
type smokeCase struct {
	Workload string
	Policy   string
	Kind     pipeline.PolicyKind
}

func smokeMatrix() []smokeCase {
	var cases []smokeCase
	policies := []struct {
		name string
		kind pipeline.PolicyKind
	}{
		{"inorder", pipeline.InOrder},
		{"noreba", pipeline.Noreba},
		{"spec", pipeline.Spec},
	}
	for _, wl := range []string{"sha", "bzip2", "astar", "hmmer"} {
		for _, p := range policies {
			cases = append(cases, smokeCase{Workload: wl, Policy: p.name, Kind: p.kind})
		}
	}
	return cases
}

// canonicalJSON re-marshals a Stats JSON document so two byte streams with
// identical content but different formatting compare equal byte-for-byte
// (Stats is all integers and sorted-key maps, so this is deterministic).
func canonicalJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var st pipeline.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("result is not Stats JSON: %v", err)
	}
	out, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func smokeRunner(store experiments.ResultStore) *experiments.Runner {
	r := experiments.NewRunner()
	r.MaxInsts = 1 << 12
	r.ScaleDiv = 8
	r.Store = store
	return r
}

// TestServiceLoadSmoke is the end-to-end proof for the service subsystem:
//
//  1. Many concurrent clients submit overlapping configs against an
//     httptest.Server; each unique config must be simulated exactly once
//     (singleflight dedup), and every HTTP result must be byte-identical to
//     a direct Runner call with the same config.
//  2. After a clean shutdown, a *fresh* runner + scheduler over the same
//     store directory serves the whole suite again without running a single
//     simulation: /metrics must report a store hit ratio of 1.0 and the
//     results must still be byte-identical.
//
// The test is meant to run under -race (make serve-smoke / check.sh).
func TestServiceLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short mode")
	}
	storeDir := t.TempDir()
	cases := smokeMatrix()
	const copies = 3 // concurrent duplicate submissions per unique config

	// --- Phase 0: ground truth from a direct Runner, no service, no store.
	direct := smokeRunner(nil)
	truth := make(map[smokeCase][]byte)
	for _, c := range cases {
		cfg := pipeline.SkylakeConfig()
		cfg.Policy = c.Kind
		st, err := direct.Simulate(c.Workload, cfg)
		if err != nil {
			t.Fatalf("direct %s/%s: %v", c.Workload, c.Policy, err)
		}
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		truth[c] = raw
	}

	// --- Phase 1: cold service, concurrent overlapping clients.
	store1, err := OpenDiskStore(storeDir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	runner1 := smokeRunner(store1)
	sched1 := NewScheduler(SchedulerConfig{Runner: runner1, Workers: 4, QueueLimit: len(cases) * copies})
	ts1 := httptest.NewServer(NewServer(sched1, store1))

	runPhase := func(ts *httptest.Server, phase string) {
		var wg sync.WaitGroup
		errs := make(chan error, len(cases)*copies)
		for _, c := range cases {
			for k := 0; k < copies; k++ {
				wg.Add(1)
				go func(c smokeCase, k int) {
					defer wg.Done()
					body := fmt.Sprintf(`{"workload":%q,"policy":%q}`, c.Workload, c.Policy)
					resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					var sub SubmitResponse
					err = json.NewDecoder(resp.Body).Decode(&sub)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusAccepted {
						errs <- fmt.Errorf("%s submit %s/%s: status %d err %v", phase, c.Workload, c.Policy, resp.StatusCode, err)
						return
					}
					// Poll until terminal, then fetch and compare the result.
					deadline := time.Now().Add(120 * time.Second)
					for {
						rr, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/result")
						if err != nil {
							errs <- err
							return
						}
						if rr.StatusCode == http.StatusAccepted {
							rr.Body.Close()
							if time.Now().After(deadline) {
								errs <- fmt.Errorf("%s job %s never finished", phase, sub.ID)
								return
							}
							time.Sleep(5 * time.Millisecond)
							continue
						}
						var buf bytes.Buffer
						_, err = buf.ReadFrom(rr.Body)
						rr.Body.Close()
						if err != nil || rr.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("%s result %s: status %d err %v", phase, sub.ID, rr.StatusCode, err)
							return
						}
						if got := canonicalJSON(t, buf.Bytes()); !bytes.Equal(got, truth[c]) {
							errs <- fmt.Errorf("%s %s/%s copy %d: service result differs from direct runner", phase, c.Workload, c.Policy, k)
						}
						return
					}
				}(c, k)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
	}

	runPhase(ts1, "cold")
	if got, want := runner1.SimulationsRun(), int64(len(cases)); got != want {
		t.Errorf("cold phase ran %d simulations, want %d (dedup failed)", got, want)
	}
	if calls := runner1.SimulateCalls(); calls != int64(len(cases)*copies) {
		t.Errorf("cold phase saw %d Simulate calls, want %d", calls, len(cases)*copies)
	}

	// Clean shutdown: drain the scheduler, then close the listener.
	shutCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	if err := sched1.Shutdown(shutCtx); err != nil {
		t.Fatalf("phase-1 drain: %v", err)
	}
	cancel()
	ts1.Close()

	// --- Phase 2: warm restart. A brand-new runner and scheduler over the
	// same store directory must serve the full suite from disk: zero
	// simulations, hit ratio 1.0 on /metrics, identical bytes.
	store2, err := OpenDiskStore(storeDir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != len(cases) {
		t.Fatalf("store reopened with %d entries, want %d", store2.Len(), len(cases))
	}
	runner2 := smokeRunner(store2)
	sched2 := NewScheduler(SchedulerConfig{Runner: runner2, Workers: 4, QueueLimit: len(cases) * copies})
	ts2 := httptest.NewServer(NewServer(sched2, store2))
	defer ts2.Close()
	defer sched2.Shutdown(context.Background())

	runPhase(ts2, "warm")
	if got := runner2.SimulationsRun(); got != 0 {
		t.Errorf("warm phase ran %d simulations, want 0 (store misses)", got)
	}

	var m MetricsResponse
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Runner.HitRatio != 1.0 {
		t.Errorf("warm phase hit ratio = %v, want 1.0 (%d hits, %d misses)",
			m.Runner.HitRatio, m.Runner.StoreHits, m.Runner.StoreMisses)
	}
	if m.Store == nil || m.Store.Entries != len(cases) {
		t.Errorf("store metrics = %+v, want %d entries", m.Store, len(cases))
	}
}
