// Package program provides the intermediate representation the NOREBA
// compiler pass and simulator operate on: programs as ordered lists of
// labelled basic blocks of decoded instructions, a builder API and a textual
// assembler for constructing them, and the control-flow graph over blocks.
//
// A Program is mutable (the compiler pass inserts setup instructions into
// blocks); Layout flattens it into an immutable Image with resolved branch
// targets, which the functional emulator and the cycle model consume.
package program

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/isa"
)

// Block is a labelled basic block. Only the final instruction may transfer
// control; every other instruction falls through to its successor. Setup
// instructions (setBranchId/setDependency) may appear anywhere — they do not
// transfer control.
type Block struct {
	Label string
	Insts []isa.Inst
}

// Terminator returns the block's final instruction, or false for an empty
// block.
func (b *Block) Terminator() (isa.Inst, bool) {
	if len(b.Insts) == 0 {
		return isa.Inst{}, false
	}
	return b.Insts[len(b.Insts)-1], true
}

// Program is an ordered collection of basic blocks plus an initial data
// image. Block order defines fall-through structure and final code layout.
type Program struct {
	Name   string
	Blocks []*Block
	// Data is the initial memory image (word-addressed; the emulator reads
	// and writes 64-bit words at exact addresses).
	Data map[int64]int64
	// FData holds initial floating-point memory contents.
	FData map[int64]float64
	// ValidRanges lists [lo,hi) address ranges that are legal to access.
	// An empty list means all addresses are legal. Accesses outside raise
	// a memory exception (§4.4).
	ValidRanges [][2]int64
}

// New returns an empty program with the given name.
func New(name string) *Program {
	return &Program{Name: name, Data: map[int64]int64{}, FData: map[int64]float64{}}
}

// Block returns the block with the given label, or nil.
func (p *Program) Block(label string) *Block {
	for _, b := range p.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// BlockIndex returns the position of the labelled block, or -1.
func (p *Program) BlockIndex(label string) int {
	for i, b := range p.Blocks {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// AddBlock appends a new empty block and returns it. Duplicate labels are
// rejected.
func (p *Program) AddBlock(label string) (*Block, error) {
	if p.Block(label) != nil {
		return nil, fmt.Errorf("program %s: duplicate block label %q", p.Name, label)
	}
	b := &Block{Label: label}
	p.Blocks = append(p.Blocks, b)
	return b, nil
}

// Successors returns the indices of the blocks control can flow to from
// block i: branch targets plus fall-through. Indirect jumps (jalr) and halt
// have no static successors.
func (p *Program) Successors(i int) []int {
	b := p.Blocks[i]
	term, ok := b.Terminator()
	if !ok {
		// Empty block: pure fall-through.
		if i+1 < len(p.Blocks) {
			return []int{i + 1}
		}
		return nil
	}
	var succs []int
	addLabel := func(label string) {
		if j := p.BlockIndex(label); j >= 0 {
			succs = append(succs, j)
		}
	}
	switch {
	case term.Op.IsCondBranch():
		addLabel(term.Label)
		if i+1 < len(p.Blocks) {
			succs = append(succs, i+1)
		}
	case term.Op == isa.OpJal:
		addLabel(term.Label)
	case term.Op == isa.OpJalr, term.Op == isa.OpHalt:
		// No static successors.
	default:
		if i+1 < len(p.Blocks) {
			succs = append(succs, i+1)
		}
	}
	return succs
}

// Predecessors returns, for every block, the indices of blocks that can
// transfer control to it.
func (p *Program) Predecessors() [][]int {
	preds := make([][]int, len(p.Blocks))
	for i := range p.Blocks {
		for _, s := range p.Successors(i) {
			preds[s] = append(preds[s], i)
		}
	}
	return preds
}

// Validate checks structural invariants: non-empty program, unique labels,
// resolvable branch targets, and control transfers only at block ends.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program %s: no blocks", p.Name)
	}
	seen := map[string]bool{}
	for _, b := range p.Blocks {
		if b.Label == "" {
			return fmt.Errorf("program %s: unlabelled block", p.Name)
		}
		if seen[b.Label] {
			return fmt.Errorf("program %s: duplicate label %q", p.Name, b.Label)
		}
		seen[b.Label] = true
	}
	for _, b := range p.Blocks {
		for k, in := range b.Insts {
			if in.Op.IsBranch() && in.Op != isa.OpJalr && k != len(b.Insts)-1 {
				return fmt.Errorf("program %s: block %s: control transfer %v not at block end", p.Name, b.Label, in)
			}
			if (in.Op.IsCondBranch() || in.Op == isa.OpJal) && in.Label != "" && p.Block(in.Label) == nil {
				return fmt.Errorf("program %s: block %s: unresolved target %q", p.Name, b.Label, in.Label)
			}
		}
	}
	return nil
}

// Image is the laid-out, immutable form of a Program: a linear instruction
// sequence with branch targets resolved to absolute PCs.
type Image struct {
	Name  string
	Insts []isa.Inst
	// StartOf maps block labels to the PC of their first instruction.
	StartOf map[string]int
	// BlockOf maps each PC to the index of its containing block.
	BlockOf []int
	// Labels lists block labels in layout order.
	Labels []string

	Data        map[int64]int64
	FData       map[int64]float64
	ValidRanges [][2]int64
}

// Layout flattens the program into an Image, resolving every label to a PC.
// Empty blocks are legal: their label resolves to the next instruction.
func (p *Program) Layout() (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	img := &Image{
		Name:        p.Name,
		StartOf:     make(map[string]int, len(p.Blocks)),
		Data:        p.Data,
		FData:       p.FData,
		ValidRanges: p.ValidRanges,
	}
	pc := 0
	for i, b := range p.Blocks {
		img.StartOf[b.Label] = pc
		img.Labels = append(img.Labels, b.Label)
		for range b.Insts {
			img.BlockOf = append(img.BlockOf, i)
			pc++
		}
	}
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if in.Label != "" {
				start, ok := img.StartOf[in.Label]
				if !ok {
					return nil, fmt.Errorf("program %s: unresolved label %q", p.Name, in.Label)
				}
				in.Target = start
			}
			img.Insts = append(img.Insts, in)
		}
	}
	return img, nil
}

// Disassemble renders the image as labelled assembly text, parseable by
// Assemble.
func (img *Image) Disassemble() string {
	out := ""
	next := 0
	for pc, in := range img.Insts {
		for next < len(img.Labels) && img.StartOf[img.Labels[next]] == pc {
			out += img.Labels[next] + ":\n"
			next++
		}
		out += "\t" + in.String() + "\n"
	}
	for next < len(img.Labels) {
		out += img.Labels[next] + ":\n"
		next++
	}
	return out
}
