package program

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/isa"
)

// Builder constructs a Program block by block. All emit methods append to
// the most recently opened block. Errors are accumulated and reported by
// Build so workload code stays linear.
type Builder struct {
	prog *Program
	cur  *Block
	errs []error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: New(name)}
}

// Label opens a new basic block with the given label.
func (b *Builder) Label(label string) *Builder {
	blk, err := b.prog.AddBlock(label)
	if err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	b.cur = blk
	return b
}

// Emit appends a raw instruction to the current block.
func (b *Builder) Emit(in isa.Inst) *Builder {
	if b.cur == nil {
		b.Label("entry")
	}
	b.cur.Insts = append(b.cur.Insts, in)
	return b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build for statically known-good programs (workloads, tests).
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("program builder: %v", err))
	}
	return p
}

// Data seeds an initial memory word.
func (b *Builder) Data(addr, value int64) *Builder {
	b.prog.Data[addr] = value
	return b
}

// FDataAt seeds an initial floating-point memory word.
func (b *Builder) FDataAt(addr int64, value float64) *Builder {
	b.prog.FData[addr] = value
	return b
}

// ValidRange declares [lo, hi) as a legal address range. Declaring any
// range makes all undeclared addresses illegal (they raise memory
// exceptions).
func (b *Builder) ValidRange(lo, hi int64) *Builder {
	b.prog.ValidRanges = append(b.prog.ValidRanges, [2]int64{lo, hi})
	return b
}

// --- register-register ALU ---

func (b *Builder) rrr(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpAdd, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpSub, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpAnd, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder   { return b.rrr(isa.OpOr, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpXor, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpSll, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpSrl, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpSlt, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) *Builder { return b.rrr(isa.OpSltu, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpMul, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpDiv, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpRem, rd, rs1, rs2) }

// --- register-immediate ALU ---

func (b *Builder) rri(op isa.Op, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder { return b.rri(isa.OpAddi, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) *Builder { return b.rri(isa.OpAndi, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) *Builder  { return b.rri(isa.OpOri, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) *Builder { return b.rri(isa.OpXori, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) *Builder { return b.rri(isa.OpSlli, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) *Builder { return b.rri(isa.OpSrli, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) *Builder { return b.rri(isa.OpSlti, rd, rs1, imm) }

// Li loads a 64-bit immediate (pseudo-instruction: addi rd, zero, imm —
// legal here because decoded immediates are full-width).
func (b *Builder) Li(rd isa.Reg, imm int64) *Builder { return b.Addi(rd, isa.Zero, imm) }

// Mv copies rs into rd (pseudo-instruction: addi rd, rs, 0).
func (b *Builder) Mv(rd, rs isa.Reg) *Builder { return b.Addi(rd, rs, 0) }

// --- floating point ---

func (b *Builder) Fadd(rd, rs1, rs2 isa.Reg) *Builder { return b.rrr(isa.OpFadd, rd, rs1, rs2) }
func (b *Builder) Fsub(rd, rs1, rs2 isa.Reg) *Builder { return b.rrr(isa.OpFsub, rd, rs1, rs2) }
func (b *Builder) Fmul(rd, rs1, rs2 isa.Reg) *Builder { return b.rrr(isa.OpFmul, rd, rs1, rs2) }
func (b *Builder) Fdiv(rd, rs1, rs2 isa.Reg) *Builder { return b.rrr(isa.OpFdiv, rd, rs1, rs2) }
func (b *Builder) Fsqrt(rd, rs1 isa.Reg) *Builder     { return b.rri(isa.OpFsqrt, rd, rs1, 0) }
func (b *Builder) Flt(rd, rs1, rs2 isa.Reg) *Builder  { return b.rrr(isa.OpFlt, rd, rs1, rs2) }
func (b *Builder) FcvtIF(rd, rs1 isa.Reg) *Builder    { return b.rri(isa.OpFcvtIF, rd, rs1, 0) }
func (b *Builder) FcvtFI(rd, rs1 isa.Reg) *Builder    { return b.rri(isa.OpFcvtFI, rd, rs1, 0) }

// --- memory ---

func (b *Builder) Lw(rd, base isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpLw, Rd: rd, Rs1: base, Imm: off})
}

func (b *Builder) Sw(val, base isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSw, Rs1: base, Rs2: val, Imm: off})
}

func (b *Builder) Flw(rd, base isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpFlw, Rd: rd, Rs1: base, Imm: off})
}

func (b *Builder) Fsw(val, base isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpFsw, Rs1: base, Rs2: val, Imm: off})
}

// --- control flow ---

func (b *Builder) br(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	return b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Label: label})
}

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.OpBeq, rs1, rs2, label)
}

func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.OpBne, rs1, rs2, label)
}

func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.OpBlt, rs1, rs2, label)
}

func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.OpBge, rs1, rs2, label)
}

func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.br(isa.OpBltu, rs1, rs2, label)
}

// Beqz branches to label when rs is zero.
func (b *Builder) Beqz(rs isa.Reg, label string) *Builder { return b.Beq(rs, isa.Zero, label) }

// Bnez branches to label when rs is non-zero.
func (b *Builder) Bnez(rs isa.Reg, label string) *Builder { return b.Bne(rs, isa.Zero, label) }

// J jumps unconditionally to label (jal zero, label).
func (b *Builder) J(label string) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpJal, Rd: isa.Zero, Label: label})
}

// Jal jumps to label, writing the return PC to rd.
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpJal, Rd: rd, Label: label})
}

// Jalr jumps to rs1+imm, writing the return PC to rd.
func (b *Builder) Jalr(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpJalr, Rd: rd, Rs1: rs1, Imm: imm})
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.Emit(isa.Inst{Op: isa.OpNop}) }

// Fence emits the §4.5 synchronisation barrier: the compiler pass does not
// mark regions across it and the hardware commits in order at it.
func (b *Builder) Fence() *Builder { return b.Emit(isa.Inst{Op: isa.OpFence}) }

// Halt terminates the program.
func (b *Builder) Halt() *Builder { return b.Emit(isa.Inst{Op: isa.OpHalt}) }

// SetBranchID emits the NOREBA setBranchId setup instruction.
func (b *Builder) SetBranchID(id int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSetBranchID, Imm: id})
}

// SetDependency emits the NOREBA setDependency setup instruction: the next
// num instructions depend on branch id.
func (b *Builder) SetDependency(num, id int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSetDependency, Imm: num, Aux: id})
}
