package program

import (
	"reflect"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/isa"
)

// diamond builds the paper's Figure 2 if-then-else hammock:
//
//	BB1: branch → BB3(L1) or fall through BB2; BB2 jumps to L2; BB3 falls
//	through into BB4 (L2).
func diamond(t *testing.T) *Program {
	t.Helper()
	p, err := NewBuilder("diamond").
		Label("BB1").
		Li(isa.A5, 1).
		Beqz(isa.A5, "L1").
		Label("BB2").
		Lw(isa.A4, isa.S0, -40).
		Addi(isa.A5, isa.A4, 1).
		Sw(isa.A5, isa.S0, -20).
		J("L2").
		Label("L1").
		Lw(isa.A4, isa.S0, -40).
		Addi(isa.A5, isa.A4, 2).
		Sw(isa.A5, isa.S0, -20).
		Label("L2").
		Lw(isa.A5, isa.S0, -20).
		Halt().
		Build()
	if err != nil {
		t.Fatalf("build diamond: %v", err)
	}
	return p
}

func TestSuccessors(t *testing.T) {
	p := diamond(t)
	// Blocks: 0=BB1 1=BB2 2=L1 3=L2
	want := [][]int{
		{2, 1}, // BB1: taken L1, fallthrough BB2
		{3},    // BB2: j L2
		{3},    // L1: fallthrough
		nil,    // L2: halt
	}
	for i, w := range want {
		got := p.Successors(i)
		if !reflect.DeepEqual(got, w) {
			t.Errorf("Successors(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestPredecessors(t *testing.T) {
	p := diamond(t)
	preds := p.Predecessors()
	if !reflect.DeepEqual(preds[3], []int{1, 2}) {
		t.Errorf("preds of L2 = %v, want [1 2]", preds[3])
	}
	if len(preds[0]) != 0 {
		t.Errorf("entry block has predecessors: %v", preds[0])
	}
}

func TestLayoutResolvesTargets(t *testing.T) {
	p := diamond(t)
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Insts) != 11 {
		t.Fatalf("len(Insts) = %d, want 11", len(img.Insts))
	}
	// Instruction 1 is the beq; its target must be L1's start.
	if img.Insts[1].Target != img.StartOf["L1"] {
		t.Errorf("beq target = %d, want %d", img.Insts[1].Target, img.StartOf["L1"])
	}
	if img.StartOf["L2"] != 11-len(p.Blocks[3].Insts) {
		t.Errorf("StartOf[L2] = %d", img.StartOf["L2"])
	}
	// BlockOf must be monotone and match block boundaries.
	if img.BlockOf[0] != 0 || img.BlockOf[len(img.BlockOf)-1] != 3 {
		t.Errorf("BlockOf boundaries wrong: %v", img.BlockOf)
	}
}

func TestValidateRejectsMidBlockBranch(t *testing.T) {
	p := New("bad")
	b, _ := p.AddBlock("entry")
	b.Insts = append(b.Insts,
		isa.Inst{Op: isa.OpBeq, Rs1: isa.A0, Rs2: isa.Zero, Label: "entry"},
		isa.Inst{Op: isa.OpNop},
	)
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted mid-block branch")
	}
}

func TestValidateRejectsUnknownTarget(t *testing.T) {
	p := New("bad")
	b, _ := p.AddBlock("entry")
	b.Insts = append(b.Insts, isa.Inst{Op: isa.OpBeq, Rs1: isa.A0, Rs2: isa.Zero, Label: "nowhere"})
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted unresolved target")
	}
}

func TestValidateRejectsDuplicateLabel(t *testing.T) {
	p := New("bad")
	p.AddBlock("a")
	if _, err := p.AddBlock("a"); err == nil {
		t.Error("AddBlock accepted duplicate label")
	}
}

func TestBuilderErrorSurfacesInBuild(t *testing.T) {
	_, err := NewBuilder("dup").Label("x").Label("x").Build()
	if err == nil {
		t.Error("Build accepted duplicate label")
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
# Figure 2 style fragment
main:
	li   a5, 1
	beq  a5, zero, L1
BB2:
	lw   a4, -40(s0)
	addi a5, a4, 1
	sw   a5, -20(s0)
	j    L2
L1:
	lw   a4, -40(s0)
	setDependency 2 1
	addi a5, a4, 2
	sw   a5, -20(s0)
L2:
	setBranchId 1
	lw   a5, -20(s0)
	halt
`
	p, err := Assemble("roundtrip", src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble and re-assemble: must produce an identical instruction
	// stream.
	p2, err := Assemble("roundtrip2", img.Disassemble())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, img.Disassemble())
	}
	img2, err := p2.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Insts) != len(img2.Insts) {
		t.Fatalf("instruction count changed: %d vs %d", len(img.Insts), len(img2.Insts))
	}
	for i := range img.Insts {
		a, b := img.Insts[i], img2.Insts[i]
		a.Label, b.Label = "", ""
		if a != b {
			t.Errorf("pc %d: %v != %v", i, img.Insts[i], img2.Insts[i])
		}
	}
}

func TestAssembleDirectives(t *testing.T) {
	p, err := Assemble("dir", `
.data 0x100 42
.range 0x100 0x200
main:
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0x100] != 42 {
		t.Errorf("Data[0x100] = %d, want 42", p.Data[0x100])
	}
	if len(p.ValidRanges) != 1 || p.ValidRanges[0] != [2]int64{0x100, 0x200} {
		t.Errorf("ValidRanges = %v", p.ValidRanges)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"main:\n\tbogus a0, a1, a2",
		"main:\n\tadd a0, a1",
		"main:\n\tlw a0, nope",
		"main:\n\tbeq a0, zero, missing",
		"main:\n\t.data 1",
		"main:\n\taddi a0, zero, notanumber",
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("Assemble accepted %q", src)
		}
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	p := MustAssemble("pseudo", `
main:
	li a0, 7
	mv a1, a0
	beqz a1, done
next:
	bnez a1, done
done:
	ret
`)
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if img.Insts[0].Op != isa.OpAddi || img.Insts[0].Rs1 != isa.Zero || img.Insts[0].Imm != 7 {
		t.Errorf("li lowered wrong: %v", img.Insts[0])
	}
	if img.Insts[1].Op != isa.OpAddi || img.Insts[1].Rs1 != isa.A0 {
		t.Errorf("mv lowered wrong: %v", img.Insts[1])
	}
	if img.Insts[2].Op != isa.OpBeq || img.Insts[3].Op != isa.OpBne {
		t.Errorf("beqz/bnez lowered wrong: %v %v", img.Insts[2], img.Insts[3])
	}
	if img.Insts[4].Op != isa.OpJalr || img.Insts[4].Rs1 != isa.RA {
		t.Errorf("ret lowered wrong: %v", img.Insts[4])
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := diamond(t)
	img, _ := p.Layout()
	text := img.Disassemble()
	for _, l := range []string{"BB1:", "BB2:", "L1:", "L2:"} {
		if !strings.Contains(text, l) {
			t.Errorf("disassembly missing %q:\n%s", l, text)
		}
	}
}
