package program

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/noreba-sim/noreba/internal/isa"
)

// Container format for laid-out images (.nrb files): a compact sectioned
// binary holding the encoded instruction stream, initial data, valid
// address ranges and block labels, so compiled (annotated) programs can be
// written by noreba-compile and executed later by noreba-sim without
// re-running the pass.
//
// Layout (all integers little-endian):
//
//	magic   "NRB1"
//	name    u16 length + bytes
//	code    u32 count + count×8-byte instruction words
//	data    u32 count + count×(i64 addr, i64 value)
//	fdata   u32 count + count×(i64 addr, f64 bits)
//	ranges  u32 count + count×(i64 lo, i64 hi)
//	labels  u32 count + count×(u16 len + bytes, u32 pc)
const containerMagic = "NRB1"

// MarshalBinary serialises the image into the container format.
func (img *Image) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(containerMagic)

	writeStr := func(s string) {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		buf.Write(l[:])
		buf.WriteString(s)
	}
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeI64 := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf.Write(b[:])
	}

	if len(img.Name) > 0xffff {
		return nil, fmt.Errorf("program: name too long")
	}
	writeStr(img.Name)

	code, err := isa.EncodeProgram(img.Insts)
	if err != nil {
		return nil, err
	}
	writeU32(uint32(len(img.Insts)))
	buf.Write(code)

	// Deterministic order for maps.
	dataAddrs := sortedKeys(img.Data)
	writeU32(uint32(len(dataAddrs)))
	for _, a := range dataAddrs {
		writeI64(a)
		writeI64(img.Data[a])
	}
	fAddrs := make([]int64, 0, len(img.FData))
	for a := range img.FData {
		fAddrs = append(fAddrs, a)
	}
	sort.Slice(fAddrs, func(i, j int) bool { return fAddrs[i] < fAddrs[j] })
	writeU32(uint32(len(fAddrs)))
	for _, a := range fAddrs {
		writeI64(a)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(img.FData[a]))
		buf.Write(b[:])
	}

	writeU32(uint32(len(img.ValidRanges)))
	for _, r := range img.ValidRanges {
		writeI64(r[0])
		writeI64(r[1])
	}

	writeU32(uint32(len(img.Labels)))
	for _, l := range img.Labels {
		writeStr(l)
		writeU32(uint32(img.StartOf[l]))
	}
	return buf.Bytes(), nil
}

// UnmarshalImage parses a container produced by MarshalBinary.
func UnmarshalImage(data []byte) (*Image, error) {
	r := &reader{data: data}
	if string(r.bytes(4)) != containerMagic {
		return nil, fmt.Errorf("program: bad container magic")
	}
	img := &Image{
		StartOf: map[string]int{},
		Data:    map[int64]int64{},
		FData:   map[int64]float64{},
	}
	img.Name = r.str()

	nInsts := int(r.u32())
	code := r.bytes(nInsts * 8)
	if r.err != nil {
		return nil, r.err
	}
	insts, err := isa.DecodeProgram(code)
	if err != nil {
		return nil, err
	}
	img.Insts = insts

	for n := int(r.u32()); n > 0 && r.err == nil; n-- {
		a := r.i64()
		img.Data[a] = r.i64()
	}
	for n := int(r.u32()); n > 0 && r.err == nil; n-- {
		a := r.i64()
		img.FData[a] = math.Float64frombits(uint64(r.i64()))
	}
	for n := int(r.u32()); n > 0 && r.err == nil; n-- {
		lo := r.i64()
		hi := r.i64()
		img.ValidRanges = append(img.ValidRanges, [2]int64{lo, hi})
	}
	for n := int(r.u32()); n > 0 && r.err == nil; n-- {
		l := r.str()
		pc := int(r.u32())
		img.Labels = append(img.Labels, l)
		img.StartOf[l] = pc
	}
	if r.err != nil {
		return nil, r.err
	}
	// Rebuild BlockOf from label starts (labels are in layout order).
	img.BlockOf = make([]int, len(img.Insts))
	block := -1
	next := 0
	for pc := range img.Insts {
		for next < len(img.Labels) && img.StartOf[img.Labels[next]] == pc {
			block++
			next++
		}
		if block < 0 {
			return nil, fmt.Errorf("program: instruction %d precedes all labels", pc)
		}
		img.BlockOf[pc] = block
	}
	return img, nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.pos+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("program: truncated container")
		}
		return make([]byte, n)
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) i64() int64  { return int64(binary.LittleEndian.Uint64(r.bytes(8))) }

func (r *reader) str() string {
	l := int(binary.LittleEndian.Uint16(r.bytes(2)))
	return string(r.bytes(l))
}

func sortedKeys(m map[int64]int64) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
