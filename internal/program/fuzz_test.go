package program_test

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/progtest"
)

// TestFuzzDisassembleAssembleRoundTrip: for random structured programs,
// layout → disassemble → assemble → layout must reproduce the identical
// instruction stream.
func TestFuzzDisassembleAssembleRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 80; seed++ {
		p := progtest.Generate(seed)
		img, err := p.Layout()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p2, err := program.Assemble(p.Name, img.Disassemble())
		if err != nil {
			t.Fatalf("seed %d: reassemble: %v\n%s", seed, err, img.Disassemble())
		}
		img2, err := p2.Layout()
		if err != nil {
			t.Fatalf("seed %d: relayout: %v", seed, err)
		}
		if len(img.Insts) != len(img2.Insts) {
			t.Fatalf("seed %d: instruction count %d -> %d", seed, len(img.Insts), len(img2.Insts))
		}
		for i := range img.Insts {
			a, b := img.Insts[i], img2.Insts[i]
			a.Label, b.Label = "", ""
			if a != b {
				t.Fatalf("seed %d pc %d: %v != %v", seed, i, img.Insts[i], img2.Insts[i])
			}
		}
	}
}

// TestFuzzBinaryEncodingRoundTrip: random programs survive binary
// encode/decode and still execute to identical architectural state.
func TestFuzzBinaryEncodingRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := progtest.Generate(seed)
		img, err := p.Layout()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		data, err := isa.EncodeProgram(img.Insts)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := isa.DecodeProgram(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}

		m1 := emulator.New(img)
		if _, err := m1.Run(1 << 18); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		img2 := *img
		img2.Insts = back
		m2 := emulator.New(&img2)
		if _, err := m2.Run(1 << 18); err != nil {
			t.Fatalf("seed %d: decoded run: %v", seed, err)
		}
		if m1.IntRegs != m2.IntRegs {
			t.Errorf("seed %d: state diverged after binary round trip", seed)
		}
	}
}

// TestFuzzEmulatorDeterminism: identical seeds yield byte-identical traces.
func TestFuzzEmulatorDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		run := func() *emulator.Trace {
			img, err := progtest.Generate(seed).Layout()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := emulator.New(img).Run(1 << 18)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}
		t1, t2 := run(), run()
		if t1.Len() != t2.Len() {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range t1.Insts {
			if t1.Insts[i] != t2.Insts[i] {
				t.Fatalf("seed %d: trace diverges at %d", seed, i)
			}
		}
	}
}
