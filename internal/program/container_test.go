package program_test

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/progtest"
)

// TestContainerRoundTrip: marshal → unmarshal reproduces an image that
// executes identically and preserves labels, data and ranges.
func TestContainerRoundTrip(t *testing.T) {
	p := program.MustAssemble("container", `
.data 0x100 17
.range 0x0 0x10000
main:
	li s0, 0x100
	lw a0, 0(s0)
	addi a0, a0, 5
	beqz a0, end
body:
	sw a0, 8(s0)
end:
	halt
`)
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := program.UnmarshalImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != img.Name {
		t.Errorf("name %q != %q", back.Name, img.Name)
	}
	if len(back.Insts) != len(img.Insts) {
		t.Fatalf("instruction count %d != %d", len(back.Insts), len(img.Insts))
	}
	if back.Data[0x100] != 17 {
		t.Error("data lost")
	}
	if len(back.ValidRanges) != 1 {
		t.Error("ranges lost")
	}
	if back.StartOf["body"] != img.StartOf["body"] {
		t.Error("labels lost")
	}
	for i := range img.BlockOf {
		if back.BlockOf[i] != img.BlockOf[i] {
			t.Fatalf("BlockOf[%d] = %d, want %d", i, back.BlockOf[i], img.BlockOf[i])
		}
	}

	m1 := emulator.New(img)
	m1.Run(1 << 16)
	m2 := emulator.New(back)
	m2.Run(1 << 16)
	if m1.IntRegs != m2.IntRegs {
		t.Error("execution diverged after container round trip")
	}
}

// TestContainerRejectsGarbage: truncations and bad magic fail cleanly.
func TestContainerRejectsGarbage(t *testing.T) {
	if _, err := program.UnmarshalImage([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	p := progtest.Generate(3)
	img, _ := p.Layout()
	data, err := img.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, 9, len(data) / 2, len(data) - 3} {
		if _, err := program.UnmarshalImage(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestContainerFuzzRoundTrip: random structured programs survive the
// container round trip with identical execution.
func TestContainerFuzzRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		img, err := progtest.Generate(seed).Layout()
		if err != nil {
			t.Fatal(err)
		}
		data, err := img.MarshalBinary()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := program.UnmarshalImage(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m1 := emulator.New(img)
		m1.Run(1 << 18)
		m2 := emulator.New(back)
		m2.Run(1 << 18)
		if m1.IntRegs != m2.IntRegs {
			t.Errorf("seed %d: diverged", seed)
		}
	}
}
