package program_test

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// TestBuilderAllHelpers drives every emit helper once, lays the program
// out, and executes it, checking a couple of computed values.
func TestBuilderAllHelpers(t *testing.T) {
	b := program.NewBuilder("all")
	b.Data(0x200, 9).
		FDataAt(0x300, 2.5).
		ValidRange(0, 1<<20)
	b.Label("entry").
		Li(isa.S0, 0x200).
		Li(isa.A0, 6).
		Li(isa.A1, 3).
		Add(isa.A2, isa.A0, isa.A1).
		Sub(isa.A3, isa.A0, isa.A1).
		And(isa.A4, isa.A0, isa.A1).
		Or(isa.A5, isa.A0, isa.A1).
		Xor(isa.S3, isa.A0, isa.A1).
		Sll(isa.S4, isa.A0, isa.A1).
		Srl(isa.S5, isa.S4, isa.A1).
		Slt(isa.S6, isa.A1, isa.A0).
		Sltu(isa.S7, isa.A1, isa.A0).
		Mul(isa.S8, isa.A0, isa.A1).
		Div(isa.S9, isa.A0, isa.A1).
		Rem(isa.S10, isa.A0, isa.A1).
		Addi(isa.T0, isa.A0, 1).
		Andi(isa.T1, isa.A0, 2).
		Ori(isa.T2, isa.A0, 1).
		Xori(isa.T3, isa.A0, 5).
		Slli(isa.T4, isa.A0, 2).
		Srli(isa.T5, isa.T4, 1).
		Slti(isa.T6, isa.A0, 100).
		Mv(isa.S11, isa.A0).
		Lw(isa.A6, isa.S0, 0).
		Sw(isa.A6, isa.S0, 8).
		Flw(isa.F0, isa.S0, 0x100).
		Fadd(isa.F1, isa.F0, isa.F0).
		Fsub(isa.F2, isa.F1, isa.F0).
		Fmul(isa.F3, isa.F1, isa.F2).
		Fdiv(isa.F4, isa.F3, isa.F1).
		Fsqrt(isa.F5, isa.F3).
		Flt(isa.A7, isa.F0, isa.F1).
		FcvtIF(isa.F6, isa.A0).
		FcvtFI(isa.T0, isa.F6).
		Fsw(isa.F1, isa.S0, 0x108).
		Nop().
		Fence().
		Beq(isa.A0, isa.A1, "never").
		Label("b2").
		Bne(isa.A0, isa.A0, "never").
		Label("b3").
		Blt(isa.A0, isa.A1, "never").
		Label("b4").
		Bge(isa.A1, isa.A0, "never").
		Label("b5").
		Bltu(isa.A0, isa.A1, "never").
		Label("b6").
		Beqz(isa.A0, "never").
		Label("b7").
		Bnez(isa.Zero, "never").
		Label("b8").
		Jal(isa.RA, "sub").
		Label("back").
		J("end")
	b.Label("never").
		Halt()
	b.Label("sub").
		Addi(isa.A2, isa.A2, 100).
		Jalr(isa.Zero, isa.RA, 0)
	b.Label("end").
		Emit(isa.Inst{Op: isa.OpSetBranchID, Imm: 1})
	b.SetBranchID(2).
		SetDependency(1, 2).
		Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	m := emulator.New(img)
	if _, err := m.Run(1 << 12); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if m.IntRegs[isa.A2] != 109 { // 6+3 then +100 in sub
		t.Errorf("a2 = %d, want 109", m.IntRegs[isa.A2])
	}
	if m.IntRegs[isa.S8] != 18 {
		t.Errorf("mul = %d, want 18", m.IntRegs[isa.S8])
	}
	if m.Mem[0x208] != 9 {
		t.Errorf("stored word = %d, want 9", m.Mem[0x208])
	}
	if m.FPRegs[1] != 5.0 { // 2.5 + 2.5
		t.Errorf("f1 = %v, want 5", m.FPRegs[1])
	}
}

// TestAssembleRemainingForms covers the parser paths the main tests skip.
func TestAssembleRemainingForms(t *testing.T) {
	p, err := program.Assemble("forms", `
main:
	lui   a0, 5
	srai  a1, a0, 2
	fsqrt f1, f0
	fcvt.d.l f2, a0
	fcvt.l.d a2, f2
	fmin  f3, f1, f2
	fmax  f4, f1, f2
	fle   a3, f1, f2
	feq   a4, f1, f2
	sltu  a5, a1, a0
	bgeu  a0, a1, next
next:
	jalr  zero, ra, 4
	getCITEntry a6, 2
	setCITEntry a6, 2
	fence
	nop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction must survive a disassemble/assemble round trip.
	p2, err := program.Assemble("forms2", img.Disassemble())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, img.Disassemble())
	}
	img2, err := p2.Layout()
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Insts {
		a, b := img.Insts[i], img2.Insts[i]
		a.Label, b.Label = "", ""
		if a != b {
			t.Errorf("pc %d: %v != %v", i, img.Insts[i], img2.Insts[i])
		}
	}
}

// TestAssembleMoreErrors exercises the remaining error diagnostics.
func TestAssembleMoreErrors(t *testing.T) {
	bad := []string{
		"main:\n\tlui a0",             // missing operand
		"main:\n\tlui a0, x",          // bad immediate
		"main:\n\tfsqrt f1",           // missing operand
		"main:\n\tfsqrt f1, 3",        // bad register
		"main:\n\tjalr zero, ra",      // missing operand
		"main:\n\tjalr zero, ra, x",   // bad imm
		"main:\n\tlw a0, 4(bogus)",    // bad base register
		"main:\n\tlw a0, y(s0)",       // bad offset
		"main:\n\tsw a0, nope",        // bad mem operand
		"main:\n\tbeq a0, a1",         // missing target
		"main:\n\tjal a0",             // missing target
		"main:\n\tsetBranchId",        // missing id
		"main:\n\tsetDependency 3",    // missing id
		"main:\n\tsetDependency x 1",  // bad num
		"main:\n\tgetCITEntry a0",     // missing index
		"main:\n\tsetCITEntry a0",     // missing index
		"main:\n\tgetCITEntry 1, 2",   // bad register
		"main:\n\tmv a0",              // pseudo missing operand
		"main:\n\tli a0",              // pseudo missing operand
		"main:\n\tbeqz done",          // pseudo missing operand
		"main:\n\tj",                  // pseudo missing operand
		"main:\n\tadd a0, a1, a2, a3", // extra operand
		"main:\n\t.range 1 2 3",       // bad directive arity
		"main:\n\t.data x y",          // bad directive operands
		"main:\n\t.bogus 1",           // unknown directive
		"dup:\n\thalt\ndup:\n\thalt",  // duplicate label via assembler
		"main:\n\tbreqz a5",           // paper alias missing operand
		"main:\n\tsrai a0, a1",        // missing imm
		"main:\n\tlui a0, 1, 2",       // too many operands
	}
	for _, src := range bad {
		if _, err := program.Assemble("bad", src); err == nil {
			t.Errorf("Assemble accepted %q", src)
		}
	}
}

// TestMustHelpersPanic verifies the Must variants panic on bad input.
func TestMustHelpersPanic(t *testing.T) {
	assertPanics(t, func() { program.MustAssemble("bad", "main:\n\tbogus") })
	assertPanics(t, func() {
		program.NewBuilder("dup").Label("x").Label("x").MustBuild()
	})
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
