package program

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/noreba-sim/noreba/internal/isa"
)

// Assemble parses the textual assembly format produced by
// (*Image).Disassemble and used in examples:
//
//	main:
//	    li   a0, 5          # pseudo: addi a0, zero, 5
//	    lw   a4, -40(s0)
//	    beq  a5, zero, L1
//	    setBranchId 1
//	    setDependency 8 1
//	    j    L2
//	    halt
//
// '#' starts a comment. Directives: ".data ADDR VALUE" seeds a memory word,
// ".range LO HI" declares a valid address range.
func Assemble(name, src string) (*Program, error) {
	p := New(name)
	var cur *Block
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) (*Program, error) {
			return nil, fmt.Errorf("%s:%d: %s", name, lineno+1, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".data":
				if len(fields) != 3 {
					return fail(".data wants ADDR VALUE")
				}
				addr, err1 := strconv.ParseInt(fields[1], 0, 64)
				val, err2 := strconv.ParseInt(fields[2], 0, 64)
				if err1 != nil || err2 != nil {
					return fail("bad .data operands %q", line)
				}
				p.Data[addr] = val
			case ".range":
				if len(fields) != 3 {
					return fail(".range wants LO HI")
				}
				lo, err1 := strconv.ParseInt(fields[1], 0, 64)
				hi, err2 := strconv.ParseInt(fields[2], 0, 64)
				if err1 != nil || err2 != nil {
					return fail("bad .range operands %q", line)
				}
				p.ValidRanges = append(p.ValidRanges, [2]int64{lo, hi})
			default:
				return fail("unknown directive %q", fields[0])
			}
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			blk, err := p.AddBlock(label)
			if err != nil {
				return fail("%v", err)
			}
			cur = blk
			continue
		}
		in, err := parseInst(line)
		if err != nil {
			return fail("%v", err)
		}
		if cur == nil {
			blk, _ := p.AddBlock("entry")
			cur = blk
		}
		cur.Insts = append(cur.Insts, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for statically known-good sources.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInst(line string) (isa.Inst, error) {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.TrimSpace(mnemonic)
	ops := splitOperands(rest)

	// Pseudo-instructions first.
	switch mnemonic {
	case "li":
		if err := wantOperands(ops, 2); err != nil {
			return isa.Inst{}, err
		}
		rd, err1 := parseReg(ops[0])
		imm, err2 := parseImm(ops[1])
		if err := firstErr(err1, err2); err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: isa.Zero, Imm: imm}, nil
	case "mv":
		if err := wantOperands(ops, 2); err != nil {
			return isa.Inst{}, err
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err := firstErr(err1, err2); err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs}, nil
	case "j":
		if err := wantOperands(ops, 1); err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpJal, Rd: isa.Zero, Label: ops[0]}, nil
	case "ret":
		return isa.Inst{Op: isa.OpJalr, Rd: isa.Zero, Rs1: isa.RA}, nil
	case "beqz", "bnez":
		if err := wantOperands(ops, 2); err != nil {
			return isa.Inst{}, err
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		op := isa.OpBeq
		if mnemonic == "bnez" {
			op = isa.OpBne
		}
		return isa.Inst{Op: op, Rs1: rs, Rs2: isa.Zero, Label: ops[1]}, nil
	case "breqz": // alias used in the paper's Figure 2 listing
		if err := wantOperands(ops, 2); err != nil {
			return isa.Inst{}, err
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: isa.OpBeq, Rs1: rs, Rs2: isa.Zero, Label: ops[1]}, nil
	case "addw", "subw": // RV64 word forms map onto our 64-bit ops
		mnemonic = strings.TrimSuffix(mnemonic, "w")
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return isa.Inst{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}

	in := isa.Inst{Op: op}
	switch op.Class() {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv, isa.ClassFPALU, isa.ClassFPDiv:
		switch op {
		case isa.OpLui:
			if err := wantOperands(ops, 2); err != nil {
				return in, err
			}
			rd, err1 := parseReg(ops[0])
			imm, err2 := parseImm(ops[1])
			if err := firstErr(err1, err2); err != nil {
				return in, err
			}
			in.Rd, in.Imm = rd, imm
		case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti:
			if err := wantOperands(ops, 3); err != nil {
				return in, err
			}
			rd, err1 := parseReg(ops[0])
			rs1, err2 := parseReg(ops[1])
			imm, err3 := parseImm(ops[2])
			if err := firstErr(err1, err2, err3); err != nil {
				return in, err
			}
			in.Rd, in.Rs1, in.Imm = rd, rs1, imm
		case isa.OpFsqrt, isa.OpFcvtIF, isa.OpFcvtFI:
			if err := wantOperands(ops, 2); err != nil {
				return in, err
			}
			rd, err1 := parseReg(ops[0])
			rs1, err2 := parseReg(ops[1])
			if err := firstErr(err1, err2); err != nil {
				return in, err
			}
			in.Rd, in.Rs1 = rd, rs1
		default:
			if err := wantOperands(ops, 3); err != nil {
				return in, err
			}
			rd, err1 := parseReg(ops[0])
			rs1, err2 := parseReg(ops[1])
			rs2, err3 := parseReg(ops[2])
			if err := firstErr(err1, err2, err3); err != nil {
				return in, err
			}
			in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		}
	case isa.ClassLoad:
		if err := wantOperands(ops, 2); err != nil {
			return in, err
		}
		rd, err1 := parseReg(ops[0])
		off, base, err2 := parseMemOperand(ops[1])
		if err := firstErr(err1, err2); err != nil {
			return in, err
		}
		in.Rd, in.Rs1, in.Imm = rd, base, off
	case isa.ClassStore:
		if err := wantOperands(ops, 2); err != nil {
			return in, err
		}
		val, err1 := parseReg(ops[0])
		off, base, err2 := parseMemOperand(ops[1])
		if err := firstErr(err1, err2); err != nil {
			return in, err
		}
		in.Rs2, in.Rs1, in.Imm = val, base, off
	case isa.ClassBranch:
		if op == isa.OpJalr {
			if err := wantOperands(ops, 3); err != nil {
				return in, err
			}
			rd, err1 := parseReg(ops[0])
			rs1, err2 := parseReg(ops[1])
			imm, err3 := parseImm(ops[2])
			if err := firstErr(err1, err2, err3); err != nil {
				return in, err
			}
			in.Rd, in.Rs1, in.Imm = rd, rs1, imm
			break
		}
		if err := wantOperands(ops, 3); err != nil {
			return in, err
		}
		rs1, err1 := parseReg(ops[0])
		rs2, err2 := parseReg(ops[1])
		if err := firstErr(err1, err2); err != nil {
			return in, err
		}
		in.Rs1, in.Rs2, in.Label = rs1, rs2, ops[2]
	case isa.ClassJump:
		if err := wantOperands(ops, 2); err != nil {
			return in, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		in.Rd, in.Label = rd, ops[1]
	case isa.ClassSetup:
		if op == isa.OpSetBranchID {
			if err := wantOperands(ops, 1); err != nil {
				return in, err
			}
			imm, err := parseImm(ops[0])
			if err != nil {
				return in, err
			}
			in.Imm = imm
		} else {
			if err := wantOperands(ops, 2); err != nil {
				return in, err
			}
			num, err1 := parseImm(ops[0])
			id, err2 := parseImm(ops[1])
			if err := firstErr(err1, err2); err != nil {
				return in, err
			}
			in.Imm, in.Aux = num, id
		}
	case isa.ClassSystem:
		switch op {
		case isa.OpGetCITEntry:
			if err := wantOperands(ops, 2); err != nil {
				return in, err
			}
			rd, err1 := parseReg(ops[0])
			imm, err2 := parseImm(ops[1])
			if err := firstErr(err1, err2); err != nil {
				return in, err
			}
			in.Rd, in.Imm = rd, imm
		case isa.OpSetCITEntry:
			if err := wantOperands(ops, 2); err != nil {
				return in, err
			}
			rs1, err1 := parseReg(ops[0])
			imm, err2 := parseImm(ops[1])
			if err := firstErr(err1, err2); err != nil {
				return in, err
			}
			in.Rs1, in.Imm = rs1, imm
		}
	case isa.ClassNop:
		// nop: no operands.
	}
	return in, nil
}

// splitOperands splits "a5, -20(s0)" or "8 1" into operand tokens.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func wantOperands(ops []string, n int) error {
	if len(ops) != n {
		return fmt.Errorf("want %d operands, got %d (%v)", n, len(ops), ops)
	}
	return nil
}

func parseReg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return r, nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMemOperand parses "-40(s0)".
func parseMemOperand(s string) (off int64, base isa.Reg, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	if open > 0 {
		off, err = parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	return off, base, err
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
