package experiments

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// TestRunRequestsStream: the streaming variant notifies exactly once per
// request index as it settles, the delivered stats are bit-identical to
// independent Simulate calls, duplicates coalesce, and the whole batch still
// costs one functional emulation per workload.
func TestRunRequestsStream(t *testing.T) {
	r := NewRunner()
	r.MaxInsts = 1 << 12
	r.ScaleDiv = 8

	policies := []pipeline.PolicyKind{pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba}
	var reqs []Request
	for _, w := range []string{"mcf", "CRC32"} {
		for _, p := range policies {
			reqs = append(reqs, Request{Workload: w, Config: skylake(p)})
		}
	}
	// A duplicate of the first request: it must coalesce (no extra runs)
	// yet still be notified under its own index.
	reqs = append(reqs, reqs[0])

	var mu sync.Mutex
	got := map[int]*pipeline.Stats{}
	calls := map[int]int{}
	err := r.RunRequestsStream(context.Background(), reqs, func(i int, st *pipeline.Stats, err error) {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
			return
		}
		mu.Lock()
		got[i] = st
		calls[i]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("notified %d of %d requests", len(got), len(reqs))
	}
	for i, n := range calls {
		if n != 1 {
			t.Errorf("request %d notified %d times", i, n)
		}
	}
	if emus := r.EmulationsRun(); emus != 2 {
		t.Errorf("emulationsRun = %d, want 2 (one per workload)", emus)
	}

	// Every delivered result must match an independent run bit-for-bit.
	solo := NewRunner()
	solo.MaxInsts = r.MaxInsts
	solo.ScaleDiv = r.ScaleDiv
	for i, q := range reqs {
		want, err := solo.Simulate(q.Workload, q.Config)
		if err != nil {
			t.Fatal(err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got[i])
		if string(wb) != string(gb) {
			t.Errorf("request %d (%s %v): streamed stats differ from solo run", i, q.Workload, q.Config.Policy)
		}
	}
}

// TestRunRequestsStreamCancelled: a cancelled context still notifies every
// request exactly once, with an error.
func TestRunRequestsStreamCancelled(t *testing.T) {
	r := NewRunner()
	r.MaxInsts = 1 << 12
	r.ScaleDiv = 8
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	reqs := []Request{
		{Workload: "mcf", Config: skylake(pipeline.InOrder)},
		{Workload: "CRC32", Config: skylake(pipeline.Noreba)},
	}
	var mu sync.Mutex
	notified := map[int]int{}
	errs := 0
	err := r.RunRequestsStream(ctx, reqs, func(i int, st *pipeline.Stats, err error) {
		mu.Lock()
		notified[i]++
		if err != nil {
			errs++
		}
		mu.Unlock()
	})
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if len(notified) != len(reqs) || errs != len(reqs) {
		t.Fatalf("notified=%v errs=%d, want every request notified once with an error", notified, errs)
	}
	for i, n := range notified {
		if n != 1 {
			t.Errorf("request %d notified %d times", i, n)
		}
	}
}
