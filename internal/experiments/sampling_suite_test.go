package experiments

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/sampling"
)

// samplingSuitePolicies are the commit policies the accuracy suite measures.
// In-order is the speedup baseline; NOREBA and non-speculative OoO commit are
// the two policies whose relative ordering is the paper's headline result.
var samplingSuitePolicies = []pipeline.PolicyKind{
	pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba,
}

const (
	// samplingTolerancePct bounds the per-run IPC error of a sampled estimate
	// vs the full simulation. The measured worst case at quick scale is ~9%
	// (libquantum under in-order commit — a boundary-phase artifact of short
	// measurement windows, see DESIGN.md); 12% leaves headroom without
	// accepting a broken estimator.
	samplingTolerancePct = 12.0
	// samplingSpeedupFloor is the minimum reduction in detailed-simulated
	// instructions the sampled suite must achieve over full simulation.
	samplingSpeedupFloor = 5.0
	// orderingMargin: speedup orderings are only asserted for policy pairs
	// whose full-run IPCs differ by more than this factor, so that two
	// estimates each within tolerance cannot legally swap the pair.
	orderingMargin = 1.30
)

// samplingCell is one workload × policy entry of the measured error table.
type samplingCell struct {
	FullIPC      float64 `json:"fullIPC"`
	SampledIPC   float64 `json:"sampledIPC"`
	ErrPct       float64 `json:"errPct"`
	FullFallback bool    `json:"fullFallback,omitempty"`
}

// samplingAccuracy is the committed error table
// (testdata/sampling_accuracy.json): per-cell IPC errors plus the aggregate
// detailed-instruction speedup of the sampled suite.
type samplingAccuracy struct {
	TolerancePct       float64                            `json:"tolerancePct"`
	SpeedupFloor       float64                            `json:"speedupFloor"`
	SampledDetailInsts int64                              `json:"sampledDetailInsts"`
	FullDetailInsts    int64                              `json:"fullDetailInsts"`
	DetailSpeedup      float64                            `json:"detailSpeedup"`
	Workloads          map[string]map[string]samplingCell `json:"workloads"`
}

func samplingGoldenPath() string { return filepath.Join("testdata", "sampling_accuracy.json") }

func roundTo(x float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	return math.Round(x*p) / p
}

func collectSamplingAccuracy(t *testing.T) samplingAccuracy {
	t.Helper()
	ctx := context.Background()
	acc := samplingAccuracy{
		TolerancePct: samplingTolerancePct,
		SpeedupFloor: samplingSpeedupFloor,
		Workloads:    map[string]map[string]samplingCell{},
	}
	for _, name := range mustNames(t, sharedRunner) {
		row := map[string]samplingCell{}
		for _, pk := range samplingSuitePolicies {
			full, err := sharedRunner.Simulate(name, skylake(pk))
			if err != nil {
				t.Fatalf("%s under %v (full): %v", name, pk, err)
			}
			est, err := sharedRunner.SimulateSampledContext(ctx, name, skylake(pk), sampling.Default())
			if err != nil {
				t.Fatalf("%s under %v (sampled): %v", name, pk, err)
			}
			if !est.Sampled {
				t.Fatalf("%s under %v: sampled run missing provenance flag", name, pk)
			}
			errPct := 100 * (est.IPC() - full.IPC()) / full.IPC()
			row[pk.String()] = samplingCell{
				FullIPC:      roundTo(full.IPC(), 4),
				SampledIPC:   roundTo(est.IPC(), 4),
				ErrPct:       roundTo(errPct, 3),
				FullFallback: est.SampledIntervals == 0,
			}
			acc.SampledDetailInsts += est.SampledDetailInsts
			acc.FullDetailInsts += full.Committed
		}
		acc.Workloads[name] = row
	}
	if acc.SampledDetailInsts > 0 {
		acc.DetailSpeedup = roundTo(float64(acc.FullDetailInsts)/float64(acc.SampledDetailInsts), 2)
	}
	return acc
}

// TestSampledAccuracySuite is the differential accuracy suite for sampled
// simulation: every suite workload under every measured commit policy is run
// both fully and sampled, and the suite asserts that (1) each sampled IPC is
// within samplingTolerancePct of the full-run IPC, (2) policy speedup
// orderings that are clearly separated in the full runs are preserved by the
// estimates, (3) sampling reduces the detailed-simulated instruction count by
// at least samplingSpeedupFloor×, and (4) the measured error table matches
// the committed testdata/sampling_accuracy.json (regenerate with -update).
func TestSampledAccuracySuite(t *testing.T) {
	got := collectSamplingAccuracy(t)

	names := make([]string, 0, len(got.Workloads))
	for name := range got.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		row := got.Workloads[name]
		for _, pk := range samplingSuitePolicies {
			cell := row[pk.String()]
			if math.Abs(cell.ErrPct) > samplingTolerancePct {
				t.Errorf("%s under %v: sampled IPC %.4f vs full %.4f (%.2f%% error, tolerance %.0f%%)",
					name, pk, cell.SampledIPC, cell.FullIPC, cell.ErrPct, samplingTolerancePct)
			}
		}
		// Ordering preservation: any pair clearly separated in the full runs
		// must keep its order in the estimates.
		for _, a := range samplingSuitePolicies {
			for _, b := range samplingSuitePolicies {
				ca, cb := row[a.String()], row[b.String()]
				if ca.FullIPC >= orderingMargin*cb.FullIPC && ca.SampledIPC <= cb.SampledIPC {
					t.Errorf("%s: full ordering %v (%.4f) > %v (%.4f) inverted by estimates (%.4f vs %.4f)",
						name, a, ca.FullIPC, b, cb.FullIPC, ca.SampledIPC, cb.SampledIPC)
				}
			}
		}
	}

	if got.DetailSpeedup < samplingSpeedupFloor {
		t.Errorf("sampled suite detailed %d insts vs full %d: %.2fx reduction, floor %.0fx",
			got.SampledDetailInsts, got.FullDetailInsts, got.DetailSpeedup, samplingSpeedupFloor)
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(samplingGoldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", samplingGoldenPath())
		return
	}

	data, err := os.ReadFile(samplingGoldenPath())
	if err != nil {
		t.Fatalf("no sampling accuracy table (%v); run with -update to create it", err)
	}
	var want samplingAccuracy
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		wantRow, ok := want.Workloads[name]
		if !ok {
			t.Errorf("workload %s missing from sampling accuracy table — rerun with -update", name)
			continue
		}
		for _, pk := range samplingSuitePolicies {
			g, w := got.Workloads[name][pk.String()], wantRow[pk.String()]
			if math.Abs(g.ErrPct-w.ErrPct) > 1e-6 || math.Abs(g.SampledIPC-w.SampledIPC) > 1e-6 {
				t.Errorf("%s under %s: measured err %.3f%% (IPC %.4f), table has %.3f%% (IPC %.4f) — rerun with -update if intentional",
					name, pk.String(), g.ErrPct, g.SampledIPC, w.ErrPct, w.SampledIPC)
			}
		}
	}
	if math.Abs(got.DetailSpeedup-want.DetailSpeedup) > 1e-6 {
		t.Errorf("detail speedup %.2fx, table has %.2fx — rerun with -update if intentional",
			got.DetailSpeedup, want.DetailSpeedup)
	}
}
