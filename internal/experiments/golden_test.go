package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_stats.json from the current simulator")

// goldenStats locks the simulator's headline numbers: exact per-workload
// cycle counts for every commit policy, and the Figure 6 geomean speedups
// over in-order commit. The simulator is deterministic, so any drift here is
// a behaviour change — intentional ones are recorded by rerunning with
// `go test ./internal/experiments -run TestGoldenStats -update`.
type goldenStats struct {
	// Cycles maps workload → policy name → cycle count.
	Cycles map[string]map[string]int64 `json:"cycles"`
	// Figure6Geomean maps policy name → geomean speedup vs in-order commit.
	Figure6Geomean map[string]float64 `json:"figure6Geomean"`
}

func goldenPath() string { return filepath.Join("testdata", "golden_stats.json") }

func collectGolden(t *testing.T) goldenStats {
	t.Helper()
	g := goldenStats{Cycles: map[string]map[string]int64{}, Figure6Geomean: map[string]float64{}}
	names := mustNames(t, sharedRunner)
	// The pinned generated workloads join the cycle table — their counts are
	// locked like any workload's — but never the Figure 6 geomean below,
	// which ranges over the curated `names` only.
	pinned := append(append([]string{}, names...), generatedNames(t)...)
	for _, name := range pinned {
		g.Cycles[name] = map[string]int64{}
		for _, pk := range suitePolicies {
			st, err := sharedRunner.Simulate(name, skylake(pk))
			if err != nil {
				t.Fatalf("%s under %v: %v", name, pk, err)
			}
			g.Cycles[name][pk.String()] = st.Cycles
		}
	}
	for _, pk := range suitePolicies {
		if pk == pipeline.InOrder {
			continue
		}
		var speedups []float64
		for _, name := range names {
			speedups = append(speedups,
				float64(g.Cycles[name][pipeline.InOrder.String()])/float64(g.Cycles[name][pk.String()]))
		}
		g.Figure6Geomean[pk.String()] = geomean(speedups)
	}
	return g
}

func TestGoldenStats(t *testing.T) {
	got := collectGolden(t)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath())
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("no golden stats (%v); run with -update to create them", err)
	}
	var want goldenStats
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden stats: %v", err)
	}

	for name, policies := range want.Cycles {
		for policy, cycles := range policies {
			if got.Cycles[name][policy] != cycles {
				t.Errorf("%s under %s: %d cycles, golden %d — rerun with -update if intentional",
					name, policy, got.Cycles[name][policy], cycles)
			}
		}
	}
	for name := range got.Cycles {
		if _, ok := want.Cycles[name]; !ok {
			t.Errorf("workload %s missing from golden stats — rerun with -update", name)
		}
	}
	// Geomeans are float-derived; allow only round-off slack so a real
	// speedup change (the paper's headline metric) still fails.
	for policy, wantGeo := range want.Figure6Geomean {
		if gotGeo := got.Figure6Geomean[policy]; math.Abs(gotGeo-wantGeo) > 1e-9 {
			t.Errorf("Figure 6 geomean for %s: %.9f, golden %.9f", policy, gotGeo, wantGeo)
		}
	}
}
