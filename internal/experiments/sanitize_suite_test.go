package experiments

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

var suitePolicies = []pipeline.PolicyKind{
	pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba,
	pipeline.IdealReconv, pipeline.SpecBR, pipeline.Spec,
}

// TestSuiteSanitized runs every suite workload under every commit policy
// (plus ECL variants) with the pipeline invariant checker on: the figures'
// cycle counts are only trustworthy if none of these runs can retire
// illegally or leak a structure entry. Since the scheduler rewrite, the
// sanitizer's per-cycle from-scratch ROB scans also cross-check every piece
// of incremental eligibility state — ready/candidate queue membership,
// wakeup counters, commit-boundary deques, resident indices, and the branch
// lists — so this cross product is the rewrite's correctness oracle. The
// ECL variants matter beyond NOREBA: early commit of loads creates
// committed residents under every candidate-queue policy, exercising the
// resident-cutoff bookkeeping the relaxed walks break on. The instruction
// budget is reduced so the full cross product stays test-sized; the
// sanitizer checks every cycle of every run regardless.
func TestSuiteSanitized(t *testing.T) {
	r := QuickRunner()
	r.Sanitize = true
	r.MaxInsts = 1 << 17

	var reqs []simReq
	for _, name := range mustNames(t, r) {
		for _, pk := range suitePolicies {
			reqs = append(reqs, simReq{workload: name, cfg: skylake(pk)})
		}
		for _, pk := range []pipeline.PolicyKind{
			pipeline.Noreba, pipeline.NonSpecOoO, pipeline.IdealReconv, pipeline.SpecBR,
		} {
			ecl := skylake(pk)
			ecl.ECL = true
			reqs = append(reqs, simReq{workload: name, cfg: ecl})
		}
	}
	if err := r.runAll(reqs); err != nil {
		t.Fatalf("sanitized suite reported a violation: %v", err)
	}
	if got := r.SimulationsRun(); got < int64(len(reqs)) {
		t.Fatalf("only %d of %d sanitized simulations ran", got, len(reqs))
	}
}
