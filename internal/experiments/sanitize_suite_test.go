package experiments

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

var suitePolicies = []pipeline.PolicyKind{
	pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba,
	pipeline.IdealReconv, pipeline.SpecBR, pipeline.Spec,
}

// TestSuiteSanitized runs every suite workload under every commit policy
// (plus the ECL variant of NOREBA) with the pipeline invariant checker on:
// the figures' cycle counts are only trustworthy if none of these runs can
// retire illegally or leak a structure entry. The instruction budget is
// reduced so the full cross product stays test-sized; the sanitizer checks
// every cycle of every run regardless.
func TestSuiteSanitized(t *testing.T) {
	r := QuickRunner()
	r.Sanitize = true
	r.MaxInsts = 1 << 17

	var reqs []simReq
	for _, name := range mustNames(t, r) {
		for _, pk := range suitePolicies {
			reqs = append(reqs, simReq{workload: name, cfg: skylake(pk)})
		}
		ecl := skylake(pipeline.Noreba)
		ecl.ECL = true
		reqs = append(reqs, simReq{workload: name, cfg: ecl})
	}
	if err := r.runAll(reqs); err != nil {
		t.Fatalf("sanitized suite reported a violation: %v", err)
	}
	if got := r.SimulationsRun(); got < int64(len(reqs)) {
		t.Fatalf("only %d of %d sanitized simulations ran", got, len(reqs))
	}
}
