// Package experiments regenerates every figure and table of the paper's
// evaluation (§6): each FigureN function fans the required simulations out
// over a parallel scheduler — deduplicating concurrent identical requests
// and reusing compiled programs and finished runs through a cache — and
// returns the same rows or point clouds the paper plots, as plain-text
// tables.
//
// Absolute cycle counts differ from the paper's gem5/SPEC numbers (the
// substrate here is this repository's simulator and synthetic kernels); the
// shapes — who wins, by roughly what factor, where configurations saturate —
// are the reproduction target. EXPERIMENTS.md records paper-vs-measured for
// every figure.
package experiments

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/sampling"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// ResultStore persists finished simulation results across processes, keyed
// by the canonical config hash (ConfigHash). Implementations must be safe
// for concurrent use. Get returns the stored statistics and whether the key
// was present; Put makes the result durable. The runner treats the store as
// a cache: a Put failure is counted but never fails the simulation.
type ResultStore interface {
	Get(key string) (*pipeline.Stats, bool)
	Put(key string, st *pipeline.Stats) error
}

// BlobStore is the optional binary-artifact side of a ResultStore: opaque
// byte blobs keyed by content hash, used to persist encoded sampling plans
// (sampling.EncodePlan) across process restarts. A runner whose Store also
// implements BlobStore loads plans from it before building and writes every
// freshly built plan back; a store that only holds results simply rebuilds
// plans each process. Like results, blob Puts are best-effort — a failure is
// counted, never fatal.
type BlobStore interface {
	GetBlob(key string) ([]byte, bool)
	PutBlob(key string, data []byte) error
}

// DefaultCacheLimit bounds the in-memory finished-run cache when
// Runner.CacheLimit is zero. The full figure suite needs a few hundred
// distinct configurations, so the default keeps every result of one
// regeneration resident while bounding a long-lived service process.
const DefaultCacheLimit = 4096

// Runner schedules simulations across figures: compiled workloads and
// finished runs are cached, concurrent identical requests are coalesced into
// one execution (singleflight), and distinct requests run in parallel on a
// worker pool. Results are independent of scheduling: each simulation
// consumes its own emulator stream and the model is deterministic, so a
// parallel run is bit-identical to a sequential one.
type Runner struct {
	// MaxInsts bounds each workload's dynamic instruction stream.
	MaxInsts int64
	// ScaleDiv divides every workload's default scale (for quick runs).
	ScaleDiv int
	// Workloads restricts the suite (nil = all registered workloads).
	Workloads []string
	// Parallelism caps simulations executing at once; 0 means GOMAXPROCS.
	Parallelism int
	// Sanitize runs every simulation with the pipeline sanitizer enabled:
	// any commit-legality or conservation violation fails the run with a
	// *sanity.Error instead of silently producing wrong figures.
	Sanitize bool
	// Sampling, when enabled, makes every Simulate call estimate its result
	// from SimPoint-style sampled simulation (see internal/sampling) instead
	// of a full detailed run. The normalized parameters are part of the
	// simulation key and the persistent-store hash, so sampled and full
	// results of the same configuration never alias. Per-call overrides go
	// through SimulateSampledContext.
	Sampling sampling.Params
	// Store, when non-nil, is consulted before executing a simulation and
	// updated after one: repeated requests across process restarts become
	// store hits instead of re-simulations. Set it before the first
	// Simulate call.
	Store ResultStore
	// CacheLimit bounds the in-memory finished-run cache (completed
	// entries; in-flight singleflight jobs are never evicted). 0 means
	// DefaultCacheLimit; negative means unbounded.
	CacheLimit int
	// BusSkew bounds how far the fastest core of a batched fan-out may run
	// ahead of the slowest on the shared trace bus (see emulator.Broadcast);
	// 0 means emulator.DefaultBusSkew.
	BusSkew int

	mu       sync.Mutex
	compiles map[string]*compileJob
	sims     map[simKey]*simJob
	plans    map[planKey]*planJob
	lru      *list.List // finished *simJob, front = most recently used

	semOnce sync.Once
	sem     chan struct{}

	simReqs     atomic.Int64 // Simulate calls (cache hits included)
	simsRun     atomic.Int64 // simulations actually executed
	sampledRuns atomic.Int64 // executed simulations that were sampled estimates
	plansBuilt  atomic.Int64 // sampling plans built (coalesced/cached excluded)
	storeHits   atomic.Int64 // results served from the persistent store
	storeMisses atomic.Int64 // store lookups that missed
	storeErrs   atomic.Int64 // store Put failures (non-fatal)

	planStoreHits   atomic.Int64 // plans decoded from the persistent store
	planStoreMisses atomic.Int64 // plan-store lookups that missed or were stale
	peakWindow      atomic.Int64 // largest sliding window across all runs

	emulationsRun  atomic.Int64 // functional passes executed (solo, batched or profiling)
	peakBusRecords atomic.Int64 // largest broadcast-bus high-water mark across batches
}

type compileJob struct {
	done chan struct{}
	res  *compiler.Result
	err  error
}

type simJob struct {
	done chan struct{}
	st   *pipeline.Stats
	err  error

	// Guarded by Runner.mu: a finished job sits in the LRU list under its
	// key; an in-flight job (finished == false) is never evicted, so a
	// concurrent eviction sweep cannot corrupt a singleflight in progress.
	key      simKey
	finished bool
	elem     *list.Element
}

// simKey identifies one simulation request. The config portion is a
// comparable struct mirroring every timing-relevant pipeline.Config field —
// not a formatted string, so a key can never alias two distinct configs
// through formatting ambiguity, and the compiler enforces that the key stays
// a pure value. The normalized sampling parameters are part of the key:
// a sampled estimate and a full run of the same configuration are distinct
// results and must never coalesce or serve each other from cache.
type simKey struct {
	workload string
	cfg      cfgKey
	sampling sampling.Params
}

// planKey identifies one sampling plan: plans depend only on the workload's
// compiled stream and the normalized sampling parameters, so every
// configuration estimated under the same (workload, Params) shares one plan
// — the profiling, pilot and checkpoint cost amortises across the suite.
type planKey struct {
	workload string
	params   sampling.Params
}

type planJob struct {
	done chan struct{}
	pl   *sampling.Plan
	err  error
}

// cfgKey mirrors pipeline.Config field-for-field, minus FenceGate and
// TraceSink (function/interface values: not comparable, and observation
// never changes results — the trace layer's timing-invariance tests hold
// that line). TestCfgKeyCoversConfig asserts by reflection that every other
// Config field has a same-named counterpart here and actually distinguishes
// keys, so a newly added Config field cannot silently alias cache entries.
//
// The struct doubles as the canonical serialisation for the persistent
// store: ConfigHash marshals it as JSON (fields emit in declaration order,
// so the encoding is deterministic) and hashes the result. Reordering or
// renaming fields therefore changes every store key — bump hashVersion when
// the Stats schema changes instead.
type cfgKey struct {
	Name                                            string
	FetchWidth, IssueWidth, CommitWidth             int
	ROBSize, IQSize, LQSize, SQSize, RenameRegs     int
	IntALUs, IntMulDiv, FPUs, LoadPorts, StorePorts int
	FrontendDepth, MispredictPenalty, RASEntries    int
	L1ISize, L1DSize, L2Size, L3Size                int
	L1Lat, L2Lat, L3Lat, MemLat                     int64
	CacheWays                                       int
	PrefetchEnabled                                 bool
	PrefetchDegree, PrefetchTable                   int
	Predictor                                       pipeline.PredictorKind
	Policy                                          pipeline.PolicyKind
	Selective                                       pipeline.SelectiveROBConfig
	ECL                                             bool
	FreeSetup                                       bool
	WindowFetchLimit                                int
	PipeTraceLimit                                  int
	Sanitize                                        bool
}

func keyOf(cfg pipeline.Config) cfgKey {
	return cfgKey{
		Name:              cfg.Name,
		FetchWidth:        cfg.FetchWidth,
		IssueWidth:        cfg.IssueWidth,
		CommitWidth:       cfg.CommitWidth,
		ROBSize:           cfg.ROBSize,
		IQSize:            cfg.IQSize,
		LQSize:            cfg.LQSize,
		SQSize:            cfg.SQSize,
		RenameRegs:        cfg.RenameRegs,
		IntALUs:           cfg.IntALUs,
		IntMulDiv:         cfg.IntMulDiv,
		FPUs:              cfg.FPUs,
		LoadPorts:         cfg.LoadPorts,
		StorePorts:        cfg.StorePorts,
		FrontendDepth:     cfg.FrontendDepth,
		MispredictPenalty: cfg.MispredictPenalty,
		RASEntries:        cfg.RASEntries,
		L1ISize:           cfg.L1ISize,
		L1DSize:           cfg.L1DSize,
		L2Size:            cfg.L2Size,
		L3Size:            cfg.L3Size,
		L1Lat:             cfg.L1Lat,
		L2Lat:             cfg.L2Lat,
		L3Lat:             cfg.L3Lat,
		MemLat:            cfg.MemLat,
		CacheWays:         cfg.CacheWays,
		PrefetchEnabled:   cfg.PrefetchEnabled,
		PrefetchDegree:    cfg.PrefetchDegree,
		PrefetchTable:     cfg.PrefetchTable,
		Predictor:         cfg.Predictor,
		Policy:            cfg.Policy,
		Selective:         cfg.Selective,
		ECL:               cfg.ECL,
		FreeSetup:         cfg.FreeSetup,
		WindowFetchLimit:  cfg.WindowFetchLimit,
		PipeTraceLimit:    cfg.PipeTraceLimit,
		Sanitize:          cfg.Sanitize,
	}
}

// hashVersion tags the store-key schema: bump it whenever pipeline.Stats
// gains or changes meaning of a field — or when the hashed request content
// itself changes shape, as in v2, which added the sampling parameters — so
// stale persisted results from an older binary can never be served as
// current ones.
const hashVersion = "noreba-result-v2"

// hashedConfig is the canonical content to be hashed for one simulation
// request: everything that can influence the resulting Stats. Sampling holds
// the normalized sampling parameters (the zero value for a full run), so a
// sampled estimate's store entry can never be served for a full-run request
// or vice versa.
type hashedConfig struct {
	Version  string
	Workload string
	MaxInsts int64
	ScaleDiv int
	Cfg      cfgKey
	Sampling sampling.Params
}

// ConfigHash returns the canonical content hash identifying one simulation
// request under this runner: the workload, the runner's scale parameters,
// every timing-relevant config field and the runner's sampling mode, after
// the same normalisations Simulate applies. Two requests share a hash if and
// only if they would produce identical Stats, so the hash is a safe
// persistent-store key.
func (r *Runner) ConfigHash(workload string, cfg pipeline.Config) string {
	return r.ConfigHashSampled(workload, cfg, r.Sampling)
}

// ConfigHashSampled is ConfigHash under an explicit per-request sampling
// mode, mirroring SimulateSampledContext.
func (r *Runner) ConfigHashSampled(workload string, cfg pipeline.Config, p sampling.Params) string {
	cfg = normalize(cfg)
	if r.Sanitize {
		cfg.Sanitize = true
	}
	return hashConfig(workload, r.MaxInsts, r.ScaleDiv, cfg, p.Normalize())
}

func hashConfig(workload string, maxInsts int64, scaleDiv int, cfg pipeline.Config, p sampling.Params) string {
	b, err := json.Marshal(hashedConfig{
		Version:  hashVersion,
		Workload: workload,
		MaxInsts: maxInsts,
		ScaleDiv: scaleDiv,
		Cfg:      keyOf(cfg),
		Sampling: p,
	})
	if err != nil {
		// cfgKey is a pure value struct; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// NewRunner returns a full-scale runner over the whole suite.
func NewRunner() *Runner {
	return &Runner{
		MaxInsts: 1 << 20, ScaleDiv: 1,
		compiles: map[string]*compileJob{},
		sims:     map[simKey]*simJob{},
		plans:    map[planKey]*planJob{},
		lru:      list.New(),
	}
}

// QuickRunner returns a reduced-scale runner for tests.
func QuickRunner() *Runner {
	r := NewRunner()
	r.ScaleDiv = 2
	r.Workloads = []string{"mcf", "bzip2", "astar", "CRC32", "dijkstra", "libquantum", "sha", "gobmk"}
	return r
}

// suite returns the workload list this runner evaluates. The default is the
// curated figure suite: generated workloads (internal/workgen) are reachable
// by naming them in Workloads or in explicit Requests, but must never grow
// the figures — their cycle counts are correctness collateral, not results.
// An unknown name in Workloads is a configuration error reported to the
// caller, not a panic.
func (r *Runner) suite() ([]workloads.Workload, error) {
	if r.Workloads == nil {
		return workloads.Curated(), nil
	}
	var out []workloads.Workload
	for _, name := range r.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad workload suite: %w", err)
		}
		out = append(out, w)
	}
	return out, nil
}

// names returns the suite's workload names.
func (r *Runner) names() ([]string, error) {
	ws, err := r.suite()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, w := range ws {
		out = append(out, w.Name)
	}
	return out, nil
}

// compiled returns the annotated image and metadata of a workload, building
// them on first use; concurrent requests for the same workload coalesce into
// one compilation.
func (r *Runner) compiled(name string) (*compiler.Result, error) {
	r.mu.Lock()
	if j, ok := r.compiles[name]; ok {
		r.mu.Unlock()
		<-j.done
		return j.res, j.err
	}
	j := &compileJob{done: make(chan struct{})}
	r.compiles[name] = j
	r.mu.Unlock()

	j.res, j.err = compileWorkload(name, r.ScaleDiv)
	close(j.done)
	return j.res, j.err
}

// Plan returns the sampling plan the runner would use for workload under its
// configured sampling mode, building (or loading from the plan store) and
// caching it like SimulateSampledContext does. Callers use it to inspect plan
// properties — e.g. whether the program is too short to sample (Plan.Full) —
// without running an estimate.
func (r *Runner) Plan(ctx context.Context, workload string) (*sampling.Plan, error) {
	return r.planFor(ctx, workload, r.Sampling.Normalize())
}

// planFor returns the sampling plan for (workload, p), building it on first
// use on a worker-pool slot; concurrent requests for the same key coalesce
// into one build. p must already be normalized. A cancelled build is removed
// so a later request retries it; deterministic failures stay cached like
// simulation failures do.
func (r *Runner) planFor(ctx context.Context, workload string, p sampling.Params) (*sampling.Plan, error) {
	key := planKey{workload: workload, params: p}
	r.mu.Lock()
	if j, ok := r.plans[key]; ok {
		r.mu.Unlock()
		select {
		case <-j.done:
			return j.pl, j.err
		case <-ctx.Done():
			return nil, fmt.Errorf("experiments: %s: plan: %w", workload, context.Cause(ctx))
		}
	}
	j := &planJob{done: make(chan struct{})}
	r.plans[key] = j
	r.mu.Unlock()

	j.pl, j.err = r.buildPlan(ctx, workload, p)

	r.mu.Lock()
	if j.err != nil && (errors.Is(j.err, context.Canceled) || errors.Is(j.err, context.DeadlineExceeded)) {
		if r.plans[key] == j {
			delete(r.plans, key)
		}
	}
	r.mu.Unlock()
	close(j.done)
	return j.pl, j.err
}

func (r *Runner) buildPlan(ctx context.Context, workload string, p sampling.Params) (*sampling.Plan, error) {
	res, err := r.compiled(workload)
	if err != nil {
		return nil, err
	}
	// Consult the persistent plan store before paying for a build: the key
	// covers the compiled image's content hash, the stream bound and the
	// normalized parameters, so a decoded plan is exactly the plan a build
	// would produce. A missing, stale (old format version) or mismatched
	// (recompiled workload) blob is a miss and the plan is rebuilt.
	var (
		bs      BlobStore
		blobKey string
	)
	if b, ok := r.Store.(BlobStore); ok {
		bs = b
		blobKey = sampling.PlanKey(res.Image, r.MaxInsts, p)
		if data, ok := bs.GetBlob(blobKey); ok {
			if pl, err := sampling.LoadPlan(data, res.Image, r.MaxInsts, p); err == nil {
				r.planStoreHits.Add(1)
				return pl, nil
			}
		}
		r.planStoreMisses.Add(1)
	}
	if err := r.acquire(ctx); err != nil {
		return nil, fmt.Errorf("experiments: %s: plan: %w", workload, err)
	}
	defer r.release()
	r.plansBuilt.Add(1)
	r.emulationsRun.Add(1) // the profiling pass is one functional emulation
	pl, err := sampling.BuildPlanContext(ctx, res.Image, res.Meta, r.MaxInsts, p)
	if err != nil {
		return nil, err
	}
	if bs != nil {
		if err := bs.PutBlob(blobKey, sampling.EncodePlan(pl)); err != nil {
			r.storeErrs.Add(1)
		}
	}
	return pl, nil
}

func compileWorkload(name string, scaleDiv int) (*compiler.Result, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	scale := w.DefaultScale / scaleDiv
	if scale < 2 {
		scale = 2
	}
	res, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return res, nil
}

// acquire claims a worker-pool slot, or gives up when ctx is cancelled
// first; release returns the slot. The pool is sized lazily so callers may
// set Parallelism any time before the first run.
func (r *Runner) acquire(ctx context.Context) error {
	select {
	case r.pool() <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// pool lazily sizes and returns the worker-pool semaphore. poolSize (its
// capacity) also bounds the per-estimate window fan-out: a sampled estimate
// holds one pool slot and runs up to poolSize representative windows
// concurrently inside it, mirroring how a batched fan-out holds one slot for
// N bus views.
func (r *Runner) pool() chan struct{} {
	r.semOnce.Do(func() {
		n := r.Parallelism
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		r.sem = make(chan struct{}, n)
	})
	return r.sem
}

func (r *Runner) poolSize() int { return cap(r.pool()) }

func (r *Runner) release() { <-r.sem }

// normalize applies the policy convention before keying: policies that do
// not consume compiler annotations (the paper's baselines and speculative
// oracles) run as if on the original binary, so setup instructions do not
// occupy fetch slots for them.
func normalize(cfg pipeline.Config) pipeline.Config {
	switch cfg.Policy {
	case pipeline.Noreba, pipeline.IdealReconv:
		// Annotated binary: setup instructions cost fetch slots unless the
		// experiment explicitly models the "perfect" sideband (§6.1.2).
	default:
		cfg.FreeSetup = true
	}
	return cfg
}

// Simulate runs (or returns the cached run of) one workload under cfg.
// Concurrent calls with the same (workload, cfg) coalesce into a single
// execution; distinct requests proceed in parallel up to the pool size.
func (r *Runner) Simulate(workload string, cfg pipeline.Config) (*pipeline.Stats, error) {
	return r.SimulateContext(context.Background(), workload, cfg)
}

// SimulateContext is Simulate with cooperative cancellation. A caller whose
// context ends while waiting — for a worker slot, for a coalesced twin, or
// mid-simulation — returns an error wrapping the context's cause. A
// cancelled execution is removed from the cache so a later request re-runs
// it instead of being served the cancellation; other results (including
// deterministic failures) stay cached.
func (r *Runner) SimulateContext(ctx context.Context, workload string, cfg pipeline.Config) (*pipeline.Stats, error) {
	return r.SimulateSampledContext(ctx, workload, cfg, r.Sampling)
}

// SimulateSampledContext is SimulateContext under an explicit sampling mode,
// overriding the runner-level Sampling knob for this request: the zero
// Params forces a full run, an enabled Params a sampled estimate. Sampled
// and full results of the same configuration live under distinct cache keys
// and store hashes.
func (r *Runner) SimulateSampledContext(ctx context.Context, workload string, cfg pipeline.Config, p sampling.Params) (*pipeline.Stats, error) {
	r.simReqs.Add(1)
	cfg = normalize(cfg)
	if r.Sanitize {
		cfg.Sanitize = true
	}
	p = p.Normalize()
	key := simKey{workload: workload, cfg: keyOf(cfg), sampling: p}

	r.mu.Lock()
	if j, ok := r.sims[key]; ok {
		if j.finished && j.elem != nil {
			r.lru.MoveToFront(j.elem)
		}
		r.mu.Unlock()
		select {
		case <-j.done:
			return j.st, j.err
		case <-ctx.Done():
			return nil, fmt.Errorf("experiments: %s: %w", workload, context.Cause(ctx))
		}
	}
	j := &simJob{done: make(chan struct{}), key: key}
	r.sims[key] = j
	r.mu.Unlock()

	st, err := r.runSim(ctx, workload, cfg, p)
	r.finishJob(j, st, err)
	return j.st, j.err
}

// finishJob records a claimed singleflight job's outcome and publishes it to
// waiters. A cancellation is not cached — the next identical request should
// execute — while results and deterministic failures enter the LRU cache.
func (r *Runner) finishJob(j *simJob, st *pipeline.Stats, err error) {
	j.st, j.err = st, err
	r.mu.Lock()
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Waiters coalesced onto this job still observe the error.
		if r.sims[j.key] == j {
			delete(r.sims, j.key)
		}
	} else {
		j.finished = true
		j.elem = r.lru.PushFront(j)
		r.evictLocked()
	}
	r.mu.Unlock()
	close(j.done)
}

// evictLocked trims the finished-run cache to the configured bound, oldest
// first. Only finished jobs are on the LRU list, so an in-flight
// singleflight execution can never be evicted out from under its waiters.
// Callers hold r.mu.
func (r *Runner) evictLocked() {
	limit := r.CacheLimit
	if limit == 0 {
		limit = DefaultCacheLimit
	}
	if limit < 0 {
		return
	}
	for r.lru.Len() > limit {
		elem := r.lru.Back()
		j := elem.Value.(*simJob)
		r.lru.Remove(elem)
		j.elem = nil
		if r.sims[j.key] == j {
			delete(r.sims, j.key)
		}
	}
}

// runSim executes one simulation on the worker pool, consulting the
// persistent store first. Each executed run drives its own live emulator
// through the pipeline's sliding window, so no materialized trace is ever
// held: per-run memory is bounded by the in-flight span. With sampling
// enabled the detailed run is replaced by a plan estimate: the plan is built
// (or reused) once per (workload, Params) and only the representative
// windows are simulated under cfg.
func (r *Runner) runSim(ctx context.Context, workload string, cfg pipeline.Config, p sampling.Params) (*pipeline.Stats, error) {
	var hash string
	if r.Store != nil {
		hash = hashConfig(workload, r.MaxInsts, r.ScaleDiv, cfg, p)
		if st, ok := r.Store.Get(hash); ok {
			r.storeHits.Add(1)
			return st, nil
		}
		r.storeMisses.Add(1)
	}
	res, err := r.compiled(workload)
	if err != nil {
		return nil, err
	}
	var st *pipeline.Stats
	if p.Enabled {
		pl, err := r.planFor(ctx, workload, p)
		if err != nil {
			return nil, err
		}
		if err := r.acquire(ctx); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", workload, err)
		}
		defer r.release()
		r.simsRun.Add(1)
		r.sampledRuns.Add(1)
		// Sampling errors already carry workload/interval/policy provenance
		// (see sampling.runWindow), so no re-wrap here — callers used to
		// stack a second, differently-worded prefix on the same facts.
		st, err = pl.EstimateContextN(ctx, cfg, res.Meta, r.poolSize())
		if err != nil {
			return nil, err
		}
	} else {
		if err := r.acquire(ctx); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", workload, err)
		}
		defer r.release()
		r.simsRun.Add(1)
		r.emulationsRun.Add(1)
		src := emulator.NewSource(emulator.New(res.Image), r.MaxInsts)
		st, err = pipeline.NewCoreFromSource(cfg, src, res.Meta).RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s under %v: %w", workload, cfg.Policy, err)
		}
	}
	casMax(&r.peakWindow, st.WindowPeak)
	if r.Store != nil {
		if err := r.Store.Put(hash, st); err != nil {
			r.storeErrs.Add(1)
		}
	}
	return st, nil
}

// casMax lifts v into the atomic high-water mark m.
func casMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// simReq names one simulation for the fan-out helpers. idx is the request's
// position in the caller's slice, carried through grouping so streaming
// callers can be notified per original request.
type simReq struct {
	workload string
	cfg      pipeline.Config
	idx      int
}

// Request names one simulation for RunRequests: a workload and a core
// configuration. Callers can gather the requests of several figures (see
// FigureRequests) and batch them through one scheduling pass, so every
// configuration of a workload shares a single functional emulation.
type Request struct {
	Workload string
	Config   pipeline.Config
}

// RunRequests warms the runner's cache with every request, batching
// same-workload full-detail requests onto a shared broadcast trace bus: one
// functional emulation feeds all N pipeline cores in lockstep (see
// emulator.Broadcast). Results are bit-identical to independent Simulate
// calls — each view delivers the exact solo stream and the model is
// deterministic — and singleflight/cache/store semantics are preserved, so
// subsequent Simulate calls are guaranteed hits. The first error is
// returned after all requests settle.
func (r *Runner) RunRequests(ctx context.Context, reqs []Request) error {
	return r.RunRequestsStream(ctx, reqs, nil)
}

// RunRequestsStream is RunRequests with a per-request completion callback:
// when notify is non-nil, notify(i, st, err) fires exactly once for each
// reqs[i] as that request settles — whether from the in-memory cache, the
// persistent store, a solo run or a batched fan-out — so callers can stream
// results as they land instead of waiting for the whole batch. notify may be
// invoked concurrently from several goroutines and must be safe for that;
// requests cancelled by ctx are notified with the wrapped cancellation
// cause. Batching, singleflight, cache and store semantics are exactly
// RunRequests's.
func (r *Runner) RunRequestsStream(ctx context.Context, reqs []Request, notify func(i int, st *pipeline.Stats, err error)) error {
	qs := make([]simReq, len(reqs))
	for i, q := range reqs {
		qs[i] = simReq{workload: q.Workload, cfg: q.Config, idx: i}
	}
	return r.runAllContext(ctx, qs, notify)
}

// runAll schedules every request and waits for all of them, returning the
// first error. Figures call it to warm the cache, then assemble their tables
// from guaranteed hits.
func (r *Runner) runAll(reqs []simReq) error {
	return r.runAllContext(context.Background(), reqs, nil)
}

// runAllContext groups the requests by workload and runs each group's
// full-detail simulations off one shared functional emulation via the
// broadcast bus; sampled-mode runners fall back to the per-request path
// (sampling already amortises the functional pass through its shared plan).
// notify, when non-nil, is invoked once per request as it settles.
func (r *Runner) runAllContext(ctx context.Context, reqs []simReq, notify func(i int, st *pipeline.Stats, err error)) error {
	var firstErr error
	var mu sync.Mutex
	noteErr := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	if r.Sampling.Normalize().Enabled {
		for _, q := range reqs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := r.SimulateContext(ctx, q.workload, q.cfg)
				if notify != nil {
					notify(q.idx, st, err)
				}
				noteErr(err)
			}()
		}
		wg.Wait()
		return firstErr
	}

	groups := map[string][]simReq{}
	var order []string
	for _, q := range reqs {
		if _, ok := groups[q.workload]; !ok {
			order = append(order, q.workload)
		}
		groups[q.workload] = append(groups[q.workload], q)
	}
	for _, w := range order {
		wg.Add(1)
		go func(group []simReq) {
			defer wg.Done()
			noteErr(r.simulateGroup(ctx, group, notify))
		}(groups[w])
	}
	wg.Wait()
	return firstErr
}

// ownedJob is one singleflight job this group claimed and must complete.
type ownedJob struct {
	j    *simJob
	cfg  pipeline.Config
	hash string
}

// simulateGroup completes one workload's batch of full-detail requests. It
// claims each request's singleflight job (or registers as a waiter on a job
// another caller owns), serves claimed jobs from the persistent store where
// possible, then runs the remainder: a lone survivor takes the classic solo
// path, two or more share a single functional emulation through the
// broadcast bus. Every job is finished with exactly the semantics of
// SimulateSampledContext, so concurrent Simulate callers observe no
// difference. notify, when non-nil, fires once per group entry as its job
// settles (from its own goroutine, so a streaming consumer sees rows as they
// finish, not when the whole batch does).
func (r *Runner) simulateGroup(ctx context.Context, group []simReq, notify func(i int, st *pipeline.Stats, err error)) error {
	workload := group[0].workload
	p := sampling.Params{}.Normalize() // full-detail runs only reach here

	var owned []ownedJob
	var waiters []*simJob
	var notifyWG sync.WaitGroup
	r.mu.Lock()
	for _, q := range group {
		r.simReqs.Add(1)
		cfg := normalize(q.cfg)
		if r.Sanitize {
			cfg.Sanitize = true
		}
		key := simKey{workload: workload, cfg: keyOf(cfg), sampling: p}
		j, have := r.sims[key]
		if have {
			if j.finished && j.elem != nil {
				r.lru.MoveToFront(j.elem)
			}
			waiters = append(waiters, j)
		} else {
			j = &simJob{done: make(chan struct{}), key: key}
			r.sims[key] = j
			owned = append(owned, ownedJob{j: j, cfg: cfg})
		}
		if notify != nil {
			notifyWG.Add(1)
			go func(idx int, j *simJob) {
				defer notifyWG.Done()
				select {
				case <-j.done:
					notify(idx, j.st, j.err)
				case <-ctx.Done():
					notify(idx, nil, fmt.Errorf("experiments: %s: %w", workload, context.Cause(ctx)))
				}
			}(q.idx, j)
		}
	}
	r.mu.Unlock()
	defer notifyWG.Wait()

	// Serve owned jobs from the persistent store before paying for any
	// execution; the rest stay pending.
	pending := owned[:0]
	for _, o := range owned {
		if r.Store != nil {
			o.hash = hashConfig(workload, r.MaxInsts, r.ScaleDiv, o.cfg, p)
			if st, ok := r.Store.Get(o.hash); ok {
				r.storeHits.Add(1)
				r.finishJob(o.j, st, nil)
				continue
			}
			r.storeMisses.Add(1)
		}
		pending = append(pending, o)
	}

	if len(pending) > 0 {
		res, err := r.compiled(workload)
		switch {
		case err != nil:
			for _, o := range pending {
				r.finishJob(o.j, nil, err)
			}
		case len(pending) == 1:
			o := pending[0]
			st, err := r.execSolo(ctx, workload, o, res)
			r.finishJob(o.j, st, err)
		default:
			r.execFanout(ctx, workload, pending, res)
		}
	}

	var firstErr error
	for _, o := range pending {
		if o.j.err != nil && firstErr == nil {
			firstErr = o.j.err
		}
	}
	for _, j := range waiters {
		select {
		case <-j.done:
			if j.err != nil && firstErr == nil {
				firstErr = j.err
			}
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %s: %w", workload, context.Cause(ctx))
			}
		}
	}
	return firstErr
}

// execSolo runs one claimed full-detail job on its own emulator stream,
// mirroring runSim's execution arm (the store was already consulted).
func (r *Runner) execSolo(ctx context.Context, workload string, o ownedJob, res *compiler.Result) (*pipeline.Stats, error) {
	if err := r.acquire(ctx); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", workload, err)
	}
	defer r.release()
	r.simsRun.Add(1)
	r.emulationsRun.Add(1)
	src := emulator.NewSource(emulator.New(res.Image), r.MaxInsts)
	st, err := pipeline.NewCoreFromSource(o.cfg, src, res.Meta).RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("%s under %v: %w", workload, o.cfg.Policy, err)
	}
	casMax(&r.peakWindow, st.WindowPeak)
	if r.Store != nil {
		if err := r.Store.Put(o.hash, st); err != nil {
			r.storeErrs.Add(1)
		}
	}
	return st, nil
}

// execFanout runs N claimed same-workload jobs off one functional emulation:
// a broadcast bus wraps a single live emulator source and each core consumes
// its own lockstep view on its own goroutine. The batch holds one worker-pool
// slot — its goroutines block on each other through the bus skew bound, so
// giving each a slot could deadlock the pool — and every job is finished
// individually with the usual store/cache semantics.
func (r *Runner) execFanout(ctx context.Context, workload string, batch []ownedJob, res *compiler.Result) {
	if err := r.acquire(ctx); err != nil {
		err = fmt.Errorf("experiments: %s: %w", workload, err)
		for _, o := range batch {
			r.finishJob(o.j, nil, err)
		}
		return
	}
	defer r.release()
	r.emulationsRun.Add(1)

	bus := emulator.NewBroadcast(emulator.NewSource(emulator.New(res.Image), r.MaxInsts), r.BusSkew)
	views := make([]*emulator.BusView, len(batch))
	for i := range batch {
		views[i] = bus.View()
	}
	var wg sync.WaitGroup
	for i, o := range batch {
		wg.Add(1)
		go func(o ownedJob, view *emulator.BusView) {
			defer wg.Done()
			// An early exit (error, cancellation) must detach the view or its
			// stalled cursor wedges every sibling on the bus.
			defer view.Close()
			r.simsRun.Add(1)
			st, err := pipeline.NewCoreFromSource(o.cfg, view, res.Meta).RunContext(ctx)
			if err != nil {
				r.finishJob(o.j, nil, fmt.Errorf("%s under %v: %w", workload, o.cfg.Policy, err))
				return
			}
			casMax(&r.peakWindow, st.WindowPeak)
			if r.Store != nil {
				if err := r.Store.Put(o.hash, st); err != nil {
					r.storeErrs.Add(1)
				}
			}
			r.finishJob(o.j, st, nil)
		}(o, views[i])
	}
	wg.Wait()
	casMax(&r.peakBusRecords, int64(bus.PeakRecords()))
}

// SimulateCalls returns how many Simulate requests the runner has received,
// cache hits included.
func (r *Runner) SimulateCalls() int64 { return r.simReqs.Load() }

// SimulationsRun returns how many simulations actually executed (requests
// minus coalesced, cached and store-served ones).
func (r *Runner) SimulationsRun() int64 { return r.simsRun.Load() }

// StoreHits returns how many results were served from the persistent store.
func (r *Runner) StoreHits() int64 { return r.storeHits.Load() }

// StoreMisses returns how many persistent-store lookups missed.
func (r *Runner) StoreMisses() int64 { return r.storeMisses.Load() }

// StorePutErrors returns how many store writes failed (each counted run
// still returned its result to the caller).
func (r *Runner) StorePutErrors() int64 { return r.storeErrs.Load() }

// SampledRuns returns how many executed simulations were sampled estimates.
func (r *Runner) SampledRuns() int64 { return r.sampledRuns.Load() }

// PlansBuilt returns how many sampling plans were built (coalesced and
// reused requests excluded).
func (r *Runner) PlansBuilt() int64 { return r.plansBuilt.Load() }

// PlanStoreHits returns how many sampling plans were decoded from the
// persistent plan store instead of built.
func (r *Runner) PlanStoreHits() int64 { return r.planStoreHits.Load() }

// PlanStoreMisses returns how many plan-store lookups missed — no blob, a
// stale format version, or a mismatched image/parameter hash — and fell
// through to a build.
func (r *Runner) PlanStoreMisses() int64 { return r.planStoreMisses.Load() }

// UniqueSimulations returns the number of distinct (workload, config) keys
// currently resident in the in-memory cache (in-flight included).
func (r *Runner) UniqueSimulations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sims)
}

// PeakWindow returns the largest sliding-window high-water mark (live
// instruction records) observed across all simulations.
func (r *Runner) PeakWindow() int64 { return r.peakWindow.Load() }

// EmulationsRun returns how many functional emulation passes executed: one
// per solo full-detail run, one per broadcast-bus batch (however many cores
// it fed) and one per sampling plan's profiling pass. The gap between
// SimulationsRun and EmulationsRun is the fan-out saving.
func (r *Runner) EmulationsRun() int64 { return r.emulationsRun.Load() }

// PeakBusRecords returns the largest broadcast-bus high-water mark (buffered
// trace records, i.e. realized consumer skew) across all batched fan-outs.
func (r *Runner) PeakBusRecords() int64 { return r.peakBusRecords.Load() }

// skylake returns the paper's default evaluation core (SKL + DCPT).
func skylake(policy pipeline.PolicyKind) pipeline.Config {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = policy
	return cfg
}
