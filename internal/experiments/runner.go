// Package experiments regenerates every figure and table of the paper's
// evaluation (§6): each FigureN function runs the required simulations —
// reusing compiled programs, traces and finished runs through a cache — and
// returns the same rows or point clouds the paper plots, as plain-text
// tables.
//
// Absolute cycle counts differ from the paper's gem5/SPEC numbers (the
// substrate here is this repository's simulator and synthetic kernels); the
// shapes — who wins, by roughly what factor, where configurations saturate —
// are the reproduction target. EXPERIMENTS.md records paper-vs-measured for
// every figure.
package experiments

import (
	"fmt"
	"sync"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// Runner caches compiled workloads, traces and simulation results across
// figures.
type Runner struct {
	// MaxInsts bounds each workload's dynamic trace length.
	MaxInsts int64
	// ScaleDiv divides every workload's default scale (for quick runs).
	ScaleDiv int
	// Workloads restricts the suite (nil = all registered workloads).
	Workloads []string

	mu     sync.Mutex
	traces map[string]*compiledWorkload
	sims   map[string]*pipeline.Stats
}

type compiledWorkload struct {
	res   *compiler.Result
	trace *emulator.Trace
}

// NewRunner returns a full-scale runner over the whole suite.
func NewRunner() *Runner {
	return &Runner{MaxInsts: 1 << 20, ScaleDiv: 1, traces: map[string]*compiledWorkload{}, sims: map[string]*pipeline.Stats{}}
}

// QuickRunner returns a reduced-scale runner for tests.
func QuickRunner() *Runner {
	r := NewRunner()
	r.ScaleDiv = 2
	r.Workloads = []string{"mcf", "bzip2", "astar", "CRC32", "dijkstra", "libquantum", "sha", "gobmk"}
	return r
}

// suite returns the workload list this runner evaluates.
func (r *Runner) suite() []workloads.Workload {
	if r.Workloads == nil {
		return workloads.All()
	}
	var out []workloads.Workload
	for _, name := range r.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

// names returns the suite's workload names.
func (r *Runner) names() []string {
	var out []string
	for _, w := range r.suite() {
		out = append(out, w.Name)
	}
	return out
}

// compiled returns the annotated image, metadata and dynamic trace of a
// workload, building them on first use.
func (r *Runner) compiled(name string) (*compiledWorkload, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cw, ok := r.traces[name]; ok {
		return cw, nil
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	scale := w.DefaultScale / r.ScaleDiv
	if scale < 2 {
		scale = 2
	}
	res, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	tr, err := emulator.New(res.Image).Run(r.MaxInsts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	cw := &compiledWorkload{res: res, trace: tr}
	r.traces[name] = cw
	return cw, nil
}

// cfgKey builds a cache key covering every config field that affects timing.
func cfgKey(workload string, cfg pipeline.Config) string {
	return fmt.Sprintf("%s|%s|%v|rob%d iq%d lq%d sq%d rf%d|w%d/%d/%d|pf%v d%d|ecl%v free%v|sel%+v|pred%d|mp%d",
		workload, cfg.Name, cfg.Policy, cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize, cfg.RenameRegs,
		cfg.FetchWidth, cfg.IssueWidth, cfg.CommitWidth,
		cfg.PrefetchEnabled, cfg.PrefetchDegree, cfg.ECL, cfg.FreeSetup,
		cfg.Selective, cfg.Predictor, cfg.MispredictPenalty)
}

// Simulate runs (or returns the cached run of) one workload under cfg.
// Policies that do not consume compiler annotations (the paper's baselines
// and speculative oracles) run as if on the original binary: setup
// instructions do not occupy fetch slots for them.
func (r *Runner) Simulate(workload string, cfg pipeline.Config) (*pipeline.Stats, error) {
	switch cfg.Policy {
	case pipeline.Noreba, pipeline.IdealReconv:
		// Annotated binary: setup instructions cost fetch slots unless the
		// experiment explicitly models the "perfect" sideband (§6.1.2).
	default:
		cfg.FreeSetup = true
	}

	key := cfgKey(workload, cfg)
	r.mu.Lock()
	if st, ok := r.sims[key]; ok {
		r.mu.Unlock()
		return st, nil
	}
	r.mu.Unlock()

	cw, err := r.compiled(workload)
	if err != nil {
		return nil, err
	}
	st, err := pipeline.NewCore(cfg, cw.trace, cw.res.Meta).Run()
	if err != nil {
		return nil, fmt.Errorf("%s under %v: %w", workload, cfg.Policy, err)
	}
	r.mu.Lock()
	r.sims[key] = st
	r.mu.Unlock()
	return st, nil
}

// skylake returns the paper's default evaluation core (SKL + DCPT).
func skylake(policy pipeline.PolicyKind) pipeline.Config {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = policy
	return cfg
}
