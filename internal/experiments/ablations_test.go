package experiments

import (
	"strings"
	"testing"
)

func TestAblationCITKnee(t *testing.T) {
	tab, err := sharedRunner.AblationCIT()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "CIT 128") {
		t.Errorf("ablation table malformed:\n%s", tab.String())
	}
}

func TestAblationLoopMarkingCostsCycles(t *testing.T) {
	tab, err := sharedRunner.AblationLoopMarking()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "slowdown") {
		t.Errorf("ablation table malformed:\n%s", s)
	}
}

func TestAblationBITSize(t *testing.T) {
	tab, err := sharedRunner.AblationBITSize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "BIT 8") {
		t.Errorf("ablation table malformed:\n%s", tab.String())
	}
}

func TestAblationPredictors(t *testing.T) {
	tab, err := sharedRunner.AblationPredictors()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "oracle") {
		t.Errorf("ablation table malformed:\n%s", tab.String())
	}
}
