package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// fanoutConfigs is the differential matrix: all six commit policies plus the
// ECL ablations of the two Figure 14 rows.
func fanoutConfigs() []pipeline.Config {
	cfgs := []pipeline.Config{
		skylake(pipeline.InOrder),
		skylake(pipeline.NonSpecOoO),
		skylake(pipeline.Noreba),
		skylake(pipeline.IdealReconv),
		skylake(pipeline.SpecBR),
		skylake(pipeline.Spec),
	}
	inoECL := skylake(pipeline.InOrder)
	inoECL.ECL = true
	norebaECL := skylake(pipeline.Noreba)
	norebaECL.ECL = true
	return append(cfgs, inoECL, norebaECL)
}

// TestFanoutMatchesIndependentRuns is the differential proof for the
// broadcast-bus scheduler: batching every policy (plus ECL variants) of
// every suite workload onto shared emulations produces results byte-identical
// to independent Simulate executions on a fresh runner. The comparison is on
// the JSON encoding, so any drift in any statistic fails.
func TestFanoutMatchesIndependentRuns(t *testing.T) {
	cfgs := fanoutConfigs()

	batch := QuickRunner()
	batch.MaxInsts = 1 << 16
	batch.Parallelism = 4
	names, err := batch.names()
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for _, name := range names {
		for _, cfg := range cfgs {
			reqs = append(reqs, Request{Workload: name, Config: cfg})
		}
	}
	if err := batch.RunRequests(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}

	// One shared functional pass per workload, not one per configuration.
	if got, want := batch.EmulationsRun(), int64(len(names)); got != want {
		t.Errorf("batched runner executed %d emulations, want %d (one per workload)", got, want)
	}
	if got, want := batch.SimulationsRun(), int64(len(reqs)); got != want {
		t.Errorf("batched runner executed %d simulations, want %d", got, want)
	}

	solo := QuickRunner()
	solo.MaxInsts = 1 << 16
	solo.Parallelism = 1
	for _, q := range reqs {
		got, err := batch.Simulate(q.Workload, q.Config)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo.Simulate(q.Workload, q.Config)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("%s under %s: fan-out result differs from independent run\nfanout:      %s\nindependent: %s",
				q.Workload, rowName(q.Config), gotJSON, wantJSON)
		}
	}
}

// TestFanoutSingletonFallback pins the degenerate path: a group of one takes
// the solo execution arm yet still counts its emulation, and repeated
// requests stay coalesced.
func TestFanoutSingletonFallback(t *testing.T) {
	r := QuickRunner()
	r.MaxInsts = 1 << 14
	r.Workloads = []string{"sha"}
	reqs := []Request{
		{Workload: "sha", Config: skylake(pipeline.Noreba)},
		{Workload: "sha", Config: skylake(pipeline.Noreba)},
	}
	if err := r.RunRequests(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	if got := r.EmulationsRun(); got != 1 {
		t.Errorf("singleton batch executed %d emulations, want 1", got)
	}
	if got := r.SimulationsRun(); got != 1 {
		t.Errorf("duplicate requests executed %d simulations, want 1 (coalesced)", got)
	}
	if got := r.SimulateCalls(); got != 2 {
		t.Errorf("SimulateCalls = %d, want 2", got)
	}
}
