package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/sampling"
)

// blobMemStore shares plan blobs across runners but never results: a warm
// "restarted" runner is forced through planFor on every request, so these
// tests observe plan persistence in isolation from result persistence.
type blobMemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func newBlobMemStore() *blobMemStore { return &blobMemStore{blobs: map[string][]byte{}} }

func (s *blobMemStore) Get(string) (*pipeline.Stats, bool) { return nil, false }
func (s *blobMemStore) Put(string, *pipeline.Stats) error  { return nil }

func (s *blobMemStore) GetBlob(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	return b, ok
}

func (s *blobMemStore) PutBlob(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = append([]byte(nil), data...)
	return nil
}

var planStoreCases = []struct {
	workload string
	policy   pipeline.PolicyKind
}{
	{"CRC32", pipeline.InOrder},
	{"CRC32", pipeline.Noreba},
	{"dijkstra", pipeline.Noreba},
}

// runSampledCases estimates every case on a fresh runner over store and
// returns the marshalled stats per case.
func runSampledCases(t *testing.T, store ResultStore) (*Runner, [][]byte) {
	t.Helper()
	r := QuickRunner()
	r.Store = store
	out := make([][]byte, len(planStoreCases))
	for i, c := range planStoreCases {
		st, err := r.SimulateSampledContext(context.Background(), c.workload, skylake(c.policy), sampling.Default())
		if err != nil {
			t.Fatalf("%s under %v: %v", c.workload, c.policy, err)
		}
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = data
	}
	return r, out
}

// TestPlanStoreWarmRestart: a cold runner builds and persists one plan per
// sampled workload; a fresh runner over the same store rebuilds zero plans
// and produces byte-identical estimates from the decoded ones.
func TestPlanStoreWarmRestart(t *testing.T) {
	store := newBlobMemStore()
	cold, want := runSampledCases(t, store)
	const distinctWorkloads = 2 // CRC32, dijkstra
	if cold.PlansBuilt() != distinctWorkloads {
		t.Fatalf("cold runner built %d plans, want %d", cold.PlansBuilt(), distinctWorkloads)
	}
	if cold.PlanStoreMisses() != distinctWorkloads || cold.PlanStoreHits() != 0 {
		t.Fatalf("cold runner plan-store counters: %d misses %d hits, want %d/0",
			cold.PlanStoreMisses(), cold.PlanStoreHits(), distinctWorkloads)
	}
	if len(store.blobs) != distinctWorkloads {
		t.Fatalf("store holds %d plan blobs, want %d", len(store.blobs), distinctWorkloads)
	}

	warm, got := runSampledCases(t, store)
	if warm.PlansBuilt() != 0 {
		t.Errorf("warm runner rebuilt %d plans, want 0", warm.PlansBuilt())
	}
	if warm.PlanStoreHits() != distinctWorkloads || warm.PlanStoreMisses() != 0 {
		t.Errorf("warm runner plan-store counters: %d hits %d misses, want %d/0",
			warm.PlanStoreHits(), warm.PlanStoreMisses(), distinctWorkloads)
	}
	for i := range planStoreCases {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("%s under %v: warm-restart estimate differs:\ncold: %s\nwarm: %s",
				planStoreCases[i].workload, planStoreCases[i].policy, want[i], got[i])
		}
	}
}

// TestPlanStoreStaleBlobRebuilds: a blob from an old format version (or any
// corruption the decoder rejects) is a miss — the plan is rebuilt, the
// estimate still lands, and the rebuilt plan replaces the stale blob.
func TestPlanStoreStaleBlobRebuilds(t *testing.T) {
	store := newBlobMemStore()
	runSampledCases(t, store) // seed the store with valid blobs
	// Flip every blob's version byte (right after the 4-byte magic).
	for k, b := range store.blobs {
		stale := append([]byte(nil), b...)
		stale[4] ^= 0x7F
		store.blobs[k] = stale
	}
	r, _ := runSampledCases(t, store)
	const distinctWorkloads = 2
	if r.PlansBuilt() != distinctWorkloads {
		t.Errorf("stale blobs: rebuilt %d plans, want %d", r.PlansBuilt(), distinctWorkloads)
	}
	if r.PlanStoreMisses() != distinctWorkloads || r.PlanStoreHits() != 0 {
		t.Errorf("stale blobs: %d misses %d hits, want %d/0", r.PlanStoreMisses(), r.PlanStoreHits(), distinctWorkloads)
	}
	// The rebuild overwrote the stale blobs: a fourth runner loads cleanly.
	again, _ := runSampledCases(t, store)
	if again.PlansBuilt() != 0 || again.PlanStoreHits() != distinctWorkloads {
		t.Errorf("after rebuild: built %d, hits %d — stale blobs were not replaced",
			again.PlansBuilt(), again.PlanStoreHits())
	}
}

// TestPlanStoreResultOnlyStore: a store without blob support (the plain
// ResultStore interface) keeps working — plans are rebuilt each process and
// the plan-store counters stay untouched.
func TestPlanStoreResultOnlyStore(t *testing.T) {
	r, _ := runSampledCases(t, newMemStore())
	if r.PlansBuilt() != 2 {
		t.Errorf("built %d plans, want 2", r.PlansBuilt())
	}
	if r.PlanStoreHits() != 0 || r.PlanStoreMisses() != 0 {
		t.Errorf("plan-store counters moved without a BlobStore: %d hits %d misses",
			r.PlanStoreHits(), r.PlanStoreMisses())
	}
}
