package experiments

import (
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/metrics"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

func geomean(xs []float64) float64 { return metrics.Geomean(xs) }

// sharedRunner is reused across tests so the compile/simulation caches pay
// off (the figures deliberately share configurations).
var sharedRunner = QuickRunner()

func mustNames(t *testing.T, r *Runner) []string {
	t.Helper()
	names, err := r.names()
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestFigure1Shape(t *testing.T) {
	tab, err := sharedRunner.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"NonSpeculative-OoO-C", "SpeculativeBR-OoO-C", "Speculative-OoO-C", "geomean"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, s)
		}
	}
}

func TestFigure6MainResult(t *testing.T) {
	// The paper's headline claims, as shape checks on our suite:
	// NOREBA beats in-order commit clearly, stays below (or at) the
	// speculative upper bound, and reaches a large fraction of it.
	geo := func(policy pipeline.PolicyKind) float64 {
		var vals []float64
		for _, name := range mustNames(t, sharedRunner) {
			base, err := sharedRunner.Simulate(name, skylake(pipeline.InOrder))
			if err != nil {
				t.Fatal(err)
			}
			st, err := sharedRunner.Simulate(name, skylake(policy))
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, float64(base.Cycles)/float64(st.Cycles))
		}
		return geomean(vals)
	}

	noreba := geo(pipeline.Noreba)
	specBR := geo(pipeline.SpecBR)
	nonSpec := geo(pipeline.NonSpecOoO)

	if noreba <= 1.02 {
		t.Errorf("NOREBA geomean speedup %.3f; want clearly above 1 (paper: 1.22x)", noreba)
	}
	if noreba > specBR*1.01 {
		t.Errorf("NOREBA %.3f exceeds the SpeculativeBR upper bound %.3f", noreba, specBR)
	}
	if noreba/specBR < 0.75 {
		t.Errorf("NOREBA reaches only %.0f%% of SpeculativeBR; paper reports 95%%", 100*noreba/specBR)
	}
	if nonSpec > noreba {
		t.Errorf("NonSpeculative (%.3f) should not beat NOREBA (%.3f) on this suite", nonSpec, noreba)
	}
}

func TestFigure7HasBothClouds(t *testing.T) {
	sc, err := sharedRunner.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	s := sc.String()
	if !strings.Contains(s, "mcf") || !strings.Contains(s, "bzip2") {
		t.Errorf("Figure 7 missing a series:\n%s", s)
	}
}

func TestFigure8Fractions(t *testing.T) {
	tab, err := sharedRunner.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Per the paper, mcf and CRC commit >20% OoO while dijkstra commits
	// almost nothing. Check the ordering holds on our suite.
	frac := func(name string) float64 {
		st, err := sharedRunner.Simulate(name, skylake(pipeline.Noreba))
		if err != nil {
			t.Fatal(err)
		}
		return st.OoOCommitFraction()
	}
	if frac("mcf") <= frac("dijkstra") {
		t.Errorf("mcf OoO fraction (%.2f) should exceed dijkstra's (%.2f)", frac("mcf"), frac("dijkstra"))
	}
	if frac("mcf") < 0.10 {
		t.Errorf("mcf OoO fraction %.2f unexpectedly low", frac("mcf"))
	}
	_ = tab
}

func TestFigure9Saturates(t *testing.T) {
	tab, err := sharedRunner.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "ROB' 224") || !strings.Contains(s, "ROB' 128") {
		t.Errorf("Figure 9 missing a ROB series:\n%s", s)
	}
}

func TestFigure10PowerGrowsGently(t *testing.T) {
	tab, err := sharedRunner.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	_ = tab
}

func TestFigure11OverheadSmall(t *testing.T) {
	tab, err := sharedRunner.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "overhead") {
		t.Errorf("Figure 11 malformed:\n%s", s)
	}
	// Per-workload overhead must be small (paper average: 3%).
	for _, name := range mustNames(t, sharedRunner) {
		with, err := sharedRunner.Simulate(name, skylake(pipeline.Noreba))
		if err != nil {
			t.Fatal(err)
		}
		perfect := skylake(pipeline.Noreba)
		perfect.FreeSetup = true
		free, err := sharedRunner.Simulate(name, perfect)
		if err != nil {
			t.Fatal(err)
		}
		over := float64(with.Cycles)/float64(free.Cycles) - 1
		if over > 0.20 {
			t.Errorf("%s: setup overhead %.0f%% too high", name, over*100)
		}
	}
}

func TestFigure12LargerCoresFaster(t *testing.T) {
	tab, err := sharedRunner.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "NHM") {
		t.Errorf("Figure 12 malformed:\n%s", tab.String())
	}
}

func TestFigure13PrefetchComposes(t *testing.T) {
	if _, err := sharedRunner.Figure13(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure14ECL(t *testing.T) {
	if _, err := sharedRunner.Figure14(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure15WideCommitNotEnough(t *testing.T) {
	tab, err := sharedRunner.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	_ = tab
	// The paper's point: doubling commit width helps far less than NOREBA.
	var wideGain, norebaGain []float64
	for _, name := range mustNames(t, sharedRunner) {
		base, err := sharedRunner.Simulate(name, skylake(pipeline.InOrder))
		if err != nil {
			t.Fatal(err)
		}
		wide := skylake(pipeline.InOrder)
		wide.CommitWidth = 8
		w, err := sharedRunner.Simulate(name, wide)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sharedRunner.Simulate(name, skylake(pipeline.Noreba))
		if err != nil {
			t.Fatal(err)
		}
		wideGain = append(wideGain, float64(base.Cycles)/float64(w.Cycles))
		norebaGain = append(norebaGain, float64(base.Cycles)/float64(n.Cycles))
	}
	gw, gn := geomean(wideGain), geomean(norebaGain)
	if gw > gn {
		t.Errorf("8-wide in-order commit (%.3f) should not beat NOREBA (%.3f)", gw, gn)
	}
}

func TestFigure16Overheads(t *testing.T) {
	powTab, areaTab, err := sharedRunner.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{powTab.String(), areaTab.String()} {
		if !strings.Contains(s, "NOREBA") || !strings.Contains(s, "In-Order Commit") {
			t.Errorf("Figure 16 malformed:\n%s", s)
		}
	}
}

func TestTables2And3(t *testing.T) {
	s := Tables2And3()
	for _, want := range []string{"Table 2", "Table 3", "NHM", "HSW", "SKL", "224", "128", "CIT 128"} {
		if !strings.Contains(s, want) {
			t.Errorf("config tables missing %q:\n%s", want, s)
		}
	}
}
