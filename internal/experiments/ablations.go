package experiments

import (
	"context"
	"fmt"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/metrics"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// AblationCIT sweeps the Committed Instructions Table size: the CIT bounds
// how far beyond an unresolved branch NOREBA may commit, so undersizing it
// caps the reach (and the speedup) while the paper's 128 entries are
// comfortably past the knee for these kernels.
func (r *Runner) AblationCIT() (*metrics.Table, error) {
	sizes := []int{8, 16, 32, 64, 128, 256}
	var cols []string
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("CIT %d", s))
	}
	tab := metrics.NewTable("Ablation: CIT sizing (geomean speedup over InO-C)", cols...)
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: skylake(pipeline.InOrder)})
		for _, size := range sizes {
			cfg := skylake(pipeline.Noreba)
			cfg.Selective.CITSize = size
			reqs = append(reqs, simReq{workload: name, cfg: cfg})
		}
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	var vals []float64
	for _, size := range sizes {
		var speedups []float64
		for _, name := range names {
			base, err := r.Simulate(name, skylake(pipeline.InOrder))
			if err != nil {
				return nil, err
			}
			cfg := skylake(pipeline.Noreba)
			cfg.Selective.CITSize = size
			st, err := r.Simulate(name, cfg)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, metrics.Speedup(base.Cycles, st.Cycles))
		}
		vals = append(vals, metrics.Geomean(speedups))
	}
	tab.AddRow("NOREBA", vals...)
	return tab, nil
}

// AblationLoopMarking compares the default selective marking (loop-closing
// branches unmarked) against exhaustively marking every analysable branch:
// the exhaustive variant pays one setup instruction per block per loop
// iteration for regions that are dependent anyway.
func (r *Runner) AblationLoopMarking() (*metrics.Table, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: skylake(pipeline.Noreba)})
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Ablation: loop-branch marking (cycles exhaustive / cycles selective)",
		append(append([]string{}, names...), "geomean")...)

	var ratios []float64
	for _, name := range names {
		selective, err := r.Simulate(name, skylake(pipeline.Noreba))
		if err != nil {
			return nil, err
		}
		exhaustive, err := r.simulateWithOptions(name, skylake(pipeline.Noreba), compiler.Options{
			NumIDs: 8, MaxRegionLen: 31, MarkLoopBranches: true,
		})
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, float64(exhaustive.Cycles)/float64(selective.Cycles))
	}
	tab.AddRow("slowdown", append(ratios, metrics.Geomean(ratios))...)
	return tab, nil
}

// simulateWithOptions recompiles the workload with explicit pass options
// (bypassing the shared trace cache) and simulates it.
func (r *Runner) simulateWithOptions(name string, cfg pipeline.Config, opt compiler.Options) (*pipeline.Stats, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	scale := w.DefaultScale / r.ScaleDiv
	if scale < 2 {
		scale = 2
	}
	res, err := compiler.Compile(w.Build(scale), opt)
	if err != nil {
		return nil, err
	}
	if err := r.acquire(context.Background()); err != nil {
		return nil, err
	}
	defer r.release()
	src := emulator.NewSource(emulator.New(res.Image), r.MaxInsts)
	return pipeline.NewCoreFromSource(cfg, src, res.Meta).Run()
}

// AblationBITSize sweeps the Branch ID Table size (number of usable
// compiler IDs): a smaller BIT forces the ID allocator to leave overlapping
// branches unmarked.
func (r *Runner) AblationBITSize() (*metrics.Table, error) {
	sizes := []int{2, 4, 8, 16}
	var cols []string
	for _, s := range sizes {
		cols = append(cols, fmt.Sprintf("BIT %d", s))
	}
	tab := metrics.NewTable("Ablation: BIT/ID-space sizing (geomean speedup over InO-C)", cols...)
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: skylake(pipeline.InOrder)})
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	var vals []float64
	for _, size := range sizes {
		var speedups []float64
		for _, name := range names {
			base, err := r.Simulate(name, skylake(pipeline.InOrder))
			if err != nil {
				return nil, err
			}
			cfg := skylake(pipeline.Noreba)
			cfg.Selective.BITSize = size
			st, err := r.simulateWithOptions(name, cfg, compiler.Options{
				NumIDs: size, MaxRegionLen: 31,
			})
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, metrics.Speedup(base.Cycles, st.Cycles))
		}
		vals = append(vals, metrics.Geomean(speedups))
	}
	tab.AddRow("NOREBA", vals...)
	return tab, nil
}

// AblationPredictors measures how NOREBA's advantage depends on branch
// prediction quality: with an oracle front end there are no misprediction
// windows to hide, while a weak bimodal predictor shifts time from commit
// stalls to recovery.
func (r *Runner) AblationPredictors() (*metrics.Table, error) {
	preds := []struct {
		name string
		kind pipeline.PredictorKind
	}{
		{"bimodal", pipeline.PredBimodal},
		{"TAGE-SC-L", pipeline.PredTAGE},
		{"oracle", pipeline.PredOracle},
	}
	var cols []string
	for _, p := range preds {
		cols = append(cols, p.name)
	}
	tab := metrics.NewTable("Ablation: predictor sensitivity (geomean NOREBA speedup over InO-C, same predictor)", cols...)
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		for _, p := range preds {
			base := skylake(pipeline.InOrder)
			base.Predictor = p.kind
			cfg := skylake(pipeline.Noreba)
			cfg.Predictor = p.kind
			reqs = append(reqs, simReq{workload: name, cfg: base}, simReq{workload: name, cfg: cfg})
		}
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	var vals []float64
	for _, p := range preds {
		var speedups []float64
		for _, name := range names {
			base := skylake(pipeline.InOrder)
			base.Predictor = p.kind
			baseSt, err := r.Simulate(name, base)
			if err != nil {
				return nil, err
			}
			cfg := skylake(pipeline.Noreba)
			cfg.Predictor = p.kind
			st, err := r.Simulate(name, cfg)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, metrics.Speedup(baseSt.Cycles, st.Cycles))
		}
		vals = append(vals, metrics.Geomean(speedups))
	}
	tab.AddRow("NOREBA", vals...)
	return tab, nil
}
