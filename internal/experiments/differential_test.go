package experiments

import (
	"reflect"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// TestPipelineMatchesEmulatorArchitecturally is the differential check: each
// workload executes once purely architecturally, then once per commit policy
// through the cycle-level core (sanitized, driving its own live emulator via
// the sliding window). The final architectural state must be identical —
// out-of-order commit, windowed fetch and early reclaim may only change
// *when* things happen, never *what* is computed — and every policy must
// retire exactly the trace's instruction count.
func TestPipelineMatchesEmulatorArchitecturally(t *testing.T) {
	const budget = 1 << 17
	r := QuickRunner()
	for _, name := range mustNames(t, r) {
		res, err := compileWorkload(name, r.ScaleDiv)
		if err != nil {
			t.Fatal(err)
		}
		refMachine := emulator.New(res.Image)
		refTrace, err := refMachine.Run(budget)
		if err != nil {
			t.Fatalf("%s: architectural run: %v", name, err)
		}
		ref := refMachine.Snapshot()
		wantCommits := int64(refTrace.Len()) - refTrace.Setup

		for _, pk := range suitePolicies {
			m := emulator.New(res.Image)
			cfg := skylake(pk)
			cfg.Sanitize = true
			st, err := pipeline.NewCoreFromSource(cfg, emulator.NewSource(m, budget), res.Meta).Run()
			if err != nil {
				t.Fatalf("%s under %v: %v", name, pk, err)
			}
			if st.Committed != wantCommits {
				t.Errorf("%s under %v: committed %d, architectural trace has %d", name, pk, st.Committed, wantCommits)
			}
			got := m.Snapshot()
			if got.IntRegs != ref.IntRegs {
				t.Errorf("%s under %v: integer register state diverged", name, pk)
			}
			if got.FPRegs != ref.FPRegs {
				t.Errorf("%s under %v: FP register state diverged", name, pk)
			}
			if !reflect.DeepEqual(got.Mem, ref.Mem) || !reflect.DeepEqual(got.FMem, ref.FMem) {
				t.Errorf("%s under %v: memory state diverged", name, pk)
			}
			if got.PC != ref.PC || got.Halted != ref.Halted {
				t.Errorf("%s under %v: control state diverged (pc %d/%d halted %t/%t)",
					name, pk, got.PC, ref.PC, got.Halted, ref.Halted)
			}
		}
	}
}
