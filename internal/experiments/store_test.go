package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// memStore is an in-memory ResultStore with optional fault injection.
type memStore struct {
	mu     sync.Mutex
	m      map[string]*pipeline.Stats
	failTx bool // make Put fail
	hits   int
	puts   int
}

func newMemStore() *memStore { return &memStore{m: map[string]*pipeline.Stats{}} }

func (s *memStore) Get(key string) (*pipeline.Stats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.m[key]
	if ok {
		s.hits++
	}
	return st, ok
}

func (s *memStore) Put(key string, st *pipeline.Stats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failTx {
		return errors.New("injected store failure")
	}
	s.m[key] = st
	s.puts++
	return nil
}

func quickCfg(policy pipeline.PolicyKind) pipeline.Config {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = policy
	return cfg
}

func storeRunner(store ResultStore) *Runner {
	r := NewRunner()
	r.MaxInsts = 1 << 12
	r.ScaleDiv = 8
	r.Store = store
	return r
}

// TestConfigHashStability: the hash is deterministic, policy-normalised
// (FreeSetup is forced for baselines, so setting it by hand is a no-op),
// and sensitive to everything that changes results — workload, scale
// parameters and any timing-relevant config field.
func TestConfigHashStability(t *testing.T) {
	r := storeRunner(nil)
	base := r.ConfigHash("mcf", quickCfg(pipeline.InOrder))
	if len(base) != 64 {
		t.Fatalf("hash %q is not sha256 hex", base)
	}
	if again := r.ConfigHash("mcf", quickCfg(pipeline.InOrder)); again != base {
		t.Error("hash is not deterministic")
	}

	// normalize() forces FreeSetup for non-annotation policies, so an
	// explicitly set FreeSetup must not change the InOrder hash.
	cfg := quickCfg(pipeline.InOrder)
	cfg.FreeSetup = true
	if got := r.ConfigHash("mcf", cfg); got != base {
		t.Error("normalisation not applied before hashing")
	}

	diffs := map[string]string{
		"workload": r.ConfigHash("bzip2", quickCfg(pipeline.InOrder)),
		"policy":   r.ConfigHash("mcf", quickCfg(pipeline.Noreba)),
	}
	cfg = quickCfg(pipeline.InOrder)
	cfg.ROBSize++
	diffs["config field"] = r.ConfigHash("mcf", cfg)

	r2 := storeRunner(nil)
	r2.MaxInsts = r.MaxInsts * 2
	diffs["maxInsts"] = r2.ConfigHash("mcf", quickCfg(pipeline.InOrder))
	r3 := storeRunner(nil)
	r3.ScaleDiv = r.ScaleDiv * 2
	diffs["scaleDiv"] = r3.ConfigHash("mcf", quickCfg(pipeline.InOrder))
	r4 := storeRunner(nil)
	r4.Sanitize = true
	diffs["sanitize"] = r4.ConfigHash("mcf", quickCfg(pipeline.InOrder))

	for what, h := range diffs {
		if h == base {
			t.Errorf("changing the %s did not change the hash", what)
		}
	}
}

// TestRunnerStoreRoundTrip: a second runner over the same store serves every
// result without executing, and the stats are identical.
func TestRunnerStoreRoundTrip(t *testing.T) {
	store := newMemStore()
	r1 := storeRunner(store)
	want, err := r1.Simulate("mcf", quickCfg(pipeline.Noreba))
	if err != nil {
		t.Fatal(err)
	}
	if r1.StoreMisses() != 1 || r1.StoreHits() != 0 || store.puts != 1 {
		t.Fatalf("cold run: %d misses %d hits %d puts", r1.StoreMisses(), r1.StoreHits(), store.puts)
	}

	r2 := storeRunner(store)
	got, err := r2.Simulate("mcf", quickCfg(pipeline.Noreba))
	if err != nil {
		t.Fatal(err)
	}
	if r2.SimulationsRun() != 0 {
		t.Errorf("warm runner executed %d simulations, want 0", r2.SimulationsRun())
	}
	if r2.StoreHits() != 1 || r2.StoreMisses() != 0 {
		t.Errorf("warm run: %d hits %d misses", r2.StoreHits(), r2.StoreMisses())
	}
	if got.Cycles != want.Cycles || got.Committed != want.Committed {
		t.Errorf("store round trip changed stats: %d/%d vs %d/%d cycles/committed",
			got.Cycles, got.Committed, want.Cycles, want.Committed)
	}
}

// TestRunnerStorePutFailure: a failing store write is counted but the
// simulation still succeeds.
func TestRunnerStorePutFailure(t *testing.T) {
	store := newMemStore()
	store.failTx = true
	r := storeRunner(store)
	st, err := r.Simulate("sha", quickCfg(pipeline.InOrder))
	if err != nil || st == nil {
		t.Fatalf("simulation failed on store error: %v", err)
	}
	if r.StorePutErrors() != 1 {
		t.Errorf("StorePutErrors = %d, want 1", r.StorePutErrors())
	}
}

// TestSimulateContextCancelled: a pre-cancelled context fails fast with the
// context's cause, and — crucially — the cancellation is NOT cached: the next
// identical request must actually run.
func TestSimulateContextCancelled(t *testing.T) {
	r := storeRunner(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.SimulateContext(ctx, "mcf", quickCfg(pipeline.InOrder))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := r.UniqueSimulations(); n != 0 {
		t.Fatalf("cancelled run left %d cache entries", n)
	}

	st, err := r.Simulate("mcf", quickCfg(pipeline.InOrder))
	if err != nil || st.Committed == 0 {
		t.Fatalf("retry after cancellation: %v (%+v)", err, st)
	}
}

// TestSimulateContextDeadline: a deadline expiring mid-run cancels the
// pipeline cooperatively.
func TestSimulateContextDeadline(t *testing.T) {
	r := NewRunner() // full scale, so the deadline always fires first
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := r.SimulateContext(ctx, "dijkstra", quickCfg(pipeline.Noreba))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunnerCacheLRUEviction: with CacheLimit 2, running three distinct
// configs evicts the least recently used finished entry, and an evicted
// entry re-runs on the next request.
func TestRunnerCacheLRUEviction(t *testing.T) {
	r := storeRunner(nil)
	r.CacheLimit = 2
	cfgs := []pipeline.Config{
		quickCfg(pipeline.InOrder),
		quickCfg(pipeline.Noreba),
		quickCfg(pipeline.Spec),
	}
	for _, cfg := range cfgs {
		if _, err := r.Simulate("sha", cfg); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.UniqueSimulations(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	runs := r.SimulationsRun()
	// cfgs[0] was evicted → re-runs; cfgs[2] is resident → cache hit.
	if _, err := r.Simulate("sha", cfgs[2]); err != nil {
		t.Fatal(err)
	}
	if r.SimulationsRun() != runs {
		t.Error("resident entry re-ran")
	}
	if _, err := r.Simulate("sha", cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if r.SimulationsRun() != runs+1 {
		t.Error("evicted entry did not re-run")
	}
}

// TestRunnerEvictionSparesInFlight: filling the cache past its bound while
// another simulation is mid-flight must never evict the in-flight job —
// its waiters would otherwise hang or observe a half-built result. The
// in-flight run here is a full-scale dijkstra on a CacheLimit-1 runner being
// flooded by quick sha runs; afterwards the coalesced waiters must all get
// the same completed result.
func TestRunnerEvictionSparesInFlight(t *testing.T) {
	r := NewRunner() // full scale: dijkstra runs for hundreds of ms
	r.CacheLimit = 1

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]*pipeline.Stats, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Simulate("dijkstra", quickCfg(pipeline.InOrder))
		}(i)
	}

	// Flood the cache while dijkstra is in flight. Every sha run pushes a
	// finished entry through the CacheLimit-1 LRU; if eviction could touch
	// the in-flight dijkstra job, some waiter above would fail or hang.
	for i := 0; i < 8; i++ {
		cfg := quickCfg(pipeline.InOrder)
		cfg.ROBSize += i // distinct configs → distinct cache keys
		if _, err := r.Simulate("sha", cfg); err != nil {
			t.Fatal(err)
		}
	}

	wg.Wait()
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different result object — singleflight broken by eviction", i)
		}
	}
	if got := r.SimulationsRun(); got != 1+8 {
		t.Errorf("ran %d simulations, want 9 (1 dijkstra + 8 sha)", got)
	}
}

// TestRunnerCacheUnbounded: a negative CacheLimit disables eviction.
func TestRunnerCacheUnbounded(t *testing.T) {
	r := storeRunner(nil)
	r.CacheLimit = -1
	for i := 0; i < 6; i++ {
		cfg := quickCfg(pipeline.InOrder)
		cfg.ROBSize += i
		if _, err := r.Simulate("sha", cfg); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.UniqueSimulations(); n != 6 {
		t.Errorf("unbounded cache holds %d entries, want 6", n)
	}
}

// TestRunnerStoreConcurrentDedup: concurrent identical requests through a
// store-backed runner still coalesce to one execution and one store write.
func TestRunnerStoreConcurrentDedup(t *testing.T) {
	store := newMemStore()
	r := storeRunner(store)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Simulate("mcf", quickCfg(pipeline.Noreba)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if r.SimulationsRun() != 1 {
		t.Errorf("ran %d simulations, want 1", r.SimulationsRun())
	}
	if store.puts != 1 {
		t.Errorf("store saw %d puts, want 1", store.puts)
	}
	if r.SimulateCalls() != 8 {
		t.Errorf("SimulateCalls = %d, want 8", r.SimulateCalls())
	}
}
