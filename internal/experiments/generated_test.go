package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/workgen"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// generatedNames returns the pinned generated workloads in the registry.
func generatedNames(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, w := range workloads.All() {
		if w.Suite == workloads.Generated {
			names = append(names, w.Name)
		}
	}
	if len(names) == 0 {
		t.Fatal("no generated workloads registered")
	}
	return names
}

// TestGeneratedDifferentialSuite is the breadth half of the generator's
// correctness contract: fifty fresh points in the character space — far
// beyond the pinned registry entries — each simulate under every commit
// policy, sanitized, and must retire exactly the architectural trace with
// bit-identical final state. FuzzGeneratedDifferential explores the same
// invariant adversarially; this test guarantees a wide deterministic sweep on
// every plain `go test` run.
func TestGeneratedDifferentialSuite(t *testing.T) {
	const budget = 1 << 16
	for _, p := range workgen.Seeds(50) {
		p := p
		p.Iterations = 6
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			prog, _, err := workgen.Generate(p)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			res, err := compiler.Compile(prog, compiler.DefaultOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			refMachine := emulator.New(res.Image)
			refTrace, err := refMachine.Run(budget)
			if err != nil {
				t.Fatalf("architectural run: %v", err)
			}
			ref := refMachine.Snapshot()
			wantCommits := int64(refTrace.Len()) - refTrace.Setup

			for _, pk := range suitePolicies {
				m := emulator.New(res.Image)
				cfg := skylake(pk)
				cfg.Sanitize = true
				st, err := pipeline.NewCoreFromSource(cfg, emulator.NewSource(m, budget), res.Meta).Run()
				if err != nil {
					t.Fatalf("under %v: %v", pk, err)
				}
				if st.Committed != wantCommits {
					t.Errorf("under %v: committed %d, architectural trace has %d", pk, st.Committed, wantCommits)
				}
				got := m.Snapshot()
				if got.IntRegs != ref.IntRegs || got.FPRegs != ref.FPRegs {
					t.Errorf("under %v: register state diverged", pk)
				}
				if !reflect.DeepEqual(got.Mem, ref.Mem) || !reflect.DeepEqual(got.FMem, ref.FMem) {
					t.Errorf("under %v: memory state diverged", pk)
				}
				if got.PC != ref.PC || got.Halted != ref.Halted {
					t.Errorf("under %v: control state diverged", pk)
				}
			}
		})
	}
}

// TestGeneratedSuiteExcludedFromFigures pins the scope rule: a runner with no
// explicit workload list evaluates the curated suite only, so generated
// workloads can never silently grow the paper's figures.
func TestGeneratedSuiteExcludedFromFigures(t *testing.T) {
	r := NewRunner()
	names, err := r.names()
	if err != nil {
		t.Fatal(err)
	}
	curated := map[string]bool{}
	for _, n := range names {
		curated[n] = true
	}
	for _, g := range generatedNames(t) {
		if curated[g] {
			t.Errorf("generated workload %s appears in the default figure suite", g)
		}
	}
}

// TestGeneratedBatchSharesEmulation holds the broadcast-bus batching
// guarantee for generator-built workloads: a six-policy batch of one
// generated workload rides a single functional emulation, exactly like the
// curated suite does.
func TestGeneratedBatchSharesEmulation(t *testing.T) {
	r := NewRunner()
	r.MaxInsts = 1 << 16
	name := generatedNames(t)[0]

	var reqs []Request
	for _, pk := range suitePolicies {
		reqs = append(reqs, Request{Workload: name, Config: skylake(pk)})
	}
	if err := r.RunRequests(context.Background(), reqs); err != nil {
		t.Fatalf("batched generated workload: %v", err)
	}
	if got := r.SimulationsRun(); got != int64(len(reqs)) {
		t.Fatalf("ran %d simulations, want %d", got, len(reqs))
	}
	if got := r.EmulationsRun(); got != 1 {
		t.Fatalf("batch used %d functional emulations, want 1", got)
	}

	// The batch populated the cache with results bit-identical to solo runs.
	solo := NewRunner()
	solo.MaxInsts = r.MaxInsts
	for _, q := range reqs {
		batched, err := r.Simulate(q.Workload, q.Config)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := solo.Simulate(q.Workload, q.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched, direct) {
			t.Errorf("%s under %v: batched stats differ from solo", q.Workload, q.Config.Policy)
		}
	}
	if r.SimulationsRun() != int64(len(reqs)) {
		t.Fatalf("re-reads triggered %d extra runs", r.SimulationsRun()-int64(len(reqs)))
	}
}

// TestGeneratedWorkloadsDeterministic re-registers nothing — it rebuilds each
// pinned generated workload twice through the registry Build hook and
// requires identical programs, the property that makes gen/ names meaningful
// in golden stats and trace files.
func TestGeneratedWorkloadsDeterministic(t *testing.T) {
	for _, name := range generatedNames(t) {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := w.Build(w.DefaultScale)
		b := w.Build(w.DefaultScale)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two builds at the same scale differ", name)
		}
		if fmt.Sprint(a) == "" {
			t.Errorf("%s: empty program", name)
		}
	}
}
