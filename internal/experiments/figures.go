package experiments

import (
	"fmt"
	"math"

	"github.com/noreba-sim/noreba/internal/metrics"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/power"
)

// figureReqs maps a figure name ("figure1" … "figure16") to the builder of
// its simulation requests. FigureN warms the cache by running its own
// builder's requests; FigureRequests lets callers batch several figures'
// requests through one RunRequests pass, so every configuration of a
// workload shares a single functional emulation across figures.
var figureReqs = map[string]func(*Runner) ([]simReq, error){
	"figure1":  (*Runner).figure1Reqs,
	"figure6":  (*Runner).figure6Reqs,
	"figure7":  (*Runner).figure7Reqs,
	"figure8":  (*Runner).figure8Reqs,
	"figure9":  (*Runner).figure9Reqs,
	"figure10": (*Runner).figure10Reqs,
	"figure11": (*Runner).figure11Reqs,
	"figure12": (*Runner).figure12Reqs,
	"figure13": (*Runner).figure13Reqs,
	"figure14": (*Runner).figure14Reqs,
	"figure15": (*Runner).figure15Reqs,
	"figure16": (*Runner).figure16Reqs,
}

// FigureRequests returns the union of the named figures' simulation
// requests (duplicates included — the scheduler coalesces them), for
// batching through RunRequests. Figure names are "figure1" through
// "figure16"; an unknown name is an error.
func (r *Runner) FigureRequests(figures ...string) ([]Request, error) {
	var out []Request
	for _, f := range figures {
		build, ok := figureReqs[f]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown figure %q", f)
		}
		qs, err := build(r)
		if err != nil {
			return nil, err
		}
		for _, q := range qs {
			out = append(out, Request{Workload: q.workload, Config: q.cfg})
		}
	}
	return out, nil
}

// speedupReqs lists the requests of a baseline-vs-rows speedup table.
func (r *Runner) speedupReqs(baseline pipeline.Config, rows []pipeline.Config) ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: baseline})
		for _, cfg := range rows {
			reqs = append(reqs, simReq{workload: name, cfg: cfg})
		}
	}
	return reqs, nil
}

// speedupTable runs the given policies over the suite — batched on the
// broadcast-bus scheduler — and tabulates per-workload speedups over the
// baseline config, plus a geomean column.
func (r *Runner) speedupTable(title string, baseline pipeline.Config, rows []pipeline.Config) (*metrics.Table, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.speedupReqs(baseline, rows)
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	tab := metrics.NewTable(title, append(append([]string{}, names...), "geomean")...)
	for _, cfg := range rows {
		var vals []float64
		for _, name := range names {
			base, err := r.Simulate(name, baseline)
			if err != nil {
				return nil, err
			}
			st, err := r.Simulate(name, cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, metrics.Speedup(base.Cycles, st.Cycles))
		}
		tab.AddRow(rowName(cfg), append(vals, metrics.Geomean(vals))...)
	}
	return tab, nil
}

func rowName(cfg pipeline.Config) string {
	name := cfg.Policy.String()
	if cfg.ECL {
		name += "+ECL"
	}
	if cfg.FreeSetup && (cfg.Policy == pipeline.Noreba || cfg.Policy == pipeline.IdealReconv) {
		name += "+PerfectSetup"
	}
	if cfg.CommitWidth != 4 {
		name += fmt.Sprintf(" (commit %d)", cfg.CommitWidth)
	}
	if !cfg.PrefetchEnabled {
		name += " no-pf"
	}
	return name
}

// figure1Rows lists the non-baseline configurations of Figure 1.
func figure1Rows() []pipeline.Config {
	return []pipeline.Config{
		skylake(pipeline.NonSpecOoO),
		skylake(pipeline.SpecBR),
		skylake(pipeline.Spec),
	}
}

func (r *Runner) figure1Reqs() ([]simReq, error) {
	return r.speedupReqs(skylake(pipeline.InOrder), figure1Rows())
}

// Figure1 reproduces the motivation figure: NonSpeculative, SpeculativeBR
// and fully Speculative OoO-commit speedups over in-order commit on the
// Skylake-like core with prefetching.
func (r *Runner) Figure1() (*metrics.Table, error) {
	return r.speedupTable(
		"Figure 1: OoO-commit approaches over InO-C (SKL + prefetch)",
		skylake(pipeline.InOrder), figure1Rows())
}

// figure6Rows lists the non-baseline configurations of Figure 6.
func figure6Rows() []pipeline.Config {
	return []pipeline.Config{
		skylake(pipeline.NonSpecOoO),
		skylake(pipeline.Noreba),
		skylake(pipeline.IdealReconv),
		skylake(pipeline.SpecBR),
	}
}

func (r *Runner) figure6Reqs() ([]simReq, error) {
	return r.speedupReqs(skylake(pipeline.InOrder), figure6Rows())
}

// Figure6 is the main result: NonSpeculative, NOREBA, ideal-reconvergence
// and SpeculativeBR OoO commit over InO-C.
func (r *Runner) Figure6() (*metrics.Table, error) {
	return r.speedupTable(
		"Figure 6: OoO-commit modes over InO-C (SKL)",
		skylake(pipeline.InOrder), figure6Rows())
}

func (r *Runner) figure7Reqs() ([]simReq, error) {
	return []simReq{
		{workload: "bzip2", cfg: skylake(pipeline.InOrder)},
		{workload: "mcf", cfg: skylake(pipeline.InOrder)},
	}, nil
}

// Figure7 reproduces the criticality scatter for bzip2 and mcf: for every
// static branch, log10 of its dynamic dependent-instruction count against
// log10 of the cycles it stalled commit, under in-order commit on SKL.
func (r *Runner) Figure7() (*metrics.Scatter, error) {
	sc := metrics.NewScatter("Figure 7: critical-branch distribution (SKL, InO-C)",
		"log10(dependent instructions)", "log10(cycles ROB stalled)")
	reqs, err := r.figure7Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	for _, name := range []string{"bzip2", "mcf"} {
		st, err := r.Simulate(name, skylake(pipeline.InOrder))
		if err != nil {
			return nil, err
		}
		for _, bs := range st.BranchStalls {
			if bs.StallCycles <= 0 || bs.Occurrences == 0 {
				continue
			}
			deps := float64(bs.Dependents)
			if deps < 1 {
				deps = 1
			}
			sc.Add(name, math.Log10(deps), math.Log10(float64(bs.StallCycles)))
		}
	}
	return sc, nil
}

func (r *Runner) figure8Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: skylake(pipeline.Noreba)})
	}
	return reqs, nil
}

// Figure8 reports the fraction of dynamic instructions NOREBA commits out
// of order, per workload.
func (r *Runner) Figure8() (*metrics.Table, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.figure8Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Figure 8: dynamic instructions committed out-of-order (NOREBA, SKL)", names...)
	var vals []float64
	for _, name := range names {
		st, err := r.Simulate(name, skylake(pipeline.Noreba))
		if err != nil {
			return nil, err
		}
		vals = append(vals, st.OoOCommitFraction())
	}
	tab.AddRow("OoO-commit fraction", vals...)
	return tab, nil
}

// brcqKnob is one Selective ROB sizing point: BR-CQ count × entries.
type brcqKnob struct{ queues, entries int }

var figure9Knobs = []brcqKnob{{1, 4}, {1, 8}, {2, 4}, {2, 8}, {2, 16}, {4, 8}, {4, 16}}

func (r *Runner) figure9Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, robSize := range []int{224, 128} {
		for _, name := range names {
			ideal := skylake(pipeline.IdealReconv)
			ideal.ROBSize = robSize
			reqs = append(reqs, simReq{workload: name, cfg: ideal})
			for _, k := range figure9Knobs {
				cfg := skylake(pipeline.Noreba)
				cfg.ROBSize = robSize
				cfg.Selective.NumBRCQs = k.queues
				cfg.Selective.BRCQSize = k.entries
				reqs = append(reqs, simReq{workload: name, cfg: cfg})
			}
		}
	}
	return reqs, nil
}

// Figure9 sweeps the Selective ROB configuration — BR-CQ count × entries —
// for two ROB′ sizes, reporting geomean performance normalised to the
// ideal reconvergence commit with the same ROB size.
func (r *Runner) Figure9() (*metrics.Table, error) {
	knobs := figure9Knobs
	var cols []string
	for _, k := range knobs {
		cols = append(cols, fmt.Sprintf("%dxBR-CQ/%d", k.queues, k.entries))
	}
	tab := metrics.NewTable("Figure 9: Selective ROB sizing, normalised to ideal Reconvergence-OoO-C", cols...)

	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.figure9Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}

	for _, robSize := range []int{224, 128} {
		var vals []float64
		for _, k := range knobs {
			var ratios []float64
			for _, name := range names {
				ideal := skylake(pipeline.IdealReconv)
				ideal.ROBSize = robSize
				idealSt, err := r.Simulate(name, ideal)
				if err != nil {
					return nil, err
				}
				cfg := skylake(pipeline.Noreba)
				cfg.ROBSize = robSize
				cfg.Selective.NumBRCQs = k.queues
				cfg.Selective.BRCQSize = k.entries
				st, err := r.Simulate(name, cfg)
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, float64(idealSt.Cycles)/float64(st.Cycles))
			}
			vals = append(vals, metrics.Geomean(ratios))
		}
		tab.AddRow(fmt.Sprintf("ROB' %d", robSize), vals...)
	}
	return tab, nil
}

var figure10Knobs = []brcqKnob{{1, 4}, {1, 8}, {2, 4}, {2, 8}, {2, 16}, {4, 8}, {4, 16}, {8, 64}}

func (r *Runner) figure10Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, k := range figure10Knobs {
		for _, name := range names {
			cfg := skylake(pipeline.Noreba)
			cfg.Selective.NumBRCQs = k.queues
			cfg.Selective.BRCQSize = k.entries
			reqs = append(reqs, simReq{workload: name, cfg: cfg})
		}
	}
	return reqs, nil
}

// Figure10 reports total core power for the same Selective ROB sweep,
// normalised to the smallest configuration.
func (r *Runner) Figure10() (*metrics.Table, error) {
	knobs := figure10Knobs
	var cols []string
	for _, k := range knobs {
		cols = append(cols, fmt.Sprintf("%dxBR-CQ/%d", k.queues, k.entries))
	}
	tab := metrics.NewTable("Figure 10: Selective ROB power, normalised to minimum configuration", cols...)

	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.figure10Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}

	var vals []float64
	for _, k := range knobs {
		var total float64
		for _, name := range names {
			cfg := skylake(pipeline.Noreba)
			cfg.Selective.NumBRCQs = k.queues
			cfg.Selective.BRCQSize = k.entries
			st, err := r.Simulate(name, cfg)
			if err != nil {
				return nil, err
			}
			total += power.Estimate(cfg, st).TotalPower()
		}
		vals = append(vals, total)
	}
	min := vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	for i := range vals {
		vals[i] /= min
	}
	tab.AddRow("power", vals...)
	return tab, nil
}

func (r *Runner) figure11Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	perfectCfg := skylake(pipeline.Noreba)
	perfectCfg.FreeSetup = true
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: skylake(pipeline.Noreba)}, simReq{workload: name, cfg: perfectCfg})
	}
	return reqs, nil
}

// Figure11 measures the cost of the setup instructions themselves: NOREBA
// with fetched setup instructions versus a perfect design whose dependence
// information reaches the hardware for free.
func (r *Runner) Figure11() (*metrics.Table, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.figure11Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Figure 11: setup-instruction overhead (cycles with setup / cycles perfect)",
		append(append([]string{}, names...), "geomean")...)
	var vals []float64
	for _, name := range names {
		withSetup, err := r.Simulate(name, skylake(pipeline.Noreba))
		if err != nil {
			return nil, err
		}
		perfect := skylake(pipeline.Noreba)
		perfect.FreeSetup = true
		free, err := r.Simulate(name, perfect)
		if err != nil {
			return nil, err
		}
		vals = append(vals, float64(withSetup.Cycles)/float64(free.Cycles))
	}
	tab.AddRow("overhead", append(vals, metrics.Geomean(vals))...)
	return tab, nil
}

// coreConfigs returns the three Table 3 cores with the given policy.
func coreConfigs(policy pipeline.PolicyKind) []pipeline.Config {
	nhm := pipeline.NehalemConfig()
	hsw := pipeline.HaswellConfig()
	skl := pipeline.SkylakeConfig()
	nhm.Policy, hsw.Policy, skl.Policy = policy, policy, policy
	return []pipeline.Config{nhm, hsw, skl}
}

func (r *Runner) figure12Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	inos := coreConfigs(pipeline.InOrder)
	norebas := coreConfigs(pipeline.Noreba)
	var reqs []simReq
	for i := range inos {
		for _, name := range names {
			reqs = append(reqs, simReq{workload: name, cfg: inos[i]}, simReq{workload: name, cfg: norebas[i]})
		}
	}
	return reqs, nil
}

// Figure12 compares NOREBA's speedup over in-order commit across the
// Nehalem-, Haswell- and Skylake-like cores (Table 3).
func (r *Runner) Figure12() (*metrics.Table, error) {
	tab := metrics.NewTable("Figure 12: NOREBA speedup over InO-C per core", "NHM", "HSW", "SKL")
	inos := coreConfigs(pipeline.InOrder)
	norebas := coreConfigs(pipeline.Noreba)
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.figure12Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	var vals []float64
	for i := range inos {
		var speedups []float64
		for _, name := range names {
			base, err := r.Simulate(name, inos[i])
			if err != nil {
				return nil, err
			}
			st, err := r.Simulate(name, norebas[i])
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, metrics.Speedup(base.Cycles, st.Cycles))
		}
		vals = append(vals, metrics.Geomean(speedups))
	}
	tab.AddRow("NOREBA/InO-C", vals...)
	return tab, nil
}

// figure13Variants are the policy/prefetcher combinations of Figure 13.
var figure13Variants = []struct {
	name     string
	policy   pipeline.PolicyKind
	prefetch bool
}{
	{"InO-C+pf", pipeline.InOrder, true},
	{"NOREBA no-pf", pipeline.Noreba, false},
	{"NOREBA+pf", pipeline.Noreba, true},
}

// figure13Base is Figure 13's normalisation baseline: the NHM in-order core.
func figure13Base() pipeline.Config {
	nhmBase := pipeline.NehalemConfig()
	nhmBase.Policy = pipeline.InOrder
	return nhmBase
}

func (r *Runner) figure13Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: figure13Base()})
		for _, v := range figure13Variants {
			for _, core := range coreConfigs(v.policy) {
				core.PrefetchEnabled = v.prefetch
				reqs = append(reqs, simReq{workload: name, cfg: core})
			}
		}
	}
	return reqs, nil
}

// Figure13 evaluates prefetching: in-order and NOREBA, with and without the
// DCPT prefetcher, normalised to the NHM in-order core with prefetching.
func (r *Runner) Figure13() (*metrics.Table, error) {
	tab := metrics.NewTable("Figure 13: prefetching effectiveness (normalised to NHM InO-C + prefetch)",
		"NHM", "HSW", "SKL")
	nhmBase := figure13Base()
	variants := figure13Variants
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	reqs, err := r.figure13Reqs()
	if err != nil {
		return nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, err
	}
	for _, v := range variants {
		cores := coreConfigs(v.policy)
		var vals []float64
		for _, core := range cores {
			core.PrefetchEnabled = v.prefetch
			var speedups []float64
			for _, name := range names {
				base, err := r.Simulate(name, nhmBase)
				if err != nil {
					return nil, err
				}
				st, err := r.Simulate(name, core)
				if err != nil {
					return nil, err
				}
				speedups = append(speedups, metrics.Speedup(base.Cycles, st.Cycles))
			}
			vals = append(vals, metrics.Geomean(speedups))
		}
		tab.AddRow(v.name, vals...)
	}
	return tab, nil
}

// figure14Rows lists the non-baseline configurations of Figure 14.
func figure14Rows() []pipeline.Config {
	inoECL := skylake(pipeline.InOrder)
	inoECL.ECL = true
	norebaECL := skylake(pipeline.Noreba)
	norebaECL.ECL = true
	return []pipeline.Config{inoECL, skylake(pipeline.Noreba), norebaECL}
}

func (r *Runner) figure14Reqs() ([]simReq, error) {
	return r.speedupReqs(skylake(pipeline.InOrder), figure14Rows())
}

// Figure14 measures Early Commit of Loads on both the in-order baseline and
// NOREBA.
func (r *Runner) Figure14() (*metrics.Table, error) {
	return r.speedupTable(
		"Figure 14: Early Commit of Loads (speedup over InO-C, SKL)",
		skylake(pipeline.InOrder), figure14Rows())
}

// figure15Rows lists the non-baseline configurations of Figure 15.
func figure15Rows() []pipeline.Config {
	wide := skylake(pipeline.InOrder)
	wide.CommitWidth = 8
	return []pipeline.Config{wide, skylake(pipeline.Noreba)}
}

func (r *Runner) figure15Reqs() ([]simReq, error) {
	return r.speedupReqs(skylake(pipeline.InOrder), figure15Rows())
}

// Figure15 shows that widening in-order commit does not substitute for
// out-of-order commit: InO-C with an 8-wide commit stage versus NOREBA.
func (r *Runner) Figure15() (*metrics.Table, error) {
	return r.speedupTable(
		"Figure 15: commit bandwidth (speedup over InO-C, SKL)",
		skylake(pipeline.InOrder), figure15Rows())
}

func (r *Runner) figure16Reqs() ([]simReq, error) {
	names, err := r.names()
	if err != nil {
		return nil, err
	}
	var reqs []simReq
	for _, name := range names {
		reqs = append(reqs, simReq{workload: name, cfg: skylake(pipeline.InOrder)}, simReq{workload: name, cfg: skylake(pipeline.Noreba)})
	}
	return reqs, nil
}

// Figure16 reports the per-structure power and area of NOREBA normalised to
// the in-order baseline core.
func (r *Runner) Figure16() (*metrics.Table, *metrics.Table, error) {
	var cols []string
	for _, s := range power.AllStructures {
		cols = append(cols, string(s))
	}
	cols = append(cols, "TOTAL")
	powTab := metrics.NewTable("Figure 16: power by structure (normalised to InO-C total)", cols...)
	areaTab := metrics.NewTable("Figure 16: area by structure (normalised to InO-C total)", cols...)

	names, err := r.names()
	if err != nil {
		return nil, nil, err
	}
	reqs, err := r.figure16Reqs()
	if err != nil {
		return nil, nil, err
	}
	if err := r.runAll(reqs); err != nil {
		return nil, nil, err
	}

	sum := func(policy pipeline.PolicyKind) (map[power.Structure]float64, map[power.Structure]float64, error) {
		pw := map[power.Structure]float64{}
		ar := map[power.Structure]float64{}
		for _, name := range names {
			cfg := skylake(policy)
			st, err := r.Simulate(name, cfg)
			if err != nil {
				return nil, nil, err
			}
			b := power.Estimate(cfg, st)
			for s, v := range b.Power {
				pw[s] += v
			}
			for s, v := range b.Area {
				ar[s] += v
			}
		}
		return pw, ar, nil
	}

	basePw, baseAr, err := sum(pipeline.InOrder)
	if err != nil {
		return nil, nil, err
	}
	norPw, norAr, err := sum(pipeline.Noreba)
	if err != nil {
		return nil, nil, err
	}

	total := func(m map[power.Structure]float64) float64 {
		t := 0.0
		for _, v := range m {
			t += v
		}
		return t
	}
	addRows := func(tab *metrics.Table, base, nor map[power.Structure]float64) {
		baseTotal := total(base)
		var baseVals, norVals []float64
		for _, s := range power.AllStructures {
			baseVals = append(baseVals, base[s]/baseTotal)
			norVals = append(norVals, nor[s]/baseTotal)
		}
		tab.AddRow("In-Order Commit", append(baseVals, 1.0)...)
		tab.AddRow("NOREBA", append(norVals, total(nor)/baseTotal)...)
	}
	addRows(powTab, basePw, norPw)
	addRows(areaTab, baseAr, norAr)
	return powTab, areaTab, nil
}

// Tables2And3 prints the system configuration tables the evaluation uses.
func Tables2And3() string {
	skl := pipeline.SkylakeConfig()
	out := "== Table 2: system configuration ==\n"
	out += fmt.Sprintf("L1i/L1d %dKB %dclk | L2 %dKB %dclk | L3 %dMB %dclk\n",
		skl.L1ISize>>10, skl.L1Lat, skl.L2Size>>10, skl.L2Lat, skl.L3Size>>20, skl.L3Lat)
	out += fmt.Sprintf("widths fetch/issue/commit %d/%d/%d | predictor TAGE-SC-L | prefetcher DCPT\n",
		skl.FetchWidth, skl.IssueWidth, skl.CommitWidth)
	sel := skl.Selective
	out += fmt.Sprintf("Selective ROB: ROB' = baseline ROB | BR-CQs %d x %d | PR-CQ %d | BIT/CQT %d/%d | CIT %d\n",
		sel.NumBRCQs, sel.BRCQSize, sel.PRCQSize, sel.BITSize, sel.CQTSize, sel.CITSize)

	out += "\n== Table 3: baseline microarchitectures ==\n"
	out += fmt.Sprintf("%-4s %5s %4s %6s %4s\n", "core", "ROB", "IQ", "LQ/SQ", "RF")
	for _, cfg := range []pipeline.Config{pipeline.NehalemConfig(), pipeline.HaswellConfig(), pipeline.SkylakeConfig()} {
		out += fmt.Sprintf("%-4s %5d %4d %3d/%-3d %4d\n", cfg.Name, cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize, cfg.RenameRegs)
	}
	return out
}
