package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// TestCfgKeyCoversConfig asserts by reflection that every pipeline.Config
// field participates in the simulation cache key: a same-named field exists
// on cfgKey, and mutating the Config field changes keyOf's result. A Config
// field added without a key counterpart fails here instead of silently
// aliasing cache entries. The exemptions are non-comparable observability
// hooks (FenceGate is a function value, TraceSink an interface) that the
// experiment suite never sets.
func TestCfgKeyCoversConfig(t *testing.T) {
	exempt := map[string]bool{"FenceGate": true, "TraceSink": true}

	cfgType := reflect.TypeOf(pipeline.Config{})
	keyType := reflect.TypeOf(cfgKey{})
	base := pipeline.SkylakeConfig()
	baseKey := keyOf(base)

	for i := 0; i < cfgType.NumField(); i++ {
		f := cfgType.Field(i)
		if exempt[f.Name] {
			continue
		}
		kf, ok := keyType.FieldByName(f.Name)
		if !ok {
			t.Errorf("pipeline.Config.%s has no counterpart in cfgKey; add it so the cache cannot alias", f.Name)
			continue
		}
		if kf.Type != f.Type {
			t.Errorf("cfgKey.%s has type %v, Config has %v", f.Name, kf.Type, f.Type)
		}

		mutated := base
		mutate(t, reflect.ValueOf(&mutated).Elem().FieldByName(f.Name), f.Name)
		if keyOf(mutated) == baseKey {
			t.Errorf("mutating pipeline.Config.%s does not change the cache key", f.Name)
		}
	}
}

// mutate changes v to a distinct value of its kind.
func mutate(t *testing.T, v reflect.Value, name string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Struct:
		if v.NumField() == 0 {
			t.Fatalf("field %s: empty struct cannot be mutated", name)
		}
		mutate(t, v.Field(0), name+"."+v.Type().Field(0).Name)
	default:
		t.Fatalf("field %s: no mutation rule for kind %v — extend mutate()", name, v.Kind())
	}
}

// TestUnknownWorkloadErrors: a misconfigured suite surfaces as an error from
// the figures, not a panic from deep inside suite().
func TestUnknownWorkloadErrors(t *testing.T) {
	r := QuickRunner()
	r.MaxInsts = 1 << 12
	r.Workloads = []string{"mcf", "no-such-workload"}
	if _, err := r.Figure8(); err == nil {
		t.Fatal("Figure8 with an unknown workload should error")
	} else if !strings.Contains(err.Error(), "no-such-workload") {
		t.Errorf("error should name the bad workload, got: %v", err)
	}
	if _, err := r.names(); err == nil {
		t.Error("names() with an unknown workload should error")
	}
	// The direct simulation path fails the same way: compilation reports the
	// unknown name instead of panicking, and the error is not cached as a
	// phantom success.
	if _, err := r.Simulate("no-such-workload", skylake(pipeline.Noreba)); err == nil {
		t.Error("Simulate with an unknown workload should error")
	} else if !strings.Contains(err.Error(), "no-such-workload") {
		t.Errorf("Simulate error should name the bad workload, got: %v", err)
	}
	if _, err := r.Simulate("mcf", skylake(pipeline.Noreba)); err != nil {
		t.Errorf("valid workload on the same runner should still simulate: %v", err)
	}
}

// TestConcurrentFiguresDedup runs two figures with overlapping simulation
// sets concurrently on one runner (under -race this also proves the
// scheduler is data-race-free) and asserts singleflight coalescing: every
// distinct (workload, config) key executed exactly once, even though the
// figures requested many of them at the same time.
func TestConcurrentFiguresDedup(t *testing.T) {
	r := QuickRunner()
	r.MaxInsts = 1 << 15
	r.Parallelism = 4

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = r.Figure6() }()
	go func() { defer wg.Done(); _, errs[1] = r.Figure14() }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	run, unique, calls := r.SimulationsRun(), int64(r.UniqueSimulations()), r.SimulateCalls()
	if run != unique {
		t.Errorf("%d simulations executed for %d unique keys; singleflight should make these equal", run, unique)
	}
	if calls <= run {
		t.Errorf("%d Simulate calls for %d executions; the figures overlap, so dedup should have saved work", calls, run)
	}
}

// TestParallelMatchesSequential is the golden-equivalence proof for the
// scheduler: every statistic of every (workload, policy) pair in the
// Figure 6 set, produced by the parallel runner over live emulator streams,
// is bit-identical to a sequential materialized-trace simulation.
func TestParallelMatchesSequential(t *testing.T) {
	r := QuickRunner()
	r.MaxInsts = 1 << 16
	policies := []pipeline.PolicyKind{
		pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba,
		pipeline.IdealReconv, pipeline.SpecBR,
	}

	names, err := r.names()
	if err != nil {
		t.Fatal(err)
	}
	var reqs []simReq
	for _, name := range names {
		for _, p := range policies {
			reqs = append(reqs, simReq{workload: name, cfg: skylake(p)})
		}
	}
	if err := r.runAll(reqs); err != nil {
		t.Fatal(err)
	}

	for _, name := range names {
		res, err := compileWorkload(name, r.ScaleDiv)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := emulator.New(res.Image).Run(r.MaxInsts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range policies {
			cfg := normalize(skylake(p))
			want, err := pipeline.NewCore(cfg, tr, res.Meta).Run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Simulate(name, skylake(p))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s under %v: parallel run differs from sequential reference\nparallel:   %+v\nsequential: %+v",
					name, p, got, want)
			}
		}
	}
}
