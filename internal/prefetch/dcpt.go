// Package prefetch implements the Delta-Correlating Prediction Tables
// (DCPT) data prefetcher the paper's baseline uses (Grannæs, Jahre, Natvig,
// JILP 2011). Each load PC owns a table entry holding a circular buffer of
// recent address deltas; on every access the two most recent deltas are
// pattern-matched against the delta history, and the deltas that followed
// the previous occurrence of that pair generate prefetch candidates.
package prefetch

// numDeltas is the per-entry delta-history size.
const numDeltas = 16

// entry is one DCPT row.
type entry struct {
	pc           int
	lastAddr     int64
	lastPrefetch int64
	deltas       [numDeltas]int64
	head         int
	valid        bool
}

// DCPT is the delta-correlating prediction table.
type DCPT struct {
	entries []entry
	degree  int // max prefetches issued per access

	// Trained counts table updates; Predicted counts candidate addresses
	// produced.
	Trained   int64
	Predicted int64
}

// New returns a DCPT with the given number of table entries and prefetch
// degree.
func New(tableSize, degree int) *DCPT {
	if tableSize < 1 {
		tableSize = 1
	}
	if degree < 1 {
		degree = 4
	}
	return &DCPT{entries: make([]entry, tableSize), degree: degree}
}

func (d *DCPT) slot(pc int) *entry { return &d.entries[pc%len(d.entries)] }

// Clone returns an independent deep copy of the table, training statistics
// included. The delta histories are value arrays, so copying the entry slice
// copies everything.
func (d *DCPT) Clone() *DCPT {
	cp := *d
	cp.entries = append([]entry(nil), d.entries...)
	return &cp
}

// Train records a load at pc touching addr and returns the prefetch
// candidate addresses predicted by delta correlation.
func (d *DCPT) Train(pc int, addr int64) []int64 {
	d.Trained++
	e := d.slot(pc)
	if !e.valid || e.pc != pc {
		*e = entry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	delta := addr - e.lastAddr
	if delta == 0 {
		return nil
	}
	e.lastAddr = addr
	e.deltas[e.head] = delta
	e.head = (e.head + 1) % numDeltas

	cands := d.correlate(e, addr)
	if len(cands) > 0 {
		e.lastPrefetch = cands[len(cands)-1]
	}
	d.Predicted += int64(len(cands))
	return cands
}

// correlate searches the delta buffer (newest to oldest) for the most
// recent earlier occurrence of the two newest deltas, then replays the
// deltas that followed it.
func (d *DCPT) correlate(e *entry, addr int64) []int64 {
	get := func(i int) int64 { // i = 0 newest
		return e.deltas[(e.head-1-i+2*numDeltas)%numDeltas]
	}
	d1, d2 := get(0), get(1)
	if d2 == 0 {
		return nil
	}
	// Find the pair (d2, d1) at an older position j (j = index of the d1
	// element of the matched pair, newest-relative).
	match := -1
	for j := 2; j < numDeltas-1; j++ {
		if get(j) == d1 && get(j+1) == d2 {
			match = j
			break
		}
	}
	if match == -1 {
		return nil
	}
	// Replay the deltas that followed the match (positions match-1 … 0).
	var out []int64
	a := addr
	for j := match - 1; j >= 0 && len(out) < d.degree; j-- {
		dd := get(j)
		if dd == 0 {
			break
		}
		a += dd
		// Suppress duplicates already prefetched.
		if a == e.lastPrefetch {
			continue
		}
		out = append(out, a)
	}
	return out
}
