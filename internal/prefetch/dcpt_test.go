package prefetch

import "testing"

func TestConstantStridePrediction(t *testing.T) {
	d := New(128, 4)
	var got []int64
	addr := int64(0)
	for i := 0; i < 10; i++ {
		got = d.Train(100, addr)
		addr += 64
	}
	if len(got) == 0 {
		t.Fatal("no prefetches for constant stride")
	}
	// The last trained address was 576; prefetches must continue the +64
	// pattern ahead of it (addresses already issued by earlier calls are
	// deduplicated, so the list may start further ahead).
	for i, a := range got {
		if a <= 576 || a%64 != 0 {
			t.Errorf("prefetch[%d] = %d, not ahead on the +64 pattern", i, a)
		}
		if i > 0 && a != got[i-1]+64 {
			t.Errorf("prefetch[%d] = %d, want %d", i, a, got[i-1]+64)
		}
	}
}

func TestAlternatingDeltaPattern(t *testing.T) {
	// Deltas alternate +8, +56 (struct-field access pattern). DCPT's pair
	// correlation should reproduce it; a plain stride prefetcher could not.
	d := New(128, 2)
	addr := int64(0)
	var got []int64
	deltas := []int64{8, 56}
	for i := 0; i < 12; i++ {
		got = d.Train(7, addr)
		addr += deltas[i%2]
	}
	if len(got) == 0 {
		t.Fatal("no prefetches for alternating deltas")
	}
	// After training ends the last delta applied was deltas[11%2]=56 …
	// addr sequence: verify each candidate continues the alternation from
	// the last trained address.
	last := addr - deltas[11%2] // address passed to the final Train call
	next := deltas[1]           // pattern after (…,56,8) is 56 again? verify monotone growth instead
	_ = next
	prev := last
	for _, a := range got {
		if a <= prev {
			t.Errorf("prefetch %d not ahead of %d", a, prev)
		}
		prev = a
	}
}

func TestNoPredictionWithoutPattern(t *testing.T) {
	d := New(128, 4)
	// Random-looking deltas with no repeating pair.
	addrs := []int64{0, 100, 250, 370, 1000, 1200, 1900, 2500}
	var got []int64
	for _, a := range addrs {
		got = d.Train(3, a)
	}
	if len(got) != 0 {
		t.Errorf("unexpected prefetches %v for pattern-free stream", got)
	}
}

func TestZeroDeltaIgnored(t *testing.T) {
	d := New(128, 4)
	for i := 0; i < 10; i++ {
		if got := d.Train(9, 4096); len(got) != 0 {
			t.Fatalf("prefetches %v for repeated same address", got)
		}
	}
}

func TestEntriesAreIndependentPerPC(t *testing.T) {
	d := New(128, 4)
	a1, a2 := int64(0), int64(1<<20)
	var got1, got2 []int64
	for i := 0; i < 10; i++ {
		got1 = d.Train(11, a1)
		got2 = d.Train(12, a2)
		a1 += 64
		a2 += 128
	}
	if len(got1) == 0 || len(got2) == 0 {
		t.Fatal("interleaved streams not both predicted")
	}
	if got1[0] >= 1<<20 || got2[0] < 1<<20 {
		t.Error("streams crossed between PCs")
	}
}

func TestTableConflictResets(t *testing.T) {
	d := New(1, 4) // every PC maps to the same entry
	for i := 0; i < 6; i++ {
		d.Train(1, int64(i*64))
	}
	// A different PC steals the entry.
	if got := d.Train(2, 0); len(got) != 0 {
		t.Errorf("stolen entry produced prefetches %v", got)
	}
	// The original PC must re-train from scratch without panicking.
	if got := d.Train(1, 0); len(got) != 0 {
		t.Errorf("reset entry produced prefetches %v", got)
	}
}

func TestDegreeLimitsCandidates(t *testing.T) {
	d := New(128, 2)
	addr := int64(0)
	var got []int64
	for i := 0; i < 14; i++ {
		got = d.Train(5, addr)
		addr += 64
	}
	if len(got) > 2 {
		t.Errorf("degree-2 prefetcher produced %d candidates", len(got))
	}
}
