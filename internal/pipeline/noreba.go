package pipeline

import "github.com/noreba-sim/noreba/internal/sanity"

// norebaPolicy implements the Selective ROB (§4.2) with its support
// structures: decoded instructions sit in ROB′ (the main ROB, FIFO) and are
// steered from its head into the Primary Commit Queue or one of the Branch
// Commit Queues according to their BranchID; the Commit Queue Table (CQT)
// maps live branches to queues; the Committed Instructions Table (CIT)
// records out-of-order-committed instructions so their re-fetch after a
// misprediction is dropped at decode (§4.3).
//
// Queue index 0 is PR-CQ; 1..NumBRCQs are BR-CQs.
type norebaPolicy struct {
	cfg SelectiveROBConfig

	queues   [][]*Entry
	brcqLive []int // uncommitted branches resident per BR-CQ

	cqt map[int64]cqtEntry // branch seq → queue
	cit []int              // trace indices of live CIT entries
	rr  int                // round-robin start among BR-CQs at commit
}

type cqtEntry struct {
	queue  int
	branch *Entry
}

func newNorebaPolicy(cfg SelectiveROBConfig) *norebaPolicy {
	p := &norebaPolicy{
		cfg:      cfg,
		queues:   make([][]*Entry, 1+cfg.NumBRCQs),
		brcqLive: make([]int, cfg.NumBRCQs),
		cqt:      map[int64]cqtEntry{},
	}
	return p
}

func (p *norebaPolicy) dispatch(*Core, *Entry) {}

func (p *norebaPolicy) queueSize(q int) int {
	if q == 0 {
		return p.cfg.PRCQSize
	}
	return p.cfg.BRCQSize
}

// steer moves instructions from the ROB′ head into commit queues (step ❸
// of Table 1). It returns whether it stalled with work remaining.
func (p *norebaPolicy) steer(c *Core, cycle int64) bool {
	steered := 0
	for steered < p.cfg.SteerWidth {
		e := p.robPrimeHead(c)
		if e == nil {
			return false
		}
		// Loads and stores are steered only once their translation
		// succeeded (§4.2).
		if e.isMem && !(e.issued && e.addrReadyAt <= cycle) {
			return true
		}
		// A synchronisation barrier holds the ROB′ head until every older
		// branch has resolved; it then commits strictly in order (§4.5).
		if e.isFence && !c.allOlderBranchesResolved(e) {
			return true
		}

		q, ok := p.chooseQueue(c, e, cycle)
		if !ok {
			return true
		}
		if len(p.queues[q]) >= p.queueSize(q) {
			return true
		}
		if e.isCondBranch && e.dep.BranchID > 0 {
			if p.liveCQT() >= p.cfg.CQTSize {
				c.stats.CQTFullStalls++
				return true
			}
			p.cqt[e.Seq()] = cqtEntry{queue: q, branch: e}
			if q > 0 {
				p.brcqLive[q-1]++
			}
		}

		e.steered = true
		e.queue = q
		p.queues[q] = append(p.queues[q], e)
		c.robOcc--
		c.stats.Steered++
		steered++
	}
	return false
}

// liveCQT counts CQT entries for still-unresolved branches; resolved
// branches no longer steer dependents, so their slots are reusable.
func (p *norebaPolicy) liveCQT() int {
	n := 0
	for _, ce := range p.cqt {
		if !ce.branch.resolved {
			n++
		}
	}
	return n
}

// robPrimeHead returns the oldest dispatched, unsteered, unsquashed entry.
func (p *norebaPolicy) robPrimeHead(c *Core) *Entry {
	for _, e := range c.rob {
		if !e.steered {
			return e
		}
	}
	return nil
}

// chooseQueue applies the steering rules. ok=false means the head must
// stall this cycle.
func (p *norebaPolicy) chooseQueue(c *Core, e *Entry, cycle int64) (int, bool) {
	// Resolve the instruction's own dependence to "free" or "queue q".
	depQueue := -1 // -1: no live governing branch
	switch {
	case e.dep.DepSeq == DepOrdered:
		// Invalid BIT reference (e.g. a loop's first iteration): serialise
		// until every older branch has resolved.
		if !c.allOlderBranchesResolved(e) {
			return 0, false
		}
	case e.dep.DepSeq >= 0:
		if ce, ok := p.cqt[e.dep.DepSeq]; ok && !ce.branch.resolved {
			// Live (unresolved) governing branch: follow its queue.
			depQueue = ce.queue
		} else if ok {
			// The governing branch has resolved: it is no longer "live"
			// and its dependents flow through the primary queue.
		} else {
			idx := int(e.dep.DepSeq)
			switch {
			case c.win.isCommitted(idx):
				// Governing branch committed: dependence satisfied.
			case !c.win.isFetched(idx):
				// Governing instance was skipped by window fetch: this is
				// wrong-path-dependent work; hold it at the head until the
				// recovery squashes it.
				return 0, false
			default:
				// Governing branch fetched but not yet steered — it is
				// older, so it must be blocked at the head itself; stall.
				return 0, false
			}
		}
	}

	if e.isCondBranch || e.isJalr {
		marked := e.isCondBranch && e.dep.BranchID > 0
		if !marked {
			// Unmarked control transfer: no compiler information, so the
			// hardware serialises at it (commit degenerates to in-order
			// across it).
			if !e.resolved {
				return 0, false
			}
			if depQueue >= 0 {
				return depQueue, true
			}
			return 0, true
		}
		// Marked branch. A resolved branch flows with its governing queue
		// (or PR-CQ); an unresolved branch ALWAYS takes a BR-CQ — steering
		// it into PR-CQ behind a live parent would block the primary queue
		// for its whole resolution latency. Cross-queue ordering stays
		// non-speculative via the commit-time dep-committed check.
		//
		// BR-CQs are FIFOs, so several unresolved branches may share one
		// queue (they then drain in steering order); an empty, branch-free
		// queue is preferred so that independent branches commit
		// independently (the astar case of §3), and the least-occupied
		// queue is used otherwise. When all BR-CQs are full the head
		// stalls — this is Figure 9's saturation knob.
		if e.resolved {
			if depQueue >= 0 {
				return depQueue, true
			}
			return 0, true
		}
		for k := 0; k < p.cfg.NumBRCQs; k++ {
			if p.brcqLive[k] == 0 && len(p.queues[k+1]) == 0 {
				return k + 1, true
			}
		}
		best, bestLen := -1, 1<<30
		for k := 0; k < p.cfg.NumBRCQs; k++ {
			if n := len(p.queues[k+1]); n < p.cfg.BRCQSize && n < bestLen {
				best, bestLen = k+1, n
			}
		}
		if best > 0 {
			return best, true
		}
		return 0, false
	}

	if depQueue >= 0 {
		return depQueue, true
	}
	return 0, true
}

func (p *norebaPolicy) commit(c *Core, cycle int64, width int) int {
	if p.steer(c, cycle) {
		c.stats.SteerStalls++
	}

	n := 0
	for n < width {
		committed := false
		// PR-CQ has priority; BR-CQs are examined round-robin.
		order := make([]int, 0, len(p.queues))
		order = append(order, 0)
		for k := 0; k < p.cfg.NumBRCQs; k++ {
			order = append(order, 1+(p.rr+k)%p.cfg.NumBRCQs)
		}
		for _, qi := range order {
			if n == width {
				break
			}
			queue := p.queues[qi]
			for len(queue) > 0 && queue[0].squashed {
				queue = queue[1:]
			}
			p.queues[qi] = queue
			if len(queue) == 0 {
				continue
			}
			e := queue[0]
			if !c.eligible(e, cycle, true, false) {
				continue
			}
			// Non-speculative release: the governing branch instance must
			// have resolved (§4.2 — dependents "wait for its branch to
			// resolve before becoming eligible for commit"). Same-queue
			// FIFO order gives this for free; the check also covers
			// branches that steered to a different queue. Misprediction
			// windows are covered by the poisoning rules in eligible.
			if !depSatisfied(c, e) {
				continue
			}
			ooo := e.idx != c.frontierIdx
			if ooo && len(p.cit) >= p.cfg.CITSize {
				c.stats.CITFullStalls++
				continue
			}
			p.queues[qi] = queue[1:]
			if e.isCondBranch {
				if ce, ok := p.cqt[e.Seq()]; ok {
					delete(p.cqt, e.Seq())
					if ce.queue > 0 {
						p.brcqLive[ce.queue-1]--
					}
				}
			}
			c.commitEntry(e)
			if ooo {
				p.cit = append(p.cit, e.idx)
				c.stats.CITAllocs++
				if int64(len(p.cit)) > c.stats.CITPeak {
					c.stats.CITPeak = int64(len(p.cit))
				}
			}
			n++
			committed = true
		}
		if !committed {
			break
		}
		p.rr = (p.rr + 1) % maxInt(1, p.cfg.NumBRCQs)
	}

	// CIT reclamation (§4.3): an entry is dead once no recovery can ever
	// re-fetch its instruction — every branch older than it has resolved
	// (only an older unresolved branch could redirect fetch before it) and
	// the fetch cursor has already passed it (no in-progress refetch still
	// needs the drop). This matches the paper's "commit of the most recent
	// unresolved branch" intent while staying provably safe.
	freeBound := c.win.loadedEnd()
	if b := c.oldestUnresolvedBranch(); b != nil {
		freeBound = b.idx
	}
	live := p.cit[:0]
	for _, idx := range p.cit {
		if idx < freeBound && idx < c.cursor {
			continue
		}
		live = append(live, idx)
	}
	p.cit = live

	return n
}

func (p *norebaPolicy) squash(c *Core, seq int64) {
	for qi := range p.queues {
		keep := p.queues[qi][:0]
		for _, e := range p.queues[qi] {
			if !e.squashed {
				keep = append(keep, e)
			}
		}
		p.queues[qi] = keep
	}
	for s, ce := range p.cqt {
		if ce.branch.squashed {
			delete(p.cqt, s)
			if ce.queue > 0 {
				p.brcqLive[ce.queue-1]--
			}
		}
	}
}

func (p *norebaPolicy) accumulate(c *Core) {
	c.stats.PRCQOcc += int64(len(p.queues[0]))
	for k := 0; k < p.cfg.NumBRCQs; k++ {
		c.stats.BRCQOcc += int64(len(p.queues[k+1]))
	}
}

// check validates the Selective ROB's private structures for the sanitizer:
// queue capacities and FIFO age order, steering labels, CIT capacity and
// content (only committed, unique trace indices — §4.3), and CQT/BR-CQ
// branch-liveness consistency.
func (p *norebaPolicy) check(c *Core, cycle int64) *sanity.Error {
	for qi, queue := range p.queues {
		size := p.queueSize(qi)
		if len(queue) > size {
			return sanity.Errorf("cq/capacity", cycle, "queue %d holds %d entries, size %d", qi, len(queue), size)
		}
		lastSeq := int64(-1)
		for _, e := range queue {
			if e.squashed {
				continue
			}
			if !e.steered || e.queue != qi {
				return sanity.At("cq/mislabel", cycle, e.d.PC, e.Seq(),
					"entry in queue %d has steered=%t queue=%d", qi, e.steered, e.queue)
			}
			if e.committed {
				return sanity.At("cq/committed-resident", cycle, e.d.PC, e.Seq(),
					"committed entry still resident in queue %d", qi)
			}
			if e.Seq() <= lastSeq {
				return sanity.At("cq/age-order", cycle, e.d.PC, e.Seq(),
					"queue %d out of steering order: seq %d after seq %d", qi, e.Seq(), lastSeq)
			}
			lastSeq = e.Seq()
		}
	}

	if len(p.cit) > p.cfg.CITSize {
		return sanity.Errorf("cit/capacity", cycle, "CIT holds %d entries, size %d", len(p.cit), p.cfg.CITSize)
	}
	seen := make(map[int]bool, len(p.cit))
	for _, idx := range p.cit {
		if seen[idx] {
			return sanity.Errorf("cit/duplicate", cycle, "trace index %d recorded twice in the CIT", idx)
		}
		seen[idx] = true
		if !c.win.isCommitted(idx) {
			return sanity.Errorf("cit/uncommitted", cycle, "CIT records uncommitted trace index %d", idx)
		}
	}

	if n := p.liveCQT(); n > p.cfg.CQTSize {
		return sanity.Errorf("cqt/capacity", cycle, "%d live CQT entries, size %d", n, p.cfg.CQTSize)
	}
	counts := make([]int, p.cfg.NumBRCQs)
	for _, ce := range p.cqt {
		if ce.branch.squashed {
			return sanity.At("cqt/squashed", cycle, ce.branch.d.PC, ce.branch.Seq(),
				"CQT entry for a squashed branch")
		}
		if ce.queue > 0 {
			counts[ce.queue-1]++
		}
	}
	for k, n := range counts {
		if n != p.brcqLive[k] {
			return sanity.Errorf("cqt/brcq-live", cycle,
				"BR-CQ %d liveness counter %d but %d CQT branches map to it", k, p.brcqLive[k], n)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
