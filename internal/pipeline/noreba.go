package pipeline

import "github.com/noreba-sim/noreba/internal/sanity"

// norebaPolicy implements the Selective ROB (§4.2) with its support
// structures: decoded instructions sit in ROB′ (the main ROB, FIFO) and are
// steered from its head into the Primary Commit Queue or one of the Branch
// Commit Queues according to their BranchID; the Commit Queue Table (CQT)
// maps live branches to queues; the Committed Instructions Table (CIT)
// records out-of-order-committed instructions so their re-fetch after a
// misprediction is dropped at decode (§4.3).
//
// Queue index 0 is PR-CQ; 1..NumBRCQs are BR-CQs. All structures are
// incremental: ROB′ is a FIFO fed at dispatch (replacing a per-cycle scan
// for the oldest unsteered entry), the CQT is a seq-sorted slice with a
// maintained live count (replacing a map that was recounted per steer), and
// CIT reclamation skips its scan while the oldest recorded index cannot be
// freed yet.
type norebaPolicy struct {
	cfg SelectiveROBConfig

	robPrime entryDeque   // dispatched, unsteered entries in dispatch order
	queues   []entryDeque // commit queues (FIFO in steering order)
	brcqLive []int        // uncommitted branches resident per BR-CQ

	cqt     []cqtSlot // branch seq → queue, sorted by seq
	cqtLive int       // cqt slots whose branch is still unresolved

	cit    []int // trace indices of live CIT entries
	citMin int   // smallest index in cit (intMax when empty)
	rr     int   // round-robin start among BR-CQs at commit
}

type cqtSlot struct {
	seq    int64
	queue  int
	branch *Entry
}

const intMax = int(^uint(0) >> 1)

func newNorebaPolicy(cfg SelectiveROBConfig) *norebaPolicy {
	return &norebaPolicy{
		cfg:      cfg,
		queues:   make([]entryDeque, 1+cfg.NumBRCQs),
		brcqLive: make([]int, cfg.NumBRCQs),
		citMin:   intMax,
	}
}

func (p *norebaPolicy) dispatch(_ *Core, e *Entry) { p.robPrime.push(e) }

// resolve keeps the live-CQT count current: a resolved branch no longer
// steers dependents, so its slot becomes reusable.
func (p *norebaPolicy) resolve(_ *Core, e *Entry) {
	if e.cqtCounted {
		p.cqtLive--
		e.cqtCounted = false
	}
}

func (p *norebaPolicy) queueSize(q int) int {
	if q == 0 {
		return p.cfg.PRCQSize
	}
	return p.cfg.BRCQSize
}

// cqtFind returns the index of the slot for seq, or -1. Slots are inserted
// in steering order, which is age order, so the slice stays seq-sorted.
func (p *norebaPolicy) cqtFind(seq int64) int {
	lo, hi := 0, len(p.cqt)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cqt[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.cqt) && p.cqt[lo].seq == seq {
		return lo
	}
	return -1
}

func (p *norebaPolicy) cqtRemove(seq int64) {
	i := p.cqtFind(seq)
	if i < 0 {
		return
	}
	if q := p.cqt[i].queue; q > 0 {
		p.brcqLive[q-1]--
	}
	copy(p.cqt[i:], p.cqt[i+1:])
	p.cqt[len(p.cqt)-1] = cqtSlot{}
	p.cqt = p.cqt[:len(p.cqt)-1]
}

// steer moves instructions from the ROB′ head into commit queues (step ❸
// of Table 1). It returns whether it stalled with work remaining.
func (p *norebaPolicy) steer(c *Core, cycle int64) bool {
	steered := 0
	for steered < p.cfg.SteerWidth {
		e := p.robPrime.front()
		if e == nil {
			return false
		}
		// Loads and stores are steered only once their translation
		// succeeded (§4.2).
		if e.isMem && !(e.issued && e.addrReadyAt <= cycle) {
			return true
		}
		// A synchronisation barrier holds the ROB′ head until every older
		// branch has resolved; it then commits strictly in order (§4.5).
		if e.isFence && !c.allOlderBranchesResolved(e) {
			return true
		}

		q, ok := p.chooseQueue(c, e, cycle)
		if !ok {
			return true
		}
		if p.queues[q].len() >= p.queueSize(q) {
			return true
		}
		if e.isCondBranch && e.dep.BranchID > 0 {
			if p.cqtLive >= p.cfg.CQTSize {
				c.stats.CQTFullStalls++
				return true
			}
			p.cqt = append(p.cqt, cqtSlot{seq: e.Seq(), queue: q, branch: e})
			if !e.resolved {
				p.cqtLive++
				e.cqtCounted = true
			}
			if q > 0 {
				p.brcqLive[q-1]++
			}
		}

		p.robPrime.popFront()
		e.steered = true
		e.queue = q
		p.queues[q].push(e)
		c.robOcc--
		c.stats.Steered++
		steered++
	}
	return false
}

// liveCQT recounts CQT slots for still-unresolved branches; the hot path
// uses the maintained cqtLive counter, this re-derivation backs the
// sanitizer's cross-check.
func (p *norebaPolicy) liveCQT() int {
	n := 0
	for i := range p.cqt {
		if !p.cqt[i].branch.resolved {
			n++
		}
	}
	return n
}

// chooseQueue applies the steering rules. ok=false means the head must
// stall this cycle.
func (p *norebaPolicy) chooseQueue(c *Core, e *Entry, cycle int64) (int, bool) {
	// Resolve the instruction's own dependence to "free" or "queue q".
	depQueue := -1 // -1: no live governing branch
	switch {
	case e.dep.DepSeq == DepOrdered:
		// Invalid BIT reference (e.g. a loop's first iteration): serialise
		// until every older branch has resolved.
		if !c.allOlderBranchesResolved(e) {
			return 0, false
		}
	case e.dep.DepSeq >= 0:
		if i := p.cqtFind(e.dep.DepSeq); i >= 0 {
			if !p.cqt[i].branch.resolved {
				// Live (unresolved) governing branch: follow its queue.
				depQueue = p.cqt[i].queue
			}
			// Otherwise the governing branch has resolved: it is no longer
			// "live" and its dependents flow through the primary queue.
		} else {
			idx := int(e.dep.DepSeq)
			switch {
			case c.win.isCommitted(idx):
				// Governing branch committed: dependence satisfied.
			case !c.win.isFetched(idx):
				// Governing instance was skipped by window fetch: this is
				// wrong-path-dependent work; hold it at the head until the
				// recovery squashes it.
				return 0, false
			default:
				// Governing branch fetched but not yet steered — it is
				// older, so it must be blocked at the head itself; stall.
				return 0, false
			}
		}
	}

	if e.isCondBranch || e.isJalr {
		marked := e.isCondBranch && e.dep.BranchID > 0
		if !marked {
			// Unmarked control transfer: no compiler information, so the
			// hardware serialises at it (commit degenerates to in-order
			// across it).
			if !e.resolved {
				return 0, false
			}
			if depQueue >= 0 {
				return depQueue, true
			}
			return 0, true
		}
		// Marked branch. A resolved branch flows with its governing queue
		// (or PR-CQ); an unresolved branch ALWAYS takes a BR-CQ — steering
		// it into PR-CQ behind a live parent would block the primary queue
		// for its whole resolution latency. Cross-queue ordering stays
		// non-speculative via the commit-time dep-committed check.
		//
		// BR-CQs are FIFOs, so several unresolved branches may share one
		// queue (they then drain in steering order); an empty, branch-free
		// queue is preferred so that independent branches commit
		// independently (the astar case of §3), and the least-occupied
		// queue is used otherwise. When all BR-CQs are full the head
		// stalls — this is Figure 9's saturation knob.
		if e.resolved {
			if depQueue >= 0 {
				return depQueue, true
			}
			return 0, true
		}
		for k := 0; k < p.cfg.NumBRCQs; k++ {
			if p.brcqLive[k] == 0 && p.queues[k+1].len() == 0 {
				return k + 1, true
			}
		}
		best, bestLen := -1, 1<<30
		for k := 0; k < p.cfg.NumBRCQs; k++ {
			if n := p.queues[k+1].len(); n < p.cfg.BRCQSize && n < bestLen {
				best, bestLen = k+1, n
			}
		}
		if best > 0 {
			return best, true
		}
		return 0, false
	}

	if depQueue >= 0 {
		return depQueue, true
	}
	return 0, true
}

func (p *norebaPolicy) commit(c *Core, cycle int64, width int) int {
	if p.steer(c, cycle) {
		c.stats.SteerStalls++
	}

	n := 0
	nbr := p.cfg.NumBRCQs
	for n < width {
		committed := false
		// PR-CQ has priority; BR-CQs are examined round-robin. The rotation
		// is a compare-and-subtract, not a modulo: k = rr+oi-1 stays below
		// 2*nbr, and integer division is measurably hot in this loop.
		for oi := 0; oi <= nbr && n < width; oi++ {
			qi := 0
			if oi > 0 {
				if k := p.rr + oi - 1; k >= nbr {
					qi = 1 + k - nbr
				} else {
					qi = 1 + k
				}
			}
			queue := &p.queues[qi]
			for queue.len() > 0 && queue.front().squashed {
				queue.popFront()
			}
			if queue.len() == 0 {
				continue
			}
			e := queue.front()
			if !c.eligible(e, cycle, true, false) {
				continue
			}
			// Non-speculative release: the governing branch instance must
			// have resolved (§4.2 — dependents "wait for its branch to
			// resolve before becoming eligible for commit"). Same-queue
			// FIFO order gives this for free; the check also covers
			// branches that steered to a different queue. Misprediction
			// windows are covered by the poisoning rules in eligible.
			if !depSatisfied(c, e) {
				continue
			}
			ooo := e.idx != c.frontierIdx
			if ooo && len(p.cit) >= p.cfg.CITSize {
				c.stats.CITFullStalls++
				continue
			}
			queue.popFront()
			if e.isCondBranch {
				p.cqtRemove(e.Seq())
			}
			c.commitEntry(e)
			if ooo {
				p.cit = append(p.cit, e.idx)
				if e.idx < p.citMin {
					p.citMin = e.idx
				}
				c.stats.CITAllocs++
				if int64(len(p.cit)) > c.stats.CITPeak {
					c.stats.CITPeak = int64(len(p.cit))
				}
			}
			n++
			committed = true
		}
		if !committed {
			break
		}
		if p.rr++; p.rr >= nbr {
			p.rr = 0
		}
	}

	// CIT reclamation (§4.3): an entry is dead once no recovery can ever
	// re-fetch its instruction — every branch older than it has resolved
	// (only an older unresolved branch could redirect fetch before it) and
	// the fetch cursor has already passed it (no in-progress refetch still
	// needs the drop). This matches the paper's "commit of the most recent
	// unresolved branch" intent while staying provably safe. The scan is
	// skipped while even the oldest recorded index cannot be freed.
	freeBound := c.win.loadedEnd()
	if b := c.oldestUnresolvedBranch(); b != nil {
		freeBound = b.idx
	}
	bound := freeBound
	if c.cursor < bound {
		bound = c.cursor
	}
	if p.citMin < bound {
		live := p.cit[:0]
		min := intMax
		for _, idx := range p.cit {
			if idx < freeBound && idx < c.cursor {
				continue
			}
			live = append(live, idx)
			if idx < min {
				min = idx
			}
		}
		p.cit = live
		p.citMin = min
	}

	return n
}

func (p *norebaPolicy) squash(c *Core, seq int64) {
	p.robPrime.purgeSquashed()
	for qi := range p.queues {
		p.queues[qi].purgeSquashed()
	}
	w := 0
	for i := range p.cqt {
		s := p.cqt[i]
		if s.branch.squashed {
			if s.branch.cqtCounted {
				p.cqtLive--
				s.branch.cqtCounted = false
			}
			if s.queue > 0 {
				p.brcqLive[s.queue-1]--
			}
			continue
		}
		p.cqt[w] = s
		w++
	}
	for i := w; i < len(p.cqt); i++ {
		p.cqt[i] = cqtSlot{}
	}
	p.cqt = p.cqt[:w]
}

func (p *norebaPolicy) accumulate(c *Core) {
	c.stats.PRCQOcc += int64(p.queues[0].len())
	for k := 0; k < p.cfg.NumBRCQs; k++ {
		c.stats.BRCQOcc += int64(p.queues[k+1].len())
	}
}

// check validates the Selective ROB's private structures for the sanitizer:
// queue capacities and FIFO age order, steering labels, CIT capacity and
// content (only committed, unique trace indices — §4.3), ROB′ content, and
// CQT/BR-CQ branch-liveness consistency including the maintained counters.
func (p *norebaPolicy) check(c *Core, cycle int64) *sanity.Error {
	for qi := range p.queues {
		queue := &p.queues[qi]
		size := p.queueSize(qi)
		if queue.len() > size {
			return sanity.Errorf("cq/capacity", cycle, "queue %d holds %d entries, size %d", qi, queue.len(), size)
		}
		lastSeq := int64(-1)
		for i := 0; i < queue.len(); i++ {
			e := queue.at(i)
			if e.squashed {
				continue
			}
			if !e.steered || e.queue != qi {
				return sanity.At("cq/mislabel", cycle, e.pc, e.Seq(),
					"entry in queue %d has steered=%t queue=%d", qi, e.steered, e.queue)
			}
			if e.committed {
				return sanity.At("cq/committed-resident", cycle, e.pc, e.Seq(),
					"committed entry still resident in queue %d", qi)
			}
			if e.Seq() <= lastSeq {
				return sanity.At("cq/age-order", cycle, e.pc, e.Seq(),
					"queue %d out of steering order: seq %d after seq %d", qi, e.Seq(), lastSeq)
			}
			lastSeq = e.Seq()
		}
	}

	for i := 0; i < p.robPrime.len(); i++ {
		e := p.robPrime.at(i)
		if e.steered {
			return sanity.At("robprime/steered", cycle, e.pc, e.Seq(),
				"steered entry still resident in ROB′")
		}
		if e.squashed {
			return sanity.At("robprime/squashed", cycle, e.pc, e.Seq(),
				"squashed entry resident in ROB′")
		}
	}

	if len(p.cit) > p.cfg.CITSize {
		return sanity.Errorf("cit/capacity", cycle, "CIT holds %d entries, size %d", len(p.cit), p.cfg.CITSize)
	}
	citMin := intMax
	seen := make(map[int]bool, len(p.cit))
	for _, idx := range p.cit {
		if seen[idx] {
			return sanity.Errorf("cit/duplicate", cycle, "trace index %d recorded twice in the CIT", idx)
		}
		seen[idx] = true
		if !c.win.isCommitted(idx) {
			return sanity.Errorf("cit/uncommitted", cycle, "CIT records uncommitted trace index %d", idx)
		}
		if idx < citMin {
			citMin = idx
		}
	}
	if citMin != p.citMin {
		return sanity.Errorf("cit/min", cycle, "CIT min tracker %d but smallest recorded index is %d", p.citMin, citMin)
	}

	if n := p.liveCQT(); n != p.cqtLive {
		return sanity.Errorf("cqt/live-count", cycle, "live-CQT counter %d but %d unresolved CQT branches", p.cqtLive, n)
	}
	if p.cqtLive > p.cfg.CQTSize {
		return sanity.Errorf("cqt/capacity", cycle, "%d live CQT entries, size %d", p.cqtLive, p.cfg.CQTSize)
	}
	counts := make([]int, p.cfg.NumBRCQs)
	lastSeq := int64(-1)
	for i := range p.cqt {
		s := p.cqt[i]
		if s.seq <= lastSeq {
			return sanity.Errorf("cqt/order", cycle, "CQT out of seq order: %d after %d", s.seq, lastSeq)
		}
		lastSeq = s.seq
		if s.branch.squashed {
			return sanity.At("cqt/squashed", cycle, s.branch.pc, s.branch.Seq(),
				"CQT entry for a squashed branch")
		}
		if s.queue > 0 {
			counts[s.queue-1]++
		}
	}
	for k, n := range counts {
		if n != p.brcqLive[k] {
			return sanity.Errorf("cqt/brcq-live", cycle,
				"BR-CQ %d liveness counter %d but %d CQT branches map to it", k, p.brcqLive[k], n)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
