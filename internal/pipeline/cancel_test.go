package pipeline

import (
	"context"
	"errors"
	"testing"
)

// TestRunContextCancelled: a cancelled context stops the run at the next
// cooperative check, returning the partial statistics accumulated so far and
// an error wrapping the context's cause.
func TestRunContextCancelled(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(400), true)
	cfg := SkylakeConfig()
	cfg.Policy = Noreba

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := NewCore(cfg, tr, meta).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st == nil {
		t.Fatal("cancelled run returned no partial statistics")
	}
	// A pre-cancelled context stops at the very first check: nothing (or
	// almost nothing) committed, far less than the full run.
	full := runPolicy(t, cfg, tr, meta)
	if st.Committed >= full.Committed {
		t.Errorf("cancelled run committed %d of %d — cancellation did not stop it", st.Committed, full.Committed)
	}
}

// TestRunContextCause: the error carries a custom cancellation cause.
func TestRunContextCause(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(400), true)
	cfg := SkylakeConfig()
	cfg.Policy = InOrder

	why := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(why)
	_, err := NewCore(cfg, tr, meta).RunContext(ctx)
	if !errors.Is(err, why) {
		t.Fatalf("err = %v, want cause %v", err, why)
	}
}

// TestRunMatchesRunContext: Run is exactly RunContext with a background
// context — same stats, bit for bit.
func TestRunMatchesRunContext(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(200), true)
	cfg := SkylakeConfig()
	cfg.Policy = Noreba

	a, err := NewCore(cfg, tr, meta).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCore(cfg, tr, meta).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.OoOCommitted != b.OoOCommitted {
		t.Errorf("Run and RunContext diverge: %d/%d/%d vs %d/%d/%d",
			a.Cycles, a.Committed, a.OoOCommitted, b.Cycles, b.Committed, b.OoOCommitted)
	}
}
