package pipeline

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// TestTable1EventActions mirrors the paper's Table 1 row by row against the
// decode-side model (BIT/DCT) and the Selective ROB steering rules.
func TestTable1EventActions(t *testing.T) {
	// Program: setBranchId 3 before a branch, then a region of 2 dependent
	// instructions after the join, then independent instructions.
	p := program.MustAssemble("table1", `
entry:
	li   a0, 1
	li   s0, 0x1000
	setBranchId 3
	beqz a0, join
arm:
	sw   a0, 0(s0)
join:
	setDependency 2 3
	lw   a1, 0(s0)
	addi a2, a1, 1
	addi a3, a3, 5
	halt
`)
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emulator.New(img).Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	deps := ComputeDeps(tr, 8)

	var branchSeq int64 = -1
	for i, d := range tr.Insts {
		if d.Inst.Op.IsCondBranch() {
			branchSeq = d.Seq
			// Row ❶a: setBranchId ID decoded → BIT[ID] = branch sequence
			// number; the branch instance carries its compiler ID.
			if deps[i].BranchID != 3 {
				t.Errorf("branch BranchID = %d, want 3", deps[i].BranchID)
			}
		}
	}
	if branchSeq < 0 {
		t.Fatal("no branch executed")
	}

	// Rows ❶b + ❷: setDependency NUM ID loads the DCT with (ID, BIT[ID])
	// and counter NUM; the next NUM ROB-entering instructions inherit the
	// dependence, later ones do not.
	depCount := 0
	for i, d := range tr.Insts {
		if d.Inst.Op.IsSetup() {
			continue
		}
		if deps[i].DepSeq == branchSeq {
			depCount++
		}
	}
	if depCount != 2 {
		t.Errorf("%d instructions carry the branch dependence, want 2 (the NUM field)", depCount)
	}
	// The trailing addi a3 and halt are independent (BranchID 0 rule).
	last := deps[len(deps)-1]
	if last.DepSeq != DepNone {
		t.Errorf("final instruction DepSeq = %d, want DepNone", last.DepSeq)
	}

	// Rows ❸: run the Selective ROB and verify steering decisions — the
	// dependent region ends up in the same queue as its branch (or commits
	// after its resolution), and total commits are conserved.
	cfg := SkylakeConfig()
	cfg.Policy = Noreba
	st, err := NewCore(cfg, tr, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(tr.Len()) - tr.Setup
	if st.Committed != want {
		t.Errorf("committed %d, want %d", st.Committed, want)
	}
	if st.Steered != st.Committed {
		t.Errorf("steered %d != committed %d on a squash-free program", st.Steered, st.Committed)
	}
}

// TestDCTSingleEntrySemantics: a second setDependency replaces the DCT
// (single-entry table), cutting the first region short.
func TestDCTSingleEntrySemantics(t *testing.T) {
	p := program.MustAssemble("dct", `
entry:
	li a0, 1
	setBranchId 1
	beqz a0, j1
x1:
	addi a1, a1, 1
j1:
	setBranchId 2
	beqz a1, j2
x2:
	addi a1, a1, 2
j2:
	setDependency 4 1
	addi a2, a2, 1
	setDependency 2 2
	addi a3, a3, 1
	addi a4, a4, 1
	addi a5, a5, 1
	halt
`)
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emulator.New(img).Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	deps := ComputeDeps(tr, 8)

	var b1, b2 int64 = -1, -1
	for i, d := range tr.Insts {
		if d.Inst.Op.IsCondBranch() {
			if deps[i].BranchID == 1 {
				b1 = d.Seq
			}
			if deps[i].BranchID == 2 {
				b2 = d.Seq
			}
		}
	}
	if b1 < 0 || b2 < 0 {
		t.Fatal("branches not found")
	}

	// Collect DepSeq for the four trailing addis (a2, a3, a4, a5).
	var tail []int64
	for i, d := range tr.Insts {
		if d.Inst.Op == isa.OpAddi && d.Inst.Rd >= isa.A2 && d.Inst.Rd <= isa.A5 && d.Inst.Rs1 != isa.Zero {
			tail = append(tail, deps[i].DepSeq)
		}
	}
	if len(tail) != 4 {
		t.Fatalf("tail length %d, want 4", len(tail))
	}
	// addi a2: covered by region 1 (counter 4, 1 consumed).
	if tail[0] != b1 {
		t.Errorf("a2 dep = %d, want branch 1 (%d)", tail[0], b1)
	}
	// The second setDependency REPLACES the DCT: a3 and a4 depend on
	// branch 2, and a5 is independent (counter exhausted).
	if tail[1] != b2 || tail[2] != b2 {
		t.Errorf("a3/a4 deps = %d/%d, want branch 2 (%d)", tail[1], tail[2], b2)
	}
	if tail[3] != DepNone {
		t.Errorf("a5 dep = %d, want DepNone (single-entry DCT exhausted)", tail[3])
	}
}
