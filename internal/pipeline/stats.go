package pipeline

// BranchStall aggregates commit-stall attribution for one static branch
// (Figure 7's criticality scatter).
type BranchStall struct {
	PC          int
	StallCycles int64 // cycles the branch blocked in-order commit progress
	Dependents  int64 // dynamic instructions marked dependent on it
	Occurrences int64
	Mispredicts int64
}

// Stats summarises one simulation run.
type Stats struct {
	Name   string
	Policy string

	Cycles       int64
	Committed    int64 // dynamic instructions committed (excluding setup)
	FetchedSetup int64 // setup instructions that consumed fetch slots
	CITDrops     int64 // refetched instructions dropped at decode via CIT

	OoOCommitted int64 // committed while older instructions remained

	Branches        int64
	Mispredicts     int64
	JalrMispredicts int64

	Loads, Stores   int64
	FencesCommitted int64

	// Resource-stall accounting at dispatch.
	StallROB, StallIQ, StallLQ, StallSQ, StallRegs int64

	// Noreba structure activity.
	Steered       int64
	SteerStalls   int64 // cycles ROB′ head could not steer
	CITAllocs     int64
	CITPeak       int64
	CITFullStalls int64
	CQTFullStalls int64

	// Commit-queue occupancy integrals for power modelling.
	PRCQOcc, BRCQOcc int64

	// Cache statistics (copied from the hierarchy at end of run).
	L1DAccesses, L1DMisses int64
	L2Misses, L3Misses     int64
	ICacheMisses           int64
	MemAccesses            int64
	PrefetchIssued         int64
	PrefetchUseful         int64

	// Phase accounting: cycles (and commits) spent with a pending
	// misprediction window, replaying re-fetches after a recovery, and in
	// normal operation.
	WindowCycles, WindowCommits int64
	ReplayCycles, ReplayCommits int64
	NormalCycles, NormalCommits int64

	// ROB occupancy integral (entry-cycles) for average occupancy.
	ROBOccupancy int64

	// Engine accounting: the sliding window's high-water mark (live
	// instruction records) and the total dynamic instructions pulled from
	// the source, including setup instructions.
	WindowPeak int64
	TraceInsts int64

	// Per-branch criticality (keyed by PC).
	BranchStalls map[int]*BranchStall

	// PipeTrace holds per-instruction stage timestamps for the first
	// Config.PipeTraceLimit committed instructions (the pipeline-viewer
	// input); empty unless the limit is set.
	PipeTrace []PipeRecord

	// Sampling provenance: set by internal/sampling when the stats are a
	// weighted extrapolation from representative intervals rather than a
	// full detailed run. SampledDetailInsts is the number of dynamic
	// instructions actually simulated in detail (warmup + measurement +
	// cooldown across all representatives) — the cost the sampler paid,
	// versus TraceInsts it would have paid in a full run.
	Sampled            bool
	SampledIntervals   int
	SampledDetailInsts int64
}

// PipeRecord is one committed instruction's journey through the pipeline.
type PipeRecord struct {
	Idx       int    // trace index
	PC        int    // instruction address
	Asm       string // disassembly
	Fetched   int64
	Issued    int64
	Done      int64
	Committed int64
	OoO       bool // committed while older instructions remained
	Queue     int  // Selective ROB queue (0 = PR-CQ, 1.. = BR-CQs, -1 = n/a)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// OoOCommitFraction returns the fraction of dynamic instructions committed
// out of order (Figure 8).
func (s *Stats) OoOCommitFraction() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.OoOCommitted) / float64(s.Committed)
}

// MispredictRate returns mispredictions per conditional branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

func (s *Stats) branchStall(pc int) *BranchStall {
	if s.BranchStalls == nil {
		s.BranchStalls = map[int]*BranchStall{}
	}
	b := s.BranchStalls[pc]
	if b == nil {
		b = &BranchStall{PC: pc}
		s.BranchStalls[pc] = b
	}
	return b
}
