package pipeline

import (
	"github.com/noreba-sim/noreba/internal/sanity"
)

// sanitizer is the opt-in invariant checker (Config.Sanitize). It validates,
// independently of the commit policies' own eligibility code, that every
// retirement obeys the paper's commit-order rules (§4) and that the pipeline's
// structural bookkeeping stays conserved. Checks are deliberately re-derived
// from first principles — scanning the raw ROB and recounting occupancy from
// the in-flight set — rather than calling the same helpers the policies use,
// so a bug in policy code cannot hide itself.
//
// With the event-driven scheduler the sanitizer is also the correctness
// oracle for the incremental state: every cycle it recomputes, from the ROB
// alone, what the wakeup counters, ready and commit-candidate queues, branch
// lists, committed-resident set and commit boundaries must contain, and
// cross-checks the maintained versions against the from-scratch answer.
//
// The checker has two hook points: onCommit validates each retirement at the
// moment it happens (commit legality is a property of that instant), and
// endCycle recounts structural state once per cycle. The first violation is
// recorded as a *sanity.Error on the core and fails the run.
//
// Invariant names (sanity.Error.Invariant), by subsystem:
//
//	commit/*   — commit-order legality (per-policy, §2/§4 rules)
//	rob/*      — ROB allocation order and occupancy conservation
//	iq/*       — issue-queue occupancy conservation
//	prf/*      — physical-register free-list conservation
//	lq/*, sq/* — load/store-queue occupancy conservation
//	lsq/*      — LSQ age ordering
//	sched/*    — event-driven scheduler state vs from-scratch re-derivation
//	frontier/* — commit-frontier monotonicity
//	window/*   — sliding-window release safety
//	cit/*, cqt/*, cq/*, robprime/* — NOREBA Selective ROB structures (§4.2–§4.3)
//	core/*     — whole-run guards (livelock)
type sanitizer struct {
	lastFrontier    int
	lastMemFrontier int
}

func newSanitizer(c *Core) *sanitizer { return &sanitizer{} }

// policyChecker is implemented by policies that carry private structures
// worth validating every cycle (the Selective ROB's queues and tables).
type policyChecker interface {
	check(c *Core, cycle int64) *sanity.Error
}

// onDispatch validates ROB allocation order at the moment of allocation: the
// ROB is a FIFO in dispatch order, and among *uncommitted* entries dispatch
// order is age order, so the newcomer must be younger than the youngest live
// entry. Entries already retired out of order (NOREBA keeps them resident
// until the frontier drains them) are exempt: after a recovery the skipped
// dependent region legitimately re-dispatches behind them.
func (s *sanitizer) onDispatch(c *Core, e *Entry) {
	for t := c.robTail; t != nil; t = t.robPrev {
		if t.committed {
			continue
		}
		if t.Seq() >= e.Seq() {
			c.fail(sanity.At("rob/alloc-order", c.cycle, e.pc, e.Seq(),
				"dispatching seq %d behind live ROB entry seq %d", e.Seq(), t.Seq()))
		}
		return
	}
}

// onCommit re-derives the commit conditions for e at the instant the policy
// retires it. Runs before commitEntry mutates any state. The branch checks
// scan the ROB directly rather than reading the core's incremental branch
// lists, so they stay independent of the event-driven bookkeeping they are
// meant to catch out.
func (s *sanitizer) onCommit(c *Core, e *Entry) {
	cyc := c.cycle
	pol := c.cfg.Policy

	if e.committed || e.squashed {
		c.fail(sanity.At("commit/lifecycle", cyc, e.pc, e.Seq(),
			"retiring an entry that is already committed=%t squashed=%t", e.committed, e.squashed))
		return
	}

	// In-order baseline: strictly in program order, i.e. always at the
	// commit frontier.
	if pol == InOrder && e.idx != c.frontierIdx {
		c.fail(sanity.At("commit/in-order", cyc, e.pc, e.Seq(),
			"InO-C retiring trace index %d but frontier is %d", e.idx, c.frontierIdx))
	}

	// §4.5: synchronisation barriers commit strictly in order under every
	// policy.
	if e.isFence && e.idx != c.frontierIdx {
		c.fail(sanity.At("commit/fence-order", cyc, e.pc, e.Seq(),
			"fence retiring at index %d ahead of frontier %d", e.idx, c.frontierIdx))
	}

	// Program-order memory retirement (every design but the full
	// speculative oracle).
	if pol != Spec && e.isMem && e.idx != c.memFrontierIdx {
		c.fail(sanity.At("commit/mem-order", cyc, e.pc, e.Seq(),
			"memory op retiring at index %d ahead of memory frontier %d", e.idx, c.memFrontierIdx))
	}

	// Completion conditions. The traditional designs require Condition 1
	// (completion) outright; the relaxed designs still require stores to
	// have their data, control transfers to have resolved, and loads to
	// have translated (§2 footnote, §6.1.5).
	requireCompletion := pol == InOrder || pol == NonSpecOoO
	switch {
	case e.class == opLoad:
		if !e.issued || e.addrReadyAt > cyc {
			c.fail(sanity.At("commit/load-translation", cyc, e.pc, e.Seq(),
				"load retiring before its translation succeeded"))
		} else if requireCompletion && !c.cfg.ECL && e.doneAt > cyc {
			c.fail(sanity.At("commit/load-data", cyc, e.pc, e.Seq(),
				"load retiring %d cycles before its data returns without ECL", e.doneAt-cyc))
		}
	case e.class == opStore:
		if !e.issued || e.doneAt > cyc {
			c.fail(sanity.At("commit/store-data", cyc, e.pc, e.Seq(),
				"store retiring before its data is ready"))
		}
	case e.isCondBranch || e.isJalr:
		if !e.resolved {
			c.fail(sanity.At("commit/branch-unresolved", cyc, e.pc, e.Seq(),
				"control transfer retiring before it resolved"))
		}
	default:
		if requireCompletion && (!e.issued || e.doneAt > cyc) {
			c.fail(sanity.At("commit/completion", cyc, e.pc, e.Seq(),
				"instruction retiring before completion under a Condition-1 policy"))
		}
	}

	// Never retire work computed from wrong-path-dependent data.
	if c.poisoned(e) {
		c.fail(sanity.At("commit/poisoned", cyc, e.pc, e.Seq(),
			"retiring an instruction whose governing branch instance is a pending mispredict or was skipped"))
	}

	// Branch-condition legality: what an unresolved older branch permits
	// depends on the design. The speculative oracles relax it entirely.
	// Every unresolved branch is uncommitted and unsquashed, hence still on
	// the ROB list, so a head-first walk meets them oldest-first.
	if pol == Spec || pol == SpecBR {
		return
	}
	for t := c.robHead; t != nil; t = t.robNext {
		if t.committed {
			continue
		}
		if t.Seq() >= e.Seq() {
			break // dispatch order == age order among live entries
		}
		if !t.isCondBranch || t.resolved {
			continue
		}
		b := t
		switch pol {
		case InOrder, NonSpecOoO:
			// Condition 3 in full: no commit past any unresolved branch.
			c.fail(sanity.At("commit/branch-order", cyc, e.pc, e.Seq(),
				"retiring past unresolved branch seq %d (pc %d) under %s", b.Seq(), b.pc, pol))
			return
		case Noreba, IdealReconv:
			// §4: commit may pass an unresolved branch only when the
			// compiler marked it (BranchID > 0) — an unmarked branch
			// carries no dependence information and serialises commit.
			if b.dep.BranchID == 0 {
				c.fail(sanity.At("commit/unmarked-branch", cyc, e.pc, e.Seq(),
					"retiring past unresolved UNMARKED branch seq %d (pc %d)", b.Seq(), b.pc))
				return
			}
			// A DepOrdered instruction (invalid BIT reference) must wait
			// for all older branches; one is still unresolved.
			if e.dep.DepSeq == DepOrdered {
				c.fail(sanity.At("commit/dep-ordered", cyc, e.pc, e.Seq(),
					"DepOrdered instruction retiring past unresolved branch seq %d", b.Seq()))
				return
			}
		}
	}
	// The instruction's own governing branch instance (setDependency) must
	// have resolved or committed before its dependents retire (§4.2).
	if (pol == Noreba || pol == IdealReconv) && e.dep.DepSeq >= 0 {
		idx := int(e.dep.DepSeq)
		if !c.win.isCommitted(idx) {
			var b *Entry
			for t := c.robHead; t != nil; t = t.robNext {
				if t.isCondBranch && t.Seq() == e.dep.DepSeq {
					b = t
					break
				}
			}
			if b == nil || !b.resolved {
				c.fail(sanity.At("commit/dep-unresolved", cyc, e.pc, e.Seq(),
					"retiring before governing branch instance seq %d resolved", e.dep.DepSeq))
			}
		}
	}
}

// endCycle recounts structural state from the in-flight set and cross-checks
// the core's incremental bookkeeping. The ROB list is the complete universe
// of dispatched, un-squashed, not-yet-drained entries (steered NOREBA entries
// and committed residents remain on it), so conservation laws and every
// scheduler structure are checkable by one walk.
func (s *sanitizer) endCycle(c *Core) {
	cyc := c.cycle - 1 // Step increments before this hook runs

	// Commit frontiers only move forward.
	if c.frontierIdx < s.lastFrontier {
		c.fail(sanity.Errorf("frontier/monotonic", cyc,
			"commit frontier moved backwards: %d -> %d", s.lastFrontier, c.frontierIdx))
		return
	}
	if c.memFrontierIdx < s.lastMemFrontier {
		c.fail(sanity.Errorf("frontier/mem-monotonic", cyc,
			"memory frontier moved backwards: %d -> %d", s.lastMemFrontier, c.memFrontierIdx))
		return
	}
	s.lastFrontier, s.lastMemFrontier = c.frontierIdx, c.memFrontierIdx

	// Sliding-window release safety: no record may be dropped before both
	// the commit frontier and the fetch cursor have passed it (a released
	// record can never be re-addressed).
	if base := c.win.baseIdx(); base > c.frontierIdx || base > c.cursor {
		c.fail(sanity.Errorf("window/release", cyc,
			"window released through %d past frontier %d / cursor %d", base, c.frontierIdx, c.cursor))
		return
	}

	// One walk over the ROB list: ordering, occupancy recount, and the
	// from-scratch re-derivation of every scheduler structure.
	robCount, robOcc, iqOcc, lqOcc, physUsed := 0, 0, 0, 0, 0
	nReady, nCand, nResident := 0, 0, 0
	liveBr, unresBr, unmarked := 0, 0, 0
	lastSeq, lastOrder := int64(-1), int64(-1)
	for e := c.robHead; e != nil; e = e.robNext {
		robCount++
		if e.squashed {
			c.fail(sanity.At("rob/squashed-resident", cyc, e.pc, e.Seq(),
				"squashed entry still resident in the ROB"))
			return
		}
		if !e.dispatched {
			c.fail(sanity.At("rob/undispatched", cyc, e.pc, e.Seq(),
				"undispatched entry resident in the ROB"))
			return
		}
		if !e.committed {
			// Age order is only guaranteed among live entries: committed
			// survivors of a recovery may be younger than re-dispatched
			// skipped-region work sitting behind them.
			if e.Seq() <= lastSeq {
				c.fail(sanity.At("rob/alloc-order", cyc, e.pc, e.Seq(),
					"ROB out of age order: live seq %d after seq %d", e.Seq(), lastSeq))
				return
			}
			lastSeq = e.Seq()
		}
		if e.dispatchOrder <= lastOrder {
			c.fail(sanity.At("rob/dispatch-order", cyc, e.pc, e.Seq(),
				"ROB list out of dispatch order: %d after %d", e.dispatchOrder, lastOrder))
			return
		}
		lastOrder = e.dispatchOrder
		if !e.committed && cyc&15 == 0 {
			// Arena aliasing cross-check. An uncommitted entry's record
			// pointer must still address its window slot (committed entries
			// may legitimately outlive their record), and the scalars cached
			// at fetch must match the live record — catching both a stale
			// pointer surviving a release and any stage that mutated a
			// record other stages still read through the arena. Divergence is
			// persistent until the record is released, so a 16-cycle stride
			// loses no coverage while keeping the sanitized whole-suite run
			// (which already pays O(ROB) per cycle, ~3x under -race) fast
			// enough for CI.
			r := c.win.rec(e.idx)
			if e.rec != r {
				c.fail(sanity.At("window/arena-alias", cyc, e.pc, e.Seq(),
					"entry's record pointer does not address its arena slot for index %d", e.idx))
				return
			}
			if e.seq != r.d.Seq || e.pc != r.d.PC || e.addr != r.d.Addr ||
				e.taken != r.d.Taken || e.rd != r.d.Inst.Rd {
				c.fail(sanity.At("window/arena-scalars", cyc, e.pc, e.Seq(),
					"cached scalars diverge from live record (rec seq %d pc %d addr %d)",
					r.d.Seq, r.d.PC, r.d.Addr))
				return
			}
		}
		if !e.steered && !e.committed {
			robOcc++
		}
		if !e.issued {
			iqOcc++
		}
		if e.hasDest && !e.committed {
			physUsed++
		}
		if e.class == opLoad && (!e.committed || e.lqHeld) {
			lqOcc++
		}

		// Wakeup state: the waits counter must equal the number of linked
		// producers that are still in flight (not completed, not squashed,
		// not recycled), and ready-queue membership must follow from it.
		want := int32(0)
		for _, ref := range e.producers {
			if ref.live() && !ref.e.squashed && !ref.e.done {
				want++
			}
		}
		if e.waits != want {
			c.fail(sanity.At("sched/waits", cyc, e.pc, e.Seq(),
				"waits counter %d but %d producers still outstanding", e.waits, want))
			return
		}
		if wantReady := !e.issued && e.waits == 0; e.inReady != wantReady {
			c.fail(sanity.At("sched/ready-membership", cyc, e.pc, e.Seq(),
				"inReady=%t but issued=%t waits=%d", e.inReady, e.issued, e.waits))
			return
		}
		if e.inReady {
			nReady++
		}

		// Commit-candidate membership: derived from the entry's class and
		// progress alone (see candMode).
		wantCand := false
		if !e.committed {
			switch c.candMode {
			case candRelaxed:
				switch {
				case e.isCondBranch || e.isJalr:
					wantCand = e.resolved
				case e.isMem:
					wantCand = e.issued
				default:
					wantCand = true
				}
			case candCompletion:
				wantCand = e.issued
			}
		}
		if e.inCand != wantCand {
			c.fail(sanity.At("sched/cand-membership", cyc, e.pc, e.Seq(),
				"inCand=%t but derivation says %t (committed=%t issued=%t resolved=%t done=%t)",
				e.inCand, wantCand, e.committed, e.issued, e.resolved, e.done))
			return
		}
		if e.inCand {
			nCand++
		}

		// Committed residents: exactly the committed entries still on the
		// list, with a consistent back-index.
		if e.committed != (e.resident >= 0) {
			c.fail(sanity.At("sched/resident", cyc, e.pc, e.Seq(),
				"committed=%t but resident index %d", e.committed, e.resident))
			return
		}
		if e.resident >= 0 {
			nResident++
			if e.resident >= len(c.committedResidents) || c.committedResidents[e.resident] != e {
				c.fail(sanity.At("sched/resident-index", cyc, e.pc, e.Seq(),
					"resident index %d does not point back to the entry", e.resident))
				return
			}
		}

		// Branch lists: walked in ROB order, they must match the maintained
		// lists element for element (committed branches drain immediately —
		// resolution is completion — so every listed branch is live).
		if e.isCondBranch && !e.committed {
			if liveBr >= len(c.liveBranches) || c.liveBranches[liveBr] != e {
				c.fail(sanity.At("sched/live-branches", cyc, e.pc, e.Seq(),
					"live-branch list diverges from the ROB at position %d", liveBr))
				return
			}
			liveBr++
			if !e.resolved {
				if unresBr >= len(c.unresolvedBranches) || c.unresolvedBranches[unresBr] != e {
					c.fail(sanity.At("sched/unresolved-branches", cyc, e.pc, e.Seq(),
						"unresolved-branch list diverges from the ROB at position %d", unresBr))
					return
				}
				unresBr++
				if c.needUnmarked && e.dep.BranchID == 0 {
					if unmarked >= len(c.unmarkedUnresolved) || c.unmarkedUnresolved[unmarked] != e {
						c.fail(sanity.At("sched/unmarked-unresolved", cyc, e.pc, e.Seq(),
							"unmarked-unresolved list diverges from the ROB at position %d", unmarked))
						return
					}
					unmarked++
				}
			}
		}
	}
	switch {
	case robCount != c.robCount:
		c.fail(sanity.Errorf("rob/count", cyc, "robCount=%d but the list holds %d entries", c.robCount, robCount))
		return
	case liveBr != len(c.liveBranches):
		c.fail(sanity.Errorf("sched/live-branches", cyc,
			"live-branch list holds %d entries but the ROB has %d live branches", len(c.liveBranches), liveBr))
		return
	case unresBr != len(c.unresolvedBranches):
		c.fail(sanity.Errorf("sched/unresolved-branches", cyc,
			"unresolved-branch list holds %d entries but the ROB has %d", len(c.unresolvedBranches), unresBr))
		return
	case c.needUnmarked && unmarked != len(c.unmarkedUnresolved):
		c.fail(sanity.Errorf("sched/unmarked-unresolved", cyc,
			"unmarked-unresolved list holds %d entries but the ROB has %d", len(c.unmarkedUnresolved), unmarked))
		return
	case nReady != len(c.readyQ):
		c.fail(sanity.Errorf("sched/ready-count", cyc,
			"ready queue holds %d entries but %d ROB entries are ready", len(c.readyQ), nReady))
		return
	case nCand != len(c.candQ):
		c.fail(sanity.Errorf("sched/cand-count", cyc,
			"candidate queue holds %d entries but %d ROB entries are candidates", len(c.candQ), nCand))
		return
	case nResident != len(c.committedResidents):
		c.fail(sanity.Errorf("sched/resident-count", cyc,
			"resident list holds %d entries but %d committed entries are on the ROB", len(c.committedResidents), nResident))
		return
	}
	for i := 1; i < len(c.readyQ); i++ {
		if c.readyQ[i-1].dispatchOrder >= c.readyQ[i].dispatchOrder {
			c.fail(sanity.Errorf("sched/ready-order", cyc, "ready queue out of dispatch order at %d", i))
			return
		}
	}
	for i := 1; i < len(c.candQ); i++ {
		if c.candQ[i-1].dispatchOrder >= c.candQ[i].dispatchOrder {
			c.fail(sanity.Errorf("sched/cand-order", cyc, "candidate queue out of dispatch order at %d", i))
			return
		}
	}

	// Boundary deques vs a from-scratch scan. Pruning the deques here is
	// harmless: blocking is monotone, so anything prunable at cyc stays
	// prunable.
	if c.needBlockers {
		want := int64(1) << 62
		for e := c.robHead; e != nil; e = e.robNext {
			if e.committed {
				continue
			}
			if (e.isCondBranch || e.isJalr) && !e.resolved {
				want = e.Seq()
				break
			}
			if e.isMem && !(e.issued && e.addrReadyAt <= cyc) {
				want = e.Seq()
				break
			}
		}
		if got := c.nonSpecBoundary(cyc); got != want {
			c.fail(sanity.Errorf("sched/nonspec-boundary", cyc,
				"blocker deque reports boundary %d but the ROB scan finds %d", got, want))
			return
		}
	}
	if c.needTransMem {
		want := int64(1) << 62
		for e := c.robHead; e != nil; e = e.robNext {
			if e.committed {
				continue
			}
			if e.isMem && !(e.issued && e.addrReadyAt <= cyc) {
				want = e.Seq()
				break
			}
		}
		if got := c.memTrapBoundary(cyc); got != want {
			c.fail(sanity.Errorf("sched/memtrap-boundary", cyc,
				"untranslated-memory deque reports boundary %d but the ROB scan finds %d", got, want))
			return
		}
	}

	if robOcc != c.robOcc {
		c.fail(sanity.Errorf("rob/occupancy", cyc, "robOcc=%d but %d live unsteered entries", c.robOcc, robOcc))
		return
	}
	if iqOcc != c.iqOcc {
		c.fail(sanity.Errorf("iq/occupancy", cyc, "iqOcc=%d but %d unissued entries", c.iqOcc, iqOcc))
		return
	}
	if physUsed != c.physUsed {
		c.fail(sanity.Errorf("prf/conservation", cyc,
			"physUsed=%d but %d uncommitted destination registers are live (leak or double-free)", c.physUsed, physUsed))
		return
	}
	if lqOcc != c.lqOcc {
		c.fail(sanity.Errorf("lq/occupancy", cyc, "lqOcc=%d but %d live loads", c.lqOcc, lqOcc))
		return
	}

	// Store queue: occupancy and strict age ordering (stores drain to the
	// cache at retirement in program order).
	sqOcc := 0
	lastSeq = -1
	for _, st := range c.storeQueue {
		if st.squashed {
			continue
		}
		sqOcc++
		if st.Seq() <= lastSeq {
			c.fail(sanity.At("lsq/age-order", cyc, st.pc, st.Seq(),
				"store queue out of age order: seq %d after seq %d", st.Seq(), lastSeq))
			return
		}
		lastSeq = st.Seq()
	}
	if sqOcc != c.sqOcc {
		c.fail(sanity.Errorf("sq/occupancy", cyc, "sqOcc=%d but %d live stores", c.sqOcc, sqOcc))
		return
	}

	// Capacity bounds (a conservation bug that slips past the recount for
	// one cycle still cannot oversubscribe a structure unnoticed).
	switch {
	case c.robOcc < 0 || c.robOcc > c.cfg.ROBSize:
		c.fail(sanity.Errorf("rob/capacity", cyc, "robOcc=%d outside [0,%d]", c.robOcc, c.cfg.ROBSize))
		return
	case c.iqOcc < 0 || c.iqOcc > c.cfg.IQSize:
		c.fail(sanity.Errorf("iq/capacity", cyc, "iqOcc=%d outside [0,%d]", c.iqOcc, c.cfg.IQSize))
		return
	case c.lqOcc < 0 || c.lqOcc > c.cfg.LQSize:
		c.fail(sanity.Errorf("lq/capacity", cyc, "lqOcc=%d outside [0,%d]", c.lqOcc, c.cfg.LQSize))
		return
	case c.sqOcc < 0 || c.sqOcc > c.cfg.SQSize:
		c.fail(sanity.Errorf("sq/capacity", cyc, "sqOcc=%d outside [0,%d]", c.sqOcc, c.cfg.SQSize))
		return
	case c.physUsed < 0 || c.physUsed > c.cfg.PhysRegs():
		c.fail(sanity.Errorf("prf/capacity", cyc, "physUsed=%d outside [0,%d]", c.physUsed, c.cfg.PhysRegs()))
		return
	}

	// Policy-private structures (the Selective ROB's queues and tables).
	if pc, ok := c.policy.(policyChecker); ok {
		if err := pc.check(c, cyc); err != nil {
			c.fail(err)
		}
	}
}
