package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
)

// TestFanoutMatchesSoloCores pins the window/bus interop: cores fed by
// broadcast-bus views — with a skew bound far smaller than the trace, so the
// ring wraps and consumers genuinely throttle each other — produce Stats
// bit-identical to cores fed by their own solo sources.
func TestFanoutMatchesSoloCores(t *testing.T) {
	res, err := compiler.Compile(mlpKernel(64), compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := emulator.New(res.Image).Run(4 << 20)
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}

	policies := []PolicyKind{InOrder, NonSpecOoO, Noreba, IdealReconv, SpecBR, Spec}
	cfgs := make([]Config, len(policies))
	for i, p := range policies {
		cfgs[i] = SkylakeConfig()
		cfgs[i].Policy = p
	}

	want := make([]*Stats, len(cfgs))
	for i, cfg := range cfgs {
		st, err := NewCoreFromSource(cfg, tr.Source(), res.Meta).Run()
		if err != nil {
			t.Fatalf("solo %v: %v", cfg.Policy, err)
		}
		want[i] = st
	}

	// Skew 64 is far below the trace length and the cores' in-flight spans,
	// so the fast policies must block on the slow ones mid-run.
	bus := emulator.NewBroadcast(tr.Source(), 64)
	views := make([]*emulator.BusView, len(cfgs))
	for i := range cfgs {
		views[i] = bus.View()
	}
	got := make([]*Stats, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer views[i].Close()
			st, err := NewCoreFromSource(cfgs[i], views[i], res.Meta).Run()
			if err != nil {
				t.Errorf("fanout %v: %v", cfgs[i].Policy, err)
				return
			}
			got[i] = st
		}(i)
	}
	wg.Wait()

	for i := range cfgs {
		if got[i] == nil {
			continue
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%v: fan-out stats diverged from solo run", cfgs[i].Policy)
		}
	}
	if p := bus.PeakRecords(); p > 64 {
		t.Errorf("bus peak %d exceeds skew bound 64", p)
	}
}
