package pipeline

import (
	"github.com/noreba-sim/noreba/internal/branchpred"
	"github.com/noreba-sim/noreba/internal/cache"
	"github.com/noreba-sim/noreba/internal/prefetch"
)

// WarmState is a capture of the core's long-lived microarchitectural state —
// instruction and data cache hierarchies, prefetcher table, branch predictor
// and return-address stack — taken after functional warming and reusable
// across detailed windows. Warming is policy-independent (it never touches
// the pipeline model), so one capture serves every commit policy sharing the
// same cache/predictor geometry, and each window installs an independent
// clone so detailed simulation never mutates the shared capture.
type WarmState struct {
	dcache *cache.Hierarchy
	icache *cache.Hierarchy
	dcpt   *prefetch.DCPT
	pred   branchpred.Predictor
	ras    *branchpred.RAS
}

// CaptureWarmState captures the core's current microarchitectural state.
// Meant to be called on a core used only for WarmFunctional (never stepped).
// The capture takes ownership of the core's cache hierarchies, frozen as of
// this call, and the core continues on copy-on-write clones layered over
// them — so a warming replay that captures at several boundaries pays for
// the sets it touches between boundaries, not a full hierarchy copy per
// capture. Predictor, RAS and prefetcher state are small and copied eagerly.
func (c *Core) CaptureWarmState() *WarmState {
	ws := &WarmState{
		dcache: c.dcache,
		icache: c.icache,
		pred:   branchpred.Clone(c.pred),
		ras:    c.ras.Clone(),
	}
	c.dcache = ws.dcache.CloneCOW()
	c.icache = ws.icache.CloneCOW()
	if c.dcpt != nil {
		ws.dcpt = c.dcpt.Clone()
	}
	return ws
}

// InstallWarmState replaces the core's microarchitectural state with an
// independent clone of ws, exactly as if the core itself had run the warming
// that produced the capture. Must be called before the first Step; the
// capture must come from a core built with the same Config geometry (cache
// sizes/latencies, predictor kind, RAS depth, prefetcher setup). The cache
// hierarchies are installed as copy-on-write clones — a detailed window
// touches a tiny fraction of the warmed lower levels, so sharing the frozen
// capture and materializing touched sets lazily replaces the dominant
// per-window copy. The capture must not be mutated while installed cores are
// live (it never is: captures are shifted once at capture time, then only
// read).
func (c *Core) InstallWarmState(ws *WarmState) {
	c.dcache = ws.dcache.CloneCOW()
	c.icache = ws.icache.CloneCOW()
	c.pred = branchpred.Clone(ws.pred)
	c.ras = ws.ras.Clone()
	if ws.dcpt != nil {
		c.dcpt = ws.dcpt.Clone()
	} else {
		c.dcpt = nil
	}
}

// ShiftClock rebases the capture's cache fill timestamps by delta cycles
// (see cache.Hierarchy.ShiftClock — access timing is linear in the access
// cycle, so a shifted capture equals warming on a shifted clock). Predictor,
// prefetcher table and RAS hold no cycle state. One warming pass on an
// absolute pseudo-clock can therefore serve windows opening at different
// pseudo-cycles: capture at each window's warm boundary and shift that
// capture's time base to end at cycle 0.
func (ws *WarmState) ShiftClock(delta int64) {
	ws.dcache.ShiftClock(delta)
	ws.icache.ShiftClock(delta)
}
