package pipeline

import (
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
)

// shadowSource wraps a TraceSource, keeping a private copy of every record
// it delivers. Deliveries are in trace order, so shadow[idx] is the record
// the window loaded at trace index idx — the reference for the aliasing
// sweeps below. It passes the underlying zero-copy form through when one is
// available, so the wrapped core exercises the by-reference delivery path.
type shadowSource struct {
	src    emulator.TraceSource
	refSrc emulator.RefSource
	shadow []emulator.DynInst
}

func newShadowSource(src emulator.TraceSource) *shadowSource {
	s := &shadowSource{src: src}
	s.refSrc, _ = src.(emulator.RefSource)
	return s
}

func (s *shadowSource) Name() string { return s.src.Name() }

func (s *shadowSource) Next() (emulator.DynInst, bool) {
	d, ok := s.NextRef()
	if !ok {
		return emulator.DynInst{}, false
	}
	return *d, true
}

func (s *shadowSource) NextRef() (*emulator.DynInst, bool) {
	if s.refSrc != nil {
		d, ok := s.refSrc.NextRef()
		if ok {
			s.shadow = append(s.shadow, *d)
		}
		return d, ok
	}
	d, ok := s.src.Next()
	if !ok {
		return nil, false
	}
	s.shadow = append(s.shadow, d)
	return &s.shadow[len(s.shadow)-1], true
}

func (s *shadowSource) Err() error              { return s.src.Err() }
func (s *shadowSource) Counts() emulator.Counts { return s.src.Counts() }

// sweepArena compares every resident window record against the shadow copy
// taken at delivery. Records live in the arena from load to release and
// every pipeline stage reads them through pointers, so any stage (or any
// sibling consumer of a shared ring) mutating a record in place shows up as
// a divergence here.
func sweepArena(t *testing.T, c *Core, shadow []emulator.DynInst, who string) {
	t.Helper()
	w := c.win
	for idx := w.baseIdx(); idx < w.loadedEnd(); idx++ {
		if got, want := w.rec(idx).d, shadow[idx]; got != want {
			t.Fatalf("%s: arena record %d mutated in place:\n got %+v\nwant %+v", who, idx, got, want)
		}
	}
}

// TestArenaRecordImmutability: the window arena hands out *instRecord
// pointers instead of copies, so the correctness of every stage now rests
// on records being immutable while resident. Run each policy with a shadow
// copy of every delivered record and sweep the full resident window
// periodically — any in-place mutation of an arena record is caught within
// 64 cycles of when it happened.
func TestArenaRecordImmutability(t *testing.T) {
	tr, meta := benchTrace(t)
	for _, pk := range allPolicies {
		src := newShadowSource(tr.Source())
		c := NewCoreFromSource(testConfig(pk), src, meta)
		for steps := 1; !c.Done() && steps <= 20000; steps++ {
			c.Step()
			if steps%64 == 0 {
				sweepArena(t, c, src.shadow, pk.String())
			}
		}
		sweepArena(t, c, src.shadow, pk.String())
	}
}

// TestBusSharedRecordAliasing: N cores of different policies consume one
// Broadcast, whose ring serves leased records by reference to all views
// concurrently. Each core keeps its own shadow and sweeps its own arena;
// under -race this additionally proves no consumer ever writes a shared
// ring slot another view may still read.
func TestBusSharedRecordAliasing(t *testing.T) {
	tr, meta := benchTrace(t)
	bus := emulator.NewBroadcast(tr.Source(), 4096)
	srcs := make([]*shadowSource, len(allPolicies))
	for i := range allPolicies {
		srcs[i] = newShadowSource(bus.View())
	}
	var wg sync.WaitGroup
	for i, pk := range allPolicies {
		wg.Add(1)
		go func(i int, pk PolicyKind) {
			defer wg.Done()
			src := srcs[i]
			c := NewCoreFromSource(testConfig(pk), src, meta)
			for steps := 1; !c.Done() && steps <= 8000; steps++ {
				c.Step()
				if steps%64 == 0 {
					sweepArena(t, c, src.shadow, pk.String())
				}
			}
			sweepArena(t, c, src.shadow, pk.String())
			src.src.(*emulator.BusView).Close()
		}(i, pk)
	}
	wg.Wait()
}
