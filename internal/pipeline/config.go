// Package pipeline is the cycle-level timing model of the NOREBA core: a
// superscalar out-of-order pipeline (fetch, decode/rename, dispatch, issue,
// execute, writeback, commit) replaying correct-path dynamic traces from the
// functional emulator. The commit stage is pluggable — the paper's five
// commit policies (in-order, non-speculative OoO, Noreba's Selective ROB,
// ideal reconvergence, and the speculative oracles) all share the same
// pipeline and differ only in how and when they retire instructions and
// reclaim resources.
package pipeline

import (
	"github.com/noreba-sim/noreba/internal/cache"
	"github.com/noreba-sim/noreba/internal/trace"
)

// PolicyKind selects a commit policy.
type PolicyKind int

const (
	// InOrder is the conventional baseline: instructions commit strictly
	// from the ROB head (InO-C in the paper's figures).
	InOrder PolicyKind = iota
	// NonSpecOoO is Bell & Lipasti's non-speculative out-of-order commit:
	// any completed instruction whose older branches and memory operations
	// have all resolved may commit.
	NonSpecOoO
	// Noreba is the paper's contribution: compiler branch-dependence
	// annotations plus the Selective ROB (ROB′ steering into PR-CQ and
	// BR-CQs, with BIT/DCT/CQT/CIT support structures).
	Noreba
	// IdealReconv commits with the same compiler information as Noreba but
	// with an ideal ROB allowing arbitrary reordering (no queue
	// restrictions).
	IdealReconv
	// SpecBR is the speculative oracle that relaxes only the branch
	// condition: completed instructions commit past unresolved branches
	// with no misspeculation penalty (upper bound for NOREBA).
	SpecBR
	// Spec is the full speculative oracle of Figure 1: completed
	// instructions commit with every condition relaxed.
	Spec
)

// String returns the policy's name as used in the paper's figures.
func (p PolicyKind) String() string {
	switch p {
	case InOrder:
		return "InO-C"
	case NonSpecOoO:
		return "NonSpeculative-OoO-C"
	case Noreba:
		return "NOREBA"
	case IdealReconv:
		return "Reconvergence-OoO-C"
	case SpecBR:
		return "SpeculativeBR-OoO-C"
	case Spec:
		return "Speculative-OoO-C"
	default:
		return "unknown"
	}
}

// PredictorKind selects the branch direction predictor.
type PredictorKind int

const (
	// PredTAGE is the TAGE-SC-L-style predictor (the paper's Table 2).
	PredTAGE PredictorKind = iota
	// PredBimodal is a simple 2-bit-counter predictor.
	PredBimodal
	// PredOracle predicts perfectly (ideal front end).
	PredOracle
)

// SelectiveROBConfig sizes the Noreba-specific structures (Table 2).
type SelectiveROBConfig struct {
	NumBRCQs   int // number of branch commit queues
	BRCQSize   int // entries per BR-CQ
	PRCQSize   int // primary commit queue entries
	BITSize    int // branch ID table entries
	CQTSize    int // commit queue table entries
	CITSize    int // committed instructions table entries
	SteerWidth int // ROB′ → CQ steering bandwidth per cycle
}

// DefaultSelectiveROB returns the paper's chosen configuration: 2 BR-CQs ×
// 8 entries, an 8-entry PR-CQ, 8-entry BIT/CQT, 128-entry CIT.
func DefaultSelectiveROB() SelectiveROBConfig {
	return SelectiveROBConfig{
		NumBRCQs: 2, BRCQSize: 8, PRCQSize: 8,
		BITSize: 8, CQTSize: 8, CITSize: 128,
		SteerWidth: 4,
	}
}

// Config describes one simulated core.
type Config struct {
	Name string

	// Pipeline widths (Table 2: dispatch/issue/commit 4/4/4).
	FetchWidth  int
	IssueWidth  int
	CommitWidth int

	// Window resources (Table 3).
	ROBSize    int
	IQSize     int
	LQSize     int
	SQSize     int
	RenameRegs int // physical registers beyond the architectural 64

	// Functional units.
	IntALUs    int
	IntMulDiv  int
	FPUs       int
	LoadPorts  int
	StorePorts int

	// Front end.
	FrontendDepth     int // fetch-to-dispatch latency in cycles
	MispredictPenalty int // redirect penalty after resolve
	RASEntries        int

	// Memory hierarchy (Table 2 latencies).
	L1ISize, L1DSize, L2Size, L3Size int
	L1Lat, L2Lat, L3Lat, MemLat      int64
	CacheWays                        int

	// Prefetcher (DCPT).
	PrefetchEnabled bool
	PrefetchDegree  int
	PrefetchTable   int

	Predictor PredictorKind
	Policy    PolicyKind
	Selective SelectiveROBConfig

	// ECL enables Early Commit of Loads (§6.1.5): loads become
	// commit-eligible once their translation has succeeded, before data
	// returns.
	ECL bool

	// FreeSetup simulates the "perfect" design of §6.1.2 in which branch
	// dependence information reaches the hardware without occupying fetch
	// slots: setup instructions are elided from the fetch stream.
	FreeSetup bool

	// WindowFetchLimit caps how many post-reconvergence instructions the
	// front end fetches during a misprediction window.
	WindowFetchLimit int

	// PipeTraceLimit, when positive, records stage timestamps for the
	// first N committed instructions into Stats.PipeTrace (the
	// noreba-pipeview input).
	PipeTraceLimit int

	// FenceGate, when set, gates the commit of each synchronisation
	// barrier: the fence whose zero-based ordinal is n may retire only
	// when FenceGate(n) reports true. The multicore system uses this to
	// model inter-core barriers (§4.5). A nil gate lets fences retire
	// freely (single-core semantics).
	FenceGate func(n int64) bool

	// Sanitize enables the pipeline sanitizer: every cycle the core
	// re-derives the paper's commit-legality rules (§4) plus structural
	// invariants (ROB allocation order, PRF free-list conservation, LSQ
	// age ordering, sliding-window release safety) and fails the run with
	// a *sanity.Error on the first violation. Purely a checking layer —
	// it never changes timing.
	Sanitize bool

	// TraceSink, when non-nil, receives a structured trace.Event at every
	// pipeline stage boundary (fetch, dispatch, issue, writeback, commit),
	// squash, misprediction, L1 miss and early load-queue reclaim. A nil
	// sink costs one branch per event site.
	TraceSink trace.Sink
}

func baseConfig() Config {
	return Config{
		FetchWidth: 4, IssueWidth: 4, CommitWidth: 4,
		IntALUs: 4, IntMulDiv: 1, FPUs: 2, LoadPorts: 2, StorePorts: 1,
		FrontendDepth: 5, MispredictPenalty: 12, RASEntries: 16,
		L1ISize: 32 << 10, L1DSize: 32 << 10, L2Size: 256 << 10, L3Size: 1 << 20,
		L1Lat: 4, L2Lat: 12, L3Lat: 36, MemLat: 300,
		CacheWays:       8,
		PrefetchEnabled: true, PrefetchDegree: 4, PrefetchTable: 128,
		Predictor:        PredTAGE,
		Policy:           InOrder,
		Selective:        DefaultSelectiveROB(),
		WindowFetchLimit: 2048,
	}
}

// SkylakeConfig returns the paper's Skylake-like core (Table 3: ROB 224,
// IQ 68, LQ 72, SQ 56, 168 rename registers).
func SkylakeConfig() Config {
	c := baseConfig()
	c.Name = "SKL"
	c.ROBSize, c.IQSize, c.LQSize, c.SQSize, c.RenameRegs = 224, 68, 72, 56, 168
	return c
}

// HaswellConfig returns the Haswell-like core (ROB 192, IQ 60, LQ 72,
// SQ 42, 128 rename registers).
func HaswellConfig() Config {
	c := baseConfig()
	c.Name = "HSW"
	c.ROBSize, c.IQSize, c.LQSize, c.SQSize, c.RenameRegs = 192, 60, 72, 42, 128
	return c
}

// NehalemConfig returns the Nehalem-like core (ROB 128, IQ 56, LQ 48,
// SQ 36, 64 rename registers).
func NehalemConfig() Config {
	c := baseConfig()
	c.Name = "NHM"
	c.ROBSize, c.IQSize, c.LQSize, c.SQSize, c.RenameRegs = 128, 56, 48, 36, 64
	return c
}

// PhysRegs returns the total physical register count (64 architectural +
// rename registers).
func (c *Config) PhysRegs() int { return 64 + c.RenameRegs }

// Hierarchy builds the data-side cache hierarchy for the config.
func (c *Config) hierarchy() *cache.Hierarchy {
	return cache.NewHierarchy(c.MemLat,
		cache.Config{Name: "L1d", Size: c.L1DSize, Ways: c.CacheWays, Latency: c.L1Lat},
		cache.Config{Name: "L2", Size: c.L2Size, Ways: c.CacheWays, Latency: c.L2Lat},
		cache.Config{Name: "L3", Size: c.L3Size, Ways: 16, Latency: c.L3Lat},
	)
}

func (c *Config) icache() *cache.Hierarchy {
	return cache.NewHierarchy(c.MemLat,
		cache.Config{Name: "L1i", Size: c.L1ISize, Ways: c.CacheWays, Latency: c.L1Lat},
		cache.Config{Name: "L2", Size: c.L2Size, Ways: c.CacheWays, Latency: c.L2Lat},
		cache.Config{Name: "L3", Size: c.L3Size, Ways: 16, Latency: c.L3Lat},
	)
}

// latencyOf returns issue-to-complete latency for non-memory ops.
func (c *Config) latencyOf(class opClass) int64 {
	switch class {
	case opIntALU, opBranch:
		return 1
	case opIntMul:
		return 3
	case opIntDiv:
		return 20
	case opFPALU:
		return 4
	case opFPDiv:
		return 12
	default:
		return 1
	}
}
