package pipeline

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/emulator"
)

// instRecord is the window's per-dynamic-instruction state: the instruction
// itself, its branch-dependence decode, and the retirement/fetch bookkeeping
// the core used to keep in five parallel trace-length slices. Consolidating
// the flags here bounds their footprint by the window size and keeps every
// per-instruction fact in one cache line.
type instRecord struct {
	d   emulator.DynInst
	dep DepInfo

	committed bool
	fetched   bool
	// Branch-prediction bookkeeping: each dynamic branch is predicted and
	// trained exactly once (its first fetch); a re-fetch after its own
	// recovery is correctly predicted (the predictor was fixed at resolve),
	// while re-fetches of squashed window branches reuse the original
	// prediction.
	predicted bool
	predMisp  bool
	recovered bool
}

// window is a bounded sliding view over a TraceSource. Live records are
// buf[head : head+n], where buf[head+i] describes trace index base+i; the
// core addresses records by trace index and the window pulls from the source
// on demand. release() drops records below the commit frontier, so peak
// memory tracks the in-flight span (ROB + misprediction windows), not the
// trace length.
//
// The backing array is stable: released slots are reused by sliding the live
// span back to the front once the dead prefix dominates, so the steady state
// streams the whole trace through one high-water-sized allocation instead of
// appending the slice head forward and re-allocating.
type window struct {
	src  emulator.TraceSource
	deps *depTracker

	buf     []instRecord
	head, n int
	base    int // trace index of buf[head]
	eof     bool

	peak int // high-water mark of live records
}

func newWindow(src emulator.TraceSource, bitSize int) *window {
	return &window{src: src, deps: newDepTracker(bitSize)}
}

// ensure pulls from the source until trace index idx is loaded, returning
// false if the stream ends first. idx below the window base is a modelling
// bug: the core released a record it still needed.
func (w *window) ensure(idx int) bool {
	if idx < w.base {
		panic(fmt.Sprintf("pipeline: window access at %d below base %d", idx, w.base))
	}
	for idx >= w.base+w.n {
		if w.eof {
			return false
		}
		d, ok := w.src.Next()
		if !ok {
			w.eof = true
			return false
		}
		if w.head+w.n == len(w.buf) {
			if w.head > w.n {
				copy(w.buf, w.buf[w.head:w.head+w.n])
				w.head = 0
			} else {
				w.buf = append(w.buf, instRecord{})
				w.buf = w.buf[:cap(w.buf)]
			}
		}
		r := &w.buf[w.head+w.n]
		*r = instRecord{d: d, dep: w.deps.next(&d)}
		w.n++
		if w.n > w.peak {
			w.peak = w.n
		}
	}
	return true
}

// loadedEnd is one past the highest loaded trace index.
func (w *window) loadedEnd() int { return w.base + w.n }

// baseIdx is the lowest still-resident trace index; everything below it has
// been released. The sanitizer checks it against the release-safety bound.
func (w *window) baseIdx() int { return w.base }

// rec returns the record for trace index idx, which must be loaded and not
// yet released. The pointer is invalidated by the next ensure or release
// call — do not hold it across either.
func (w *window) rec(idx int) *instRecord {
	if idx < w.base || idx >= w.base+w.n {
		panic(fmt.Sprintf("pipeline: window access at %d outside [%d,%d)", idx, w.base, w.base+w.n))
	}
	return &w.buf[w.head+idx-w.base]
}

// isCommitted reports the committed flag for any trace index: released
// records are committed by construction, unloaded ones are not.
func (w *window) isCommitted(idx int) bool {
	if idx < w.base {
		return true
	}
	if idx >= w.base+w.n {
		return false
	}
	return w.buf[w.head+idx-w.base].committed
}

// isFetched reports the fetched flag for any trace index, with the same
// convention: released records were fetched (or setup-skipped), unloaded
// ones were not.
func (w *window) isFetched(idx int) bool {
	if idx < w.base {
		return true
	}
	if idx >= w.base+w.n {
		return false
	}
	return w.buf[w.head+idx-w.base].fetched
}

// release drops records below trace index bound; the core may never address
// them again. The slots stay in the backing array for reuse.
func (w *window) release(bound int) {
	if bound <= w.base {
		return
	}
	if bound > w.base+w.n {
		bound = w.base + w.n
	}
	n := bound - w.base
	w.head += n
	w.n -= n
	w.base = bound
	if w.n == 0 {
		w.head = 0
	}
}

func (w *window) srcErr() error           { return w.src.Err() }
func (w *window) counts() emulator.Counts { return w.src.Counts() }
