package pipeline

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/emulator"
)

// instRecord is the window's per-dynamic-instruction state: the instruction
// itself, its branch-dependence decode, and the retirement/fetch bookkeeping
// the core used to keep in five parallel trace-length slices. Consolidating
// the flags here bounds their footprint by the window size and keeps every
// per-instruction fact in one cache line.
type instRecord struct {
	d   emulator.DynInst
	dep DepInfo

	committed bool
	fetched   bool
	// memOrFence caches Op.IsMem()||Op.IsFence() at load: the memory
	// frontier re-tests the same blocking record every commit step, and the
	// cached bit turns two Op-class switches into one flag load.
	memOrFence bool
	// Branch-prediction bookkeeping: each dynamic branch is predicted and
	// trained exactly once (its first fetch); a re-fetch after its own
	// recovery is correctly predicted (the predictor was fixed at resolve),
	// while re-fetches of squashed window branches reuse the original
	// prediction.
	predicted bool
	predMisp  bool
	recovered bool
}

// Window records are stored in fixed-size chunks so a record's address never
// changes for as long as it is resident: the chunk directory slides and
// recycles whole chunks, but a chunk's storage never moves. Entries and the
// pipeline stages therefore hold *instRecord pointers across cycles instead
// of copying ~100-byte records through every stage hop.
const (
	chunkShift = 8
	chunkSize  = 1 << chunkShift // records per chunk
	chunkMask  = chunkSize - 1
)

type recChunk [chunkSize]instRecord

// window is a bounded sliding view over a TraceSource. Live records are the
// trace indices [base, end); the core addresses records by trace index and
// the window pulls from the source on demand. release() drops records below
// the commit frontier, so peak memory tracks the in-flight span (ROB +
// misprediction windows), not the trace length.
//
// Storage is a sliding directory of stable chunks: chunks[chead+i] holds
// trace indices [(chunkBase+i)<<chunkShift, ...). Chunks fully below the
// release bound return to a free list and are reused at the loading edge, so
// the steady state streams the whole trace through a high-water-sized set of
// chunks with no per-record motion — a resident record's address is stable
// from load to release.
type window struct {
	src     emulator.TraceSource
	refSrc  emulator.RefSource  // src when it supports zero-copy delivery, else nil
	intoSrc emulator.IntoSource // src when it can produce straight into the arena, else nil
	deps    *depTracker

	chunks    []*recChunk // directory; live span is chunks[chead : chead+cn]
	chead, cn int
	chunkBase int // chunk index of chunks[chead]
	free      []*recChunk

	base int // lowest resident trace index
	end  int // one past the highest loaded trace index
	eof  bool

	peak int // high-water mark of live records
}

func newWindow(src emulator.TraceSource, bitSize int) *window {
	w := &window{src: src, deps: newDepTracker(bitSize)}
	w.refSrc, _ = src.(emulator.RefSource)
	w.intoSrc, _ = src.(emulator.IntoSource)
	return w
}

// ensure pulls from the source until trace index idx is loaded, returning
// false if the stream ends first. idx below the window base is a modelling
// bug: the core released a record it still needed.
func (w *window) ensure(idx int) bool {
	if idx < w.end {
		if idx < w.base {
			panic(fmt.Sprintf("pipeline: window access at %d below base %d", idx, w.base))
		}
		return true
	}
	if w.eof {
		return false
	}
	return w.fill(idx)
}

// fill loads records through idx, batching the per-record work by chunk:
// the chunk pointer and slot range are resolved once per chunk crossing
// instead of once per record, and each slot is initialised in place — the
// record's only copy — with its flags cleared field-by-field so the freshly
// written instruction is not re-zeroed.
func (w *window) fill(idx int) bool {
	for idx >= w.end {
		ci := w.end >> chunkShift
		if ci-w.chunkBase >= w.cn {
			w.pushChunk()
		}
		ch := w.chunks[w.chead+ci-w.chunkBase]
		lo := w.end & chunkMask
		hi := lo + (idx + 1 - w.end) // records still needed
		if hi > chunkSize {
			hi = chunkSize
		}
		for s := lo; s < hi; s++ {
			r := &ch[s]
			if w.intoSrc != nil {
				// The source writes the record straight into its arena
				// slot: the live emulator path has zero DynInst copies.
				if !w.intoSrc.NextInto(&r.d) {
					w.eof = true
					return false
				}
			} else if w.refSrc != nil {
				d, ok := w.refSrc.NextRef()
				if !ok {
					w.eof = true
					return false
				}
				r.d = *d
			} else {
				d, ok := w.src.Next()
				if !ok {
					w.eof = true
					return false
				}
				r.d = d
			}
			r.dep = w.deps.next(&r.d)
			op := r.d.Inst.Op
			r.memOrFence = op.IsMem() || op.IsFence()
			r.committed = false
			r.fetched = false
			r.predicted = false
			r.predMisp = false
			r.recovered = false
			w.end++
		}
	}
	if n := w.end - w.base; n > w.peak {
		w.peak = n
	}
	return true
}

// pushChunk extends the directory by one chunk at the loading edge, reusing
// a released chunk when one is free. The directory's backing array is
// compacted in place (a handful of pointer moves) once the dead prefix
// dominates, so the steady state allocates nothing.
func (w *window) pushChunk() {
	var ch *recChunk
	if n := len(w.free); n > 0 {
		ch = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
	} else {
		ch = new(recChunk)
	}
	if w.chead+w.cn == len(w.chunks) {
		if w.chead > w.cn {
			copy(w.chunks, w.chunks[w.chead:w.chead+w.cn])
			for i := w.cn; i < w.chead+w.cn; i++ {
				w.chunks[i] = nil
			}
			w.chead = 0
		} else {
			w.chunks = append(w.chunks, nil)
			w.chunks = w.chunks[:cap(w.chunks)]
		}
	}
	w.chunks[w.chead+w.cn] = ch
	w.cn++
}

// loadedEnd is one past the highest loaded trace index.
func (w *window) loadedEnd() int { return w.end }

// baseIdx is the lowest still-resident trace index; everything below it has
// been released. The sanitizer checks it against the release-safety bound.
func (w *window) baseIdx() int { return w.base }

// rec returns the record for trace index idx, which must be loaded and not
// yet released. The pointer is stable for as long as the record is resident:
// it is invalidated only by a release call whose bound passes idx.
func (w *window) rec(idx int) *instRecord {
	if idx < w.base || idx >= w.end {
		panic(fmt.Sprintf("pipeline: window access at %d outside [%d,%d)", idx, w.base, w.end))
	}
	return &w.chunks[w.chead+(idx>>chunkShift)-w.chunkBase][idx&chunkMask]
}

// advanceCommitted returns the first loaded index at or after idx whose
// record is not yet committed (or the loaded end). The walk resolves the
// chunk directory once per chunk crossing instead of once per record, which
// matters because the frontiers are re-walked every commit step.
func (w *window) advanceCommitted(idx int) int {
	if idx < w.base {
		panic(fmt.Sprintf("pipeline: frontier walk at %d below base %d", idx, w.base))
	}
	for idx < w.end {
		ch := w.chunks[w.chead+(idx>>chunkShift)-w.chunkBase]
		hi := (idx | chunkMask) + 1
		if hi > w.end {
			hi = w.end
		}
		for ; idx < hi; idx++ {
			if !ch[idx&chunkMask].committed {
				return idx
			}
		}
	}
	return idx
}

// advanceMemFrontier returns the first loaded index at or after idx holding
// an uncommitted memory or fence operation (or the loaded end), with the
// same chunk-wise walk as advanceCommitted.
func (w *window) advanceMemFrontier(idx int) int {
	if idx < w.base {
		panic(fmt.Sprintf("pipeline: mem-frontier walk at %d below base %d", idx, w.base))
	}
	for idx < w.end {
		ch := w.chunks[w.chead+(idx>>chunkShift)-w.chunkBase]
		hi := (idx | chunkMask) + 1
		if hi > w.end {
			hi = w.end
		}
		for ; idx < hi; idx++ {
			r := &ch[idx&chunkMask]
			if r.memOrFence && !r.committed {
				return idx
			}
		}
	}
	return idx
}

// isCommitted reports the committed flag for any trace index: released
// records are committed by construction, unloaded ones are not.
func (w *window) isCommitted(idx int) bool {
	if idx < w.base {
		return true
	}
	if idx >= w.end {
		return false
	}
	return w.chunks[w.chead+(idx>>chunkShift)-w.chunkBase][idx&chunkMask].committed
}

// isFetched reports the fetched flag for any trace index, with the same
// convention: released records were fetched (or setup-skipped), unloaded
// ones were not.
func (w *window) isFetched(idx int) bool {
	if idx < w.base {
		return true
	}
	if idx >= w.end {
		return false
	}
	return w.chunks[w.chead+(idx>>chunkShift)-w.chunkBase][idx&chunkMask].fetched
}

// release drops records below trace index bound; the core may never address
// them again, and pointers obtained via rec for indices below the bound are
// dead (their chunks are recycled at the loading edge).
func (w *window) release(bound int) {
	if bound <= w.base {
		return
	}
	if bound > w.end {
		bound = w.end
	}
	w.base = bound
	for nb := bound >> chunkShift; w.chunkBase < nb; w.chunkBase++ {
		w.free = append(w.free, w.chunks[w.chead])
		w.chunks[w.chead] = nil
		w.chead++
		w.cn--
	}
}

func (w *window) srcErr() error           { return w.src.Err() }
func (w *window) counts() emulator.Counts { return w.src.Counts() }
