package pipeline

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/emulator"
)

// instRecord is the window's per-dynamic-instruction state: the instruction
// itself, its branch-dependence decode, and the retirement/fetch bookkeeping
// the core used to keep in five parallel trace-length slices. Consolidating
// the flags here bounds their footprint by the window size and keeps every
// per-instruction fact in one cache line.
type instRecord struct {
	d   emulator.DynInst
	dep DepInfo

	committed bool
	fetched   bool
	// Branch-prediction bookkeeping: each dynamic branch is predicted and
	// trained exactly once (its first fetch); a re-fetch after its own
	// recovery is correctly predicted (the predictor was fixed at resolve),
	// while re-fetches of squashed window branches reuse the original
	// prediction.
	predicted bool
	predMisp  bool
	recovered bool
}

// window is a bounded sliding view over a TraceSource. Records live in recs,
// where recs[i] describes trace index base+i; the core addresses records by
// trace index and the window pulls from the source on demand. release()
// drops records below the commit frontier, so peak memory tracks the
// in-flight span (ROB + misprediction windows), not the trace length.
type window struct {
	src  emulator.TraceSource
	deps *depTracker

	recs []instRecord
	base int // trace index of recs[0]
	off  int // recs starts off records into its backing array
	eof  bool

	peak int // high-water mark of live records
}

func newWindow(src emulator.TraceSource, bitSize int) *window {
	return &window{src: src, deps: newDepTracker(bitSize)}
}

// ensure pulls from the source until trace index idx is loaded, returning
// false if the stream ends first. idx below the window base is a modelling
// bug: the core released a record it still needed.
func (w *window) ensure(idx int) bool {
	if idx < w.base {
		panic(fmt.Sprintf("pipeline: window access at %d below base %d", idx, w.base))
	}
	for idx >= w.loadedEnd() {
		if w.eof {
			return false
		}
		d, ok := w.src.Next()
		if !ok {
			w.eof = true
			return false
		}
		w.recs = append(w.recs, instRecord{d: d, dep: w.deps.next(&d)})
		if len(w.recs) > w.peak {
			w.peak = len(w.recs)
		}
	}
	return true
}

// loadedEnd is one past the highest loaded trace index.
func (w *window) loadedEnd() int { return w.base + len(w.recs) }

// baseIdx is the lowest still-resident trace index; everything below it has
// been released. The sanitizer checks it against the release-safety bound.
func (w *window) baseIdx() int { return w.base }

// rec returns the record for trace index idx, which must be loaded and not
// yet released. The pointer is invalidated by the next ensure or release
// call — do not hold it across either.
func (w *window) rec(idx int) *instRecord {
	if idx < w.base || idx >= w.loadedEnd() {
		panic(fmt.Sprintf("pipeline: window access at %d outside [%d,%d)", idx, w.base, w.loadedEnd()))
	}
	return &w.recs[idx-w.base]
}

// isCommitted reports the committed flag for any trace index: released
// records are committed by construction, unloaded ones are not.
func (w *window) isCommitted(idx int) bool {
	if idx < w.base {
		return true
	}
	if idx >= w.loadedEnd() {
		return false
	}
	return w.recs[idx-w.base].committed
}

// isFetched reports the fetched flag for any trace index, with the same
// convention: released records were fetched (or setup-skipped), unloaded
// ones were not.
func (w *window) isFetched(idx int) bool {
	if idx < w.base {
		return true
	}
	if idx >= w.loadedEnd() {
		return false
	}
	return w.recs[idx-w.base].fetched
}

// release drops records below trace index bound; the core may never address
// them again. The slice head advances in place, and the live span is copied
// down once the dead prefix dominates the backing array so memory is
// reclaimed rather than pinned.
func (w *window) release(bound int) {
	if bound <= w.base {
		return
	}
	if bound > w.loadedEnd() {
		bound = w.loadedEnd()
	}
	n := bound - w.base
	w.recs = w.recs[n:]
	w.base = bound
	w.off += n
	if w.off > 4096 && w.off > len(w.recs) {
		compact := make([]instRecord, len(w.recs))
		copy(compact, w.recs)
		w.recs = compact
		w.off = 0
	}
}

func (w *window) srcErr() error           { return w.src.Err() }
func (w *window) counts() emulator.Counts { return w.src.Counts() }
