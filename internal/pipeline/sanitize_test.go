package pipeline

import (
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/sanity"
	"github.com/noreba-sim/noreba/internal/trace"
)

var allPolicies = []PolicyKind{InOrder, NonSpecOoO, Noreba, IdealReconv, SpecBR, Spec}

// sanConfig is testConfig with the invariant checker enabled.
func sanConfig(pk PolicyKind) Config {
	cfg := testConfig(pk)
	cfg.Sanitize = true
	return cfg
}

// TestSanitizerCleanOnMLPKernel: the reference kernel (misses, mispredicts,
// out-of-order commit) must run violation-free under every policy, with and
// without ECL/FreeSetup, since those change which commit conditions apply.
func TestSanitizerCleanOnMLPKernel(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(48), true)
	for _, pk := range allPolicies {
		for _, ecl := range []bool{false, true} {
			cfg := sanConfig(pk)
			cfg.ECL = ecl
			cfg.FreeSetup = ecl // vary both together; two runs cover all sites
			st, err := NewCore(cfg, tr, meta).Run()
			if err != nil {
				t.Fatalf("%s ecl=%t: %v", pk, ecl, err)
			}
			if want := int64(tr.Len()) - tr.Setup; st.Committed != want {
				t.Fatalf("%s ecl=%t: committed %d, want %d", pk, ecl, st.Committed, want)
			}
		}
	}
}

// TestSanitizerCleanOnRandomPrograms: random structured programs across every
// policy must never trip an invariant. This is the sanitizer's main job — a
// policy bug that retires illegally now fails loudly instead of just skewing
// cycle counts.
func TestSanitizerCleanOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		res, err := compiler.Compile(generate(seed), compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, err := emulator.New(res.Image).Run(1 << 18)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pk := range allPolicies {
			if _, err := NewCore(sanConfig(pk), tr, res.Meta).Run(); err != nil {
				t.Errorf("seed %d policy %v: %v", seed, pk, err)
			}
		}
	}
}

// stepUntilInFlight runs the core until at least n entries are in flight (or
// fails the test if the run drains first).
func stepUntilInFlight(t *testing.T, c *Core, n int) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if c.robCount >= n {
			return
		}
		if c.Done() {
			t.Fatal("run drained before reaching the wanted in-flight depth")
		}
		c.Step()
	}
	t.Fatalf("never reached %d in-flight entries", n)
}

// TestSanitizerCatchesPRFLeak: corrupting the free-list accounting must be
// detected by the next cycle's recount as prf/conservation.
func TestSanitizerCatchesPRFLeak(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(Noreba), tr, meta)
	stepUntilInFlight(t, c, 4)
	c.physUsed++ // simulated leak: a register neither allocated nor freed
	c.Step()
	assertViolation(t, c.SanityErr(), "prf/conservation")
}

// TestSanitizerCatchesOccupancyDrift: same for the ROB occupancy counter.
func TestSanitizerCatchesOccupancyDrift(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(InOrder), tr, meta)
	stepUntilInFlight(t, c, 4)
	c.robOcc--
	c.Step()
	assertViolation(t, c.SanityErr(), "rob/occupancy")
}

// TestSanitizerCatchesROBDisorder: breaking the ROB's age order must be
// flagged by the scan.
func TestSanitizerCatchesROBDisorder(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(InOrder), tr, meta)
	stepUntilInFlight(t, c, 4)
	// Swap the first two list nodes so the ROB is out of age order.
	a, b := c.robHead, c.robHead.robNext
	a.robNext, b.robPrev = b.robNext, a.robPrev
	if b.robNext != nil {
		b.robNext.robPrev = a
	} else {
		c.robTail = a
	}
	a.robPrev, b.robNext = b, a
	c.robHead = b
	c.Step()
	assertViolation(t, c.SanityErr(), "rob/alloc-order")
}

// TestSanitizerCatchesFrontierRegression: the frontier must never move
// backwards relative to what the checker last observed.
func TestSanitizerCatchesFrontierRegression(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(InOrder), tr, meta)
	stepUntilInFlight(t, c, 4)
	c.san.lastFrontier = c.frontierIdx + 1000
	c.Step()
	assertViolation(t, c.SanityErr(), "frontier/monotonic")
}

// TestSanitizerCatchesDoubleCommit: retiring an already-committed entry is a
// lifecycle violation, reported from the onCommit hook.
func TestSanitizerCatchesDoubleCommit(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(Noreba), tr, meta)
	stepUntilInFlight(t, c, 1)
	e := &Entry{committed: true}
	c.san.onCommit(c, e)
	assertViolation(t, c.SanityErr(), "commit/lifecycle")
}

// TestSanitizerErrorSurfacesFromRun: once an invariant trips, Run must stop
// and return the typed *sanity.Error rather than finishing the trace.
func TestSanitizerErrorSurfacesFromRun(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(InOrder), tr, meta)
	stepUntilInFlight(t, c, 4)
	c.physUsed++
	_, err := c.Run()
	if err == nil {
		t.Fatal("Run returned nil after an injected violation")
	}
	serr, ok := sanity.As(err)
	if !ok {
		t.Fatalf("Run returned %T, want *sanity.Error", err)
	}
	if serr.Invariant != "prf/conservation" {
		t.Fatalf("invariant = %q, want prf/conservation", serr.Invariant)
	}
	if serr.Cycle <= 0 {
		t.Fatalf("violation not cycle-stamped: %v", serr)
	}
	if !strings.Contains(err.Error(), "prf/conservation") {
		t.Fatalf("error text %q does not name the invariant", err)
	}
}

// TestSanitizerFirstViolationWins: fail() keeps the first diagnostic.
func TestSanitizerFirstViolationWins(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(16), true)
	c := NewCore(sanConfig(InOrder), tr, meta)
	c.fail(sanity.Errorf("test/first", 1, "first"))
	c.fail(sanity.Errorf("test/second", 2, "second"))
	assertViolation(t, c.SanityErr(), "test/first")
}

func assertViolation(t *testing.T, err error, invariant string) {
	t.Helper()
	if err == nil {
		t.Fatalf("no violation reported, want %s", invariant)
	}
	serr, ok := sanity.As(err)
	if !ok {
		t.Fatalf("error %T is not a *sanity.Error", err)
	}
	if serr.Invariant != invariant {
		t.Fatalf("invariant = %q (%v), want %q", serr.Invariant, serr, invariant)
	}
}

// TestTraceEventsConsistent: with a Collector attached, the event stream must
// agree with the run's statistics — commits match Stats.Committed, every
// commit was preceded by that instruction's dispatch, and cycle stamps are
// monotonic per instruction.
func TestTraceEventsConsistent(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(32), true)
	for _, pk := range allPolicies {
		col := &trace.Collector{}
		cfg := sanConfig(pk)
		cfg.TraceSink = col
		st, err := NewCore(cfg, tr, meta).Run()
		if err != nil {
			t.Fatalf("%s: %v", pk, err)
		}

		commits := int64(0)
		dispatched := map[int64]trace.Event{}
		lastCycle := map[int64]int64{}
		for _, e := range col.Events() {
			if last, ok := lastCycle[e.Seq]; ok && e.Cycle < last {
				t.Fatalf("%s: seq %d event %v at cycle %d after cycle %d", pk, e.Seq, e.Kind, e.Cycle, last)
			}
			lastCycle[e.Seq] = e.Cycle
			switch e.Kind {
			case trace.KindDispatch:
				dispatched[e.Seq] = e
			case trace.KindCommit:
				commits++
				if _, ok := dispatched[e.Seq]; !ok {
					t.Fatalf("%s: seq %d committed without a dispatch event", pk, e.Seq)
				}
			}
		}
		if commits != st.Committed {
			t.Fatalf("%s: %d commit events, Stats.Committed=%d", pk, commits, st.Committed)
		}
		if pk == Noreba {
			ooo := false
			for _, e := range col.Events() {
				if e.Kind == trace.KindCommit && e.OoO {
					ooo = true
					break
				}
			}
			if !ooo {
				t.Fatal("NOREBA run on the MLP kernel produced no out-of-order commit events")
			}
		}
	}
}

// TestTraceDisabledMatchesEnabled: attaching a sink or the sanitizer must
// never change timing — cycle counts are identical with observability on and
// off.
func TestTraceDisabledMatchesEnabled(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(32), true)
	for _, pk := range allPolicies {
		base := runPolicy(t, testConfig(pk), tr, meta)

		cfg := sanConfig(pk)
		cfg.TraceSink = &trace.Collector{}
		st, err := NewCore(cfg, tr, meta).Run()
		if err != nil {
			t.Fatalf("%s: %v", pk, err)
		}
		if st.Cycles != base.Cycles {
			t.Fatalf("%s: %d cycles with observability on, %d off — observers must not perturb timing",
				pk, st.Cycles, base.Cycles)
		}
	}
}
