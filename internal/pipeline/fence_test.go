package pipeline

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// fencedKernel is the mlp kernel with a synchronisation barrier at the end
// of each iteration — the §4.5 multi-core pattern where the compiler must
// not let commit reorder across the barrier.
func fencedKernel(iters int) *program.Program {
	b := program.NewBuilder("fenced")
	b.Label("entry").
		Li(isa.S0, 1<<20).
		Li(isa.S2, 0).
		Li(isa.A0, int64(iters))
	b.Label("loop").
		Add(isa.T0, isa.S0, isa.S2).
		Lw(isa.T1, isa.T0, 0).
		Andi(isa.T2, isa.T1, 1).
		Bnez(isa.T2, "skip")
	b.Label("then").
		Addi(isa.A2, isa.A2, 1)
	b.Label("skip").
		Addi(isa.A3, isa.A3, 1).
		Fence(). // publish the iteration's results
		Addi(isa.S2, isa.S2, 8192).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "loop")
	b.Label("done").Halt()
	p := b.MustBuild()
	for i := 0; i < iters; i++ {
		p.Data[1<<20+int64(i)*8192] = int64(i * 7919)
	}
	return p
}

func TestFenceSerialisesCommit(t *testing.T) {
	tr, meta := buildTrace(t, fencedKernel(300), true)
	st := runPolicy(t, testConfig(Noreba), tr, meta)

	// Every instruction still commits exactly once (checked by runPolicy);
	// the fence must force in-order commit at the barrier, so out-of-order
	// commits past unresolved branches shrink drastically versus the
	// fence-free kernel.
	trFree, metaFree := buildTrace(t, mlpKernel(300), true)
	free := runPolicy(t, testConfig(Noreba), trFree, metaFree)
	if st.OoOCommitted >= free.OoOCommitted {
		t.Errorf("fenced kernel OoO commits (%d) should be well below fence-free (%d)",
			st.OoOCommitted, free.OoOCommitted)
	}
}

func TestFenceUnmarksSpanningBranches(t *testing.T) {
	// A branch whose dependent region contains a fence must stay unmarked.
	p := program.MustAssemble("spanning", `
entry:
	li a0, 1
	beqz a0, join
body:
	addi a1, a1, 1
	fence
	addi a2, a2, 1
join:
	halt
`)
	res, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MarkedBranches != 0 {
		t.Errorf("branch spanning a fence was marked:\n%s", res.Image.Disassemble())
	}
}

func TestFenceStopsTaintPropagation(t *testing.T) {
	// Data defined in a branch arm is consumed after a fence: §4.5 says the
	// pass operates only between barriers, so the consumer is not marked.
	p := program.MustAssemble("taintfence", `
entry:
	li s0, 0x1000
	li a0, 1
	beqz a0, join
arm:
	sw a0, 0(s0)
join:
	fence
	lw a5, 0(s0)
	addi a6, a5, 1
	halt
`)
	res, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The lw/addi after the fence must carry no setDependency (taint was
	// cleared at the barrier; the hardware orders at the fence instead).
	img := res.Image
	fencePC := -1
	for pc, in := range img.Insts {
		if in.Op.IsFence() {
			fencePC = pc
		}
	}
	if fencePC < 0 {
		t.Fatal("fence missing from image")
	}
	for pc := fencePC + 1; pc < len(img.Insts); pc++ {
		if img.Insts[pc].Op == isa.OpSetDependency {
			t.Errorf("setDependency after fence at pc %d:\n%s", pc, img.Disassemble())
		}
	}
}

func TestFenceCommitsInOrderUnderAllPolicies(t *testing.T) {
	tr, meta := buildTrace(t, fencedKernel(150), true)
	for _, pk := range []PolicyKind{InOrder, NonSpecOoO, Noreba, IdealReconv, SpecBR} {
		st := runPolicy(t, testConfig(pk), tr, meta)
		if st.Cycles <= 0 {
			t.Fatalf("%v: bad cycle count", pk)
		}
	}
}
