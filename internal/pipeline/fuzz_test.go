package pipeline

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/progtest"
)

func generate(seed int64) *program.Program { return progtest.Generate(seed) }

// TestFuzzCompilePreservesSemantics: for many random structured programs,
// the NOREBA pass must not change architectural results.
func TestFuzzCompilePreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		p := generate(seed)
		img, err := p.Layout()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m1 := emulator.New(img)
		if _, err := m1.Run(1 << 18); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !m1.Halted() {
			t.Fatalf("seed %d: generator produced non-terminating program", seed)
		}

		res, err := compiler.Compile(generate(seed), compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		m2 := emulator.New(res.Image)
		if _, err := m2.Run(1 << 18); err != nil {
			t.Fatalf("seed %d: annotated run: %v", seed, err)
		}
		if m1.IntRegs != m2.IntRegs {
			t.Errorf("seed %d: integer state diverged", seed)
		}
		for a, v := range m1.Mem {
			if m2.Mem[a] != v {
				t.Errorf("seed %d: mem[%#x] %d vs %d", seed, a, v, m2.Mem[a])
			}
		}
	}
}

// TestFuzzAllPoliciesConserveCommits: every policy must retire every
// dynamic instruction of every random program exactly once, never exceed
// the speculative oracles' cycle count by unreasonable factors, and never
// livelock.
func TestFuzzAllPoliciesConserveCommits(t *testing.T) {
	policies := []PolicyKind{InOrder, NonSpecOoO, Noreba, IdealReconv, SpecBR, Spec}
	for seed := int64(1); seed <= 25; seed++ {
		res, err := compiler.Compile(generate(seed), compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, err := emulator.New(res.Image).Run(1 << 18)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := int64(tr.Len()) - tr.Setup
		var inOrderCycles int64
		for _, pk := range policies {
			cfg := testConfig(pk)
			st, err := NewCore(cfg, tr, res.Meta).Run()
			if err != nil {
				t.Fatalf("seed %d policy %v: %v", seed, pk, err)
			}
			if st.Committed != want {
				t.Errorf("seed %d policy %v: committed %d, want %d", seed, pk, st.Committed, want)
			}
			if pk == InOrder {
				inOrderCycles = st.Cycles
			} else if st.Cycles > 3*inOrderCycles {
				t.Errorf("seed %d policy %v: %d cycles vs in-order %d — pathological slowdown",
					seed, pk, st.Cycles, inOrderCycles)
			}
		}
	}
}

// TestFuzzNorebaSafety: under NOREBA, an instruction must never commit
// while an *unmarked* older branch is unresolved, and never commit twice.
// This is the non-speculation invariant the compiler/hardware contract
// guarantees.
func TestFuzzNorebaSafety(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		res, err := compiler.Compile(generate(seed), compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, err := emulator.New(res.Image).Run(1 << 18)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := testConfig(Noreba)
		core := NewCore(cfg, tr, res.Meta)
		st, err := core.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = st
	}
}
