package pipeline

import (
	"sync"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
)

// The microbenchmarks share one long MLP-kernel trace: enough iterations
// that a core warmed for thousands of cycles is still mid-run, so the
// numbers reflect the steady state rather than fill/drain transients.
var (
	benchOnce sync.Once
	benchTr   *emulator.Trace
	benchMeta *compiler.Meta
	benchErr  error
)

func benchTrace(tb testing.TB) (*emulator.Trace, *compiler.Meta) {
	tb.Helper()
	benchOnce.Do(func() {
		res, err := compiler.Compile(mlpKernel(4000), compiler.DefaultOptions())
		if err != nil {
			benchErr = err
			return
		}
		benchTr, benchErr = emulator.New(res.Image).Run(4 << 20)
		benchMeta = res.Meta
	})
	if benchErr != nil {
		tb.Fatalf("bench trace: %v", benchErr)
	}
	return benchTr, benchMeta
}

func benchSteps(b *testing.B, pk PolicyKind) {
	tr, meta := benchTrace(b)
	cfg := testConfig(pk)
	c := NewCore(cfg, tr, meta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Done() {
			b.StopTimer()
			c = NewCore(cfg, tr, meta)
			b.StartTimer()
		}
		c.Step()
	}
}

// BenchmarkStepIssue exercises the dependency-driven wakeup path: the Spec
// policy retires everything as soon as it completes, so the run is bounded
// by issue/writeback traffic and the ready-queue churn dominates each Step.
func BenchmarkStepIssue(b *testing.B) { benchSteps(b, Spec) }

// BenchmarkCommitPolicy times a steady-state Step under each commit policy,
// isolating the per-policy cost of the candidate-queue walks and their
// incremental boundary state.
func BenchmarkCommitPolicy(b *testing.B) {
	for _, pk := range allPolicies {
		b.Run(pk.String(), func(b *testing.B) { benchSteps(b, pk) })
	}
}

// TestStepSteadyStateZeroAlloc is the tentpole's allocation contract: with
// tracing and sanitizing disabled, a warmed core's Step performs zero heap
// allocations under every policy — entries come from the pool, completions
// from the wheel, and every queue reuses its backing storage.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	tr, meta := benchTrace(t)
	for _, pk := range allPolicies {
		c := NewCore(testConfig(pk), tr, meta)
		for i := 0; i < 10000 && !c.Done(); i++ {
			c.Step()
		}
		if c.Done() {
			t.Fatalf("%v: trace too short to reach a steady state", pk)
		}
		if n := testing.AllocsPerRun(200, func() { c.Step() }); n != 0 {
			t.Errorf("%v: steady-state Step allocates %.3f objects per call, want 0", pk, n)
		}
	}
}
