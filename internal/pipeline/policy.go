package pipeline

// policy is the commit-stage strategy. All policies share the pipeline and
// the common eligibility rules in Core.eligible; they differ in which
// instructions they may retire each cycle and in what resources retirement
// reclaims.
//
// The commit walks are event-driven: instead of rescanning the ROB, each
// policy examines the core's commit-candidate queue (entries past the event
// that first made them retirable, in dispatch order — see candMode) bounded
// by its incremental commit boundary (the blocker deques). The positional
// semantics of the old full-ROB scans are preserved exactly: a walk stops at
// the first instruction — candidate, live blocker, or committed resident —
// that the old scan would have broken at.
type policy interface {
	dispatch(c *Core, e *Entry)
	// commit retires up to width instructions at cycle and returns how many
	// it retired.
	commit(c *Core, cycle int64, width int) int
	// resolve is called when a control transfer resolves (after the core
	// updates its own branch lists, before any recovery).
	resolve(c *Core, e *Entry)
	// squash drops policy-internal state for instructions younger than seq.
	squash(c *Core, seq int64)
	// accumulate records per-cycle occupancy statistics.
	accumulate(c *Core)
}

func newPolicy(cfg Config) policy {
	switch cfg.Policy {
	case InOrder:
		return &inOrderPolicy{}
	case NonSpecOoO:
		return &nonSpecPolicy{}
	case IdealReconv:
		return &idealReconvPolicy{}
	case SpecBR:
		return &specBRPolicy{}
	case Spec:
		return &specPolicy{}
	case Noreba:
		return newNorebaPolicy(cfg.Selective)
	default:
		return &inOrderPolicy{}
	}
}

// commitStep retires e from a candidate-queue walk and reports whether the
// walk must also skip the candidate that directly follows e in the ROB.
// The scans this code replaces ranged over the ROB slice while commitEntry
// spliced drained entries out of the shared backing array, so each
// commit-that-drained shifted the remaining elements left by one and the
// range skipped e's immediate successor that cycle. The golden cycle counts
// bake that positional behaviour in, so the walks reproduce it: when e
// drains at commit and its ROB successor is a candidate (then sitting at
// e's old queue index), the caller advances past it. The one exception is
// the youngest ROB entry: the splice leaves a stale copy of the original
// last element in the tail slot the range still reads, so the last entry
// was always examined and is never skipped.
func (c *Core) commitStep(e *Entry) bool {
	next := e.robNext
	c.commitEntry(e)
	return !e.inROB && next != nil && next.inCand && next != c.robTail
}

type basePolicy struct{}

func (basePolicy) dispatch(*Core, *Entry) {}
func (basePolicy) resolve(*Core, *Entry)  {}
func (basePolicy) squash(*Core, int64)    {}
func (basePolicy) accumulate(*Core)       {}

// inOrderPolicy is the conventional baseline (InO-C): strict head-of-ROB
// commit.
type inOrderPolicy struct{ basePolicy }

func (inOrderPolicy) commit(c *Core, cycle int64, width int) int {
	n := 0
	for n < width && c.robHead != nil {
		e := c.robHead
		if !c.eligible(e, cycle, true, true) {
			break
		}
		c.commitEntry(e)
		n++
	}
	return n
}

// nonSpecPolicy is Bell & Lipasti's non-speculative OoO commit: a completed
// instruction may retire once every older branch has resolved and every
// older memory operation has passed translation (no possible trap ahead of
// it). Memory operations additionally retire in program order.
type nonSpecPolicy struct{ basePolicy }

func (nonSpecPolicy) commit(c *Core, cycle int64, width int) int {
	boundary := c.nonSpecBoundary(cycle)
	residentCut := c.residentCutoff(boundary)
	n, i := 0, 0
	for i < len(c.candQ) && n < width {
		e := c.candQ[i]
		if e.dispatchOrder > residentCut || e.Seq() >= boundary {
			break
		}
		if c.eligible(e, cycle, true, true) {
			if c.commitStep(e) { // removes e from candQ at index i
				i++
			}
			n++
		} else {
			i++
		}
	}
	return n
}

// idealReconvPolicy commits with Noreba's compiler information but an ideal
// ROB: any completed instruction whose governing branch instance has
// resolved may retire, with no queue or table capacity limits.
type idealReconvPolicy struct{ basePolicy }

func (idealReconvPolicy) commit(c *Core, cycle int64, width int) int {
	memBoundary := c.memTrapBoundary(cycle)
	residentCut := c.residentCutoff(memBoundary)
	n, i := 0, 0
	for i < len(c.candQ) && n < width {
		e := c.candQ[i]
		if e.dispatchOrder > residentCut || e.Seq() >= memBoundary {
			break // Condition 2: a possibly-trapping older access blocks commit
		}
		if c.eligible(e, cycle, true, false) && depSatisfied(c, e) {
			if c.commitStep(e) {
				i++
			}
			n++
		} else {
			i++
		}
	}
	return n
}

// depSatisfied checks the compiler-dependence commit condition shared by
// the ideal-reconvergence policy: the instruction's governing branch
// instance has resolved, DepOrdered instructions wait for all older
// branches, and unmarked unresolved branches serialise everything younger.
// Every clause reads an eagerly-maintained list, so the check is O(log n).
func depSatisfied(c *Core, e *Entry) bool {
	// An unmarked (no setBranchId) unresolved conditional branch blocks
	// all younger instructions: the compiler gave no information about
	// its dependents.
	if len(c.unmarkedUnresolved) > 0 && c.unmarkedUnresolved[0].Seq() < e.Seq() {
		return false
	}
	switch {
	case e.dep.DepSeq == DepNone:
		return true
	case e.dep.DepSeq == DepOrdered:
		return c.allOlderBranchesResolved(e)
	default:
		idx := int(e.dep.DepSeq)
		if c.win.isCommitted(idx) {
			return true
		}
		if b := c.findLiveBranch(e.dep.DepSeq); b != nil {
			return b.resolved && !b.mispredictPending()
		}
		return false // not fetched (skipped region): poisoned
	}
}

// mispredictPending reports whether the branch resolved mispredicted but
// its recovery semantics make dependents unsafe; resolved branches in this
// model have already recovered, so only unresolved counts.
func (e *Entry) mispredictPending() bool { return e.mispredicted && !e.resolved }

// specBRPolicy is the SpeculativeBR oracle: the branch condition is fully
// relaxed (completed instructions retire past unresolved branches with no
// misspeculation cost), while the memory-trap condition and program-order
// memory retirement still hold.
type specBRPolicy struct{ basePolicy }

func (specBRPolicy) commit(c *Core, cycle int64, width int) int {
	memBoundary := c.memTrapBoundary(cycle)
	residentCut := c.residentCutoff(memBoundary)
	n, i := 0, 0
	for i < len(c.candQ) && n < width {
		e := c.candQ[i]
		if e.dispatchOrder > residentCut || e.Seq() >= memBoundary {
			break // Condition 2: a possibly-trapping older access blocks commit
		}
		if c.eligible(e, cycle, true, false) {
			if c.commitStep(e) {
				i++
			}
			n++
		} else {
			i++
		}
	}
	return n
}

// specPolicy is Figure 1's fully speculative oracle: completed instructions
// retire with every commit condition relaxed.
type specPolicy struct{ basePolicy }

func (specPolicy) commit(c *Core, cycle int64, width int) int {
	n, i := 0, 0
	for i < len(c.candQ) && n < width {
		e := c.candQ[i]
		if c.eligible(e, cycle, false, false) {
			if c.commitStep(e) {
				i++
			}
			n++
		} else {
			i++
		}
	}
	return n
}
