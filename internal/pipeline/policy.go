package pipeline

// policy is the commit-stage strategy. All policies share the pipeline and
// the common eligibility rules in Core.eligible; they differ in which
// instructions they may retire each cycle and in what resources retirement
// reclaims.
type policy interface {
	dispatch(c *Core, e *Entry)
	// commit retires up to width instructions at cycle and returns how many
	// it retired.
	commit(c *Core, cycle int64, width int) int
	// squash drops policy-internal state for instructions younger than seq.
	squash(c *Core, seq int64)
	// accumulate records per-cycle occupancy statistics.
	accumulate(c *Core)
}

func newPolicy(cfg Config) policy {
	switch cfg.Policy {
	case InOrder:
		return &inOrderPolicy{}
	case NonSpecOoO:
		return &nonSpecPolicy{}
	case IdealReconv:
		return &idealReconvPolicy{}
	case SpecBR:
		return &specBRPolicy{}
	case Spec:
		return &specPolicy{}
	case Noreba:
		return newNorebaPolicy(cfg.Selective)
	default:
		return &inOrderPolicy{}
	}
}

type basePolicy struct{}

func (basePolicy) dispatch(*Core, *Entry) {}
func (basePolicy) squash(*Core, int64)    {}
func (basePolicy) accumulate(*Core)       {}

// inOrderPolicy is the conventional baseline (InO-C): strict head-of-ROB
// commit.
type inOrderPolicy struct{ basePolicy }

func (inOrderPolicy) commit(c *Core, cycle int64, width int) int {
	n := 0
	for n < width && len(c.rob) > 0 {
		e := c.rob[0]
		if !c.eligible(e, cycle, true, true) {
			break
		}
		c.commitEntry(e)
		n++
	}
	return n
}

// nonSpecPolicy is Bell & Lipasti's non-speculative OoO commit: a completed
// instruction may retire once every older branch has resolved and every
// older memory operation has passed translation (no possible trap ahead of
// it). Memory operations additionally retire in program order.
type nonSpecPolicy struct{ basePolicy }

func (nonSpecPolicy) commit(c *Core, cycle int64, width int) int {
	boundary := int64(1) << 62
	for _, e := range c.rob {
		if (e.isCondBranch || e.isJalr) && !e.resolved {
			boundary = e.Seq()
			break
		}
		if e.isMem && !(e.issued && e.addrReadyAt <= cycle) {
			boundary = e.Seq()
			break
		}
	}
	n := 0
	for _, e := range c.rob {
		if n == width {
			break
		}
		if e.Seq() >= boundary {
			break
		}
		if c.eligible(e, cycle, true, true) {
			c.commitEntry(e)
			n++
		}
	}
	return n
}

// idealReconvPolicy commits with Noreba's compiler information but an ideal
// ROB: any completed instruction whose governing branch instance has
// resolved may retire, with no queue or table capacity limits.
type idealReconvPolicy struct{ basePolicy }

func (idealReconvPolicy) commit(c *Core, cycle int64, width int) int {
	memBoundary := memTrapBoundary(c, cycle)
	n := 0
	for _, e := range c.rob {
		if n == width {
			break
		}
		if e.Seq() >= memBoundary {
			break // Condition 2: a possibly-trapping older access blocks commit
		}
		if !c.eligible(e, cycle, true, false) {
			continue
		}
		if !depSatisfied(c, e) {
			continue
		}
		c.commitEntry(e)
		n++
	}
	return n
}

// memTrapBoundary returns the sequence number of the oldest memory
// operation whose translation has not yet succeeded; no instruction past it
// may commit (Condition 2).
func memTrapBoundary(c *Core, cycle int64) int64 {
	for _, e := range c.rob {
		if e.isMem && !(e.issued && e.addrReadyAt <= cycle) {
			return e.Seq()
		}
	}
	return int64(1) << 62
}

// depSatisfied checks the compiler-dependence commit condition shared by
// the ideal-reconvergence policy: the instruction's governing branch
// instance has resolved, DepOrdered instructions wait for all older
// branches, and unmarked unresolved branches serialise everything younger.
func depSatisfied(c *Core, e *Entry) bool {
	// An unmarked (no setBranchId) unresolved conditional branch blocks
	// all younger instructions: the compiler gave no information about
	// its dependents.
	c.pruneUnresolved()
	for _, b := range c.unresolvedBranches {
		if b.squashed || b.resolved {
			continue
		}
		if b.Seq() >= e.Seq() {
			break
		}
		if b.dep.BranchID == 0 {
			return false
		}
	}
	switch {
	case e.dep.DepSeq == DepNone:
		return true
	case e.dep.DepSeq == DepOrdered:
		return c.allOlderBranchesResolved(e)
	default:
		idx := int(e.dep.DepSeq)
		if c.win.isCommitted(idx) {
			return true
		}
		if b, ok := c.branchBySeq[e.dep.DepSeq]; ok {
			return b.resolved && !b.mispredictPending()
		}
		return false // not fetched (skipped region): poisoned
	}
}

// mispredictPending reports whether the branch resolved mispredicted but
// its recovery semantics make dependents unsafe; resolved branches in this
// model have already recovered, so only unresolved counts.
func (e *Entry) mispredictPending() bool { return e.mispredicted && !e.resolved }

// specBRPolicy is the SpeculativeBR oracle: the branch condition is fully
// relaxed (completed instructions retire past unresolved branches with no
// misspeculation cost), while the memory-trap condition and program-order
// memory retirement still hold.
type specBRPolicy struct{ basePolicy }

func (specBRPolicy) commit(c *Core, cycle int64, width int) int {
	memBoundary := memTrapBoundary(c, cycle)
	n := 0
	for _, e := range c.rob {
		if n == width {
			break
		}
		if e.Seq() >= memBoundary {
			break // Condition 2: a possibly-trapping older access blocks commit
		}
		if c.eligible(e, cycle, true, false) {
			c.commitEntry(e)
			n++
		}
	}
	return n
}

// specPolicy is Figure 1's fully speculative oracle: completed instructions
// retire with every commit condition relaxed.
type specPolicy struct{ basePolicy }

func (specPolicy) commit(c *Core, cycle int64, width int) int {
	n := 0
	for _, e := range c.rob {
		if n == width {
			break
		}
		if c.eligible(e, cycle, false, false) {
			c.commitEntry(e)
			n++
		}
	}
	return n
}
