package pipeline

import (
	"context"
	"fmt"
	"time"

	"github.com/noreba-sim/noreba/internal/branchpred"
	"github.com/noreba-sim/noreba/internal/cache"
	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/prefetch"
	"github.com/noreba-sim/noreba/internal/sanity"
	"github.com/noreba-sim/noreba/internal/trace"
)

// Core replays one dynamic instruction stream through the cycle-level
// pipeline model under a given configuration and commit policy. The stream
// is consumed through a bounded sliding window: the core addresses
// instructions by trace index, the window pulls them from the source on
// demand and releases them once committed, so memory is proportional to the
// in-flight span rather than the stream length.
//
// The hot loop is event-driven: instead of rescanning the ROB every cycle,
// the core maintains the derived state the scans used to recompute —
// a ready queue fed by producer-to-consumer wakeups at writeback, a
// commit-candidate queue fed at the event that first makes each instruction
// retirable, blocker deques tracking the oldest instruction that still
// pins each policy's commit boundary, and a cycle-indexed completion wheel.
// Every structure is ordered by dispatchOrder — the order the old code
// scanned the ROB slice in — so cycle-level behaviour is bit-identical.
// The sanitizer (Config.Sanitize) re-derives all of it from scratch each
// cycle and cross-checks the incremental state.
type Core struct {
	cfg    Config
	win    *window
	meta   *compiler.Meta
	policy policy

	pred   branchpred.Predictor
	ras    *branchpred.RAS
	dcache *cache.Hierarchy
	icache *cache.Hierarchy
	dcpt   *prefetch.DCPT

	cycle int64

	// Front end.
	cursor            int // next trace index to fetch
	fetchStalledUntil int64
	fetchBlockedBy    *Entry // unresolved branch with no reconvergence window
	pendingBubbles    int    // wrong-path fetch slots still to burn
	windowFetched     int
	ifq               entryDeque

	// Back end: the ROB is an intrusive doubly-linked list in dispatch
	// order (dispatched, uncommitted-or-awaiting-completion, in order), so
	// removal is O(1) and commit walks start at the head.
	robHead, robTail *Entry
	robCount         int

	storeQueue  []*Entry
	regProducer [isa.NumRegs]*Entry

	// nextDispatchOrder numbers ROB entries as they dispatch.
	nextDispatchOrder int64

	// Event-driven issue: dispatched, unissued entries whose waits counter
	// hit zero, sorted by dispatch order. stepIssue walks this instead of
	// the ROB.
	readyQ []*Entry

	// Event-driven commit: entries that have passed the event that first
	// makes them retirable under the configured policy (see candMode),
	// sorted by dispatch order. eligible() remains the authoritative
	// recheck at commit time.
	candQ    []*Entry
	candMode candMode

	// Policy-selected incremental boundary trackers (see deques in sched.go).
	needBlockers bool     // NonSpecOoO
	needTransMem bool     // IdealReconv, SpecBR
	needUnmarked bool     // Noreba, IdealReconv
	blockers     refDeque // unresolved-branch / untranslated-memory boundary
	untransMem   refDeque // untranslated-memory trap boundary

	// Committed-before-completion entries still resident in the ROB. Their
	// position can block positional commit walks (residentCutoff).
	committedResidents []*Entry

	// Live (dispatched, uncommitted, unsquashed) conditional branches in age
	// order; replaces the seq-keyed branch map.
	liveBranches []*Entry

	// Unresolved conditional branches in age order, maintained eagerly at
	// resolve/squash; unmarkedUnresolved is the BranchID==0 subset.
	unresolvedBranches []*Entry
	unmarkedUnresolved []*Entry

	// Pending mispredicted-but-unresolved conditional branches (fetch-time
	// knowledge standing in for wrong-path fetch).
	pendingMisp []*Entry

	// Resource occupancy.
	robOcc, iqOcc, lqOcc, sqOcc, physUsed int

	// Functional-unit busy state (unpipelined dividers).
	intDivBusyUntil, fpDivBusyUntil int64

	// Completion events, bucketed by cycle.
	wheel complWheel

	// Entry recycling: drained entries collect in dead (their fields stay
	// readable for the rest of the cycle) and return to the pool at the next
	// fetch stage.
	pool entryPool
	dead []*Entry

	// Retirement bookkeeping. Per-instruction flags live in the window's
	// records; only the frontiers stay here.
	frontierIdx    int // smallest trace index not yet committed
	highWater      int // maximum cursor value ever reached
	memFrontierIdx int // smallest memory-op trace index not yet committed

	// Observability and checking layers (nil/false when disabled).
	sink    trace.Sink
	traceOn bool
	san     *sanitizer
	sanErr  *sanity.Error

	stats Stats
}

// candMode selects which event inserts an instruction into the commit-
// candidate queue — the earliest event after which the policy's eligibility
// test could ever pass for it.
type candMode uint8

const (
	// candNone: the policy does not walk candidates (InOrder commits from
	// the ROB head, Noreba from its commit queues).
	candNone candMode = iota
	// candCompletion: Condition-1 policies (NonSpecOoO). Everything inserts
	// at writeback; ECL loads additionally at issue (they may retire on
	// translation alone).
	candCompletion
	// candRelaxed: relaxed-Condition-1 policies (IdealReconv, SpecBR, Spec).
	// Non-memory, non-control instructions insert at dispatch, memory ops at
	// issue (translation), control transfers at resolution.
	candRelaxed
)

// maxCycles guards against livelock in the model; runs this long indicate
// a modelling bug and are reported as an error.
const maxCycles = int64(1) << 33

// cancelCheckCycles is how often RunContext polls its context: a
// non-blocking channel read every 4096 simulated cycles, cheap enough to be
// invisible in profiles while bounding cancellation latency to well under a
// millisecond of wall clock.
const cancelCheckCycles = 4096

// NewCoreFromSource builds a core consuming the instruction stream. meta may
// be nil (unannotated program). The source is drained incrementally; peak
// buffering is bounded by the in-flight span and reported in
// Stats.WindowPeak.
func NewCoreFromSource(cfg Config, src emulator.TraceSource, meta *compiler.Meta) *Core {
	c := newCoreShell(cfg, src, meta)
	c.dcache = cfg.hierarchy()
	c.icache = cfg.icache()
	c.ras = branchpred.NewRAS(cfg.RASEntries)
	switch cfg.Predictor {
	case PredBimodal:
		c.pred = branchpred.NewBimodal(12)
	case PredOracle:
		c.pred = nil // perfect prediction: fetch uses the trace outcome
	default:
		c.pred = branchpred.NewTAGE()
	}
	if cfg.PrefetchEnabled {
		c.dcpt = prefetch.New(cfg.PrefetchTable, cfg.PrefetchDegree)
	}
	return c
}

// NewWarmCoreFromSource builds a core whose entire microarchitectural state
// comes from a warm-state capture: caches, predictor, prefetcher table and
// RAS are installed from ws (see InstallWarmState) instead of being
// allocated fresh and immediately replaced. Detailed sample windows use this
// — a window is a few thousand instructions, and allocating a full cache
// hierarchy per window would dwarf the window itself.
func NewWarmCoreFromSource(cfg Config, src emulator.TraceSource, meta *compiler.Meta, ws *WarmState) *Core {
	c := newCoreShell(cfg, src, meta)
	c.InstallWarmState(ws)
	return c
}

// newCoreShell builds everything of a core except the microarchitectural
// state (caches, predictor, prefetcher, RAS), which the caller supplies.
func newCoreShell(cfg Config, src emulator.TraceSource, meta *compiler.Meta) *Core {
	c := &Core{
		cfg:  cfg,
		win:  newWindow(src, cfg.Selective.BITSize),
		meta: meta,
		// The wheel horizon covers the longest issue-to-complete latency: a
		// full-miss demand access behind in-flight fills, plus slack for
		// divider latency and store-forwarding adjustments. It grows on
		// demand if a configuration exceeds it.
		wheel: newComplWheel(cfg.L1Lat + cfg.L2Lat + cfg.L3Lat + cfg.MemLat + 64),
	}
	c.policy = newPolicy(cfg)
	switch cfg.Policy {
	case NonSpecOoO:
		c.candMode = candCompletion
		c.needBlockers = true
	case IdealReconv:
		c.candMode = candRelaxed
		c.needTransMem = true
		c.needUnmarked = true
	case SpecBR:
		c.candMode = candRelaxed
		c.needTransMem = true
	case Spec:
		c.candMode = candRelaxed
	case Noreba:
		c.needUnmarked = true
	}
	c.stats.Name = src.Name()
	c.stats.Policy = cfg.Policy.String()
	if cfg.TraceSink != nil {
		c.sink, c.traceOn = cfg.TraceSink, true
	}
	if cfg.Sanitize {
		c.san = newSanitizer(c)
	}
	return c
}

// NewCore builds a core replaying a materialized trace. meta may be nil
// (unannotated program).
func NewCore(cfg Config, tr *emulator.Trace, meta *compiler.Meta) *Core {
	return NewCoreFromSource(cfg, tr.Source(), meta)
}

// UseMemory replaces the core's private cache hierarchies. The multicore
// system uses this to share a last-level cache between cores; it must be
// called before the first Step.
func (c *Core) UseMemory(dcache, icache *cache.Hierarchy) {
	c.dcache, c.icache = dcache, icache
}

// Done reports whether every stream instruction has committed: the commit
// frontier has passed the end of the stream.
func (c *Core) Done() bool { return !c.win.ensure(c.frontierIdx) }

// Step advances the core by one cycle. The multicore system interleaves
// Step calls across cores; single-core callers use Run.
func (c *Core) Step() {
	c.stepCommit()
	c.stepComplete()
	c.stepIssue()
	c.stepDispatch()
	c.stepFetch()
	c.stats.ROBOccupancy += int64(c.robOcc)
	c.policy.accumulate(c)
	c.cycle++

	// Everything below both the commit frontier and the fetch cursor is
	// retired and can never be re-fetched (after a recovery the frontier may
	// run ahead of the cursor through the OoO-committed replay region, so
	// the cursor bounds the release too).
	bound := c.frontierIdx
	if c.cursor < bound {
		bound = c.cursor
	}
	c.win.release(bound)

	if c.san != nil {
		c.san.endCycle(c)
	}
}

// SanityErr returns the first invariant violation the sanitizer detected, or
// nil. Callers stepping the core manually (the multicore system) poll it;
// Run surfaces it as the returned error.
func (c *Core) SanityErr() error {
	if c.sanErr == nil {
		return nil
	}
	return c.sanErr
}

// fail records the first sanitizer violation; later ones are dropped so the
// diagnostic always names the root cause, not a cascade.
func (c *Core) fail(err *sanity.Error) {
	if c.sanErr == nil {
		c.sanErr = err
	}
}

// emit sends a stage event for e to the trace sink. Callers guard with
// c.traceOn so the disabled path costs a single branch.
func (c *Core) emit(kind trace.Kind, e *Entry) {
	c.sink.Emit(trace.Event{
		Kind: kind, Cycle: c.cycle, Seq: e.seq, Idx: e.idx, PC: e.pc,
	})
}

// Finalize snapshots end-of-run statistics; Run calls it automatically.
func (c *Core) Finalize() *Stats {
	c.stats.Cycles = c.cycle
	c.stats.L1DAccesses = c.dcache.Levels[0].Accesses
	c.stats.L1DMisses = c.dcache.Levels[0].Misses
	c.stats.L2Misses = c.dcache.Levels[1].Misses
	c.stats.L3Misses = c.dcache.Levels[2].Misses
	c.stats.ICacheMisses = c.icache.Levels[0].Misses
	c.stats.MemAccesses = c.dcache.MemAccs
	c.stats.PrefetchIssued = c.dcache.PrefetchIssued
	c.stats.PrefetchUseful = c.dcache.PrefetchUseful
	c.stats.WindowPeak = int64(c.win.peak)
	c.stats.TraceInsts = c.win.counts().Insts
	return &c.stats
}

// WarmFunctional drains src through the core's long-lived microarchitectural
// state — instruction and data caches, prefetcher, branch predictor,
// return-address stack — without simulating pipeline timing (SMARTS-style
// functional warming). Sampled simulation uses it to replay the stream
// prefix before a representative interval at emulator speed, so detailed
// simulation starts with the cache and predictor contents a full run would
// have. insts is the number of instructions src will deliver: warming runs
// on a pseudo-clock that ends at cycle 0, where the detailed window begins.
// The clock matters at both ends: warming "at cycle 0" would leave every
// warmed line apparently still in flight, double-charging fill latency
// against the measurement window, while warming entirely in the distant
// past would present every recently-missed and prefetched line as already
// filled — in a continuous run the last ~miss-latency of accesses are still
// in flight when any window opens, and out-of-order commit exploits the
// difference. clock maps the i-th delivered instruction (0-based) to its
// pseudo-cycle; it must be non-decreasing and end at 0. A nil clock
// advances a nominal 2 cycles per instruction; callers that know the
// stream's real cycle schedule (the sampler's pilot run) pass it so the
// in-flight horizon at cycle 0 matches the continuous run's. Must be
// called before the first Step; cache counters inflated by warming accesses
// are cancelled by callers differencing statistics across a measurement
// window.
func (c *Core) WarmFunctional(src emulator.TraceSource, insts int64, clock func(i int64) int64) {
	if clock == nil {
		const warmCPI = 2 // nominal cycles per instruction
		clock = func(i int64) int64 { return -warmCPI * (insts - 1 - i) }
	}
	for i := int64(0); ; i++ {
		d, ok := src.Next()
		if !ok {
			return
		}
		warmCycle := clock(i)
		c.icache.Access(int64(d.PC)*4, warmCycle)
		if d.Inst.Op.IsMem() {
			c.dcache.Access(d.Addr, warmCycle)
			// The prefetcher's table is long-lived state too: a detailed
			// window entered with an untrained prefetcher pays demand misses
			// the continuous run had already hidden.
			if c.dcpt != nil {
				for _, addr := range c.dcpt.Train(d.PC, d.Addr) {
					c.dcache.Prefetch(addr, warmCycle)
				}
			}
		}
		switch {
		case d.Inst.Op.IsCondBranch():
			if c.pred != nil {
				c.pred.Predict(d.PC)
				c.pred.Update(d.PC, d.Taken)
			}
		case d.Inst.Op == isa.OpJal:
			if d.Inst.Rd == isa.RA {
				c.ras.Push(d.PC + 1)
			}
		case d.Inst.Op == isa.OpJalr:
			c.ras.Pop(d.NextPC)
		}
	}
}

// FingerprintFunctional replays src through the core's memory hierarchy,
// prefetcher, branch predictor and return-address stack at emulator speed —
// one pseudo-cycle per instruction, no pipeline model — reporting each
// instruction's functional timing signals to visit: the data-access latency
// beyond an L1 hit, and whether a control transfer mispredicted. Sampled
// simulation uses it to fingerprint per-interval memory and branch
// behaviour far cheaper than a detailed pilot run; the pseudo-clock
// compresses time relative to a real pipeline, so the extracted latencies
// are a phase signature, not a cycle estimate. Must be called on a
// dedicated Core that is never stepped.
func (c *Core) FingerprintFunctional(src emulator.TraceSource, visit func(memExtra int64, mispred bool)) {
	var cycle int64
	for {
		d, ok := src.Next()
		if !ok {
			return
		}
		cycle++
		var memExtra int64
		mispred := false
		c.icache.Access(int64(d.PC)*4, cycle)
		if d.Inst.Op.IsMem() {
			done := c.dcache.Access(d.Addr, cycle)
			if extra := done - cycle - c.cfg.L1Lat; extra > 0 {
				memExtra = extra
			}
			if c.dcpt != nil {
				for _, addr := range c.dcpt.Train(d.PC, d.Addr) {
					c.dcache.Prefetch(addr, cycle)
				}
			}
		}
		switch {
		case d.Inst.Op.IsCondBranch():
			if c.pred != nil {
				pred := c.pred.Predict(d.PC)
				c.pred.Update(d.PC, d.Taken)
				mispred = pred != d.Taken
			}
		case d.Inst.Op == isa.OpJal:
			if d.Inst.Rd == isa.RA {
				c.ras.Push(d.PC + 1)
			}
		case d.Inst.Op == isa.OpJalr:
			if _, hit := c.ras.Pop(d.NextPC); !hit {
				mispred = true
			}
		}
		visit(memExtra, mispred)
	}
}

// StatsSnapshot returns a copy of the statistics as of the current cycle,
// with the cache counters refreshed. The reference-typed fields
// (BranchStalls, PipeTrace) are cleared in the copy: callers taking
// mid-run snapshots (the sampler's measurement windows) difference
// counters, and sharing live maps across snapshots would alias mutable
// state. Finalize recomputes every derived field, so snapshotting mid-run
// does not disturb a later full finalization.
func (c *Core) StatsSnapshot() Stats {
	st := *c.Finalize()
	st.BranchStalls = nil
	st.PipeTrace = nil
	return st
}

// CommittedCount returns the number of dynamic instructions committed so
// far (excluding setup instructions). Callers stepping the core manually
// use it to detect commit-count crossings.
func (c *Core) CommittedCount() int64 { return c.stats.Committed }

// Run simulates until every stream instruction has committed and returns the
// statistics. If the source ends on an execution error (memory exception),
// the delivered prefix is simulated to completion and the error is returned
// alongside the statistics. Modelling failures — a sanitizer invariant
// violation, or a livelocked run — are reported as a *sanity.Error carrying
// the cycle and invariant name.
func (c *Core) Run() (*Stats, error) { return c.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: every cancelCheckCycles
// cycles the core polls ctx and, when it has been cancelled or its deadline
// has passed, stops mid-run and returns the partial statistics accumulated
// so far alongside an error wrapping the context's cause (so
// errors.Is(err, context.Canceled/DeadlineExceeded) holds). The deadline is
// compared against the wall clock directly rather than waiting for the
// context's timer to fire: on a loaded box the runtime can deliver a timer
// tens of milliseconds late, long enough for a short run to finish and
// report success past its deadline. A background context adds no per-cycle
// work beyond one nil check.
func (c *Core) RunContext(ctx context.Context) (*Stats, error) {
	done := ctx.Done()
	deadline, hasDeadline := ctx.Deadline()
	for !c.Done() {
		if done != nil && c.cycle%cancelCheckCycles == 0 {
			select {
			case <-done:
				return c.Finalize(), fmt.Errorf("pipeline: run cancelled at cycle %d: %w",
					c.cycle, context.Cause(ctx))
			default:
			}
			if hasDeadline && !time.Now().Before(deadline) {
				return c.Finalize(), fmt.Errorf("pipeline: run cancelled at cycle %d: %w",
					c.cycle, context.DeadlineExceeded)
			}
		}
		if c.cycle > maxCycles {
			return c.Finalize(), sanity.Errorf("core/livelock", c.cycle,
				"exceeded %d cycles at frontier %d with %d instructions pulled (policy %s)",
				maxCycles, c.frontierIdx, c.win.counts().Insts, c.cfg.Policy)
		}
		c.Step()
		if c.sanErr != nil {
			return c.Finalize(), c.sanErr
		}
	}
	st := c.Finalize()
	if err := c.win.srcErr(); err != nil {
		return st, fmt.Errorf("pipeline: trace source: %w", err)
	}
	return st, nil
}

// ---- ROB list / scheduler maintenance ----

func (c *Core) robLink(e *Entry) {
	e.robPrev = c.robTail
	e.robNext = nil
	if c.robTail != nil {
		c.robTail.robNext = e
	} else {
		c.robHead = e
	}
	c.robTail = e
	e.inROB = true
	c.robCount++
}

func (c *Core) robUnlink(e *Entry) {
	if e.robPrev != nil {
		e.robPrev.robNext = e.robNext
	} else {
		c.robHead = e.robNext
	}
	if e.robNext != nil {
		e.robNext.robPrev = e.robPrev
	} else {
		c.robTail = e.robPrev
	}
	e.robPrev, e.robNext = nil, nil
	e.inROB = false
	c.robCount--
}

// drainFromROB removes a fully-retired (committed and completed) entry from
// the pipeline and schedules its Entry for recycling. The rename-table slot
// is cleared — a drained producer imposed no dependence anyway — so the
// recycled Entry can never satisfy a stale lookup.
func (c *Core) drainFromROB(e *Entry) {
	c.robUnlink(e)
	if e.hasDest && c.regProducer[e.rd] == e {
		c.regProducer[e.rd] = nil
	}
	c.dead = append(c.dead, e)
}

// readyInsert queues a dispatched, unissued entry whose operands are all
// available for stepIssue's walk.
func (c *Core) readyInsert(e *Entry) {
	if e.inReady {
		return
	}
	e.inReady = true
	c.readyQ = insertByDispatch(c.readyQ, e)
}

// candInsert queues a commit candidate for the policy's walk.
func (c *Core) candInsert(e *Entry) {
	if e.inCand {
		return
	}
	e.inCand = true
	c.candQ = insertByDispatch(c.candQ, e)
}

// candRemove drops a committed entry from the candidate queue.
func (c *Core) candRemove(e *Entry) {
	lo, hi := 0, len(c.candQ)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.candQ[mid].dispatchOrder < e.dispatchOrder {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.candQ) && c.candQ[lo] == e {
		c.candQ = removeAt(c.candQ, lo)
	}
	e.inCand = false
}

// wakeConsumers credits every consumer waiting on e (which just completed or
// was squashed); consumers whose last outstanding operand this was become
// issue-ready.
func (c *Core) wakeConsumers(e *Entry) {
	for _, ref := range e.consumers {
		if !ref.live() {
			continue
		}
		x := ref.e
		if x.squashed {
			continue
		}
		x.waits--
		if x.waits == 0 && !x.issued {
			c.readyInsert(x)
		}
	}
	e.consumers = e.consumers[:0]
}

// addResident tracks an entry that committed before completing.
func (c *Core) addResident(e *Entry) {
	e.resident = len(c.committedResidents)
	c.committedResidents = append(c.committedResidents, e)
}

func (c *Core) removeResident(e *Entry) {
	if e.resident < 0 {
		return
	}
	last := len(c.committedResidents) - 1
	moved := c.committedResidents[last]
	c.committedResidents[e.resident] = moved
	moved.resident = e.resident
	c.committedResidents[last] = nil
	c.committedResidents = c.committedResidents[:last]
	e.resident = -1
}

// residentCutoff returns the smallest dispatch order among committed
// residents at or past the commit boundary. The old commit scans walked the
// ROB slice and broke at the first entry — live or committed-resident —
// with Seq() >= boundary; candidates past a blocking resident must
// therefore not retire this cycle, even though the resident itself is
// already committed.
func (c *Core) residentCutoff(boundary int64) int64 {
	cut := int64(1) << 62
	for _, e := range c.committedResidents {
		if e.Seq() >= boundary && e.dispatchOrder < cut {
			cut = e.dispatchOrder
		}
	}
	return cut
}

// ---- commit ----

func (c *Core) stepCommit() {
	// Newly loaded window records may let the memory frontier advance past
	// non-memory instructions it stopped at last cycle.
	c.advanceFrontiers()
	n := c.policy.commit(c, c.cycle, c.cfg.CommitWidth)
	if n == 0 {
		// Attribute the stall to the oldest unresolved branch, if any
		// (Figure 7's criticality metric).
		if b := c.oldestUnresolvedBranch(); b != nil {
			c.stats.branchStall(b.pc).StallCycles++
		}
	}
	if c.cursor > c.highWater {
		c.highWater = c.cursor
	}
	switch {
	case len(c.pendingMisp) > 0:
		c.stats.WindowCycles++
		c.stats.WindowCommits += int64(n)
	case c.cursor < c.highWater:
		c.stats.ReplayCycles++
		c.stats.ReplayCommits += int64(n)
	default:
		c.stats.NormalCycles++
		c.stats.NormalCommits += int64(n)
	}
}

// commitEntry retires e: marks it committed, frees its resources and
// advances the in-order frontier. Policies call this after their own
// eligibility checks.
func (c *Core) commitEntry(e *Entry) {
	if c.san != nil {
		c.san.onCommit(c, e)
	}
	e.committed = true
	e.committedAt = c.cycle
	if e.idx != c.frontierIdx {
		e.oooCommit = true
	}
	// Figure 8's metric: instructions committed past a still-unresolved
	// older branch — the commits that actually exploit the relaxed branch
	// condition (trivial commit-order skew behind short-latency producers
	// does not count).
	if b := c.oldestUnresolvedBranch(); b != nil && b.Seq() < e.Seq() {
		c.stats.OoOCommitted++
	}
	// The record is resident throughout the step that commits the entry
	// (release happens at end of Step), so the cached pointer is still good.
	e.rec.committed = true
	c.advanceFrontiers()

	if e.inCand {
		c.candRemove(e)
	}

	// Steered entries (Noreba) freed their ROB′ slot when they moved to a
	// commit queue. Instructions committed before completing (relaxed
	// Condition 1) stay on the issue list until their result is produced.
	if !e.steered {
		c.robOcc--
	}
	if e.issued && e.doneAt <= c.cycle {
		c.drainFromROB(e)
	} else {
		c.addResident(e)
	}
	if e.hasDest {
		c.physUsed--
	}
	switch e.class {
	case opLoad:
		// Without ECL, a load that commits before its data returns keeps
		// its load-queue entry until the fill completes; ECL reclaims it
		// here (§6.1.5).
		if c.cfg.ECL || (e.issued && e.doneAt <= c.cycle) {
			c.lqOcc--
			if c.traceOn && c.cfg.ECL && e.doneAt > c.cycle {
				c.emit(trace.KindEarlyReclaim, e)
			}
		} else {
			e.lqHeld = true
		}
	case opStore:
		c.sqOcc--
		c.removeFromStoreQueue(e)
		// The store's write reaches the cache at retirement.
		c.dcache.Access(e.addr, c.cycle)
	}
	if e.isCondBranch {
		c.liveBranches = removeBySeq(c.liveBranches, e.Seq())
	}
	if e.isFence {
		c.stats.FencesCommitted++
	}
	if c.traceOn {
		q := int64(-1)
		if e.steered {
			q = int64(e.queue)
		}
		c.sink.Emit(trace.Event{
			Kind: trace.KindCommit, Cycle: c.cycle, Seq: e.Seq(), Idx: e.idx,
			PC: e.pc, Arg: q, OoO: e.oooCommit,
		})
	}
	if c.cfg.PipeTraceLimit > 0 && len(c.stats.PipeTrace) < c.cfg.PipeTraceLimit {
		q := -1
		if e.steered {
			q = e.queue
		}
		// e.rec is still resident here: its release bound (min of frontier
		// and cursor) can first pass e.idx at the end of this Step.
		c.stats.PipeTrace = append(c.stats.PipeTrace, PipeRecord{
			Idx: e.idx, PC: e.pc, Asm: e.rec.d.Inst.String(),
			Fetched: e.fetchedAt, Issued: e.issuedAt, Done: e.doneAt,
			Committed: e.committedAt, OoO: e.oooCommit, Queue: q,
		})
	}
	c.stats.Committed++
}

// advanceFrontiers walks the frontiers over the loaded window. Both stop at
// the loaded end at the latest: an unloaded instruction is uncommitted by
// definition, and no in-flight entry can have an index beyond the loaded
// end, so stopping there never changes an eligibility comparison.
func (c *Core) advanceFrontiers() {
	c.frontierIdx = c.win.advanceCommitted(c.frontierIdx)
	c.memFrontierIdx = c.win.advanceMemFrontier(c.memFrontierIdx)
}

// eligible is the policy-independent part of the commit conditions.
//
// requireCompletion distinguishes the traditional designs (in-order commit
// and Bell & Lipasti's conditions, where Condition 1 — completion — must
// hold) from the paper's relaxed definition (§2 footnote: Conditions 1 and
// 3 need not hold when the branch and trap conditions are met, because the
// instruction is then guaranteed to complete and its resources can be
// reclaimed). Even in the relaxed designs, loads hold their entry until
// data returns (that final relaxation is §6.1.5's Early Commit of Loads),
// stores retire with their data, and control transfers must have resolved
// to validate their prediction.
func (c *Core) eligible(e *Entry, cycle int64, requireMemOrder, requireCompletion bool) bool {
	if e.squashed || e.committed {
		return false
	}
	switch {
	case e.class == opLoad:
		// Under the relaxed Condition 1 (§2 footnote: "instructions can be
		// committed even if the results have not returned"), a translated
		// load may retire before its data arrives, but its load-queue
		// entry is held until the fill completes; §6.1.5's ECL frees that
		// entry at translation too. The traditional designs
		// (requireCompletion) keep loads until data unless ECL is on.
		if requireCompletion && !c.cfg.ECL {
			if !(e.issued && e.doneAt <= cycle) {
				return false
			}
		} else if !(e.issued && e.addrReadyAt <= cycle) {
			return false
		}
	case e.class == opStore:
		if !(e.issued && e.doneAt <= cycle) {
			return false
		}
	case e.isCondBranch || e.isJalr:
		if !e.resolved {
			return false
		}
	default:
		if requireCompletion && !(e.issued && e.doneAt <= cycle) {
			return false
		}
	}
	if e.isFence {
		// §4.5: commit is strictly in order across a synchronisation
		// barrier.
		if e.idx != c.frontierIdx {
			return false
		}
		if c.cfg.FenceGate != nil && !c.cfg.FenceGate(c.stats.FencesCommitted) {
			return false
		}
	}
	if requireMemOrder && (e.isMem || e.isFence) && e.idx != c.memFrontierIdx {
		return false
	}
	if c.poisoned(e) {
		return false
	}
	return true
}

// poisoned reports whether e executed with wrong-path-dependent data during
// a misprediction window: its governing branch instance is either a pending
// mispredicted branch or was skipped by window fetch entirely.
func (c *Core) poisoned(e *Entry) bool {
	if e.dep.DepSeq < 0 {
		return false
	}
	idx := int(e.dep.DepSeq)
	if !c.win.isFetched(idx) && !c.win.isCommitted(idx) {
		return true // dependence on an instance window fetch skipped
	}
	for _, b := range c.pendingMisp {
		if !b.squashed && b.Seq() == e.dep.DepSeq {
			return true
		}
	}
	return false
}

// oldestUnresolvedBranch returns the front of the eagerly-maintained
// unresolved-branch list (branches leave it at resolution and squash).
func (c *Core) oldestUnresolvedBranch() *Entry {
	if len(c.unresolvedBranches) == 0 {
		return nil
	}
	return c.unresolvedBranches[0]
}

// allOlderBranchesResolved reports whether no unresolved conditional branch
// older than e remains (the serialisation rule for DepOrdered instructions
// and unmarked branches).
func (c *Core) allOlderBranchesResolved(e *Entry) bool {
	return len(c.unresolvedBranches) == 0 || c.unresolvedBranches[0].Seq() >= e.Seq()
}

// findLiveBranch returns the live (dispatched, uncommitted, unsquashed)
// conditional branch with the given sequence number, or nil. Live branches
// are age-ordered, so the lookup is a binary search.
func (c *Core) findLiveBranch(seq int64) *Entry {
	if i := searchSeq(c.liveBranches, seq); i < len(c.liveBranches) && c.liveBranches[i].Seq() == seq {
		return c.liveBranches[i]
	}
	return nil
}

// nonSpecBoundary returns the sequence number of the oldest instruction that
// blocks non-speculative commit: an unresolved control transfer or a memory
// operation whose translation has not yet succeeded. The blocker deque holds
// every such instruction in dispatch order; entries that stopped blocking
// are pruned from the front (blocking is monotone — see refDeque).
func (c *Core) nonSpecBoundary(cycle int64) int64 {
	for {
		ref, ok := c.blockers.front()
		if !ok {
			return int64(1) << 62
		}
		e := ref.e
		if !ref.live() || e.squashed || e.committed {
			c.blockers.popFront()
			continue
		}
		if e.isCondBranch || e.isJalr {
			if e.resolved {
				c.blockers.popFront()
				continue
			}
			return e.Seq()
		}
		if e.issued && e.addrReadyAt <= cycle {
			c.blockers.popFront()
			continue
		}
		return e.Seq()
	}
}

// memTrapBoundary returns the sequence number of the oldest memory
// operation whose translation has not yet succeeded; no instruction past it
// may commit (Condition 2).
func (c *Core) memTrapBoundary(cycle int64) int64 {
	for {
		ref, ok := c.untransMem.front()
		if !ok {
			return int64(1) << 62
		}
		e := ref.e
		if !ref.live() || e.squashed || e.committed {
			c.untransMem.popFront()
			continue
		}
		if e.issued && e.addrReadyAt <= cycle {
			c.untransMem.popFront()
			continue
		}
		return e.Seq()
	}
}

func (c *Core) removeFromStoreQueue(e *Entry) {
	for i, x := range c.storeQueue {
		if x == e {
			c.storeQueue = removeAt(c.storeQueue, i)
			return
		}
	}
}

// ---- complete / resolve ----

func (c *Core) stepComplete() {
	bucket := c.wheel.take(c.cycle)
	for _, ref := range bucket {
		e := ref.e
		if !ref.live() || e.squashed {
			continue
		}
		e.done = true
		if c.traceOn {
			c.emit(trace.KindWriteback, e)
		}
		c.wakeConsumers(e)
		if e.lqHeld {
			c.lqOcc--
			e.lqHeld = false
		}
		if e.committed && e.inROB {
			// Committed before completion: leave the pipeline now. (An entry
			// that committed earlier this same cycle with doneAt == now was
			// already drained by commitEntry and is off the list.)
			c.removeResident(e)
			c.drainFromROB(e)
		}
		if e.isCondBranch || e.isJalr {
			e.resolved = true
			e.resolvedAt = c.cycle
			if e.isCondBranch {
				c.unresolvedBranches = removeBySeq(c.unresolvedBranches, e.Seq())
				if c.needUnmarked && e.dep.BranchID == 0 {
					c.unmarkedUnresolved = removeBySeq(c.unmarkedUnresolved, e.Seq())
				}
			}
			c.policy.resolve(c, e)
			// Control transfers become commit candidates at resolution (a
			// branch cannot have committed earlier: eligibility requires
			// resolution under every policy).
			if c.candMode == candRelaxed {
				c.candInsert(e)
			}
			if c.traceOn && e.mispredicted {
				c.emit(trace.KindMispredict, e)
			}
			if e.isCondBranch {
				c.stats.Branches++
				if e.mispredicted {
					c.stats.Mispredicts++
					c.stats.branchStall(e.pc).Mispredicts++
					c.recover(e)
				}
			} else if e.mispredicted {
				c.stats.JalrMispredicts++
				c.unblockFetch(e)
			}
		}
		if e.isCondBranch {
			c.stats.branchStall(e.pc).Occurrences++
		}
	}
}

// recover handles a mispredicted conditional branch resolving: squash every
// younger uncommitted instruction, redirect fetch to the correct path
// (the skipped dependent region) and pay the redirect penalty. Instructions
// already committed out of order survive; their re-fetch is dropped at
// decode via the CIT. All rebuilds below filter in place or truncate;
// recovery allocates nothing.
func (c *Core) recover(b *Entry) {
	b.rec.recovered = true // resolving branch is uncommitted, so still resident
	// Squash IFQ (everything younger than b, i.e. fetched after it).
	w := c.ifq.head
	for i := 0; i < c.ifq.n; i++ {
		e := c.ifq.buf[c.ifq.head+i]
		if e.Seq() > b.Seq() {
			c.squashEntry(e, false)
		} else {
			c.ifq.buf[w] = e
			w++
		}
	}
	for i := w; i < c.ifq.head+c.ifq.n; i++ {
		c.ifq.buf[i] = nil
	}
	c.ifq.n = w - c.ifq.head
	if c.ifq.n == 0 {
		c.ifq.head = 0
	}

	// Squash back end (ROB plus policy-held queues).
	for e := c.robHead; e != nil; {
		next := e.robNext
		if e.Seq() > b.Seq() && !e.committed {
			c.squashEntry(e, true)
			c.robUnlink(e)
		}
		e = next
	}
	c.policy.squash(c, b.Seq())

	c.storeQueue = purgeSquashed(c.storeQueue)

	// Rename table: squashed producers must not satisfy future consumers.
	for r := range c.regProducer {
		if p := c.regProducer[r]; p != nil && p.squashed {
			c.regProducer[r] = nil
		}
	}

	// Drop squashed pending mispredicts and this branch.
	keepPM := c.pendingMisp[:0]
	for _, e := range c.pendingMisp {
		if e != b && !e.squashed {
			keepPM = append(keepPM, e)
		}
	}
	for i := len(keepPM); i < len(c.pendingMisp); i++ {
		c.pendingMisp[i] = nil
	}
	c.pendingMisp = keepPM

	// Scheduler state: squashed entries leave the ready and candidate
	// queues; every squashed branch is younger than b, so the branch lists
	// truncate. The blocker deques purge squashed references mid-deque.
	c.readyQ = purgeSquashed(c.readyQ)
	c.candQ = purgeSquashed(c.candQ)
	c.liveBranches = truncateYounger(c.liveBranches, b.Seq())
	c.unresolvedBranches = truncateYounger(c.unresolvedBranches, b.Seq())
	if c.needUnmarked {
		c.unmarkedUnresolved = truncateYounger(c.unmarkedUnresolved, b.Seq())
	}
	if c.needBlockers {
		c.blockers.purgeSquashed()
	}
	if c.needTransMem {
		c.untransMem.purgeSquashed()
	}

	// Mark skipped/unfetched region refetchable. The branch was unresolved
	// until now, so every release bound since its fetch was below its index;
	// the region [resumeIdx, cursor) is still resident in the window.
	for i := b.resumeIdx; i < c.cursor && i < c.win.loadedEnd(); i++ {
		if r := c.win.rec(i); !r.committed {
			r.fetched = false
		}
	}

	// Redirect.
	c.cursor = b.resumeIdx
	c.pendingBubbles = 0
	c.windowFetched = 0
	c.fetchBlockedBy = nil
	c.fetchStalledUntil = c.cycle + int64(c.cfg.MispredictPenalty)
}

func (c *Core) unblockFetch(b *Entry) {
	if c.fetchBlockedBy == b {
		c.fetchBlockedBy = nil
		c.fetchStalledUntil = c.cycle + int64(c.cfg.MispredictPenalty)
	}
}

func (c *Core) squashEntry(e *Entry, dispatched bool) {
	e.squashed = true
	if c.traceOn {
		c.emit(trace.KindSquash, e)
	}
	if dispatched {
		if !e.steered {
			c.robOcc--
		}
		if !e.issued {
			c.iqOcc--
		}
		if e.hasDest {
			c.physUsed--
		}
		switch e.class {
		case opLoad:
			c.lqOcc--
		case opStore:
			c.sqOcc--
		}
		// Consumers no longer wait on a squashed producer (its value comes
		// from re-execution, guarded by refetch).
		c.wakeConsumers(e)
	}
	c.dead = append(c.dead, e)
}

// ---- issue ----

func (c *Core) stepIssue() {
	budget := c.cfg.IssueWidth
	var aluUsed, mulDivUsed, fpUsed, loadUsed, storeUsed int
	i := 0
	for i < len(c.readyQ) {
		if budget == 0 {
			break
		}
		e := c.readyQ[i]
		switch e.class {
		case opIntALU, opBranch, opOther:
			if aluUsed >= c.cfg.IntALUs {
				i++
				continue
			}
			aluUsed++
		case opIntMul:
			if mulDivUsed >= c.cfg.IntMulDiv {
				i++
				continue
			}
			mulDivUsed++
		case opIntDiv:
			if mulDivUsed >= c.cfg.IntMulDiv || c.intDivBusyUntil > c.cycle {
				i++
				continue
			}
			mulDivUsed++
			c.intDivBusyUntil = c.cycle + c.cfg.latencyOf(opIntDiv)
		case opFPALU:
			if fpUsed >= c.cfg.FPUs {
				i++
				continue
			}
			fpUsed++
		case opFPDiv:
			if fpUsed >= c.cfg.FPUs || c.fpDivBusyUntil > c.cycle {
				i++
				continue
			}
			fpUsed++
			c.fpDivBusyUntil = c.cycle + c.cfg.latencyOf(opFPDiv)
		case opLoad:
			if loadUsed >= c.cfg.LoadPorts || c.loadBlocked(e) {
				i++
				continue
			}
			loadUsed++
		case opStore:
			if storeUsed >= c.cfg.StorePorts {
				i++
				continue
			}
			storeUsed++
		}

		c.readyQ = removeAt(c.readyQ, i)
		e.inReady = false
		e.issued = true
		e.issuedAt = c.cycle
		c.iqOcc--
		budget--
		if c.traceOn {
			c.emit(trace.KindIssue, e)
		}

		switch e.class {
		case opLoad:
			e.addrReadyAt = c.cycle + 1 // translation succeeds
			e.doneAt = c.loadDone(e)
		case opStore:
			e.addrReadyAt = c.cycle + 1
			e.doneAt = c.cycle + 1
		default:
			e.doneAt = c.cycle + c.cfg.latencyOf(e.class)
		}
		c.wheel.schedule(c.cycle, e)

		// Issue is the event that arms eligibility: memory ops translate the
		// cycle after issue (relaxed policies), and under Condition 1 every
		// retirement requires completion, whose doneAt <= cycle test can
		// first pass at the commit stage of the completion cycle — before
		// the completion event itself fires — so waiting for writeback
		// would be one cycle late.
		switch c.candMode {
		case candRelaxed:
			if e.isMem {
				c.candInsert(e)
			}
		case candCompletion:
			c.candInsert(e)
		}
	}
}

// loadBlocked reports whether an older in-flight store to the same address
// has not produced its data yet; the load must wait so it can forward.
func (c *Core) loadBlocked(e *Entry) bool {
	for _, st := range c.storeQueue {
		if st.Seq() >= e.Seq() || st.squashed {
			continue
		}
		if st.addr == e.addr && !st.issued {
			return true
		}
	}
	return false
}

// loadDone computes a load's data-available cycle: store-to-load forwarding
// from an older in-flight store to the same address, otherwise a cache
// access, with DCPT training on the demand stream.
func (c *Core) loadDone(e *Entry) int64 {
	for i := len(c.storeQueue) - 1; i >= 0; i-- {
		st := c.storeQueue[i]
		if st.Seq() >= e.Seq() || st.squashed {
			continue
		}
		if st.addr == e.addr {
			// Forward from the store queue once the store's data is ready.
			done := st.doneAt + 1
			if done < c.cycle+2 {
				done = c.cycle + 2
			}
			return done
		}
	}
	done := c.dcache.Access(e.addr, c.cycle+1)
	if c.traceOn && done > c.cycle+1+c.cfg.L1Lat {
		c.sink.Emit(trace.Event{
			Kind: trace.KindCacheMiss, Cycle: c.cycle, Seq: e.Seq(), Idx: e.idx,
			PC: e.pc, Addr: e.addr, Arg: done - c.cycle - 1,
		})
	}
	if c.dcpt != nil {
		for _, addr := range c.dcpt.Train(e.pc, e.addr) {
			c.dcache.Prefetch(addr, c.cycle+1)
		}
	}
	return done
}

// ---- dispatch ----

func (c *Core) stepDispatch() {
	for width := c.cfg.FetchWidth; width > 0 && c.ifq.len() > 0; width-- {
		e := c.ifq.front()
		if e.dispatchable > c.cycle {
			break
		}
		if c.robOcc >= c.cfg.ROBSize {
			c.stats.StallROB++
			break
		}
		if c.iqOcc >= c.cfg.IQSize {
			c.stats.StallIQ++
			break
		}
		if e.class == opLoad && c.lqOcc >= c.cfg.LQSize {
			c.stats.StallLQ++
			break
		}
		if e.class == opStore && c.sqOcc >= c.cfg.SQSize {
			c.stats.StallSQ++
			break
		}
		if e.hasDest && c.physUsed >= c.cfg.PhysRegs() {
			c.stats.StallRegs++
			break
		}

		c.ifq.popFront()
		e.dispatched = true
		e.dispatchOrder = c.nextDispatchOrder
		c.nextDispatchOrder++
		if c.traceOn {
			c.emit(trace.KindDispatch, e)
		}
		if c.san != nil {
			c.san.onDispatch(c, e)
		}
		c.robOcc++
		c.iqOcc++
		switch e.class {
		case opLoad:
			c.lqOcc++
		case opStore:
			c.sqOcc++
			c.storeQueue = append(c.storeQueue, e)
		}
		if e.hasDest {
			c.physUsed++
		}

		// Rename: link register producers.
		r1, r2 := e.rec.d.Inst.SourceRegs()
		c.linkProducer(e, r1)
		c.linkProducer(e, r2)
		if e.hasDest {
			c.regProducer[e.rd] = e
		}

		if e.isCondBranch {
			c.liveBranches = append(c.liveBranches, e)
			c.unresolvedBranches = append(c.unresolvedBranches, e)
			if c.needUnmarked && e.dep.BranchID == 0 {
				c.unmarkedUnresolved = append(c.unmarkedUnresolved, e)
			}
		}
		if e.dep.DepSeq >= 0 {
			c.stats.branchStall(e.dep.DepPC).Dependents++
		}

		c.robLink(e)
		if c.needBlockers && (e.isCondBranch || e.isJalr || e.isMem) {
			c.blockers.push(e)
		}
		if c.needTransMem && e.isMem {
			c.untransMem.push(e)
		}
		// Non-memory, non-control instructions are commit candidates from
		// dispatch under the relaxed policies (no completion condition).
		if c.candMode == candRelaxed && !e.isMem && !e.isCondBranch && !e.isJalr {
			c.candInsert(e)
		}
		if e.waits == 0 {
			c.readyInsert(e)
		}
		c.policy.dispatch(c, e)
	}
}

// linkProducer registers the dependence of e on the in-flight producer of
// register r, if one exists: e's waits counter goes up, and the producer's
// consumer list gains a wakeup edge. A producer that has already completed
// (or register X0) imposes no wait.
func (c *Core) linkProducer(e *Entry, r isa.Reg) {
	if r == isa.X0 {
		return
	}
	p := c.regProducer[r]
	if p != nil && !p.squashed && (!p.issued || p.doneAt > c.cycle) {
		e.producers = append(e.producers, entryRef{p, p.gen})
		p.consumers = append(p.consumers, entryRef{e, e.gen})
		e.waits++
	}
}

// ---- fetch ----

func (c *Core) stepFetch() {
	// Recycle entries drained earlier this cycle: nothing references them
	// any more (tagged references went stale at queue time), and fetch is
	// the only stage that allocates.
	for i, e := range c.dead {
		c.pool.put(e)
		c.dead[i] = nil
	}
	c.dead = c.dead[:0]

	if !c.win.ensure(c.cursor) {
		return
	}
	if c.fetchStalledUntil > c.cycle || c.fetchBlockedBy != nil {
		return
	}
	if c.ifq.len() >= 4*c.cfg.FetchWidth {
		return
	}

	slots := c.cfg.FetchWidth
	for c.pendingBubbles > 0 && slots > 0 {
		c.pendingBubbles--
		slots--
	}
	if slots == 0 {
		return
	}

	// Instruction-cache access for this fetch group.
	pcAddr := int64(c.win.rec(c.cursor).d.PC) * 4
	if done := c.icache.Access(pcAddr, c.cycle); done > c.cycle+c.cfg.L1Lat {
		c.fetchStalledUntil = done
		return
	}

	inWindow := len(c.pendingMisp) > 0
	if inWindow && c.windowFetched >= c.cfg.WindowFetchLimit {
		return
	}

	for slots > 0 && c.win.ensure(c.cursor) {
		idx := c.cursor
		r := c.win.rec(idx)

		if r.d.Inst.Op.IsSetup() {
			if !c.cfg.FreeSetup {
				slots--
				c.stats.FetchedSetup++
			}
			r.committed = true
			r.fetched = true
			c.advanceFrontiers()
			c.cursor++
			continue
		}
		if r.committed {
			// Re-fetch of an instruction already committed out-of-order:
			// CIT hit, dropped at decode (§4.3).
			slots--
			c.cursor++
			c.stats.CITDrops++
			continue
		}

		e := c.pool.get()
		op := r.d.Inst.Op
		e.idx = idx
		e.rec = r
		e.seq = r.d.Seq
		e.pc = r.d.PC
		e.addr = r.d.Addr
		e.rd = r.d.Inst.Rd
		e.taken = r.d.Taken
		e.dep = r.dep
		e.class = classOf(op)
		e.fetchedAt = c.cycle
		e.dispatchable = c.cycle + int64(c.cfg.FrontendDepth)
		e.isCondBranch = op.IsCondBranch()
		e.isJalr = op == isa.OpJalr
		e.isMem = op.IsMem()
		e.isFence = op.IsFence()
		e.hasDest = r.d.Inst.HasDest()
		e.windowInst = inWindow
		e.resident = -1
		r.fetched = true
		c.cursor++
		slots--
		if c.traceOn {
			c.emit(trace.KindFetch, e)
		}

		switch {
		case e.isCondBranch:
			if !r.predicted {
				pred := r.d.Taken // oracle predictor
				if c.pred != nil {
					pred = c.pred.Predict(r.d.PC)
					c.pred.Update(r.d.PC, r.d.Taken)
				}
				r.predicted = true
				r.predMisp = pred != r.d.Taken
			}
			e.mispredicted = r.predMisp && !r.recovered
		case r.d.Inst.Op == isa.OpJal:
			if r.d.Inst.Rd == isa.RA {
				c.ras.Push(r.d.PC + 1)
			}
		case e.isJalr:
			_, hit := c.ras.Pop(r.d.NextPC)
			e.mispredicted = !hit
		}

		switch e.class {
		case opLoad:
			c.stats.Loads++
		case opStore:
			c.stats.Stores++
		}

		c.ifq.push(e)

		if e.isCondBranch && e.mispredicted {
			e.resumeIdx = c.cursor
			c.pendingMisp = append(c.pendingMisp, e)
			if !c.openWindow(e) {
				c.fetchBlockedBy = e
			}
			return // redirect ends the fetch group
		}
		if e.isJalr && e.mispredicted {
			e.resumeIdx = c.cursor
			c.fetchBlockedBy = e
			return
		}
		if inWindow {
			c.windowFetched++
			if c.windowFetched >= c.cfg.WindowFetchLimit {
				return
			}
		}
		if e.taken {
			return // taken control transfer ends the fetch group
		}
	}
}

// openWindow redirects fetch past a mispredicted branch's dependent region
// to its reconvergence point, charging wrong-path fetch bubbles for the
// not-taken/taken alternate path. Returns false when no usable
// reconvergence information exists (fetch then blocks until resolve).
func (c *Core) openWindow(b *Entry) bool {
	if c.meta == nil {
		return false
	}
	bm := c.meta.Branches[b.pc]
	if bm == nil || bm.ReconvPC < 0 || !bm.Marked {
		return false
	}
	// The wrong path is the side the predictor chose: the branch actually
	// went d.Taken, so the predictor fetched the other side.
	wrongLen := bm.TakenLen
	if b.taken {
		wrongLen = bm.FallLen
	}
	const maxWrongPath = 64
	if wrongLen > maxWrongPath {
		return false
	}
	// Locate the reconvergence point in the upcoming stream; the scan pulls
	// at most 2048 instructions ahead into the window.
	limit := c.cursor + 2048
	for j := c.cursor; j < limit && c.win.ensure(j); j++ {
		if c.win.rec(j).d.PC == bm.ReconvPC {
			c.pendingBubbles += wrongLen
			c.windowFetched = 0
			c.cursor = j
			return true
		}
	}
	return false
}
