package pipeline

import (
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
)

// Dependence sentinels for DepInfo.DepSeq.
const (
	// DepNone marks an instruction independent of all live branches
	// (BranchID 0 in the paper).
	DepNone int64 = -1
	// DepOrdered marks an instruction whose setDependency referenced a
	// branch ID with no valid BIT entry (the branch has not executed yet,
	// e.g. a loop's first iteration). The hardware serialises such
	// instructions: they wait at the ROB′ head until all older branches
	// resolve, which keeps the single-BranchID encoding sound.
	DepOrdered int64 = -2
)

// DepInfo is the per-dynamic-instruction result of the hardware decode of
// setup instructions (Table 1's Branch Dependencies Flow, steps ❶–❷):
// which dynamic branch instance the instruction waits for, and the branch
// ID assigned to the instruction itself if it is a marked branch.
type DepInfo struct {
	// DepSeq is the trace sequence number of the governing branch
	// instance, or DepNone / DepOrdered.
	DepSeq int64
	// BranchID is the compiler-assigned ID when this instruction is a
	// marked conditional branch (setBranchId preceded it); 0 otherwise.
	BranchID int64
}

// ComputeDeps replays the Branch Dependencies Flow over a trace: it models
// the Branch ID Table (BIT, mapping compiler IDs to the sequence number of
// their most recent dynamic instance) and the single-entry Dependents
// Counter Table (DCT). The i-th returned element describes trace
// instruction i. Setup instructions themselves get DepNone.
//
// bitSize bounds the number of distinct live IDs exactly as the hardware
// table does; IDs simply index BIT[id mod bitSize], so an undersized table
// aliases entries just like the real structure would.
func ComputeDeps(tr *emulator.Trace, bitSize int) []DepInfo {
	if bitSize < 1 {
		bitSize = 8
	}
	out := make([]DepInfo, len(tr.Insts))

	type bitEntry struct {
		seq   int64
		valid bool
	}
	bit := make([]bitEntry, bitSize)
	var dct struct {
		depSeq  int64
		counter int64
	}
	dct.depSeq = DepNone

	pendingID := int64(0) // from a decoded setBranchId, applies to the next branch

	for i := range tr.Insts {
		d := &tr.Insts[i]
		switch d.Inst.Op {
		case isa.OpSetBranchID:
			pendingID = d.Inst.Imm
			out[i] = DepInfo{DepSeq: DepNone}
			continue
		case isa.OpSetDependency:
			id := d.Inst.Aux
			e := bit[int(id)%bitSize]
			if e.valid {
				dct.depSeq = e.seq
			} else {
				dct.depSeq = DepOrdered
			}
			dct.counter = d.Inst.Imm
			out[i] = DepInfo{DepSeq: DepNone}
			continue
		}

		// Any instruction entering ROB′ (step ❷).
		info := DepInfo{DepSeq: DepNone}
		if dct.counter > 0 {
			info.DepSeq = dct.depSeq
			dct.counter--
		}
		if d.Inst.Op.IsCondBranch() && pendingID > 0 {
			bit[int(pendingID)%bitSize] = bitEntry{seq: d.Seq, valid: true}
			info.BranchID = pendingID
		}
		pendingID = 0
		out[i] = info
	}
	return out
}
