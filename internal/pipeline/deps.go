package pipeline

import (
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
)

// Dependence sentinels for DepInfo.DepSeq.
const (
	// DepNone marks an instruction independent of all live branches
	// (BranchID 0 in the paper).
	DepNone int64 = -1
	// DepOrdered marks an instruction whose setDependency referenced a
	// branch ID with no valid BIT entry (the branch has not executed yet,
	// e.g. a loop's first iteration). The hardware serialises such
	// instructions: they wait at the ROB′ head until all older branches
	// resolve, which keeps the single-BranchID encoding sound.
	DepOrdered int64 = -2
)

// DepInfo is the per-dynamic-instruction result of the hardware decode of
// setup instructions (Table 1's Branch Dependencies Flow, steps ❶–❷):
// which dynamic branch instance the instruction waits for, and the branch
// ID assigned to the instruction itself if it is a marked branch.
type DepInfo struct {
	// DepSeq is the trace sequence number of the governing branch
	// instance, or DepNone / DepOrdered.
	DepSeq int64
	// DepPC is the static PC of the governing branch instance, valid only
	// when DepSeq >= 0 (criticality attribution does not need to look the
	// instance up in the trace again).
	DepPC int
	// BranchID is the compiler-assigned ID when this instruction is a
	// marked conditional branch (setBranchId preceded it); 0 otherwise.
	BranchID int64
}

// depTracker incrementally models the Branch Dependencies Flow over a
// dynamic instruction stream: the Branch ID Table (BIT, mapping compiler IDs
// to their most recent dynamic instance) and the single-entry Dependents
// Counter Table (DCT). Feeding it the stream in trace order yields, per
// instruction, the same DepInfo the materialized ComputeDeps produces — in
// O(BIT) state instead of O(trace).
type depTracker struct {
	bit       []depBITEntry
	dctDepSeq int64
	dctDepPC  int
	dctCount  int64
	pendingID int64 // from a decoded setBranchId, applies to the next branch
}

type depBITEntry struct {
	seq   int64
	pc    int
	valid bool
}

// newDepTracker sizes the BIT exactly as the hardware table does; IDs index
// BIT[id mod bitSize], so an undersized table aliases entries just like the
// real structure would.
func newDepTracker(bitSize int) *depTracker {
	if bitSize < 1 {
		bitSize = 8
	}
	return &depTracker{bit: make([]depBITEntry, bitSize), dctDepSeq: DepNone}
}

// next decodes one dynamic instruction and returns its DepInfo.
func (t *depTracker) next(d *emulator.DynInst) DepInfo {
	switch d.Inst.Op {
	case isa.OpSetBranchID:
		t.pendingID = d.Inst.Imm
		return DepInfo{DepSeq: DepNone}
	case isa.OpSetDependency:
		id := d.Inst.Aux
		e := t.bit[int(id)%len(t.bit)]
		if e.valid {
			t.dctDepSeq, t.dctDepPC = e.seq, e.pc
		} else {
			t.dctDepSeq, t.dctDepPC = DepOrdered, 0
		}
		t.dctCount = d.Inst.Imm
		return DepInfo{DepSeq: DepNone}
	}

	// Any instruction entering ROB′ (step ❷).
	info := DepInfo{DepSeq: DepNone}
	if t.dctCount > 0 {
		info.DepSeq, info.DepPC = t.dctDepSeq, t.dctDepPC
		t.dctCount--
	}
	if d.Inst.Op.IsCondBranch() && t.pendingID > 0 {
		t.bit[int(t.pendingID)%len(t.bit)] = depBITEntry{seq: d.Seq, pc: d.PC, valid: true}
		info.BranchID = t.pendingID
	}
	t.pendingID = 0
	return info
}

// ComputeDeps replays the Branch Dependencies Flow over a materialized
// trace; the i-th returned element describes trace instruction i. Setup
// instructions themselves get DepNone. The sliding-window core computes the
// same information incrementally via depTracker; this form remains for tests
// and offline analysis.
func ComputeDeps(tr *emulator.Trace, bitSize int) []DepInfo {
	t := newDepTracker(bitSize)
	out := make([]DepInfo, len(tr.Insts))
	for i := range tr.Insts {
		out[i] = t.next(&tr.Insts[i])
	}
	return out
}
