package pipeline

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// TestCQTPressure: shrinking the Commit Queue Table forces steer stalls
// when many marked branches are live simultaneously.
func TestCQTPressure(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(400), true)
	small := testConfig(Noreba)
	small.Selective.CQTSize = 1
	big := testConfig(Noreba)
	big.Selective.CQTSize = 16
	stSmall := runPolicy(t, small, tr, meta)
	stBig := runPolicy(t, big, tr, meta)
	if stSmall.Cycles < stBig.Cycles {
		t.Errorf("1-entry CQT (%d cycles) outperformed 16-entry (%d)", stSmall.Cycles, stBig.Cycles)
	}
	if stSmall.CQTFullStalls == 0 {
		t.Error("1-entry CQT produced no full stalls on a branch-heavy kernel")
	}
}

// TestBITAliasing: with a tiny BIT, distinct compiler IDs alias onto the
// same entry; the dependence decode must still be self-consistent (runs
// complete, commits conserve) even though performance may degrade.
func TestBITAliasing(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(300), true)
	cfg := testConfig(Noreba)
	cfg.Selective.BITSize = 1
	st := runPolicy(t, cfg, tr, meta) // runPolicy asserts conservation
	if st.Cycles <= 0 {
		t.Fatal("bad cycle count")
	}
}

// lqBoundKernel issues many independent missing loads per iteration so the
// 72-entry load queue, not the ROB, is the binding resource — the shape
// where §6.1.5's ECL pays.
func lqBoundKernel(iters int) *program.Program {
	b := program.NewBuilder("lqbound")
	b.Label("entry").
		Li(isa.S0, 1<<22).
		Li(isa.S2, 0).
		Li(isa.A0, int64(iters))
	b.Label("loop")
	// 8 independent missing loads per iteration, few other instructions.
	for i := 0; i < 8; i++ {
		b.Add(isa.T0, isa.S0, isa.S2)
		b.Lw([]isa.Reg{isa.T1, isa.T2, isa.T3, isa.T5, isa.T6, isa.A2, isa.A3, isa.A4}[i], isa.T0, int64(i)*8192)
		b.Addi(isa.S2, isa.S2, 65536)
	}
	b.Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "loop")
	b.Label("done").Halt()
	return b.MustBuild()
}

func TestECLHelpsWhenLQBinds(t *testing.T) {
	tr, meta := buildTrace(t, lqBoundKernel(400), true)
	base := testConfig(Noreba)
	ecl := testConfig(Noreba)
	ecl.ECL = true
	stBase := runPolicy(t, base, tr, meta)
	stECL := runPolicy(t, ecl, tr, meta)
	if stBase.StallLQ == 0 {
		t.Skip("kernel did not bind on the LQ on this configuration")
	}
	if stECL.Cycles > stBase.Cycles {
		t.Errorf("ECL (%d cycles) slower than base NOREBA (%d) on an LQ-bound kernel",
			stECL.Cycles, stBase.Cycles)
	}
}

// TestPipeTraceRecords: the pipe-trace recorder captures ordered, sane
// stage timestamps.
func TestPipeTraceRecords(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(50), true)
	cfg := testConfig(Noreba)
	cfg.PipeTraceLimit = 100
	st := runPolicy(t, cfg, tr, meta)
	if len(st.PipeTrace) != 100 {
		t.Fatalf("recorded %d records, want 100", len(st.PipeTrace))
	}
	for _, r := range st.PipeTrace {
		if r.Committed < r.Fetched {
			t.Errorf("idx %d committed at %d before fetch at %d", r.Idx, r.Committed, r.Fetched)
		}
		if r.Issued > 0 && r.Issued < r.Fetched {
			t.Errorf("idx %d issued before fetch", r.Idx)
		}
		if r.Asm == "" {
			t.Errorf("idx %d has empty disassembly", r.Idx)
		}
	}
	// Limit respected.
	cfg.PipeTraceLimit = 7
	st = runPolicy(t, cfg, tr, meta)
	if len(st.PipeTrace) != 7 {
		t.Errorf("limit 7 produced %d records", len(st.PipeTrace))
	}
}

// TestBimodalWorseThanTAGE: the weaker predictor must cost cycles on a
// pattern-heavy kernel, whichever commit policy runs.
func TestBimodalWorseThanTAGE(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(600), true)
	for _, pk := range []PolicyKind{InOrder, Noreba} {
		tage := testConfig(pk)
		bim := testConfig(pk)
		bim.Predictor = PredBimodal
		stT := runPolicy(t, tage, tr, meta)
		stB := runPolicy(t, bim, tr, meta)
		if stB.Mispredicts < stT.Mispredicts {
			t.Errorf("%v: bimodal mispredicted less (%d) than TAGE (%d)", pk, stB.Mispredicts, stT.Mispredicts)
		}
	}
}

// TestCITDisabledSerialisation: a 0... minimal CIT (size 1) still runs to
// completion; OoO commits throttle to the reclamation rate.
func TestCITMinimal(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(300), true)
	cfg := testConfig(Noreba)
	cfg.Selective.CITSize = 1
	st := runPolicy(t, cfg, tr, meta)
	if st.CITPeak > 1 {
		t.Errorf("CIT peak %d exceeds capacity 1", st.CITPeak)
	}
	full := testConfig(Noreba)
	stFull := runPolicy(t, full, tr, meta)
	if st.Cycles < stFull.Cycles {
		t.Errorf("1-entry CIT (%d cycles) outperformed 128-entry (%d)", st.Cycles, stFull.Cycles)
	}
}

// TestStoreToLoadForwarding: a load from a just-stored address must not pay
// memory latency.
func TestStoreToLoadForwarding(t *testing.T) {
	b := program.NewBuilder("fwd")
	b.Label("entry").
		Li(isa.S0, 1<<22).
		Li(isa.A0, 200)
	b.Label("loop").
		Addi(isa.T0, isa.T0, 3).
		Sw(isa.T0, isa.S0, 0).
		Lw(isa.T1, isa.S0, 0). // forwarded
		Add(isa.A2, isa.A2, isa.T1).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "loop")
	b.Label("done").Halt()
	tr, meta := buildTrace(t, b.MustBuild(), true)
	st := runPolicy(t, testConfig(InOrder), tr, meta)
	// With forwarding, the whole run must be far faster than paying even
	// L2 latency per load.
	perIter := float64(st.Cycles) / 200
	if perIter > 30 {
		t.Errorf("%.1f cycles/iteration; store-to-load forwarding not effective", perIter)
	}
}

// TestJalrReturnPrediction: call/return pairs predicted by the RAS must not
// inflate jalr mispredictions.
func TestJalrReturnPrediction(t *testing.T) {
	p := program.MustAssemble("calls", `
entry:
	li a0, 300
loop:
	jal ra, fn
after:
	addi a0, a0, -1
	bnez a0, loop
done:
	halt
fn:
	addi a2, a2, 1
	ret
`)
	tr, meta := buildTrace(t, p, true)
	st := runPolicy(t, testConfig(InOrder), tr, meta)
	if st.JalrMispredicts > 2 {
		t.Errorf("RAS missed %d returns out of 300", st.JalrMispredicts)
	}
}
