package pipeline

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// buildTrace compiles (optionally) and runs a program, returning the trace
// and branch metadata.
func buildTrace(t *testing.T, p *program.Program, compile bool) (*emulator.Trace, *compiler.Meta) {
	t.Helper()
	var img *program.Image
	var meta *compiler.Meta
	if compile {
		res, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		img, meta = res.Image, res.Meta
	} else {
		var err error
		img, err = p.Layout()
		if err != nil {
			t.Fatal(err)
		}
	}
	tr, err := emulator.New(img).Run(4 << 20)
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}
	return tr, meta
}

func runPolicy(t *testing.T, cfg Config, tr *emulator.Trace, meta *compiler.Meta) *Stats {
	t.Helper()
	st, err := NewCore(cfg, tr, meta).Run()
	if err != nil {
		t.Fatalf("%s: %v", cfg.Policy, err)
	}
	// Conservation: every non-setup dynamic instruction commits exactly
	// once.
	want := int64(tr.Len()) - tr.Setup
	if st.Committed != want {
		t.Fatalf("%s: committed %d, want %d", cfg.Policy, st.Committed, want)
	}
	return st
}

// mlpKernel builds the paper's performance mechanism in miniature: strided
// loads that miss the cache, a hard-to-predict branch on each loaded value,
// a small dependent region, and an independent tail. In-order commit stalls
// at the unresolved branch; NOREBA commits the tail and later iterations'
// work out of order, freeing the window for more memory-level parallelism.
func mlpKernel(iters int) *program.Program {
	b := program.NewBuilder("mlp")
	b.Label("entry").
		Li(isa.S0, 1<<20). // array base
		Li(isa.S2, 0).     // offset
		Li(isa.A0, int64(iters))
	b.Label("loop").
		Add(isa.T0, isa.S0, isa.S2).
		Lw(isa.T1, isa.T0, 0).
		Andi(isa.T2, isa.T1, 1).
		Bnez(isa.T2, "skip")
	b.Label("then").
		Addi(isa.A2, isa.A2, 1)
	b.Label("skip")
	// A fat independent tail (the mcf shape of Figure 7: branches with few
	// dependents but much independent work behind them in the ROB).
	tail := []isa.Reg{isa.A3, isa.A4, isa.A5, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7, isa.S8, isa.S9, isa.S10, isa.S11}
	for round := 0; round < 3; round++ {
		for _, r := range tail {
			b.Addi(r, r, int64(round+1))
		}
	}
	b.Addi(isa.S2, isa.S2, 8192). // 8KB stride: misses every level
					Addi(isa.A0, isa.A0, -1).
					Bnez(isa.A0, "loop")
	b.Label("done").Halt()
	p := b.MustBuild()
	// Make the loaded parity look random so the inner branch mispredicts.
	for i := 0; i < iters; i++ {
		addr := int64(1<<20) + int64(i)*8192
		p.Data[addr] = int64((i*2654435761 + 12345) >> 7)
	}
	return p
}

func testConfig(policy PolicyKind) Config {
	cfg := SkylakeConfig()
	cfg.Policy = policy
	cfg.PrefetchEnabled = false // keep the load misses visible
	return cfg
}

func TestPolicyOrderingOnMLPKernel(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(800), true)

	cycles := map[PolicyKind]int64{}
	for _, pk := range []PolicyKind{InOrder, NonSpecOoO, Noreba, IdealReconv, SpecBR, Spec} {
		st := runPolicy(t, testConfig(pk), tr, meta)
		cycles[pk] = st.Cycles
		if st.Cycles <= 0 {
			t.Fatalf("%v: nonpositive cycles", pk)
		}
	}

	if cycles[Noreba] >= cycles[InOrder] {
		t.Errorf("NOREBA (%d cycles) must beat in-order commit (%d cycles)", cycles[Noreba], cycles[InOrder])
	}
	if float64(cycles[InOrder]) < 1.2*float64(cycles[Noreba]) {
		t.Errorf("expected >=1.2x speedup on MLP kernel: InO %d vs NOREBA %d", cycles[InOrder], cycles[Noreba])
	}
	if cycles[SpecBR] > cycles[Noreba] {
		t.Errorf("SpeculativeBR oracle (%d) must be at least as fast as NOREBA (%d)", cycles[SpecBR], cycles[Noreba])
	}
	if cycles[IdealReconv] > cycles[Noreba] {
		t.Errorf("ideal reconvergence (%d) must be at least as fast as NOREBA (%d)", cycles[IdealReconv], cycles[Noreba])
	}
	if cycles[Spec] > cycles[SpecBR] {
		t.Errorf("full speculative oracle (%d) must be at least as fast as SpecBR (%d)", cycles[Spec], cycles[SpecBR])
	}
}

func TestNorebaCommitsOutOfOrder(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(400), true)
	st := runPolicy(t, testConfig(Noreba), tr, meta)
	if st.OoOCommitted == 0 {
		t.Error("NOREBA committed nothing out of order on the MLP kernel")
	}
	if st.Steered < st.Committed {
		t.Errorf("steered %d < committed %d: every commit must pass through a queue", st.Steered, st.Committed)
	}
	inO := runPolicy(t, testConfig(InOrder), tr, meta)
	if inO.OoOCommitted != 0 {
		t.Errorf("in-order commit reported %d OoO commits", inO.OoOCommitted)
	}
}

func TestStraightLineSameEverywhere(t *testing.T) {
	b := program.NewBuilder("straight")
	b.Label("entry")
	for i := 0; i < 200; i++ {
		b.Addi(isa.A0, isa.A0, 1)
	}
	b.Halt()
	tr, meta := buildTrace(t, b.MustBuild(), true)

	var first int64 = -1
	for _, pk := range []PolicyKind{InOrder, NonSpecOoO, Noreba, IdealReconv, SpecBR, Spec} {
		st := runPolicy(t, testConfig(pk), tr, meta)
		if first < 0 {
			first = st.Cycles
		}
		// Relaxed-Condition-1 policies may retire the tail a few cycles
		// before it completes; beyond that, straight-line code must be
		// policy independent.
		diff := st.Cycles - first
		if diff < 0 {
			diff = -diff
		}
		if diff > 10 {
			t.Errorf("%v: %d cycles, first policy %d — straight-line code must be (nearly) policy-independent", pk, st.Cycles, first)
		}
	}
}

func TestUnannotatedProgramRunsInOrderUnderNoreba(t *testing.T) {
	// A program without compiler annotations: NOREBA degenerates safely
	// (unmarked branches serialise) and still completes.
	tr, _ := buildTrace(t, mlpKernel(200), false)
	st := runPolicy(t, testConfig(Noreba), tr, nil)
	if st.OoOCommitted != 0 {
		t.Errorf("unannotated program committed %d instructions OoO", st.OoOCommitted)
	}
}

func TestMispredictRecoveryAndCIT(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(600), true)
	st := runPolicy(t, testConfig(Noreba), tr, meta)
	if st.Mispredicts == 0 {
		t.Fatal("kernel designed to mispredict produced no mispredictions")
	}
	if st.CITAllocs == 0 {
		t.Error("no CIT allocations despite OoO commits")
	}
	if st.CITDrops == 0 {
		t.Error("no CIT drops despite mispredictions with OoO-committed window instructions")
	}
	if st.CITPeak > int64(DefaultSelectiveROB().CITSize) {
		t.Errorf("CIT peak %d exceeds capacity %d", st.CITPeak, DefaultSelectiveROB().CITSize)
	}
}

func TestECLHelpsLoads(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(600), true)
	base := runPolicy(t, testConfig(Noreba), tr, meta)
	ecl := testConfig(Noreba)
	ecl.ECL = true
	withECL := runPolicy(t, ecl, tr, meta)
	if float64(withECL.Cycles) > 1.02*float64(base.Cycles) {
		t.Errorf("ECL slowed NOREBA down: %d vs %d cycles", withECL.Cycles, base.Cycles)
	}
}

func TestFreeSetupAtLeastAsFast(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(400), true)
	base := runPolicy(t, testConfig(Noreba), tr, meta)
	free := testConfig(Noreba)
	free.FreeSetup = true
	st := runPolicy(t, free, tr, meta)
	if st.FetchedSetup != 0 {
		t.Errorf("FreeSetup still fetched %d setup instructions", st.FetchedSetup)
	}
	if float64(st.Cycles) > 1.02*float64(base.Cycles) {
		t.Errorf("free setup slower than fetched setup: %d vs %d", st.Cycles, base.Cycles)
	}
	if base.FetchedSetup == 0 {
		t.Error("baseline fetched no setup instructions")
	}
}

func TestBiggerCommitQueuesDontHurt(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(400), true)
	small := testConfig(Noreba)
	small.Selective.BRCQSize = 2
	big := testConfig(Noreba)
	big.Selective.BRCQSize = 32
	stSmall := runPolicy(t, small, tr, meta)
	stBig := runPolicy(t, big, tr, meta)
	if float64(stBig.Cycles) > 1.02*float64(stSmall.Cycles) {
		t.Errorf("32-entry BR-CQs (%d cycles) slower than 2-entry (%d cycles)", stBig.Cycles, stSmall.Cycles)
	}
}

func TestLargerCoreIsFaster(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(600), true)
	for _, pk := range []PolicyKind{InOrder, Noreba} {
		nhm := NehalemConfig()
		nhm.Policy = pk
		nhm.PrefetchEnabled = false
		skl := testConfig(pk)
		stNHM := runPolicy(t, nhm, tr, meta)
		stSKL := runPolicy(t, skl, tr, meta)
		if stSKL.Cycles > stNHM.Cycles {
			t.Errorf("%v: SKL (%d cycles) slower than NHM (%d cycles)", pk, stSKL.Cycles, stNHM.Cycles)
		}
	}
}

func TestBranchStallAttribution(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(300), true)
	st := runPolicy(t, testConfig(InOrder), tr, meta)
	if len(st.BranchStalls) == 0 {
		t.Fatal("no branch stall records")
	}
	var total int64
	for _, bs := range st.BranchStalls {
		total += bs.StallCycles
	}
	if total == 0 {
		t.Error("in-order commit on a missing-load kernel must accumulate branch stalls")
	}
}

func TestComputeDeps(t *testing.T) {
	p := program.MustAssemble("deps", `
entry:
	li a0, 2
loop:
	setDependency 3 1
	addi a1, a1, 1
	addi a0, a0, -1
	setBranchId 1
	bnez a0, loop
done:
	halt
`)
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emulator.New(img).Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	deps := ComputeDeps(tr, 8)

	// Find the branch instances and body instructions.
	var branchSeqs []int64
	for i, d := range tr.Insts {
		if d.Inst.Op.IsCondBranch() {
			if deps[i].BranchID != 1 {
				t.Errorf("branch at trace %d has ID %d, want 1", i, deps[i].BranchID)
			}
			branchSeqs = append(branchSeqs, d.Seq)
		}
	}
	if len(branchSeqs) != 2 {
		t.Fatalf("expected 2 loop branch instances, got %d", len(branchSeqs))
	}
	// First iteration body: BIT invalid → DepOrdered.
	firstBody := -1
	for i, d := range tr.Insts {
		if d.Inst.Op == isa.OpAddi && d.Inst.Rd == isa.A1 {
			firstBody = i
			break
		}
	}
	if deps[firstBody].DepSeq != DepOrdered {
		t.Errorf("first-iteration body DepSeq = %d, want DepOrdered", deps[firstBody].DepSeq)
	}
	// Second iteration body must reference the first branch instance.
	secondBody := -1
	for i := firstBody + 1; i < len(tr.Insts); i++ {
		d := tr.Insts[i]
		if d.Inst.Op == isa.OpAddi && d.Inst.Rd == isa.A1 {
			secondBody = i
			break
		}
	}
	if deps[secondBody].DepSeq != branchSeqs[0] {
		t.Errorf("second-iteration body DepSeq = %d, want %d (previous branch instance)",
			deps[secondBody].DepSeq, branchSeqs[0])
	}
	// The branch itself is inside the region: it also depends on the
	// previous instance.
	var branchIdx []int
	for i, d := range tr.Insts {
		if d.Inst.Op.IsCondBranch() {
			branchIdx = append(branchIdx, i)
		}
	}
	if deps[branchIdx[1]].DepSeq != branchSeqs[0] {
		t.Errorf("second branch instance DepSeq = %d, want %d", deps[branchIdx[1]].DepSeq, branchSeqs[0])
	}
	// Setup instructions carry no dependence.
	for i, d := range tr.Insts {
		if d.Inst.Op.IsSetup() && deps[i].DepSeq != DepNone {
			t.Errorf("setup instruction at %d has DepSeq %d", i, deps[i].DepSeq)
		}
	}
}

func TestOracleFrontendNoMispredicts(t *testing.T) {
	tr, meta := buildTrace(t, mlpKernel(300), true)
	cfg := testConfig(Noreba)
	cfg.Predictor = PredOracle
	st := runPolicy(t, cfg, tr, meta)
	if st.Mispredicts != 0 {
		t.Errorf("oracle predictor produced %d mispredictions", st.Mispredicts)
	}
}

func TestPrefetchingHelpsStridedKernel(t *testing.T) {
	// The MLP kernel strides by 8KB; DCPT should learn the constant delta
	// and hide much of the miss latency.
	tr, meta := buildTrace(t, mlpKernel(600), true)
	noPf := testConfig(InOrder)
	pf := testConfig(InOrder)
	pf.PrefetchEnabled = true
	stNo := runPolicy(t, noPf, tr, meta)
	stPf := runPolicy(t, pf, tr, meta)
	if stPf.Cycles >= stNo.Cycles {
		t.Errorf("prefetching did not help: %d vs %d cycles", stPf.Cycles, stNo.Cycles)
	}
	if stPf.PrefetchIssued == 0 {
		t.Error("no prefetches issued")
	}
}
