package pipeline

// This file holds the event-driven scheduler's support structures: the
// completion wheel, generation-tagged entry references, the pooled entry
// allocator, and the small ordered containers (ready queue, commit-candidate
// queue, blocker deques) that replace the per-cycle O(ROB) scans the core
// and the commit policies used to perform.
//
// Reference safety: entries are pooled and recycled the moment they drain
// from the pipeline, so any container that can hold a reference across an
// entry's recycling stores an entryRef — the pointer plus the generation the
// entry had when the reference was taken. A reference whose generation no
// longer matches is stale: the instruction it referred to left the pipeline
// (committed and completed, or was squashed and reclaimed), which in every
// use site below means "no longer relevant — skip". Containers that are
// eagerly purged before recycling (the ROB list, the ready and candidate
// queues, the branch lists) hold plain pointers.

// entryRef is a generation-tagged entry reference.
type entryRef struct {
	e   *Entry
	gen uint32
}

// live reports whether the reference still names the instruction it was
// taken for.
func (r entryRef) live() bool { return r.e.gen == r.gen }

// ---- entry pool ----

// entryPool recycles Entry objects so the steady-state cycle allocates
// nothing. Recycling bumps the entry's generation, invalidating every
// outstanding entryRef to its former life; per-entry slices keep their
// capacity across lives.
type entryPool struct {
	free []*Entry
}

func (p *entryPool) get() *Entry {
	n := len(p.free)
	if n == 0 {
		return &Entry{}
	}
	e := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return e
}

// put recycles e. The caller guarantees no plain-pointer container still
// holds it; tagged references are invalidated by the generation bump.
func (p *entryPool) put(e *Entry) {
	e.gen++
	e.reset()
	p.free = append(p.free, e)
}

// ---- completion wheel ----

// complWheel buckets in-flight completions by cycle modulo a power-of-two
// horizon, replacing the map the core used to key completion events with.
// The horizon is sized past the longest possible issue-to-complete latency
// (a full-miss memory access plus slack), so two live events can never
// share a bucket; if a configuration exceeds it anyway the wheel re-hashes
// into a doubled horizon. Bucket slices are reused, so the steady state
// schedules and fires events without allocating.
type complWheel struct {
	buckets [][]entryRef
	mask    int64
}

func newComplWheel(horizon int64) complWheel {
	size := int64(64)
	for size < horizon {
		size <<= 1
	}
	return complWheel{buckets: make([][]entryRef, size), mask: size - 1}
}

// schedule records that e completes at cycle at (= e.doneAt), seen from now.
func (w *complWheel) schedule(now int64, e *Entry) {
	if e.doneAt-now >= int64(len(w.buckets)) {
		w.grow(now, e.doneAt)
	}
	i := e.doneAt & w.mask
	w.buckets[i] = append(w.buckets[i], entryRef{e, e.gen})
}

// take returns the bucket for cycle and leaves it empty (capacity kept).
// References must be generation-checked by the caller: squashed-and-recycled
// entries leave their event behind.
func (w *complWheel) take(cycle int64) []entryRef {
	i := cycle & w.mask
	b := w.buckets[i]
	w.buckets[i] = b[:0]
	return b
}

// grow re-hashes every pending event into a wheel at least until cycles
// past now. Stale references are dropped in passing.
func (w *complWheel) grow(now, until int64) {
	size := int64(len(w.buckets))
	for size <= until-now {
		size <<= 1
	}
	fresh := make([][]entryRef, size)
	for _, b := range w.buckets {
		for _, ref := range b {
			if !ref.live() {
				continue
			}
			i := ref.e.doneAt & (size - 1)
			fresh[i] = append(fresh[i], ref)
		}
	}
	w.buckets, w.mask = fresh, size-1
}

// ---- ordered entry queues ----

// insertByDispatch inserts e into q, which is kept sorted by dispatch order
// (the order the old code scanned the ROB slice in). Entries inserted at
// dispatch time append in O(1); event-driven insertions (wakeup, completion,
// resolution) binary-search their slot.
func insertByDispatch(q []*Entry, e *Entry) []*Entry {
	n := len(q)
	if n == 0 || q[n-1].dispatchOrder < e.dispatchOrder {
		return append(q, e)
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid].dispatchOrder < e.dispatchOrder {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, nil)
	copy(q[lo+1:], q[lo:])
	q[lo] = e
	return q
}

// removeAt removes index i from q preserving order.
func removeAt(q []*Entry, i int) []*Entry {
	copy(q[i:], q[i+1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// removeBySeq removes the entry with sequence number seq from a seq-sorted
// queue, if present.
func removeBySeq(q []*Entry, seq int64) []*Entry {
	if i := searchSeq(q, seq); i < len(q) && q[i].Seq() == seq {
		return removeAt(q, i)
	}
	return q
}

// searchSeq returns the first index whose entry has Seq() >= seq.
func searchSeq(q []*Entry, seq int64) int {
	lo, hi := 0, len(q)
	for lo < hi {
		mid := (lo + hi) / 2
		if q[mid].Seq() < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// truncateYounger drops every entry with Seq() > seq from a seq-sorted
// queue (the squash pattern: everything younger than the recovering branch).
func truncateYounger(q []*Entry, seq int64) []*Entry {
	i := searchSeq(q, seq+1)
	for j := i; j < len(q); j++ {
		q[j] = nil
	}
	return q[:i]
}

// purgeSquashed removes squashed entries from q in place, preserving order.
func purgeSquashed(q []*Entry) []*Entry {
	keep := q[:0]
	for _, e := range q {
		if !e.squashed {
			keep = append(keep, e)
		}
	}
	for j := len(keep); j < len(q); j++ {
		q[j] = nil
	}
	return keep
}

// ---- blocker deque ----

// refDeque is a FIFO of generation-tagged references in dispatch order. The
// boundary trackers push every potentially-blocking instruction at dispatch
// and lazily pop the front once it can no longer block; because "stopped
// blocking" is monotone (a resolved branch stays resolved, a translated
// access stays translated, a drained or squashed entry never returns), the
// front is always the oldest still-blocking instruction.
type refDeque struct {
	buf     []entryRef
	head, n int
}

func (d *refDeque) push(e *Entry) {
	if d.head+d.n == len(d.buf) {
		if d.head > d.n {
			copy(d.buf, d.buf[d.head:d.head+d.n])
			for i := d.n; i < d.head+d.n; i++ {
				d.buf[i] = entryRef{}
			}
			d.head = 0
		} else {
			d.buf = append(d.buf[:d.head+d.n], entryRef{})
			d.buf = d.buf[:cap(d.buf)]
		}
	}
	d.buf[d.head+d.n] = entryRef{e, e.gen}
	d.n++
}

func (d *refDeque) front() (entryRef, bool) {
	if d.n == 0 {
		return entryRef{}, false
	}
	return d.buf[d.head], true
}

func (d *refDeque) popFront() {
	d.buf[d.head] = entryRef{}
	d.head++
	d.n--
	if d.n == 0 {
		d.head = 0
	}
}

// purgeSquashed drops squashed and stale references anywhere in the deque
// (recovery may squash mid-deque entries).
func (d *refDeque) purgeSquashed() {
	w := d.head
	for i := 0; i < d.n; i++ {
		ref := d.buf[d.head+i]
		if ref.live() && !ref.e.squashed {
			d.buf[w] = ref
			w++
		}
	}
	for i := w; i < d.head+d.n; i++ {
		d.buf[i] = entryRef{}
	}
	d.n = w - d.head
	if d.n == 0 {
		d.head = 0
	}
}

// ---- entry deque ----

// entryDeque is a FIFO of plain entry pointers (for containers that are
// eagerly purged before any member can be recycled): the fetch queue and
// the Selective ROB's unsteered-entry queue.
type entryDeque struct {
	buf     []*Entry
	head, n int
}

func (d *entryDeque) push(e *Entry) {
	if d.head+d.n == len(d.buf) {
		if d.head > d.n {
			copy(d.buf, d.buf[d.head:d.head+d.n])
			for i := d.n; i < d.head+d.n; i++ {
				d.buf[i] = nil
			}
			d.head = 0
		} else {
			d.buf = append(d.buf[:d.head+d.n], nil)
			d.buf = d.buf[:cap(d.buf)]
		}
	}
	d.buf[d.head+d.n] = e
	d.n++
}

func (d *entryDeque) front() *Entry {
	if d.n == 0 {
		return nil
	}
	return d.buf[d.head]
}

func (d *entryDeque) at(i int) *Entry { return d.buf[d.head+i] }

func (d *entryDeque) len() int { return d.n }

func (d *entryDeque) popFront() *Entry {
	e := d.buf[d.head]
	d.buf[d.head] = nil
	d.head++
	d.n--
	if d.n == 0 {
		d.head = 0
	}
	return e
}

func (d *entryDeque) purgeSquashed() {
	w := d.head
	for i := 0; i < d.n; i++ {
		e := d.buf[d.head+i]
		if !e.squashed {
			d.buf[w] = e
			w++
		}
	}
	for i := w; i < d.head+d.n; i++ {
		d.buf[i] = nil
	}
	d.n = w - d.head
	if d.n == 0 {
		d.head = 0
	}
}
