package pipeline

import (
	"github.com/noreba-sim/noreba/internal/isa"
)

// opClass buckets ops by functional unit.
type opClass uint8

const (
	opIntALU opClass = iota
	opIntMul
	opIntDiv
	opFPALU
	opFPDiv
	opLoad
	opStore
	opBranch
	opOther
)

func classOf(op isa.Op) opClass {
	switch op.Class() {
	case isa.ClassIntALU:
		return opIntALU
	case isa.ClassIntMul:
		return opIntMul
	case isa.ClassIntDiv:
		return opIntDiv
	case isa.ClassFPALU:
		return opFPALU
	case isa.ClassFPDiv:
		return opFPDiv
	case isa.ClassLoad:
		return opLoad
	case isa.ClassStore:
		return opStore
	case isa.ClassBranch, isa.ClassJump:
		return opBranch
	default:
		return opOther
	}
}

// Entry is one in-flight dynamic instruction in the pipeline. Entries are
// pooled: when an instruction drains (committed and completed, or squashed
// and reclaimed) its Entry is recycled for a later instruction, with gen
// bumped so generation-tagged references to the former life read as stale.
type Entry struct {
	idx int // trace index
	// rec points at the instruction's window arena slot. Arena slots are
	// stable while resident, so the pointer is valid from fetch until the
	// record is released — which can happen as soon as the instruction
	// commits and the fetch cursor passes it. A committed-but-incomplete
	// entry (relaxed Condition 1) outlives its record: everything the
	// post-commit paths read is cached in the scalars below at fetch, and
	// rec must not be dereferenced once committed is set.
	rec *instRecord
	// Scalars cached out of the record at fetch: the post-commit and
	// sanitizer paths (drain, resident cutoffs, diagnostics) stay valid
	// after the record is released, and the hot loops touch one small Entry
	// field instead of chasing rec.
	seq   int64
	pc    int
	addr  int64
	rd    isa.Reg
	taken bool
	dep   DepInfo
	class opClass

	gen uint32 // pool generation; bumped on recycle

	fetchedAt    int64
	dispatchable int64 // earliest dispatch cycle (front-end depth)
	dispatched   bool
	issued       bool
	issuedAt     int64
	done         bool
	doneAt       int64

	// dispatchOrder numbers entries in the order they entered the ROB — the
	// order the old code scanned the ROB slice in. The event-driven ready and
	// commit-candidate queues sort by it to reproduce scan order exactly.
	// Unlike Seq it never repeats, even across squash/refetch.
	dispatchOrder int64

	// Branch state.
	isCondBranch bool
	isJalr       bool
	mispredicted bool
	resolved     bool
	resolvedAt   int64
	resumeIdx    int // refetch point after recovery

	// Memory state. A memory op "resolves" when its translation succeeds
	// (addrReadyAt); data arrives at doneAt.
	isMem       bool
	isFence     bool
	addrReadyAt int64

	// Register dependence. producers are the in-flight entries this one
	// waited on at rename (kept for the sanitizer's from-scratch readiness
	// re-derivation); consumers are the dispatched entries waiting on this
	// one's result, woken at writeback. waits counts producers that have
	// neither completed nor been squashed: the entry is issue-ready when it
	// reaches zero. Both edge lists are generation-tagged because either
	// side may drain and be recycled while the other is still in flight.
	producers []entryRef
	consumers []entryRef
	waits     int32
	hasDest   bool

	// Scheduler membership flags (see core.go).
	inReady bool
	inCand  bool

	// resident is this entry's index in the core's committed-residents list
	// while it is committed but not yet completed, -1 otherwise.
	resident int

	// Commit state.
	committed   bool
	committedAt int64
	oooCommit   bool // committed while not the oldest uncommitted entry
	squashed    bool

	// lqHeld marks a load that committed before its data returned (relaxed
	// Condition 1): its load-queue entry stays allocated until completion.
	lqHeld bool

	// Intrusive ROB links: the ROB is a doubly-linked list in dispatch order
	// so removal is O(1) and commit walks start at the head.
	robPrev, robNext *Entry
	inROB            bool

	// Noreba state.
	steered    bool // left ROB′ into a commit queue
	queue      int  // queue index once steered (0 = PR-CQ, 1.. = BR-CQs)
	windowInst bool // fetched during a misprediction window (beyond reconvergence)
	cqtCounted bool // counted in the policy's live-CQT tally (unresolved in CQT)
}

// Seq returns the entry's dynamic sequence number.
func (e *Entry) Seq() int64 { return e.seq }

// reset clears per-life state for pool reuse, keeping gen and the edge-list
// capacities.
func (e *Entry) reset() {
	producers, consumers := e.producers[:0], e.consumers[:0]
	gen := e.gen
	// Zero then restore the kept fields: assigning a composite literal with
	// non-zero fields materialises a stack temporary and block-copies it,
	// twice the writes of a plain zeroing store on this hot path.
	*e = Entry{}
	e.gen = gen
	e.producers = producers
	e.consumers = consumers
	e.resident = -1
}

// ready reports whether all source operands are available at cycle. The hot
// path uses the waits counter instead; this re-derivation from the producer
// edges backs the sanitizer's cross-check.
func (e *Entry) ready(cycle int64) bool {
	for _, ref := range e.producers {
		if !ref.live() || ref.e.squashed {
			continue // drained or squashed producer: value forwarded or re-executed
		}
		if !ref.e.done || ref.e.doneAt > cycle {
			return false
		}
	}
	return true
}
