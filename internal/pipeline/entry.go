package pipeline

import (
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
)

// opClass buckets ops by functional unit.
type opClass uint8

const (
	opIntALU opClass = iota
	opIntMul
	opIntDiv
	opFPALU
	opFPDiv
	opLoad
	opStore
	opBranch
	opOther
)

func classOf(op isa.Op) opClass {
	switch op.Class() {
	case isa.ClassIntALU:
		return opIntALU
	case isa.ClassIntMul:
		return opIntMul
	case isa.ClassIntDiv:
		return opIntDiv
	case isa.ClassFPALU:
		return opFPALU
	case isa.ClassFPDiv:
		return opFPDiv
	case isa.ClassLoad:
		return opLoad
	case isa.ClassStore:
		return opStore
	case isa.ClassBranch, isa.ClassJump:
		return opBranch
	default:
		return opOther
	}
}

// Entry is one in-flight dynamic instruction in the pipeline.
type Entry struct {
	idx int // trace index
	// d is stored by value: the window's backing array compacts and grows
	// as the stream slides, so entries must not point into it.
	d     emulator.DynInst
	dep   DepInfo
	class opClass

	fetchedAt    int64
	dispatchable int64 // earliest dispatch cycle (front-end depth)
	dispatched   bool
	issued       bool
	issuedAt     int64
	done         bool
	doneAt       int64

	// Branch state.
	isCondBranch bool
	isJalr       bool
	mispredicted bool
	resolved     bool
	resolvedAt   int64
	resumeIdx    int // refetch point after recovery

	// Memory state. A memory op "resolves" when its translation succeeds
	// (addrReadyAt); data arrives at doneAt.
	isMem       bool
	isFence     bool
	addrReadyAt int64

	// Register dependence: producers this entry waits on.
	producers []*Entry
	hasDest   bool

	// Commit state.
	committed   bool
	committedAt int64
	oooCommit   bool // committed while not the oldest uncommitted entry
	squashed    bool

	// lqHeld marks a load that committed before its data returned (relaxed
	// Condition 1): its load-queue entry stays allocated until completion.
	lqHeld bool

	// Noreba state.
	steered    bool // left ROB′ into a commit queue
	queue      int  // queue index once steered (0 = PR-CQ, 1.. = BR-CQs)
	windowInst bool // fetched during a misprediction window (beyond reconvergence)
}

// Seq returns the entry's dynamic sequence number.
func (e *Entry) Seq() int64 { return e.d.Seq }

// ready reports whether all source operands are available at cycle.
func (e *Entry) ready(cycle int64) bool {
	for _, p := range e.producers {
		if p.squashed {
			continue // squashed producer: value comes from re-execution; guarded by refetch
		}
		if !p.done || p.doneAt > cycle {
			return false
		}
	}
	return true
}
