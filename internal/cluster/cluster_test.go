package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/service"
	"github.com/noreba-sim/noreba/internal/workgen"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// replica is one in-process fleet member: its own runner, shard, scheduler
// and HTTP server, connected to the others only over HTTP.
type replica struct {
	url    string
	ts     *httptest.Server
	node   *Node
	runner *experiments.Runner
	store  *service.DiskStore
	sched  *service.Scheduler
}

// startCluster brings up k replicas as real HTTP servers on loopback.
// Unstarted test servers already hold their listeners, so every replica
// knows the full peer-URL list before any of them serves.
func startCluster(t *testing.T, k int) []*replica {
	t.Helper()
	reps := make([]*replica, k)
	urls := make([]string, k)
	for i := range reps {
		ts := httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + ts.Listener.Addr().String()
		reps[i] = &replica{url: urls[i], ts: ts}
	}
	for i, rep := range reps {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		rep.runner = quickRunner()
		rep.store = tempStore(t)
		node, err := NewNode(Config{
			Self: rep.url, Peers: peers,
			Runner: rep.runner, Local: rep.store,
			PeerTimeout: 2 * time.Second, BackoffBase: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.node = node
		rep.runner.Store = node
		rep.sched = service.NewScheduler(service.SchedulerConfig{Runner: rep.runner, Workers: 1, QueueLimit: 16})
		srv := service.NewServer(rep.sched, rep.store)
		node.Mount(srv)
		rep.ts.Config.Handler = srv
		rep.ts.Start()
	}
	t.Cleanup(func() {
		for _, rep := range reps {
			rep.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			rep.sched.Shutdown(ctx)
			cancel()
		}
	})
	return reps
}

// sweepResult is one parsed POST /sweep stream.
type sweepResult struct {
	head sweepHead
	rows map[int]sweepRowMsg
	done sweepDone
}

// doSweep POSTs req and parses the JSONL stream. onLine, when non-nil, is
// called after every decoded line (tests use it to kill a replica
// mid-stream).
func doSweep(t *testing.T, url string, req SweepRequest, onLine func(kind string)) sweepResult {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("sweep status %s: %v", resp.Status, e)
	}
	out := sweepResult{rows: map[int]sweepRowMsg{}}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	sawDone := false
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "head":
			json.Unmarshal(sc.Bytes(), &out.head)
		case "row":
			var msg sweepRowMsg
			json.Unmarshal(sc.Bytes(), &msg)
			if _, dup := out.rows[msg.Index]; dup {
				t.Fatalf("row %d emitted twice", msg.Index)
			}
			out.rows[msg.Index] = msg
		case "done":
			json.Unmarshal(sc.Bytes(), &out.done)
			sawDone = true
		}
		if onLine != nil {
			onLine(probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("sweep stream: %v", err)
	}
	if !sawDone {
		t.Fatal("sweep stream ended without a done line")
	}
	return out
}

func emulationsAcross(reps []*replica) int64 {
	var n int64
	for _, rep := range reps {
		n += rep.runner.EmulationsRun()
	}
	return n
}

// acceptanceGrid is the ISSUE's reference sweep: 24 points over 2
// workloads (2 cores x 3 policies x 2 windows each).
func acceptanceGrid() SweepRequest {
	return SweepRequest{
		Workloads: []string{"mcf", "sha"},
		Cores:     []string{"skl", "hsw"},
		Policies:  []string{"inorder", "nonspec", "noreba"},
		Windows:   []int{128, 224},
	}
}

// TestClusterSweepAcceptance is the PR's core acceptance check: a 24-point
// sweep over 2 workloads on a 3-replica cluster (a) returns every row
// byte-identical to a single-process experiments.Runner, (b) runs exactly
// one functional emulation per workload fleet-wide, and (c) a repeat sweep
// through a different replica re-runs nothing and returns identical bytes.
func TestClusterSweepAcceptance(t *testing.T) {
	reps := startCluster(t, 3)
	req := acceptanceGrid()

	res := doSweep(t, reps[0].url, req, nil)
	if res.head.Points != 24 || res.head.Workloads != 2 {
		t.Fatalf("head = %+v", res.head)
	}
	if len(res.rows) != 24 || res.done.Points != 24 || res.done.Errors != 0 || res.done.Degraded {
		t.Fatalf("done = %+v with %d rows", res.done, len(res.rows))
	}

	// One functional emulation per workload across the whole fleet: the
	// broadcast batching survives sharding.
	if got := emulationsAcross(reps); got != 2 {
		t.Errorf("fleet ran %d emulations for 2 workloads", got)
	}

	// Byte-identical to a solo runner at the same scale.
	solo := quickRunner()
	for i := 0; i < 24; i++ {
		row, ok := res.rows[i]
		if !ok {
			t.Fatalf("row %d missing", i)
		}
		q, err := rowConfig(sweepRow{Index: row.Index, Workload: row.Workload, Core: row.Core, Policy: row.Policy, Window: row.Window}, req)
		if err != nil {
			t.Fatal(err)
		}
		st, err := solo.Simulate(q.Workload, q.Config)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(st)
		if !bytes.Equal(row.Stats, want) {
			t.Errorf("row %d (%s %s %s rob=%d) differs from solo runner:\n got %s\nwant %s",
				i, row.Workload, row.Core, row.Policy, row.Window, row.Stats, want)
		}
		if row.Hash != solo.ConfigHash(q.Workload, q.Config) {
			t.Errorf("row %d hash %s != solo hash", i, row.Hash)
		}
	}

	// Warm repeat from another replica: identical bytes, zero new
	// emulations, and the fleet served at least one row from a shard
	// (local or peer) rather than the coordinating runner's own memory.
	before := emulationsAcross(reps)
	res2 := doSweep(t, reps[1].url, req, nil)
	if got := emulationsAcross(reps); got != before {
		t.Errorf("warm sweep ran %d new emulations", got-before)
	}
	for i, row := range res.rows {
		if !bytes.Equal(row.Stats, res2.rows[i].Stats) {
			t.Errorf("warm row %d differs", i)
		}
	}

	// Cross-shard result fetch: a replica that neither owns one of the
	// result keys nor executed its workload group must still produce it —
	// from the owning replica's shard, counted as a peerHit.
	ring := reps[0].node.Ring()
	probed := false
	for i, row := range res.rows {
		keyOwner := ring.Owner(row.Hash)
		groupOwner := ring.Owner(row.Workload)
		for _, rep := range reps {
			if rep.url == keyOwner || rep.url == groupOwner {
				continue
			}
			if _, ok := rep.store.Get(row.Hash); ok {
				continue // replicated here by chance; pick another
			}
			hitsBefore := rep.node.Metrics().PeerHits
			st, ok := rep.node.Get(row.Hash)
			if !ok {
				t.Fatalf("row %d: replica %s could not fetch from owner %s", i, rep.url, keyOwner)
			}
			want, _ := json.Marshal(st)
			if !bytes.Equal(row.Stats, want) {
				t.Errorf("row %d: peer-fetched stats differ", i)
			}
			if rep.node.Metrics().PeerHits != hitsBefore+1 {
				t.Errorf("peer fetch not counted as peerHit")
			}
			probed = true
			break
		}
		if probed {
			break
		}
	}
	if !probed {
		t.Log("no (replica, key) pair qualified for the peer-fetch probe; skipped")
	}
}

// TestClusterSweepOwnerKilledMidSweep: the replica owning the first
// workload group dies while the sweep streams. The sweep must still settle
// all 24 points — rows the dead owner never delivered are rerun locally —
// and a fresh cold sweep coordinated by a survivor completes degraded.
func TestClusterSweepOwnerKilledMidSweep(t *testing.T) {
	reps := startCluster(t, 3)
	req := acceptanceGrid()
	ring := reps[0].node.Ring()

	victim := ring.Owner(req.Workloads[0])
	var coord, dead *replica
	for _, rep := range reps {
		if rep.url == victim {
			dead = rep
		} else if coord == nil {
			coord = rep
		}
	}
	if dead == nil {
		t.Fatal("no replica owns the first workload")
	}

	killed := false
	res := doSweep(t, coord.url, req, func(kind string) {
		if !killed && kind == "head" {
			dead.ts.CloseClientConnections()
			dead.ts.Close()
			killed = true
		}
	})
	if len(res.rows) != 24 || res.done.Points != 24 {
		t.Fatalf("sweep with killed owner settled %d rows: %+v", len(res.rows), res.done)
	}
	if res.done.Errors != 0 {
		t.Fatalf("degraded sweep reported %d row errors: %+v", res.done.Errors, res.done)
	}

	// Cold again from the other survivor, with the owner still dead: the
	// forward fails outright, the sweep degrades to local execution.
	var other *replica
	for _, rep := range reps {
		if rep != dead && rep != coord {
			other = rep
		}
	}
	res2 := doSweep(t, other.url, req, nil)
	if len(res2.rows) != 24 || res2.done.Errors != 0 {
		t.Fatalf("survivor sweep: %d rows, %+v", len(res2.rows), res2.done)
	}
	for i, row := range res.rows {
		if !bytes.Equal(row.Stats, res2.rows[i].Stats) {
			t.Errorf("row %d differs between degraded sweeps", i)
		}
	}
}

// TestClusterSweepGeneratedWorkload: a sweep over a gen/ spec that no
// replica has registered works — whichever replica executes the group
// generates the workload on demand from the canonical name.
func TestClusterSweepGeneratedWorkload(t *testing.T) {
	reps := startCluster(t, 3)
	gen := workgen.FromSeed(20260809).Name()
	if _, err := workloads.ByName(gen); err == nil {
		t.Skipf("%s already registered by another test", gen)
	}
	req := SweepRequest{Workloads: []string{gen}, Policies: []string{"inorder", "noreba"}}
	res := doSweep(t, reps[2].url, req, nil)
	if len(res.rows) != 2 || res.done.Errors != 0 {
		t.Fatalf("gen sweep: %d rows, %+v", len(res.rows), res.done)
	}
	for i := 0; i < 2; i++ {
		if len(res.rows[i].Stats) == 0 {
			t.Fatalf("row %d has no stats", i)
		}
	}
}

// TestForwardGroupTruncatedStream: an owner that streams part of a group
// and ends without a done line is treated as failed; the coordinator
// reruns the group locally, keeping the rows the owner did deliver and
// settling the rest itself.
func TestForwardGroupTruncatedStream(t *testing.T) {
	var workload string
	fakeStats := json.RawMessage(`{"Name":"faked","Cycles":42}`)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var greq groupRequest
		if err := json.NewDecoder(r.Body).Decode(&greq); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Deliver only the first row, with recognisable fake stats, then
		// end the stream with no done line.
		first := greq.Rows[0]
		json.NewEncoder(w).Encode(sweepRowMsg{Type: "row", Index: first.Index, Workload: first.Workload, Core: first.Core, Policy: first.Policy, Window: first.Window, Hash: "deadbeef", Stats: fakeStats})
	}))
	defer peer.Close()

	n, err := NewNode(Config{
		Self: "http://self", Peers: []string{peer.URL},
		Runner: quickRunner(), Local: tempStore(t),
		PeerTimeout: 5 * time.Second, BackoffBase: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.All() {
		if n.Ring().Owner(w.Name) == peer.URL {
			workload = w.Name
			break
		}
	}
	if workload == "" {
		t.Skip("no registered workload hashes to the fake peer")
	}

	req := SweepRequest{Workloads: []string{workload}, Policies: []string{"inorder", "nonspec", "noreba"}}
	rows, err := expandSweep(req, DefaultMaxPoints)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	emit := newSweepEmitter(bufio.NewWriter(&buf), nil, len(rows))
	done := n.runSweep(context.Background(), req, rows, emit)
	if !done.Degraded || done.Points != 3 || done.Errors != 0 {
		t.Fatalf("done = %+v", done)
	}
	if settled, _ := emit.counts(); settled != 3 {
		t.Fatalf("settled %d of 3 rows", settled)
	}

	// Row 0 must be the owner's (fake) copy — delivered before the
	// truncation, so the local rerun may not overwrite it.
	var got []sweepRowMsg
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var msg sweepRowMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			t.Fatal(err)
		}
		if msg.Type == "row" {
			got = append(got, msg)
		}
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d rows", len(got))
	}
	seen := map[int]sweepRowMsg{}
	for _, msg := range got {
		if _, dup := seen[msg.Index]; dup {
			t.Fatalf("row %d emitted twice", msg.Index)
		}
		seen[msg.Index] = msg
	}
	if string(seen[0].Stats) != string(fakeStats) {
		t.Errorf("row 0 = %s, want the owner's pre-truncation copy", seen[0].Stats)
	}
	for i := 1; i < 3; i++ {
		if len(seen[i].Stats) == 0 || seen[i].Error != "" {
			t.Errorf("locally rerun row %d = %+v", i, seen[i])
		}
	}
	if n.Metrics().PeerErrors == 0 {
		t.Error("truncated stream not counted as a peer error")
	}
}

// TestSweepHTTPValidationAndAdmission: malformed grids get a 400 before any
// streaming; a replica at its sweep limit answers 429 + Retry-After.
func TestSweepHTTPValidationAndAdmission(t *testing.T) {
	reps := startCluster(t, 1)
	for _, body := range []string{
		`{`,
		`{"workloads":[],"policies":["noreba"]}`,
		`{"workloads":["mcf"],"policies":["yolo"]}`,
		`{"workloads":["nonsense"],"policies":["noreba"]}`,
	} {
		resp, err := http.Post(reps[0].url+"/sweep", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %s", body, resp.Status)
		}
	}

	// Occupy every sweep slot, then expect 429.
	n := reps[0].node
	var held int
	for n.admitSweep() {
		held++
	}
	body, _ := json.Marshal(SweepRequest{Workloads: []string{"mcf"}, Policies: []string{"noreba"}})
	resp, err := http.Post(reps[0].url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("full replica answered %s (Retry-After %q)", resp.Status, resp.Header.Get("Retry-After"))
	}
	for ; held > 0; held-- {
		n.releaseSweep()
	}
	if fmt.Sprint(n.Metrics().SweepsActive) != "0" {
		t.Fatalf("sweepsActive = %d after release", n.Metrics().SweepsActive)
	}
}
