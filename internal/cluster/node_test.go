package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/service"
)

func quickRunner() *experiments.Runner {
	r := experiments.NewRunner()
	r.MaxInsts = 1 << 12
	r.ScaleDiv = 8
	return r
}

func tempStore(t *testing.T) *service.DiskStore {
	t.Helper()
	st, err := service.OpenDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// peerKey finds a valid store key the given member owns.
func peerKey(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if k := hexKey(i); r.Owner(k) == owner {
			return k
		}
	}
	t.Fatal("no key maps to peer")
	return ""
}

// TestNodeGetPeerPaths drives Get through every peer outcome against a fake
// owner replica: stored (peerHit, cached locally), not stored (peerMiss),
// then local (shardHit), and finally a dead owner (peerError, degraded
// miss, backed off so the next lookup skips the network).
func TestNodeGetPeerPaths(t *testing.T) {
	want := &pipeline.Stats{Name: "fake", Cycles: 12345, Committed: 678}
	var requests atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if r.URL.Path == "/cluster/result/"+peerOwnedKey {
			json.NewEncoder(w).Encode(want)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	n, err := NewNode(Config{
		Self: "http://self", Peers: []string{peer.URL},
		Runner: quickRunner(), Local: tempStore(t),
		PeerTimeout: time.Second, BackoffBase: time.Hour, // one failure downs the peer for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	peerOwnedKey = peerKey(t, n.Ring(), peer.URL)

	// Peer hit: fetched from the owner and cached in the local shard.
	st, ok := n.Get(peerOwnedKey)
	if !ok || st.Cycles != want.Cycles {
		t.Fatalf("Get = %+v, %v", st, ok)
	}
	if got := n.Metrics(); got.PeerHits != 1 || got.ShardHits != 0 {
		t.Fatalf("after peer hit: %+v", got)
	}

	// Now a shard hit: the fetched copy is local, no network round trip.
	before := requests.Load()
	if _, ok := n.Get(peerOwnedKey); !ok {
		t.Fatal("cached copy missing")
	}
	if n.Metrics().ShardHits != 1 {
		t.Fatalf("metrics after cached get: %+v", n.Metrics())
	}
	if requests.Load() != before {
		t.Fatal("cached get still contacted the peer")
	}

	// Peer miss: the owner answers 404.
	missKey := peerOwnedKey
	for i := 0; ; i++ {
		if k := hexKey(10000 + i); n.Ring().Owner(k) == peer.URL {
			missKey = k
			break
		}
	}
	if _, ok := n.Get(missKey); ok {
		t.Fatal("miss key reported stored")
	}
	if n.Metrics().PeerMisses != 1 {
		t.Fatalf("metrics after peer miss: %+v", n.Metrics())
	}

	// Self-owned keys never leave the process.
	selfKey := peerKey(t, n.Ring(), "http://self")
	before = requests.Load()
	if _, ok := n.Get(selfKey); ok {
		t.Fatal("self key reported stored")
	}
	if requests.Load() != before {
		t.Fatal("self-owned miss contacted the peer")
	}

	// Dead owner: degraded miss, peerError, and the peer is backed off —
	// the follow-up Get must not attempt the network.
	peer.Close()
	if _, ok := n.Get(missKey); ok {
		t.Fatal("dead peer produced a hit")
	}
	m := n.Metrics()
	if m.PeerErrors == 0 {
		t.Fatalf("no peerError after dead peer: %+v", m)
	}
	if len(m.Peers) != 1 || m.Peers[0].Healthy {
		t.Fatalf("dead peer still healthy: %+v", m.Peers)
	}
	errsBefore := m.PeerErrors
	if _, ok := n.Get(missKey); ok {
		t.Fatal("backed-off peer produced a hit")
	}
	if n.Metrics().PeerErrors != errsBefore {
		t.Fatal("backed-off peer was still contacted (peerErrors grew)")
	}
}

var peerOwnedKey string // set per test; the fake handler closes over it

// TestNodePutReplicates: Put always lands in the local shard and is pushed
// to the owning replica; a dead owner costs a peerError, never a Put error.
func TestNodePutReplicates(t *testing.T) {
	var puts atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			puts.Add(1)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	local := tempStore(t)
	n, err := NewNode(Config{
		Self: "http://self", Peers: []string{peer.URL},
		Runner: quickRunner(), Local: local,
		PeerTimeout: time.Second, BackoffBase: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := &pipeline.Stats{Name: "x", Cycles: 9}

	key := peerKey(t, n.Ring(), peer.URL)
	if err := n.Put(key, st); err != nil {
		t.Fatal(err)
	}
	if _, ok := local.Get(key); !ok {
		t.Fatal("Put skipped the local shard")
	}
	if puts.Load() != 1 || n.Metrics().Forwarded != 1 {
		t.Fatalf("replication: puts=%d metrics=%+v", puts.Load(), n.Metrics())
	}

	// Self-owned: no replication.
	if err := n.Put(peerKey(t, n.Ring(), "http://self"), st); err != nil {
		t.Fatal(err)
	}
	if puts.Load() != 1 {
		t.Fatal("self-owned Put replicated")
	}

	// Dead owner: local write still succeeds, error only counted.
	peer.Close()
	key2 := key
	for i := 0; ; i++ {
		if k := hexKey(20000 + i); n.Ring().Owner(k) == peer.URL {
			key2 = k
			break
		}
	}
	if err := n.Put(key2, st); err != nil {
		t.Fatalf("Put with dead owner failed: %v", err)
	}
	if _, ok := local.Get(key2); !ok {
		t.Fatal("degraded Put skipped the local shard")
	}
	if n.Metrics().PeerErrors == 0 {
		t.Fatal("dead owner not counted")
	}
}

// TestNodeBackoffRecovers: a failed peer re-enters after its backoff
// window, and a successful ping resets the failure count.
func TestNodeBackoffRecovers(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"node": "peer"})
	}))
	defer peer.Close()
	n, err := NewNode(Config{
		Self: "http://self", Peers: []string{"http://127.0.0.1:1", peer.URL},
		Runner:      quickRunner(),
		PeerTimeout: 200 * time.Millisecond, Retries: -1, BackoffBase: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://127.0.0.1:1"
	if err := n.Ping(dead); err == nil {
		t.Fatal("ping of dead peer succeeded")
	}
	if n.healthy(dead, time.Now()) {
		t.Fatal("dead peer healthy immediately after failure")
	}
	if err := n.Ping(dead); err == nil || n.Metrics().PeerErrors != 1 {
		t.Fatalf("backed-off ping reached the network: %v, %+v", err, n.Metrics())
	}
	time.Sleep(15 * time.Millisecond)
	if !n.healthy(dead, time.Now()) {
		t.Fatal("peer still down after backoff window")
	}

	if err := n.Ping(peer.URL); err != nil {
		t.Fatal(err)
	}
	n.CheckPeers() // live peer pinged again, dead one probed per backoff
	for _, p := range n.Metrics().Peers {
		if p.URL == peer.URL && !p.Healthy {
			t.Fatalf("live peer unhealthy: %+v", p)
		}
	}
}
