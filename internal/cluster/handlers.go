package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/service"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// Mount registers the cluster endpoints on the service's mux and installs
// the /metrics cluster section:
//
//	POST /sweep                     batch design-space sweep → JSONL stream
//	POST /cluster/sweepgroup        internal: run one forwarded workload group
//	GET  /cluster/result/{hash}     internal: this replica's local shard only
//	PUT  /cluster/result/{hash}     internal: store into the local shard
//	GET  /cluster/plan/{hash}       internal: sampling-plan blob, local shard only
//	PUT  /cluster/plan/{hash}       internal: store a plan blob into the local shard
//	GET  /cluster/ping              internal: liveness probe
func (n *Node) Mount(srv *service.Server) {
	srv.Handle("POST /sweep", http.HandlerFunc(n.handleSweep))
	srv.Handle("POST /cluster/sweepgroup", http.HandlerFunc(n.handleSweepGroup))
	srv.Handle("GET /cluster/result/{hash}", http.HandlerFunc(n.handleResultGet))
	srv.Handle("PUT /cluster/result/{hash}", http.HandlerFunc(n.handleResultPut))
	srv.Handle("GET /cluster/plan/{hash}", http.HandlerFunc(n.handlePlanGet))
	srv.Handle("PUT /cluster/plan/{hash}", http.HandlerFunc(n.handlePlanPut))
	srv.Handle("GET /cluster/ping", http.HandlerFunc(n.handlePing))
	srv.SetClusterMetrics(n.Metrics)
}

// handleSweep answers POST /sweep: validate and expand the grid, admit the
// sweep (429 + Retry-After when the replica already streams SweepMax
// sweeps), then stream head/row/progress/done JSONL while the grid's
// workload groups execute across the fleet.
func (n *Node) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	rows, err := expandSweep(req, n.maxPoints)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !n.admitSweep() {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("sweep limit reached"))
		return
	}
	defer n.releaseSweep()

	ctx := r.Context()
	if req.TimeoutSec > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutSec*float64(time.Second)))
		defer cancel()
	}

	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	emit := newSweepEmitter(bufio.NewWriter(w), flusherOf(w), len(rows))
	done := n.runSweep(ctx, req, rows, emit)
	emit.line(done)
}

// handleSweepGroup answers the internal POST /cluster/sweepgroup: execute
// one forwarded workload group locally (never re-forwarded) and stream its
// row lines back. The coordinator holds the sweep admission slot, so group
// execution itself is not admission-controlled — it is already-admitted
// work arriving on its owning shard.
func (n *Node) handleSweepGroup(w http.ResponseWriter, r *http.Request) {
	var greq groupRequest
	if err := json.NewDecoder(r.Body).Decode(&greq); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(greq.Rows) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty group"))
		return
	}
	req := SweepRequest{ECL: greq.ECL, Prefetch: greq.Prefetch, Sanitize: greq.Sanitize, Sample: greq.Sample}
	if _, err := workloads.EnsureGenerated(greq.Workload); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	for _, row := range greq.Rows {
		if row.Workload != greq.Workload {
			httpError(w, http.StatusBadRequest, fmt.Errorf("row %d workload %q outside group %q", row.Index, row.Workload, greq.Workload))
			return
		}
		if _, err := rowConfig(row, req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}

	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	emit := newSweepEmitter(bufio.NewWriter(w), flusherOf(w), len(greq.Rows))
	n.runGroupLocal(r.Context(), sweepGroup{workload: greq.Workload, owner: n.self, rows: greq.Rows}, req, emit)
	_, errs := emit.counts()
	emit.line(sweepDone{Type: "done", Points: len(greq.Rows), Errors: errs, ElapsedSec: round2(time.Since(emit.start).Seconds())})
}

// handleResultGet serves a key from this replica's local shard only — no
// peer fallback, so result lookups can never loop through the fleet.
func (n *Node) handleResultGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if n.local == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no store on this replica"))
		return
	}
	st, ok := n.local.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("not stored"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleResultPut stores a replicated result into the local shard.
func (n *Node) handleResultPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if n.local == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	var st pipeline.Stats
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&st); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad result body: %w", err))
		return
	}
	if err := n.local.Put(key, &st); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePlanGet serves a sampling-plan blob from this replica's local shard
// only — like results, never through a peer, so plan lookups cannot loop.
// The bytes are opaque here: integrity lives in the plan file's own magic,
// version and bounds checks at decode time.
func (n *Node) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if n.local == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no store on this replica"))
		return
	}
	data, ok := n.local.GetBlob(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("not stored"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handlePlanPut stores a replicated sampling-plan blob into the local shard.
func (n *Node) handlePlanPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if n.local == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanBlobBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad plan body: %w", err))
		return
	}
	if err := n.local.PutBlob(key, data); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePing answers the liveness probe with this replica's identity, so a
// misconfigured peer list (two replicas sharing an advertised URL) is
// visible from the outside.
func (n *Node) handlePing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"node": n.self})
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// flusherOf returns a flush func pushing buffered bytes to the client after
// every line (nil when the writer cannot flush, e.g. in tests against a
// plain buffer).
func flusherOf(w http.ResponseWriter) func() {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil
	}
	return f.Flush
}
