package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakePlanBlob is an arbitrary binary payload standing in for an encoded
// sampling plan — the cluster layer treats it as opaque bytes.
var fakePlanBlob = []byte{'N', 'R', 'P', 'F', 1, 0x00, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF}

// TestNodeBlobPeerPaths drives GetBlob through every peer outcome against a
// fake owner replica: stored (peerHit, cached into the local shard so the
// next lookup is a shardHit without a network round trip), not stored
// (peerMiss), and self-owned (never leaves the process).
func TestNodeBlobPeerPaths(t *testing.T) {
	var requests atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if r.Method == http.MethodGet && r.URL.Path == "/cluster/plan/"+peerOwnedKey {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(fakePlanBlob)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	local := tempStore(t)
	n, err := NewNode(Config{
		Self: "http://self", Peers: []string{peer.URL},
		Runner: quickRunner(), Local: local,
		PeerTimeout: time.Second, BackoffBase: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerOwnedKey = peerKey(t, n.Ring(), peer.URL)

	// Peer hit: fetched from the owner and cached in the local shard.
	got, ok := n.GetBlob(peerOwnedKey)
	if !ok || !bytes.Equal(got, fakePlanBlob) {
		t.Fatalf("GetBlob = %x, %v", got, ok)
	}
	if m := n.Metrics(); m.PeerHits != 1 || m.ShardHits != 0 {
		t.Fatalf("after peer hit: %+v", m)
	}
	if cached, ok := local.GetBlob(peerOwnedKey); !ok || !bytes.Equal(cached, fakePlanBlob) {
		t.Fatal("fetched blob not cached in the local shard")
	}

	// Shard hit: the cached copy answers without the network.
	before := requests.Load()
	if _, ok := n.GetBlob(peerOwnedKey); !ok {
		t.Fatal("cached blob missing")
	}
	if n.Metrics().ShardHits != 1 {
		t.Fatalf("metrics after cached get: %+v", n.Metrics())
	}
	if requests.Load() != before {
		t.Fatal("cached GetBlob still contacted the peer")
	}

	// Peer miss: the owner answers 404.
	missKey := peerOwnedKey
	for i := 0; ; i++ {
		if k := hexKey(30000 + i); n.Ring().Owner(k) == peer.URL {
			missKey = k
			break
		}
	}
	if _, ok := n.GetBlob(missKey); ok {
		t.Fatal("miss key reported stored")
	}
	if n.Metrics().PeerMisses != 1 {
		t.Fatalf("metrics after peer miss: %+v", n.Metrics())
	}

	// Self-owned keys never leave the process.
	selfKey := peerKey(t, n.Ring(), "http://self")
	before = requests.Load()
	if _, ok := n.GetBlob(selfKey); ok {
		t.Fatal("self key reported stored")
	}
	if requests.Load() != before {
		t.Fatal("self-owned miss contacted the peer")
	}
}

// TestNodePutBlobReplicates: PutBlob lands in the local shard and pushes the
// same bytes to the owning replica; a dead owner costs a peerError, never a
// PutBlob error.
func TestNodePutBlobReplicates(t *testing.T) {
	var puts atomic.Int64
	var pushed atomic.Value // []byte: last body PUT to the fake owner
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/cluster/plan/") {
			body := new(bytes.Buffer)
			body.ReadFrom(r.Body)
			pushed.Store(body.Bytes())
			puts.Add(1)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	local := tempStore(t)
	n, err := NewNode(Config{
		Self: "http://self", Peers: []string{peer.URL},
		Runner: quickRunner(), Local: local,
		PeerTimeout: time.Second, BackoffBase: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	key := peerKey(t, n.Ring(), peer.URL)
	if err := n.PutBlob(key, fakePlanBlob); err != nil {
		t.Fatal(err)
	}
	if got, ok := local.GetBlob(key); !ok || !bytes.Equal(got, fakePlanBlob) {
		t.Fatal("PutBlob skipped the local shard")
	}
	if puts.Load() != 1 || n.Metrics().Forwarded != 1 {
		t.Fatalf("replication: puts=%d metrics=%+v", puts.Load(), n.Metrics())
	}
	if body, _ := pushed.Load().([]byte); !bytes.Equal(body, fakePlanBlob) {
		t.Fatalf("owner received %x, want %x", body, fakePlanBlob)
	}

	// Self-owned: no replication.
	if err := n.PutBlob(peerKey(t, n.Ring(), "http://self"), fakePlanBlob); err != nil {
		t.Fatal(err)
	}
	if puts.Load() != 1 {
		t.Fatal("self-owned PutBlob replicated")
	}

	// Dead owner: local write still succeeds, error only counted.
	peer.Close()
	key2 := key
	for i := 0; ; i++ {
		if k := hexKey(40000 + i); n.Ring().Owner(k) == peer.URL {
			key2 = k
			break
		}
	}
	if err := n.PutBlob(key2, fakePlanBlob); err != nil {
		t.Fatalf("PutBlob with dead owner failed: %v", err)
	}
	if _, ok := local.GetBlob(key2); !ok {
		t.Fatal("degraded PutBlob skipped the local shard")
	}
	if n.Metrics().PeerErrors == 0 {
		t.Fatal("dead owner not counted")
	}
}

// TestClusterPlanReplication exercises the real /cluster/plan/{hash}
// handlers over loopback HTTP: a blob seeded on its owning replica is
// fetchable from the other replica (and cached there), and a PutBlob on the
// non-owner lands on the owner's shard.
func TestClusterPlanReplication(t *testing.T) {
	reps := startCluster(t, 2)
	a, b := reps[0], reps[1]

	// A blob stored only on its owner is visible fleet-wide.
	ownedByB := peerKey(t, a.node.Ring(), b.url)
	if err := b.store.PutBlob(ownedByB, fakePlanBlob); err != nil {
		t.Fatal(err)
	}
	got, ok := a.node.GetBlob(ownedByB)
	if !ok || !bytes.Equal(got, fakePlanBlob) {
		t.Fatalf("cross-replica GetBlob = %x, %v", got, ok)
	}
	if _, ok := a.store.GetBlob(ownedByB); !ok {
		t.Fatal("fetched blob not cached on the requesting replica")
	}

	// A blob written on the non-owner replicates to the owner's shard.
	other := ""
	for i := 0; ; i++ {
		if k := hexKey(50000 + i); a.node.Ring().Owner(k) == b.url && k != ownedByB {
			other = k
			break
		}
	}
	if err := a.node.PutBlob(other, fakePlanBlob); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.store.GetBlob(other); !ok || !bytes.Equal(got, fakePlanBlob) {
		t.Fatal("PutBlob did not replicate to the owning replica")
	}

	// An unknown plan key answers 404 through the real handler: a peer miss,
	// not an error.
	missing := ""
	for i := 0; ; i++ {
		if k := hexKey(60000 + i); a.node.Ring().Owner(k) == b.url {
			missing = k
			break
		}
	}
	if _, ok := a.node.GetBlob(missing); ok {
		t.Fatal("unknown plan key reported stored")
	}
	if m := a.node.Metrics(); m.PeerMisses == 0 || m.PeerErrors != 0 {
		t.Fatalf("miss accounting after 404: %+v", m)
	}
}
