// Package cluster turns noreba-serve into an N-replica fleet: a consistent-
// hash ring shards the content-addressed result store across replicas, a
// peer-aware ResultStore serves lookups from the owning shard before falling
// back to simulation, and a batch design-space endpoint (POST /sweep)
// expands a config grid server-side, shards its workload groups across the
// fleet, and streams results as JSONL.
//
// The cluster is a static list of base URLs (the -peers flag): no membership
// protocol, no rebalancing. Every replica knows the full list, hashes with
// the same ring, and owns the keys that map to it. Peers are assumed
// crash-faulty only — a replica that cannot reach the owner of a key runs
// the simulation itself (degraded mode), trading duplicate work for
// availability; results are deterministic, so duplicates are byte-identical.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the number of ring positions per member. 64 virtual
// nodes keep the largest/smallest shard within ~2x of each other for small
// fleets while the ring stays tiny (a few KiB).
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over replica base URLs. All
// replicas build the ring from the same member list (ordering-insensitive)
// and therefore agree on every key's owner without communicating.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring of the given members with vnodes virtual nodes per
// member (0 means DefaultVNodes). Duplicate members collapse; the member
// list is defensively copied.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := map[string]bool{}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		uniq[m] = true
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	r := &Ring{members: make([]string, 0, len(uniq))}
	for m := range uniq {
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Vanishingly rare 64-bit collision: break the tie by member so
		// every replica still agrees on the ordering.
		return r.points[i].member < r.points[k].member
	})
	return r, nil
}

// ringHash is the ring's position function. FNV-1a is stable across
// processes and architectures (unlike hash/maphash), which is what makes
// independent replicas agree; distribution quality is adequate at 64
// vnodes per member.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Owner returns the member owning key: the first ring point at or after the
// key's hash, wrapping around. Keys are arbitrary strings — the store
// shards by sha256 config-hash hex, sweep execution by workload name.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}
