package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/workgen"
)

// TestExpandSweep: canonical expansion order (workloads outermost, so one
// workload's points are contiguous), defaults, index assignment, and on-
// demand gen/ registration.
func TestExpandSweep(t *testing.T) {
	req := SweepRequest{
		Workloads: []string{"mcf", "sha"},
		Policies:  []string{"inorder", "noreba"},
		Windows:   []int{128, 224},
	}
	rows, err := expandSweep(req, DefaultMaxPoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expanded %d rows", len(rows))
	}
	want := sweepRow{Index: 0, Workload: "mcf", Core: "skl", Policy: "inorder", Window: 128}
	if rows[0] != want {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	for i, r := range rows {
		if r.Index != i {
			t.Fatalf("rows[%d].Index = %d", i, r.Index)
		}
	}
	for _, r := range rows[:4] {
		if r.Workload != "mcf" {
			t.Fatalf("mcf rows not contiguous: %+v", rows)
		}
	}

	// Defaults: one core (skl), one window (the core's own ROB).
	rows, err = expandSweep(SweepRequest{Workloads: []string{"sha"}, Policies: []string{"noreba"}}, DefaultMaxPoints)
	if err != nil || len(rows) != 1 || rows[0].Core != "skl" || rows[0].Window != 0 {
		t.Fatalf("defaults: %+v, %v", rows, err)
	}

	// A fresh gen/ spec is registered during expansion.
	gen := workgen.FromSeed(424242).Name()
	if _, err := expandSweep(SweepRequest{Workloads: []string{gen}, Policies: []string{"noreba"}}, DefaultMaxPoints); err != nil {
		t.Fatalf("gen spec rejected: %v", err)
	}
}

// TestExpandSweepValidation: every malformed grid fails before simulation.
func TestExpandSweepValidation(t *testing.T) {
	base := func() SweepRequest {
		return SweepRequest{Workloads: []string{"mcf"}, Policies: []string{"noreba"}}
	}
	cases := []struct {
		name string
		mut  func(*SweepRequest)
		want string
	}{
		{"no workloads", func(r *SweepRequest) { r.Workloads = nil }, "workloads is required"},
		{"no policies", func(r *SweepRequest) { r.Policies = nil }, "policies is required"},
		{"bad policy", func(r *SweepRequest) { r.Policies = []string{"yolo"} }, "unknown policy"},
		{"bad core", func(r *SweepRequest) { r.Cores = []string{"m1"} }, "unknown core"},
		{"bad workload", func(r *SweepRequest) { r.Workloads = []string{"nonsense"} }, "unknown workload"},
		{"dup workload", func(r *SweepRequest) { r.Workloads = []string{"mcf", "mcf"} }, "duplicate workload"},
		{"negative window", func(r *SweepRequest) { r.Windows = []int{-1} }, "negative window"},
		{"too many points", func(r *SweepRequest) { r.Windows = make([]int, 11) }, "limit"},
	}
	for _, tc := range cases {
		req := base()
		tc.mut(&req)
		_, err := expandSweep(req, 10)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestSweepEmitter: duplicate indices are dropped (the degraded-mode
// contract), progress lines appear at the configured cadence, and counts
// separate successes from errors.
func TestSweepEmitter(t *testing.T) {
	var buf bytes.Buffer
	e := newSweepEmitter(bufio.NewWriter(&buf), nil, 40)
	for i := 0; i < 40; i++ {
		msg := sweepRowMsg{Type: "row", Index: i, Workload: "w"}
		if i == 7 {
			msg.Error = "boom"
		}
		e.row(msg)
		e.row(msg) // duplicate settle, as after a degraded rerun
	}
	done, errs := e.counts()
	if done != 40 || errs != 1 {
		t.Fatalf("counts = %d, %d", done, errs)
	}
	var rows, progress int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var probe struct {
			Type string `json:"type"`
			Done int    `json:"done"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch probe.Type {
		case "row":
			rows++
		case "progress":
			progress++
		}
	}
	if rows != 40 {
		t.Fatalf("emitted %d row lines", rows)
	}
	// 40 points / progressTargets(20) = one progress line every 2 rows,
	// minus the final one (done < points fails at 40).
	if progress != 19 {
		t.Fatalf("emitted %d progress lines", progress)
	}
}

// TestSweepAdmission: the semaphore admits SweepMax sweeps and rejects the
// next without blocking; release restores capacity.
func TestSweepAdmission(t *testing.T) {
	n, err := NewNode(Config{Self: "http://self", Runner: quickRunner(), SweepMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !n.admitSweep() || !n.admitSweep() {
		t.Fatal("admission under the limit refused")
	}
	if n.admitSweep() {
		t.Fatal("third concurrent sweep admitted")
	}
	m := n.Metrics()
	if m.SweepsActive != 2 || m.SweepsTotal != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	n.releaseSweep()
	if !n.admitSweep() {
		t.Fatal("released slot not reusable")
	}
	if n.Metrics().SweepsTotal != 3 {
		t.Fatalf("metrics = %+v", n.Metrics())
	}
}
