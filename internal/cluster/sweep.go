package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/sampling"
	"github.com/noreba-sim/noreba/internal/service"
	"github.com/noreba-sim/noreba/internal/workloads"
)

// Sweep admission and size bounds.
const (
	// DefaultSweepMax bounds concurrently streaming sweeps per replica;
	// further POST /sweep calls get 429 + Retry-After instead of queueing,
	// so batch traffic can never occupy unbounded memory.
	DefaultSweepMax = 2
	// DefaultMaxPoints bounds one sweep's expanded grid.
	DefaultMaxPoints = 4096
	// progressTargets is roughly how many progress lines a sweep emits.
	progressTargets = 20
)

// SweepRequest is the POST /sweep body: a design-space grid expanded
// server-side into workloads × cores × policies × windows points. Workload
// names may be canonical generated specs (gen/s…c…d…m…p…n…) that are not
// pre-registered: the fleet generates them on demand.
type SweepRequest struct {
	// Workloads are registered kernel names or gen/ specs. Required.
	Workloads []string `json:"workloads"`
	// Policies are commit policies (see POST /jobs). Required.
	Policies []string `json:"policies"`
	// Windows are ROB sizes; empty means each core model's default window.
	Windows []int `json:"windows,omitempty"`
	// Cores are machine models (nhm|hsw|skl); empty means ["skl"].
	Cores []string `json:"cores,omitempty"`
	// ECL, Prefetch and Sanitize apply to every point (see POST /jobs).
	ECL      *bool `json:"ecl,omitempty"`
	Prefetch *bool `json:"prefetch,omitempty"`
	Sanitize bool  `json:"sanitize,omitempty"`
	// Sample runs every point as a SimPoint-style sampled estimate.
	// Sampled points skip the broadcast-bus batching (the sampling plan
	// already amortises the functional pass) but still shard by workload.
	Sample bool `json:"sample,omitempty"`
	// TimeoutSec bounds the whole sweep; expired sweeps end with an error
	// line. 0 means no deadline beyond the client's connection.
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
}

// sweepRow is one expanded grid point.
type sweepRow struct {
	Index    int    `json:"index"`
	Workload string `json:"workload"`
	Core     string `json:"core"`
	Policy   string `json:"policy"`
	Window   int    `json:"window"` // effective ROB size
}

// Stream line types. Every line of the POST /sweep (and internal
// /cluster/sweepgroup) response is one JSON object with a "type" field:
//
//	head     — once, before any row: grid dimensions
//	row      — one grid point's result (stats) or failure (error)
//	progress — periodic: settled counts, elapsed and ETA
//	done     — once, last: totals; degraded=true if any group lost its
//	           owner mid-stream and was rerun locally
type sweepHead struct {
	Type      string `json:"type"` // "head"
	Node      string `json:"node"`
	Points    int    `json:"points"`
	Workloads int    `json:"workloads"`
}

type sweepRowMsg struct {
	Type     string          `json:"type"` // "row"
	Index    int             `json:"index"`
	Workload string          `json:"workload"`
	Core     string          `json:"core"`
	Policy   string          `json:"policy"`
	Window   int             `json:"window"`
	Hash     string          `json:"hash"`
	Stats    json.RawMessage `json:"stats,omitempty"`
	Error    string          `json:"error,omitempty"`
}

type sweepProgress struct {
	Type       string  `json:"type"` // "progress"
	Done       int     `json:"done"`
	Points     int     `json:"points"`
	Errors     int     `json:"errors"`
	ElapsedSec float64 `json:"elapsedSec"`
	EtaSec     float64 `json:"etaSec"`
}

type sweepDone struct {
	Type       string  `json:"type"` // "done"
	Points     int     `json:"points"`
	Errors     int     `json:"errors"`
	Degraded   bool    `json:"degraded,omitempty"`
	ElapsedSec float64 `json:"elapsedSec"`
}

// groupRequest is the internal POST /cluster/sweepgroup body: one
// workload's slice of the grid, forwarded to the replica that owns the
// workload on the ring. The receiving replica always executes locally
// (groups are never re-forwarded, so a stale ring cannot loop). Runner
// scale parameters are not part of the body: a fleet is assumed homogeneous
// (same -max-insts/-scale-div on every replica), which the config hash
// makes safe — heterogeneous replicas would simply never share store keys.
type groupRequest struct {
	Workload string     `json:"workload"`
	Rows     []sweepRow `json:"rows"`
	ECL      *bool      `json:"ecl,omitempty"`
	Prefetch *bool      `json:"prefetch,omitempty"`
	Sanitize bool       `json:"sanitize,omitempty"`
	Sample   bool       `json:"sample,omitempty"`
}

// sweepGroup is one workload's rows plus the replica that should run them.
type sweepGroup struct {
	workload string
	owner    string
	rows     []sweepRow
}

// expandSweep validates req and expands the grid in canonical order:
// workloads outermost (so one workload's points are contiguous and become
// one broadcast batch), then cores, policies, windows. Every workload is
// resolved — registering gen/ specs on demand — before any simulation
// starts, so an invalid grid fails fast with a 400, not mid-stream.
func expandSweep(req SweepRequest, maxPoints int) ([]sweepRow, error) {
	if len(req.Workloads) == 0 {
		return nil, fmt.Errorf("workloads is required")
	}
	if len(req.Policies) == 0 {
		return nil, fmt.Errorf("policies is required")
	}
	cores := req.Cores
	if len(cores) == 0 {
		cores = []string{"skl"}
	}
	windows := req.Windows
	if len(windows) == 0 {
		windows = []int{0} // 0 = the core model's default ROB
	}
	points := len(req.Workloads) * len(cores) * len(req.Policies) * len(windows)
	if points > maxPoints {
		return nil, fmt.Errorf("grid has %d points, limit %d", points, maxPoints)
	}
	seen := map[string]bool{}
	for _, w := range req.Workloads {
		if seen[w] {
			return nil, fmt.Errorf("duplicate workload %q", w)
		}
		seen[w] = true
		if _, err := workloads.EnsureGenerated(w); err != nil {
			return nil, err
		}
	}
	for _, win := range windows {
		if win < 0 {
			return nil, fmt.Errorf("negative window %d", win)
		}
	}
	rows := make([]sweepRow, 0, points)
	for _, w := range req.Workloads {
		for _, core := range cores {
			for _, policy := range req.Policies {
				for _, win := range windows {
					r := sweepRow{Index: len(rows), Workload: w, Core: core, Policy: policy, Window: win}
					if _, err := rowConfig(r, req); err != nil {
						return nil, err
					}
					rows = append(rows, r)
				}
			}
		}
	}
	return rows, nil
}

// rowConfig resolves one grid point into a pipeline config via the same
// path as POST /jobs, then applies the window override.
func rowConfig(row sweepRow, req SweepRequest) (experiments.Request, error) {
	sub := service.SubmitRequest{Workload: row.Workload, Policy: row.Policy, Core: row.Core, Prefetch: req.Prefetch, Sanitize: req.Sanitize}
	if req.ECL != nil {
		sub.ECL = *req.ECL
	}
	cfg, err := service.BuildConfig(sub)
	if err != nil {
		return experiments.Request{}, err
	}
	if row.Window > 0 {
		cfg.ROBSize = row.Window
	}
	return experiments.Request{Workload: row.Workload, Config: cfg}, nil
}

// sweepEmitter serialises JSONL line writes and tracks settled rows for
// progress/ETA lines and for degraded-mode deduplication.
type sweepEmitter struct {
	mu      sync.Mutex
	w       *bufio.Writer
	flush   func()
	start   time.Time
	points  int
	done    int
	errors  int
	every   int
	emitted map[int]bool
	failed  error // first write failure; once set, lines are dropped
}

func newSweepEmitter(w *bufio.Writer, flush func(), points int) *sweepEmitter {
	every := points / progressTargets
	if every < 1 {
		every = 1
	}
	return &sweepEmitter{w: w, flush: flush, start: time.Now(), points: points, every: every, emitted: map[int]bool{}}
}

// line marshals v and writes it as one JSONL line. Write errors (client
// went away) are remembered and silence all further output; the sweep
// itself keeps running so the runner's cache still gets warmed.
func (e *sweepEmitter) line(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // all line types are pure value structs
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lineLocked(b)
}

func (e *sweepEmitter) lineLocked(b []byte) {
	if e.failed != nil {
		return
	}
	if _, err := e.w.Write(append(b, '\n')); err != nil {
		e.failed = err
		return
	}
	if err := e.w.Flush(); err != nil {
		e.failed = err
		return
	}
	if e.flush != nil {
		e.flush()
	}
}

// row emits one settled grid point exactly once: a degraded-mode rerun of a
// half-streamed group re-settles indices the dead owner already delivered,
// and those duplicates are dropped here. Progress lines ride along every
// `every` rows.
func (e *sweepEmitter) row(msg sweepRowMsg) {
	b, err := json.Marshal(msg)
	if err != nil {
		panic(err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.emitted[msg.Index] {
		return
	}
	e.emitted[msg.Index] = true
	e.done++
	if msg.Error != "" {
		e.errors++
	}
	e.lineLocked(b)
	if e.done%e.every == 0 && e.done < e.points {
		elapsed := time.Since(e.start).Seconds()
		eta := 0.0
		if e.done > 0 {
			eta = elapsed / float64(e.done) * float64(e.points-e.done)
		}
		p := sweepProgress{Type: "progress", Done: e.done, Points: e.points, Errors: e.errors, ElapsedSec: round2(elapsed), EtaSec: round2(eta)}
		pb, _ := json.Marshal(p)
		e.lineLocked(pb)
	}
}

// has reports whether index already settled (for degraded-mode dedup).
func (e *sweepEmitter) has(index int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.emitted[index]
}

func (e *sweepEmitter) counts() (done, errors int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done, e.errors
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

// admitSweep reserves a sweep slot without blocking; callers that get false
// should answer 429.
func (n *Node) admitSweep() bool {
	select {
	case n.sweepSem <- struct{}{}:
		n.sweepsActive.Add(1)
		n.sweepsTotal.Add(1)
		return true
	default:
		return false
	}
}

func (n *Node) releaseSweep() {
	n.sweepsActive.Add(-1)
	<-n.sweepSem
}

// runSweep executes an admitted, already-expanded sweep and streams lines
// through emit. Rows are grouped by workload; each group runs on the
// replica that owns the workload name on the ring — locally, or forwarded
// whole via /cluster/sweepgroup so the owner's runner batches the group
// onto one functional emulation. Groups whose owner is down (or dies
// mid-stream) are rerun locally, deduplicating rows the owner already
// delivered; the sweep then completes degraded rather than failing.
func (n *Node) runSweep(ctx context.Context, req SweepRequest, rows []sweepRow, emit *sweepEmitter) sweepDone {
	groups := groupByWorkload(rows)
	for i := range groups {
		groups[i].owner = n.ring.Owner(groups[i].workload)
	}
	emit.line(sweepHead{Type: "head", Node: n.self, Points: len(rows), Workloads: len(groups)})

	degraded := false
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g sweepGroup) {
			defer wg.Done()
			if g.owner != n.self && n.healthy(g.owner, time.Now()) {
				err := n.forwardGroup(ctx, g, req, emit)
				if err == nil {
					return
				}
				// The owner died mid-group (counted and backed off by
				// peerRPC); fall through to the local rerun.
				mu.Lock()
				degraded = true
				mu.Unlock()
			} else if g.owner != n.self {
				mu.Lock()
				degraded = true
				mu.Unlock()
			}
			n.runGroupLocal(ctx, g, req, emit)
		}(g)
	}
	wg.Wait()

	_, errs := emit.counts()
	return sweepDone{Type: "done", Points: len(rows), Errors: errs, Degraded: degraded, ElapsedSec: round2(time.Since(emit.start).Seconds())}
}

func groupByWorkload(rows []sweepRow) []sweepGroup {
	byName := map[string]int{}
	var groups []sweepGroup
	for _, r := range rows {
		i, ok := byName[r.Workload]
		if !ok {
			i = len(groups)
			byName[r.Workload] = i
			groups = append(groups, sweepGroup{workload: r.Workload})
		}
		groups[i].rows = append(groups[i].rows, r)
	}
	return groups
}

// runGroupLocal executes one workload group on this replica's runner,
// emitting each row as it settles and skipping rows that already settled
// (degraded reruns). Full-detail groups go through RunRequestsStream so the
// whole group shares one functional emulation; sampled groups run
// per-request (the sampling plan amortises the functional pass instead).
func (n *Node) runGroupLocal(ctx context.Context, g sweepGroup, req SweepRequest, emit *sweepEmitter) {
	var pending []sweepRow
	for _, row := range g.rows {
		if !emit.has(row.Index) {
			pending = append(pending, row)
		}
	}
	if len(pending) == 0 {
		return
	}
	reqs := make([]experiments.Request, len(pending))
	for i, row := range pending {
		// expandSweep already validated every row; an error here would be
		// a programming error surfaced as a row error below.
		reqs[i], _ = rowConfig(row, req)
	}

	emitRow := func(i int, stats json.RawMessage, err error) {
		row := pending[i]
		msg := sweepRowMsg{Type: "row", Index: row.Index, Workload: row.Workload, Core: row.Core, Policy: row.Policy, Window: row.Window, Hash: n.rowHash(reqs[i], req.Sample), Stats: stats}
		if err != nil {
			msg.Error = err.Error()
		}
		emit.row(msg)
	}

	if req.Sample {
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				st, err := n.runner.SimulateSampledContext(ctx, reqs[i].Workload, reqs[i].Config, sampling.Default())
				emitRow(i, marshalStats(st, err), err)
			}(i)
		}
		wg.Wait()
		return
	}
	n.runner.RunRequestsStream(ctx, reqs, func(i int, st *pipeline.Stats, err error) {
		emitRow(i, marshalStats(st, err), err)
	})
}

// marshalStats renders a settled run's stats for its row line (nil on
// failure — the row then carries the error string instead).
func marshalStats(st *pipeline.Stats, err error) json.RawMessage {
	if err != nil || st == nil {
		return nil
	}
	b, merr := json.Marshal(st)
	if merr != nil {
		return nil
	}
	return b
}

// rowHash is the row's persistent-store key under this replica's runner.
func (n *Node) rowHash(q experiments.Request, sample bool) string {
	if sample {
		return n.runner.ConfigHashSampled(q.Workload, q.Config, sampling.Default())
	}
	return n.runner.ConfigHash(q.Workload, q.Config)
}

// forwardGroup POSTs one workload group to its owning replica and relays
// the owner's row lines into the sweep stream. The group's deadline is the
// sweep's, not the node's short RPC timeout. Any transport error, bad
// status or truncated stream (no trailing done line) is a failure: the
// caller reruns the group locally and the emitter drops duplicate rows.
func (n *Node) forwardGroup(ctx context.Context, g sweepGroup, req SweepRequest, emit *sweepEmitter) error {
	body, err := json.Marshal(groupRequest{Workload: g.workload, Rows: g.rows, ECL: req.ECL, Prefetch: req.Prefetch, Sanitize: req.Sanitize, Sample: req.Sample})
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, g.owner+"/cluster/sweepgroup", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(hreq)
	if err != nil {
		n.peerErrors.Add(1)
		n.markFailure(g.owner, time.Now())
		return fmt.Errorf("cluster: forward %s to %s: %w", g.workload, g.owner, err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		n.peerErrors.Add(1)
		n.markFailure(g.owner, time.Now())
		return fmt.Errorf("cluster: forward %s to %s: status %s", g.workload, g.owner, resp.Status)
	}
	n.forwarded.Add(1)
	n.markSuccess(g.owner)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	sawDone := false
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		line := sc.Bytes()
		if err := json.Unmarshal(line, &probe); err != nil {
			n.peerErrors.Add(1)
			return fmt.Errorf("cluster: forward %s: bad line from %s: %w", g.workload, g.owner, err)
		}
		switch probe.Type {
		case "row":
			var msg sweepRowMsg
			if err := json.Unmarshal(line, &msg); err != nil {
				n.peerErrors.Add(1)
				return fmt.Errorf("cluster: forward %s: bad row from %s: %w", g.workload, g.owner, err)
			}
			emit.row(msg)
		case "done":
			sawDone = true
		}
		// The owner's progress lines are dropped: the coordinator emits
		// its own, covering the whole grid.
	}
	if err := sc.Err(); err != nil {
		n.peerErrors.Add(1)
		n.markFailure(g.owner, time.Now())
		return fmt.Errorf("cluster: forward %s: stream from %s: %w", g.workload, g.owner, err)
	}
	if !sawDone {
		n.peerErrors.Add(1)
		n.markFailure(g.owner, time.Now())
		return fmt.Errorf("cluster: forward %s: stream from %s truncated", g.workload, g.owner)
	}
	return nil
}
