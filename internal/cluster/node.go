package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/noreba-sim/noreba/internal/experiments"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/service"
)

// Default peer-RPC knobs. Result fetches are small (a Stats JSON is a few
// KiB) so the timeout mostly bounds connection establishment to a dead
// peer; forwarded sweep groups override it with the sweep's own deadline.
const (
	DefaultPeerTimeout = 2 * time.Second
	DefaultRetries     = 1 // retries beyond the first attempt
	DefaultBackoffBase = 250 * time.Millisecond
	maxBackoffShift    = 6 // caps backoff at base << 6 (16s at the default)
)

// maxPlanBlobBytes bounds one replicated sampling-plan blob in either
// direction (a plan file carries BBV columns plus two architectural
// snapshots per representative — typically KiBs to a few MiB).
const maxPlanBlobBytes int64 = 64 << 20

// Config assembles a replica's view of the fleet.
type Config struct {
	// Self is this replica's advertised base URL (e.g. http://10.0.0.1:8080).
	// It must appear verbatim in every replica's peer list — ring agreement
	// is textual.
	Self string
	// Peers are the other replicas' base URLs. Empty means a single-node
	// cluster: /sweep works, every key is owned locally.
	Peers []string
	// Runner executes simulations (shared with the interactive scheduler).
	Runner *experiments.Runner
	// Local is this replica's own shard of the result store; nil disables
	// persistence (every lookup below the peer layer misses).
	Local *service.DiskStore
	// Client issues peer RPCs; nil means a fresh http.Client. Per-request
	// timeouts come from PeerTimeout, not the client.
	Client *http.Client
	// PeerTimeout bounds one peer RPC attempt (0 = DefaultPeerTimeout).
	PeerTimeout time.Duration
	// Retries is how many times a failed peer RPC is retried before the
	// peer is marked down (<0 = none, 0 = DefaultRetries).
	Retries int
	// BackoffBase seeds the exponential re-probe delay for a down peer
	// (0 = DefaultBackoffBase). After f consecutive failures the peer is
	// skipped for base<<(f-1), capped at base<<6.
	BackoffBase time.Duration
	// VNodes is the ring's virtual nodes per member (0 = DefaultVNodes).
	VNodes int
	// SweepMax bounds concurrently streaming sweeps (0 = DefaultSweepMax).
	SweepMax int
	// MaxPoints bounds one sweep's expanded grid (0 = DefaultMaxPoints).
	MaxPoints int
}

// Node is one replica's cluster layer. It implements
// experiments.ResultStore: Get consults the local shard first, then the
// key's owning replica, so the runner's existing store machinery gets
// peer-aware lookups without knowing the cluster exists. All methods are
// safe for concurrent use.
type Node struct {
	self   string
	ring   *Ring
	runner *experiments.Runner
	local  *service.DiskStore
	client *http.Client

	timeout time.Duration
	retries int
	backoff time.Duration

	mu    sync.Mutex
	peers map[string]*peerState

	sweepSem  chan struct{}
	maxPoints int

	shardHits    atomic.Int64
	peerHits     atomic.Int64
	peerMisses   atomic.Int64
	forwarded    atomic.Int64
	peerErrors   atomic.Int64
	sweepsActive atomic.Int64
	sweepsTotal  atomic.Int64
}

// peerState tracks one peer's liveness: consecutive failures and the
// deadline before which the peer is skipped entirely.
type peerState struct {
	fails     int
	downUntil time.Time
}

// NewNode validates cfg and builds the replica's cluster layer.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self base URL is required")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("cluster: Runner is required")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	n := &Node{
		self:      cfg.Self,
		ring:      ring,
		runner:    cfg.Runner,
		local:     cfg.Local,
		client:    cfg.Client,
		timeout:   cfg.PeerTimeout,
		retries:   cfg.Retries,
		backoff:   cfg.BackoffBase,
		peers:     map[string]*peerState{},
		maxPoints: cfg.MaxPoints,
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	if n.timeout <= 0 {
		n.timeout = DefaultPeerTimeout
	}
	if n.retries == 0 {
		n.retries = DefaultRetries
	} else if n.retries < 0 {
		n.retries = 0
	}
	if n.backoff <= 0 {
		n.backoff = DefaultBackoffBase
	}
	if n.maxPoints <= 0 {
		n.maxPoints = DefaultMaxPoints
	}
	sweepMax := cfg.SweepMax
	if sweepMax <= 0 {
		sweepMax = DefaultSweepMax
	}
	n.sweepSem = make(chan struct{}, sweepMax)
	for _, m := range ring.Members() {
		if m != cfg.Self {
			n.peers[m] = &peerState{}
		}
	}
	return n, nil
}

// Self returns this replica's advertised base URL.
func (n *Node) Self() string { return n.self }

// Ring returns the fleet's (shared, immutable) hash ring.
func (n *Node) Ring() *Ring { return n.ring }

// healthy reports whether url may be contacted now (true for unknown URLs:
// only tracked peers ever back off).
func (n *Node) healthy(url string, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peers[url]
	return p == nil || now.After(p.downUntil) || now.Equal(p.downUntil)
}

func (n *Node) markFailure(url string, now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peers[url]
	if p == nil {
		return
	}
	p.fails++
	shift := p.fails - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	p.downUntil = now.Add(n.backoff << shift)
}

func (n *Node) markSuccess(url string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p := n.peers[url]; p != nil {
		p.fails = 0
		p.downUntil = time.Time{}
	}
}

// Get implements experiments.ResultStore: the local shard first (shardHit),
// then — if another replica owns the key and is not backed off — the owner
// over HTTP (peerHit / peerMiss). Any failure degrades to a miss, which
// makes the runner simulate locally: a dead owner costs duplicate work,
// never availability.
func (n *Node) Get(key string) (*pipeline.Stats, bool) {
	if n.local != nil {
		if st, ok := n.local.Get(key); ok {
			n.shardHits.Add(1)
			return st, true
		}
	}
	owner := n.ring.Owner(key)
	if owner == n.self {
		return nil, false
	}
	st, err := n.fetchResult(owner, key)
	switch {
	case err != nil:
		return nil, false // counted by fetchResult
	case st == nil:
		n.peerMisses.Add(1)
		return nil, false
	}
	n.peerHits.Add(1)
	if n.local != nil {
		n.local.Put(key, st) // cache the fetched copy; best-effort
	}
	return st, true
}

// Put implements experiments.ResultStore: the result is always written to
// the local shard (warm cache, and the degraded path depends on it), then
// replicated to the owning replica so the fleet's canonical copy lands on
// the right shard. Replication failures are non-fatal: the owner can
// re-simulate or fetch later.
func (n *Node) Put(key string, st *pipeline.Stats) error {
	var err error
	if n.local != nil {
		err = n.local.Put(key, st)
	}
	owner := n.ring.Owner(key)
	if owner != n.self {
		if n.pushResult(owner, key, st) == nil {
			n.forwarded.Add(1)
		}
	}
	return err
}

// GetBlob implements experiments.BlobStore with the same topology as Get:
// local shard first, then the owning replica. A fetched blob is cached into
// the local shard so repeated plan loads stop crossing the network. Any
// failure degrades to a miss — the runner rebuilds the plan locally.
func (n *Node) GetBlob(key string) ([]byte, bool) {
	if n.local != nil {
		if data, ok := n.local.GetBlob(key); ok {
			n.shardHits.Add(1)
			return data, true
		}
	}
	owner := n.ring.Owner(key)
	if owner == n.self {
		return nil, false
	}
	data, err := n.fetchBlob(owner, key)
	switch {
	case err != nil:
		return nil, false // counted by fetchBlob
	case data == nil:
		n.peerMisses.Add(1)
		return nil, false
	}
	n.peerHits.Add(1)
	if n.local != nil {
		n.local.PutBlob(key, data) // cache the fetched copy; best-effort
	}
	return data, true
}

// PutBlob implements experiments.BlobStore with the same topology as Put:
// always into the local shard, replicated to the owning replica so one
// replica's plan build amortises across the fleet.
func (n *Node) PutBlob(key string, data []byte) error {
	var err error
	if n.local != nil {
		err = n.local.PutBlob(key, data)
	}
	owner := n.ring.Owner(key)
	if owner != n.self {
		if n.pushBlob(owner, key, data) == nil {
			n.forwarded.Add(1)
		}
	}
	return err
}

// fetchResult GETs key from owner's local shard. A nil *Stats with nil
// error means the owner answered "not stored".
func (n *Node) fetchResult(owner, key string) (*pipeline.Stats, error) {
	var st *pipeline.Stats
	err := n.peerRPC(owner, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/cluster/result/"+key, nil)
		if err != nil {
			return err
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp.Body)
		switch resp.StatusCode {
		case http.StatusOK:
			var s pipeline.Stats
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				return fmt.Errorf("decode result: %w", err)
			}
			st = &s
			return nil
		case http.StatusNotFound:
			st = nil
			return nil
		default:
			return fmt.Errorf("peer status %s", resp.Status)
		}
	})
	return st, err
}

// pushResult PUTs key's result into owner's local shard.
func (n *Node) pushResult(owner, key string, st *pipeline.Stats) error {
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return n.peerRPC(owner, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, owner+"/cluster/result/"+key, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("peer status %s", resp.Status)
		}
		return nil
	})
}

// fetchBlob GETs a plan blob from owner's local shard. nil data with nil
// error means the owner answered "not stored".
func (n *Node) fetchBlob(owner, key string) ([]byte, error) {
	var data []byte
	err := n.peerRPC(owner, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/cluster/plan/"+key, nil)
		if err != nil {
			return err
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp.Body)
		switch resp.StatusCode {
		case http.StatusOK:
			data, err = io.ReadAll(io.LimitReader(resp.Body, maxPlanBlobBytes+1))
			if err != nil {
				return fmt.Errorf("read plan blob: %w", err)
			}
			if int64(len(data)) > maxPlanBlobBytes {
				return fmt.Errorf("plan blob exceeds %d bytes", int64(maxPlanBlobBytes))
			}
			return nil
		case http.StatusNotFound:
			data = nil
			return nil
		default:
			return fmt.Errorf("peer status %s", resp.Status)
		}
	})
	return data, err
}

// pushBlob PUTs a plan blob into owner's local shard.
func (n *Node) pushBlob(owner, key string, data []byte) error {
	return n.peerRPC(owner, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, owner+"/cluster/plan/"+key, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("peer status %s", resp.Status)
		}
		return nil
	})
}

// Ping probes url's /cluster/ping and updates its health state.
func (n *Node) Ping(url string) error {
	return n.peerRPC(url, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/cluster/ping", nil)
		if err != nil {
			return err
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("peer status %s", resp.Status)
		}
		return nil
	})
}

// CheckPeers pings every currently-contactable peer once; main's health
// loop calls it periodically so downed peers re-enter after recovery even
// with no traffic.
func (n *Node) CheckPeers() {
	now := time.Now()
	for url := range n.peers {
		if n.healthy(url, now) {
			n.Ping(url)
		}
	}
}

// peerRPC runs one peer call with the node's timeout, bounded retries and
// health bookkeeping. A peer in backoff fails immediately without a network
// attempt; exhausted retries mark the peer down and count a peerError.
func (n *Node) peerRPC(url string, call func(context.Context) error) error {
	now := time.Now()
	if !n.healthy(url, now) {
		return fmt.Errorf("cluster: peer %s is backed off", url)
	}
	var err error
	for attempt := 0; attempt <= n.retries; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), n.timeout)
		err = call(ctx)
		cancel()
		if err == nil {
			n.markSuccess(url)
			return nil
		}
	}
	n.peerErrors.Add(1)
	n.markFailure(url, time.Now())
	return fmt.Errorf("cluster: peer %s: %w", url, err)
}

// Metrics snapshots the replica's cluster counters for /metrics.
func (n *Node) Metrics() *service.ClusterMetrics {
	m := &service.ClusterMetrics{
		Node:         n.self,
		Peers:        []service.PeerStatus{},
		ShardHits:    n.shardHits.Load(),
		PeerHits:     n.peerHits.Load(),
		PeerMisses:   n.peerMisses.Load(),
		Forwarded:    n.forwarded.Load(),
		PeerErrors:   n.peerErrors.Load(),
		SweepsActive: n.sweepsActive.Load(),
		SweepsTotal:  n.sweepsTotal.Load(),
	}
	now := time.Now()
	for _, url := range n.ring.Members() {
		if url != n.self {
			m.Peers = append(m.Peers, service.PeerStatus{URL: url, Healthy: n.healthy(url, now)})
		}
	}
	return m
}

// drain discards and closes an HTTP response body so the connection can be
// reused.
func drain(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
