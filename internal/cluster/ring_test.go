package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func hexKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingAgreement: replicas that build the ring from the same member set
// — in any order, with duplicates — assign every key to the same owner.
// That textual agreement is the whole membership protocol.
func TestRingAgreement(t *testing.T) {
	a, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := hexKey(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
	if got := fmt.Sprint(a.Members()); got != "[http://n1 http://n2 http://n3]" {
		t.Fatalf("members = %s", got)
	}
}

// TestRingDistribution: at DefaultVNodes no member of a 3-replica ring
// owns a pathological share of sha256 keys.
func TestRingDistribution(t *testing.T) {
	members := []string{"http://n1", "http://n2", "http://n3"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.Owner(hexKey(i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 || share > 0.60 {
			t.Errorf("member %s owns %.1f%% of keys: %v", m, share*100, counts)
		}
	}
}

// TestRingSingleAndErrors: a 1-member ring owns everything; degenerate
// member lists are rejected.
func TestRingSingleAndErrors(t *testing.T) {
	r, err := NewRing([]string{"http://only"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner(hexKey(i)); got != "http://only" {
			t.Fatalf("owner = %s", got)
		}
	}
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Error("empty member accepted")
	}
}
