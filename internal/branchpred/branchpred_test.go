package branchpred

import (
	"math/rand"
	"testing"
)

// accuracy runs a sequence of (pc, outcome) through p and returns the
// fraction predicted correctly.
func accuracy(p Predictor, seq func(i int) (pc int, taken bool), n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		pc, taken := seq(i)
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(n)
}

func TestBimodalLearnsBias(t *testing.T) {
	acc := accuracy(NewBimodal(10), func(i int) (int, bool) { return 100, true }, 1000)
	if acc < 0.99 {
		t.Errorf("bimodal accuracy on constant branch = %.3f, want >= 0.99", acc)
	}
}

func TestBimodalOnAlternating(t *testing.T) {
	// Strictly alternating defeats a 2-bit counter (~50%) but not TAGE.
	accB := accuracy(NewBimodal(10), func(i int) (int, bool) { return 100, i%2 == 0 }, 2000)
	accT := accuracy(NewTAGE(), func(i int) (int, bool) { return 100, i%2 == 0 }, 2000)
	if accB > 0.8 {
		t.Errorf("bimodal on alternating = %.3f, expected poor", accB)
	}
	if accT < 0.95 {
		t.Errorf("TAGE on alternating = %.3f, want >= 0.95", accT)
	}
}

func TestTAGELearnsHistoryPattern(t *testing.T) {
	// Period-7 pattern requires history correlation.
	pattern := []bool{true, true, false, true, false, false, true}
	acc := accuracy(NewTAGE(), func(i int) (int, bool) { return 42, pattern[i%len(pattern)] }, 8000)
	if acc < 0.90 {
		t.Errorf("TAGE on periodic pattern = %.3f, want >= 0.90", acc)
	}
}

func TestTAGEBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: pure global
	// history correlation.
	r := rand.New(rand.NewSource(1))
	var lastA bool
	seq := func(i int) (int, bool) {
		if i%2 == 0 {
			lastA = r.Intn(2) == 0
			return 10, lastA
		}
		return 20, lastA
	}
	accB := accuracy(NewBimodal(12), seq, 20000)
	accT := accuracy(NewTAGE(), seq, 20000)
	if accT < accB {
		t.Errorf("TAGE (%.3f) should beat bimodal (%.3f) on correlated branches", accT, accB)
	}
	if accT < 0.70 {
		t.Errorf("TAGE on correlated = %.3f, want >= 0.70", accT)
	}
}

func TestLoopPredictorCatchesFixedTripCount(t *testing.T) {
	// A loop with a fixed trip count of 10: taken 9 times, then not taken,
	// repeatedly. TAGE-SC-L's loop component should nail the exits after
	// warm-up.
	trip := 10
	p := NewTAGE()
	warm := 8 * trip
	total := 100 * trip
	correctExits, exits := 0, 0
	for i := 0; i < total; i++ {
		taken := (i%trip != trip-1)
		pred := p.Predict(7)
		if i >= warm && !taken {
			exits++
			if pred == taken {
				correctExits++
			}
		}
		p.Update(7, taken)
	}
	if exits == 0 {
		t.Fatal("no exits observed")
	}
	if float64(correctExits)/float64(exits) < 0.9 {
		t.Errorf("loop exits predicted %d/%d, want >= 90%%", correctExits, exits)
	}
}

func TestLoopPredictorAdaptsToChangedTrip(t *testing.T) {
	l := newLoopPredictor()
	run := func(trip, reps int) {
		for r := 0; r < reps; r++ {
			for i := 0; i < trip-1; i++ {
				l.update(5, true)
			}
			l.update(5, false)
		}
	}
	run(4, 10)
	if v, pred := l.predict(5); !v || pred {
		// current = 0, trip = 4: next is taken → prediction should be
		// "taken" (true). valid and true expected.
		_ = pred
	}
	run(9, 10) // trip count changes; confidence must rebuild
	for i := 0; i < 8; i++ {
		l.update(5, true)
	}
	if v, pred := l.predict(5); v && pred {
		t.Error("loop predictor should predict exit at iteration 9 after re-learning")
	}
}

func TestStaticAndOracle(t *testing.T) {
	if !(Static{Taken: true}).Predict(1) || (Static{}).Predict(1) {
		t.Error("static predictor broken")
	}
	o := Oracle{Outcome: func(pc int) bool { return pc%2 == 0 }}
	if !o.Predict(4) || o.Predict(3) {
		t.Error("oracle predictor broken")
	}
}

func TestRASCallReturn(t *testing.T) {
	r := NewRAS(8)
	r.Push(100)
	r.Push(200)
	if p, hit := r.Pop(200); !hit || p != 200 {
		t.Errorf("Pop = %d,%v; want 200,true", p, hit)
	}
	if p, hit := r.Pop(100); !hit || p != 100 {
		t.Errorf("Pop = %d,%v; want 100,true", p, hit)
	}
	if _, hit := r.Pop(300); hit {
		t.Error("Pop on empty stack must miss")
	}
	if r.Hits != 2 || r.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", r.Hits, r.Misses)
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if p, _ := r.Pop(3); p != 3 {
		t.Errorf("top = %d, want 3", p)
	}
	if p, _ := r.Pop(2); p != 2 {
		t.Errorf("next = %d, want 2", p)
	}
	if _, hit := r.Pop(1); hit {
		t.Error("oldest entry should have been dropped")
	}
}

func TestTAGERandomIsNotCatastrophic(t *testing.T) {
	// On truly random outcomes nothing can do better than ~50%; make sure
	// the predictor doesn't crash or degrade far below chance.
	r := rand.New(rand.NewSource(2))
	acc := accuracy(NewTAGE(), func(i int) (int, bool) { return i % 37, r.Intn(2) == 0 }, 20000)
	if acc < 0.40 {
		t.Errorf("TAGE on random = %.3f, suspiciously low", acc)
	}
}

func BenchmarkTAGEPredictUpdate(b *testing.B) {
	p := NewTAGE()
	pattern := []bool{true, true, false, true, false, false, true, true}
	for i := 0; i < b.N; i++ {
		pc := (i * 13) % 4096
		taken := pattern[i%len(pattern)]
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

// refFold is the reference fold definition the packed word-parallel
// foldHistory must match bit-for-bit: walk the most recent n outcomes
// newest-first, accumulate bits-wide chunks MSB-first, XOR the chunks, the
// final partial chunk unshifted.
func refFold(outcomes []bool, n, bits int) uint32 {
	var f, acc uint32
	cnt := 0
	for i := 0; i < n; i++ {
		var b uint32
		if i < len(outcomes) && outcomes[len(outcomes)-1-i] {
			b = 1
		}
		acc = acc<<1 | b
		cnt++
		if cnt == bits {
			f ^= acc
			acc, cnt = 0, 0
		}
	}
	if cnt > 0 {
		f ^= acc
	}
	return f & (1<<bits - 1)
}

// TestFoldHistoryMatchesReference locks the packed fold to the reference
// definition across random histories for every (length, width) pair the
// predictor uses — the memoized folds must be invisible in predictions.
func TestFoldHistoryMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tg := NewTAGE()
	var outcomes []bool
	for step := 0; step < 2000; step++ {
		for _, n := range histLens {
			for _, bits := range []int{taggedBits, tagBits, tagBits - 1} {
				if got, want := tg.foldHistory(n, bits), refFold(outcomes, n, bits); got != want {
					t.Fatalf("step %d: foldHistory(%d, %d) = %#x, want %#x", step, n, bits, got, want)
				}
			}
		}
		pc := rng.Intn(1 << 14)
		taken := rng.Intn(3) > 0
		tg.Predict(pc)
		tg.Update(pc, taken)
		outcomes = append(outcomes, taken)
	}
}
