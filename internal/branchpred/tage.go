// Package branchpred implements the branch direction predictors used by the
// NOREBA evaluation: a TAGE-SC-L-style predictor (TAGE with geometric
// history lengths, a lightweight statistical corrector and a loop
// predictor), a simple bimodal predictor for comparison, and a
// return-address stack for indirect jump (jalr) targets.
package branchpred

import mathbits "math/bits"

// Predictor predicts conditional branch directions. Update must be called
// for every dynamic conditional branch in program order with the actual
// outcome; it also advances internal history.
type Predictor interface {
	Predict(pc int) bool
	Update(pc int, taken bool)
}

const (
	numTagged  = 6
	taggedBits = 9 // 512 entries per tagged table
	tagBits    = 9
	baseBits   = 12  // 4096-entry bimodal base
	maxHist    = 128 // packed global-history capacity; >= max(histLens)
)

var histLens = [numTagged]int{4, 8, 16, 32, 64, 128}

type taggedEntry struct {
	tag    uint32
	ctr    int8  // 3-bit signed counter: -4..3, taken when >= 0
	useful uint8 // 2-bit usefulness
}

// TAGE is a tagged-geometric-history-length predictor in the style of
// TAGE-SC-L (the paper's Table 2 predictor), with a loop predictor and a
// per-branch statistical-corrector bias table layered on top.
type TAGE struct {
	base   []int8 // bimodal 2-bit counters: -2..1, taken when >= 0
	tables [numTagged][]taggedEntry

	// Global branch history, packed: bit a of the 128-bit value hist[1]:hist[0]
	// is the outcome of the conditional branch retired a shifts ago (bit 0 of
	// hist[0] is the newest). The folded per-table indices and tags derived
	// from it are memoized per history generation — every index/tag lookup
	// between two history shifts (the frontend Predict, the commit-time
	// Update, and any allocation probes) sees the same history, so the folds
	// are computed once per retired branch instead of once per lookup.
	hist     [2]uint64
	histGen  uint64
	memoGen  uint64            // histGen the folds below were computed at
	foldIdx  [numTagged]uint32 // foldHistory(histLens[i], taggedBits)
	foldTagA [numTagged]uint32 // foldHistory(histLens[i], tagBits)
	foldTagB [numTagged]uint32 // foldHistory(histLens[i], tagBits-1)

	// Circular shift registers, one per memoized fold: csrX[i] holds the
	// unreversed positional fold Q(n, bits) = XOR over ages a < n of
	// h_a << (a mod bits), maintained O(1) per history shift (the Seznec
	// CSR formulation) instead of rescanned from the packed history. The
	// memoized fold values above derive from these in O(1) each — see
	// foldFromCSR. Clone's struct copy keeps them consistent with hist.
	csrIdx  [numTagged]uint32 // Q(histLens[i], taggedBits)
	csrTagA [numTagged]uint32 // Q(histLens[i], tagBits)
	csrTagB [numTagged]uint32 // Q(histLens[i], tagBits-1)

	useAlt int8 // 4-bit counter choosing alt prediction on weak providers

	loop *loopPredictor
	sc   []int8 // statistical-corrector bias counters: -16..15

	tick uint32 // periodic usefulness reset

	// prediction bookkeeping between Predict and Update
	lastPC       int
	provider     int // table index+1; 0 = base
	providerIdx  uint32
	altPred      bool
	providerPred bool
	providerWeak bool
	finalPred    bool
	tagePred     bool
	loopValid    bool
	loopPred     bool
	scUsed       bool
}

// NewTAGE returns a TAGE-SC-L-style predictor sized for an ~8KB budget.
func NewTAGE() *TAGE {
	t := &TAGE{
		base: make([]int8, 1<<baseBits),
		loop: newLoopPredictor(),
		sc:   make([]int8, 1<<10),
	}
	for i := range t.tables {
		t.tables[i] = make([]taggedEntry, 1<<taggedBits)
	}
	t.memoGen = ^uint64(0) // no folds memoized yet
	return t
}

// foldHistory folds the most recent n history bits into bits output bits:
// the bits are grouped newest-first into bits-wide chunks (newest bit at
// each chunk's MSB) and the chunks XORed together, the final partial chunk
// unshifted. Chunks are extracted word-parallel from the packed history;
// per-chunk bit order is restored with one Reverse32.
func (t *TAGE) foldHistory(n, bits int) uint32 {
	var raw uint32
	for pos := 0; pos+bits <= n; pos += bits {
		raw ^= t.histBits(pos, bits)
	}
	f := reverseBits(raw, bits)
	if cnt := n % bits; cnt > 0 {
		f ^= reverseBits(t.histBits(n-cnt, cnt), cnt)
	}
	return f
}

// histBits returns history bits at ages [pos, pos+width), age pos at bit 0.
func (t *TAGE) histBits(pos, width int) uint32 {
	var v uint64
	if pos >= 64 {
		v = t.hist[1] >> (pos - 64)
	} else {
		v = t.hist[0] >> pos
		if pos+width > 64 {
			v |= t.hist[1] << (64 - pos)
		}
	}
	return uint32(v) & (1<<width - 1)
}

// reverseBits reverses the low width bits of v.
func reverseBits(v uint32, width int) uint32 {
	return mathbits.Reverse32(v) >> (32 - width)
}

// rotl1 rotates the low width bits of v left by one.
func rotl1(v uint32, width int) uint32 {
	return (v<<1 | v>>(width-1)) & (1<<width - 1)
}

// shiftCSRs advances every circular shift register by one history position.
// Must be called immediately before the history shift that records taken:
// the outgoing bit of each window (age n-1) is read from the pre-shift
// history. Aging every bit by one rotates its chunk position (a mod bits)
// left by one; the incoming bit lands at position 0 and the outgoing bit —
// which the rotation wrapped to position n mod bits — is cancelled.
func (t *TAGE) shiftCSRs(taken bool) {
	var b uint32
	if taken {
		b = 1
	}
	for i, n := range histLens {
		out := t.histBits(n-1, 1)
		t.csrIdx[i] = rotl1(t.csrIdx[i], taggedBits) ^ out<<(n%taggedBits) ^ b
		t.csrTagA[i] = rotl1(t.csrTagA[i], tagBits) ^ out<<(n%tagBits) ^ b
		t.csrTagB[i] = rotl1(t.csrTagB[i], tagBits-1) ^ out<<(n%(tagBits-1)) ^ b
	}
}

// foldFromCSR derives foldHistory(n, bits) from the maintained CSR in O(1).
// The CSR accumulates chunks in positional (unreversed) bit order with the
// final partial chunk included at the low rem bits; foldHistory reverses
// each full chunk and XORs the partial chunk reversed within its own rem
// width. Splitting the partial chunk P back out of the CSR and re-adding it
// reversed-within-rem reconciles the two.
func (t *TAGE) foldFromCSR(csr uint32, n, bits int) uint32 {
	rem := n % bits
	if rem == 0 {
		return reverseBits(csr, bits)
	}
	p := t.histBits(n-rem, rem)
	return reverseBits(csr^p, bits) ^ reverseBits(p, rem)
}

// rebuildCSRs recomputes every circular shift register from the packed
// history via the reference fold. Slow path: only needed when hist is
// replaced wholesale rather than shifted (tests; Clone never needs it since
// the struct copy keeps CSRs and hist consistent).
func (t *TAGE) rebuildCSRs() {
	for i, n := range histLens {
		t.csrIdx[i] = t.rawFold(n, taggedBits)
		t.csrTagA[i] = t.rawFold(n, tagBits)
		t.csrTagB[i] = t.rawFold(n, tagBits-1)
	}
	t.memoGen = ^uint64(0)
}

// rawFold computes the positional (unreversed, partial-chunk-included) fold
// Q(n, bits) directly from the packed history.
func (t *TAGE) rawFold(n, bits int) uint32 {
	var q uint32
	for pos := 0; pos < n; pos += bits {
		w := bits
		if pos+w > n {
			w = n - pos
		}
		q ^= t.histBits(pos, w)
	}
	return q
}

// refreshFolds rederives the memoized folded indices and tags from the
// incrementally-maintained CSRs if the history has shifted since they were
// last computed. O(1) per fold.
func (t *TAGE) refreshFolds() {
	if t.memoGen == t.histGen {
		return
	}
	for i, n := range histLens {
		t.foldIdx[i] = t.foldFromCSR(t.csrIdx[i], n, taggedBits)
		t.foldTagA[i] = t.foldFromCSR(t.csrTagA[i], n, tagBits)
		t.foldTagB[i] = t.foldFromCSR(t.csrTagB[i], n, tagBits-1)
	}
	t.memoGen = t.histGen
}

func (t *TAGE) index(pc, table int) uint32 {
	t.refreshFolds()
	return (uint32(pc) ^ uint32(pc)>>taggedBits ^ t.foldIdx[table] ^ uint32(table)*0x9e37) & (1<<taggedBits - 1)
}

func (t *TAGE) tag(pc, table int) uint32 {
	t.refreshFolds()
	return (uint32(pc) ^ t.foldTagA[table] ^ t.foldTagB[table]<<1) & (1<<tagBits - 1)
}

func (t *TAGE) baseIdx(pc int) uint32 { return uint32(pc) & (1<<baseBits - 1) }

// Predict returns the predicted direction for the branch at pc.
func (t *TAGE) Predict(pc int) bool {
	t.lastPC = pc
	t.provider = 0
	t.altPred = t.base[t.baseIdx(pc)] >= 0
	t.providerPred = t.altPred
	t.providerWeak = t.base[t.baseIdx(pc)] == 0 || t.base[t.baseIdx(pc)] == -1

	alt := t.altPred
	for i := numTagged - 1; i >= 0; i-- {
		idx := t.index(pc, i)
		e := &t.tables[i][idx]
		if e.tag == t.tag(pc, i) {
			if t.provider == 0 {
				t.provider = i + 1
				t.providerIdx = idx
				t.providerPred = e.ctr >= 0
				t.providerWeak = e.ctr == 0 || e.ctr == -1
			} else {
				alt = e.ctr >= 0
				break
			}
		}
	}
	if t.provider != 0 {
		t.altPred = alt
	}

	pred := t.providerPred
	if t.provider != 0 && t.providerWeak && t.useAlt >= 0 {
		pred = t.altPred
	}
	t.tagePred = pred

	// Statistical corrector: override a weak TAGE prediction when the
	// per-branch bias is strong and disagrees.
	t.scUsed = false
	scIdx := uint32(pc) & (1<<10 - 1)
	if t.providerWeak {
		bias := t.sc[scIdx]
		if bias >= 8 && !pred {
			pred, t.scUsed = true, true
		} else if bias <= -9 && pred {
			pred, t.scUsed = false, true
		}
	}

	// Loop predictor: override when confident.
	t.loopValid, t.loopPred = t.loop.predict(pc)
	if t.loopValid {
		pred = t.loopPred
	}

	t.finalPred = pred
	return pred
}

// Update trains the predictor with the actual outcome of the most recently
// predicted branch at pc and shifts the global history.
func (t *TAGE) Update(pc int, taken bool) {
	if pc != t.lastPC {
		// Out-of-band update (e.g. warm-up): establish prediction state.
		t.Predict(pc)
	}

	t.loop.update(pc, taken)

	scIdx := uint32(pc) & (1<<10 - 1)
	t.sc[scIdx] = clamp8(t.sc[scIdx]+pm(taken), -16, 15)

	correct := t.tagePred == taken
	if t.provider != 0 && t.providerWeak {
		// Train the alt-choice counter.
		if t.altPred != t.providerPred {
			if t.altPred == taken {
				t.useAlt = clamp8(t.useAlt+1, -8, 7)
			} else {
				t.useAlt = clamp8(t.useAlt-1, -8, 7)
			}
		}
	}

	// Update provider counter.
	if t.provider == 0 {
		i := t.baseIdx(pc)
		t.base[i] = clamp8(t.base[i]+pm(taken), -2, 1)
	} else {
		e := &t.tables[t.provider-1][t.providerIdx]
		e.ctr = clamp8(e.ctr+pm(taken), -4, 3)
		if t.providerPred == taken && t.providerPred != t.altPred {
			if e.useful < 3 {
				e.useful++
			}
		} else if t.providerPred != taken && t.providerPred != t.altPred {
			if e.useful > 0 {
				e.useful--
			}
		}
	}

	// Allocate a new entry in a longer-history table on a misprediction.
	if !correct && t.provider <= numTagged {
		allocated := false
		for i := t.provider; i < numTagged && !allocated; i++ {
			idx := t.index(pc, i)
			e := &t.tables[i][idx]
			if e.useful == 0 {
				e.tag = t.tag(pc, i)
				e.ctr = pm(taken)
				allocated = true
			}
		}
		if !allocated {
			for i := t.provider; i < numTagged; i++ {
				idx := t.index(pc, i)
				if t.tables[i][idx].useful > 0 {
					t.tables[i][idx].useful--
				}
			}
		}
		t.tick++
		if t.tick&0x3ff == 0 {
			for i := range t.tables {
				for j := range t.tables[i] {
					t.tables[i][j].useful >>= 1
				}
			}
		}
	}

	// Shift global history; the CSRs shift first (they read each window's
	// outgoing bit from the pre-shift history).
	t.shiftCSRs(taken)
	t.hist[1] = t.hist[1]<<1 | t.hist[0]>>63
	t.hist[0] <<= 1
	if taken {
		t.hist[0] |= 1
	}
	t.histGen++
}

func pm(taken bool) int8 {
	if taken {
		return 1
	}
	return -1
}

func clamp8(v, lo, hi int8) int8 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// loopPredictor tracks loops with stable trip counts and predicts their
// exits.
type loopPredictor struct {
	entries [64]struct {
		pc        int
		tripCount int
		current   int
		conf      int
		valid     bool
	}
}

func newLoopPredictor() *loopPredictor { return &loopPredictor{} }

func (l *loopPredictor) slot(pc int) int { return pc & 63 }

// predict returns (valid, prediction). It predicts not-taken (loop exit)
// when the current iteration count reaches a confidently stable trip count.
func (l *loopPredictor) predict(pc int) (bool, bool) {
	e := &l.entries[l.slot(pc)]
	if !e.valid || e.pc != pc || e.conf < 3 || e.tripCount == 0 {
		return false, false
	}
	return true, e.current+1 < e.tripCount
}

func (l *loopPredictor) update(pc int, taken bool) {
	e := &l.entries[l.slot(pc)]
	if !e.valid || e.pc != pc {
		*e = struct {
			pc        int
			tripCount int
			current   int
			conf      int
			valid     bool
		}{pc: pc, valid: true}
	}
	if taken {
		e.current++
		if e.tripCount > 0 && e.current > e.tripCount {
			// Longer than remembered: not a stable loop (yet).
			e.conf = 0
			e.tripCount = 0
		}
		return
	}
	// Loop exit: current+1 iterations of "taken" ended.
	total := e.current + 1
	if total == e.tripCount {
		if e.conf < 7 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.tripCount = total
	}
	e.current = 0
}

// Bimodal is a classic 2-bit-counter direction predictor, used in tests and
// as a low-end baseline.
type Bimodal struct {
	table []int8
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal { return &Bimodal{table: make([]int8, 1<<bits)} }

func (b *Bimodal) idx(pc int) int { return pc & (len(b.table) - 1) }

// Predict returns the predicted direction for pc.
func (b *Bimodal) Predict(pc int) bool { return b.table[b.idx(pc)] >= 0 }

// Update trains the counter for pc.
func (b *Bimodal) Update(pc int, taken bool) {
	i := b.idx(pc)
	b.table[i] = clamp8(b.table[i]+pm(taken), -2, 1)
}

// Static always predicts a fixed direction; useful for experiments and
// tests.
type Static struct{ Taken bool }

// Predict returns the fixed direction.
func (s Static) Predict(int) bool { return s.Taken }

// Update is a no-op.
func (s Static) Update(int, bool) {}

// Oracle predicts perfectly; used for ideal-frontend experiments.
type Oracle struct{ Outcome func(pc int) bool }

// Predict consults the oracle function.
func (o Oracle) Predict(pc int) bool { return o.Outcome(pc) }

// Update is a no-op.
func (o Oracle) Update(int, bool) {}

// RAS is a return-address stack for predicting jalr targets.
type RAS struct {
	stack []int
	cap   int
	// Hits and Misses count target predictions.
	Hits, Misses int64
}

// NewRAS returns a return-address stack with the given capacity.
func NewRAS(capacity int) *RAS { return &RAS{cap: capacity} }

// Push records a call's return address.
func (r *RAS) Push(retPC int) {
	if len(r.stack) == r.cap {
		copy(r.stack, r.stack[1:])
		r.stack = r.stack[:len(r.stack)-1]
	}
	r.stack = append(r.stack, retPC)
}

// Pop predicts the target of a return, recording whether it matched actual.
func (r *RAS) Pop(actual int) (predicted int, hit bool) {
	if len(r.stack) == 0 {
		r.Misses++
		return -1, false
	}
	predicted = r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	if predicted == actual {
		r.Hits++
		return predicted, true
	}
	r.Misses++
	return predicted, false
}
