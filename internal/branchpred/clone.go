package branchpred

// Clone returns an independent deep copy of a predictor: training either
// copy never disturbs the other. The stateless predictors (Static, Oracle)
// are returned as-is, and a nil predictor (the pipeline's perfect-prediction
// mode) clones to nil. Sampled simulation uses this to capture a
// functionally-warmed predictor once and hand an independent copy to each
// detailed window.
func Clone(p Predictor) Predictor {
	switch t := p.(type) {
	case nil:
		return nil
	case *TAGE:
		cp := *t
		cp.base = append([]int8(nil), t.base...)
		for i := range cp.tables {
			cp.tables[i] = append([]taggedEntry(nil), t.tables[i]...)
		}
		lp := *t.loop
		cp.loop = &lp
		cp.sc = append([]int8(nil), t.sc...)
		return &cp
	case *Bimodal:
		cp := *t
		cp.table = append([]int8(nil), t.table...)
		return &cp
	default:
		// Static and Oracle carry no mutable state.
		return p
	}
}

// Clone returns an independent deep copy of the return-address stack,
// including its hit statistics.
func (r *RAS) Clone() *RAS {
	cp := *r
	cp.stack = append([]int(nil), r.stack...)
	return &cp
}
