package branchpred

import (
	"math/rand"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/workgen"
)

// refreshFoldsSlow recomputes the memoized folds the way the predictor did
// before the CSRs existed: a full foldHistory rescan of the packed history
// per (length, width) pair. Kept in the test as the oracle the incremental
// path must match bit-for-bit.
func (t *TAGE) refreshFoldsSlow() {
	for i, n := range histLens {
		t.foldIdx[i] = t.foldHistory(n, taggedBits)
		t.foldTagA[i] = t.foldHistory(n, tagBits)
		t.foldTagB[i] = t.foldHistory(n, tagBits-1)
	}
	t.memoGen = t.histGen
}

// TestIncrementalFoldsMatchRescan drives a long random branch stream and
// checks after every history shift that each CSR-derived fold equals the
// from-scratch foldHistory rescan, and that each CSR equals the rawFold
// rebuild — so rebuildCSRs (the restore path) and shiftCSRs (the hot path)
// agree on every reachable history.
func TestIncrementalFoldsMatchRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tg := NewTAGE()
	for step := 0; step < 5000; step++ {
		tg.refreshFolds()
		for i, n := range histLens {
			if got, want := tg.foldIdx[i], tg.foldHistory(n, taggedBits); got != want {
				t.Fatalf("step %d: foldIdx[%d] = %#x, rescan %#x", step, i, got, want)
			}
			if got, want := tg.foldTagA[i], tg.foldHistory(n, tagBits); got != want {
				t.Fatalf("step %d: foldTagA[%d] = %#x, rescan %#x", step, i, got, want)
			}
			if got, want := tg.foldTagB[i], tg.foldHistory(n, tagBits-1); got != want {
				t.Fatalf("step %d: foldTagB[%d] = %#x, rescan %#x", step, i, got, want)
			}
			if got, want := tg.csrIdx[i], tg.rawFold(n, taggedBits); got != want {
				t.Fatalf("step %d: csrIdx[%d] = %#x, rebuild %#x", step, i, got, want)
			}
			if got, want := tg.csrTagA[i], tg.rawFold(n, tagBits); got != want {
				t.Fatalf("step %d: csrTagA[%d] = %#x, rebuild %#x", step, i, got, want)
			}
			if got, want := tg.csrTagB[i], tg.rawFold(n, tagBits-1); got != want {
				t.Fatalf("step %d: csrTagB[%d] = %#x, rebuild %#x", step, i, got, want)
			}
		}
		pc := rng.Intn(1 << 14)
		taken := rng.Intn(3) > 0
		tg.Predict(pc)
		tg.Update(pc, taken)
	}
}

// TestIncrementalTAGEMatchesSlowPath runs two predictors in lockstep over
// the conditional-branch streams of real generated workloads: the reference
// predictor has its folds force-recomputed from scratch before every
// Predict (the pre-CSR behavior), the other uses the incremental path. Every
// per-branch prediction must agree — the CSR rewrite is observationally
// invisible.
func TestIncrementalTAGEMatchesSlowPath(t *testing.T) {
	for _, p := range workgen.Seeds(6) {
		prog, _, err := workgen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		img, err := prog.Layout()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := emulator.New(img).Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		slow, fast := NewTAGE(), NewTAGE()
		branches := 0
		for i := range tr.Insts {
			d := &tr.Insts[i]
			if !d.Inst.Op.IsCondBranch() {
				continue
			}
			branches++
			slow.refreshFoldsSlow() // pin the reference to the pre-CSR path
			ps := slow.Predict(d.PC)
			pf := fast.Predict(d.PC)
			if ps != pf {
				t.Fatalf("%s: branch %d (seq %d, pc %#x): slow predicts %v, incremental predicts %v",
					p.Name(), branches, d.Seq, d.PC, ps, pf)
			}
			slow.refreshFoldsSlow() // Update probes indices/tags too
			slow.Update(d.PC, d.Taken)
			fast.Update(d.PC, d.Taken)
		}
		if branches == 0 {
			t.Fatalf("%s: no conditional branches in trace", p.Name())
		}
	}
}
