package tracefile

import (
	"bytes"
	"errors"
	"testing"

	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/workgen"
)

// fuzzSeedBlob builds a small valid trace deterministically for the seed
// corpus (optionally annotated, optionally ending on a memory exception).
func fuzzSeedBlob(f *testing.F, seed uint64, withMeta bool, trap bool) []byte {
	f.Helper()
	p := workgen.FromSeed(seed)
	p.Iterations = 3
	prog, _, err := workgen.Generate(p)
	if err != nil {
		f.Fatal(err)
	}
	img, err := prog.Layout()
	if err != nil {
		f.Fatal(err)
	}
	src := emulator.NewSource(emulator.New(img), 1<<12)
	var buf bytes.Buffer
	if !trap {
		if err := Write(&buf, src, nil); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	tw, err := NewWriter(&buf, src.Name(), nil)
	if err != nil {
		f.Fatal(err)
	}
	var last emulator.DynInst
	for i := 0; i < 5; i++ {
		d, ok := src.Next()
		if !ok {
			f.Fatal("source too short")
		}
		last = d
		if err := tw.WriteInst(d); err != nil {
			f.Fatal(err)
		}
	}
	if err := tw.Close(&emulator.MemError{PC: last.PC, Seq: last.Seq + 1, Addr: -9}); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRoundTrip holds the reader's two contracts against arbitrary
// bytes: (1) a malformed input fails with a *FormatError naming an in-bounds
// offset — never a panic, never a silently short stream; (2) an input the
// reader accepts is canonically re-serializable — writing the decoded stream
// and reading it back reproduces the stream exactly, and a second rewrite is
// byte-identical to the first (the writer is a fixed point).
func FuzzTraceRoundTrip(f *testing.F) {
	valid := fuzzSeedBlob(f, 1, false, false)
	f.Add(valid)
	f.Add(fuzzSeedBlob(f, 2, false, true)) // ends on a memory exception
	f.Add(valid[:len(valid)-1])            // missing end marker
	f.Add(valid[:5])                       // header cut mid-name
	f.Add([]byte{})
	f.Add([]byte("NRTF"))
	f.Add([]byte("XXXX\x01\x00\x00"))                               // bad magic
	f.Add([]byte{'N', 'R', 'T', 'F', Version + 1, 0, 0})            // future version
	f.Add([]byte{'N', 'R', 'T', 'F', Version, 0xff, 0xff, 0x7f})    // hostile name length
	f.Add([]byte{'N', 'R', 'T', 'F', Version, 1, 'a', 1, 0xff, 1})  // hostile meta count
	f.Add([]byte{'N', 'R', 'T', 'F', Version, 0, 0, 0x7e})          // unknown record tag
	f.Add([]byte{'N', 'R', 'T', 'F', Version, 0, 0, 0x01, 0, 0, 0}) // zero seq delta

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := Open(bytes.NewReader(data))
		if err != nil {
			requireFormatError(t, err, data)
			return
		}
		var insts []emulator.DynInst
		for {
			d, ok := rd.Next()
			if !ok {
				break
			}
			insts = append(insts, d)
		}
		terminal := rd.Err()
		if terminal != nil {
			var me *emulator.MemError
			if errors.As(terminal, &me) {
				// A replayed trap end is a valid stream, re-serialized below.
			} else {
				requireFormatError(t, terminal, data)
				return
			}
		}

		// The reader accepted the stream: it must re-serialize losslessly.
		var first bytes.Buffer
		tw, err := NewWriter(&first, rd.Name(), rd.Meta())
		if err != nil {
			t.Fatalf("rewrite of accepted stream rejected: %v", err)
		}
		for _, d := range insts {
			if err := tw.WriteInst(d); err != nil {
				t.Fatalf("rewrite of accepted record rejected: %v (%+v)", err, d)
			}
		}
		if err := tw.Close(terminal); err != nil {
			t.Fatalf("rewrite close: %v", err)
		}

		rd2, err := Open(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reread of rewrite failed: %v", err)
		}
		for i := 0; ; i++ {
			d, ok := rd2.Next()
			if !ok {
				if i != len(insts) {
					t.Fatalf("reread delivered %d insts, want %d", i, len(insts))
				}
				break
			}
			if i >= len(insts) || d != insts[i] {
				t.Fatalf("reread inst %d differs", i)
			}
		}
		if (rd2.Err() == nil) != (terminal == nil) {
			t.Fatalf("reread terminal %v, want %v", rd2.Err(), terminal)
		}
		if rd2.Name() != rd.Name() || rd2.Counts() != rd.Counts() {
			t.Fatal("reread changed name or counts")
		}

		// Canonical fixed point: rewriting the reread stream is byte-identical.
		var second bytes.Buffer
		tw2, err := NewWriter(&second, rd.Name(), rd.Meta())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range insts {
			if err := tw2.WriteInst(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw2.Close(terminal); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("rewrite is not a fixed point")
		}
	})
}

func requireFormatError(t *testing.T, err error, data []byte) {
	t.Helper()
	fe, ok := AsFormatError(err)
	if !ok {
		t.Fatalf("malformed input failed with %T (%v), want *FormatError", err, err)
	}
	if fe.Offset < 0 || fe.Offset > int64(len(data)) {
		t.Fatalf("FormatError offset %d outside the %d-byte input", fe.Offset, len(data))
	}
}
