package tracefile

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/workgen"
)

func genSource(t *testing.T, seed uint64) (emulator.TraceSource, *compiler.Meta) {
	t.Helper()
	p := workgen.FromSeed(seed)
	p.Iterations = 30
	prog, _, err := workgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return emulator.NewSource(emulator.New(res.Image), 1<<20), res.Meta
}

func dump(t *testing.T, src emulator.TraceSource, meta *compiler.Meta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, src, meta); err != nil {
		t.Fatalf("dump: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTripStream: every record of a written trace replays identically,
// including Name, Counts and the clean terminal state.
func TestRoundTripStream(t *testing.T) {
	src, meta := genSource(t, 11)
	ref, refErr := emulator.Materialize(src)
	if refErr != nil {
		t.Fatal(refErr)
	}

	src2, _ := genSource(t, 11)
	blob := dump(t, src2, meta)

	rd, err := Open(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Name() != ref.Name {
		t.Errorf("name %q, want %q", rd.Name(), ref.Name)
	}
	got, gotErr := emulator.Materialize(rd)
	if gotErr != nil {
		t.Fatalf("replay terminal error: %v", gotErr)
	}
	if len(got.Insts) != len(ref.Insts) {
		t.Fatalf("replayed %d insts, want %d", len(got.Insts), len(ref.Insts))
	}
	for i := range ref.Insts {
		// Assembler labels are not part of the binary encoding (Target
		// PCs are); a replayed instruction carries an empty Label.
		want := ref.Insts[i]
		want.Inst.Label = ""
		if !reflect.DeepEqual(got.Insts[i], want) {
			t.Fatalf("inst %d differs:\n got %+v\nwant %+v", i, got.Insts[i], want)
		}
	}
	src3, _ := genSource(t, 11)
	want := emulator.Counts{}
	for {
		d, ok := src3.Next()
		if !ok {
			break
		}
		want.Add(&d)
	}
	if rd.Counts() != want {
		t.Errorf("counts %+v, want %+v", rd.Counts(), want)
	}
}

// TestRoundTripMeta: embedded branch metadata survives the trip.
func TestRoundTripMeta(t *testing.T) {
	src, meta := genSource(t, 4)
	if meta == nil || len(meta.Branches) == 0 {
		t.Fatal("sample compiled with no branch metadata")
	}
	blob := dump(t, src, meta)
	rd, err := Open(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd.Meta(), meta) {
		t.Errorf("meta differs:\n got %+v\nwant %+v", rd.Meta(), meta)
	}

	// nil meta stays nil.
	src2, _ := genSource(t, 4)
	rd2, err := Open(bytes.NewReader(dump(t, src2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if rd2.Meta() != nil {
		t.Error("plain trace replayed with non-nil meta")
	}
}

// TestRoundTripMemError: a stream ending on a memory exception replays the
// same *emulator.MemError.
func TestRoundTripMemError(t *testing.T) {
	src, _ := genSource(t, 2)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, src.Name(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var last emulator.DynInst
	for i := 0; i < 10; i++ {
		d, ok := src.Next()
		if !ok {
			t.Fatal("source too short")
		}
		last = d
		if err := tw.WriteInst(d); err != nil {
			t.Fatal(err)
		}
	}
	want := &emulator.MemError{PC: last.PC, Seq: last.Seq + 1, Addr: 0x7fff_ffff}
	if err := tw.Close(want); err != nil {
		t.Fatal(err)
	}

	rd, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("replayed %d insts, want 10", n)
	}
	var me *emulator.MemError
	if !errors.As(rd.Err(), &me) {
		t.Fatalf("terminal error %v is not a MemError", rd.Err())
	}
	if !reflect.DeepEqual(me, want) {
		t.Errorf("got %+v, want %+v", me, want)
	}
}

// TestRecorderTee: recording while consuming yields the same file as Write,
// and does not perturb what the consumer sees.
func TestRecorderTee(t *testing.T) {
	srcA, meta := genSource(t, 6)
	direct := dump(t, srcA, meta)

	srcB, _ := genSource(t, 6)
	var buf bytes.Buffer
	rec, err := NewRecorder(srcB, &buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	tr, terr := emulator.Materialize(rec)
	if terr != nil {
		t.Fatal(terr)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), direct) {
		t.Error("recorder output differs from direct Write")
	}
	if tr.Len() == 0 || rec.Name() != srcB.Name() {
		t.Error("recorder perturbed the consumer view")
	}
}

// TestRecorderEarlyStop: a consumer that stops early still leaves a valid,
// shorter trace on Close.
func TestRecorderEarlyStop(t *testing.T) {
	src, _ := genSource(t, 8)
	var buf bytes.Buffer
	rec, err := NewRecorder(src, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, ok := rec.Next(); !ok {
			t.Fatal("source too short")
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, gerr := emulator.Materialize(rd)
	if gerr != nil {
		t.Fatal(gerr)
	}
	if got.Len() != 25 {
		t.Errorf("replayed %d insts, want 25", got.Len())
	}
}

// TestWriterRejects: misuse fails loudly rather than producing a bad file.
func TestWriterRejects(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, strings.Repeat("x", maxNameLen+1), nil); err == nil {
		t.Error("oversized name accepted")
	}
	tw, err := NewWriter(&buf, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := genSource(t, 1)
	d, _ := src.Next()
	if err := tw.WriteInst(d); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteInst(d); err == nil {
		t.Error("non-increasing seq accepted")
	}
	if err := tw.Close(errors.New("not a mem error")); err == nil {
		t.Error("arbitrary terminal error accepted")
	}
	if err := tw.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteInst(d); err == nil {
		t.Error("WriteInst after Close accepted")
	}
	if err := tw.Close(nil); err == nil {
		t.Error("double Close accepted")
	}
}

// TestCorruptInputs: every malformed input fails with a *FormatError naming
// an offset — at Open for header damage, at the first affected read for
// record damage — and never panics or silently truncates.
func TestCorruptInputs(t *testing.T) {
	src, meta := genSource(t, 3)
	valid := dump(t, src, meta)

	openErr := func(t *testing.T, blob []byte) *FormatError {
		t.Helper()
		rd, err := Open(bytes.NewReader(blob))
		if err == nil {
			for {
				if _, ok := rd.Next(); !ok {
					break
				}
			}
			err = rd.Err()
		}
		fe, ok := AsFormatError(err)
		if !ok {
			t.Fatalf("error %v (%T) is not a *FormatError", err, err)
		}
		return fe
	}

	t.Run("empty", func(t *testing.T) {
		fe := openErr(t, nil)
		if fe.Offset != 0 {
			t.Errorf("offset %d, want 0", fe.Offset)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		blob := append([]byte(nil), valid...)
		blob[0] = 'X'
		openErr(t, blob)
	})
	t.Run("future version", func(t *testing.T) {
		blob := append([]byte(nil), valid...)
		blob[4] = Version + 1
		fe := openErr(t, blob)
		if !strings.Contains(fe.Msg, "version") {
			t.Errorf("message %q does not name the version", fe.Msg)
		}
	})
	t.Run("truncated every prefix", func(t *testing.T) {
		for n := 0; n < len(valid)-1; n++ {
			fe := openErr(t, valid[:n])
			if fe.Offset < 0 || fe.Offset > int64(n) {
				t.Fatalf("prefix %d: offset %d out of file", n, fe.Offset)
			}
		}
	})
	t.Run("hostile name length", func(t *testing.T) {
		blob := []byte(magic)
		blob = append(blob, Version, 0xff, 0xff, 0xff, 0xff, 0x7f)
		fe := openErr(t, blob)
		if !strings.Contains(fe.Msg, "name") {
			t.Errorf("message %q does not name the field", fe.Msg)
		}
	})
	t.Run("hostile branch count", func(t *testing.T) {
		blob := []byte(magic)
		blob = append(blob, Version, 1, 'a', 1, 0xff, 0xff, 0xff, 0xff, 0x7f)
		openErr(t, blob)
	})
	t.Run("unknown tag", func(t *testing.T) {
		var hdr bytes.Buffer
		tw, err := NewWriter(&hdr, "t", nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = tw
		blob := append(hdr.Bytes(), 0x7e)
		fe := openErr(t, blob)
		if !strings.Contains(fe.Msg, "tag") {
			t.Errorf("message %q does not name the tag", fe.Msg)
		}
	})
	t.Run("missing end marker", func(t *testing.T) {
		// Chop the 1-byte clean end marker off a valid file.
		fe := openErr(t, valid[:len(valid)-1])
		if !strings.Contains(fe.Msg, "end-of-stream") {
			t.Errorf("message %q does not say the end marker is missing", fe.Msg)
		}
	})
}

// TestFormatErrorShape: Error() names the offset; Unwrap surfaces the cause.
func TestFormatErrorShape(t *testing.T) {
	cause := errors.New("boom")
	fe := &FormatError{Offset: 42, Msg: "bad thing", Err: cause}
	if !strings.Contains(fe.Error(), "42") || !strings.Contains(fe.Error(), "bad thing") {
		t.Errorf("unhelpful message %q", fe.Error())
	}
	if !errors.Is(fe, cause) {
		t.Error("Unwrap lost the cause")
	}
	if _, ok := AsFormatError(io.EOF); ok {
		t.Error("AsFormatError matched a non-FormatError")
	}
}
