// Package tracefile is the versioned on-disk format for correct-path
// dynamic instruction traces: the stable interchange boundary between the
// functional emulator and any consumer of emulator.TraceSource — this
// repository's pipeline cores, external tools, or future simulator versions
// (the gem5 checkpoint/trace-replay workflow is the model, PAPERS.md).
//
// Layout (all multi-byte integers are varints; see DESIGN.md §12):
//
//	magic "NRTF" | u8 version
//	uvarint nameLen | name bytes
//	u8 hasMeta | [uvarint branchCount | per-branch records]
//	records: tag u8
//	  0x01 instruction: uvarint seqDelta (≥1) | uvarint pc |
//	       u8 op | u8 rd | u8 rs1 | u8 rs2 |
//	       varint imm | varint aux | varint target |
//	       u8 flags (1=Taken 2=Trap) |
//	       varint nextPCDelta (NextPC−(pc+1)) | varint addr
//	  0x02 clean end of stream
//	  0x03 end on memory exception: varint pc | varint seq | varint addr
//
// Instructions serialize field-by-field rather than through the flat 64-bit
// image word: the in-memory IR admits full 64-bit immediates (Li-expanded
// constants in several kernels) that the image encoding's 32-bit immediate
// cannot hold, and a trace of a valid run must never be unwritable.
//
// Resolved Target PCs survive; assembler label strings (cosmetic) do not.
//
// A trace without its end marker is truncated; the reader reports that (and
// every other corruption) as a *FormatError naming the byte offset, never a
// panic and never a silently short stream. Compiler branch metadata rides in
// the header so an annotated trace replays with full NOREBA commit-policy
// fidelity; plain traces (hasMeta 0) degrade to the unannotated behaviour,
// exactly as a nil Meta does everywhere else.
//
// Version-bump policy: any change to record layout, field meaning or varint
// framing increments Version; readers reject other versions outright rather
// than guessing (a replayed trace feeds golden-stats comparisons, so a
// misparse that "mostly works" is worse than a refusal).
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
)

// Version is the current format version. See the package comment for the
// bump policy.
const Version = 1

const magic = "NRTF"

// Record tags.
const (
	tagInst    = 0x01
	tagEnd     = 0x02
	tagEndTrap = 0x03
)

// Flag bits of an instruction record.
const (
	flagTaken = 1 << 0
	flagTrap  = 1 << 1
)

// Caps on hostile header fields: no well-formed trace comes near them, and
// they bound what a corrupt length prefix can make the reader allocate.
const (
	maxNameLen     = 1 << 12
	maxMetaEntries = 1 << 20
)

// FormatError is the typed diagnostic for a malformed trace file: the byte
// offset the corruption was detected at plus what was wrong. Every error
// path of Open and Reader reports one (possibly wrapping an underlying
// cause), so callers can distinguish "bad file" from I/O failure by type.
type FormatError struct {
	Offset int64
	Msg    string
	Err    error // underlying cause, if any
}

func (e *FormatError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("tracefile: offset %d: %s: %v", e.Offset, e.Msg, e.Err)
	}
	return fmt.Sprintf("tracefile: offset %d: %s", e.Offset, e.Msg)
}

func (e *FormatError) Unwrap() error { return e.Err }

// AsFormatError extracts a *FormatError from err, if it is one.
func AsFormatError(err error) (*FormatError, bool) {
	var fe *FormatError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// ---- writer ----

// Writer serialises a dynamic instruction stream. Create with NewWriter
// (which writes the header immediately), feed every delivered instruction to
// WriteInst in order, then Close with the stream's terminal error. Writers
// buffer internally; Close flushes.
type Writer struct {
	w       *bufio.Writer
	prevSeq int64
	ended   bool
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter writes the header (name plus optional branch metadata) and
// returns a writer for the records. meta may be nil for unannotated traces.
func NewWriter(w io.Writer, name string, meta *compiler.Meta) (*Writer, error) {
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("tracefile: name %d bytes exceeds %d", len(name), maxNameLen)
	}
	tw := &Writer{w: bufio.NewWriter(w), prevSeq: -1}
	tw.w.WriteString(magic)
	tw.w.WriteByte(Version)
	tw.uvarint(uint64(len(name)))
	tw.w.WriteString(name)
	if meta == nil {
		tw.w.WriteByte(0)
	} else {
		tw.w.WriteByte(1)
		pcs := make([]int, 0, len(meta.Branches))
		for pc := range meta.Branches {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		tw.uvarint(uint64(len(pcs)))
		for _, pc := range pcs {
			bm := meta.Branches[pc]
			var marked byte
			if bm.Marked {
				marked = 1
			}
			tw.uvarint(uint64(pc))
			tw.w.WriteByte(marked)
			tw.varint(bm.ID)
			tw.varint(int64(bm.ReconvPC)) // -1 when no reconvergence point
			tw.uvarint(uint64(bm.TakenLen))
			tw.uvarint(uint64(bm.FallLen))
			tw.uvarint(uint64(bm.StaticDeps))
		}
	}
	if err := tw.w.Flush(); err != nil {
		return nil, fmt.Errorf("tracefile: header: %w", err)
	}
	return tw, nil
}

func (tw *Writer) uvarint(v uint64) {
	n := binary.PutUvarint(tw.scratch[:], v)
	tw.w.Write(tw.scratch[:n])
}

func (tw *Writer) varint(v int64) {
	n := binary.PutVarint(tw.scratch[:], v)
	tw.w.Write(tw.scratch[:n])
}

// WriteInst appends one instruction record. Sequence numbers must be
// strictly increasing and the instruction's op and registers must be valid
// (every emulator-delivered instruction is).
func (tw *Writer) WriteInst(d emulator.DynInst) error {
	if tw.ended {
		return fmt.Errorf("tracefile: WriteInst after Close")
	}
	if d.Seq <= tw.prevSeq {
		return fmt.Errorf("tracefile: seq %d not above previous %d", d.Seq, tw.prevSeq)
	}
	in := d.Inst
	if !in.Op.Valid() {
		return fmt.Errorf("tracefile: seq %d: invalid op %d", d.Seq, in.Op)
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return fmt.Errorf("tracefile: seq %d: %v has an out-of-range register", d.Seq, in.Op)
	}
	tw.w.WriteByte(tagInst)
	tw.uvarint(uint64(d.Seq - tw.prevSeq))
	tw.uvarint(uint64(d.PC))
	tw.w.WriteByte(byte(in.Op))
	tw.w.WriteByte(byte(in.Rd))
	tw.w.WriteByte(byte(in.Rs1))
	tw.w.WriteByte(byte(in.Rs2))
	tw.varint(in.Imm)
	tw.varint(in.Aux)
	tw.varint(int64(in.Target))
	var flags byte
	if d.Taken {
		flags |= flagTaken
	}
	if d.Trap {
		flags |= flagTrap
	}
	tw.w.WriteByte(flags)
	tw.varint(int64(d.NextPC - (d.PC + 1)))
	tw.varint(d.Addr)
	tw.prevSeq = d.Seq
	return tw.flushErr()
}

// flushErr surfaces any buffered write error without forcing a flush.
func (tw *Writer) flushErr() error {
	if _, err := tw.w.Write(nil); err != nil {
		return fmt.Errorf("tracefile: write: %w", err)
	}
	return nil
}

// Close writes the end-of-stream marker and flushes. terminal is the
// source's Err() result: nil for a clean halt, or the *emulator.MemError of
// a faulting run (any other error kind is not representable in the format
// and is rejected). Close is idempotent in effect: a second call fails.
func (tw *Writer) Close(terminal error) error {
	if tw.ended {
		return fmt.Errorf("tracefile: already closed")
	}
	if terminal == nil {
		tw.ended = true
		tw.w.WriteByte(tagEnd)
	} else {
		var me *emulator.MemError
		if !errors.As(terminal, &me) {
			return fmt.Errorf("tracefile: terminal error %T is not a memory exception", terminal)
		}
		tw.ended = true
		tw.w.WriteByte(tagEndTrap)
		tw.varint(int64(me.PC))
		tw.varint(me.Seq)
		tw.varint(me.Addr)
	}
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("tracefile: close: %w", err)
	}
	return nil
}

// Write drains src to w in one call: the materializing path for callers that
// do not need to consume the stream while dumping it (the CLI's -trace-out
// wraps a Recorder instead). The source's terminal memory exception, if any,
// is recorded and also returned.
func Write(w io.Writer, src emulator.TraceSource, meta *compiler.Meta) error {
	tw, err := NewWriter(w, src.Name(), meta)
	if err != nil {
		return err
	}
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.WriteInst(d); err != nil {
			return err
		}
	}
	if err := tw.Close(src.Err()); err != nil {
		return err
	}
	return src.Err()
}

// ---- recorder ----

// Recorder tees a TraceSource to a Writer: consumers pull instructions as
// usual and every delivered record is serialised on the way through, so a
// live simulation can dump its trace at no extra emulation cost. When the
// source ends, the end marker is written automatically; call Close to
// confirm no write error was swallowed mid-run (a dump error never corrupts
// the simulation — the stream keeps flowing and the error is held for
// Close).
type Recorder struct {
	src      emulator.TraceSource
	tw       *Writer
	writeErr error
	ended    bool
}

// NewRecorder wraps src, writing the header immediately.
func NewRecorder(src emulator.TraceSource, w io.Writer, meta *compiler.Meta) (*Recorder, error) {
	tw, err := NewWriter(w, src.Name(), meta)
	if err != nil {
		return nil, err
	}
	return &Recorder{src: src, tw: tw}, nil
}

// Name implements emulator.TraceSource.
func (rec *Recorder) Name() string { return rec.src.Name() }

// Next delivers the underlying source's next instruction, recording it.
func (rec *Recorder) Next() (emulator.DynInst, bool) {
	d, ok := rec.src.Next()
	if !ok {
		if !rec.ended {
			rec.ended = true
			if err := rec.tw.Close(rec.src.Err()); err != nil && rec.writeErr == nil {
				rec.writeErr = err
			}
		}
		return d, false
	}
	if rec.writeErr == nil {
		if err := rec.tw.WriteInst(d); err != nil {
			rec.writeErr = err
		}
	}
	return d, true
}

// Err implements emulator.TraceSource, reporting the source's terminal
// error; dump failures are reported by Close, not here, so recording never
// changes what a consumer observes.
func (rec *Recorder) Err() error { return rec.src.Err() }

// Counts implements emulator.TraceSource.
func (rec *Recorder) Counts() emulator.Counts { return rec.src.Counts() }

// Close finalises the dump and returns the first write error, if any. If
// the consumer stopped early (the source is not exhausted), the records
// written so far are closed off as a valid — shorter — trace.
func (rec *Recorder) Close() error {
	if !rec.ended {
		rec.ended = true
		if err := rec.tw.Close(rec.src.Err()); err != nil && rec.writeErr == nil {
			rec.writeErr = err
		}
	}
	return rec.writeErr
}

// ---- reader ----

// countingReader tracks the byte offset for FormatError diagnostics.
type countingReader struct {
	r   *bufio.Reader
	pos int64
}

func (cr *countingReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.pos++
	}
	return b, err
}

func (cr *countingReader) readFull(p []byte) error {
	n, err := io.ReadFull(cr.r, p)
	cr.pos += int64(n)
	return err
}

// Reader replays a serialised trace as an emulator.TraceSource. Obtain one
// with Open; pass Meta() alongside it wherever the original compile
// result's metadata would go.
type Reader struct {
	cr     countingReader
	name   string
	meta   *compiler.Meta
	counts emulator.Counts

	prevSeq int64
	done    bool
	err     error            // terminal: *emulator.MemError or *FormatError
	d       emulator.DynInst // NextRef scratch: one record, reused per delivery
}

// Open parses the header and returns a reader positioned at the first
// record. Header corruption (bad magic, unknown version, truncation,
// oversized fields) fails here with a *FormatError; record corruption fails
// at the read that encounters it.
func Open(r io.Reader) (*Reader, error) {
	rd := &Reader{cr: countingReader{r: bufio.NewReader(r)}, prevSeq: -1}

	var hdr [5]byte
	if err := rd.cr.readFull(hdr[:]); err != nil {
		return nil, rd.corrupt("truncated header", err)
	}
	if string(hdr[:4]) != magic {
		return nil, rd.corrupt(fmt.Sprintf("bad magic %q", hdr[:4]), nil)
	}
	if hdr[4] != Version {
		return nil, rd.corrupt(fmt.Sprintf("unsupported version %d (reader speaks %d)", hdr[4], Version), nil)
	}

	nameLen, err := rd.uvarint("name length")
	if err != nil {
		return nil, err
	}
	if nameLen > maxNameLen {
		return nil, rd.corrupt(fmt.Sprintf("name length %d exceeds cap %d", nameLen, maxNameLen), nil)
	}
	name := make([]byte, nameLen)
	if err := rd.cr.readFull(name); err != nil {
		return nil, rd.corrupt("truncated name", err)
	}
	rd.name = string(name)

	hasMeta, err := rd.cr.ReadByte()
	if err != nil {
		return nil, rd.corrupt("truncated meta flag", err)
	}
	switch hasMeta {
	case 0:
	case 1:
		if err := rd.readMeta(); err != nil {
			return nil, err
		}
	default:
		return nil, rd.corrupt(fmt.Sprintf("bad meta flag %d", hasMeta), nil)
	}
	return rd, nil
}

func (rd *Reader) readMeta() error {
	n, err := rd.uvarint("branch count")
	if err != nil {
		return err
	}
	if n > maxMetaEntries {
		return rd.corrupt(fmt.Sprintf("branch count %d exceeds cap %d", n, maxMetaEntries), nil)
	}
	// Size hint capped independently of n: a hostile count must not buy a
	// huge allocation before the (truncated) records refute it.
	hint := n
	if hint > 1<<12 {
		hint = 1 << 12
	}
	meta := &compiler.Meta{Branches: make(map[int]*compiler.BranchMeta, hint)}
	prevPC := -1
	for i := uint64(0); i < n; i++ {
		pc, err := rd.uvarint("branch pc")
		if err != nil {
			return err
		}
		if int64(pc) <= int64(prevPC) {
			return rd.corrupt(fmt.Sprintf("branch pc %d not above previous %d", pc, prevPC), nil)
		}
		prevPC = int(pc)
		marked, err := rd.cr.ReadByte()
		if err != nil {
			return rd.corrupt("truncated branch record", err)
		}
		if marked > 1 {
			return rd.corrupt(fmt.Sprintf("bad marked flag %d", marked), nil)
		}
		id, err := rd.varint("branch id")
		if err != nil {
			return err
		}
		reconv, err := rd.varint("reconvergence pc")
		if err != nil {
			return err
		}
		takenLen, err := rd.uvarint("taken length")
		if err != nil {
			return err
		}
		fallLen, err := rd.uvarint("fall length")
		if err != nil {
			return err
		}
		deps, err := rd.uvarint("static deps")
		if err != nil {
			return err
		}
		meta.Branches[int(pc)] = &compiler.BranchMeta{
			PC: int(pc), Marked: marked == 1, ID: id, ReconvPC: int(reconv),
			TakenLen: int(takenLen), FallLen: int(fallLen), StaticDeps: int(deps),
		}
	}
	rd.meta = meta
	return nil
}

// Meta returns the embedded branch metadata, or nil for plain traces.
func (rd *Reader) Meta() *compiler.Meta { return rd.meta }

// Name implements emulator.TraceSource.
func (rd *Reader) Name() string { return rd.name }

// Counts implements emulator.TraceSource.
func (rd *Reader) Counts() emulator.Counts { return rd.counts }

// Err implements emulator.TraceSource: once Next has returned false, it
// reports the stream's terminal state — nil after a clean end marker, the
// replayed *emulator.MemError after a trap end marker, or a *FormatError if
// the file was corrupt or truncated.
func (rd *Reader) Err() error { return rd.err }

// Next implements emulator.TraceSource.
func (rd *Reader) Next() (emulator.DynInst, bool) {
	d, ok := rd.NextRef()
	if !ok {
		return emulator.DynInst{}, false
	}
	return *d, true
}

// NextRef implements emulator.RefSource: the returned record is the
// reader's decode scratch, valid until the next NextRef or Next call.
func (rd *Reader) NextRef() (*emulator.DynInst, bool) {
	if rd.done {
		return nil, false
	}
	d, err := rd.next()
	if err != nil {
		rd.done = true
		rd.err = err
		return nil, false
	}
	if rd.done { // end marker consumed
		return nil, false
	}
	rd.d = d
	rd.counts.Add(&rd.d)
	return &rd.d, true
}

func (rd *Reader) next() (emulator.DynInst, error) {
	tag, err := rd.cr.ReadByte()
	if err != nil {
		return emulator.DynInst{}, rd.corrupt("missing end-of-stream marker", err)
	}
	switch tag {
	case tagEnd:
		rd.done = true
		return emulator.DynInst{}, nil
	case tagEndTrap:
		pc, err := rd.varint("trap pc")
		if err != nil {
			return emulator.DynInst{}, err
		}
		seq, err := rd.varint("trap seq")
		if err != nil {
			return emulator.DynInst{}, err
		}
		addr, err := rd.varint("trap addr")
		if err != nil {
			return emulator.DynInst{}, err
		}
		rd.done = true
		rd.err = &emulator.MemError{PC: int(pc), Seq: seq, Addr: addr}
		return emulator.DynInst{}, nil
	case tagInst:
	default:
		return emulator.DynInst{}, rd.corrupt(fmt.Sprintf("unknown record tag %#x", tag), nil)
	}

	seqDelta, err := rd.uvarint("seq delta")
	if err != nil {
		return emulator.DynInst{}, err
	}
	if seqDelta == 0 || seqDelta > 1<<40 {
		return emulator.DynInst{}, rd.corrupt(fmt.Sprintf("bad seq delta %d", seqDelta), nil)
	}
	pc, err := rd.uvarint("pc")
	if err != nil {
		return emulator.DynInst{}, err
	}
	if pc > 1<<31 {
		return emulator.DynInst{}, rd.corrupt(fmt.Sprintf("pc %d out of range", pc), nil)
	}
	var fields [4]byte
	if err := rd.cr.readFull(fields[:]); err != nil {
		return emulator.DynInst{}, rd.corrupt("truncated record", err)
	}
	in := isa.Inst{Op: isa.Op(fields[0]), Rd: isa.Reg(fields[1]), Rs1: isa.Reg(fields[2]), Rs2: isa.Reg(fields[3])}
	if !in.Op.Valid() {
		return emulator.DynInst{}, rd.corrupt(fmt.Sprintf("invalid op %d", fields[0]), nil)
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() {
		return emulator.DynInst{}, rd.corrupt("out-of-range register", nil)
	}
	if in.Imm, err = rd.varint("immediate"); err != nil {
		return emulator.DynInst{}, err
	}
	if in.Aux, err = rd.varint("aux immediate"); err != nil {
		return emulator.DynInst{}, err
	}
	target, err := rd.varint("branch target")
	if err != nil {
		return emulator.DynInst{}, err
	}
	if target < 0 || target > 1<<31 {
		return emulator.DynInst{}, rd.corrupt(fmt.Sprintf("branch target %d out of range", target), nil)
	}
	in.Target = int(target)
	flags, err := rd.cr.ReadByte()
	if err != nil {
		return emulator.DynInst{}, rd.corrupt("truncated record", err)
	}
	if flags&^(flagTaken|flagTrap) != 0 {
		return emulator.DynInst{}, rd.corrupt(fmt.Sprintf("unknown flag bits %#x", flags), nil)
	}
	nextDelta, err := rd.varint("next-pc delta")
	if err != nil {
		return emulator.DynInst{}, err
	}
	addr, err := rd.varint("address")
	if err != nil {
		return emulator.DynInst{}, err
	}

	d := emulator.DynInst{
		Seq:    rd.prevSeq + int64(seqDelta),
		PC:     int(pc),
		Inst:   in,
		Taken:  flags&flagTaken != 0,
		NextPC: int(pc) + 1 + int(nextDelta),
		Addr:   addr,
		Trap:   flags&flagTrap != 0,
	}
	rd.prevSeq = d.Seq
	return d, nil
}

func (rd *Reader) uvarint(what string) (uint64, error) {
	start := rd.cr.pos
	v, err := binary.ReadUvarint(&rd.cr)
	if err != nil {
		return 0, &FormatError{Offset: start, Msg: "bad " + what, Err: err}
	}
	return v, nil
}

func (rd *Reader) varint(what string) (int64, error) {
	start := rd.cr.pos
	v, err := binary.ReadVarint(&rd.cr)
	if err != nil {
		return 0, &FormatError{Offset: start, Msg: "bad " + what, Err: err}
	}
	return v, nil
}

func (rd *Reader) corrupt(msg string, cause error) error {
	if cause == io.EOF || cause == io.ErrUnexpectedEOF {
		cause = nil
		msg += " (truncated file)"
	}
	return &FormatError{Offset: rd.cr.pos, Msg: msg, Err: cause}
}
