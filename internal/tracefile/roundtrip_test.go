package tracefile_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/tracefile"
	"github.com/noreba-sim/noreba/internal/workgen"
	"github.com/noreba-sim/noreba/internal/workloads"
)

const rtBudget = 1 << 18

// simulate runs one pipeline core over src and returns its statistics.
func simulate(t *testing.T, src emulator.TraceSource, meta *compiler.Meta) *pipeline.Stats {
	t.Helper()
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = pipeline.Noreba
	st, err := pipeline.NewCoreFromSource(cfg, src, meta).Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// roundTrip asserts the ISSUE's interchange contract for one compiled
// program: emulate → write trace → replay through the reader must yield
// Stats bit-identical to driving the live emulator directly. Everything a
// Stats holds — cycle count, per-branch stall tables, window peaks — must
// survive the serialisation, or a trace-driven experiment would silently
// disagree with a live one.
func roundTrip(t *testing.T, res *compiler.Result) {
	live := simulate(t, emulator.NewSource(emulator.New(res.Image), rtBudget), res.Meta)

	var buf bytes.Buffer
	if err := tracefile.Write(&buf, emulator.NewSource(emulator.New(res.Image), rtBudget), res.Meta); err != nil {
		t.Fatalf("write: %v", err)
	}
	rd, err := tracefile.Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	replayed := simulate(t, rd, rd.Meta())

	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("replayed Stats differ from live emulation\n live: %+v\nreplay: %+v", live, replayed)
	}
}

// TestRoundTripStatsWorkloads: every registered seed workload (curated AND
// pinned generated) replays from a trace file with bit-identical Stats.
func TestRoundTripStatsWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			scale := w.DefaultScale / 4
			if scale < 2 {
				scale = 2
			}
			res, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, res)
		})
	}
}

// TestRoundTripStatsGenerated: ten fresh generator points (beyond the pinned
// registry entries) hold the same contract, so the interchange guarantee
// covers the character space, not just the curated corners.
func TestRoundTripStatsGenerated(t *testing.T) {
	for _, p := range workgen.Seeds(10) {
		p := p
		p.Iterations = 40
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			prog, _, err := workgen.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := compiler.Compile(prog, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, res)
		})
	}
}
