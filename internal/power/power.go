// Package power is an activity-based power and area model in the spirit of
// McPAT (the paper's §5 methodology): every microarchitectural structure in
// Figure 16's legend has a per-access dynamic energy, a leakage power and an
// area, each derived from simple RAM/CAM/FIFO scaling laws; a simulation's
// activity counters then yield total power and per-structure breakdowns.
//
// Absolute values are synthetic (they are calibrated to reproduce relative
// magnitudes, not watts); the paper's Figures 10 and 16 report normalised
// power and area, which this model regenerates.
package power

import (
	"math"

	"github.com/noreba-sim/noreba/internal/pipeline"
)

// Structure identifies one block of the core (Figure 16's legend).
type Structure string

// Structures in the order the paper's Figure 16 legend lists them.
const (
	ICache    Structure = "icache"
	BPred     Structure = "bpred"
	IDecode   Structure = "idecode"
	IALU      Structure = "ialu"
	FPALU     Structure = "fpalu"
	CmplxALU  Structure = "cmplxalu"
	DCache    Structure = "dcache"
	LSU       Structure = "lsu"
	Rename    Structure = "rename"
	RegFile   Structure = "regf"
	Scheduler Structure = "scheduler"
	ROB       Structure = "rob/SELECTIVE ROB"
	CDB       Structure = "cdb"
	Tables    Structure = "CQT+BIT+DCT"
	CIT       Structure = "CIT"
)

// AllStructures lists every structure in display order.
var AllStructures = []Structure{
	ICache, BPred, IDecode, IALU, FPALU, CmplxALU, DCache, LSU,
	Rename, RegFile, Scheduler, ROB, CDB, Tables, CIT,
}

// ramEnergy returns the per-access dynamic energy (arbitrary units) of a
// RAM array with the given entry count and entry width in bits: the usual
// sqrt(entries) wordline/bitline growth times width.
func ramEnergy(entries, widthBits int) float64 {
	if entries < 1 {
		entries = 1
	}
	return 0.02 * math.Sqrt(float64(entries)) * float64(widthBits) / 64
}

// camEnergy returns per-search energy of a CAM: every entry participates.
func camEnergy(entries, widthBits int) float64 {
	return 0.02 * float64(entries) * float64(widthBits) / 64 * 0.35
}

// fifoEnergy returns per-access energy of a FIFO: only head/tail pointers
// and one entry move, so it is nearly size-independent.
func fifoEnergy(widthBits int) float64 {
	return 0.02 * float64(widthBits) / 64
}

// ramLeak and ramArea follow linear capacity laws.
func ramLeak(entries, widthBits int) float64 {
	return 0.00002 * float64(entries) * float64(widthBits)
}

func ramArea(entries, widthBits int) float64 {
	return 0.0001 * float64(entries) * float64(widthBits)
}

// Breakdown holds per-structure power (and area) for one run.
type Breakdown struct {
	Power map[Structure]float64
	Area  map[Structure]float64
}

// TotalPower sums the per-structure power.
func (b Breakdown) TotalPower() float64 {
	t := 0.0
	for _, v := range b.Power {
		t += v
	}
	return t
}

// TotalArea sums the per-structure area.
func (b Breakdown) TotalArea() float64 {
	t := 0.0
	for _, v := range b.Area {
		t += v
	}
	return t
}

// Estimate computes the power/area breakdown of a finished simulation.
// The commit-structure modelling follows the config's policy: the in-order
// baseline uses a RAM ROB with head-pointer commit; NOREBA uses the same
// ROB′ RAM plus FIFO commit queues and the direct-mapped CQT/BIT/DCT and
// CIT tables; the non-Noreba OoO policies are charged for an associative
// (collapsing-style) ROB, which is what makes them power-hungry (§7).
func Estimate(cfg pipeline.Config, st *pipeline.Stats) Breakdown {
	cycles := float64(st.Cycles)
	if cycles == 0 {
		cycles = 1
	}
	perCycle := func(events int64, energy float64) float64 {
		return float64(events) * energy / cycles
	}

	b := Breakdown{Power: map[Structure]float64{}, Area: map[Structure]float64{}}
	add := func(s Structure, dyn, leak, area float64) {
		b.Power[s] += dyn + leak
		b.Area[s] += area
	}

	fetched := st.Committed + st.FetchedSetup + st.CITDrops

	// Front end.
	icacheEntries := cfg.L1ISize / 64
	add(ICache, perCycle(fetched/4+1, ramEnergy(icacheEntries, 512)),
		ramLeak(icacheEntries, 512), ramArea(icacheEntries, 512))
	add(BPred, perCycle(st.Branches, ramEnergy(4096, 12)),
		ramLeak(4096+6*512, 14), ramArea(4096+6*512, 14))
	add(IDecode, perCycle(fetched, 0.01), 0.005, 0.4)

	// Execution units: charge per instruction class (approximate mix).
	intOps := st.Committed - st.Loads - st.Stores - st.Branches
	add(IALU, perCycle(intOps, 0.03), 0.01, 0.8)
	add(FPALU, perCycle(intOps/8+1, 0.06), 0.012, 1.2)
	add(CmplxALU, perCycle(intOps/32+1, 0.08), 0.008, 0.6)

	// Memory system.
	dcacheEntries := cfg.L1DSize / 64
	add(DCache, perCycle(st.L1DAccesses+st.PrefetchIssued, ramEnergy(dcacheEntries, 512)),
		ramLeak(dcacheEntries, 512), ramArea(dcacheEntries, 512))
	add(LSU, perCycle(st.Loads+st.Stores, camEnergy(cfg.LQSize+cfg.SQSize, 64)),
		ramLeak(cfg.LQSize+cfg.SQSize, 96), ramArea(cfg.LQSize+cfg.SQSize, 96))

	// Rename, register file, scheduler.
	add(Rename, perCycle(st.Committed, ramEnergy(64, 10)), ramLeak(64, 20), ramArea(64, 20))
	add(RegFile, perCycle(3*st.Committed, ramEnergy(cfg.PhysRegs(), 64)),
		ramLeak(cfg.PhysRegs(), 64), ramArea(cfg.PhysRegs(), 64))
	add(Scheduler, perCycle(2*st.Committed, camEnergy(cfg.IQSize, 20)),
		ramLeak(cfg.IQSize, 40), ramArea(cfg.IQSize, 40))

	// Common data bus / bypass.
	add(CDB, perCycle(st.Committed, 0.015), 0.006, 0.5)

	// Commit structures: the interesting part.
	const robWidth = 76 // per-entry bits (PC, dest, flags, BranchID)
	switch cfg.Policy {
	case pipeline.Noreba:
		// ROB′: plain RAM with FIFO access at both ends.
		add(ROB, perCycle(2*st.Committed, ramEnergy(cfg.ROBSize, robWidth)),
			ramLeak(cfg.ROBSize, robWidth), ramArea(cfg.ROBSize, robWidth))
		// Commit queues: FIFOs — nearly size-independent per access.
		sel := cfg.Selective
		cqEntries := sel.PRCQSize + sel.NumBRCQs*sel.BRCQSize
		add(ROB, perCycle(2*st.Steered, fifoEnergy(robWidth)),
			ramLeak(cqEntries, robWidth), ramArea(cqEntries, robWidth))
		// Direct-mapped tables.
		tblEntries := sel.BITSize + sel.CQTSize + 1 // +1: the single-entry DCT
		add(Tables, perCycle(st.Committed, ramEnergy(tblEntries, 40)),
			ramLeak(tblEntries, 40), ramArea(tblEntries, 40))
		add(CIT, perCycle(st.CITAllocs+st.CITDrops, ramEnergy(sel.CITSize, 56)),
			ramLeak(sel.CITSize, 56), ramArea(sel.CITSize, 56))
	case pipeline.InOrder:
		add(ROB, perCycle(2*st.Committed, ramEnergy(cfg.ROBSize, robWidth)),
			ramLeak(cfg.ROBSize, robWidth), ramArea(cfg.ROBSize, robWidth))
	default:
		// Collapsing/associative ROB: every commit searches the window.
		add(ROB, perCycle(2*st.Committed, camEnergy(cfg.ROBSize, robWidth)),
			1.6*ramLeak(cfg.ROBSize, robWidth), 1.9*ramArea(cfg.ROBSize, robWidth))
	}

	return b
}
