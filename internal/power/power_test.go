package power

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/workloads"
)

func runFor(t *testing.T, policy pipeline.PolicyKind) (pipeline.Config, *pipeline.Stats) {
	t.Helper()
	w, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(w.Build(150), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emulator.New(res.Image).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = policy
	st, err := pipeline.NewCore(cfg, tr, res.Meta).Run()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, st
}

func TestNorebaOverheadIsSmall(t *testing.T) {
	cfgI, stI := runFor(t, pipeline.InOrder)
	cfgN, stN := runFor(t, pipeline.Noreba)
	base := Estimate(cfgI, stI)
	noreba := Estimate(cfgN, stN)

	overhead := noreba.TotalPower()/base.TotalPower() - 1
	if overhead < 0 || overhead > 0.15 {
		t.Errorf("NOREBA power overhead = %.1f%%, want small positive (paper: ~4%%)", overhead*100)
	}
	areaOver := noreba.TotalArea()/base.TotalArea() - 1
	if areaOver < 0 || areaOver > 0.20 {
		t.Errorf("NOREBA area overhead = %.1f%%, want small positive (paper: ~8%%)", areaOver*100)
	}
}

func TestCollapsingROBIsExpensive(t *testing.T) {
	cfgN, stN := runFor(t, pipeline.Noreba)
	cfgC, stC := runFor(t, pipeline.NonSpecOoO)
	noreba := Estimate(cfgN, stN)
	collapsing := Estimate(cfgC, stC)
	if collapsing.Power[ROB] <= noreba.Power[ROB] {
		t.Errorf("collapsing/associative ROB power (%.3f) must exceed the Selective ROB's (%.3f)",
			collapsing.Power[ROB], noreba.Power[ROB])
	}
	if collapsing.Area[ROB] <= noreba.Area[ROB] {
		t.Errorf("collapsing ROB area must exceed the Selective ROB's")
	}
}

func TestNewStructuresArePresentOnlyForNoreba(t *testing.T) {
	cfgI, stI := runFor(t, pipeline.InOrder)
	cfgN, stN := runFor(t, pipeline.Noreba)
	base := Estimate(cfgI, stI)
	noreba := Estimate(cfgN, stN)
	if base.Power[Tables] != 0 || base.Power[CIT] != 0 {
		t.Error("baseline must not pay for CQT/BIT/DCT or CIT")
	}
	if noreba.Power[Tables] <= 0 || noreba.Power[CIT] <= 0 {
		t.Error("NOREBA must pay for its new structures")
	}
	// They must be cheap relative to the whole core (direct-mapped, small).
	frac := (noreba.Power[Tables] + noreba.Power[CIT]) / noreba.TotalPower()
	if frac > 0.05 {
		t.Errorf("new tables consume %.1f%% of core power; they are small direct-mapped structures", frac*100)
	}
}

func TestQueueScalingIsGentle(t *testing.T) {
	// Figure 10: growing the BR-CQs barely moves power (FIFO access energy
	// is size independent; only leakage/area grow).
	cfg, st := runFor(t, pipeline.Noreba)
	small := Estimate(cfg, st)
	cfg.Selective.NumBRCQs = 4
	cfg.Selective.BRCQSize = 32
	big := Estimate(cfg, st)
	growth := big.TotalPower()/small.TotalPower() - 1
	if growth < 0 || growth > 0.05 {
		t.Errorf("8×→128-entry BR-CQ power growth = %.2f%%, want gentle", growth*100)
	}
}

func TestBreakdownCoversLegend(t *testing.T) {
	cfg, st := runFor(t, pipeline.Noreba)
	b := Estimate(cfg, st)
	for _, s := range AllStructures {
		if _, ok := b.Power[s]; !ok {
			t.Errorf("structure %s missing from breakdown", s)
		}
	}
	if b.TotalPower() <= 0 || b.TotalArea() <= 0 {
		t.Error("non-positive totals")
	}
}

func TestScalingLaws(t *testing.T) {
	if ramEnergy(4096, 64) <= ramEnergy(64, 64) {
		t.Error("RAM energy must grow with entries")
	}
	if camEnergy(224, 64) <= ramEnergy(224, 64) {
		t.Error("CAM search must cost more than a RAM access at equal size")
	}
	if fifoEnergy(64) >= ramEnergy(224, 64) {
		t.Error("FIFO access must be cheaper than a big RAM access")
	}
}
