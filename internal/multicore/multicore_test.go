package multicore

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/pipeline"
	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/workloads"
)

func inputFor(t *testing.T, name string, scale int) (CoreInput, *emulator.Trace) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emulator.New(res.Image).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return CoreInput{Source: tr.Source(), Meta: res.Meta}, tr
}

func coreCfg(policy pipeline.PolicyKind) pipeline.Config {
	cfg := pipeline.SkylakeConfig()
	cfg.Policy = policy
	return cfg
}

func TestSharedLLCContention(t *testing.T) {
	// Two memory-hungry kernels sharing a 1MB L3 must miss it more than
	// each running with a private L3.
	in0, _ := inputFor(t, "mcf", 200)
	in1, _ := inputFor(t, "omnetpp", 200)
	inputs := []CoreInput{in0, in1}

	private, err := New(Config{Core: coreCfg(pipeline.Noreba), AddressSpaceStride: 1 << 32}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	statsPriv, err := private.Run()
	if err != nil {
		t.Fatal(err)
	}

	in20, tr0 := inputFor(t, "mcf", 200)
	in21, tr1 := inputFor(t, "omnetpp", 200)
	inputs2 := []CoreInput{in20, in21}
	traces2 := []*emulator.Trace{tr0, tr1}
	shared, err := New(Config{Core: coreCfg(pipeline.Noreba), ShareLLC: true, AddressSpaceStride: 1 << 32}, inputs2)
	if err != nil {
		t.Fatal(err)
	}
	statsShared, err := shared.Run()
	if err != nil {
		t.Fatal(err)
	}

	var privMiss, sharedMiss int64
	for i := range statsPriv {
		privMiss += statsPriv[i].MemAccesses
		sharedMiss += statsShared[i].MemAccesses
	}
	if sharedMiss < privMiss {
		t.Errorf("shared LLC produced fewer memory accesses (%d) than private (%d)", sharedMiss, privMiss)
	}
	// Conservation still holds per core.
	for i, st := range statsShared {
		want := int64(traces2[i].Len()) - traces2[i].Setup
		if st.Committed != want {
			t.Errorf("core %d committed %d, want %d", i, st.Committed, want)
		}
	}
}

// barrierProgram builds a program with `phases` fenced phases whose
// per-phase work differs by core (the `work` parameter), so an unsynced run
// would drift apart.
func barrierProgram(t *testing.T, name string, phases, work int) CoreInput {
	t.Helper()
	b := program.NewBuilder(name)
	b.Label("entry").Li(isa.A0, int64(phases))
	b.Label("phase")
	for i := 0; i < work; i++ {
		b.Addi(isa.A2, isa.A2, 1)
	}
	b.Fence()
	b.Addi(isa.A0, isa.A0, -1).Bnez(isa.A0, "phase")
	b.Label("done").Halt()
	res, err := compiler.Compile(b.MustBuild(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emulator.New(res.Image).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return CoreInput{Source: tr.Source(), Meta: res.Meta}
}

func TestBarriersKeepCoresInStep(t *testing.T) {
	// Core 0 does 5x the per-phase work of core 1; with barriers enabled,
	// neither core may get a whole barrier ahead.
	inputs := []CoreInput{
		barrierProgram(t, "heavy", 20, 50),
		barrierProgram(t, "light", 20, 10),
	}
	sys, err := New(Config{Core: coreCfg(pipeline.Noreba), Barriers: true}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sys.MaxBarrierSkew() > 1 {
		t.Errorf("barrier skew %d; cores drifted apart", sys.MaxBarrierSkew())
	}
	// The light core must have been held back to roughly the heavy core's
	// pace: its cycle count approaches the heavy one's.
	heavy, light := stats[0].Cycles, stats[1].Cycles
	if light*10 < heavy*9 {
		t.Errorf("light core (%d cycles) not held back to heavy core's pace (%d)", light, heavy)
	}
	for i, st := range stats {
		if st.FencesCommitted != 20 {
			t.Errorf("core %d committed %d fences, want 20", i, st.FencesCommitted)
		}
	}
}

func TestBarrierCountMismatchRejected(t *testing.T) {
	inputs := []CoreInput{
		barrierProgram(t, "a", 3, 5),
		barrierProgram(t, "b", 4, 5),
	}
	if _, err := New(Config{Core: coreCfg(pipeline.Noreba), Barriers: true}, inputs); err == nil {
		t.Error("mismatched fence counts accepted")
	}
}

func TestUnsyncedFencesRunFree(t *testing.T) {
	// Without Barriers, each core's fences retire independently and the
	// light core finishes much earlier.
	inputs := []CoreInput{
		barrierProgram(t, "heavy", 20, 50),
		barrierProgram(t, "light", 20, 10),
	}
	sys, err := New(Config{Core: coreCfg(pipeline.Noreba)}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].Cycles >= stats[0].Cycles {
		t.Errorf("light core (%d cycles) should finish before heavy (%d) without barriers",
			stats[1].Cycles, stats[0].Cycles)
	}
}

func TestSingleCoreMatchesPipelineRun(t *testing.T) {
	// A one-core system must agree with Core.Run exactly.
	in, _ := inputFor(t, "dijkstra", 20)
	sys, err := New(Config{Core: coreCfg(pipeline.Noreba)}, []CoreInput{in})
	if err != nil {
		t.Fatal(err)
	}
	sysStats, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}

	in2, tr2 := inputFor(t, "dijkstra", 20)
	direct, err := pipeline.NewCore(coreCfg(pipeline.Noreba), tr2, in2.Meta).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sysStats[0].Cycles != direct.Cycles {
		t.Errorf("system run %d cycles, direct run %d", sysStats[0].Cycles, direct.Cycles)
	}
}

func TestEmptySystemRejected(t *testing.T) {
	if _, err := New(Config{Core: coreCfg(pipeline.InOrder)}, nil); err == nil {
		t.Error("empty system accepted")
	}
}

// TestSanitizedSystemClean: the whole barrier-synchronised system runs
// violation-free with the pipeline sanitizer on, and Run surfaces a core's
// sanity error instead of finishing.
func TestSanitizedSystemClean(t *testing.T) {
	inputs := []CoreInput{
		barrierProgram(t, "a", 8, 30),
		barrierProgram(t, "b", 8, 12),
	}
	cfg := coreCfg(pipeline.Noreba)
	cfg.Sanitize = true
	sys, err := New(Config{Core: cfg, Barriers: true, ShareLLC: true}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("sanitized multicore run failed: %v", err)
	}
}
