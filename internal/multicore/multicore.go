// Package multicore models the §4.5 deployment of NOREBA: several cores,
// each running its own trace through the cycle-level pipeline, sharing a
// last-level cache, and synchronising at fence barriers. The paper argues
// NOREBA needs three properties to be multicore-safe — the compiler pass
// operates only between synchronisation barriers, memory barriers commit
// in order, and TLB checks precede commit-queue steering — all of which the
// single-core model already provides; this package adds the system-level
// wiring (shared LLC contention and inter-core barrier timing) so those
// claims can be exercised.
//
// Data values are not exchanged between cores (each trace is precomputed),
// so the model is a timing study: it answers how shared-LLC contention and
// barrier waits affect NOREBA versus in-order commit, for DRF programs.
package multicore

import (
	"fmt"

	"github.com/noreba-sim/noreba/internal/cache"
	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// CoreInput is one core's program: its dynamic instruction stream and branch
// metadata. Any TraceSource works — a live emulator (memory stays bounded by
// each core's in-flight window) or a materialized Trace via Trace.Source.
type CoreInput struct {
	Source emulator.TraceSource
	Meta   *compiler.Meta
}

// Config describes the system.
type Config struct {
	// Core is the per-core configuration (policy, sizes, prefetcher).
	Core pipeline.Config
	// ShareLLC gives every core private L1/L2 slices backed by one shared
	// L3; false gives fully private hierarchies (the scaling baseline).
	ShareLLC bool
	// Barriers, when true, synchronises the cores at their fences: the
	// n-th fence of any core commits only after every core has reached its
	// n-th fence. Traces must then contain the same number of fences.
	Barriers bool
	// AddressSpaceStride offsets core i's data addresses by i×stride,
	// modelling separate processes in distinct physical pages (so a shared
	// LLC exhibits contention rather than accidental sharing). Zero means
	// all cores share one address space (threads of one process).
	AddressSpaceStride int64
}

// System is a set of cores stepping in lockstep.
type System struct {
	cfg   Config
	cores []*pipeline.Core
	// arrived[i] is the number of barriers core i has reached (its fence
	// was commit-ready except for the gate).
	arrived []int64
	// maxSkew records the largest observed difference in barrier progress
	// between the fastest and slowest core — the barrier-tightness witness
	// used by tests.
	maxSkew int64
	cycles  int64
}

// New builds a system of len(inputs) cores.
func New(cfg Config, inputs []CoreInput) (*System, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("multicore: no cores")
	}
	srcs := make([]emulator.TraceSource, len(inputs))
	for i, in := range inputs {
		srcs[i] = in.Source
	}
	if cfg.Barriers {
		// Validating barrier counts requires seeing each whole stream up
		// front, so barrier mode materializes the inputs and replays them;
		// unsynchronised systems keep streaming.
		fences := -1
		for i, src := range srcs {
			tr, err := emulator.Materialize(src)
			if err != nil {
				return nil, fmt.Errorf("multicore: core %d stream: %w", i, err)
			}
			n := countFences(tr)
			if fences == -1 {
				fences = n
			} else if n != fences {
				return nil, fmt.Errorf("multicore: core %d has %d fences, core 0 has %d — barrier counts must match", i, n, fences)
			}
			srcs[i] = tr.Source()
		}
	}

	s := &System{cfg: cfg, arrived: make([]int64, len(inputs))}

	// Shared last-level cache: one L3 object referenced by every core's
	// hierarchy. Single-threaded lockstep stepping keeps this safe.
	var sharedL3 *cache.Cache
	if cfg.ShareLLC {
		sharedL3 = cache.New("L3", cfg.Core.L3Size, 16, cfg.Core.L3Lat)
	}

	for i, in := range inputs {
		src := srcs[i]
		if off := cfg.AddressSpaceStride * int64(i); off != 0 {
			src = &offsetSource{src: src, delta: off}
		}
		coreCfg := cfg.Core
		if cfg.Barriers {
			id := i
			coreCfg.FenceGate = func(n int64) bool { return s.barrierGate(id, n) }
		}
		core := pipeline.NewCoreFromSource(coreCfg, src, in.Meta)
		if cfg.ShareLLC {
			d := &cache.Hierarchy{
				Levels: []*cache.Cache{
					cache.New("L1d", coreCfg.L1DSize, coreCfg.CacheWays, coreCfg.L1Lat),
					cache.New("L2", coreCfg.L2Size, coreCfg.CacheWays, coreCfg.L2Lat),
					sharedL3,
				},
				MemLat: coreCfg.MemLat,
			}
			ic := &cache.Hierarchy{
				Levels: []*cache.Cache{
					cache.New("L1i", coreCfg.L1ISize, coreCfg.CacheWays, coreCfg.L1Lat),
					cache.New("L2i", coreCfg.L2Size, coreCfg.CacheWays, coreCfg.L2Lat),
					sharedL3,
				},
				MemLat: coreCfg.MemLat,
			}
			core.UseMemory(d, ic)
		}
		s.cores = append(s.cores, core)
	}
	return s, nil
}

// offsetSource shifts every memory address in the stream by delta (a
// distinct physical address space for one core) without copying the stream.
type offsetSource struct {
	src   emulator.TraceSource
	delta int64
}

func (s *offsetSource) Name() string { return s.src.Name() }

func (s *offsetSource) Next() (emulator.DynInst, bool) {
	d, ok := s.src.Next()
	if ok && d.Inst.Op.IsMem() {
		d.Addr += s.delta
	}
	return d, ok
}

func (s *offsetSource) Err() error              { return s.src.Err() }
func (s *offsetSource) Counts() emulator.Counts { return s.src.Counts() }

func countFences(tr *emulator.Trace) int {
	n := 0
	for i := range tr.Insts {
		if tr.Insts[i].Inst.Op.IsFence() {
			n++
		}
	}
	return n
}

// barrierGate implements arrive/release barrier timing: calling the gate
// marks the core as having reached barrier n; the fence retires once every
// core has reached it.
func (s *System) barrierGate(core int, n int64) bool {
	if s.arrived[core] < n+1 {
		s.arrived[core] = n + 1
	}
	min, max := s.arrived[0], s.arrived[0]
	for _, a := range s.arrived[1:] {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if skew := max - min; skew > s.maxSkew {
		s.maxSkew = skew
	}
	return min >= n+1
}

// maxSystemCycles bounds lockstep runs against barrier deadlock bugs.
const maxSystemCycles = int64(1) << 30

// Run steps every core in lockstep until all traces have fully committed,
// then returns per-core statistics.
func (s *System) Run() ([]*pipeline.Stats, error) {
	for {
		done := true
		for i, c := range s.cores {
			if !c.Done() {
				c.Step()
				done = false
			}
			if err := c.SanityErr(); err != nil {
				return nil, fmt.Errorf("multicore: core %d: %w", i, err)
			}
		}
		if done {
			break
		}
		s.cycles++
		if s.cycles > maxSystemCycles {
			return nil, fmt.Errorf("multicore: exceeded %d cycles (barrier deadlock?)", maxSystemCycles)
		}
	}
	out := make([]*pipeline.Stats, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.Finalize()
	}
	return out, nil
}

// Cycles returns the system's lockstep cycle count after Run.
func (s *System) Cycles() int64 { return s.cycles }

// MaxBarrierSkew returns the largest observed difference in barrier
// progress between cores (0 or 1 for a correct barrier: no core may be a
// whole barrier ahead of another while both are still arriving).
func (s *System) MaxBarrierSkew() int64 { return s.maxSkew }
