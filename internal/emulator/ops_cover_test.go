package emulator

import (
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/isa"
)

// TestRemainingOps drives the opcode cases the main tests leave out:
// unsigned compares, shift-register forms, FP min/max/compare edges, store
// faults, and the CIT/fence no-ops.
func TestRemainingOps(t *testing.T) {
	m, _, err := run(t, `
main:
	li   a0, -1
	li   a1, 1
	sltu a2, a0, a1     # unsigned: ffff... > 1 -> 0
	sltu a3, a1, a0     # -> 1
	bltu a1, a0, l1
l1:
	bgeu a0, a1, l2
l2:
	li   a4, 3
	sll  a5, a1, a4
	srl  s2, a5, a4
	sra  s3, a0, a4     # arithmetic shift of -1 stays -1
	lui  s4, 2
	srai s5, s4, 1
	fcvt.d.l f0, a1
	fcvt.d.l f1, a4
	fmin f2, f0, f1
	fmax f3, f0, f1
	fle  s6, f0, f1
	feq  s7, f0, f0
	fsub f4, f1, f0
	fence
	getCITEntry s8, 0
	setCITEntry s8, 0
	halt
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		r    isa.Reg
		want int64
	}{
		{isa.A2, 0}, {isa.A3, 1}, {isa.A5, 8}, {isa.S2, 1}, {isa.S3, -1},
		{isa.S4, 2 << 12}, {isa.S5, 1 << 12}, {isa.S6, 1}, {isa.S7, 1},
	}
	for _, c := range checks {
		if got := m.IntRegs[c.r]; got != c.want {
			t.Errorf("%v = %d, want %d", c.r, got, c.want)
		}
	}
	if m.FPRegs[2] != 1 || m.FPRegs[3] != 3 {
		t.Errorf("fmin/fmax = %v/%v, want 1/3", m.FPRegs[2], m.FPRegs[3])
	}
}

func TestStoreFault(t *testing.T) {
	m, _, err := run(t, `
.range 0x100 0x200
main:
	li s0, 0x100
	sw s0, 0x1000(s0)
	halt
`, 10)
	if err == nil {
		t.Fatal("store outside valid range did not fault")
	}
	if !strings.Contains(err.Error(), "memory exception") {
		t.Errorf("unexpected error %v", err)
	}
	if m.Halted() {
		t.Error("machine halted through a fault")
	}
}

func TestFPStoreFault(t *testing.T) {
	_, _, err := run(t, `
.range 0x100 0x200
main:
	li s0, 0x100
	fsw f0, 0x1000(s0)
	halt
`, 10)
	if err == nil {
		t.Fatal("FP store outside valid range did not fault")
	}
}

func TestFPLoadFault(t *testing.T) {
	_, _, err := run(t, `
.range 0x100 0x200
main:
	li s0, 0x100
	flw f0, 0x1000(s0)
	halt
`, 10)
	if err == nil {
		t.Fatal("FP load outside valid range did not fault")
	}
}

func TestStepAfterHaltFails(t *testing.T) {
	m, _, err := run(t, "main:\n\thalt\n", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("Step after halt succeeded")
	}
}

func TestMemErrorMessage(t *testing.T) {
	e := &MemError{PC: 3, Seq: 17, Addr: 0xbad}
	if !strings.Contains(e.Error(), "0xbad") || !strings.Contains(e.Error(), "pc 3") {
		t.Errorf("uninformative error: %s", e.Error())
	}
}

func TestImageAccessor(t *testing.T) {
	m, _, err := run(t, "main:\n\thalt\n", 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Image() == nil || len(m.Image().Insts) != 1 {
		t.Error("Image accessor broken")
	}
}

func TestRunOffTextEndHalts(t *testing.T) {
	// A program without halt simply runs off the end.
	m, tr, err := run(t, "main:\n\taddi a0, a0, 1\n", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Error("machine not halted after running off the end")
	}
	if tr.Len() != 1 {
		t.Errorf("trace length %d, want 1", tr.Len())
	}
}
