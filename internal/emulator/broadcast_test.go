package emulator

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/noreba-sim/noreba/internal/isa"
)

// synthTrace builds a materialized trace of n fake dynamic instructions
// cycling through the opcode classes Counts distinguishes, so per-view
// counts exercise every bucket.
func synthTrace(n int) *Trace {
	ops := []isa.Op{isa.OpAdd, isa.OpBeq, isa.OpLw, isa.OpSw, isa.OpSetBranchID, isa.OpSetDependency}
	tr := &Trace{Name: "synth"}
	for i := 0; i < n; i++ {
		d := DynInst{
			Seq:    int64(i),
			PC:     i % 97,
			Inst:   isa.Inst{Op: ops[i%len(ops)]},
			Taken:  i%5 == 0,
			NextPC: (i + 1) % 97,
			Addr:   int64(i * 8),
		}
		tr.Insts = append(tr.Insts, d)
		tr.count(d)
	}
	return tr
}

// drain consumes a source to exhaustion, returning the delivered stream.
func drain(src TraceSource) []DynInst {
	var out []DynInst
	for {
		d, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

// TestBroadcastMatchesSolo fans a stream out to several concurrent
// consumers and checks each sees exactly the solo stream — no drops, no
// duplicates, no reordering — with counts identical to a solo source.
func TestBroadcastMatchesSolo(t *testing.T) {
	tr := synthTrace(5000)
	want := drain(tr.Source())
	soloCounts := func() Counts {
		s := tr.Source()
		drain(s)
		return s.Counts()
	}()

	for _, skew := range []int{1, 7, 64, 100000} {
		b := NewBroadcast(tr.Source(), skew)
		const n = 4
		views := make([]*BusView, n)
		for i := range views {
			views[i] = b.View()
		}
		got := make([][]DynInst, n)
		var wg sync.WaitGroup
		for i := range views {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = drain(views[i])
			}(i)
		}
		wg.Wait()
		for i := range views {
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("skew %d: view %d stream diverged (got %d records, want %d)",
					skew, i, len(got[i]), len(want))
			}
			if c := views[i].Counts(); c != soloCounts {
				t.Errorf("skew %d: view %d counts %+v, want %+v", skew, i, c, soloCounts)
			}
			if err := views[i].Err(); err != nil {
				t.Errorf("skew %d: view %d err = %v, want nil", skew, i, err)
			}
		}
		if p := b.PeakRecords(); p > skew {
			t.Errorf("skew %d: peak buffered records %d exceeds the bound", skew, p)
		}
	}
}

// TestBroadcastSkewBlocks checks the skew bound actually throttles: with
// a slow consumer parked, a fast one can run exactly maxSkew records ahead
// and then blocks until the laggard advances.
func TestBroadcastSkewBlocks(t *testing.T) {
	tr := synthTrace(1000)
	const skew = 32
	b := NewBroadcast(tr.Source(), skew)
	fast, slow := b.View(), b.View()

	var n atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := fast.Next(); !ok {
				return
			}
			n.Add(1)
		}
	}()

	// Without the slow consumer moving, the fast one must stop at the bound.
	deadline := time.Now().Add(10 * time.Second)
	for n.Load() < int64(skew) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // would overshoot here if unbounded
	if got := n.Load(); got != int64(skew) {
		t.Fatalf("fast consumer delivered %d records against a parked sibling, want %d", got, skew)
	}

	// Advancing the laggard to the end unblocks the rest of the stream.
	go drain(slow)
	<-done
	if got := n.Load(); got != 1000 {
		t.Fatalf("fast consumer finished with %d records, want 1000", got)
	}
	if p := b.PeakRecords(); p > skew {
		t.Errorf("peak %d exceeds skew bound %d", p, skew)
	}
}

// TestBroadcastCloseUnblocks checks a consumer that abandons the stream
// stops holding the others back once it closes its view.
func TestBroadcastCloseUnblocks(t *testing.T) {
	tr := synthTrace(500)
	b := NewBroadcast(tr.Source(), 16)
	quitter, runner := b.View(), b.View()

	// The quitter reads a few records and detaches.
	for i := 0; i < 3; i++ {
		if _, ok := quitter.Next(); !ok {
			t.Fatal("short stream")
		}
	}
	quitter.Close()
	if _, ok := quitter.Next(); ok {
		t.Error("closed view still delivering")
	}
	if err := quitter.Err(); err != nil {
		t.Errorf("closed view err = %v, want nil", err)
	}

	// The survivor must reach the end alone.
	if got := len(drain(runner)); got != 500 {
		t.Fatalf("surviving view saw %d records, want 500", got)
	}
}

// TestBroadcastViewAfterStartPanics pins the all-views-before-first-Next
// contract.
func TestBroadcastViewAfterStartPanics(t *testing.T) {
	b := NewBroadcast(synthTrace(10).Source(), 8)
	v := b.View()
	v.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("View after consumption started did not panic")
		}
	}()
	b.View()
}

// TestBroadcastPropagatesSourceError checks a live-machine terminal error
// (here simulated by a faulting source) reaches every view that consumed
// the stream to its end, exactly as a solo source reports it.
func TestBroadcastPropagatesSourceError(t *testing.T) {
	src := &faultingSource{tr: synthTrace(40)}
	b := NewBroadcast(src, 8)
	v1, v2 := b.View(), b.View()
	var wg sync.WaitGroup
	var got1, got2 []DynInst
	wg.Add(2)
	go func() { defer wg.Done(); got1 = drain(v1) }()
	go func() { defer wg.Done(); got2 = drain(v2) }()
	wg.Wait()
	if len(got1) != 40 || len(got2) != 40 {
		t.Fatalf("views saw %d/%d records, want 40 each", len(got1), len(got2))
	}
	if v1.Err() == nil || v2.Err() == nil {
		t.Error("terminal source error not propagated to all views")
	}
}

// faultingSource delivers a trace then ends with a terminal error, like a
// machineSource whose run ends on a memory exception.
type faultingSource struct {
	tr  *Trace
	pos int
}

func (s *faultingSource) Name() string { return s.tr.Name }
func (s *faultingSource) Next() (DynInst, bool) {
	if s.pos >= len(s.tr.Insts) {
		return DynInst{}, false
	}
	d := s.tr.Insts[s.pos]
	s.pos++
	return d, true
}
func (s *faultingSource) Err() error     { return &MemError{Addr: 4, PC: 2} }
func (s *faultingSource) Counts() Counts { return Counts{} }
