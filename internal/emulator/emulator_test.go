package emulator

import (
	"errors"
	"testing"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

func run(t *testing.T, src string, max int64) (*Machine, *Trace, error) {
	t.Helper()
	p, err := program.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	m := New(img)
	tr, err := m.Run(max)
	return m, tr, err
}

func TestALUBasics(t *testing.T) {
	m, _, err := run(t, `
main:
	li   a0, 6
	li   a1, 7
	mul  a2, a0, a1
	add  a3, a2, a0
	sub  a4, a3, a1
	xor  a5, a0, a1
	and  s2, a0, a1
	or   s3, a0, a1
	slli s4, a0, 4
	srli s5, s4, 2
	slt  s6, a0, a1
	div  s7, a2, a1
	rem  s8, a3, a1
	halt
`, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		r    isa.Reg
		want int64
	}{
		{isa.A2, 42}, {isa.A3, 48}, {isa.A4, 41}, {isa.A5, 1},
		{isa.S2, 6}, {isa.S3, 7}, {isa.S4, 96}, {isa.S5, 24},
		{isa.S6, 1}, {isa.S7, 6}, {isa.S8, 6},
	}
	for _, c := range checks {
		if got := m.IntRegs[c.r]; got != c.want {
			t.Errorf("%v = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestX0Hardwired(t *testing.T) {
	m, _, err := run(t, `
main:
	addi zero, zero, 99
	add  a0, zero, zero
	halt
`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.X0] != 0 || m.IntRegs[isa.A0] != 0 {
		t.Errorf("x0 = %d, a0 = %d; want 0, 0", m.IntRegs[isa.X0], m.IntRegs[isa.A0])
	}
}

func TestDivideByZeroRISCVSemantics(t *testing.T) {
	m, _, err := run(t, `
main:
	li  a0, 10
	div a1, a0, zero
	rem a2, a0, zero
	halt
`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.A1] != -1 {
		t.Errorf("div by zero = %d, want -1", m.IntRegs[isa.A1])
	}
	if m.IntRegs[isa.A2] != 10 {
		t.Errorf("rem by zero = %d, want 10", m.IntRegs[isa.A2])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m, tr, err := run(t, `
.data 0x100 17
main:
	li  s0, 0x100
	lw  a0, 0(s0)
	addi a0, a0, 1
	sw  a0, 8(s0)
	lw  a1, 8(s0)
	halt
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.A1] != 18 {
		t.Errorf("a1 = %d, want 18", m.IntRegs[isa.A1])
	}
	if tr.Loads != 2 || tr.Stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 2/1", tr.Loads, tr.Stores)
	}
	// Effective addresses must be recorded in the trace.
	var addrs []int64
	for _, d := range tr.Insts {
		if d.Inst.Op.IsMem() {
			addrs = append(addrs, d.Addr)
		}
	}
	want := []int64{0x100, 0x108, 0x108}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("addr[%d] = %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestLoopExecution(t *testing.T) {
	// sum = 1+2+...+10
	m, tr, err := run(t, `
main:
	li a0, 0
	li a1, 1
	li a2, 11
loop:
	add a0, a0, a1
	addi a1, a1, 1
	blt a1, a2, loop
done:
	halt
`, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.A0] != 55 {
		t.Errorf("sum = %d, want 55", m.IntRegs[isa.A0])
	}
	if tr.Branches != 10 {
		t.Errorf("branches = %d, want 10", tr.Branches)
	}
	// Branch outcomes: taken 9 times, not-taken once (the exit).
	taken := 0
	for _, d := range tr.Insts {
		if d.Inst.Op.IsCondBranch() && d.Taken {
			taken++
		}
	}
	if taken != 9 {
		t.Errorf("taken = %d, want 9", taken)
	}
}

func TestJalJalrCallReturn(t *testing.T) {
	m, _, err := run(t, `
main:
	li  a0, 5
	jal ra, double
after:
	addi a1, a0, 100
	halt
double:
	add a0, a0, a0
	ret
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.A1] != 110 {
		t.Errorf("a1 = %d, want 110", m.IntRegs[isa.A1])
	}
}

func TestFloatingPoint(t *testing.T) {
	m, _, err := run(t, `
main:
	li a0, 9
	fcvt.d.l f0, a0
	fsqrt f1, f0
	fadd  f2, f1, f1
	fmul  f3, f2, f1
	fdiv  f4, f3, f2
	fcvt.l.d a1, f3
	flt   a2, f1, f2
	halt
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.FPRegs[1]; got != 3 {
		t.Errorf("f1 = %v, want 3", got)
	}
	if m.IntRegs[isa.A1] != 18 {
		t.Errorf("a1 = %d, want 18", m.IntRegs[isa.A1])
	}
	if m.IntRegs[isa.A2] != 1 {
		t.Errorf("flt = %d, want 1", m.IntRegs[isa.A2])
	}
}

func TestSetupInstructionsAreArchitecturalNops(t *testing.T) {
	m, tr, err := run(t, `
main:
	setBranchId 1
	li a0, 3
	setDependency 2 1
	addi a0, a0, 1
	halt
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.A0] != 4 {
		t.Errorf("a0 = %d, want 4", m.IntRegs[isa.A0])
	}
	if tr.Setup != 2 {
		t.Errorf("setup count = %d, want 2", tr.Setup)
	}
}

func TestMemoryException(t *testing.T) {
	m, tr, err := run(t, `
.range 0x100 0x200
main:
	li s0, 0x100
	lw a0, 0(s0)
	lw a1, 0x1000(s0)
	halt
`, 100)
	var me *MemError
	if !errors.As(err, &me) {
		t.Fatalf("want MemError, got %v", err)
	}
	if me.Addr != 0x1100 {
		t.Errorf("fault addr = %#x, want 0x1100", me.Addr)
	}
	// PC stays at the faulting instruction for OS-style resume.
	if m.PC != me.PC {
		t.Errorf("PC = %d, want %d (faulting PC)", m.PC, me.PC)
	}
	last := tr.Insts[len(tr.Insts)-1]
	if !last.Trap {
		t.Error("faulting instruction not marked Trap in trace")
	}
}

func TestRunRespectsMaxInsts(t *testing.T) {
	_, tr, err := run(t, `
loop:
	addi a0, a0, 1
	j loop
`, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Errorf("trace len = %d, want 50", tr.Len())
	}
}

func TestTraceNextPCLinksAreConsistent(t *testing.T) {
	_, tr, err := run(t, `
main:
	li a1, 3
loop:
	addi a0, a0, 1
	addi a1, a1, -1
	bnez a1, loop
done:
	halt
`, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(tr.Insts); i++ {
		if tr.Insts[i].NextPC != tr.Insts[i+1].PC {
			t.Fatalf("trace link broken at %d: NextPC %d, next PC %d",
				i, tr.Insts[i].NextPC, tr.Insts[i+1].PC)
		}
		if tr.Insts[i].Seq+1 != tr.Insts[i+1].Seq {
			t.Fatalf("seq numbers not dense at %d", i)
		}
	}
}

func TestMulh(t *testing.T) {
	m, _, err := run(t, `
main:
	li a0, 0x7fffffffffffffff
	li a1, 2
	mulh a2, a0, a1
	li a3, -1
	mulh a4, a3, a3
	halt
`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[isa.A2] != 0 {
		t.Errorf("mulh(maxint,2) = %d, want 0", m.IntRegs[isa.A2])
	}
	if m.IntRegs[isa.A4] != 0 {
		t.Errorf("mulh(-1,-1) = %d, want 0", m.IntRegs[isa.A4])
	}
}
