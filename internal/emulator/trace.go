package emulator

import (
	"github.com/noreba-sim/noreba/internal/isa"
)

// DynInst is one correct-path dynamic instruction: the unit the cycle-level
// pipeline model replays.
type DynInst struct {
	Seq    int64    // dynamic sequence number
	PC     int      // instruction address (index into the image)
	Inst   isa.Inst // decoded instruction
	Taken  bool     // control-flow outcome for branches/jumps
	NextPC int      // PC of the next dynamic instruction
	Addr   int64    // effective address for memory operations
	Trap   bool     // the access raised a memory exception
}

// Trace is a correct-path dynamic instruction stream plus summary counts.
type Trace struct {
	Name  string
	Insts []DynInst

	// Counts over the dynamic stream.
	Branches int64 // conditional branches
	Loads    int64
	Stores   int64
	Setup    int64 // setBranchId + setDependency occurrences
}

// Run executes until halt, a memory exception, or maxInsts dynamic
// instructions, and returns the trace. On a memory exception the trace
// includes the faulting instruction (Trap set) and the error is returned.
//
// Run materializes the whole stream; callers that only need to consume the
// stream once (the pipeline's sliding window) should use NewSource instead,
// which runs in O(1) memory.
func (m *Machine) Run(maxInsts int64) (*Trace, error) {
	return Materialize(NewSource(m, maxInsts))
}

func (tr *Trace) count(d DynInst) {
	switch {
	case d.Inst.Op.IsCondBranch():
		tr.Branches++
	case d.Inst.Op.IsLoad():
		tr.Loads++
	case d.Inst.Op.IsStore():
		tr.Stores++
	case d.Inst.Op.IsSetup():
		tr.Setup++
	}
}

// Len returns the number of dynamic instructions in the trace.
func (tr *Trace) Len() int { return len(tr.Insts) }
