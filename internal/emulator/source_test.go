package emulator

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

func sourceTestImage(t *testing.T) *program.Image {
	t.Helper()
	b := program.NewBuilder("srctest")
	b.Label("entry").Li(isa.A0, 50).Li(isa.S0, 0x1000)
	b.Label("loop").
		Lw(isa.A1, isa.S0, 0).
		Addi(isa.A1, isa.A1, 1).
		Sw(isa.A1, isa.S0, 0).
		Addi(isa.A0, isa.A0, -1).
		Bnez(isa.A0, "loop")
	b.Label("done").Halt()
	b.Data(0x1000, 7)
	img, err := b.MustBuild().Layout()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSourceMatchesRun: the streaming source delivers exactly the
// instruction stream Machine.Run materializes, with matching counts.
func TestSourceMatchesRun(t *testing.T) {
	img := sourceTestImage(t)
	want, err := New(img).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}

	src := NewSource(New(img), 1<<20)
	if src.Name() != want.Name {
		t.Errorf("source name %q, want %q", src.Name(), want.Name)
	}
	var got []DynInst
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, d)
	}
	if src.Err() != nil {
		t.Fatalf("source error: %v", src.Err())
	}
	if len(got) != want.Len() {
		t.Fatalf("source delivered %d instructions, Run materialized %d", len(got), want.Len())
	}
	for i := range got {
		if got[i] != want.Insts[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, got[i], want.Insts[i])
		}
	}
	c := src.Counts()
	if c.Insts != int64(want.Len()) || c.Branches != want.Branches ||
		c.Loads != want.Loads || c.Stores != want.Stores || c.Setup != want.Setup {
		t.Errorf("counts %+v inconsistent with trace (%d insts, %d br, %d ld, %d st, %d setup)",
			c, want.Len(), want.Branches, want.Loads, want.Stores, want.Setup)
	}

	// Next after exhaustion stays exhausted.
	if _, ok := src.Next(); ok {
		t.Error("Next returned an instruction after end of stream")
	}
}

// TestSourceMaxInsts: the budget bounds the stream exactly.
func TestSourceMaxInsts(t *testing.T) {
	img := sourceTestImage(t)
	src := NewSource(New(img), 10)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("delivered %d instructions, want 10", n)
	}
	if src.Err() != nil {
		t.Errorf("budget exhaustion is not an error, got %v", src.Err())
	}
}

// TestTraceSourceRoundTrip: Trace.Source replays the materialized stream and
// Materialize rebuilds an identical trace.
func TestTraceSourceRoundTrip(t *testing.T) {
	img := sourceTestImage(t)
	tr, err := New(img).Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Materialize(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Len() != tr.Len() {
		t.Fatalf("round trip: %q/%d vs %q/%d", back.Name, back.Len(), tr.Name, tr.Len())
	}
	for i := range back.Insts {
		if back.Insts[i] != tr.Insts[i] {
			t.Fatalf("instruction %d differs after round trip", i)
		}
	}
	if back.Branches != tr.Branches || back.Loads != tr.Loads ||
		back.Stores != tr.Stores || back.Setup != tr.Setup {
		t.Errorf("counts differ after round trip")
	}
}

// TestSourceTrapDelivery: a faulting access is delivered with Trap set, then
// the stream ends with the MemError, exactly like Machine.Run.
func TestSourceTrapDelivery(t *testing.T) {
	b := program.NewBuilder("trap")
	b.Label("entry").Li(isa.S0, 0x1000).Lw(isa.A0, isa.S0, 0).
		Li(isa.S1, 0x9999999).Lw(isa.A1, isa.S1, 0).Halt()
	b.Data(0x1000, 1)
	b.ValidRange(0x1000, 0x1100)
	img, err := b.MustBuild().Layout()
	if err != nil {
		t.Fatal(err)
	}
	want, wantErr := New(img).Run(1 << 20)
	if wantErr == nil {
		t.Fatal("expected a memory exception from Run")
	}

	got, gotErr := Materialize(NewSource(New(img), 1<<20))
	if gotErr == nil {
		t.Fatal("expected a memory exception from the source")
	}
	if got.Len() != want.Len() {
		t.Fatalf("trap stream length %d, want %d", got.Len(), want.Len())
	}
	if !got.Insts[got.Len()-1].Trap {
		t.Error("final delivered instruction should carry Trap")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Errorf("error %q, want %q", gotErr, wantErr)
	}
}
