package emulator

import (
	"maps"

	"github.com/noreba-sim/noreba/internal/program"
)

// Snapshot is a deep copy of architectural state, used to model the
// §4.4/§4.3 OS flows: on an exception or context switch the OS captures the
// machine (including whatever the CIT exposed), runs something else, and
// later restores and resumes.
type Snapshot struct {
	IntRegs [32]int64
	FPRegs  [32]float64
	Mem     map[int64]int64
	FMem    map[int64]float64
	PC      int
	Seq     int64
	Halted  bool
}

// Snapshot captures the machine's architectural state.
func (m *Machine) Snapshot() Snapshot {
	return Snapshot{
		IntRegs: m.IntRegs,
		FPRegs:  m.FPRegs,
		PC:      m.PC,
		Seq:     m.seq,
		Halted:  m.halted,
		Mem:     cloneMap(m.Mem),
		FMem:    cloneMap(m.FMem),
	}
}

// cloneMap is maps.Clone that never returns nil: machine memory maps must
// stay writable even when the source is empty.
func cloneMap[M ~map[K]V, K comparable, V any](src M) M {
	if len(src) == 0 {
		return make(M)
	}
	return maps.Clone(src)
}

// RebaseSeq resets the dynamic sequence counter to zero. The pipeline's
// dependence tracking identifies branch instances by sequence number and
// relies on the stream's first instruction having Seq 0 (sequence numbers
// double as sliding-window indices), so a consumer feeding the pipeline a
// stream that starts from a restored snapshot — the sampler's detailed
// windows — rebases the counter after Restore.
func (m *Machine) RebaseSeq() { m.seq = 0 }

// Restore replaces the machine's architectural state with the snapshot.
func (m *Machine) Restore(s Snapshot) {
	m.IntRegs = s.IntRegs
	m.FPRegs = s.FPRegs
	m.PC = s.PC
	m.seq = s.Seq
	m.halted = s.Halted
	m.Mem = cloneMap(s.Mem)
	m.FMem = cloneMap(s.FMem)
}

// NewRestored creates a machine directly in the snapshot's state, skipping
// New's load of the image's initial data that Restore would immediately
// replace. Sampled simulation builds a machine per detailed window this way.
func NewRestored(img *program.Image, s Snapshot) *Machine {
	m := &Machine{img: img}
	m.Restore(s)
	return m
}
