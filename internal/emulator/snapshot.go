package emulator

// Snapshot is a deep copy of architectural state, used to model the
// §4.4/§4.3 OS flows: on an exception or context switch the OS captures the
// machine (including whatever the CIT exposed), runs something else, and
// later restores and resumes.
type Snapshot struct {
	IntRegs [32]int64
	FPRegs  [32]float64
	Mem     map[int64]int64
	FMem    map[int64]float64
	PC      int
	Seq     int64
	Halted  bool
}

// Snapshot captures the machine's architectural state.
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		IntRegs: m.IntRegs,
		FPRegs:  m.FPRegs,
		PC:      m.PC,
		Seq:     m.seq,
		Halted:  m.halted,
		Mem:     make(map[int64]int64, len(m.Mem)),
		FMem:    make(map[int64]float64, len(m.FMem)),
	}
	for a, v := range m.Mem {
		s.Mem[a] = v
	}
	for a, v := range m.FMem {
		s.FMem[a] = v
	}
	return s
}

// RebaseSeq resets the dynamic sequence counter to zero. The pipeline's
// dependence tracking identifies branch instances by sequence number and
// relies on the stream's first instruction having Seq 0 (sequence numbers
// double as sliding-window indices), so a consumer feeding the pipeline a
// stream that starts from a restored snapshot — the sampler's detailed
// windows — rebases the counter after Restore.
func (m *Machine) RebaseSeq() { m.seq = 0 }

// Restore replaces the machine's architectural state with the snapshot.
func (m *Machine) Restore(s Snapshot) {
	m.IntRegs = s.IntRegs
	m.FPRegs = s.FPRegs
	m.PC = s.PC
	m.seq = s.Seq
	m.halted = s.Halted
	m.Mem = make(map[int64]int64, len(s.Mem))
	for a, v := range s.Mem {
		m.Mem[a] = v
	}
	m.FMem = make(map[int64]float64, len(s.FMem))
	for a, v := range s.FMem {
		m.FMem[a] = v
	}
}
