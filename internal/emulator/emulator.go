// Package emulator is the functional (architectural) model of the NOREBA
// ISA. It executes a laid-out program image instruction by instruction,
// maintaining architectural state, and emits the correct-path dynamic
// instruction trace the cycle-level pipeline model replays.
//
// The emulator is also the repository's golden model: tests compare
// architectural state across commit policies and after exception recovery
// against it.
package emulator

import (
	"fmt"
	"math"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// MemError is the memory exception of §4.4: an access outside the image's
// valid address ranges (a page fault / mprotect-style violation).
type MemError struct {
	PC   int
	Seq  int64
	Addr int64
}

func (e *MemError) Error() string {
	return fmt.Sprintf("memory exception at pc %d (seq %d): illegal address %#x", e.PC, e.Seq, e.Addr)
}

// Machine holds architectural state: the integer and floating-point
// register files, memory, and the program counter.
type Machine struct {
	img *program.Image

	IntRegs [32]int64
	FPRegs  [32]float64
	Mem     map[int64]int64
	FMem    map[int64]float64
	PC      int

	seq    int64
	halted bool
}

// New creates a machine with the image's initial data loaded and PC at 0.
func New(img *program.Image) *Machine {
	return &Machine{
		img:  img,
		Mem:  cloneMap(img.Data),
		FMem: cloneMap(img.FData),
	}
}

// Image returns the program image the machine executes.
func (m *Machine) Image() *program.Image { return m.img }

// Halted reports whether the program has executed halt or run off the end
// of the text segment.
func (m *Machine) Halted() bool { return m.halted || m.PC < 0 || m.PC >= len(m.img.Insts) }

// Seq returns the number of dynamic instructions executed so far.
func (m *Machine) Seq() int64 { return m.seq }

func (m *Machine) legalAddr(a int64) bool {
	if len(m.img.ValidRanges) == 0 {
		return true
	}
	for _, r := range m.img.ValidRanges {
		if a >= r[0] && a < r[1] {
			return true
		}
	}
	return false
}

func (m *Machine) readInt(r isa.Reg) int64 {
	if r == isa.X0 {
		return 0
	}
	return m.IntRegs[r]
}

func (m *Machine) writeInt(r isa.Reg, v int64) {
	if r != isa.X0 {
		m.IntRegs[r] = v
	}
}

func (m *Machine) readFP(r isa.Reg) float64     { return m.FPRegs[r-isa.F0] }
func (m *Machine) writeFP(r isa.Reg, v float64) { m.FPRegs[r-isa.F0] = v }

// Step executes one instruction and returns its dynamic-trace record.
// A memory exception returns a *MemError; the faulting instruction is still
// recorded (with Trap set) and the PC is left at the faulting instruction so
// an OS-style handler can inspect and resume.
func (m *Machine) Step() (DynInst, error) {
	var d DynInst
	err := m.StepInto(&d)
	return d, err
}

// StepInto is Step writing the dynamic-trace record into *d instead of
// returning it: trace sources sit on the per-instruction hot path of both
// detailed and functional-warming simulation, where the record's size makes
// the extra value copy measurable.
func (m *Machine) StepInto(d *DynInst) error {
	if m.Halted() {
		return fmt.Errorf("emulator: step after halt")
	}
	pc := m.PC
	in := &m.img.Insts[pc]
	// Zero then store: a composite literal with non-constant fields goes
	// through a stack temporary and a block copy, double the writes on the
	// emulation hot loop.
	*d = DynInst{}
	d.Seq = m.seq
	d.PC = pc
	d.Inst = *in
	d.NextPC = pc + 1
	m.seq++

	switch in.Op {
	case isa.OpAdd:
		m.writeInt(in.Rd, m.readInt(in.Rs1)+m.readInt(in.Rs2))
	case isa.OpSub:
		m.writeInt(in.Rd, m.readInt(in.Rs1)-m.readInt(in.Rs2))
	case isa.OpAnd:
		m.writeInt(in.Rd, m.readInt(in.Rs1)&m.readInt(in.Rs2))
	case isa.OpOr:
		m.writeInt(in.Rd, m.readInt(in.Rs1)|m.readInt(in.Rs2))
	case isa.OpXor:
		m.writeInt(in.Rd, m.readInt(in.Rs1)^m.readInt(in.Rs2))
	case isa.OpSll:
		m.writeInt(in.Rd, m.readInt(in.Rs1)<<(uint64(m.readInt(in.Rs2))&63))
	case isa.OpSrl:
		m.writeInt(in.Rd, int64(uint64(m.readInt(in.Rs1))>>(uint64(m.readInt(in.Rs2))&63)))
	case isa.OpSra:
		m.writeInt(in.Rd, m.readInt(in.Rs1)>>(uint64(m.readInt(in.Rs2))&63))
	case isa.OpSlt:
		m.writeInt(in.Rd, b2i(m.readInt(in.Rs1) < m.readInt(in.Rs2)))
	case isa.OpSltu:
		m.writeInt(in.Rd, b2i(uint64(m.readInt(in.Rs1)) < uint64(m.readInt(in.Rs2))))

	case isa.OpAddi:
		m.writeInt(in.Rd, m.readInt(in.Rs1)+in.Imm)
	case isa.OpAndi:
		m.writeInt(in.Rd, m.readInt(in.Rs1)&in.Imm)
	case isa.OpOri:
		m.writeInt(in.Rd, m.readInt(in.Rs1)|in.Imm)
	case isa.OpXori:
		m.writeInt(in.Rd, m.readInt(in.Rs1)^in.Imm)
	case isa.OpSlli:
		m.writeInt(in.Rd, m.readInt(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.OpSrli:
		m.writeInt(in.Rd, int64(uint64(m.readInt(in.Rs1))>>(uint64(in.Imm)&63)))
	case isa.OpSrai:
		m.writeInt(in.Rd, m.readInt(in.Rs1)>>(uint64(in.Imm)&63))
	case isa.OpSlti:
		m.writeInt(in.Rd, b2i(m.readInt(in.Rs1) < in.Imm))
	case isa.OpLui:
		m.writeInt(in.Rd, in.Imm<<12)

	case isa.OpMul:
		m.writeInt(in.Rd, m.readInt(in.Rs1)*m.readInt(in.Rs2))
	case isa.OpMulh:
		hi, _ := mul128(m.readInt(in.Rs1), m.readInt(in.Rs2))
		m.writeInt(in.Rd, hi)
	case isa.OpDiv:
		den := m.readInt(in.Rs2)
		if den == 0 {
			m.writeInt(in.Rd, -1) // RISC-V semantics: divide by zero = all ones
		} else {
			m.writeInt(in.Rd, m.readInt(in.Rs1)/den)
		}
	case isa.OpRem:
		den := m.readInt(in.Rs2)
		if den == 0 {
			m.writeInt(in.Rd, m.readInt(in.Rs1))
		} else {
			m.writeInt(in.Rd, m.readInt(in.Rs1)%den)
		}

	case isa.OpFadd:
		m.writeFP(in.Rd, m.readFP(in.Rs1)+m.readFP(in.Rs2))
	case isa.OpFsub:
		m.writeFP(in.Rd, m.readFP(in.Rs1)-m.readFP(in.Rs2))
	case isa.OpFmul:
		m.writeFP(in.Rd, m.readFP(in.Rs1)*m.readFP(in.Rs2))
	case isa.OpFdiv:
		m.writeFP(in.Rd, m.readFP(in.Rs1)/m.readFP(in.Rs2))
	case isa.OpFsqrt:
		m.writeFP(in.Rd, math.Sqrt(m.readFP(in.Rs1)))
	case isa.OpFmin:
		m.writeFP(in.Rd, math.Min(m.readFP(in.Rs1), m.readFP(in.Rs2)))
	case isa.OpFmax:
		m.writeFP(in.Rd, math.Max(m.readFP(in.Rs1), m.readFP(in.Rs2)))
	case isa.OpFcvtIF:
		m.writeFP(in.Rd, float64(m.readInt(in.Rs1)))
	case isa.OpFcvtFI:
		m.writeInt(in.Rd, int64(m.readFP(in.Rs1)))
	case isa.OpFlt:
		m.writeInt(in.Rd, b2i(m.readFP(in.Rs1) < m.readFP(in.Rs2)))
	case isa.OpFle:
		m.writeInt(in.Rd, b2i(m.readFP(in.Rs1) <= m.readFP(in.Rs2)))
	case isa.OpFeq:
		m.writeInt(in.Rd, b2i(m.readFP(in.Rs1) == m.readFP(in.Rs2)))

	case isa.OpLw, isa.OpFlw:
		addr := m.readInt(in.Rs1) + in.Imm
		d.Addr = addr
		if !m.legalAddr(addr) {
			d.Trap = true
			m.seq-- // the faulting instruction has not retired
			return &MemError{PC: pc, Seq: d.Seq, Addr: addr}
		}
		if in.Op == isa.OpLw {
			m.writeInt(in.Rd, m.Mem[addr])
		} else {
			m.writeFP(in.Rd, m.FMem[addr])
		}
	case isa.OpSw, isa.OpFsw:
		addr := m.readInt(in.Rs1) + in.Imm
		d.Addr = addr
		if !m.legalAddr(addr) {
			d.Trap = true
			m.seq--
			return &MemError{PC: pc, Seq: d.Seq, Addr: addr}
		}
		if in.Op == isa.OpSw {
			m.Mem[addr] = m.readInt(in.Rs2)
		} else {
			m.FMem[addr] = m.readFP(in.Rs2)
		}

	case isa.OpBeq:
		d.Taken = m.readInt(in.Rs1) == m.readInt(in.Rs2)
	case isa.OpBne:
		d.Taken = m.readInt(in.Rs1) != m.readInt(in.Rs2)
	case isa.OpBlt:
		d.Taken = m.readInt(in.Rs1) < m.readInt(in.Rs2)
	case isa.OpBge:
		d.Taken = m.readInt(in.Rs1) >= m.readInt(in.Rs2)
	case isa.OpBltu:
		d.Taken = uint64(m.readInt(in.Rs1)) < uint64(m.readInt(in.Rs2))
	case isa.OpBgeu:
		d.Taken = uint64(m.readInt(in.Rs1)) >= uint64(m.readInt(in.Rs2))
	case isa.OpJal:
		m.writeInt(in.Rd, int64(pc+1))
		d.Taken = true
		d.NextPC = in.Target
	case isa.OpJalr:
		target := int(m.readInt(in.Rs1) + in.Imm)
		m.writeInt(in.Rd, int64(pc+1))
		d.Taken = true
		d.NextPC = target

	case isa.OpSetBranchID, isa.OpSetDependency:
		// Setup instructions occupy a fetch slot but have no architectural
		// effect (dropped at decode, §4).
	case isa.OpGetCITEntry, isa.OpSetCITEntry:
		// CIT exchange is a microarchitectural effect; architecturally a
		// no-op (the OS treats the value as an opaque token).
	case isa.OpFence:
		// Synchronisation barrier: no architectural effect single-threaded.
	case isa.OpNop:
	case isa.OpHalt:
		m.halted = true
	default:
		return fmt.Errorf("emulator: unimplemented op %v at pc %d", in.Op, pc)
	}

	if in.Op.IsCondBranch() && d.Taken {
		d.NextPC = in.Target
	}
	m.PC = d.NextPC
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// mul128 returns the high and low 64 bits of a*b (signed).
func mul128(a, b int64) (hi, lo int64) {
	au, bu := uint64(a), uint64(b)
	aHi, aLo := au>>32, au&0xffffffff
	bHi, bLo := bu>>32, bu&0xffffffff
	t := aLo * bLo
	w0 := t & 0xffffffff
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & 0xffffffff
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hiU := aHi*bHi + w2 + k
	loU := (t << 32) + w0
	// Convert unsigned 128-bit product to signed.
	h := int64(hiU)
	if a < 0 {
		h -= b
	}
	if b < 0 {
		h -= a
	}
	return h, int64(loU)
}
