package emulator

// Counts summarises a dynamic instruction stream.
type Counts struct {
	Insts    int64 // dynamic instructions delivered
	Branches int64 // conditional branches
	Loads    int64
	Stores   int64
	Setup    int64 // setBranchId + setDependency occurrences
}

// Add folds one delivered instruction into the summary. Exported for
// alternative TraceSource implementations (the trace-file replay reader must
// count exactly as the live sources do).
func (c *Counts) Add(d *DynInst) { c.add(d) }

func (c *Counts) add(d *DynInst) {
	c.Insts++
	switch {
	case d.Inst.Op.IsCondBranch():
		c.Branches++
	case d.Inst.Op.IsLoad():
		c.Loads++
	case d.Inst.Op.IsStore():
		c.Stores++
	case d.Inst.Op.IsSetup():
		c.Setup++
	}
}

// TraceSource is a pull-based stream of correct-path dynamic instructions:
// the unit of work the cycle-level pipeline model consumes. Unlike a
// materialized Trace, a source need not hold the whole stream in memory —
// the live emulator produces instructions on demand, so a consumer that
// keeps only a sliding window runs in O(window) space instead of O(trace).
//
// Next returns the next instruction and true, or a zero value and false once
// the stream is exhausted. After Next returns false, Err reports whether the
// stream ended on a memory exception (or other execution error) rather than
// a clean halt; a faulting access is still delivered (with Trap set) before
// the stream ends. Sources are single-consumer and not safe for concurrent
// use.
type TraceSource interface {
	// Name identifies the program the stream executes.
	Name() string
	// Next delivers the next dynamic instruction, or false at end of stream.
	Next() (DynInst, bool)
	// Err reports the terminal error, if any, once Next has returned false.
	Err() error
	// Counts summarises the instructions delivered so far.
	Counts() Counts
}

// RefSource is an optional TraceSource extension for zero-copy delivery:
// NextRef returns a pointer to the next dynamic instruction instead of a
// ~100-byte value copy. The pointee is owned by the source and is only
// guaranteed until the consumer's next NextRef or Next call — consumers that
// retain a record (the pipeline's sliding window) copy it into their own
// storage exactly once. Implementations must keep NextRef and Next
// interchangeable call-by-call: both advance the same stream and counts.
type RefSource interface {
	TraceSource
	// NextRef delivers a pointer to the next dynamic instruction, or false
	// at end of stream. The pointer is invalidated by the next NextRef or
	// Next call.
	NextRef() (*DynInst, bool)
}

// IntoSource is an optional TraceSource extension for sources that can
// produce the next record directly into caller-owned storage, removing the
// last copy on the source side: the live emulator executes straight into the
// consumer's slot (a window arena record, a broadcast ring slot) instead of
// into a private scratch record that the consumer then copies out. Sources
// that merely hand out views of existing storage (materialized traces, bus
// views) gain nothing from the form and implement only RefSource.
type IntoSource interface {
	// NextInto fully overwrites *d with the next dynamic instruction and
	// reports whether one was produced. On false *d holds garbage. NextInto
	// advances the same stream and counts as Next/NextRef.
	NextInto(d *DynInst) bool
}

// machineSource streams a live emulator, bounded by maxInsts.
type machineSource struct {
	m        *Machine
	maxInsts int64
	counts   Counts
	err      error
	done     bool
	d        DynInst // NextRef scratch: one record, reused per delivery
}

// NewSource returns a TraceSource that executes the machine on demand: each
// Next steps the emulator once, until halt, a memory exception, or maxInsts
// dynamic instructions. On a memory exception the faulting instruction is
// delivered (Trap set) and the stream then ends with Err returning the
// *MemError.
func NewSource(m *Machine, maxInsts int64) TraceSource {
	return &machineSource{m: m, maxInsts: maxInsts}
}

func (s *machineSource) Name() string { return s.m.img.Name }

func (s *machineSource) Next() (DynInst, bool) {
	d, ok := s.NextRef()
	if !ok {
		return DynInst{}, false
	}
	return *d, true
}

func (s *machineSource) NextRef() (*DynInst, bool) {
	if !s.NextInto(&s.d) {
		return nil, false
	}
	return &s.d, true
}

func (s *machineSource) NextInto(d *DynInst) bool {
	if s.done || s.m.Halted() || s.counts.Insts >= s.maxInsts {
		s.done = true
		return false
	}
	err := s.m.StepInto(d)
	if err != nil {
		s.done = true
		s.err = err
		if _, ok := err.(*MemError); ok {
			// The faulting access is part of the correct-path stream.
			s.counts.add(d)
			return true
		}
		return false
	}
	s.counts.add(d)
	return true
}

func (s *machineSource) Err() error     { return s.err }
func (s *machineSource) Counts() Counts { return s.counts }

// traceSource replays an already-materialized Trace.
type traceSource struct {
	tr     *Trace
	pos    int
	counts Counts
}

// Source returns a TraceSource replaying the materialized trace. The trace's
// terminal error (if its producing run ended on one) is not replayed: a
// materialized trace is by definition a complete correct-path stream.
func (tr *Trace) Source() TraceSource { return &traceSource{tr: tr} }

func (s *traceSource) Name() string { return s.tr.Name }

func (s *traceSource) Next() (DynInst, bool) {
	d, ok := s.NextRef()
	if !ok {
		return DynInst{}, false
	}
	return *d, true
}

func (s *traceSource) NextRef() (*DynInst, bool) {
	if s.pos >= len(s.tr.Insts) {
		return nil, false
	}
	d := &s.tr.Insts[s.pos]
	s.pos++
	s.counts.add(d)
	return d, true
}

func (s *traceSource) Err() error     { return nil }
func (s *traceSource) Counts() Counts { return s.counts }

// Materialize drains a source into a Trace. It returns the instructions
// delivered before any error together with the source's terminal error, so
// callers that need the full random-access trace (golden tests, the
// multicore barrier validator) keep the exact semantics of Machine.Run.
func Materialize(src TraceSource) (*Trace, error) {
	tr := &Trace{Name: src.Name()}
	for {
		d, ok := src.Next()
		if !ok {
			break
		}
		tr.Insts = append(tr.Insts, d)
		tr.count(d)
	}
	return tr, src.Err()
}
