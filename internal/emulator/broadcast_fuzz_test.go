package emulator

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// FuzzBroadcastSkew drives random consumer interleavings over a Broadcast
// and checks the bus invariants hold under every schedule:
//
//   - the buffered-record high-water mark never exceeds the skew bound;
//   - every surviving consumer sees the solo stream exactly — no dropped,
//     duplicated or reordered DynInst;
//   - per-consumer Counts match a solo source over the same prefix;
//   - a consumer closing mid-stream leaves a clean prefix behind and never
//     wedges its siblings.
//
// Interleaving randomness comes from per-consumer yield cadences derived
// from the fuzz input, plus the runtime scheduler itself (the test spawns
// one goroutine per consumer, as the experiment runner does).
func FuzzBroadcastSkew(f *testing.F) {
	f.Add(uint8(3), uint16(8), uint16(500), int64(1))
	f.Add(uint8(1), uint16(1), uint16(50), int64(2))
	f.Add(uint8(6), uint16(97), uint16(2000), int64(3))
	f.Add(uint8(2), uint16(4096), uint16(100), int64(4))

	f.Fuzz(func(t *testing.T, nRaw uint8, skewRaw uint16, lenRaw uint16, seed int64) {
		n := int(nRaw)%8 + 1
		skew := int(skewRaw)%4096 + 1
		streamLen := int(lenRaw)%4000 + 1
		tr := synthTrace(streamLen)
		want := tr.Insts
		wantCounts := func() Counts {
			s := tr.Source()
			drain(s)
			return s.Counts()
		}()

		b := NewBroadcast(tr.Source(), skew)
		views := make([]*BusView, n)
		for i := range views {
			views[i] = b.View()
		}

		rng := rand.New(rand.NewSource(seed))
		type plan struct {
			yieldEvery int // Gosched cadence (0 = never)
			closeAt    int // stop and Close after this many records (-1 = run to end)
		}
		plans := make([]plan, n)
		closers := 0
		for i := range plans {
			plans[i].yieldEvery = rng.Intn(7)
			plans[i].closeAt = -1
			// At most n-1 consumers may abandon the stream, so at least one
			// always checks the full-stream property.
			if closers < n-1 && rng.Intn(4) == 0 {
				plans[i].closeAt = rng.Intn(streamLen + 1)
				closers++
			}
		}

		got := make([][]DynInst, n)
		var wg sync.WaitGroup
		for i := range views {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer views[i].Close()
				p := plans[i]
				for k := 0; ; k++ {
					if p.closeAt >= 0 && k == p.closeAt {
						return
					}
					d, ok := views[i].Next()
					if !ok {
						return
					}
					got[i] = append(got[i], d)
					if p.yieldEvery > 0 && k%p.yieldEvery == 0 {
						runtime.Gosched()
					}
				}
			}(i)
		}
		wg.Wait()

		if p := b.PeakRecords(); p > skew {
			t.Fatalf("peak buffered records %d exceeds skew bound %d", p, skew)
		}
		for i, seq := range got {
			wantLen := streamLen
			if c := plans[i].closeAt; c >= 0 && c < wantLen {
				wantLen = c
			}
			if len(seq) != wantLen {
				t.Fatalf("consumer %d delivered %d records, want %d (closeAt %d)",
					i, len(seq), wantLen, plans[i].closeAt)
			}
			for k, d := range seq {
				if d != want[k] {
					t.Fatalf("consumer %d record %d diverged from the solo stream: got seq %d, want seq %d",
						i, k, d.Seq, want[k].Seq)
				}
			}
			if plans[i].closeAt < 0 {
				if c := views[i].Counts(); c != wantCounts {
					t.Fatalf("consumer %d counts %+v, want solo counts %+v", i, c, wantCounts)
				}
			}
		}
	})
}
