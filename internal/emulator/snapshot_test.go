package emulator

import (
	"testing"

	"github.com/noreba-sim/noreba/internal/program"
	"github.com/noreba-sim/noreba/internal/progtest"
)

// TestSnapshotRestoreMidRun: pausing a machine mid-run, perturbing it, and
// restoring must reproduce the exact final state of an uninterrupted run —
// the §4.4 context-switch round trip.
func TestSnapshotRestoreMidRun(t *testing.T) {
	img, err := progtest.Generate(5).Layout()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: run to completion.
	ref := New(img)
	if _, err := ref.Run(1 << 18); err != nil {
		t.Fatal(err)
	}

	// Interrupted: run half, snapshot, trash the machine, restore, finish.
	m := New(img)
	half := ref.Seq() / 2
	for m.Seq() < half && !m.Halted() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()

	// "Context switch": run a different program's worth of damage.
	for i := range m.IntRegs {
		m.IntRegs[i] = -1
	}
	m.Mem[0xdead] = 42
	m.PC = 0

	m.Restore(snap)
	for !m.Halted() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}

	if m.IntRegs != ref.IntRegs || m.FPRegs != ref.FPRegs {
		t.Error("registers diverged after snapshot/restore round trip")
	}
	if len(m.Mem) != len(ref.Mem) {
		t.Fatalf("memory footprint diverged: %d vs %d words", len(m.Mem), len(ref.Mem))
	}
	for a, v := range ref.Mem {
		if m.Mem[a] != v {
			t.Errorf("mem[%#x] = %d, want %d", a, m.Mem[a], v)
		}
	}
}

// TestSnapshotIsDeep: mutating the machine after a snapshot must not leak
// into the snapshot.
func TestSnapshotIsDeep(t *testing.T) {
	p := program.MustAssemble("snap", `
main:
	li s0, 0x100
	li a0, 7
	sw a0, 0(s0)
	halt
`)
	img, _ := p.Layout()
	m := New(img)
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	m.Mem[0x100] = 999
	m.IntRegs[10] = 999
	if snap.Mem[0x100] != 7 {
		t.Error("snapshot memory aliased the machine")
	}
	if snap.IntRegs[10] != 7 {
		t.Error("snapshot registers aliased the machine")
	}
}
