package emulator

import (
	"reflect"
	"testing"

	"github.com/noreba-sim/noreba/internal/progtest"
)

// TestSnapshotRoundTripProperty is the property behind sampled simulation's
// checkpoints: snapshotting a machine at an arbitrary point and restoring the
// snapshot into a completely fresh machine must yield a machine that produces
// the identical dynamic instruction stream — record for record — and ends in
// the identical architectural state. The sampling planner restores one
// checkpoint per representative interval into a fresh machine, so any
// divergence here silently corrupts every estimate built on it.
func TestSnapshotRoundTripProperty(t *testing.T) {
	const steps = 64
	for seed := int64(1); seed <= 6; seed++ {
		img, err := progtest.Generate(seed).Layout()
		if err != nil {
			t.Fatal(err)
		}

		// Find the program's dynamic length so snapshot points can be spread
		// across early, middle and late execution.
		probe := New(img)
		if _, err := probe.Run(1 << 16); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total := probe.Seq()
		if total < 8 {
			t.Fatalf("seed %d: degenerate program (%d insts)", seed, total)
		}

		for _, snapAt := range []int64{1, total / 5, total / 2, 4 * total / 5, total - 2} {
			ref := New(img)
			for ref.Seq() < snapAt && !ref.Halted() {
				if _, err := ref.Step(); err != nil {
					t.Fatal(err)
				}
			}
			snap := ref.Snapshot()

			fresh := New(img)
			fresh.Restore(snap)
			if got := fresh.Snapshot(); !reflect.DeepEqual(got, snap) {
				t.Fatalf("seed %d snap@%d: restore into fresh machine lost state", seed, snapAt)
			}

			// Step both machines in lockstep: identical records, then
			// identical final state.
			for i := 0; i < steps && !ref.Halted(); i++ {
				want, err := ref.Step()
				if err != nil {
					t.Fatal(err)
				}
				got, err := fresh.Step()
				if err != nil {
					t.Fatalf("seed %d snap@%d step %d: restored machine faulted: %v", seed, snapAt, i, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d snap@%d step %d: dynamic records diverged:\n got %+v\nwant %+v",
						seed, snapAt, i, got, want)
				}
			}
			if fresh.Halted() != ref.Halted() {
				t.Fatalf("seed %d snap@%d: halt state diverged", seed, snapAt)
			}
			if got, want := fresh.Snapshot(), ref.Snapshot(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d snap@%d: architectural state diverged after %d steps", seed, snapAt, steps)
			}
		}
	}
}
