package emulator

import (
	"fmt"
	"sync"
)

// DefaultBusSkew is the Broadcast skew bound used when callers pass a
// non-positive one: the maximum number of dynamic instructions the fastest
// consumer may run ahead of the slowest before it blocks. The bound is the
// bus's peak buffering, so it is also the memory ceiling of a fan-out run:
// DefaultBusSkew records regardless of how many consumers share the stream.
// The value comfortably exceeds the largest in-flight span the pipeline
// model reaches (ROB + misprediction windows + the reconvergence-scan
// lookahead, ~2–3 K records), so same-workload cores of different commit
// policies almost never block on each other in practice.
const DefaultBusSkew = 8192

// viewChunk is how many records a view copies out of the shared ring per
// lock acquisition. Chunking amortises the bus mutex over the pipeline's
// one-instruction-at-a-time Next calls; the copies are private to the view,
// so recycling a ring slot never invalidates a delivered record.
const viewChunk = 64

// Broadcast fans one TraceSource out to N lockstep consumers: a single
// functional emulation (or trace replay) feeds any number of per-consumer
// TraceSource views, so a policy sweep over one workload costs one
// functional pass plus N timing models instead of N full re-emulations.
//
// The stream is buffered in a shared bounded ring with one cursor per view.
// Whichever consumer first needs a record past the buffered end pulls it
// from the source; records are released once the slowest cursor passes, and
// a consumer that would run more than maxSkew records ahead of the slowest
// blocks (yielding its goroutine) until the laggard advances or detaches.
// Peak buffering is therefore min(maxSkew, stream length) records, no
// matter how many consumers attach.
//
// Views must all be created before the first Next; a consumer that stops
// early (error, cancellation) must Close its view or its stalled cursor
// blocks the others forever. The bus is safe for one goroutine per view;
// each individual view keeps TraceSource's single-consumer contract.
type Broadcast struct {
	mu   sync.Mutex
	cond sync.Cond

	src     TraceSource
	name    string
	maxSkew int

	buf  []DynInst // ring storage, power-of-two length
	head int64     // absolute index of the oldest buffered record
	end  int64     // absolute index one past the newest buffered record
	eof  bool
	err  error

	views   []*BusView
	started bool
	peak    int // high-water mark of buffered records
}

// NewBroadcast wraps src in a broadcast bus with the given skew bound (a
// non-positive bound means DefaultBusSkew). The source must not be consumed
// by anyone else once the bus owns it.
func NewBroadcast(src TraceSource, maxSkew int) *Broadcast {
	if maxSkew <= 0 {
		maxSkew = DefaultBusSkew
	}
	b := &Broadcast{src: src, name: src.Name(), maxSkew: maxSkew}
	b.cond.L = &b.mu
	return b
}

// View hands out one consumer's TraceSource over the shared stream. All
// views must be created before any of them calls Next — a late joiner would
// have already missed released records — so View panics once consumption
// has started.
func (b *Broadcast) View() *BusView {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		panic("emulator: Broadcast.View after consumption started")
	}
	v := &BusView{b: b, cursor: 0}
	b.views = append(b.views, v)
	return v
}

// PeakRecords returns the high-water mark of records buffered in the ring —
// the realized skew between the fastest and slowest consumer, bounded above
// by the construction-time skew limit.
func (b *Broadcast) PeakRecords() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// minCursorLocked returns the smallest cursor over open views. Callers hold
// b.mu and guarantee at least one open view.
func (b *Broadcast) minCursorLocked() int64 {
	min := int64(1) << 62
	for _, v := range b.views {
		if !v.closed && v.cursor < min {
			min = v.cursor
		}
	}
	return min
}

// releaseLocked advances the ring head to the slowest open cursor, recycling
// every record all consumers have passed, and wakes consumers blocked on the
// skew bound. Callers hold b.mu.
func (b *Broadcast) releaseLocked() {
	b.advanceHeadLocked(b.minCursorLocked())
}

// advanceHeadLocked raises the ring head to min (clamped to the buffered
// end, where the no-open-views sentinel lands), waking skew-blocked
// consumers when records were recycled. Callers hold b.mu.
func (b *Broadcast) advanceHeadLocked(min int64) {
	if min > b.end {
		min = b.end
	}
	if min > b.head {
		b.head = min
		b.cond.Broadcast()
	}
}

// pushLocked appends one record to the ring, growing the storage (up to the
// skew bound, which the caller has already enforced) when full. Callers hold
// b.mu.
func (b *Broadcast) pushLocked(d DynInst) {
	if n := int(b.end - b.head); n == len(b.buf) {
		grown := len(b.buf) * 2
		if grown == 0 {
			grown = 64
		}
		nb := make([]DynInst, grown)
		for i := b.head; i < b.end; i++ {
			nb[i&int64(grown-1)] = b.buf[i&int64(len(b.buf)-1)]
		}
		b.buf = nb
	}
	b.buf[b.end&int64(len(b.buf)-1)] = d
	b.end++
	if n := int(b.end - b.head); n > b.peak {
		b.peak = n
	}
}

// BusView is one consumer's pull-based view of a Broadcast stream: a
// TraceSource delivering exactly the records the underlying source produces,
// in order, with its own Counts. Next blocks when this consumer would exceed
// the bus skew bound; Close detaches the consumer so siblings stop waiting
// for it.
type BusView struct {
	b      *Broadcast
	cursor int64 // next absolute index to copy out of the ring (under b.mu)
	closed bool  // under b.mu

	// Consumer-goroutine-private state: records copied out of the ring,
	// served without the lock, plus the running counts.
	local  []DynInst
	pos    int
	counts Counts
	ended  bool
}

// Name identifies the shared underlying program.
func (v *BusView) Name() string { return v.b.name }

// Next delivers this consumer's next dynamic instruction, or false once the
// shared stream is exhausted (or the view was closed). When the local chunk
// runs dry it refills from the shared ring — pulling the underlying source
// when this consumer is the first to need a record, blocking when the skew
// bound says the slowest consumer must catch up first.
func (v *BusView) Next() (DynInst, bool) {
	if v.pos < len(v.local) {
		d := v.local[v.pos]
		v.pos++
		v.counts.add(d)
		return d, true
	}
	if v.ended {
		return DynInst{}, false
	}
	if !v.refill() {
		v.ended = true
		return DynInst{}, false
	}
	d := v.local[v.pos]
	v.pos++
	v.counts.add(d)
	return d, true
}

// refill copies the next chunk of records out of the shared ring into the
// view's private buffer, reporting false at end of stream. It advances the
// shared cursor by the whole chunk at once: copied records are consumed as
// far as the bus is concerned, which both frees ring slots early and keeps
// the skew accounting exact.
func (v *BusView) refill() bool {
	b := v.b
	b.mu.Lock()
	defer b.mu.Unlock()
	b.started = true
	v.local = v.local[:0]
	v.pos = 0
	// min caches the slowest open cursor. Cursors are monotonic and move
	// only under b.mu — held for this whole loop except inside cond.Wait —
	// so the cache is a lower bound on the true minimum: checking skew
	// against it is conservative (never overshoots the bound), and the
	// O(views) rescan happens once per refill, per wakeup, or per maxSkew
	// records pulled instead of once per record.
	min := b.minCursorLocked()
	for len(v.local) < viewChunk {
		if v.closed {
			break
		}
		if v.cursor < b.end {
			if v.cursor < b.head {
				panic(fmt.Sprintf("emulator: broadcast cursor %d below ring head %d", v.cursor, b.head))
			}
			v.local = append(v.local, b.buf[v.cursor&int64(len(b.buf)-1)])
			v.cursor++
			continue
		}
		if b.eof {
			break
		}
		if int(b.end-min) >= b.maxSkew {
			// Possibly at the bound: refresh — our own copies above may have
			// advanced the true minimum — and recycle passed records.
			min = b.minCursorLocked()
			b.advanceHeadLocked(min)
			if int(b.end-min) >= b.maxSkew {
				// Genuinely the fastest. Park until the slowest advances (or
				// detaches), but deliver what we already copied first so the
				// pipeline keeps cycling.
				if len(v.local) > 0 {
					break
				}
				b.cond.Wait()
				min = b.minCursorLocked()
				continue
			}
		}
		// Keep the head no staler than the skew check, so pushLocked's
		// occupancy (peak metric and grow decision) stays within the bound.
		b.advanceHeadLocked(min)
		d, ok := b.src.Next()
		if !ok {
			b.eof = true
			b.err = b.src.Err()
			b.cond.Broadcast()
			break
		}
		b.pushLocked(d)
	}
	// The chunk advanced this cursor; if we were (one of) the slowest,
	// records became releasable.
	b.releaseLocked()
	return len(v.local) > 0
}

// Err reports the underlying stream's terminal error once this view has
// consumed the stream to its end, mirroring the solo-source contract; a view
// closed before the end reports nil.
func (v *BusView) Err() error {
	if !v.ended {
		return nil
	}
	v.b.mu.Lock()
	defer v.b.mu.Unlock()
	if v.closed && v.cursor < v.b.end {
		return nil
	}
	return v.b.err
}

// Counts summarises the instructions delivered to this consumer so far; it
// matches a solo source over the same stream prefix exactly.
func (v *BusView) Counts() Counts { return v.counts }

// Close detaches the consumer: its cursor stops holding back the ring
// release and any sibling blocked on the skew bound wakes up. A consumer
// that abandons the stream early (simulation error, cancellation) must call
// Close, or the stalled cursor blocks every other view forever. Close is
// idempotent; Next returns false after it.
func (v *BusView) Close() {
	b := v.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if v.closed {
		return
	}
	v.closed = true
	v.local = nil
	v.pos = 0
	b.releaseLocked()
	b.cond.Broadcast()
}
