package emulator

import (
	"fmt"
	"sync"
)

// DefaultBusSkew is the Broadcast skew bound used when callers pass a
// non-positive one: the maximum number of dynamic instructions the fastest
// consumer may run ahead of the slowest before it blocks. The bound is the
// bus's peak buffering, so it is also the memory ceiling of a fan-out run:
// DefaultBusSkew records regardless of how many consumers share the stream.
// The value comfortably exceeds the largest in-flight span the pipeline
// model reaches (ROB + misprediction windows + the reconvergence-scan
// lookahead, ~2–3 K records), so same-workload cores of different commit
// policies almost never block on each other in practice.
const DefaultBusSkew = 8192

// viewChunk is how many ring slots a view leases per lock acquisition.
// Leasing amortises the bus mutex over the pipeline's one-instruction-at-a-
// time Next calls; leased records are served by reference straight out of
// the shared ring, so N consumers share one copy of every record instead of
// each copying the chunk into private storage.
const viewChunk = 64

// Broadcast fans one TraceSource out to N lockstep consumers: a single
// functional emulation (or trace replay) feeds any number of per-consumer
// TraceSource views, so a policy sweep over one workload costs one
// functional pass plus N timing models instead of N full re-emulations.
//
// The stream is buffered in a shared bounded ring with one cursor per view.
// Whichever consumer first needs a record past the buffered end pulls it
// from the source; records are released once the slowest cursor passes, and
// a consumer that would run more than maxSkew records ahead of the slowest
// blocks (yielding its goroutine) until the laggard advances or detaches.
// Peak buffering is therefore min(maxSkew, stream length) records, no
// matter how many consumers attach.
//
// The ring is allocated once, at the first refill, with capacity for the
// full skew bound and never reallocated: views read leased slots without
// the lock, so the storage must stay put for the life of the bus. A view's
// published cursor advances only when it takes a new lease, which keeps the
// ring head at or below every leased slot — a slot is never recycled while
// a consumer may still be reading it.
//
// Views must all be created before the first Next; a consumer that stops
// early (error, cancellation) must Close its view or its stalled cursor
// blocks the others forever. The bus is safe for one goroutine per view;
// each individual view keeps TraceSource's single-consumer contract.
type Broadcast struct {
	mu   sync.Mutex
	cond sync.Cond

	src     TraceSource
	refSrc  RefSource  // src when it supports zero-copy delivery, else nil
	intoSrc IntoSource // src when it can produce straight into the ring, else nil
	name    string
	maxSkew int

	buf  []DynInst // ring storage; fixed power-of-two length >= maxSkew
	head int64     // absolute index of the oldest buffered record
	end  int64     // absolute index one past the newest buffered record
	eof  bool
	err  error

	views   []*BusView
	started bool
	peak    int // high-water mark of buffered records
}

// NewBroadcast wraps src in a broadcast bus with the given skew bound (a
// non-positive bound means DefaultBusSkew). The source must not be consumed
// by anyone else once the bus owns it.
func NewBroadcast(src TraceSource, maxSkew int) *Broadcast {
	if maxSkew <= 0 {
		maxSkew = DefaultBusSkew
	}
	b := &Broadcast{src: src, name: src.Name(), maxSkew: maxSkew}
	b.refSrc, _ = src.(RefSource)
	b.intoSrc, _ = src.(IntoSource)
	b.cond.L = &b.mu
	return b
}

// View hands out one consumer's TraceSource over the shared stream. All
// views must be created before any of them calls Next — a late joiner would
// have already missed released records — so View panics once consumption
// has started.
func (b *Broadcast) View() *BusView {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		panic("emulator: Broadcast.View after consumption started")
	}
	v := &BusView{b: b, cursor: 0}
	b.views = append(b.views, v)
	return v
}

// PeakRecords returns the high-water mark of records buffered in the ring —
// the realized skew between the fastest and slowest consumer, bounded above
// by the construction-time skew limit.
func (b *Broadcast) PeakRecords() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// minCursorLocked returns the smallest cursor over open views. Callers hold
// b.mu and guarantee at least one open view.
func (b *Broadcast) minCursorLocked() int64 {
	min := int64(1) << 62
	for _, v := range b.views {
		if !v.closed && v.cursor < min {
			min = v.cursor
		}
	}
	return min
}

// releaseLocked advances the ring head to the slowest open cursor, recycling
// every record all consumers have passed, and wakes consumers blocked on the
// skew bound. Callers hold b.mu.
func (b *Broadcast) releaseLocked() {
	b.advanceHeadLocked(b.minCursorLocked())
}

// advanceHeadLocked raises the ring head to min (clamped to the buffered
// end, where the no-open-views sentinel lands), waking skew-blocked
// consumers when records were recycled. Callers hold b.mu.
func (b *Broadcast) advanceHeadLocked(min int64) {
	if min > b.end {
		min = b.end
	}
	if min > b.head {
		b.head = min
		b.cond.Broadcast()
	}
}

// slotLocked returns the ring slot the next record will occupy, allocating
// the ring on first use and enforcing the occupancy invariant. Writing the
// unpublished slot is safe: the overflow check proves it cannot alias any
// slot a consumer may be reading (all leased slots lie in [head, end)).
// The record is not visible until commitSlotLocked. Callers hold b.mu.
func (b *Broadcast) slotLocked() *DynInst {
	if b.buf == nil {
		// Allocate once at full skew capacity (next power of two): leased
		// slots are read without the lock, so the ring can never move.
		size := 1
		for size < b.maxSkew {
			size <<= 1
		}
		b.buf = make([]DynInst, size)
	}
	if n := int(b.end - b.head); n >= len(b.buf) {
		panic(fmt.Sprintf("emulator: broadcast ring overflow: %d records in %d slots (skew %d)",
			n, len(b.buf), b.maxSkew))
	}
	return &b.buf[b.end&int64(len(b.buf)-1)]
}

// commitSlotLocked publishes the record written to slotLocked's slot.
// Callers hold b.mu.
func (b *Broadcast) commitSlotLocked() {
	b.end++
	if n := int(b.end - b.head); n > b.peak {
		b.peak = n
	}
}

// pushLocked appends one record to the ring by copy. The caller has already
// enforced the skew bound and advanced the head, so occupancy stays within
// the fixed storage. Callers hold b.mu.
func (b *Broadcast) pushLocked(d *DynInst) {
	*b.slotLocked() = *d
	b.commitSlotLocked()
}

// BusView is one consumer's pull-based view of a Broadcast stream: a
// TraceSource delivering exactly the records the underlying source produces,
// in order, with its own Counts. Next blocks when this consumer would exceed
// the bus skew bound; Close detaches the consumer so siblings stop waiting
// for it.
type BusView struct {
	b      *Broadcast
	cursor int64 // published protected position: start of the current lease (under b.mu)
	closed bool  // under b.mu

	// Consumer-goroutine-private lease state: records [cursor, cursor+n) of
	// the shared ring are reserved for this view — the ring head cannot pass
	// the published cursor, so they are served by reference without the
	// lock. pos is the next lease offset to deliver.
	pos    int
	n      int
	mask   int64 // len(b.buf)-1, cached when the first lease is taken
	counts Counts
	ended  bool
}

// Name identifies the shared underlying program.
func (v *BusView) Name() string { return v.b.name }

// Next delivers this consumer's next dynamic instruction by value, or false
// once the shared stream is exhausted (or the view was closed).
func (v *BusView) Next() (DynInst, bool) {
	d, ok := v.NextRef()
	if !ok {
		return DynInst{}, false
	}
	return *d, true
}

// NextRef delivers a pointer to this consumer's next dynamic instruction,
// valid until the next NextRef or Next call (the record lives in the shared
// ring; advancing past it eventually recycles the slot). When the lease
// runs dry it takes a new one — pulling the underlying source when this
// consumer is the first to need a record, blocking when the skew bound says
// the slowest consumer must catch up first.
func (v *BusView) NextRef() (*DynInst, bool) {
	if v.pos < v.n {
		d := &v.b.buf[(v.cursor+int64(v.pos))&v.mask]
		v.pos++
		v.counts.add(d)
		return d, true
	}
	if v.ended {
		return nil, false
	}
	if !v.refill() {
		v.ended = true
		return nil, false
	}
	d := &v.b.buf[(v.cursor+int64(v.pos))&v.mask]
	v.pos++
	v.counts.add(d)
	return d, true
}

// refill retires the current lease and takes the next one, reporting false
// at end of stream. Publishing the new cursor (the old lease end) before
// assembling the lease releases the slots the consumer has finished with;
// the newly leased slots stay protected because the head can never pass
// this view's published cursor.
func (v *BusView) refill() bool {
	b := v.b
	b.mu.Lock()
	defer b.mu.Unlock()
	b.started = true
	v.cursor += int64(v.pos)
	v.pos, v.n = 0, 0
	// min caches the slowest open cursor. Cursors are monotonic and move
	// only under b.mu — held for this whole loop except inside cond.Wait —
	// so the cache is a lower bound on the true minimum: checking skew
	// against it is conservative (never overshoots the bound), and the
	// O(views) rescan happens once per refill, per wakeup, or per maxSkew
	// records pulled instead of once per record.
	min := b.minCursorLocked()
	for v.n < viewChunk {
		if v.closed {
			break
		}
		if v.cursor+int64(v.n) < b.end {
			v.n++
			continue
		}
		if b.eof {
			break
		}
		if int(b.end-min) >= b.maxSkew {
			// Possibly at the bound: refresh — retiring our lease above may
			// have advanced the true minimum — and recycle passed records.
			min = b.minCursorLocked()
			b.advanceHeadLocked(min)
			if int(b.end-min) >= b.maxSkew {
				// Genuinely the fastest. Park until the slowest advances (or
				// detaches), but deliver what we already leased first so the
				// pipeline keeps cycling.
				if v.n > 0 {
					break
				}
				b.cond.Wait()
				min = b.minCursorLocked()
				continue
			}
		}
		// Keep the head no staler than the skew check, so pushLocked's
		// occupancy (peak metric and overflow check) stays within the bound.
		b.advanceHeadLocked(min)
		if !b.pullLocked() {
			break
		}
	}
	v.mask = int64(len(b.buf) - 1)
	// Retiring the old lease advanced this cursor; if we were (one of) the
	// slowest, records became releasable.
	b.releaseLocked()
	return v.n > 0
}

// pullLocked draws one record from the underlying source into the ring — by
// reference when the source supports zero-copy delivery (the ring copy
// happens immediately, within the pointee's validity window), by value
// otherwise — and records end-of-stream. Callers hold b.mu.
func (b *Broadcast) pullLocked() bool {
	if b.intoSrc != nil {
		// The source writes straight into the ring slot: the live-emulator
		// feed has zero DynInst copies on the producer side.
		if b.intoSrc.NextInto(b.slotLocked()) {
			b.commitSlotLocked()
			return true
		}
	} else if b.refSrc != nil {
		if d, ok := b.refSrc.NextRef(); ok {
			b.pushLocked(d)
			return true
		}
	} else if d, ok := b.src.Next(); ok {
		b.pushLocked(&d)
		return true
	}
	b.eof = true
	b.err = b.src.Err()
	b.cond.Broadcast()
	return false
}

// Err reports the underlying stream's terminal error once this view has
// consumed the stream to its end, mirroring the solo-source contract; a view
// closed before the end reports nil.
func (v *BusView) Err() error {
	if !v.ended {
		return nil
	}
	v.b.mu.Lock()
	defer v.b.mu.Unlock()
	if v.closed && v.cursor < v.b.end {
		return nil
	}
	return v.b.err
}

// Counts summarises the instructions delivered to this consumer so far; it
// matches a solo source over the same stream prefix exactly.
func (v *BusView) Counts() Counts { return v.counts }

// Close detaches the consumer: its cursor stops holding back the ring
// release and any sibling blocked on the skew bound wakes up. A consumer
// that abandons the stream early (simulation error, cancellation) must call
// Close, or the stalled cursor blocks every other view forever. Close is
// idempotent; Next returns false after it.
func (v *BusView) Close() {
	b := v.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if v.closed {
		return
	}
	v.closed = true
	v.cursor += int64(v.pos)
	v.pos, v.n = 0, 0
	b.releaseLocked()
	b.cond.Broadcast()
}
