package workgen

import (
	"reflect"
	"strings"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
)

// TestGenerateDeterministic: identical Params yield byte-identical programs
// and identical dynamic traces.
func TestGenerateDeterministic(t *testing.T) {
	for s := uint64(1); s <= 8; s++ {
		p := FromSeed(s)
		p1, c1, err1 := Generate(p)
		p2, c2, err2 := Generate(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v / %v", s, err1, err2)
		}
		if !reflect.DeepEqual(c1, c2) {
			t.Errorf("seed %d: characterization records differ", s)
		}
		i1, _ := p1.Layout()
		i2, _ := p2.Layout()
		if !reflect.DeepEqual(i1.Insts, i2.Insts) {
			t.Fatalf("seed %d: nondeterministic code", s)
		}
		if !reflect.DeepEqual(p1.Data, p2.Data) {
			t.Fatalf("seed %d: nondeterministic data image", s)
		}
		t1, e1 := emulator.New(i1).Run(1 << 20)
		t2, e2 := emulator.New(i2).Run(1 << 20)
		if e1 != nil || e2 != nil || t1.Len() != t2.Len() {
			t.Fatalf("seed %d: nondeterministic trace (%d vs %d, %v %v)", s, t1.Len(), t2.Len(), e1, e2)
		}
	}
}

// TestGenerateTerminates: every derived sample halts within budget and the
// characterization's dynamic-length estimate is within 2x of reality.
func TestGenerateTerminates(t *testing.T) {
	for _, p := range Seeds(20) {
		prog, ch, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		img, err := prog.Layout()
		if err != nil {
			t.Fatalf("%s: layout: %v", p.Name(), err)
		}
		m := emulator.New(img)
		tr, err := m.Run(1 << 21)
		if err != nil {
			t.Fatalf("%s: run: %v", p.Name(), err)
		}
		if !m.Halted() {
			t.Fatalf("%s: did not halt (%d insts executed)", p.Name(), tr.Len())
		}
		if tr.Branches == 0 || tr.Loads == 0 {
			t.Errorf("%s: degenerate trace (%d branches, %d loads)", p.Name(), tr.Branches, tr.Loads)
		}
		est := int64(ch.DynPerOuter) * int64(p.Iterations)
		if ratio := float64(tr.Len()) / float64(est); ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: estimate %d vs actual %d (ratio %.2f)", p.Name(), est, tr.Len(), ratio)
		}
		if ch.StaticInsts != len(img.Insts) {
			t.Errorf("%s: StaticInsts %d, image has %d", p.Name(), ch.StaticInsts, len(img.Insts))
		}
	}
}

// TestAxesShapeThePrograms checks each axis actually moves the generated
// character: the axes must be real knobs, not decoration.
func TestAxesShapeThePrograms(t *testing.T) {
	base := Params{Seed: 9, BranchCriticality: 0, DepLen: 0, MLP: 1, StorePressure: 0, Nest: 1, Iterations: 50}

	run := func(p Params) (*emulator.Trace, Character) {
		t.Helper()
		prog, ch, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		img, err := prog.Layout()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := emulator.New(img).Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return tr, ch
	}

	trBase, chBase := run(base)
	if chBase.CriticalBranches != 0 {
		t.Errorf("criticality 0 produced %d critical branches", chBase.CriticalBranches)
	}
	if chBase.StoresPerIter != 0 || trBase.Stores != 0 {
		t.Errorf("store pressure 0 produced stores (%d/iter, %d dynamic)", chBase.StoresPerIter, trBase.Stores)
	}

	crit := base
	crit.BranchCriticality = 1
	_, chCrit := run(crit)
	if chCrit.CriticalBranches != chCrit.Branches {
		t.Errorf("criticality 1: %d of %d branches critical", chCrit.CriticalBranches, chCrit.Branches)
	}

	dep := base
	dep.DepLen = MaxDepLen
	_, chDep := run(dep)
	if chDep.DepInsts < MaxDepLen*chDep.Branches {
		t.Errorf("DepLen %d emitted only %d dependent insts over %d branches", MaxDepLen, chDep.DepInsts, chDep.Branches)
	}

	mlp := base
	mlp.MLP = MaxMLP
	trMLP, chMLP := run(mlp)
	if chMLP.ChaseLoads < MaxMLP {
		t.Errorf("MLP %d produced %d chase loads/iter", MaxMLP, chMLP.ChaseLoads)
	}
	if trMLP.Loads <= trBase.Loads {
		t.Errorf("MLP %d dynamic loads %d not above baseline %d", MaxMLP, trMLP.Loads, trBase.Loads)
	}

	st := base
	st.StorePressure = 1
	trSt, chSt := run(st)
	if chSt.StoresPerIter != MaxStores {
		t.Errorf("store pressure 1 produced %d stores/iter, want %d", chSt.StoresPerIter, MaxStores)
	}
	if trSt.Stores == 0 {
		t.Error("store pressure 1 produced no dynamic stores")
	}

	nest := base
	nest.Nest = MaxNest
	trNest, chNest := run(nest)
	if chNest.InnerTrips <= 1 {
		t.Errorf("nest %d inner trips %d", MaxNest, chNest.InnerTrips)
	}
	if trNest.Len() <= trBase.Len()*2 {
		t.Errorf("nest %d dynamic length %d not well above flat %d", MaxNest, trNest.Len(), trBase.Len())
	}
}

// TestGeneratedProgramsCompile: the NOREBA pass accepts generated programs,
// annotation preserves semantics, and a dependent-region-heavy sample gets
// branches marked (the axes must produce compiler-visible structure).
func TestGeneratedProgramsCompile(t *testing.T) {
	p := Params{Seed: 3, BranchCriticality: 1, DepLen: 12, MLP: 2, StorePressure: 0.5, Nest: 1, Iterations: 40}
	prog, _, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	img, err := prog.Layout()
	if err != nil {
		t.Fatal(err)
	}
	m1 := emulator.New(img)
	if _, err := m1.Run(1 << 20); err != nil {
		t.Fatal(err)
	}

	prog2, _, _ := Generate(p)
	res, err := compiler.Compile(prog2, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Stats.MarkedBranches == 0 {
		t.Error("compiler marked no branches in a dependent-region-heavy sample")
	}
	m2 := emulator.New(res.Image)
	if _, err := m2.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if m1.IntRegs != m2.IntRegs {
		t.Error("architectural state diverged after annotation")
	}
	for a, v := range m1.Mem {
		if m2.Mem[a] != v {
			t.Errorf("mem[%#x]: %d vs %d", a, v, m2.Mem[a])
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, FromSeed(42)) {
		t.Error("seed-only spec should equal FromSeed")
	}

	p, err = ParseSpec("seed=7, crit=0.25, dep=9, mlp=3, store=0.75, nest=2, iters=123")
	if err != nil {
		t.Fatal(err)
	}
	want := Params{Seed: 7, BranchCriticality: 0.25, DepLen: 9, MLP: 3, StorePressure: 0.75, Nest: 2, Iterations: 123}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("got %+v want %+v", p, want)
	}

	for _, bad := range []string{
		"",                  // no seed
		"crit=0.5",          // no seed
		"seed=x",            // bad seed
		"seed=1,crit=2",     // out of range
		"seed=1,dep=-1",     // out of range
		"seed=1,dep=99",     // out of range
		"seed=1,mlp=0",      // out of range
		"seed=1,nest=9",     // out of range
		"seed=1,iters=0",    // out of range
		"seed=1,bogus=3",    // unknown key
		"seed=1,seed=2",     // duplicate
		"seed=1,crit",       // not key=value
		"seed=1,store=nope", // bad float
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestNameStable(t *testing.T) {
	p := FromSeed(101)
	if p.Name() != FromSeed(101).Name() {
		t.Error("Name not stable")
	}
	if !strings.HasPrefix(p.Name(), "gen/") {
		t.Errorf("name %q lacks gen/ prefix", p.Name())
	}
	// Iterations are the scale knob and must not change the name.
	q := p
	q.Iterations *= 7
	if p.Name() != q.Name() {
		t.Error("Iterations changed the name")
	}
	// Distinct axis points get distinct names.
	q = p
	q.DepLen++
	if p.Name() == q.Name() {
		t.Error("DepLen change kept the name")
	}
}

// TestParseNameRoundTrip: ParseName inverts Name for arbitrary seeds, and
// rejects anything that does not re-render to itself.
func TestParseNameRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := FromSeed(seed)
		got, err := ParseName(p.Name())
		if err != nil {
			t.Fatalf("seed %d: ParseName(%q): %v", seed, p.Name(), err)
		}
		if got.Name() != p.Name() {
			t.Fatalf("seed %d: round trip %q → %q", seed, p.Name(), got.Name())
		}
		// The parsed axes must match, not just the rendered name.
		if got.Seed != p.Seed || got.DepLen != p.DepLen || got.MLP != p.MLP || got.Nest != p.Nest {
			t.Fatalf("seed %d: parsed %+v, want %+v", seed, got, p)
		}
	}

	for _, bad := range []string{
		"",
		"mcf",
		"gen/",
		"gen/s1",
		"gen/s1c80d6m2p30",        // truncated
		"gen/s1c080d6m2p30n1",     // extra zero padding: non-canonical
		"gen/s1c80d6m2p30n9",      // nest out of range: normalizes away
		"gen/s1c80d6m2p30n1extra", // trailing garbage
	} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) accepted", bad)
		}
	}
}

func TestNormalizeClamps(t *testing.T) {
	nan := 0.0
	nan /= nan
	p := Params{Seed: 1, BranchCriticality: 7, DepLen: 999, MLP: -4, StorePressure: nan, Nest: 0, Iterations: -2}.Normalize()
	want := Params{Seed: 1, BranchCriticality: 1, DepLen: MaxDepLen, MLP: 1, StorePressure: 0, Nest: 1, Iterations: 1}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("got %+v want %+v", p, want)
	}
	if got := (Params{Seed: 1, BranchCriticality: -3, DepLen: 2, MLP: 99, StorePressure: 1.5, Nest: 9, Iterations: 5}).Normalize(); got.BranchCriticality != 0 || got.MLP != MaxMLP || got.StorePressure != 1 || got.Nest != MaxNest {
		t.Errorf("upper/lower clamps wrong: %+v", got)
	}
}

func TestSeedsSortedAndDistinct(t *testing.T) {
	ps := Seeds(30)
	if len(ps) != 30 {
		t.Fatalf("got %d params", len(ps))
	}
	seen := map[string]bool{}
	for i, p := range ps {
		n := p.Name()
		if seen[n] {
			t.Errorf("duplicate derived name %s", n)
		}
		seen[n] = true
		if i > 0 && ps[i-1].Name() > n {
			t.Error("Seeds not sorted by name")
		}
	}
}

func TestCharacterString(t *testing.T) {
	_, ch, err := Generate(FromSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s := ch.String()
	if !strings.Contains(s, "gen/") || !strings.Contains(s, "dep insts") {
		t.Errorf("unhelpful characterization string %q", s)
	}
}
