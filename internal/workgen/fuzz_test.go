package workgen

import (
	"reflect"
	"testing"

	"github.com/noreba-sim/noreba/internal/compiler"
	"github.com/noreba-sim/noreba/internal/emulator"
	"github.com/noreba-sim/noreba/internal/pipeline"
)

// fuzzPolicies is every commit policy the differential invariant must hold
// under (the paper's baselines, NOREBA, and the speculative oracles).
var fuzzPolicies = []pipeline.PolicyKind{
	pipeline.InOrder, pipeline.NonSpecOoO, pipeline.Noreba,
	pipeline.IdealReconv, pipeline.SpecBR, pipeline.Spec,
}

// FuzzGeneratedDifferential is the generator-driven differential invariant:
// ANY point in the character space must produce a program whose cycle-level
// simulation — under every commit policy, sanitized, ECL on and off for the
// NOREBA policy — retires exactly the architectural trace and leaves
// bit-identical architectural state. The fuzzer owns the axis mapping, so it
// explores interactions (deep nests × critical branches × store pressure)
// no hand-picked table covers.
func FuzzGeneratedDifferential(f *testing.F) {
	// One seed per character-axis extreme, plus an everything-maxed point.
	f.Add(uint64(1), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(10))     // all axes minimal
	f.Add(uint64(2), uint64(100), uint64(0), uint64(0), uint64(0), uint64(0), uint64(10))   // criticality max
	f.Add(uint64(3), uint64(0), uint64(24), uint64(0), uint64(0), uint64(0), uint64(10))    // dependent regions max
	f.Add(uint64(4), uint64(0), uint64(0), uint64(7), uint64(0), uint64(0), uint64(10))     // MLP max
	f.Add(uint64(5), uint64(0), uint64(0), uint64(0), uint64(100), uint64(0), uint64(10))   // store pressure max
	f.Add(uint64(6), uint64(0), uint64(0), uint64(0), uint64(0), uint64(2), uint64(10))     // nest max
	f.Add(uint64(7), uint64(100), uint64(24), uint64(7), uint64(100), uint64(2), uint64(8)) // everything max

	f.Fuzz(func(t *testing.T, seed, crit, dep, mlp, store, nest, iters uint64) {
		p := Params{
			Seed:              seed,
			BranchCriticality: float64(crit%101) / 100,
			DepLen:            int(dep % (MaxDepLen + 1)),
			MLP:               1 + int(mlp%MaxMLP),
			StorePressure:     float64(store%101) / 100,
			Nest:              1 + int(nest%MaxNest),
			Iterations:        1 + int(iters%40),
		}
		prog, _, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: generate: %v", p.Name(), err)
		}
		res, err := compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name(), err)
		}

		const budget = 1 << 17
		refMachine := emulator.New(res.Image)
		refTrace, err := refMachine.Run(budget)
		if err != nil {
			t.Fatalf("%s: architectural run: %v", p.Name(), err)
		}
		ref := refMachine.Snapshot()
		wantCommits := int64(refTrace.Len()) - refTrace.Setup

		check := func(cfg pipeline.Config, variant string) {
			m := emulator.New(res.Image)
			cfg.Sanitize = true
			st, err := pipeline.NewCoreFromSource(cfg, emulator.NewSource(m, budget), res.Meta).Run()
			if err != nil {
				t.Fatalf("%s under %s: %v", p.Name(), variant, err)
			}
			if st.Committed != wantCommits {
				t.Errorf("%s under %s: committed %d, architectural trace has %d", p.Name(), variant, st.Committed, wantCommits)
			}
			got := m.Snapshot()
			if got.IntRegs != ref.IntRegs || got.FPRegs != ref.FPRegs {
				t.Errorf("%s under %s: register state diverged", p.Name(), variant)
			}
			if !reflect.DeepEqual(got.Mem, ref.Mem) || !reflect.DeepEqual(got.FMem, ref.FMem) {
				t.Errorf("%s under %s: memory state diverged", p.Name(), variant)
			}
			if got.PC != ref.PC || got.Halted != ref.Halted {
				t.Errorf("%s under %s: control state diverged", p.Name(), variant)
			}
		}
		for _, pk := range fuzzPolicies {
			cfg := pipeline.SkylakeConfig()
			cfg.Policy = pk
			check(cfg, pk.String())
		}
		// ECL changes when loads release queue entries; it must never
		// change what is computed.
		cfg := pipeline.SkylakeConfig()
		cfg.Policy = pipeline.Noreba
		cfg.ECL = true
		check(cfg, "Noreba+ECL")
	})
}
