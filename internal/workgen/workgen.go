// Package workgen generates deterministic, seed-parameterized benchmark
// programs over the workload character axes the paper's figures depend on
// (DESIGN.md §12): branch criticality (does a branch's comparand come off a
// long-latency load or cheap ALU work), dependent-region length (how many
// instructions are control-dependent on each branch), memory-level
// parallelism (independent pointer-chase streams in flight), store-queue
// pressure and loop-nest shape.
//
// The 8 hand-written kernels in internal/workloads each pin one SPEC-like
// character; workgen generalizes that into a continuous family so the
// correctness substrate — emulator-vs-pipeline differential tests, the
// pipeline sanitizer, golden statistics — can be exercised over thousands of
// distinct-but-characterized programs instead of a curated handful
// ("Validating Simplified Processor Models", PAPERS.md). Every generated
// program is a valid program.Program: counted loops only (guaranteed
// termination), cyclic pointer chains seeded in the data image, and a
// Character record describing what was built.
//
// Identical Params yield byte-identical programs: the generator draws from
// its own linear congruential sequence, never math/rand, so programs are
// reproducible across Go releases and safe to pin in golden stats.
package workgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/noreba-sim/noreba/internal/isa"
	"github.com/noreba-sim/noreba/internal/program"
)

// Axis bounds. Normalize clamps into these; ParseSpec rejects values outside
// them so a typo fails loudly instead of silently saturating.
const (
	MaxDepLen  = 24 // dependent-region instructions per branch hammock
	MaxMLP     = 8  // independent pointer-chase streams
	MaxNest    = 3  // loop-nest depth
	MaxStores  = 8  // stores per iteration at StorePressure 1.0
	chainNodes = 64 // nodes per pointer-chase chain
	// chainStride spaces chain nodes 8KB apart so every chase load walks a
	// 512KB region pseudo-randomly: misses in all cache levels and defeats
	// the delta prefetcher, like the mcf kernel's tag loads.
	chainStride = 8192
	streamBase  = 1 << 22 // first chain region; streams are spaced below
	streamSpace = int64(chainNodes) * chainStride
	scratchBase = 1 << 21 // store target region (independent of the chains)
	scratchLen  = 512     // words in the scratch ring
)

// Params selects one generated program. The zero value is not runnable;
// derive from FromSeed or ParseSpec, or fill explicitly and call Normalize.
type Params struct {
	// Seed drives every generation-time draw (branch-site choices,
	// chain permutations, instruction selection).
	Seed uint64
	// BranchCriticality in [0,1]: the probability that a branch compares a
	// value loaded by a long-latency chase load (resolves late, mcf-like)
	// rather than cheap ALU state (resolves early, sha-like).
	BranchCriticality float64
	// DepLen is the number of instructions in each branch's dependent
	// region (the hammock between branch and reconvergence point);
	// 0..MaxDepLen. Large values reproduce bzip2's red cloud.
	DepLen int
	// MLP is the number of independent pointer-chase streams advanced per
	// iteration; 1..MaxMLP. Addresses are ready early across streams, so
	// their misses overlap.
	MLP int
	// StorePressure in [0,1] scales stores per iteration (0..MaxStores).
	StorePressure float64
	// Nest is the loop-nest depth, 1..MaxNest: inner levels run short
	// counted trips around the body, reshaping branch history and
	// reconvergence structure without changing the body's work.
	Nest int
	// Iterations is the outer-loop trip count: the scale knob, roughly
	// linear in dynamic instructions.
	Iterations int
}

// Normalize clamps every axis into its legal range and returns the result.
func (p Params) Normalize() Params {
	clampF := func(v float64) float64 {
		if v < 0 || v != v { // NaN guards: hostile fuzz inputs reach here
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	p.BranchCriticality = clampF(p.BranchCriticality)
	p.StorePressure = clampF(p.StorePressure)
	if p.DepLen < 0 {
		p.DepLen = 0
	}
	if p.DepLen > MaxDepLen {
		p.DepLen = MaxDepLen
	}
	if p.MLP < 1 {
		p.MLP = 1
	}
	if p.MLP > MaxMLP {
		p.MLP = MaxMLP
	}
	if p.Nest < 1 {
		p.Nest = 1
	}
	if p.Nest > MaxNest {
		p.Nest = MaxNest
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	return p
}

// Name returns the canonical workload name for the parameters: stable across
// runs, safe in URLs and shells, and unique per normalized Params (it is the
// registry key for pinned generated workloads). Iterations are excluded —
// they are the scale knob the registry already owns.
func (p Params) Name() string {
	p = p.Normalize()
	return fmt.Sprintf("gen/s%dc%02dd%dm%dp%02dn%d",
		p.Seed, int(p.BranchCriticality*100+0.5), p.DepLen, p.MLP,
		int(p.StorePressure*100+0.5), p.Nest)
}

// ParseName inverts Params.Name: it parses a canonical "gen/s…c…d…m…p…n…"
// workload name back into the parameters that produced it. Iterations, which
// Name excludes, are derived from the seed (FromSeed) so the result is fully
// runnable. Only canonical names round-trip: anything whose re-rendered Name
// differs from the input (out-of-range axes, stray zero padding) is rejected,
// so a name can never silently alias two parameter sets.
func ParseName(name string) (Params, error) {
	body, ok := strings.CutPrefix(name, "gen/")
	if !ok {
		return Params{}, fmt.Errorf("workgen: %q is not a generated-workload name (want gen/…)", name)
	}
	var seed uint64
	var crit, dep, mlp, store, nest int
	if _, err := fmt.Sscanf(body, "s%dc%dd%dm%dp%dn%d", &seed, &crit, &dep, &mlp, &store, &nest); err != nil {
		return Params{}, fmt.Errorf("workgen: malformed generated-workload name %q", name)
	}
	p := FromSeed(seed)
	p.BranchCriticality = float64(crit) / 100
	p.DepLen = dep
	p.MLP = mlp
	p.StorePressure = float64(store) / 100
	p.Nest = nest
	p = p.Normalize()
	if p.Name() != name {
		return Params{}, fmt.Errorf("workgen: non-canonical generated-workload name %q (canonical: %q)", name, p.Name())
	}
	return p, nil
}

// FromSeed derives a full parameter set from a seed alone, spreading samples
// across the whole axis space: the fuzz harness and the service's generated
// sweeps use it to name a characterized program with one integer.
func FromSeed(seed uint64) Params {
	r := lcg(seed*2654435761 + 1)
	return Params{
		Seed:              seed,
		BranchCriticality: float64(r.intn(101)) / 100,
		DepLen:            r.intn(MaxDepLen + 1),
		MLP:               1 + r.intn(MaxMLP),
		StorePressure:     float64(r.intn(101)) / 100,
		Nest:              1 + r.intn(MaxNest),
		Iterations:        60 + r.intn(140),
	}.Normalize()
}

// ParseSpec parses a CLI parameter string of comma-separated key=value
// pairs: seed=42,crit=0.8,dep=12,mlp=4,store=0.5,nest=2,iters=300. Every
// key except seed is optional; omitted axes are derived from the seed via
// FromSeed, so "seed=42" alone names a fully characterized program.
func ParseSpec(spec string) (Params, error) {
	seen := map[string]bool{}
	var seed uint64
	haveSeed := false
	overrides := map[string]string{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Params{}, fmt.Errorf("workgen: bad spec entry %q (want key=value)", kv)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if seen[k] {
			return Params{}, fmt.Errorf("workgen: duplicate spec key %q", k)
		}
		seen[k] = true
		if k == "seed" {
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Params{}, fmt.Errorf("workgen: bad seed %q: %v", v, err)
			}
			seed, haveSeed = s, true
			continue
		}
		overrides[k] = v
	}
	if !haveSeed {
		return Params{}, fmt.Errorf("workgen: spec %q has no seed=N", spec)
	}
	p := FromSeed(seed)
	parseF := func(v string) (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return 0, fmt.Errorf("workgen: want a value in [0,1], got %q", v)
		}
		return f, nil
	}
	parseI := func(v string, lo, hi int) (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil || n < lo || n > hi {
			return 0, fmt.Errorf("workgen: want an integer in [%d,%d], got %q", lo, hi, v)
		}
		return n, nil
	}
	for k, v := range overrides {
		var err error
		switch k {
		case "crit":
			p.BranchCriticality, err = parseF(v)
		case "dep":
			p.DepLen, err = parseI(v, 0, MaxDepLen)
		case "mlp":
			p.MLP, err = parseI(v, 1, MaxMLP)
		case "store":
			p.StorePressure, err = parseF(v)
		case "nest":
			p.Nest, err = parseI(v, 1, MaxNest)
		case "iters":
			p.Iterations, err = parseI(v, 1, 1<<24)
		default:
			err = fmt.Errorf("workgen: unknown spec key %q", k)
		}
		if err != nil {
			return Params{}, fmt.Errorf("workgen: %s: %w", k, err)
		}
	}
	return p.Normalize(), nil
}

// Character is the characterization record emitted alongside each generated
// program: what the sample actually contains, so a differential failure or a
// sweep result can be attributed to a point in axis space without
// re-deriving it from the code.
type Character struct {
	Params      Params
	StaticInsts int // laid-out instruction count (before annotation)
	// Branches is the number of conditional-branch sites in the body
	// (hammock branches; loop latches excluded).
	Branches int
	// CriticalBranches counts body branches whose comparand comes off a
	// chase load.
	CriticalBranches int
	// DepInsts counts instructions inside dependent regions (hammock
	// bodies) across all branch sites.
	DepInsts int
	// ChaseLoads is the number of pointer-chase loads per innermost
	// iteration (the MLP streams plus tag loads at critical branches).
	ChaseLoads int
	// StoresPerIter is the store count per innermost iteration.
	StoresPerIter int
	// InnerTrips is the product of the nested loops' trip counts: how many
	// times the body runs per outer iteration.
	InnerTrips int
	// DynPerOuter estimates dynamic instructions per outer-loop iteration
	// (branch paths averaged), used to pick registry default scales.
	DynPerOuter int
}

// String renders the record as a one-line summary.
func (c Character) String() string {
	return fmt.Sprintf(
		"%s: static %d, body branches %d (%d critical), dep insts %d, chase loads/iter %d, stores/iter %d, inner trips %d, ~%d dyn insts/outer-iter",
		c.Params.Name(), c.StaticInsts, c.Branches, c.CriticalBranches,
		c.DepInsts, c.ChaseLoads, c.StoresPerIter, c.InnerTrips, c.DynPerOuter)
}

// Register pools. Stream pointers persist across iterations; accumulators
// absorb dependent-region and independent-tail work; the remaining
// temporaries carry per-iteration values. The pools are disjoint so a draw
// from one can never corrupt another's live value.
var (
	streamRegs = []isa.Reg{isa.S0, isa.S1, isa.S2, isa.A4, isa.A5, isa.A6, isa.A7, isa.T4}
	depRegs    = []isa.Reg{isa.A1, isa.A2, isa.A3, isa.S3, isa.S4, isa.S5}
	tailRegs   = []isa.Reg{isa.S6, isa.S7, isa.S11}
)

// Generate builds the program selected by p (after normalization) together
// with its characterization record. Identical parameters yield byte-identical
// programs; every program terminates via counted loops and halts.
func Generate(p Params) (*program.Program, Character, error) {
	p = p.Normalize()
	r := lcg(p.Seed ^ 0x9e3779b97f4a7c15)
	b := program.NewBuilder(p.Name())
	ch := Character{Params: p}

	// Entry: stream pointers start at their chain bases, the scratch
	// cursor at the store ring, the outer counter at Iterations.
	b.Label("entry")
	for s := 0; s < p.MLP; s++ {
		b.Li(streamRegs[s], streamBase+int64(s)*streamSpace)
	}
	b.Li(isa.S10, scratchBase)
	b.Li(isa.A0, int64(p.Iterations))

	// Loop-nest preamble: each inner level is a short counted loop. Trip
	// counts shrink with depth so nesting reshapes control flow without
	// exploding dynamic length.
	trips := []int{0, 3, 2} // level 1 is the outer Iterations loop
	ch.InnerTrips = 1
	b.Label("outer")
	counters := []isa.Reg{isa.S8, isa.S9}
	for lv := 1; lv < p.Nest; lv++ {
		b.Li(counters[lv-1], int64(trips[lv]))
		b.Label(fmt.Sprintf("nest%d", lv))
		ch.InnerTrips *= trips[lv]
	}

	bodyInsts := emitBody(b, p, &r, &ch)

	// Close the nest inside-out, then the outer loop. Every latch branch
	// ends its block, so each is followed by a fresh label.
	for lv := p.Nest - 1; lv >= 1; lv-- {
		b.Addi(counters[lv-1], counters[lv-1], -1)
		b.Bnez(counters[lv-1], fmt.Sprintf("nest%d", lv))
		b.Label(fmt.Sprintf("exit%d", lv))
	}
	b.Addi(isa.A0, isa.A0, -1)
	b.Bnez(isa.A0, "outer")
	b.Label("done").Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, Character{}, fmt.Errorf("workgen: %s: %w", p.Name(), err)
	}

	// Seed each stream's cyclic pointer chain and its tag words.
	for s := 0; s < p.MLP; s++ {
		seedChain(prog, streamBase+int64(s)*streamSpace, &r)
	}

	img, err := prog.Layout()
	if err != nil {
		return nil, Character{}, fmt.Errorf("workgen: %s: %w", p.Name(), err)
	}
	ch.StaticInsts = len(img.Insts)
	// Nest overhead: two instructions per level latch plus the counter
	// init, and two for the outer latch.
	nestOverhead := 2 + 3*(p.Nest-1)
	ch.DynPerOuter = ch.InnerTrips*bodyInsts + nestOverhead
	return prog, ch, nil
}

// emitBody writes one innermost-iteration body and returns its average
// dynamic instruction count (hammock paths weighted 50/50).
func emitBody(b *program.Builder, p Params, r *lcg, ch *Character) int {
	dyn := 0
	// Advance every chase stream: addresses depend only on the stream's
	// own previous node, so the misses overlap across streams (MLP).
	for s := 0; s < p.MLP; s++ {
		b.Lw(streamRegs[s], streamRegs[s], 0)
		dyn++
	}
	ch.ChaseLoads = p.MLP

	// One to three hammock branch sites per body. Each comparand either
	// rides a chase load's tag (critical: the branch cannot resolve before
	// the miss returns, mcf-like) or cheap ALU state (resolves
	// immediately, sha-like); the criticality axis sets the odds.
	sites := 1 + r.intn(3)
	ch.Branches = sites
	for k := 0; k < sites; k++ {
		elseL := fmt.Sprintf("else%d", k)
		joinL := fmt.Sprintf("join%d", k)
		critical := r.intn(100) < int(p.BranchCriticality*100+0.5)
		src := isa.T5
		if critical {
			ch.CriticalBranches++
			ch.ChaseLoads++
			// Tag word beside the pointer of a pseudo-random stream.
			b.Lw(isa.T6, streamRegs[r.intn(p.MLP)], 8)
			b.Andi(isa.T5, isa.T6, 1)
			src = isa.T6
			dyn += 2
		} else {
			b.Andi(isa.T5, isa.A0, 1) // outer counter: ready at dispatch
			dyn++
		}
		b.Bnez(isa.T5, elseL)
		b.Label(fmt.Sprintf("then%d", k))
		dyn++

		// Then-path: the dependent region. Every instruction consumes the
		// comparand (directly or through a shifted copy), so the region is
		// both control- and data-tied to the branch.
		emitted := 0
		for emitted < p.DepLen {
			rd := depRegs[emitted%len(depRegs)]
			switch r.intn(3) {
			case 0:
				b.Xor(rd, rd, src)
				emitted++
			case 1:
				b.Add(rd, rd, src)
				emitted++
			default:
				b.Slli(isa.T3, src, int64(1+r.intn(3)))
				b.Add(rd, rd, isa.T3)
				src = isa.T3
				emitted += 2
			}
		}
		ch.DepInsts += emitted
		b.J(joinL)
		// Else-path: short, so the reconvergence point stays close on one
		// side (astar-like asymmetric hammock).
		b.Label(elseL)
		b.Addi(isa.A1, isa.A1, 1)
		b.Label(joinL)
		dyn += (emitted + 1 + 1) / 2 // average of then (dep+J) and else (1)
	}

	// Independent tail: branch-independent bookkeeping the out-of-order
	// commit policies can retire early (mcf's "blue cloud" ingredient).
	tail := 4 + r.intn(4)
	for i := 0; i < tail; i++ {
		reg := tailRegs[i%len(tailRegs)]
		b.Addi(reg, reg, int64(i+1))
	}
	dyn += tail

	// Store-queue pressure: a ring of stores through the scratch cursor.
	// Addresses come off cheap ALU state, so the stores themselves are
	// ready early and queue pressure — not miss latency — is the limiter.
	stores := int(p.StorePressure*MaxStores + 0.5)
	for i := 0; i < stores; i++ {
		b.Sw(tailRegs[i%len(tailRegs)], isa.S10, int64(i)*8)
	}
	if stores > 0 {
		// Advance and wrap the cursor inside [scratchBase, +ring).
		b.Addi(isa.S10, isa.S10, int64(stores)*8)
		b.Andi(isa.S10, isa.S10, scratchLen*8-1)
		b.Li(isa.T3, scratchBase)
		b.Add(isa.S10, isa.S10, isa.T3)
		dyn += stores + 4
	}
	ch.StoresPerIter = stores
	return dyn
}

// seedChain writes a cyclic pseudo-random pointer chain at base: each node's
// word 0 holds the next node's address, word 1 a pseudo-random tag.
func seedChain(p *program.Program, base int64, r *lcg) {
	perm := make([]int, chainNodes)
	for i := range perm {
		perm[i] = i
	}
	for i := chainNodes - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < chainNodes; i++ {
		from := base + int64(perm[i])*chainStride
		to := base + int64(perm[(i+1)%chainNodes])*chainStride
		p.Data[from] = to
		p.Data[from+8] = int64(r.next() & 0xffff)
	}
}

// Seeds returns n distinct derived parameter sets for seeds 1..n, sorted by
// name: the deterministic sample the differential suite and fuzz corpora
// build on.
func Seeds(n int) []Params {
	out := make([]Params, 0, n)
	for s := 1; s <= n; s++ {
		out = append(out, FromSeed(uint64(s)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// lcg is the deterministic pseudo-random sequence used for every generation
// draw (no math/rand: byte-stable across Go releases).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }
